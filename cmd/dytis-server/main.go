// Command dytis-server serves a DyTIS index over TCP with the pipelined
// binary protocol of internal/proto. It is the network face of the
// reproduction: a concurrent index (optimistic lock-free reads by default)
// behind per-connection read/write goroutines, batched opcodes, connection
// limits with accept-side backpressure, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	dytis-server -addr :7070 -metrics :8080 -mode optimistic
//
// With -metrics, an HTTP endpoint serves the index observer's histograms
// and structure-event counters together with the server-side request
// latency metrics on one /metrics page (Prometheus text format; expvar
// JSON at /debug/vars).
//
//	-mode optimistic   concurrent index, lock-free Get / snapshot Scan (default)
//	-mode locked       concurrent index, fully locked §3.4 read path
//
// On SIGINT/SIGTERM the server stops accepting, finishes every request it
// has read, flushes the responses, shuts the metrics endpoint down, closes
// the index, and exits 0; -drain-timeout bounds the wait.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dytis"
	"dytis/internal/obs"
	"dytis/internal/server"
)

var (
	addrFlag    = flag.String("addr", ":7070", "TCP listen address for the binary protocol")
	metricsFlag = flag.String("metrics", "", "HTTP listen address for /metrics and /debug/vars (empty = disabled)")
	modeFlag    = flag.String("mode", "optimistic", "concurrency mode: optimistic|locked")
	maxConns    = flag.Int("max-conns", 256, "simultaneous connection cap (excess clients wait in the accept backlog)")
	pipeline    = flag.Int("pipeline", 128, "per-connection response queue depth")
	drainFlag   = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget before connections are closed forcibly")
)

func main() {
	flag.Parse()

	ob := dytis.NewObserver()
	idxOpts := []dytis.Option{dytis.WithConcurrent(), dytis.WithObserver(ob)}
	switch *modeFlag {
	case "optimistic":
	case "locked":
		idxOpts = append(idxOpts, dytis.WithLockedReads())
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want optimistic or locked)\n", *modeFlag)
		os.Exit(2)
	}
	idx := dytis.New(idxOpts...)

	sm := &server.Metrics{}
	srv := server.New(server.Config{
		Index:    idx,
		MaxConns: *maxConns,
		Pipeline: *pipeline,
		Metrics:  sm,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var metricsSrv *http.Server
	if *metricsFlag != "" {
		metricsSrv = &http.Server{Addr: *metricsFlag, Handler: metricsHandler(ob, sm)}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsFlag)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("dytis-server (%s reads) listening on %s\n", *modeFlag, ln.Addr())

	select {
	case err := <-serveErr:
		// Listener failed outright; nothing to drain.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("signal received; draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "drain incomplete:", err)
	}
	<-serveErr // Serve has returned ErrServerClosed
	if metricsSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		metricsSrv.Shutdown(shCtx)
		cancel()
	}
	idx.Close()
	fmt.Println("dytis-server: clean shutdown")
}

// metricsHandler serves the index observer's endpoints with the server-side
// metrics appended to /metrics, so index-op latency, structure events, and
// server request latency read as one page.
func metricsHandler(ob *obs.Observer, sm *server.Metrics) http.Handler {
	obH := ob.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ob.WritePrometheus(w)
		sm.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", obH)
	mux.Handle("/vars", obH)
	mux.Handle("/", obH)
	return mux
}
