package core_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dytis/internal/check"
	"dytis/internal/core"
)

func concOpts() core.Options {
	return core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2, Concurrent: true}
}

// requireSound fails the test when the structural checker finds violations;
// every concurrency test runs it at teardown, once the workers are quiescent.
func requireSound(t *testing.T, d *core.DyTIS) {
	t.Helper()
	if vs := check.Check(d); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("invariant violation: %v", v)
		}
		t.FailNow()
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	d := core.New(concOpts())
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := uint64(w)<<32 | uint64(i)
				d.Insert(k, k+1)
				if rng.Intn(4) == 0 {
					if v, ok := d.Get(k); !ok || v != k+1 {
						t.Errorf("worker %d: Get(%#x) = %d,%v", w, k, v, ok)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.Len() != workers*perWorker {
		t.Fatalf("Len=%d want %d", d.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 17 {
			k := uint64(w)<<32 | uint64(i)
			if v, ok := d.Get(k); !ok || v != k+1 {
				t.Fatalf("post: Get(%#x) = %d,%v", k, v, ok)
			}
		}
	}
	requireSound(t, d)
}

func TestConcurrentMixedWorkload(t *testing.T) {
	d := core.New(concOpts())
	// Pre-load a base population.
	for i := uint64(0); i < 20000; i++ {
		d.Insert(i*3, i)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(30000)) * 3
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					d.Insert(k, uint64(w))
				case 4, 5, 6:
					d.Get(k)
				case 7:
					d.Delete(k)
				case 8, 9:
					got := d.Scan(k, 50, nil)
					for j := 1; j < len(got); j++ {
						if got[j].Key <= got[j-1].Key {
							t.Errorf("scan not ascending under concurrency")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	requireSound(t, d)
}

// TestConcurrentDisjointRangesLinearizable: workers own disjoint key ranges,
// so each worker's final writes must all be visible exactly.
func TestConcurrentDisjointRangesLinearizable(t *testing.T) {
	d := core.New(concOpts())
	const workers = 6
	var wg sync.WaitGroup
	final := make([]map[uint64]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7))
			mine := map[uint64]uint64{}
			base := uint64(w) << 40
			for i := 0; i < 8000; i++ {
				k := base + uint64(rng.Intn(4000))
				if rng.Intn(5) == 0 {
					d.Delete(k)
					delete(mine, k)
				} else {
					v := rng.Uint64()
					d.Insert(k, v)
					mine[k] = v
				}
			}
			final[w] = mine
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		total += len(final[w])
		for k, v := range final[w] {
			got, ok := d.Get(k)
			if !ok || got != v {
				t.Fatalf("worker %d key %#x: got %d,%v want %d", w, k, got, ok, v)
			}
		}
	}
	if d.Len() != total {
		t.Fatalf("Len=%d want %d", d.Len(), total)
	}
	requireSound(t, d)
}

// TestConcurrentGetDuringSplits hammers point lookups on a stable key
// population while writers force splits in the same segments, in both the
// optimistic configuration and the locked fallback (DisableOptimisticReads):
// every Get of a pre-existing key must return its value, whether the lookup
// validated against the seqlock, retried around a retirement, or fell back
// to the locked path.
func TestConcurrentGetDuringSplits(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		noOpt bool
	}{{"optimistic", false}, {"locked", true}} {
		t.Run(cfg.name, func(t *testing.T) {
			o := concOpts()
			o.DisableOptimisticReads = cfg.noOpt
			d := core.New(o)
			const stable = 20000
			for i := uint64(0); i < stable; i++ {
				d.Insert(i*797, i)
			}
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) * 53))
					for i := 0; i < 20000; i++ {
						// Land between the stable keys so splits keep firing
						// without ever touching a stable key's value.
						k := uint64(rng.Intn(stable))*797 + uint64(1+rng.Intn(796))
						d.Insert(k, k)
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(r) * 97))
					for i := 0; i < 30000; i++ {
						want := uint64(rng.Intn(stable))
						if v, ok := d.Get(want * 797); !ok || v != want {
							t.Errorf("Get(%#x) = %d,%v want %d", want*797, v, ok, want)
							return
						}
					}
				}(r)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			requireSound(t, d)
		})
	}
}

// TestConcurrentScanAcrossEHSplits races scans that cross first-level EH
// boundaries against writers forcing splits in every shard. Scans are not
// point-in-time snapshots, but two properties must survive any interleaving
// with splits (including a scan holding a just-retired segment's frozen
// view): results stay strictly ascending, and no key that existed before the
// workload started may be lost from a scanned window.
func TestConcurrentScanAcrossEHSplits(t *testing.T) {
	d := core.New(concOpts()) // FirstLevelBits=3: 8 EH tables, suffixBits=61
	const shards = 8
	const perShard = 6000
	preload := make([]uint64, 0, shards*perShard)
	for s := uint64(0); s < shards; s++ {
		for i := uint64(0); i < perShard; i++ {
			k := (s << 61) | (i * 997)
			d.Insert(k, k)
			preload = append(preload, k)
		}
	}
	sort.Slice(preload, func(i, j int) bool { return preload[i] < preload[j] })

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 131))
			for i := 0; i < 12000; i++ {
				s := uint64(rng.Intn(shards))
				k := (s << 61) | (uint64(rng.Intn(perShard))*997 + uint64(1+rng.Intn(996)))
				d.Insert(k, k)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) * 173))
			for i := 0; i < 300; i++ {
				// Start 20 preloaded keys shy of a shard's populated tail and
				// ask for far more pairs than the tail can hold: the scan must
				// continue into the next EH table mid-flight.
				s := uint64(rng.Intn(shards - 1))
				start := (s << 61) | ((perShard - 20) * 997)
				got := d.Scan(start, 600, nil)
				if len(got) != 600 {
					t.Errorf("scan %d: %d pairs, want 600", i, len(got))
					return
				}
				seen := make(map[uint64]struct{}, len(got))
				for j, p := range got {
					if j > 0 && p.Key <= got[j-1].Key {
						t.Errorf("scan %d: not strictly ascending at %d", i, j)
						return
					}
					seen[p.Key] = struct{}{}
				}
				last := got[len(got)-1].Key
				lo := sort.Search(len(preload), func(i int) bool { return preload[i] >= start })
				for ; lo < len(preload) && preload[lo] <= last; lo++ {
					if _, ok := seen[preload[lo]]; !ok {
						t.Errorf("scan %d: lost pre-existing key %#x in [%#x,%#x]",
							i, preload[lo], start, last)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	requireSound(t, d)
}

// TestConcurrentStatsDuringWrites hammers the read-side accounting
// (Stats/MemoryFootprint/Len) while writers force splits, remaps, and
// expansions: the aggregation walks must take the per-segment locks, not
// just the EH lock, because remap/expand rewrite segment internals while
// holding only the segment lock.
func TestConcurrentStatsDuringWrites(t *testing.T) {
	d := core.New(concOpts())
	const writers = 4
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < 30000; i++ {
				k := uint64(rng.Intn(1 << 20))
				if rng.Intn(8) == 0 {
					d.Delete(k)
				} else {
					d.Insert(k, uint64(i))
				}
			}
		}(w)
	}
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := d.Stats()
			if st.Segments <= 0 || st.Buckets <= 0 {
				t.Error("non-positive stats")
				return
			}
			if d.MemoryFootprint() <= 0 {
				t.Error("non-positive footprint")
				return
			}
			d.Len()
		}
	}()
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if t.Failed() {
		return
	}
	requireSound(t, d)
}
