package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// Micro-benchmarks for the core operations under the three key-distribution
// regimes the paper distinguishes (uniform, clustered/skewed, ascending
// time-like). The paper-level experiment benchmarks live in the repository
// root's bench_test.go.

func benchKeysUniform(n int) []uint64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func benchKeysClustered(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i%40)<<40 | uint64(i)
	}
	return out
}

func benchKeysAscending(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	out := make([]uint64, n)
	t := uint64(0)
	for i := range out {
		t += 1 + uint64(rng.Intn(64))
		out[i] = t<<18 | uint64(i)&(1<<18-1)
	}
	return out
}

func benchInsert(b *testing.B, keys []uint64) {
	d := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		d.Insert(k, k)
	}
}

func BenchmarkInsertUniform(b *testing.B)   { benchInsert(b, benchKeysUniform(400000)) }
func BenchmarkInsertClustered(b *testing.B) { benchInsert(b, benchKeysClustered(400000)) }
func BenchmarkInsertAscending(b *testing.B) { benchInsert(b, benchKeysAscending(400000)) }

func benchGet(b *testing.B, keys []uint64) {
	d := New(Options{})
	for _, k := range keys {
		d.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Get(keys[i%len(keys)])
	}
}

func BenchmarkGetUniform(b *testing.B)   { benchGet(b, benchKeysUniform(400000)) }
func BenchmarkGetClustered(b *testing.B) { benchGet(b, benchKeysClustered(400000)) }

// benchGetParallel measures Concurrent-mode point-lookup throughput with all
// goroutines reading a quiescent index: the optimistic/locked pair isolates
// what the seqlock-validated lock-free probe buys over the §3.4 two-level
// locked read (run with -cpu=8 for the recorded configuration).
func benchGetParallel(b *testing.B, disableOptimistic bool) {
	keys := benchKeysUniform(400000)
	d := New(Options{Concurrent: true, DisableOptimisticReads: disableOptimistic})
	for _, k := range keys {
		d.Insert(k, k)
	}
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger each goroutine's walk so workers don't march through the
		// key slice in lockstep.
		i := int(worker.Add(1)) * 50023
		for pb.Next() {
			d.Get(keys[i%len(keys)])
			i++
		}
	})
}

func BenchmarkGetParallelOptimistic(b *testing.B) { benchGetParallel(b, false) }
func BenchmarkGetParallelLocked(b *testing.B)     { benchGetParallel(b, true) }

func BenchmarkScan100(b *testing.B) {
	keys := benchKeysUniform(400000)
	d := New(Options{})
	for _, k := range keys {
		d.Insert(k, k)
	}
	res := d.Scan(0, 100, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = d.Scan(keys[i%len(keys)], 100, res[:0])
	}
	_ = res
}

// Batched vs single-op entry points. The index work is identical; the
// difference the pair isolates is per-op dispatch (timing + observer
// booking), which the batch paths pay once per batch. Run with and without
// an observer attached to see both the floor and the amortized overhead.
const batchLen = 64

func benchGetBatchVsSingle(b *testing.B, batched bool, o Observer) {
	keys := benchKeysUniform(400000)
	d := New(Options{Observer: o})
	for _, k := range keys {
		d.Insert(k, k)
	}
	vals := make([]uint64, 0, batchLen)
	found := make([]bool, 0, batchLen)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		batch := keys[i%(len(keys)-batchLen):][:batchLen]
		if batched {
			vals, found = d.GetBatch(batch, vals[:0], found[:0])
		} else {
			for _, k := range batch {
				d.Get(k)
			}
		}
	}
	_, _ = vals, found
}

func BenchmarkGetSingle64(b *testing.B) { benchGetBatchVsSingle(b, false, nil) }
func BenchmarkGetBatch64(b *testing.B)  { benchGetBatchVsSingle(b, true, nil) }
func BenchmarkGetSingle64Obs(b *testing.B) {
	benchGetBatchVsSingle(b, false, nopObserver{})
}
func BenchmarkGetBatch64Obs(b *testing.B) { benchGetBatchVsSingle(b, true, nopObserver{}) }

func benchInsertBatchVsSingle(b *testing.B, batched bool) {
	keys := benchKeysUniform(400000)
	vals := benchKeysUniform(400000)
	d := New(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		j := i % (len(keys) - batchLen)
		if batched {
			d.InsertBatch(keys[j:j+batchLen], vals[j:j+batchLen])
		} else {
			for l := j; l < j+batchLen; l++ {
				d.Insert(keys[l], vals[l])
			}
		}
	}
}

func BenchmarkInsertSingle64(b *testing.B) { benchInsertBatchVsSingle(b, false) }
func BenchmarkInsertBatch64(b *testing.B)  { benchInsertBatchVsSingle(b, true) }

// nopObserver is the cheapest possible Observer without RecordBatch, so the
// *Obs benchmarks measure pure dispatch overhead.
type nopObserver struct{}

func (nopObserver) RecordOp(op Op, shard int, d time.Duration) {}
func (nopObserver) StructureEvent(ev StructureEvent)           {}

func BenchmarkDelete(b *testing.B) {
	keys := benchKeysUniform(400000)
	d := New(Options{})
	for _, k := range keys {
		d.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if i%2 == 0 {
			d.Delete(k)
		} else {
			d.Insert(k, k)
		}
	}
}
