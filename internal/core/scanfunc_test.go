package core

import (
	"math/rand"
	"sort"
	"testing"

	"dytis/internal/kv"
)

func bothModes(t *testing.T, fn func(t *testing.T, opts Options)) {
	t.Helper()
	for _, conc := range []bool{false, true} {
		conc := conc
		name := "single"
		if conc {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			o := smallOpts()
			o.Concurrent = conc
			fn(t, o)
		})
	}
}

// TestScanFuncMatchesScan checks the visitor yields exactly the pairs Scan
// yields, from several start points.
func TestScanFuncMatchesScan(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 30000; i++ {
			k := rng.Uint64() >> uint(rng.Intn(50))
			d.Insert(k, k^3)
		}
		starts := []uint64{0, 1, 1 << 20, 1 << 45, 1 << 62, ^uint64(0)}
		for _, start := range starts {
			want := d.Scan(start, 1<<20, nil)
			got := make([]kv.KV, 0, len(want))
			d.ScanFunc(start, func(k, v uint64) bool {
				got = append(got, kv.KV{Key: k, Value: v})
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("start %#x: ScanFunc yielded %d pairs, Scan %d", start, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("start %#x: pair %d = %+v, want %+v", start, i, got[i], want[i])
				}
			}
		}
	})
}

// TestScanFuncEarlyStop checks returning false stops the iteration exactly
// there, including across EH boundaries.
func TestScanFuncEarlyStop(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		// Spread keys over all four first-level EHs (FirstLevelBits=2).
		for i := uint64(0); i < 4; i++ {
			for j := uint64(0); j < 100; j++ {
				d.Insert(i<<62|j, i)
			}
		}
		var n int
		d.ScanFunc(0, func(k, v uint64) bool {
			n++
			return n < 150 // stop partway through the second EH
		})
		if n != 150 {
			t.Fatalf("visited %d pairs, want 150", n)
		}
	})
}

// TestScanFuncZeroAlloc is the API contract of the visitor: iterating
// allocates nothing.
func TestScanFuncZeroAlloc(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		for i := uint64(0); i < 5000; i++ {
			d.Insert(i*31, i)
		}
		var sum uint64
		fn := func(k, v uint64) bool { sum += v; return true }
		allocs := testing.AllocsPerRun(10, func() {
			d.ScanFunc(0, fn)
		})
		if allocs != 0 {
			t.Fatalf("ScanFunc allocated %.1f times per run, want 0", allocs)
		}
		if sum == 0 {
			t.Fatal("visitor did not run")
		}
	})
}

// TestRangeMatchesReference re-checks Range (now built on ScanFunc) against
// a sorted reference, with inclusive bounds and early stop.
func TestRangeMatchesReference(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		rng := rand.New(rand.NewSource(7))
		ref := map[uint64]uint64{}
		for i := 0; i < 20000; i++ {
			k := rng.Uint64() >> uint(rng.Intn(30))
			ref[k] = k + 1
			d.Insert(k, k+1)
		}
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		lo, hi := keys[len(keys)/4], keys[3*len(keys)/4]
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		var prev uint64
		d.Range(lo, hi, func(k, v uint64) bool {
			if k < lo || k > hi {
				t.Fatalf("Range yielded out-of-bounds key %#x not in [%#x,%#x]", k, lo, hi)
			}
			if got > 0 && k <= prev {
				t.Fatalf("Range not ascending: %#x after %#x", k, prev)
			}
			if v != ref[k] {
				t.Fatalf("Range value for %#x = %d, want %d", k, v, ref[k])
			}
			prev = k
			got++
			return true
		})
		if got != want {
			t.Fatalf("Range visited %d pairs, want %d", got, want)
		}

		// Inverted bounds yield nothing; early stop stops.
		d.Range(hi, lo, func(k, v uint64) bool { t.Fatal("inverted range yielded a pair"); return false })
		n := 0
		d.Range(0, ^uint64(0), func(k, v uint64) bool { n++; return n < 5 })
		if n != 5 {
			t.Fatalf("early stop visited %d, want 5", n)
		}
	})
}
