package client

// Cluster admin operations (protocol FeatCluster): shard introspection, map
// installation, and the handover opcode family. dytis-ctl drives the first
// two against operators' fingers; the import/mirror trio is what one shard
// server speaks to another during a live handover (cluster.Peer), with
// Client as the transport.

import (
	"context"
	"errors"

	"dytis/internal/proto"
)

// ShardInfo is a shard server's self-description.
type ShardInfo struct {
	// Lo, Hi is the owned key range (inclusive); Lo > Hi means the server
	// owns nothing (a fresh node awaiting a handover).
	Lo, Hi uint64
	// Epoch is the server's current shard-map epoch, 0 before any map.
	Epoch uint64
	// State is the server's handover state (cluster.Handover* constants).
	State uint8
}

// HandoverProgress is a handover's progress as reported by the source.
type HandoverProgress struct {
	// State is a cluster.Handover* constant.
	State uint8
	// Copied counts pairs bulk-copied to the target so far.
	Copied uint64
	// Mirrored counts writes double-written to the target so far.
	Mirrored uint64
	// Retries counts peer calls (bulk pages and mirrors) that were retried.
	Retries uint64
	// Resumes counts how many times a suspended handover was resumed.
	Resumes uint64
	// Watermark is the next bulk-copy key: everything in [Lo, Watermark)
	// has already landed on the target, so a resume restarts there.
	Watermark uint64
	// Lo, Hi is the moving range; Target is the receiving server's address.
	// All three are zero-valued when the server has no handover.
	Lo, Hi uint64
	Target string
}

// ShardInfo asks the server for its owned range, epoch, and handover state.
func (c *Client) ShardInfo(ctx context.Context) (ShardInfo, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpShardInfo})
	if err != nil {
		return ShardInfo{}, err
	}
	return ShardInfo{Lo: resp.Lo, Hi: resp.Hi, Epoch: resp.Epoch, State: resp.State}, nil
}

// ShardMap fetches the server's current encoded shard map
// (cluster.DecodeMap parses it).
func (c *Client) ShardMap(ctx context.Context) ([]byte, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpMapGet})
	if err != nil {
		return nil, err
	}
	return resp.MapBlob, nil
}

// SetShardMap installs an encoded shard map on the server and declares its
// owned range to be [selfLo, selfHi] (selfLo > selfHi = owns nothing). The
// server refuses maps whose epoch does not move forward, and refuses to
// de-own any range no completed handover covers — this call is the cutover
// step of a handover, in owner order: de-own on the old owner first, then
// grant on the new one.
func (c *Client) SetShardMap(ctx context.Context, selfLo, selfHi uint64, blob []byte) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpMapSet, Lo: selfLo, Hi: selfHi, MapBlob: blob})
	return err
}

// HandoverStart tells the server to begin migrating its owned subrange
// [lo, hi] to the shard server at addr: bulk copy plus double-written
// writes until a SetShardMap cuts the range over. Poll with HandoverStatus.
func (c *Client) HandoverStart(ctx context.Context, lo, hi uint64, addr string) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpHandoverStart, Lo: lo, Hi: hi, Addr: addr})
	return err
}

// HandoverStatus polls the server's current (or last) handover.
func (c *Client) HandoverStatus(ctx context.Context) (HandoverProgress, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpHandoverStatus})
	if err != nil {
		return HandoverProgress{}, err
	}
	return HandoverProgress{
		State: resp.State, Copied: resp.Copied, Mirrored: resp.Mirrored,
		Retries: resp.Retries, Resumes: resp.Resumes, Watermark: resp.Watermark,
		Lo: resp.Lo, Hi: resp.Hi, Target: resp.Addr,
	}, nil
}

// HandoverResume tells the server to resume its suspended handover: redial
// the target, replay writes journaled while suspended, and continue the
// bulk copy from the watermark (or from scratch if the target restarted
// empty). Fails if the server has no handover or it is not suspended.
func (c *Client) HandoverResume(ctx context.Context) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpHandoverResume})
	return err
}

// HandoverAbort abandons the server's current handover in any state,
// scrubbing the partially-imported range from the target (best-effort when
// the target is unreachable). The server can then start a fresh handover.
func (c *Client) HandoverAbort(ctx context.Context) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpHandoverAbort})
	return err
}

// ImportStart opens an import session for [lo, hi] on the server — the
// target half of a handover. Server-to-server use.
func (c *Client) ImportStart(ctx context.Context, lo, hi uint64) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpImportStart, Lo: lo, Hi: hi})
	return err
}

// ImportBatch streams one bulk-copy page into the open import session,
// returning how many pairs the server actually applied (pairs already
// superseded by mirrored writes are skipped). Server-to-server use.
func (c *Client) ImportBatch(ctx context.Context, keys, vals []uint64) (applied uint64, err error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpImportBatch, Keys: keys, Vals: vals})
	if err != nil {
		return 0, err
	}
	return resp.Applied, nil
}

// ImportEnd closes the import session: commit keeps the imported range
// (the cutover is granting it), abort scrubs it. Server-to-server use.
func (c *Client) ImportEnd(ctx context.Context, commit bool) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpImportEnd, Commit: commit})
	return err
}

// ImportResume re-attaches to an import session for [lo, hi] on the server
// after the source's handover was suspended. If the session survived, fresh
// is false and applied reports how many pairs it already holds; if the
// server restarted (session lost), a new empty session is opened and fresh
// is true, telling the source to recopy from scratch. Server-to-server use.
func (c *Client) ImportResume(ctx context.Context, lo, hi uint64) (fresh bool, applied uint64, err error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpImportResume, Lo: lo, Hi: hi})
	if err != nil {
		return false, 0, err
	}
	return resp.Fresh, resp.Applied, nil
}

// Mirror applies one double-written operation on the handover target: a
// write (or delete, when del) of key that the source has already applied
// locally and must see acknowledged before acking its own client.
// Server-to-server use.
func (c *Client) Mirror(ctx context.Context, del bool, key, val uint64) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpMirror, Del: del, Key: key, Val: val})
	return err
}

// RequireCluster verifies the connection negotiated the cluster opcode
// family, failing with a descriptive error otherwise. Callers about to
// drive admin opcodes use it to fail fast with a better message than the
// server's quarantine.
func (c *Client) RequireCluster(ctx context.Context) error {
	ver, feats, err := c.Protocol(ctx)
	if err != nil {
		return err
	}
	if ver < proto.Version2 || feats&proto.FeatCluster == 0 {
		return errors.New("client: server did not grant the cluster feature (not started with -shard?)")
	}
	return nil
}
