package server_test

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/cluster"
	"dytis/internal/core"
	"dytis/internal/server"
)

// The in-process cluster end-to-end suite: three (or four) real servers on
// loopback, each wrapping its own core index in a cluster.Node, driven
// through the routed client. The oracle is a plain map — the cluster's
// contract is that sharding is invisible: every routed answer must equal
// what one giant single-node index would have said.

// testPeer adapts client.Client to cluster.Peer for in-process handovers,
// the same shape cmd/dytis-server uses in production.
type testPeer struct{ c *client.Client }

func (p testPeer) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

func (p testPeer) ImportStart(lo, hi uint64) error {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportStart(ctx, lo, hi)
}

func (p testPeer) ImportBatch(keys, vals []uint64) (uint64, error) {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportBatch(ctx, keys, vals)
}

func (p testPeer) ImportEnd(commit bool) error {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportEnd(ctx, commit)
}

func (p testPeer) ImportResume(lo, hi uint64) (bool, uint64, error) {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportResume(ctx, lo, hi)
}

func (p testPeer) Mirror(del bool, key, val uint64) error {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.Mirror(ctx, del, key, val)
}

func (p testPeer) Close() error { return p.c.Close() }

func testDialPeer(addr string) (cluster.Peer, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	return testPeer{c: c}, nil
}

// shardProc is one in-process shard server.
type shardProc struct {
	addr string
	srv  *server.Server
	node *cluster.Node
	idx  *core.DyTIS

	stopOnce sync.Once
	done     chan error
}

// stop force-closes the shard (canceled drain = every connection cut), the
// in-process stand-in for an abrupt shard death.
func (p *shardProc) stop() {
	p.stopOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		p.srv.Shutdown(ctx)
		<-p.done
		p.node.Close()
	})
}

// startShard runs one shard server owning [lo, hi] (lo > hi = owns
// nothing) on a loopback listener.
func startShard(t *testing.T, lo, hi uint64) *shardProc {
	return startShardDial(t, lo, hi, testDialPeer)
}

// startShardDial is startShard with a custom peer dialer — the chaos suite
// routes the handover link through a fault proxy this way.
func startShardDial(t *testing.T, lo, hi uint64, dial func(string) (cluster.Peer, error)) *shardProc {
	t.Helper()
	idx := core.New(smallOpts())
	node, err := cluster.NewNode(cluster.NodeConfig{
		Index: idx, Lo: lo, Hi: hi, Dial: dial, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Index: idx, Cluster: node, MaxConns: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &shardProc{addr: ln.Addr().String(), srv: srv, node: node, idx: idx, done: make(chan error, 1)}
	go func() { p.done <- srv.Serve(ln) }()
	t.Cleanup(p.stop)
	return p
}

// startCluster boots n uniform shards and installs the epoch-1 map on all.
func startCluster(t *testing.T, n int) []*shardProc {
	t.Helper()
	width := ^uint64(0)/uint64(n) + 1
	procs := make([]*shardProc, n)
	addrs := make([]string, n)
	for i := range procs {
		lo := uint64(i) * width
		hi := lo + width - 1
		if i == n-1 {
			hi = ^uint64(0)
		}
		procs[i] = startShard(t, lo, hi)
		addrs[i] = procs[i].addr
	}
	m, err := cluster.Uniform(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	blob := m.Encode()
	ctx := context.Background()
	for i, p := range procs {
		c, err := client.Dial(p.addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetShardMap(ctx, m.Shards[i].Lo, m.Shards[i].Hi, blob); err != nil {
			t.Fatalf("installing map on shard %d: %v", i, err)
		}
		c.Close()
	}
	return procs
}

// spread maps a small counter onto the whole key space (odd multiplier:
// bijective), so every shard sees traffic.
func spread(x uint64) uint64 { return x * 0x9E3779B97F4A7C15 }

// requireClusterOracle reads the whole cluster back through the routed
// client — full scatter-gather scan plus a point Get per key — and requires
// byte-for-byte agreement with the oracle.
func requireClusterOracle(t *testing.T, cl *client.Cluster, oracle map[uint64]uint64) {
	t.Helper()
	ctx := context.Background()

	wantKeys := make([]uint64, 0, len(oracle))
	for k := range oracle {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })

	keys, vals, err := cl.Scan(ctx, 0, 0)
	if err != nil {
		t.Fatalf("cluster scan: %v", err)
	}
	if len(keys) != len(wantKeys) {
		t.Fatalf("cluster scan returned %d pairs, oracle has %d", len(keys), len(wantKeys))
	}
	for i, k := range wantKeys {
		if keys[i] != k || vals[i] != oracle[k] {
			t.Fatalf("scan pair %d = (%#x, %d), oracle (%#x, %d)", i, keys[i], vals[i], k, oracle[k])
		}
	}

	if n, err := cl.Len(ctx); err != nil || n != len(oracle) {
		t.Fatalf("cluster Len = %d, %v; oracle has %d", n, err, len(oracle))
	}

	for k, want := range oracle {
		v, found, err := cl.Get(ctx, k)
		if err != nil || !found || v != want {
			t.Fatalf("Get(%#x) = (%d, %v, %v), oracle %d", k, v, found, err, want)
		}
	}
}

func TestClusterScatterGatherOracle(t *testing.T) {
	procs := startCluster(t, 3)

	cl, err := client.DialCluster([]string{procs[0].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	oracle := make(map[uint64]uint64)

	// Point inserts spread over the whole space, with updates and deletes.
	for i := uint64(0); i < 2000; i++ {
		k := spread(i)
		if err := cl.Insert(ctx, k, i); err != nil {
			t.Fatalf("Insert(%#x): %v", k, err)
		}
		oracle[k] = i
	}
	for i := uint64(0); i < 2000; i += 5 { // updates
		k := spread(i)
		if err := cl.Insert(ctx, k, i*10); err != nil {
			t.Fatal(err)
		}
		oracle[k] = i * 10
	}
	for i := uint64(0); i < 2000; i += 7 { // deletes
		k := spread(i)
		found, err := cl.Delete(ctx, k)
		if err != nil || !found {
			t.Fatalf("Delete(%#x) = (%v, %v)", k, found, err)
		}
		delete(oracle, k)
	}
	if found, err := cl.Delete(ctx, 12345); err != nil || found {
		t.Fatalf("Delete(absent) = (%v, %v), want (false, nil)", found, err)
	}

	// Batches that straddle every shard boundary.
	var bk, bv []uint64
	for i := uint64(4000); i < 4600; i++ {
		bk = append(bk, spread(i))
		bv = append(bv, i)
	}
	if err := cl.InsertBatch(ctx, bk, bv); err != nil {
		t.Fatal(err)
	}
	for i, k := range bk {
		oracle[k] = bv[i]
	}

	// GetBatch across shards, hits and misses interleaved, input order out.
	probe := append([]uint64{}, bk[:100]...)
	probe = append(probe, 999, 777) // absent
	vals, found, err := cl.GetBatch(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range probe {
		want, ok := oracle[k]
		if found[i] != ok || (ok && vals[i] != want) {
			t.Fatalf("GetBatch[%d] key %#x = (%d, %v), oracle (%d, %v)", i, k, vals[i], found[i], want, ok)
		}
	}

	// DeleteBatch across shards.
	gone, err := cl.DeleteBatch(ctx, bk[:50])
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range bk[:50] {
		if !gone[i] {
			t.Fatalf("DeleteBatch[%d] key %#x not found", i, k)
		}
		delete(oracle, k)
	}

	requireClusterOracle(t, cl, oracle)

	// Bounded and offset scans must agree with the oracle too.
	wantKeys := make([]uint64, 0, len(oracle))
	for k := range oracle {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	start := wantKeys[len(wantKeys)/3] + 1
	keys, vals2, err := cl.Scan(ctx, start, 100)
	if err != nil {
		t.Fatal(err)
	}
	i := sort.Search(len(wantKeys), func(i int) bool { return wantKeys[i] >= start })
	want := wantKeys[i:]
	if len(want) > 100 {
		want = want[:100]
	}
	if len(keys) != len(want) {
		t.Fatalf("bounded scan returned %d pairs, want %d", len(keys), len(want))
	}
	for j, k := range want {
		if keys[j] != k || vals2[j] != oracle[k] {
			t.Fatalf("bounded scan pair %d = (%#x, %d), want (%#x, %d)", j, keys[j], vals2[j], k, oracle[k])
		}
	}
}

// TestClusterWrongShardRedirect drives a key at the wrong server directly:
// the typed redirect must surface with a decodable current map attached.
func TestClusterWrongShardRedirect(t *testing.T) {
	procs := startCluster(t, 3)
	ctx := context.Background()

	c, err := client.Dial(procs[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wrong := ^uint64(0) // owned by the last shard, not shard 0
	err = c.Insert(ctx, wrong, 1)
	if !errors.Is(err, client.ErrWrongShard) {
		t.Fatalf("Insert at wrong shard = %v, want ErrWrongShard", err)
	}
	var ws *client.WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("error %v is not a *WrongShardError", err)
	}
	m, err := cluster.DecodeMap(ws.MapBlob)
	if err != nil {
		t.Fatalf("redirect carried undecodable map: %v", err)
	}
	if got := m.Owner(wrong).Addr; got != procs[2].addr {
		t.Fatalf("redirect map routes %#x to %s, want %s", wrong, got, procs[2].addr)
	}

	// The key never landed anywhere.
	if _, found, err := c.Get(ctx, 5); err != nil || found {
		t.Fatalf("Get(owned absent key) = (found=%v, err=%v)", found, err)
	}
}

// TestClusterHandoverUnderTraffic is the live-handover drill: writers
// hammer the routed client while a range moves to a fresh server, and at
// the end every acknowledged write must be present with its final value —
// zero acked-write loss through copy, mirror, and cutover.
func TestClusterHandoverUnderTraffic(t *testing.T) {
	procs := startCluster(t, 3)
	fresh := startShard(t, 1, 0) // owns nothing, awaiting the handover
	ctx := context.Background()

	cl, err := client.DialCluster([]string{procs[0].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A stale handle dialed before the move: it must keep answering
	// correctly afterwards purely by following redirects.
	stale, err := client.DialCluster([]string{procs[1].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	// Preload so the bulk copy has real work.
	oracle := make(map[uint64]uint64)
	var mu sync.Mutex
	for i := uint64(0); i < 3000; i++ {
		k := spread(i)
		if err := cl.Insert(ctx, k, i); err != nil {
			t.Fatal(err)
		}
		oracle[k] = i
	}

	// Writers keep the cluster (and the moving range) under write load
	// through the whole handover. Keys are writer-unique so the oracle is
	// exact; values change on every round so a lost mirror would surface
	// as a stale read, not just a missing key.
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := spread(1_000_000 + uint64(w)*100_000 + i%4000)
				v := uint64(w)<<32 | i
				if err := cl.Insert(ctx, k, v); err != nil {
					writerErr <- err
					return
				}
				// Acked: the oracle must reflect it from now on.
				mu.Lock()
				oracle[k] = v
				mu.Unlock()
			}
		}(w)
	}

	// Move the middle shard's whole range to the fresh server, live.
	mid := cl.Map().Shards[1]
	if err := cl.Rebalance(ctx, mid.Lo, mid.Hi, fresh.addr); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("rebalance: %v", err)
	}
	// Let traffic run on the new layout before stopping.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer failed during handover: %v", err)
	default:
	}

	// The fresh server now owns the moved range; the old owner owns none.
	fc, err := client.Dial(fresh.addr)
	if err != nil {
		t.Fatal(err)
	}
	info, err := fc.ShardInfo(ctx)
	fc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Lo != mid.Lo || info.Hi != mid.Hi || info.Epoch != 2 {
		t.Fatalf("fresh shard owns [%#x, %#x] at epoch %d, want [%#x, %#x] at 2",
			info.Lo, info.Hi, info.Epoch, mid.Lo, mid.Hi)
	}

	requireClusterOracle(t, cl, oracle)

	// The stale handle self-heals off redirects: same oracle, no refresh.
	for i := uint64(0); i < 3000; i += 97 {
		k := spread(i)
		v, found, err := stale.Get(ctx, k)
		mu.Lock()
		want, ok := oracle[k]
		mu.Unlock()
		if err != nil || found != ok || (ok && v != want) {
			t.Fatalf("stale handle Get(%#x) = (%d, %v, %v), oracle (%d, %v)", k, v, found, err, want, ok)
		}
	}
	// Deterministically touch the moved range so the stale handle has
	// certainly been redirected at least once, then it must be at epoch 2.
	var moved uint64
	for i := uint64(0); ; i++ {
		if k := spread(i); k >= mid.Lo && k <= mid.Hi {
			moved = k
			break
		}
	}
	if _, _, err := stale.Get(ctx, moved); err != nil {
		t.Fatalf("stale handle Get in moved range: %v", err)
	}
	if stale.Epoch() != 2 {
		t.Fatalf("stale handle still at epoch %d after redirects", stale.Epoch())
	}
}

// TestClusterShardDownFailClosed kills one shard abruptly mid-traffic: every
// operation touching the dead range must fail with an error — never hang,
// and never answer from a partial view (a cluster scan must error, not
// return the surviving shards' pairs as if complete).
func TestClusterShardDownFailClosed(t *testing.T) {
	procs := startCluster(t, 3)
	ctx := context.Background()

	cl, err := client.DialCluster([]string{procs[0].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	oracle := make(map[uint64]uint64)
	for i := uint64(0); i < 1500; i++ {
		k := spread(i)
		if err := cl.Insert(ctx, k, i); err != nil {
			t.Fatal(err)
		}
		oracle[k] = i
	}

	dead := procs[1]
	deadLo, deadHi, _, _ := dead.node.Info()
	dead.stop()

	opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()

	// Point ops on the dead range: errors, not hangs, not wrong answers.
	deadKey := deadLo + (deadHi-deadLo)/2
	if _, _, err := cl.Get(opCtx, deadKey); err == nil {
		t.Fatal("Get on dead shard succeeded")
	}
	if err := cl.Insert(opCtx, deadKey, 1); err == nil {
		t.Fatal("Insert on dead shard succeeded")
	}

	// A full scan must fail closed: error, never a silently truncated result.
	if _, _, err := cl.Scan(opCtx, 0, 0); err == nil {
		t.Fatal("cluster scan with a dead shard returned success")
	}

	// Surviving shards answer exactly as before.
	for k, want := range oracle {
		if k >= deadLo && k <= deadHi {
			continue
		}
		v, found, err := cl.Get(ctx, k)
		if err != nil || !found || v != want {
			t.Fatalf("Get(%#x) on live shard = (%d, %v, %v), oracle %d", k, v, found, err, want)
		}
	}

	// Batches touching the dead range fail whole; live-only batches work.
	if _, _, err := cl.GetBatch(opCtx, []uint64{1, deadKey}); err == nil {
		t.Fatal("GetBatch spanning dead shard succeeded")
	}
	liveKeys := []uint64{1, 2, 3}
	if err := cl.InsertBatch(ctx, liveKeys, []uint64{10, 20, 30}); err != nil {
		t.Fatalf("live-only batch failed: %v", err)
	}
}
