package analyzers

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CtxCheck flags blocking operations in context-aware code that ignore the
// context: the deadline-propagation discipline (client ctx → wire budget →
// server shed) only works if no step on the path can stall forever first.
//
// A package opts in with a `//dytis:ctxcheck` comment in any of its files.
// Within an opted-in package, a function is in scope when it takes a
// context.Context parameter or its body uses a context.Context value
// (closures inherit their enclosing function's scope). In-scope functions
// are checked, flow-lite and in source order, for:
//
//   - channel sends and receives outside a select — they can block forever
//   - a select with neither a default case nor a case receiving from a
//     ctx.Done() or timer channel
//   - calls to functions annotated `//dytis:blocks` (exported as package
//     facts, so proto.ReadFrame is known to block inside client/server)
//     and Read/Write calls on deadline-capable connections, unless a
//     Set{,Read,Write}Deadline call appears earlier in the function
//   - time.Sleep, sync.WaitGroup.Wait, and sync.Cond.Wait
//
// A finding is suppressed by `//dytis:blocking-ok <why>` on the same or the
// preceding line (the why is required reading for the next editor), or on
// the function's doc comment to exempt the whole function. Test files are
// skipped.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "flag blocking operations that ignore a propagated context/deadline",
	Run:  runCtxCheck,
}

const (
	ctxcheckMarker   = "dytis:ctxcheck"
	blocksMarker     = "dytis:blocks"
	blockingOKMarker = "dytis:blocking-ok"
)

// ctxFacts is the fact blob a package exports: the names of its functions
// annotated //dytis:blocks ("Func" or "Recv.Method").
type ctxFacts struct {
	Blocks []string `json:"blocks,omitempty"`
}

func runCtxCheck(pass *Pass) error {
	localBlocks := map[string]bool{}
	optedIn := false
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if commentIs(cm.Text, ctxcheckMarker) {
					optedIn = true
				}
			}
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasMarker(fd.Doc, blocksMarker) {
				localBlocks[funcKey(fd)] = true
			}
		}
	}
	if len(localBlocks) > 0 {
		names := make([]string, 0, len(localBlocks))
		for n := range localBlocks {
			names = append(names, n)
		}
		sort.Strings(names)
		if blob, err := json.Marshal(&ctxFacts{Blocks: names}); err == nil {
			pass.writeFacts(blob)
		}
	}
	if !optedIn {
		return nil
	}

	// depBlocks resolves //dytis:blocks annotations of imported packages.
	depCache := map[string]map[string]bool{}
	depBlocks := func(path string) map[string]bool {
		if m, ok := depCache[path]; ok {
			return m
		}
		m := map[string]bool{}
		if blob := pass.readFacts(path); blob != nil {
			var f ctxFacts
			if json.Unmarshal(blob, &f) == nil {
				for _, n := range f.Blocks {
					m[n] = true
				}
			}
		}
		depCache[path] = m
		return m
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ok := markerLines(pass, f, blockingOKMarker)
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil || hasMarker(fd.Doc, blockingOKMarker) {
				continue
			}
			if !ctxScoped(pass, fd) {
				continue
			}
			checkCtxFunc(pass, fd, ok, localBlocks, depBlocks)
		}
	}
	return nil
}

// funcKey names a function the way ctxFacts records it.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// calleeKey names a resolved callee the same way, with its package path.
func calleeKey(fn *types.Func) (pkgPath, key string) {
	if fn.Pkg() == nil {
		return "", ""
	}
	key = fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key = named.Obj().Name() + "." + key
		}
	}
	return fn.Pkg().Path(), key
}

// ctxScoped reports whether fd takes or uses a context.Context.
func ctxScoped(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if tv, ok := pass.TypesInfo.Types[p.Type]; ok && isContextType(tv.Type) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFunc walks one in-scope function.
func checkCtxFunc(pass *Pass, fd *ast.FuncDecl, okLines map[int]bool, localBlocks map[string]bool, depBlocks func(string) map[string]bool) {
	suppressed := func(pos token.Pos) bool {
		line := pass.Fset.Position(pos).Line
		return okLines[line] || okLines[line-1]
	}

	// selectComms records the send/receive expressions that are select comm
	// clauses — those block only as long as the select does.
	selectComms := map[ast.Node]bool{}
	// armedAt records positions of Set*Deadline calls; a blocking I/O call is
	// excused when one appears earlier in the function (flow-lite: source
	// order stands in for control flow, as in lockcheck).
	var armedAt []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CommClause:
			switch comm := n.Comm.(type) {
			case *ast.SendStmt:
				selectComms[comm] = true
			case *ast.ExprStmt:
				selectComms[comm.X] = true
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					selectComms[rhs] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
					armedAt = append(armedAt, n.Pos())
				}
			}
		}
		return true
	})
	armed := func(pos token.Pos) bool {
		for _, p := range armedAt {
			if p < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !selectComms[n] && !suppressed(n.Pos()) {
				pass.Reportf(n.Pos(), "channel send may block without a ctx/deadline guard (select on ctx.Done() or annotate //dytis:blocking-ok)")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !selectComms[n] && !suppressed(n.Pos()) {
				pass.Reportf(n.Pos(), "channel receive may block without a ctx/deadline guard (select on ctx.Done() or annotate //dytis:blocking-ok)")
			}
		case *ast.SelectStmt:
			if !selectGuarded(pass, n) && !suppressed(n.Pos()) {
				pass.Reportf(n.Pos(), "select has neither a default case nor a ctx.Done()/timer case and may block forever")
			}
		case *ast.CallExpr:
			checkCtxCall(pass, n, suppressed, armed, localBlocks, depBlocks)
		}
		return true
	})
}

// selectGuarded reports whether the select cannot stall unboundedly: it has
// a default case, or some case receives from a ctx.Done() or timer channel.
func selectGuarded(pass *Pass, sel *ast.SelectStmt) bool {
	for _, stmt := range sel.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default case: the select never blocks
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		ue, ok := recv.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if doneOrTimerChan(pass, ue.X) {
			return true
		}
	}
	return false
}

// doneOrTimerChan reports whether e is ctx.Done(), time.After(...), or a
// time.Timer/time.Ticker channel — a receive that a deadline bounds.
func doneOrTimerChan(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if sel.Sel.Name == "Done" {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isContextType(tv.Type) {
				return true
			}
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" && (fn.Name() == "After" || fn.Name() == "Tick") {
			return true
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		tv, ok := pass.TypesInfo.Types[e.X]
		if !ok {
			return false
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
				(obj.Name() == "Timer" || obj.Name() == "Ticker")
		}
	}
	return false
}

// checkCtxCall applies the call-site rules: annotated blockers and raw I/O
// need an armed deadline; sleeps and waits need a justification.
func checkCtxCall(pass *Pass, call *ast.CallExpr, suppressed func(token.Pos) bool, armed func(token.Pos) bool, localBlocks map[string]bool, depBlocks func(string) map[string]bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || suppressed(call.Pos()) {
		return
	}
	pkgPath, key := calleeKey(fn)
	if pkgPath == "" {
		return
	}

	// time.Sleep and bare synchronization waits are deaf to any deadline.
	if pkgPath == "time" && key == "Sleep" {
		pass.Reportf(call.Pos(), "time.Sleep in context-aware code ignores the ctx (use a timer select or annotate //dytis:blocking-ok)")
		return
	}
	if pkgPath == "sync" && (key == "WaitGroup.Wait" || key == "Cond.Wait") {
		pass.Reportf(call.Pos(), "%s may block without a ctx/deadline guard (annotate //dytis:blocking-ok if bounded)", key)
		return
	}

	// Functions annotated //dytis:blocks, here or in a dependency.
	annotated := false
	if fn.Pkg() == pass.Pkg {
		annotated = localBlocks[key]
	} else {
		annotated = depBlocks(pkgPath)[key]
	}
	if annotated {
		if !armed(call.Pos()) {
			pass.Reportf(call.Pos(), "call to %s blocks on I/O without an armed deadline (call SetDeadline first or annotate //dytis:blocking-ok)", key)
		}
		return
	}

	// Raw reads/writes on a deadline-capable value (net.Conn and friends).
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Read", "Write", "ReadFrom", "WriteTo":
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !hasDeadlineMethod(tv.Type) {
		return
	}
	if !armed(call.Pos()) {
		pass.Reportf(call.Pos(), "%s on a deadline-capable connection without an armed deadline (call SetDeadline first or annotate //dytis:blocking-ok)", sel.Sel.Name)
	}
}

// hasDeadlineMethod reports whether t (or *t) has a Set*Deadline method.
func hasDeadlineMethod(t types.Type) bool {
	for _, name := range []string{"SetDeadline", "SetReadDeadline", "SetWriteDeadline"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}
