package core

import (
	"encoding/binary"
	"sort"
	"testing"

	"dytis/internal/kv"
)

// FuzzOps drives DyTIS from a raw byte script — each 10-byte record is one
// operation (1 op byte, 8 key bytes, 1 value byte) — and checks exact
// agreement with a map + sorted-slice reference, plus structural invariants.
// `go test` runs the seed corpus; `go test -fuzz=FuzzOps ./internal/core`
// explores further.
func FuzzOps(f *testing.F) {
	// Seeds: ascending, descending, clustered, wide, mixed op types.
	asc := make([]byte, 0, 600)
	desc := make([]byte, 0, 600)
	clustered := make([]byte, 0, 600)
	var rec [10]byte
	for i := 0; i < 60; i++ {
		rec[0] = byte(i % 3)
		binary.LittleEndian.PutUint64(rec[1:9], uint64(i))
		asc = append(asc, rec[:]...)
		binary.LittleEndian.PutUint64(rec[1:9], uint64(1000-i))
		desc = append(desc, rec[:]...)
		binary.LittleEndian.PutUint64(rec[1:9], uint64(i%4)<<60|uint64(i%8))
		clustered = append(clustered, rec[:]...)
	}
	f.Add(asc)
	f.Add(desc)
	f.Add(clustered)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 40000 {
			data = data[:40000] // bound runtime
		}
		d := New(Options{FirstLevelBits: 2, BucketEntries: 8, StartDepth: 2})
		ref := map[uint64]uint64{}
		for off := 0; off+10 <= len(data); off += 10 {
			op := data[off]
			key := binary.LittleEndian.Uint64(data[off+1 : off+9])
			val := uint64(data[off+9])
			switch op % 4 {
			case 0, 1:
				d.Insert(key, val)
				ref[key] = val
			case 2:
				_, in := ref[key]
				if d.Delete(key) != in {
					t.Fatalf("delete disagreement on %#x", key)
				}
				delete(ref, key)
			case 3:
				gv, gok := d.Get(key)
				rv, rok := ref[key]
				if gok != rok || (gok && gv != rv) {
					t.Fatalf("get disagreement on %#x: %d,%v want %d,%v",
						key, gv, gok, rv, rok)
				}
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("Len=%d want %d", d.Len(), len(ref))
		}
		if err := d.checkInvariants(); err != nil {
			t.Fatal(err)
		}
		// Full ordered traversal matches the sorted reference.
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := d.Scan(0, len(ref)+1, make([]kv.KV, 0, len(ref)))
		if len(got) != len(keys) {
			t.Fatalf("scan %d want %d", len(got), len(keys))
		}
		for i, k := range keys {
			if got[i].Key != k || got[i].Value != ref[k] {
				t.Fatalf("scan[%d] = %+v want {%d %d}", i, got[i], k, ref[k])
			}
		}
	})
}
