// Package protodef is a clean miniature protocol package: protocheck must
// accept it without diagnostics and export its constant tables as facts.
package protodef

// Opcode mirrors internal/proto's request/response opcode enum.
type Opcode uint8

const (
	OpInvalid Opcode = iota
	OpPing
	OpGet
	//dytis:response-only
	OpScanChunk
)

// Status mirrors the response status enum.
type Status uint8

const (
	StatusOK Status = iota
	StatusErr
)

// Frame constants, mutually consistent.
const (
	MaxFrame  = 1 << 12
	headerLen = 4
	maxBody   = MaxFrame - headerLen
	prefixLen = 9
	MaxBatch  = 64
	MaxScan   = 64
)

// Version and feature constants, mutually consistent.
const (
	Version1   = 1
	Version2   = 2
	MaxVersion = Version2

	FeatCRC    = 1
	FeatStream = 2

	AllFeatures = FeatCRC | FeatStream
)

// String covers every opcode.
func (o Opcode) String() string {
	//dytis:opswitch opcodes
	switch o {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpScanChunk:
		return "SCAN_CHUNK"
	}
	return "INVALID"
}

// handle covers every request opcode; OpScanChunk is response-only and
// therefore not required here.
func handle(o Opcode) int {
	//dytis:opswitch requests
	switch o {
	case OpPing:
		return 1
	case OpGet:
		return 2
	}
	return 0
}

// statusName covers every status.
func statusName(s Status) string {
	//dytis:opswitch statuses
	switch s {
	case StatusOK:
		return "OK"
	case StatusErr:
		return "ERR"
	}
	return "?"
}

var (
	_ = handle
	_ = statusName
	_ = maxBody
	_ = prefixLen
)
