// Package alex implements an ALEX-style updatable adaptive learned index
// (Ding et al., SIGMOD 2020), the main comparison baseline of the DyTIS
// paper. The structure is an adaptive RMI: inner nodes hold one linear model
// and a power-of-two child-pointer array (pointers may repeat), data nodes
// hold one linear model over a gapped array with a presence bitmap. Lookups
// follow models root-to-leaf and finish with an exponential "last-mile"
// search; inserts shift toward the nearest gap; node overflow triggers
// expansion with retraining, sideways splits (repartitioning the parent's
// pointer run), parent expansion, or downward splits — the maintenance
// operations whose cost the paper's §4.3 analysis measures.
//
// The index requires bulk loading for good structure, mirroring the paper's
// ALEX-10/ALEX-70 configurations; it also works from empty (degrading to a
// single data node that splits as it grows).
package alex

import "dytis/internal/linmod"

// linearModel is the per-node linear model shared with the other learned
// baselines.
type linearModel = linmod.Model

func fitLinear(keys []uint64, outRange int) linearModel {
	return linmod.Fit(keys, outRange)
}
