package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dytis/internal/core"
	"dytis/internal/wal"
)

// The -exp recover experiment measures durable-store recovery (internal/wal):
// it builds a WAL directory holding a checkpoint of -recover-keys keys plus a
// -recover-tail record log tail, then times a cold wal.Open — checkpoint
// snapshot load plus record-by-record replay — and reports the recovery rate
// the DESIGN.md durability section quotes.

var (
	recKeys  = flag.Int("recover-keys", 1_000_000, "keys in the checkpoint snapshot for -exp recover")
	recTail  = flag.Int("recover-tail", 200_000, "WAL records past the checkpoint for -exp recover")
	recJSON  = flag.String("recover-json", "", "also write the -exp recover results as JSON to this file")
	recFsync = flag.String("recover-fsync", "off", "fsync policy while building the directory (off|interval|always); recovery itself is read-only")
)

// recoverResult is the JSON shape of one recovery measurement.
type recoverResult struct {
	CheckpointKeys  int     `json:"checkpoint_keys"`
	TailRecords     int64   `json:"tail_records"`
	CheckpointMB    float64 `json:"checkpoint_mb"`
	LogMB           float64 `json:"log_mb"`
	BuildMillis     int64   `json:"build_ms"`
	RecoverMillis   int64   `json:"recover_ms"`
	ReplayRecPerSec float64 `json:"replayed_records_per_sec"`
	KeysPerSec      float64 `json:"recovered_keys_per_sec"`
	RecoveredKeys   int     `json:"recovered_keys"`
	TornTail        bool    `json:"torn_tail"`
}

// recoverIndexOpts sizes the index for the key count so recovery time is not
// dominated by directory doublings from a cold start.
func recoverIndexOpts() core.Options {
	return core.Options{FirstLevelBits: 9, StartDepth: 6}
}

func recoverExp() {
	policy, err := wal.ParseFsyncPolicy(*recFsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dir, err := os.MkdirTemp("", "dytis-recover-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("Recovery benchmark: checkpoint of %d keys + %d-record log tail (fsync %s while building)\n",
		*recKeys, *recTail, policy)

	// Build phase: bulk-load the checkpoint contents, checkpoint, then lay
	// down the log tail the recovery will have to replay record by record.
	const golden = 0x9E3779B97F4A7C15 // odd multiplier: bijective key spread
	buildStart := time.Now()
	s, err := wal.Open(dir, wal.Options{Index: recoverIndexOpts(), Fsync: policy, CheckpointBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	const chunk = 1 << 14
	keys := make([]uint64, 0, chunk)
	vals := make([]uint64, 0, chunk)
	for base := 0; base < *recKeys; base += chunk {
		keys, vals = keys[:0], vals[:0]
		for i := base; i < base+chunk && i < *recKeys; i++ {
			k := uint64(i) * golden
			keys, vals = append(keys, k), append(vals, k^1)
		}
		if err := s.InsertBatch(keys, vals); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := s.Checkpoint(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < *recTail; i++ {
		k := uint64(*recKeys+i) * golden
		if err := s.Insert(k, k^1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build := time.Since(buildStart)

	var ckptBytes, logBytes int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".snap":
			ckptBytes += fi.Size()
		case ".log":
			logBytes += fi.Size()
		}
	}

	// Measured phase: one cold open against the directory.
	recStart := time.Now()
	s2, err := wal.Open(dir, wal.Options{Index: recoverIndexOpts()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	recover := time.Since(recStart)
	info := s2.Recovery()
	got := s2.Len()
	s2.Close()

	if want := *recKeys + *recTail; got != want {
		fmt.Fprintf(os.Stderr, "recovered %d keys, want %d\n", got, want)
		os.Exit(1)
	}
	r := recoverResult{
		CheckpointKeys:  *recKeys,
		TailRecords:     info.Records,
		CheckpointMB:    float64(ckptBytes) / 1e6,
		LogMB:           float64(logBytes) / 1e6,
		BuildMillis:     build.Milliseconds(),
		RecoverMillis:   recover.Milliseconds(),
		ReplayRecPerSec: float64(info.Records) / recover.Seconds(),
		KeysPerSec:      float64(got) / recover.Seconds(),
		RecoveredKeys:   got,
		TornTail:        info.TornTail,
	}
	fmt.Printf("%-24s %12s\n", "quantity", "value")
	fmt.Printf("%-24s %12.1f\n", "checkpoint MB", r.CheckpointMB)
	fmt.Printf("%-24s %12.1f\n", "log MB", r.LogMB)
	fmt.Printf("%-24s %12d\n", "build ms", r.BuildMillis)
	fmt.Printf("%-24s %12d\n", "recover ms", r.RecoverMillis)
	fmt.Printf("%-24s %12d\n", "records replayed", r.TailRecords)
	fmt.Printf("%-24s %12.0f\n", "replayed records/s", r.ReplayRecPerSec)
	fmt.Printf("%-24s %12.0f\n", "recovered keys/s", r.KeysPerSec)

	if *recJSON != "" {
		data, _ := json.MarshalIndent(r, "", "  ")
		if err := os.WriteFile(*recJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "recover-json:", err)
		}
	}
}
