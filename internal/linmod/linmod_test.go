package linmod

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitPerfectLine(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i) * 10
	}
	m := Fit(keys, 1000)
	for i, k := range keys {
		if p := m.PredictClamped(k, 1000); p < i-1 || p > i+1 {
			t.Fatalf("predict(%d)=%d want ~%d", k, p, i)
		}
	}
}

func TestFitScalesToOutRange(t *testing.T) {
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i)
	}
	m := Fit(keys, 10)
	if p := m.PredictClamped(keys[0], 10); p > 1 {
		t.Fatalf("low key predicts %d", p)
	}
	if p := m.PredictClamped(keys[99], 10); p < 8 {
		t.Fatalf("high key predicts %d", p)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if m := Fit(nil, 10); m.Predict(5) != 0 {
		t.Fatal("empty fit should be zero model")
	}
	m := Fit([]uint64{7}, 10)
	if p := m.PredictClamped(7, 10); p != 5 {
		t.Fatalf("single key predicts %d want middle", p)
	}
	m = Fit([]uint64{7, 7, 7}, 10)
	if p := m.PredictClamped(7, 10); p != 5 {
		t.Fatalf("constant keys predict %d", p)
	}
}

func TestPredictClampedBounds(t *testing.T) {
	m := Model{Slope: 1e18, Intercept: -1e18}
	if p := m.PredictClamped(0, 100); p != 0 {
		t.Fatalf("underflow clamp: %d", p)
	}
	if p := m.PredictClamped(1<<62, 100); p != 99 {
		t.Fatalf("overflow clamp: %d", p)
	}
}

// Property: predictions over the fitted keys are monotone non-decreasing
// (after clamping), which index partitioning relies on.
func TestQuickMonotonePredictions(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		keys := make([]uint64, n)
		k := uint64(0)
		for i := range keys {
			k += 1 + uint64(rng.Intn(1<<30))
			keys[i] = k
		}
		out := 2 + rng.Intn(64)
		m := Fit(keys, out)
		prev := 0
		for _, k := range keys {
			p := m.PredictClamped(k, out)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
