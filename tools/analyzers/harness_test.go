package analyzers

// A minimal analysistest-style harness: load testdata/src/<dir>, typecheck
// it with the source importer (stdlib-only environment), run one analyzer,
// and compare its diagnostics against `// want "regexp"` comments. Every
// want must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by a want.
//
// Imports of sibling testdata packages (import "protodef" from protouse)
// resolve by loading that directory first and running the analyzer over it
// facts-only, so package facts flow exactly as they do under the go vet
// protocol's .vetx threading — dependency diagnostics are discarded, its
// exported facts are served to the package under test.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

type wantLine struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// testEnv is one analyzer test's world: a shared fileset/type info, the
// packages loaded so far, and the per-package fact store the passes share.
type testEnv struct {
	t     *testing.T
	a     *Analyzer
	fset  *token.FileSet
	info  *types.Info
	src   types.Importer
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
	facts map[string][]byte
	diags []Diagnostic
}

type testImporter func(string) (*types.Package, error)

func (f testImporter) Import(path string) (*types.Package, error) { return f(path) }

// load parses, typechecks, and analyzer-runs testdata/src/<path>. Only the
// top-level package under test reports diagnostics; packages pulled in as
// dependencies run facts-only.
func (e *testEnv) load(path string, report bool) *types.Package {
	if p, ok := e.pkgs[path]; ok {
		return p
	}
	src := filepath.Join("testdata", "src", path)
	entries, err := os.ReadDir(src)
	if err != nil {
		e.t.Fatal(err)
	}
	var files []*ast.File
	for _, entry := range entries {
		if !strings.HasSuffix(entry.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(e.fset, filepath.Join(src, entry.Name()), nil, parser.ParseComments)
		if err != nil {
			e.t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		e.t.Fatalf("no Go files in %s", src)
	}

	conf := types.Config{Importer: testImporter(func(ip string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join("testdata", "src", ip)); err == nil {
			return e.load(ip, false), nil
		}
		return e.src.Import(ip)
	})}
	pkg, err := conf.Check(path, e.fset, files, e.info)
	if err != nil {
		e.t.Fatalf("typecheck %s: %v", path, err)
	}
	e.pkgs[path] = pkg
	e.files[path] = files

	pass := &Pass{
		Fset:      e.fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: e.info,
		Report: func(d Diagnostic) {
			if report {
				e.diags = append(e.diags, d)
			}
		},
		ReadFacts:  func(p string) []byte { return e.facts[p] },
		WriteFacts: func(b []byte) { e.facts[path] = b },
		DepFacts: func() map[string][]byte {
			all := map[string][]byte{}
			for p, b := range e.facts {
				if p != path {
					all[p] = b
				}
			}
			return all
		},
	}
	if err := e.a.Run(pass); err != nil {
		e.t.Fatalf("%s on %s: %v", e.a.Name, path, err)
	}
	return pkg
}

func runAnalyzerTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	env := &testEnv{
		t: t, a: a, fset: fset,
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		src:   importer.ForCompiler(fset, "source", nil),
		pkgs:  map[string]*types.Package{},
		files: map[string][]*ast.File{},
		facts: map[string][]byte{},
	}
	env.load(dir, true)

	wants := collectWants(t, fset, env.files[dir])
	for _, d := range env.diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

var wantRE = regexp.MustCompile(`// want (".*"|` + "`.*`" + `)\s*$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantLine {
	t.Helper()
	var out []*wantLine
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				m := wantRE.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				raw := m[1]
				var pat string
				if raw[0] == '`' {
					pat = raw[1 : len(raw)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("bad want at %s: %v", fset.Position(cm.Pos()), err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp at %s: %v", fset.Position(cm.Pos()), err)
				}
				pos := fset.Position(cm.Pos())
				out = append(out, &wantLine{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
