package client

import (
	"context"
	"fmt"

	"dytis/internal/proto"
)

// ScanStream begins a scan of up to max pairs with key >= start, in
// ascending key order, returned as a pull iterator:
//
//	s := c.ScanStream(ctx, 0, 0) // max <= 0: scan everything
//	defer s.Close()
//	for s.Next() {
//		use(s.Key(), s.Value())
//	}
//	if err := s.Err(); err != nil { ... }
//
// With protocol v2 negotiated the pairs arrive as a credit-flow-controlled
// chunk stream: the server never materializes (or queues) more than the
// credit window, so an arbitrarily large scan runs in bounded memory on
// both sides and interleaves with the connection's other pipelined traffic.
// Against a v1 server (or with WithV1Protocol) the iterator transparently
// falls back to paginated OpScan requests with the same per-page bound —
// same results, one round trip per page. Tune the chunk size and window
// with WithScanStream.
//
// The Scanner is not safe for concurrent use (one goroutine pulls it), and
// a streamed scan is pinned to one pooled connection: if that connection
// dies mid-stream, Err reports it and the pairs already pulled remain valid
// — re-issue from Key()+1 to resume. Close is idempotent and releases the
// stream early; it must be called (directly or via defer) unless Next has
// returned false.
func (c *Client) ScanStream(ctx context.Context, start uint64, max int) *Scanner {
	return c.ScanStreamAt(ctx, start, max, 0)
}

// ScanStreamAt is ScanStream pinned to a shard-map epoch: every page or
// chunk request carries epoch on the wire, and a shard server whose map has
// moved past it fails the scan with ErrWrongShard instead of silently
// truncating at the new shard boundary. epoch 0 means unpinned (the
// single-server behavior). Cluster's scatter-gather scan uses this; direct
// callers rarely need it.
func (c *Client) ScanStreamAt(ctx context.Context, start uint64, max int, epoch uint64) *Scanner {
	s := &Scanner{c: c, ctx: ctx, next: start, epoch: epoch}
	if max > 0 {
		s.max = uint64(max)
	}
	return s
}

// Scanner iterates one scan's results. See Client.ScanStream.
type Scanner struct {
	c   *Client
	ctx context.Context

	next  uint64 // stream: requested start; fallback: next page's start
	max   uint64 // total pair budget, 0 = unbounded
	epoch uint64 // shard-map epoch the scan is pinned to, 0 = unpinned

	started   bool
	stream    bool // streaming path (vs pagination fallback)
	closed    bool
	done      bool
	exhausted bool // fallback: the last page was short; no more to fetch
	recorded  bool // breaker outcome booked (allow/record must pair 1:1)
	err       error

	// Streaming state.
	cc       *clientConn
	id       uint64
	ch       chan result
	consumed bool // previous chunk fully handed out; owe one credit

	// Cursor over the current chunk/page.
	keys, vals []uint64
	i          int
	key, val   uint64
	delivered  uint64
	total      uint64
}

// Next advances to the next pair, reporting whether one is available. It
// blocks while waiting on the network and returns false at the end of the
// scan or on error (check Err to tell the two apart).
func (s *Scanner) Next() bool {
	if s.err != nil || s.closed {
		return false
	}
	if !s.started {
		s.started = true
		s.begin()
		if s.err != nil {
			return false
		}
	}
	if s.i < len(s.keys) {
		s.key, s.val = s.keys[s.i], s.vals[s.i]
		s.i++
		s.delivered++
		return true
	}
	if s.done {
		return false
	}
	if s.stream {
		return s.nextStream()
	}
	return s.nextFallback()
}

// Key returns the current pair's key. Valid after Next returned true.
func (s *Scanner) Key() uint64 { return s.key }

// Value returns the current pair's value. Valid after Next returned true.
func (s *Scanner) Value() uint64 { return s.val }

// Err returns the error that stopped the scan, nil after a complete one.
func (s *Scanner) Err() error { return s.err }

// Total returns how many pairs the scan delivered. After a complete stream
// it is the server's own count from the OpScanEnd frame.
func (s *Scanner) Total() uint64 {
	if s.stream && s.done {
		return s.total
	}
	return s.delivered
}

// Close releases the scan: a running stream is cancelled server-side (best
// effort) and late chunks are dropped. Idempotent; safe after Next returned
// false.
func (s *Scanner) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.started && s.stream && !s.done && s.err == nil {
		s.cancelStream()
	}
	if s.started {
		s.record(breakerNeutral)
	}
	return nil
}

// record books the scan's breaker outcome exactly once (the begin-time
// allow and this record must pair 1:1 or a half-open probe slot leaks).
func (s *Scanner) record(v breakerVerdict) {
	if s.recorded {
		return
	}
	s.recorded = true
	if s.c.br != nil {
		s.c.br.record(v)
	}
}

// begin picks the path: a v2 stream when the connection negotiated
// FeatScanStream, paginated v1 scans otherwise.
func (s *Scanner) begin() {
	c := s.c
	if c.br != nil {
		if err := c.br.allow(); err != nil {
			s.err = err
			s.recorded = true // allow failed: nothing to release
			return
		}
	}
	cc, err := c.conn(s.ctx)
	if err != nil {
		s.err = err
		s.record(classify(err, false))
		return
	}
	if cc.feats&proto.FeatScanStream == 0 {
		// Pagination fallback. Release the breaker slot now (neutral: the
		// link produced no outcome yet); each page runs through c.do and
		// books its own verdict.
		s.record(breakerNeutral)
		return
	}
	s.stream = true
	s.cc = cc
	s.id = cc.nextID.Add(1)
	// Window chunks in flight + the end frame + one failure slot: the read
	// loop and fail() never block on this channel (see registerStream).
	s.ch = make(chan result, c.o.scanWindow+2)
	if err := cc.registerStream(s.id, s.ch); err != nil {
		s.err = err
		s.record(classify(err, false))
		return
	}
	err = cc.writeFrame(s.ctx, &proto.Request{
		ID: s.id, Op: proto.OpScanStart,
		Key: s.next, ScanMax: s.max, Epoch: s.epoch,
		Max: uint32(c.o.scanChunk), Credits: uint32(c.o.scanWindow),
	})
	if err != nil {
		cc.dropStream(s.id)
		s.err = err
		s.record(classify(err, false))
	}
}

// nextStream pulls the next chunk off the stream channel.
func (s *Scanner) nextStream() bool {
	for {
		if s.consumed {
			// The previous chunk has been fully handed out: grant its
			// credit back so the server keeps the window full. Best effort —
			// a write failure surfaces on the channel as the conn fails.
			s.consumed = false
			s.cc.writeFrame(s.ctx, &proto.Request{ID: s.id, Op: proto.OpScanCredit, Credits: 1})
		}
		select {
		case r := <-s.ch:
			if r.err != nil {
				s.fail(r.err, false)
				return false
			}
			resp := r.resp
			if resp.Op == proto.OpScanStart {
				// The server refused to start the stream (feature not
				// negotiated, duplicate id, or its concurrent-scan cap).
				// That answer carries OpScanStart, so the read loop routes
				// it here — to the stream, not a waiter — and it is
				// terminal for the stream.
				serr, _ := statusErr(resp)
				if serr == nil {
					serr = fmt.Errorf("proto: server status %d: %s", resp.Status, resp.Msg)
				}
				s.fail(fmt.Errorf("client: scan refused by server: %w", serr), true)
				return false
			}
			if resp.Op == proto.OpScanEnd {
				if resp.Status != proto.StatusOK {
					// statusErr keeps the abort typed (a wrong-shard end must
					// stay matchable as ErrWrongShard for the cluster router).
					serr, _ := statusErr(resp)
					if serr == nil {
						serr = resp.Err()
					}
					s.fail(fmt.Errorf("client: scan aborted by server: %w", serr), true)
					return false
				}
				s.total = resp.Val
				s.done = true
				s.record(breakerOK)
				return false
			}
			s.consumed = true
			if len(resp.Keys) == 0 {
				continue
			}
			s.keys, s.vals = resp.Keys, resp.Vals
			s.key, s.val = s.keys[0], s.vals[0]
			s.i = 1
			s.delivered++
			return true
		case <-s.ctx.Done():
			s.cancelStream()
			s.fail(s.ctx.Err(), false)
			return false
		}
	}
}

// nextFallback fetches the next page with a plain OpScan.
func (s *Scanner) nextFallback() bool {
	if s.exhausted {
		s.done = true
		return false
	}
	page := s.c.o.scanChunk
	if s.max > 0 {
		if rem := s.max - s.delivered; rem < uint64(page) {
			page = int(rem)
		}
	}
	if page == 0 {
		s.done = true
		return false
	}
	resp, err := s.c.do(s.ctx, &proto.Request{Op: proto.OpScan, Key: s.next, Max: uint32(page), Epoch: s.epoch})
	if err != nil {
		s.err = err // c.do booked the breaker verdict for this page
		return false
	}
	if len(resp.Keys) < page {
		s.exhausted = true // short page: nothing left after this one
	} else if last := resp.Keys[len(resp.Keys)-1]; last == ^uint64(0) {
		s.exhausted = true // top of the key space; last+1 would wrap to 0
	} else {
		s.next = last + 1
	}
	if len(resp.Keys) == 0 {
		s.done = true
		return false
	}
	s.keys, s.vals = resp.Keys, resp.Vals
	s.key, s.val = s.keys[0], s.vals[0]
	s.i = 1
	s.delivered++
	return true
}

// cancelStream deregisters the stream and tells the server to stop
// producing (best effort, no deadline: the caller's ctx may already be
// done, and the cancel frame is fire-and-forget).
func (s *Scanner) cancelStream() {
	s.cc.dropStream(s.id)
	s.cc.writeFrame(context.Background(), &proto.Request{ID: s.id, Op: proto.OpScanCancel})
}

// fail records the scan's terminal error. gotResponse says the server
// answered (the link is healthy), which the breaker must not count as a
// connection failure.
func (s *Scanner) fail(err error, gotResponse bool) {
	if s.stream && s.cc != nil {
		s.cc.dropStream(s.id)
	}
	s.err = err
	s.record(classify(err, gotResponse))
}
