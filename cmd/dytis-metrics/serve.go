package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dytis"
	"dytis/internal/datasets"
)

// serve runs a concurrent DyTIS index under a continuous mixed workload and
// blocks serving its observer over HTTP until SIGINT/SIGTERM. The workload
// cycles through the dataset's key stream: ahead of the frontier it inserts
// (fresh keys, the dynamic-dataset pattern the paper targets), behind it it
// mixes point lookups, short scans, and occasional deletes, so every
// histogram and structure-event counter stays live.
//
// Shutdown is graceful: on a signal the workload goroutines stop, the HTTP
// server drains its in-flight scrapes, and the index is Closed (detaching it
// from the observer) before the process exits 0.
func serve(addr, dataset string, threads int) error {
	spec, ok := datasets.ByName(dataset)
	if !ok {
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if threads < 1 {
		threads = 1
	}
	n := spec.Count(*scaleFlag)
	if n < 100000 {
		n = 100000
	}
	keys := spec.Gen(n, *seedFlag)

	ob := dytis.NewObserver()
	idx := dytis.New(dytis.WithConcurrent(), dytis.WithObserver(ob))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			drive(ctx, idx, keys, t, threads)
		}(t)
	}

	fmt.Printf("serving live metrics for a DyTIS index under a %s workload (%d keys, %d threads)\n",
		spec.Name, len(keys), threads)
	fmt.Printf("  http://localhost%s/metrics      Prometheus text format\n", addr)
	fmt.Printf("  http://localhost%s/debug/vars   expvar JSON\n", addr)

	srv := &http.Server{Addr: addr, Handler: ob.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()

	select {
	case err := <-httpErr:
		stop() // listener failed; unwind the workload
		wg.Wait()
		idx.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Println("signal received; shutting down...")
	wg.Wait() // workload goroutines observe ctx and stop
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shCtx)
	<-httpErr // ListenAndServe returned http.ErrServerClosed
	idx.Close()
	fmt.Println("dytis-metrics: clean shutdown")
	return nil
}

// drive loops one workload goroutine over its stripe of the key stream until
// ctx is done: insert the frontier key, then 3 gets, and periodically a
// 100-key scan or a delete against the loaded prefix. When the stream is
// exhausted the pass restarts (inserts become updates), keeping the op mix
// steady.
func drive(ctx context.Context, idx *dytis.Index, keys []uint64, stripe, threads int) {
	rng := rand.New(rand.NewSource(int64(stripe) + 42))
	for pass := 0; ; pass++ {
		for i := stripe; i < len(keys); i += threads {
			// Poll the signal once per small op group; the checks are cheap
			// relative to the index work.
			select {
			case <-ctx.Done():
				return
			default:
			}
			idx.Insert(keys[i], keys[i])
			for j := 0; j < 3; j++ {
				idx.Get(keys[rng.Intn(i+1)])
			}
			switch {
			case i%512 == 0:
				idx.Scan(keys[rng.Intn(i+1)], 100, nil)
			case i%97 == 0 && pass == 0 && i > 0:
				idx.Delete(keys[rng.Intn(i)])
			}
		}
	}
}
