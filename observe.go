package dytis

import (
	"dytis/internal/core"
	"dytis/internal/obs"
)

// Option configures an index at construction; pass Options to New.
// The With* constructors below cover the paper's knobs; unset parameters
// keep their §4.1 defaults.
type Option func(*core.Options)

// WithConcurrent makes all index methods safe for concurrent use: writers
// follow the two-level (EH + segment) reader/writer locking scheme of §3.4,
// while Get and Scan run an optimistic protocol (published directory
// snapshots plus a per-segment seqlock) that keeps point lookups lock-free;
// see DESIGN.md "Concurrency design".
func WithConcurrent() Option {
	return func(o *core.Options) { o.Concurrent = true }
}

// WithLockedReads forces Concurrent-mode reads back onto the fully locked
// §3.4 path, disabling the optimistic lock-free Get and snapshot-resolved
// Scan. It exists as the benchmark baseline for the optimistic path and as
// a conservative fallback; it has no effect without WithConcurrent.
func WithLockedReads() Option {
	return func(o *core.Options) { o.DisableOptimisticReads = true }
}

// WithFirstLevelBits sets R, the number of key MSBs selecting the
// first-level EH table (2^R tables; default 9, capped at 16).
func WithFirstLevelBits(r int) Option {
	return func(o *core.Options) { o.FirstLevelBits = r }
}

// WithBucketEntries sets the number of key/value pairs per bucket (the
// paper's B_size; default 128 pairs = 2 KB).
func WithBucketEntries(n int) Option {
	return func(o *core.Options) { o.BucketEntries = n }
}

// WithUtilThreshold sets U_t in (0,1), the segment utilization separating
// the split/expansion path from the remapping path (default 0.6).
func WithUtilThreshold(u float64) Option {
	return func(o *core.Options) { o.UtilThreshold = u }
}

// WithStartDepth sets L_start, the local depth at which remapping and
// expansion begin (default 6).
func WithStartDepth(d int) Option {
	return func(o *core.Options) { o.StartDepth = d }
}

// WithSegLimitMult sets the base multiplier of the per-depth segment-size
// limit Limit_seg (default 2).
func WithSegLimitMult(m int) Option {
	return func(o *core.Options) { o.SegLimitMult = m }
}

// WithObserver attaches an observability layer to the index: every
// Get/Insert/Delete/Scan latency is recorded into ob's sharded histograms,
// every structure-maintenance operation fires a StructureEvent, and
// ob.Handler() serves it all (plus the index's Stats and MemoryFootprint)
// over HTTP. A nil ob leaves observability disabled.
//
// With no observer attached (the default), instrumentation costs one branch
// per operation; see the BenchmarkObservability* results in the README.
func WithObserver(ob *Observer) Option {
	return func(o *core.Options) {
		if ob != nil {
			o.Observer = ob
		}
	}
}

// Observer collects per-operation latency histograms and structure events
// from an index; create one with NewObserver, attach it with WithObserver,
// and serve its Handler. See internal/obs for the implementation.
type Observer = obs.Observer

// NewObserver returns an empty Observer.
func NewObserver() *Observer { return obs.New() }

// Op identifies a public index operation in observer histograms.
type Op = core.Op

// Observable operations.
const (
	OpGet    = core.OpGet
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
	OpScan   = core.OpScan
)

// EventKind identifies a structure-maintenance operation (Algorithm 1).
type EventKind = core.EventKind

// Structure-event kinds: segment split, remapping-function adjustment,
// in-place segment expansion, directory doubling, a remap attempt that
// exceeded Limit_seg and fell through to the structural path, and the
// deletion-path segment shrink (remapping in the opposite direction).
const (
	EvSplit        = core.EvSplit
	EvRemap        = core.EvRemap
	EvExpand       = core.EvExpand
	EvDouble       = core.EvDouble
	EvRemapFailure = core.EvRemapFailure
	EvShrink       = core.EvShrink
)

// StructureEvent describes one completed structure-maintenance operation;
// subscribe to a stream of them with Observer.Subscribe.
type StructureEvent = core.StructureEvent
