package pgm

import (
	"sort"

	"dytis/internal/kv"
)

// run is one immutable sorted run with its static PGM. Tombstones mark
// deletions that shadow older runs until a merge drops them.
type run struct {
	keys  []uint64
	vals  []uint64
	tomb  []uint64 // bitmap, 1 = tombstone
	index static
}

func (r *run) isTomb(i int) bool { return r.tomb[i>>6]&(1<<(uint(i)&63)) != 0 }
func (r *run) setTomb(i int)     { r.tomb[i>>6] |= 1 << (uint(i) & 63) }

// find returns the position of k in the run, or -1.
func (r *run) find(k uint64) int {
	n := len(r.keys)
	if n == 0 {
		return -1
	}
	p, eps := r.index.approxPos(k, n)
	lo := clamp(p-eps-1, 0, n)
	hi := clamp(p+eps+2, 0, n)
	// Widen if the error bound was exceeded by float rounding (possible for
	// keys more than 2^53 apart within one segment).
	for lo > 0 && r.keys[lo] > k {
		lo = clamp(lo-2*eps, 0, n)
	}
	for hi < n && r.keys[hi-1] < k {
		hi = clamp(hi+2*eps, 0, n)
	}
	j := lo + sort.Search(hi-lo, func(m int) bool { return r.keys[lo+m] >= k })
	if j < n && r.keys[j] == k {
		return j
	}
	return -1
}

// lowerBound returns the first position with key >= k.
func (r *run) lowerBound(k uint64) int {
	n := len(r.keys)
	if n == 0 {
		return 0
	}
	p, eps := r.index.approxPos(k, n)
	lo := clamp(p-eps-1, 0, n)
	hi := clamp(p+eps+2, 0, n)
	for lo > 0 && r.keys[lo] > k {
		lo = clamp(lo-2*eps, 0, n)
	}
	for hi < n && r.keys[hi-1] < k {
		hi = clamp(hi+2*eps, 0, n)
	}
	return lo + sort.Search(hi-lo, func(m int) bool { return r.keys[lo+m] >= k })
}

// bufferCap is the size of the unindexed insert buffer (run 0 equivalent).
const bufferCap = 256

// Index is a dynamic PGM-index: a sorted insert buffer plus geometrically
// sized runs, newest first. Not safe for concurrent use.
type Index struct {
	bkeys []uint64 // sorted buffer
	bvals []uint64
	btomb []bool
	runs  []*run // runs[i] has capacity bufferCap << (i+1); nil slots empty
	n     int
	// Merges counts run-merge operations (the PGM's analogue of the
	// maintenance operations the paper's §4.3 profiles).
	Merges int64
}

// New returns an empty dynamic PGM-index.
func New() *Index { return &Index{} }

// BulkLoad replaces the contents with ascending pairs as one big run.
func (x *Index) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("pgm: mismatched bulk-load slices")
	}
	x.bkeys, x.bvals, x.btomb = nil, nil, nil
	x.runs = nil
	x.n = len(keys)
	if len(keys) == 0 {
		return
	}
	r := &run{
		keys: append([]uint64(nil), keys...),
		vals: append([]uint64(nil), values...),
		tomb: make([]uint64, (len(keys)+63)/64),
	}
	r.index = buildStatic(r.keys)
	// Place it at the level matching its size.
	lvl := 0
	for bufferCap<<(lvl+1) < len(keys) {
		lvl++
	}
	x.runs = make([]*run, lvl+1)
	x.runs[lvl] = r
}

// bufFind returns the buffer position of k, or -1.
func (x *Index) bufFind(k uint64) int {
	i := sort.Search(len(x.bkeys), func(m int) bool { return x.bkeys[m] >= k })
	if i < len(x.bkeys) && x.bkeys[i] == k {
		return i
	}
	return -1
}

// Get returns the value for key: the buffer shadows runs, newer runs shadow
// older ones, tombstones shadow live entries.
func (x *Index) Get(key uint64) (uint64, bool) {
	if i := x.bufFind(key); i >= 0 {
		if x.btomb[i] {
			return 0, false
		}
		return x.bvals[i], true
	}
	for _, r := range x.runs {
		if r == nil {
			continue
		}
		if j := r.find(key); j >= 0 {
			if r.isTomb(j) {
				return 0, false
			}
			return r.vals[j], true
		}
	}
	return 0, false
}

// exists reports liveness (used to keep n exact).
func (x *Index) exists(key uint64) bool {
	_, ok := x.Get(key)
	return ok
}

// Insert stores or updates key.
func (x *Index) Insert(key, value uint64) {
	if !x.exists(key) {
		x.n++
	}
	x.bufPut(key, value, false)
}

// Delete removes key, reporting whether it was present.
func (x *Index) Delete(key uint64) bool {
	if !x.exists(key) {
		return false
	}
	x.n--
	x.bufPut(key, 0, true)
	return true
}

// bufPut upserts into the buffer (tombstone or live) and merges on overflow.
func (x *Index) bufPut(key, value uint64, tomb bool) {
	i := sort.Search(len(x.bkeys), func(m int) bool { return x.bkeys[m] >= key })
	if i < len(x.bkeys) && x.bkeys[i] == key {
		x.bvals[i] = value
		x.btomb[i] = tomb
		return
	}
	x.bkeys = append(x.bkeys, 0)
	x.bvals = append(x.bvals, 0)
	x.btomb = append(x.btomb, false)
	copy(x.bkeys[i+1:], x.bkeys[i:])
	copy(x.bvals[i+1:], x.bvals[i:])
	copy(x.btomb[i+1:], x.btomb[i:])
	x.bkeys[i], x.bvals[i], x.btomb[i] = key, value, tomb
	if len(x.bkeys) >= bufferCap {
		x.flush()
	}
}

// flush converts the buffer into a run and carries it up the run chain,
// merging with each occupied level like a binomial counter. The final merge
// at the top level also drops tombstones (nothing older remains to shadow).
func (x *Index) flush() {
	cur := &run{
		keys: x.bkeys, vals: x.bvals,
		tomb: make([]uint64, (len(x.bkeys)+63)/64),
	}
	for i, t := range x.btomb {
		if t {
			cur.setTomb(i)
		}
	}
	x.bkeys, x.bvals, x.btomb = nil, nil, nil
	lvl := 0
	for {
		if lvl == len(x.runs) {
			x.runs = append(x.runs, nil)
		}
		if x.runs[lvl] == nil {
			// Drop tombstones if nothing older exists below this level.
			if x.nothingOlder(lvl) {
				cur = dropTombs(cur)
			}
			cur.index = buildStatic(cur.keys)
			x.runs[lvl] = cur
			return
		}
		// cur is newer than runs[lvl]: merge with cur winning ties.
		cur = mergeRuns(cur, x.runs[lvl], x.nothingOlder(lvl+1))
		x.runs[lvl] = nil
		x.Merges++
		lvl++
	}
}

// nothingOlder reports whether no run exists at level >= lvl.
func (x *Index) nothingOlder(lvl int) bool {
	for i := lvl; i < len(x.runs); i++ {
		if x.runs[i] != nil {
			return false
		}
	}
	return true
}

// mergeRuns merges newer over older; dropTombstones removes tombstoned keys
// entirely (safe only when nothing older could resurrect them).
func mergeRuns(newer, older *run, dropTombstones bool) *run {
	out := &run{
		keys: make([]uint64, 0, len(newer.keys)+len(older.keys)),
		vals: make([]uint64, 0, len(newer.keys)+len(older.keys)),
	}
	var tombs []int
	i, j := 0, 0
	emit := func(k, v uint64, tomb bool) {
		if tomb && dropTombstones {
			return
		}
		if tomb {
			tombs = append(tombs, len(out.keys))
		}
		out.keys = append(out.keys, k)
		out.vals = append(out.vals, v)
	}
	for i < len(newer.keys) || j < len(older.keys) {
		switch {
		case j == len(older.keys) || (i < len(newer.keys) && newer.keys[i] < older.keys[j]):
			emit(newer.keys[i], newer.vals[i], newer.isTomb(i))
			i++
		case i == len(newer.keys) || older.keys[j] < newer.keys[i]:
			emit(older.keys[j], older.vals[j], older.isTomb(j))
			j++
		default: // equal: newer wins
			emit(newer.keys[i], newer.vals[i], newer.isTomb(i))
			i++
			j++
		}
	}
	out.tomb = make([]uint64, (len(out.keys)+63)/64)
	for _, t := range tombs {
		out.setTomb(t)
	}
	return out
}

func dropTombs(r *run) *run {
	out := &run{
		keys: make([]uint64, 0, len(r.keys)),
		vals: make([]uint64, 0, len(r.keys)),
	}
	for i := range r.keys {
		if !r.isTomb(i) {
			out.keys = append(out.keys, r.keys[i])
			out.vals = append(out.vals, r.vals[i])
		}
	}
	out.tomb = make([]uint64, (len(out.keys)+63)/64)
	return out
}

// Len returns the number of live keys.
func (x *Index) Len() int { return x.n }

// Scan appends up to max live pairs with key >= start in ascending order,
// merging the buffer and all runs with newest-wins shadowing.
func (x *Index) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	type cursor struct {
		keys []uint64
		vals []uint64
		tomb func(int) bool
		pos  int
	}
	var curs []cursor // index 0 = newest (buffer)
	bi := sort.Search(len(x.bkeys), func(m int) bool { return x.bkeys[m] >= start })
	curs = append(curs, cursor{x.bkeys, x.bvals, func(i int) bool { return x.btomb[i] }, bi})
	for _, r := range x.runs {
		if r == nil {
			continue
		}
		r := r
		curs = append(curs, cursor{r.keys, r.vals, r.isTomb, r.lowerBound(start)})
	}
	taken := 0
	for taken < max {
		// Smallest current key across cursors; newest wins ties.
		best := -1
		var bk uint64
		for ci := range curs {
			c := &curs[ci]
			if c.pos >= len(c.keys) {
				continue
			}
			if best < 0 || c.keys[c.pos] < bk {
				best = ci
				bk = c.keys[c.pos]
			}
		}
		if best < 0 {
			break
		}
		c := &curs[best]
		tomb := c.tomb(c.pos)
		v := c.vals[c.pos]
		// Advance every cursor past bk (shadowed duplicates skipped).
		for ci := range curs {
			cc := &curs[ci]
			for cc.pos < len(cc.keys) && cc.keys[cc.pos] == bk {
				cc.pos++
			}
		}
		if !tomb {
			dst = append(dst, kv.KV{Key: bk, Value: v})
			taken++
		}
	}
	return dst
}

// Runs reports the live run sizes, newest first (for tests/metrics).
func (x *Index) Runs() []int {
	out := []int{len(x.bkeys)}
	for _, r := range x.runs {
		if r != nil {
			out = append(out, len(r.keys))
		}
	}
	return out
}

// MemoryFootprint estimates heap bytes.
func (x *Index) MemoryFootprint() int64 {
	b := int64(len(x.bkeys)) * 17
	for _, r := range x.runs {
		if r == nil {
			continue
		}
		b += int64(len(r.keys))*16 + int64(len(r.tomb))*8
		for _, lv := range r.index.levels {
			b += int64(len(lv)) * 24
		}
	}
	return b
}
