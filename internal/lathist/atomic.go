package lathist

import (
	"sync/atomic"
	"time"
)

// AtomicHist is a latency histogram safe for concurrent Record calls, with
// the same bucket layout as Hist. It backs the always-on observability path
// (internal/obs), where one histogram shard is shared by all goroutines
// hitting the same first-level EH table: Record is a handful of uncontended
// atomic adds, and readers fold shards into a plain Hist with AddTo.
//
// The zero value is ready to use.
type AtomicHist struct {
	counts [nBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	// min stores the observed minimum plus one, so zero means "no
	// observations yet" and a recorded latency of 0 is representable.
	min atomic.Uint64
}

// Record adds one latency observation. It is safe to call concurrently.
func (h *AtomicHist) Record(d time.Duration) {
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if (cur != 0 && cur <= v+1) || h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// RecordN adds n identical latency observations in one shot — the batched
// form of Record (same cost as a single Record regardless of n), used by the
// batch entry points to book a whole batch's mean per-op latency without
// paying one Record per operation.
func (h *AtomicHist) RecordN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	c := uint64(n)
	h.counts[bucketOf(v)].Add(c)
	h.total.Add(c)
	h.sum.Add(v * c)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if (cur != 0 && cur <= v+1) || h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *AtomicHist) Count() uint64 { return h.total.Load() }

// AddTo folds a snapshot of h into dst. Concurrent Record calls may or may
// not be included; the snapshot is not atomic across buckets, but every
// completed Record is eventually visible to a later AddTo.
func (h *AtomicHist) AddTo(dst *Hist) {
	if h.total.Load() == 0 {
		return
	}
	var snap Hist
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.counts[i] = c
		snap.total += c
	}
	if snap.total == 0 {
		return
	}
	snap.sum = h.sum.Load()
	snap.max = h.max.Load()
	if m := h.min.Load(); m != 0 {
		snap.min = m - 1
	}
	dst.Merge(&snap)
}

// Reset clears the histogram. Not safe to call concurrently with Record.
func (h *AtomicHist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(0)
}
