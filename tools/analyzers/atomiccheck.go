package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCheck flags the two ways the package's atomic counters can be used
// unsoundly:
//
//  1. Copying: assigning, passing, or ranging a sync/atomic value (or any
//     struct that transitively contains one) by value. The copy silently
//     forks the counter — all sync/atomic types carry a noCopy guard for
//     exactly this reason, but `go vet -copylocks` only knows about locks.
//  2. Mixed access: a plain integer field that is touched through the
//     atomic.AddInt64/LoadInt64/... function forms somewhere in the package
//     must be touched that way everywhere; any plain read or write of the
//     same field is a data race.
//
// _test.go files are skipped.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "flag copies of sync/atomic values and mixed atomic/plain access to counters",
	Run:  runAtomicCheck,
}

func runAtomicCheck(pass *Pass) error {
	c := &atomicChecker{pass: pass, atomicFields: map[*types.Var]bool{}}
	// Pass 1: find fields used via the atomic.* function forms.
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && c.isAtomicFuncCall(call) {
				c.recordAtomicOperand(call)
			}
			return true
		})
	}
	// Pass 2: flag copies and plain accesses.
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		c.checkFile(f)
	}
	return nil
}

type atomicChecker struct {
	pass         *Pass
	atomicFields map[*types.Var]bool // fields accessed via atomic.* functions
}

// isAtomicFuncCall reports whether call is sync/atomic.AddInt64 and friends.
func (c *atomicChecker) isAtomicFuncCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// recordAtomicOperand notes the field behind the &x.f first argument.
func (c *atomicChecker) recordAtomicOperand(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	un, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return
	}
	sel, ok := un.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			c.atomicFields[v] = true
		}
	}
}

func (c *atomicChecker) checkFile(f *ast.File) {
	// Track positions already inside an atomic.*(&x.f, ...) operand or an
	// explicit &x.f so they are not reported as plain accesses.
	sanctioned := map[*ast.SelectorExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND {
			if sel, ok := un.X.(*ast.SelectorExpr); ok {
				sanctioned[sel] = true
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				c.checkCopy(r)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				c.checkCopy(v)
			}
		case *ast.CallExpr:
			if !c.isAtomicFuncCall(n) {
				for _, a := range n.Args {
					c.checkCopy(a)
				}
			}
		case *ast.RangeStmt:
			if x := n.X; x != nil {
				if t := c.pass.TypesInfo.TypeOf(x); t != nil {
					if sl, ok := t.Underlying().(*types.Slice); ok && containsAtomic(sl.Elem()) {
						c.pass.Reportf(n.Range, "range copies %s values containing sync/atomic fields", sl.Elem())
					}
				}
			}
		case *ast.SelectorExpr:
			if sanctioned[n] {
				return true
			}
			c.checkPlainAccess(n)
		}
		return true
	})
}

// checkCopy flags e when evaluating it copies an atomic-bearing value out of
// existing memory (reading a variable, field, element, or dereference —
// fresh composites and calls construct new values and are fine).
func (c *atomicChecker) checkCopy(e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil || !containsAtomic(t) {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	c.pass.Reportf(e.Pos(), "copies a %s value containing sync/atomic state; use a pointer", t)
}

// checkPlainAccess flags non-atomic touches of fields that are elsewhere
// accessed through the atomic.* function forms.
func (c *atomicChecker) checkPlainAccess(sel *ast.SelectorExpr) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !c.atomicFields[v] {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(), "non-atomic access to %s, which is accessed with sync/atomic elsewhere", v.Name())
}

// containsAtomic reports whether t is or transitively contains a sync/atomic
// type.
func containsAtomic(t types.Type) bool {
	return containsAtomic1(t, map[types.Type]bool{})
}

func containsAtomic1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && !strings.HasPrefix(obj.Name(), "no") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic1(u.Elem(), seen)
	}
	return false
}
