// Package analyzers holds the project's custom static-analysis passes and
// the minimal framework they run on. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) but is
// self-contained — the module is stdlib-only — and supports exactly what the
// two passes need: a parsed, type-checked single package and a diagnostic
// sink. cmd/vet-dytis adapts it to the `go vet -vettool` protocol.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run applies the pass to one package, reporting findings via
	// pass.Report.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer { return []*Analyzer{LockCheck, AtomicCheck} }
