package b

import "sync/atomic"

type counters struct {
	hits atomic.Int64
	mix  int64
	ok   int64
}

type wrapper struct {
	c counters
}

func copies(c *counters, w *wrapper) {
	x := c.hits // want `copies a sync/atomic.Int64 value`
	_ = x.Load()
	y := *c // want `copies a b.counters value containing sync/atomic state`
	_ = y.ok
	z := w.c // want `copies a b.counters value containing sync/atomic state`
	_ = z.ok
}

func passesByValue(c counters) int64 { // parameters are the caller's copy site
	return c.hits.Load()
}

func callCopy(c *counters) {
	_ = passesByValue(*c) // want `copies a b.counters value containing sync/atomic state`
}

func rangeCopy(cs []counters) {
	for range cs { // want `range copies b.counters values containing sync/atomic fields`
		_ = cs
	}
}

func pointerUseIsFine(c *counters) int64 {
	p := c // pointer copy, no atomic state duplicated
	return p.hits.Add(1)
}

func mixed(c *counters) int64 {
	atomic.AddInt64(&c.mix, 1)
	c.mix++    // want `non-atomic access to mix`
	n := c.mix // want `non-atomic access to mix`
	return n + atomic.LoadInt64(&c.mix)
}

func unmixed(c *counters) int64 {
	c.ok++ // never touched via atomic.* functions; plain access is fine
	return c.ok
}
