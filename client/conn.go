package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/proto"
)

// clientConn is one pooled connection. Requests from any number of
// goroutines interleave on it: each registers a waiter keyed by its request
// id, appends its frame under the write lock, and blocks on its own channel;
// the single read loop routes responses by id, so pipelined completions can
// arrive in any order. When the connection dies every waiter fails with the
// sticky error and the conn is left for the pool to replace.
type clientConn struct {
	nc     net.Conn
	nextID atomic.Uint64

	// inflight bounds pipelining: a slot is taken before writing and
	// released when the response (or failure) arrives.
	inflight chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint64]chan result
	err     error // sticky; non-nil once the conn is dead
}

type result struct {
	resp *proto.Response
	err  error
}

func dialConn(addr string, o options) (*clientConn, error) {
	dial := o.dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, o.dialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		nc:       nc,
		inflight: make(chan struct{}, o.pipeline),
		waiters:  make(map[uint64]chan result),
	}
	go cc.readLoop()
	return cc, nil
}

// broken reports whether the connection has failed and must be replaced.
func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// fail marks the connection dead, closes the socket, and delivers err to
// every waiter. Idempotent; the first error wins.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	waiters := cc.waiters
	cc.waiters = nil
	cc.mu.Unlock()
	cc.nc.Close()
	for _, ch := range waiters {
		ch <- result{err: err}
	}
}

// readLoop routes response frames to waiters until the connection dies.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, 32<<10)
	var buf []byte
	for {
		body, nbuf, err := proto.ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			cc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp := new(proto.Response) // escapes to the waiter; no reuse
		if err := proto.DecodeResponse(body, resp); err != nil {
			cc.fail(fmt.Errorf("client: protocol error: %w", err))
			return
		}
		cc.mu.Lock()
		ch := cc.waiters[resp.ID]
		delete(cc.waiters, resp.ID)
		cc.mu.Unlock()
		if ch != nil {
			ch <- result{resp: resp}
		}
		// A response with no waiter is one whose caller timed out; drop it.
	}
}

// do sends req and waits for its response, honoring ctx for the queueing,
// the write, and the wait.
func (cc *clientConn) do(ctx context.Context, req *proto.Request) (*proto.Response, error) {
	select {
	case cc.inflight <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-cc.inflight }()

	req.ID = cc.nextID.Add(1)
	// Propagate the caller's remaining deadline budget on the wire so the
	// server can skip executing a request whose caller has already given
	// up (it answers StatusDeadlineExceeded, which nobody is waiting for).
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			ms := int64(rem / time.Millisecond)
			if ms < 1 {
				ms = 1
			}
			if ms > int64(^uint32(0)) {
				ms = int64(^uint32(0))
			}
			req.TimeoutMS = uint32(ms)
		}
	}
	frame, err := proto.AppendRequest(nil, req)
	if err != nil {
		return nil, err
	}
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.waiters[req.ID] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		cc.nc.SetWriteDeadline(dl)
	} else {
		cc.nc.SetWriteDeadline(time.Time{})
	}
	_, werr := cc.nc.Write(frame)
	cc.wmu.Unlock()
	if werr != nil {
		// A write error poisons the framing for every user of the conn
		// (partial frames desynchronize the stream), so the whole conn fails.
		cc.fail(fmt.Errorf("client: write: %w", werr))
		<-ch // fail delivered to our waiter (or routed response raced it)
		return nil, fmt.Errorf("client: write: %w", werr)
	}

	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		// Deregister so the response, if it still comes, is dropped.
		cc.mu.Lock()
		if cc.waiters != nil {
			delete(cc.waiters, req.ID)
		}
		cc.mu.Unlock()
		select {
		case r := <-ch: // response or failure raced the deregistration
			return r.resp, r.err
		default:
		}
		return nil, ctx.Err()
	}
}
