package server

// Streaming scans (protocol v2, FeatScanStream). An OpScanStart spawns one
// goroutine per stream that pages through the index and pushes OpScanChunk
// frames into the connection's out channel, ending with OpScanEnd. Two
// mechanisms bound its memory and its claim on the connection:
//
//   - Credits: the server sends at most `credits` chunks ahead of what the
//     client has consumed; the client grants one credit back per consumed
//     chunk (OpScanCredit). A stalled consumer therefore parks the stream
//     with nothing buffered beyond its window, while the connection's other
//     pipelined traffic keeps flowing.
//   - The shared out channel: chunks interleave with ordinary responses and
//     inherit the same write-loop backpressure, so a scan can never queue
//     more than the channel bound even if the client grants a huge window.
//
// Each page of index work briefly takes an admission-control slot (when
// MaxInflight is configured), so N streams cannot out-compete point reads
// for the index.

import (
	"runtime/debug"
	"sync"
	"time"

	"dytis/internal/kv"
	"dytis/internal/proto"
)

// maxScansPerConn caps concurrently running streams per connection; an
// OpScanStart beyond it is answered StatusOverload (retryable) instead of
// growing the stream table unboundedly.
const maxScansPerConn = 16

// scanStream is one running streaming scan.
type scanStream struct {
	c     *conn
	id    uint64 // the OpScanStart's request id, echoed on every frame
	next  uint64 // next page's start key
	max   uint64 // total pair budget, 0 = unbounded
	chunk int    // per-chunk pair bound
	epoch uint64 // shard-map epoch the stream is pinned to (cluster only)

	mu      sync.Mutex
	credits uint32        // guarded-by: mu
	signal  chan struct{} // 1-buffered kick: a grant arrived

	cancelOnce sync.Once
	cancel     chan struct{} // closed by OpScanCancel
}

// handleScanStart validates and launches one stream; it reports whether the
// connection should go on (a feature violation quarantines it).
func (c *conn) handleScanStart(arrival time.Time) bool {
	cfg := &c.srv.cfg
	req, resp := &c.req, &c.resp
	*resp = proto.Response{ID: req.ID, Op: proto.OpScanStart}
	if c.feats&proto.FeatScanStream == 0 {
		resp.Status = proto.StatusBadRequest
		resp.Msg = "scan-stream: feature not negotiated"
		c.send(resp)
		return false
	}
	c.scanMu.Lock()
	if c.scans == nil {
		c.scans = make(map[uint64]*scanStream)
	}
	if _, dup := c.scans[req.ID]; dup {
		c.scanMu.Unlock()
		resp.Status = proto.StatusBadRequest
		resp.Msg = "scan-stream: duplicate stream id"
		c.send(resp)
		return false
	}
	if len(c.scans) >= maxScansPerConn {
		c.scanMu.Unlock()
		if m := cfg.Metrics; m != nil {
			m.overload()
		}
		resp.Status = proto.StatusOverload
		resp.Msg = "scan-stream: too many concurrent scans"
		resp.RetryAfterMS = uint32(cfg.RetryAfter.Milliseconds())
		return c.send(resp)
	}
	s := &scanStream{
		c: c, id: req.ID, next: req.Key, max: req.ScanMax, chunk: int(req.Max),
		epoch:   req.Epoch,
		credits: req.Credits,
		signal:  make(chan struct{}, 1),
		cancel:  make(chan struct{}),
	}
	c.scans[req.ID] = s
	c.scanMu.Unlock()
	if m := cfg.Metrics; m != nil {
		m.scanStream()
		m.recordOp(proto.OpScanStart, c.shard, 1, time.Since(arrival))
	}
	c.scanWg.Add(1)
	go s.run()
	return true
}

// handleScanCredit grants chunk credits to the stream named by the request
// id. A grant for a stream that already ended is dropped silently — the race
// between a final chunk and an in-flight credit is inherent, and credit
// frames are never answered.
func (c *conn) handleScanCredit() {
	c.scanMu.Lock()
	s := c.scans[c.req.ID]
	c.scanMu.Unlock()
	if s != nil {
		s.grant(c.req.Credits)
	}
}

// handleScanCancel abandons the stream named by the request id. No frame
// answers it: the stream just stops producing (a chunk already queued may
// still arrive, which the client-side demux drops).
func (c *conn) handleScanCancel() {
	c.scanMu.Lock()
	s := c.scans[c.req.ID]
	c.scanMu.Unlock()
	if s != nil {
		s.abort()
	}
}

func (s *scanStream) grant(n uint32) {
	s.mu.Lock()
	s.credits += n
	if s.credits > proto.MaxScanCredits {
		s.credits = proto.MaxScanCredits
	}
	s.mu.Unlock()
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

func (s *scanStream) abort() { s.cancelOnce.Do(func() { close(s.cancel) }) }

// takeResult says how acquiring a chunk credit ended.
type takeResult int

const (
	takeOK        takeResult = iota
	takeCancelled            // client sent OpScanCancel
	takeStopped              // the connection's read loop is gone
)

// take blocks until one credit is available, the stream is cancelled, or the
// connection is tearing down. Stop and cancel are checked before consuming a
// credit, so a drain is never delayed by a credit-rich stream.
func (s *scanStream) take() takeResult {
	for {
		select {
		case <-s.cancel:
			return takeCancelled
		case <-s.c.scanStop:
			return takeStopped
		default:
		}
		s.mu.Lock()
		if s.credits > 0 {
			s.credits--
			s.mu.Unlock()
			return takeOK
		}
		s.mu.Unlock()
		select {
		case <-s.signal:
		case <-s.cancel:
			return takeCancelled
		case <-s.c.scanStop:
			return takeStopped
		}
	}
}

// run pages through the index until the key space, the pair budget, the
// client, or the connection ends the stream. It owns its Response scratch,
// so it never races the read loop's.
func (s *scanStream) run() {
	c := s.c
	var delivered uint64
	defer c.scanWg.Done()
	defer func() {
		c.scanMu.Lock()
		delete(c.scans, s.id)
		c.scanMu.Unlock()
	}()
	defer func() {
		if r := recover(); r != nil {
			// Same contract as conn.execute: a panic below (index bug) ends
			// this one connection, never the process. The End frame is
			// best-effort; closing the socket unwedges the read loop.
			if m := c.srv.cfg.Metrics; m != nil {
				m.panicRecovered()
			}
			c.srv.logf("server: panic in scan stream %d from %s: %v\n%s", s.id, c.raddr, r, debug.Stack())
			s.end(proto.StatusErr, "internal error", delivered)
			c.nc.Close()
		}
	}()

	var (
		buf  []kv.KV
		resp proto.Response
	)
	for {
		switch s.take() {
		case takeCancelled:
			return
		case takeStopped:
			s.end(proto.StatusShuttingDown, "server draining", delivered)
			return
		}
		page := s.chunk
		if s.max > 0 {
			if rem := s.max - delivered; rem < uint64(page) {
				page = int(rem)
			}
		}
		// One admission slot per page (not per stream): a scan competes for
		// index time at page granularity, so point ops slot in between.
		if g := c.srv.inflight; g != nil {
			select {
			case g <- struct{}{}:
			case <-s.cancel:
				return
			case <-c.scanStop:
				s.end(proto.StatusShuttingDown, "server draining", delivered)
				return
			}
		}
		t0 := time.Now()
		// rangeDone is the cluster node's "owned range exhausted" signal; a
		// single-index scan learns the same thing from a short page only.
		var rangeDone bool
		if node := c.srv.cfg.Cluster; node != nil {
			var err error
			buf, rangeDone, err = node.Scan(s.epoch, s.next, page, buf[:0])
			if err != nil {
				// The map moved under the stream (or it started on the wrong
				// shard): end it with the redirect rather than truncating
				// silently, and let the client restart against the new map.
				if g := c.srv.inflight; g != nil {
					<-g
				}
				if m := c.srv.cfg.Metrics; m != nil {
					m.wrongShard()
				}
				s.end(proto.StatusWrongShard, err.Error(), delivered)
				return
			}
		} else {
			buf = c.srv.cfg.Index.Scan(s.next, page, buf[:0])
		}
		if g := c.srv.inflight; g != nil {
			<-g
		}
		delivered += uint64(len(buf))
		if m := c.srv.cfg.Metrics; m != nil {
			m.scanChunk()
			m.recordOp(proto.OpScanStart, c.shard, len(buf), time.Since(t0))
		}
		if len(buf) > 0 {
			resp = proto.Response{ID: s.id, Op: proto.OpScanChunk, Keys: resp.Keys[:0], Vals: resp.Vals[:0]}
			for _, p := range buf {
				resp.Keys = append(resp.Keys, p.Key)
				resp.Vals = append(resp.Vals, p.Value)
			}
			if !c.send(&resp) {
				return // encode bug; the connection is coming down
			}
		}
		done := rangeDone || len(buf) < page || (s.max > 0 && delivered >= s.max)
		if !done {
			if last := buf[len(buf)-1].Key; last == ^uint64(0) {
				done = true // key space exhausted; last+1 would wrap to 0
			} else {
				s.next = last + 1
			}
		}
		if done {
			s.end(proto.StatusOK, "", delivered)
			return
		}
	}
}

// end queues the stream's OpScanEnd frame. total only travels on StatusOK
// (error responses carry just the message); a wrong-shard end attaches the
// node's current map so the client can re-route without an extra round trip.
func (s *scanStream) end(st proto.Status, msg string, total uint64) {
	resp := proto.Response{ID: s.id, Op: proto.OpScanEnd, Status: st, Msg: msg, Val: total}
	if st == proto.StatusWrongShard {
		if node := s.c.srv.cfg.Cluster; node != nil {
			resp.MapBlob = node.MapBlob()
		}
	}
	s.c.send(&resp)
}
