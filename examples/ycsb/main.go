// YCSB: replays the paper's seven YCSB-style workload mixes (§4.3) against
// a DyTIS index through the public API, printing per-workload throughput —
// a miniature of the Figure-8 experiment runnable in seconds. For the full
// multi-index comparison use cmd/dytis-bench.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dytis"
)

const (
	datasetSize = 400_000
	measuredOps = 200_000
	scanLen     = 100
)

// taxiLikeKeys generates drifting time-ordered keys (the TX shape: the
// distribution of arriving keys changes continuously).
func taxiLikeKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, n)
	t := uint64(0)
	for i := range keys {
		t += 1 + uint64(rng.Intn(64))
		keys[i] = t<<18 | uint64(i)&(1<<18-1)
	}
	return keys
}

type mix struct {
	name                            string
	read, update, insert, scan, rmw int // percentages
	preload                         int // percent of dataset loaded first
}

var mixes = []mix{
	{name: "Load", insert: 100, preload: 0},
	{name: "A", read: 50, update: 50, preload: 100},
	{name: "B", read: 95, update: 5, preload: 100},
	{name: "C", read: 100, preload: 100},
	{name: "D'", read: 95, insert: 5, preload: 80},
	{name: "E", scan: 95, insert: 5, preload: 80},
	{name: "F", read: 50, rmw: 50, preload: 100},
}

func main() {
	keys := taxiLikeKeys(datasetSize)
	fmt.Printf("%-6s %12s %10s\n", "mix", "ops", "Mops/s")
	for _, m := range mixes {
		idx := dytis.New()
		preN := len(keys) * m.preload / 100
		for _, k := range keys[:preN] {
			idx.Insert(k, k)
		}
		rng := rand.New(rand.NewSource(42))
		next := preN
		ops := measuredOps
		if m.name == "Load" {
			ops = len(keys)
		}
		var buf []dytis.KV
		start := time.Now()
		for i := 0; i < ops; i++ {
			if m.name == "Load" {
				idx.Insert(keys[i], uint64(i))
				continue
			}
			r := rng.Intn(100)
			k := keys[rng.Intn(preN)]
			switch {
			case r < m.read:
				idx.Get(k)
			case r < m.read+m.update:
				idx.Insert(k, uint64(i))
			case r < m.read+m.update+m.scan:
				buf = idx.Scan(k, scanLen, buf[:0])
			case r < m.read+m.update+m.scan+m.rmw:
				v, _ := idx.Get(k)
				idx.Insert(k, v+1)
			default: // insert new
				if next < len(keys) {
					idx.Insert(keys[next], 1)
					next++
				}
			}
		}
		el := time.Since(start)
		fmt.Printf("%-6s %12d %10.2f\n", m.name, ops, float64(ops)/el.Seconds()/1e6)
	}
}
