package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits results as CSV for downstream plotting, one row per cell:
// index,dataset,workload,ops,elapsed_ns,mops,avg_ns,p99_ns,p9999_ns,
// footprint_bytes,heap_bytes,unsupported.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	header := []string{"index", "dataset", "workload", "ops", "elapsed_ns",
		"mops", "avg_ns", "p99_ns", "p9999_ns", "footprint_bytes",
		"heap_bytes", "unsupported"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Index, r.Dataset, string(r.Kind),
			strconv.Itoa(r.Ops),
			strconv.FormatInt(r.Elapsed.Nanoseconds(), 10),
			fmt.Sprintf("%.4f", r.MopsPerSec()),
			strconv.FormatInt(r.Hist.Mean().Nanoseconds(), 10),
			strconv.FormatInt(r.Hist.Quantile(0.99).Nanoseconds(), 10),
			strconv.FormatInt(r.Hist.Quantile(0.9999).Nanoseconds(), 10),
			strconv.FormatInt(r.FootprintBytes, 10),
			strconv.FormatInt(r.HeapBytes, 10),
			strconv.FormatBool(r.Unsupported),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
