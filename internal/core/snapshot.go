package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dytis/internal/fsutil"
)

// Snapshot format: a little-endian header (magic, version, count) followed
// by count (key, value) pairs in ascending key order. Reading rebuilds the
// index through the LoadSorted fast path.
const (
	snapshotMagic   = 0x5359_5444 // "DTYS"
	snapshotVersion = 1

	// snapshotHeaderLen and snapshotPairLen fix the on-disk geometry; the
	// WAL checkpoint path and the recovery-size validation depend on them.
	snapshotHeaderLen = 16
	snapshotPairLen   = 16

	// snapshotChunkPairs bounds how many pairs ReadSnapshot allocates ahead
	// of what it has actually read: a corrupt header promising 2^40 pairs
	// costs one chunk (1 MiB of keys+values), not 16 TiB, before the first
	// missing pair surfaces as ErrSnapshotCorrupt.
	snapshotChunkPairs = 1 << 16
)

var (
	// ErrSnapshotCorrupt is wrapped by every ReadSnapshot failure caused by
	// the input bytes (bad magic, implausible or lying count, keys out of
	// order, torn tail). Match with errors.Is. I/O errors from the reader
	// itself are returned unwrapped.
	ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")

	// ErrSnapshotRaced is wrapped by WriteSnapshot when the index was
	// mutated while the snapshot streamed, so the bytes written so far are
	// torn and must be discarded by the caller. WriteSnapshotFile does that
	// discarding itself and never commits a raced snapshot.
	ErrSnapshotRaced = errors.New("core: snapshot raced with writers")
)

// WriteSnapshot streams the index contents to w in ascending key order.
// Must not run concurrently with writers (readers are fine in concurrent
// mode, but the snapshot is only point-in-time when the index is quiescent).
//
// Contract on error: the bytes already written to w are a torn prefix and
// must be discarded — WriteSnapshot detects a concurrent writer as soon as
// the cursor yields an out-of-order or surplus pair and stops streaming,
// but it cannot unwrite what w already received. Callers persisting
// snapshots should use WriteSnapshotFile, which stages the stream in a
// temporary file and only commits (renames) it after a fully validated
// write, so a raced or failed snapshot is never visible at the target path.
func (d *DyTIS) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	expect := uint64(d.Len())
	var hdr [snapshotHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], expect)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [snapshotPairLen]byte
	var written uint64
	var prev uint64
	c := d.NewCursor(0)
	for {
		p, ok := c.Next()
		if !ok {
			break
		}
		// Fail at the first symptom of a concurrent writer instead of
		// streaming the whole torn file: a cursor that emits out-of-order
		// keys, or more pairs than the header promised, has already raced.
		if written > 0 && p.Key <= prev {
			return fmt.Errorf("%w: keys out of order at pair %d", ErrSnapshotRaced, written)
		}
		if written == expect {
			return fmt.Errorf("%w: more than the %d pairs in the header", ErrSnapshotRaced, expect)
		}
		prev = p.Key
		binary.LittleEndian.PutUint64(rec[0:8], p.Key)
		binary.LittleEndian.PutUint64(rec[8:16], p.Value)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		written++
	}
	if written != expect {
		return fmt.Errorf("%w: wrote %d of %d pairs", ErrSnapshotRaced, written, expect)
	}
	return bw.Flush()
}

// WriteSnapshotFile atomically persists a snapshot at path: the stream is
// staged in a temporary file in path's directory, flushed and fsynced, and
// only then renamed over path, with the directory fsynced so the rename
// itself is durable. On any error — a writer race (ErrSnapshotRaced)
// included — the temporary file is removed and path is untouched: a reader
// of path sees either the previous complete snapshot or the new one, never
// a torn intermediate. Like WriteSnapshot it must not run concurrently with
// writers to the index.
func (d *DyTIS) WriteSnapshotFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = d.WriteSnapshot(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsutil.SyncDir(dir)
}

// ReadSnapshot replaces the index contents with a snapshot written by
// WriteSnapshot. Must not run concurrently with any other operation, and
// returns ErrClosed once Close has been called.
//
// Input-caused failures wrap ErrSnapshotCorrupt. The header's pair count is
// treated as a claim, not a promise: pairs are read and validated in
// bounded chunks, so a crafted or corrupt header demanding billions of
// pairs fails at the first missing byte after at most one chunk of
// allocation instead of preallocating the claimed size. When the reader
// exposes its size (bytes.Reader, strings.Reader, an os.File via Stat), a
// count larger than the remaining bytes could hold is rejected before any
// pair is read.
func (d *DyTIS) ReadSnapshot(r io.Reader) error {
	if d.closed.Load() {
		return ErrClosed
	}
	br := bufio.NewReader(r)
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrSnapshotCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapshotMagic {
		return fmt.Errorf("%w: not a DyTIS snapshot", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return fmt.Errorf("%w: unsupported snapshot version %d", ErrSnapshotCorrupt, v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > 1<<40 {
		return fmt.Errorf("%w: implausible pair count %d", ErrSnapshotCorrupt, n)
	}
	if size, ok := readerSize(r); ok {
		if need := int64(n) * snapshotPairLen; need > size {
			return fmt.Errorf("%w: header promises %d pairs (%d bytes) but input holds at most %d bytes",
				ErrSnapshotCorrupt, n, need, size)
		}
	}
	cap0 := min(n, snapshotChunkPairs)
	keys := make([]uint64, 0, cap0)
	vals := make([]uint64, 0, cap0)
	var rec [snapshotPairLen]byte
	var prev uint64
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("%w: pair %d of %d: %v", ErrSnapshotCorrupt, i, n, err)
		}
		k := binary.LittleEndian.Uint64(rec[0:8])
		if i > 0 && k <= prev {
			return fmt.Errorf("%w: keys not ascending at pair %d", ErrSnapshotCorrupt, i)
		}
		prev = k
		keys = append(keys, k)
		vals = append(vals, binary.LittleEndian.Uint64(rec[8:16]))
	}
	d.LoadSorted(keys, vals)
	return nil
}

// ReadSnapshotFile loads the snapshot at path via ReadSnapshot, giving it
// the file's size for up-front count validation.
func (d *DyTIS) ReadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.ReadSnapshot(f)
}

// readerSize reports the total byte size of readers that expose it. Sized
// readers at a nonzero offset only over-report, which keeps the size check
// conservative (it can miss, never falsely reject).
func readerSize(r io.Reader) (int64, bool) {
	switch s := r.(type) {
	case interface{ Size() int64 }:
		return s.Size(), true
	case *os.File:
		if fi, err := s.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size(), true
		}
	}
	return 0, false
}
