package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"dytis/internal/core"
	"dytis/internal/fsutil"
	"dytis/internal/kv"
)

// Store is a DyTIS index fronted by the write-ahead log: mutations append a
// record (and, under FsyncAlways, reach stable storage) before they touch
// the index, reads go straight through. Open recovers one from its
// directory; Close seals the log.
//
// Concurrency: mutations and checkpoints serialize on one mutex — that is
// the invariant recovery depends on, log order = apply order, and it is
// also what lets the crash matrix assert exact prefixes. Reads bypass the
// mutex entirely and run against the index concurrently with a mutation in
// flight, so Options.Index.Concurrent must be set when the Store is shared
// across goroutines (cmd/dytis-server does). A checkpoint holds the mutex
// for its whole snapshot write: mutations stall for its duration, reads do
// not.
type Store struct {
	dir  string
	opts Options
	idx  *core.DyTIS
	m    *Metrics
	info RecoveryInfo

	mu        sync.Mutex
	log       *walLog // guarded-by: mu
	scratch   []byte  // guarded-by: mu; reused record-encoding buffer
	sinceCkpt int64   // guarded-by: mu; bytes appended since the last checkpoint
	err       error   // guarded-by: mu; first log failure; poisons all later mutations
	closed    bool    // guarded-by: mu

	ckptKick chan struct{} // size-triggered checkpoint nudge, capacity 1
	stop     chan struct{} // closed by Close
	done     chan struct{} // closed when the background loop exits
}

// Options configures Open. The zero value is serviceable: an in-memory
// index with default geometry, interval fsync at the default cadence, and
// size-triggered checkpoints.
type Options struct {
	// Index configures the underlying in-memory index. Set Concurrent when
	// the Store will be used from more than one goroutine.
	Index core.Options
	// Fsync is the append-path durability policy (default FsyncOff is the
	// zero value — cmd/dytis-server defaults the flag to "interval").
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 50ms).
	FsyncInterval time.Duration
	// CheckpointInterval, when positive, checkpoints on a timer regardless
	// of write volume.
	CheckpointInterval time.Duration
	// CheckpointBytes triggers a checkpoint once that many WAL bytes
	// accumulate past the last one (default 64 MiB; negative disables).
	CheckpointBytes int64
	// SegmentBytes rotates the active segment past this size even without a
	// checkpoint, bounding single-file size and recovery read granularity
	// (default 16 MiB; negative disables).
	SegmentBytes int64
	// Metrics, when non-nil, receives the dytis_wal_* series.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per notable durability event
	// (torn tail discarded, corrupt checkpoint skipped, checkpoint failure).
	Logf func(format string, args ...any)
	// Hooks are test seams; see Hooks. Nil funcs cost nothing.
	Hooks Hooks
}

// Hooks expose the exact instants the crash matrix needs to kill -9 at: a
// hook that never returns (SIGKILL to self) lands the crash between two
// specific filesystem operations, deterministically.
type Hooks struct {
	// Rotate is called from inside segment rotation; stage "sealed" means
	// the old segment is durable and closed but the new one does not exist
	// yet.
	Rotate func(stage string)
	// Checkpoint is called at checkpoint stages: "begin" (mutex held,
	// nothing done), "rotated" (fresh segment open, snapshot not started),
	// "written" (snapshot renamed into place and durable, old segments not
	// yet deleted), "done".
	Checkpoint func(stage string)
}

var (
	// ErrClosed is returned by mutations on a closed Store.
	ErrClosed = errors.New("wal: store closed")
	// ErrFailed wraps the first log failure; once a Store fails, every later
	// mutation returns it (the in-memory index may be ahead of the durable
	// log, so continuing to ack writes would promise durability the log
	// cannot honor). Reads keep working. Match with errors.Is.
	ErrFailed = errors.New("wal: store failed")
)

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 50 * time.Millisecond
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = 64 << 20
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = 16 << 20
	}
	if opts.Metrics == nil {
		opts.Metrics = &Metrics{}
	}
	return opts
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// readyLocked gates every mutation: a closed store returns ErrClosed, a
// failed one its poisoned error.
//
//dytis:locked s.mu w
func (s *Store) readyLocked() error {
	if s.closed {
		return ErrClosed
	}
	return s.err
}

// failLocked poisons the store with a log failure and returns the wrapped
// error the caller (and every mutation after it) reports.
//
//dytis:locked s.mu w
func (s *Store) failLocked(op string, err error) error {
	s.err = fmt.Errorf("%w: %s: %v", ErrFailed, op, err)
	s.logf("wal: store failed: %s: %v", op, err)
	return s.err
}

// appendLocked writes s.scratch (nrecords framed records) to the log,
// fsyncing under FsyncAlways, then handles size-based rotation and
// checkpoint triggering.
//
//dytis:locked s.mu w
func (s *Store) appendLocked(nrecords int) error {
	n := int64(len(s.scratch))
	if err := s.log.append(s.scratch, nrecords); err != nil {
		return s.failLocked("append", err)
	}
	s.sinceCkpt += n
	if s.opts.SegmentBytes > 0 && s.log.size >= s.opts.SegmentBytes {
		if err := s.log.rotate(); err != nil {
			return s.failLocked("rotate", err)
		}
	}
	if s.opts.CheckpointBytes > 0 && s.sinceCkpt >= s.opts.CheckpointBytes {
		select {
		case s.ckptKick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Insert durably logs then applies one insert. It returns once the record
// is appended (and on stable storage, under FsyncAlways): a nil return is
// the durability ack.
func (s *Store) Insert(key, val uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readyLocked(); err != nil {
		return err
	}
	s.scratch = appendInsert(s.scratch[:0], key, val)
	if err := s.appendLocked(1); err != nil {
		return err
	}
	s.idx.Insert(key, val)
	return nil
}

// Delete durably logs then applies one delete, reporting whether the key
// was present. Deletes of absent keys are logged too — replay makes them
// the same no-op.
func (s *Store) Delete(key uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readyLocked(); err != nil {
		return false, err
	}
	s.scratch = appendDelete(s.scratch[:0], key)
	if err := s.appendLocked(1); err != nil {
		return false, err
	}
	return s.idx.Delete(key), nil
}

// InsertBatch durably logs then applies a batch of inserts as one append
// (one fsync under FsyncAlways — the group-commit path).
func (s *Store) InsertBatch(keys, vals []uint64) error {
	if len(keys) != len(vals) {
		panic("wal: InsertBatch keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readyLocked(); err != nil {
		return err
	}
	s.scratch = appendInsertBatch(s.scratch[:0], keys, vals)
	if err := s.appendLocked((len(keys) + maxBatchPairs - 1) / maxBatchPairs); err != nil {
		return err
	}
	return s.idx.InsertBatch(keys, vals)
}

// DeleteBatch durably logs then applies a batch of deletes, appending the
// per-key found results to found.
func (s *Store) DeleteBatch(keys []uint64, found []bool) ([]bool, error) {
	if len(keys) == 0 {
		return found, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readyLocked(); err != nil {
		return found, err
	}
	s.scratch = appendDeleteBatch(s.scratch[:0], keys)
	if err := s.appendLocked((len(keys) + maxBatchPairs - 1) / maxBatchPairs); err != nil {
		return found, err
	}
	return s.idx.DeleteBatch(keys, found)
}

// Get reads through to the index, bypassing the store mutex.
func (s *Store) Get(key uint64) (uint64, bool) { return s.idx.Get(key) }

// Scan reads through to the index, bypassing the store mutex.
func (s *Store) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	return s.idx.Scan(start, max, dst)
}

// GetBatch reads through to the index, bypassing the store mutex.
func (s *Store) GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool) {
	return s.idx.GetBatch(keys, vals, found)
}

// Len reads through to the index.
func (s *Store) Len() int { return s.idx.Len() }

// Index exposes the underlying in-memory index for inspection (check.Check,
// snapshot export). Mutating it directly bypasses the log and forfeits the
// durability guarantee.
func (s *Store) Index() *core.DyTIS { return s.idx }

// Recovery reports what Open had to do to bring this store up.
func (s *Store) Recovery() RecoveryInfo { return s.info }

// Metrics returns the store's metrics instance (the one passed in Options,
// or the internally created one).
func (s *Store) Metrics() *Metrics { return s.m }

// Sync forces buffered log records to stable storage, regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readyLocked(); err != nil {
		return err
	}
	if err := s.log.sync(); err != nil {
		return s.failLocked("sync", err)
	}
	return nil
}

// Checkpoint snapshots the index and truncates the log it subsumes:
// rotate to a fresh segment n (reusing the current one when it is still
// empty, as after a failed attempt), write ckpt-n via the temp+rename
// snapshot path, then delete segments and checkpoints older than n.
// Mutations stall for the duration; reads do not. A snapshot-write failure
// leaves the store serving (the log is intact, the previous checkpoint
// still stands) and resets the size trigger so retries are paced by fresh
// write volume rather than storming; a rotation failure poisons the store
// like any log failure.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readyLocked(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

//dytis:locked s.mu w
func (s *Store) checkpointLocked() error {
	start := time.Now()
	hook := s.opts.Hooks.Checkpoint
	if hook != nil {
		hook("begin")
	}
	// Rotate so the snapshot's sequence names a segment boundary — unless
	// the active segment is still empty (typically because a previous
	// attempt rotated and then failed to write its snapshot), in which case
	// that boundary is reused: retrying must not mint a fresh near-empty
	// segment per attempt.
	if s.log.size > 0 {
		if err := s.log.rotate(); err != nil {
			s.m.checkpointFails.Add(1)
			return s.failLocked("checkpoint rotate", err)
		}
	}
	seq := s.log.seq
	if hook != nil {
		hook("rotated")
	}
	if err := s.idx.WriteSnapshotFile(filepath.Join(s.dir, checkpointName(seq))); err != nil {
		s.m.checkpointFails.Add(1)
		// Pace the retry: leaving sinceCkpt over the trigger would re-kick a
		// checkpoint on every subsequent append — a failure storm exactly
		// when the disk is already struggling (ENOSPC, typically). Another
		// CheckpointBytes of writes, or the interval timer, tries again.
		s.sinceCkpt = 0
		s.logf("wal: checkpoint %d failed (store keeps serving): %v", seq, err)
		return fmt.Errorf("wal: checkpoint %d: %w", seq, err)
	}
	if hook != nil {
		hook("written")
	}
	s.truncateLocked(seq)
	s.sinceCkpt = 0
	s.m.checkpoints.Add(1)
	s.m.checkpointNS.Add(time.Since(start).Nanoseconds())
	if hook != nil {
		hook("done")
	}
	return nil
}

// truncateLocked deletes segments and checkpoints subsumed by the durable
// checkpoint at seq. Failures are logged and left for the next checkpoint —
// stale files cost disk, never correctness (recovery picks the newest valid
// checkpoint and ignores segments before it).
func (s *Store) truncateLocked(seq uint64) {
	segs, ckpts, err := scanDir(s.dir, s.logf)
	if err != nil {
		s.logf("wal: truncate scan: %v", err)
		return
	}
	for _, sq := range segs {
		if sq < seq {
			if err := removeFile(s.dir, segmentName(sq)); err != nil {
				s.logf("wal: truncate: %v", err)
			}
		}
	}
	for _, cq := range ckpts {
		if cq < seq {
			if err := removeFile(s.dir, checkpointName(cq)); err != nil {
				s.logf("wal: truncate: %v", err)
			}
		}
	}
	if err := fsutil.SyncDir(s.dir); err != nil {
		s.logf("wal: truncate dir sync: %v", err)
	}
}

// run is the background loop: interval fsync, timed checkpoints, and
// size-triggered checkpoint kicks.
func (s *Store) run() {
	defer close(s.done)
	var syncC, ckptC <-chan time.Time
	if s.opts.Fsync == FsyncInterval {
		t := time.NewTicker(s.opts.FsyncInterval)
		defer t.Stop()
		syncC = t.C
	}
	if s.opts.CheckpointInterval > 0 {
		t := time.NewTicker(s.opts.CheckpointInterval)
		defer t.Stop()
		ckptC = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-syncC:
			s.mu.Lock()
			if s.closed || s.err != nil {
				s.mu.Unlock()
				continue
			}
			if err := s.log.sync(); err != nil {
				s.failLocked("interval sync", err)
			}
			s.mu.Unlock()
		case <-ckptC:
			s.backgroundCheckpoint()
		case <-s.ckptKick:
			s.backgroundCheckpoint()
		}
	}
}

func (s *Store) backgroundCheckpoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	if err := s.checkpointLocked(); err != nil {
		s.logf("wal: background checkpoint: %v", err)
	}
}

// Close stops the background loop, seals the log (flush + fsync + close),
// and closes the index. The directory then reopens via Open with no replay
// work beyond the segments since the last checkpoint. Close is idempotent;
// mutations after it return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done

	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if err := s.log.close(); err != nil && s.err == nil {
		first = err
	}
	if err := s.idx.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Serving adapts the Store to the server.Index interface. The batch
// mutation paths return their errors (the server answers StatusErr); the
// single-op paths have no error return on that interface, so a log failure
// panics — deliberately fail-stop, because silently acking an unlogged
// write would break the durability contract. The server's per-connection
// panic recovery converts the panic into a StatusErr response and one
// closed connection; every subsequent mutation keeps failing (the store is
// poisoned), so the operator sees a loud, persistent signal rather than
// quiet data loss.
func (s *Store) Serving() ServingIndex { return ServingIndex{s} }

// ServingIndex is the server.Index adapter returned by Store.Serving; see
// that method for the error-vs-panic contract.
type ServingIndex struct {
	s *Store
}

// Get reads through.
func (x ServingIndex) Get(key uint64) (uint64, bool) { return x.s.Get(key) }

// Insert logs and applies; it panics on a log failure (see Store.Serving).
func (x ServingIndex) Insert(key, value uint64) {
	if err := x.s.Insert(key, value); err != nil {
		panic(fmt.Sprintf("wal: durable insert failed: %v", err))
	}
}

// Delete logs and applies; it panics on a log failure (see Store.Serving).
func (x ServingIndex) Delete(key uint64) bool {
	ok, err := x.s.Delete(key)
	if err != nil {
		panic(fmt.Sprintf("wal: durable delete failed: %v", err))
	}
	return ok
}

// Scan reads through.
func (x ServingIndex) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	return x.s.Scan(start, max, dst)
}

// GetBatch reads through.
func (x ServingIndex) GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool) {
	return x.s.GetBatch(keys, vals, found)
}

// InsertBatch logs and applies; errors flow to the caller.
func (x ServingIndex) InsertBatch(keys, vals []uint64) error { return x.s.InsertBatch(keys, vals) }

// DeleteBatch logs and applies; errors flow to the caller.
func (x ServingIndex) DeleteBatch(keys []uint64, found []bool) ([]bool, error) {
	return x.s.DeleteBatch(keys, found)
}

// Len reads through.
func (x ServingIndex) Len() int { return x.s.Len() }
