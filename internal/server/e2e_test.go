package server_test

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dytis/client"
	"dytis/internal/core"
	"dytis/internal/server"
)

// TestE2EMultiClientOracle is the end-to-end correctness proof for the
// serving path: several concurrent clients replay a mixed workload
// (inserts, updates, deletes, single ops and batches) over loopback while
// scanners page through the index, and the final contents — read back
// through the client — must equal an in-process sorted-map oracle.
//
// Each client owns the keys congruent to its id mod numClients, so every
// key is mutated by exactly one goroutine and the union of the per-client
// oracles is the deterministic expected state, with no cross-client
// ordering to reason about. The server still sees the full adversarial
// interleaving: all clients share one index, and structure changes
// (splits, remaps, directory doublings) run under concurrent scans.
func TestE2EMultiClientOracle(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{MaxConns: 32})

	const (
		numClients   = 6
		opsPerClient = 4000
		keySpace     = 1 << 14
	)
	ctx := context.Background()

	oracles := make([]map[uint64]uint64, numClients)
	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithPipeline(32))
			if err != nil {
				t.Errorf("client %d: dial: %v", id, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			oracle := make(map[uint64]uint64)
			// own maps a draw to a key this client owns.
			own := func() uint64 {
				return uint64(rng.Intn(keySpace/numClients))*numClients + uint64(id)
			}
			for i := 0; i < opsPerClient; i++ {
				switch r := rng.Intn(100); {
				case r < 55: // insert / update
					k, v := own(), rng.Uint64()
					if err := c.Insert(ctx, k, v); err != nil {
						t.Errorf("client %d: insert: %v", id, err)
						return
					}
					oracle[k] = v
				case r < 70: // delete
					k := own()
					if _, err := c.Delete(ctx, k); err != nil {
						t.Errorf("client %d: delete: %v", id, err)
						return
					}
					delete(oracle, k)
				case r < 80: // insert batch
					n := 1 + rng.Intn(16)
					keys := make([]uint64, n)
					vals := make([]uint64, n)
					for j := range keys {
						keys[j], vals[j] = own(), rng.Uint64()
					}
					if err := c.InsertBatch(ctx, keys, vals); err != nil {
						t.Errorf("client %d: insert batch: %v", id, err)
						return
					}
					for j := range keys {
						oracle[keys[j]] = vals[j]
					}
				case r < 90: // get / get batch: cross-checked against own oracle
					k := own()
					v, ok, err := c.Get(ctx, k)
					if err != nil {
						t.Errorf("client %d: get: %v", id, err)
						return
					}
					if want, has := oracle[k]; has != ok || (ok && v != want) {
						t.Errorf("client %d: get %d = %d,%v; oracle %d,%v", id, k, v, ok, want, has)
						return
					}
				default: // scan: must observe a well-formed ordered page
					keys, _, err := c.Scan(ctx, uint64(rng.Intn(keySpace)), 64)
					if err != nil {
						t.Errorf("client %d: scan: %v", id, err)
						return
					}
					if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
						t.Errorf("client %d: scan page out of order", id)
						return
					}
				}
			}
			oracles[id] = oracle
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Merge the per-client oracles into the expected final contents.
	expect := make(map[uint64]uint64)
	for _, o := range oracles {
		for k, v := range o {
			expect[k] = v
		}
	}
	wantKeys := make([]uint64, 0, len(expect))
	for k := range expect {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(a, b int) bool { return wantKeys[a] < wantKeys[b] })

	// Read the whole index back through the client with paginated scans and
	// compare, pair by pair, against the oracle.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, err := c.Len(ctx); err != nil || n != len(expect) {
		t.Fatalf("Len = %d,%v want %d", n, err, len(expect))
	}
	var got int
	start := uint64(0)
	for {
		keys, vals, err := c.Scan(ctx, start, 512)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			break
		}
		for i, k := range keys {
			if got >= len(wantKeys) {
				t.Fatalf("scan returned more than the oracle's %d keys", len(wantKeys))
			}
			if k != wantKeys[got] {
				t.Fatalf("scan key %d = %d, oracle has %d", got, k, wantKeys[got])
			}
			if vals[i] != expect[k] {
				t.Fatalf("scan val for key %d = %d, oracle has %d", k, vals[i], expect[k])
			}
			got++
		}
		start = keys[len(keys)-1] + 1
	}
	if got != len(wantKeys) {
		t.Fatalf("scan returned %d keys, oracle has %d", got, len(wantKeys))
	}
	// check.Check runs in start's cleanup.
}
