//go:build !dytisfault

package proto

// hookFrame is the fault-injection seam on every frame body read off the
// wire. In normal builds it is this empty function, which the compiler
// inlines away — the hot read path pays nothing for the seam. Building with
// -tags dytisfault swaps in the settable hook (fault_on.go) so chaos tests
// can corrupt frames after framing but before decoding, attacking the
// decoders in-process without a network.
func hookFrame([]byte) {}
