package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"dytis/internal/check"
	"dytis/internal/core"
)

func concOpts() core.Options {
	return core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2, Concurrent: true}
}

// requireSound fails the test when the structural checker finds violations;
// every concurrency test runs it at teardown, once the workers are quiescent.
func requireSound(t *testing.T, d *core.DyTIS) {
	t.Helper()
	if vs := check.Check(d); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("invariant violation: %v", v)
		}
		t.FailNow()
	}
}

func TestConcurrentInsertGet(t *testing.T) {
	d := core.New(concOpts())
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := uint64(w)<<32 | uint64(i)
				d.Insert(k, k+1)
				if rng.Intn(4) == 0 {
					if v, ok := d.Get(k); !ok || v != k+1 {
						t.Errorf("worker %d: Get(%#x) = %d,%v", w, k, v, ok)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.Len() != workers*perWorker {
		t.Fatalf("Len=%d want %d", d.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 17 {
			k := uint64(w)<<32 | uint64(i)
			if v, ok := d.Get(k); !ok || v != k+1 {
				t.Fatalf("post: Get(%#x) = %d,%v", k, v, ok)
			}
		}
	}
	requireSound(t, d)
}

func TestConcurrentMixedWorkload(t *testing.T) {
	d := core.New(concOpts())
	// Pre-load a base population.
	for i := uint64(0); i < 20000; i++ {
		d.Insert(i*3, i)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(30000)) * 3
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					d.Insert(k, uint64(w))
				case 4, 5, 6:
					d.Get(k)
				case 7:
					d.Delete(k)
				case 8, 9:
					got := d.Scan(k, 50, nil)
					for j := 1; j < len(got); j++ {
						if got[j].Key <= got[j-1].Key {
							t.Errorf("scan not ascending under concurrency")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	requireSound(t, d)
}

// TestConcurrentDisjointRangesLinearizable: workers own disjoint key ranges,
// so each worker's final writes must all be visible exactly.
func TestConcurrentDisjointRangesLinearizable(t *testing.T) {
	d := core.New(concOpts())
	const workers = 6
	var wg sync.WaitGroup
	final := make([]map[uint64]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7))
			mine := map[uint64]uint64{}
			base := uint64(w) << 40
			for i := 0; i < 8000; i++ {
				k := base + uint64(rng.Intn(4000))
				if rng.Intn(5) == 0 {
					d.Delete(k)
					delete(mine, k)
				} else {
					v := rng.Uint64()
					d.Insert(k, v)
					mine[k] = v
				}
			}
			final[w] = mine
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		total += len(final[w])
		for k, v := range final[w] {
			got, ok := d.Get(k)
			if !ok || got != v {
				t.Fatalf("worker %d key %#x: got %d,%v want %d", w, k, got, ok, v)
			}
		}
	}
	if d.Len() != total {
		t.Fatalf("Len=%d want %d", d.Len(), total)
	}
	requireSound(t, d)
}

// TestConcurrentStatsDuringWrites hammers the read-side accounting
// (Stats/MemoryFootprint/Len) while writers force splits, remaps, and
// expansions: the aggregation walks must take the per-segment locks, not
// just the EH lock, because remap/expand rewrite segment internals while
// holding only the segment lock.
func TestConcurrentStatsDuringWrites(t *testing.T) {
	d := core.New(concOpts())
	const writers = 4
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < 30000; i++ {
				k := uint64(rng.Intn(1 << 20))
				if rng.Intn(8) == 0 {
					d.Delete(k)
				} else {
					d.Insert(k, uint64(i))
				}
			}
		}(w)
	}
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := d.Stats()
			if st.Segments <= 0 || st.Buckets <= 0 {
				t.Error("non-positive stats")
				return
			}
			if d.MemoryFootprint() <= 0 {
				t.Error("non-positive footprint")
				return
			}
			d.Len()
		}
	}()
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if t.Failed() {
		return
	}
	requireSound(t, d)
}
