// Package cluster implements sharded multi-node serving for DyTIS: a
// versioned shard map partitioning the uint64 key space into contiguous
// MSB ranges, and the per-server Node that enforces ownership, answers
// redirects, and runs live shard handover (bulk copy + double-write
// cutover) for rebalancing under KDD drift.
//
// The design lifts the paper's first-level structure (§3.1: a static 2^R
// partition of the key space by most-significant bits) one level up: each
// dytis-server process owns one contiguous MSB range and its index's KDD
// adaptation specializes to that range's distribution. Routing is
// client-side (client.Cluster); the only cross-node coordination is the
// shard map epoch, which only ever moves forward.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dytis/internal/proto"
)

// MaxShards bounds a map's shard count. Far beyond any deployment this
// repo targets, but a bound the decoder can allocate against.
const MaxShards = 1024

// Shard is one contiguous key range [Lo, Hi] (inclusive both ends) owned
// by the server at Addr.
type Shard struct {
	Lo, Hi uint64
	Addr   string
}

// Contains reports whether key falls in the shard's range.
func (s Shard) Contains(key uint64) bool { return key >= s.Lo && key <= s.Hi }

// Map is one immutable version of the cluster's shard layout. Shards are
// sorted by Lo and together cover the whole uint64 key space with no gaps
// or overlaps (Validate enforces it), so every key has exactly one owner.
// Epochs start at 1 and only grow; a higher epoch always wins.
type Map struct {
	Epoch  uint64
	Shards []Shard
}

// Uniform builds the initial map: the key space split evenly (by MSB) over
// addrs, one contiguous range per address, at the given epoch.
func Uniform(epoch uint64, addrs []string) (*Map, error) {
	n := uint64(len(addrs))
	if n == 0 {
		return nil, errors.New("cluster: no addresses")
	}
	width := ^uint64(0)/n + 1
	m := &Map{Epoch: epoch, Shards: make([]Shard, len(addrs))}
	for i, a := range addrs {
		lo := uint64(i) * width
		hi := lo + width - 1
		if i == len(addrs)-1 {
			hi = ^uint64(0)
		}
		m.Shards[i] = Shard{Lo: lo, Hi: hi, Addr: a}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Owner returns the shard owning key. Valid maps cover the key space, so
// on a validated map this cannot miss.
func (m *Map) Owner(key uint64) Shard {
	i := sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].Hi >= key })
	if i == len(m.Shards) {
		// Unreachable on a validated map; return the last shard rather than
		// panic so a corrupted map degrades to a redirect, not a crash.
		i = len(m.Shards) - 1
	}
	return m.Shards[i]
}

// Validate checks the full well-formedness contract: nonzero epoch, 1..
// MaxShards shards sorted by Lo, covering [0, ^0] contiguously with no
// overlap, every address nonempty and within proto.MaxAddr, and the
// encoded form within proto.MaxMapBlob.
func (m *Map) Validate() error {
	if m.Epoch == 0 {
		return errors.New("cluster: map epoch must be >= 1")
	}
	if len(m.Shards) == 0 {
		return errors.New("cluster: map has no shards")
	}
	if len(m.Shards) > MaxShards {
		return fmt.Errorf("cluster: %d shards exceeds MaxShards %d", len(m.Shards), MaxShards)
	}
	if m.Shards[0].Lo != 0 {
		return fmt.Errorf("cluster: first shard starts at %#x, not 0", m.Shards[0].Lo)
	}
	for i, s := range m.Shards {
		if s.Lo > s.Hi {
			return fmt.Errorf("cluster: shard %d range inverted [%#x, %#x]", i, s.Lo, s.Hi)
		}
		if s.Addr == "" || len(s.Addr) > proto.MaxAddr {
			return fmt.Errorf("cluster: shard %d address %q invalid", i, s.Addr)
		}
		if i > 0 && s.Lo != m.Shards[i-1].Hi+1 {
			return fmt.Errorf("cluster: gap or overlap between shard %d (ends %#x) and %d (starts %#x)",
				i-1, m.Shards[i-1].Hi, i, s.Lo)
		}
	}
	if last := m.Shards[len(m.Shards)-1]; last.Hi != ^uint64(0) {
		return fmt.Errorf("cluster: last shard ends at %#x, key space uncovered", last.Hi)
	}
	if n := encodedLen(m); n > proto.MaxMapBlob {
		return fmt.Errorf("cluster: encoded map is %d bytes, exceeds proto.MaxMapBlob %d", n, proto.MaxMapBlob)
	}
	return nil
}

func encodedLen(m *Map) int {
	n := 8 + 4
	for _, s := range m.Shards {
		n += 8 + 8 + 2 + len(s.Addr)
	}
	return n
}

// Encode renders the map as the opaque blob the wire protocol transports:
//
//	epoch(8) n(4) [lo(8) hi(8) addrLen(2) addr]*n
//
// Validate first; Encode assumes a well-formed map.
func (m *Map) Encode() []byte {
	b := make([]byte, 0, encodedLen(m))
	b = binary.BigEndian.AppendUint64(b, m.Epoch)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		b = binary.BigEndian.AppendUint64(b, s.Lo)
		b = binary.BigEndian.AppendUint64(b, s.Hi)
		b = binary.BigEndian.AppendUint16(b, uint16(len(s.Addr)))
		b = append(b, s.Addr...)
	}
	return b
}

// Reassign builds the successor map (epoch+1) in which [lo, hi] is owned
// by addr: overlapping shards shrink or split, and adjacent shards of the
// same address merge back into one range. Because every server owns exactly
// one contiguous range, the result must leave each address with at most one
// shard — so [lo, hi] must either go to a fresh address (taking a whole
// shard, or a prefix/suffix of one next to nothing else addr owns) or
// extend addr's existing shard contiguously. Anything else is an error,
// not a silently invalid map.
func (m *Map) Reassign(lo, hi uint64, addr string) (*Map, error) {
	if lo > hi {
		return nil, fmt.Errorf("cluster: reassign range inverted [%#x, %#x]", lo, hi)
	}
	next := &Map{Epoch: m.Epoch + 1}
	for _, s := range m.Shards {
		// Keep the parts of s outside [lo, hi] (each side shrinks to at
		// most one piece; a shard strictly containing the range keeps both).
		if s.Lo < lo {
			end := lo - 1
			if s.Hi < end {
				end = s.Hi
			}
			next.Shards = append(next.Shards, Shard{Lo: s.Lo, Hi: end, Addr: s.Addr})
		}
		if s.Hi > hi {
			start := hi + 1
			if s.Lo > start {
				start = s.Lo
			}
			next.Shards = append(next.Shards, Shard{Lo: start, Hi: s.Hi, Addr: s.Addr})
		}
	}
	next.Shards = append(next.Shards, Shard{Lo: lo, Hi: hi, Addr: addr})
	sort.Slice(next.Shards, func(i, j int) bool { return next.Shards[i].Lo < next.Shards[j].Lo })
	// Merge adjacent same-address shards (growing a neighbor's range).
	merged := next.Shards[:1]
	for _, s := range next.Shards[1:] {
		last := &merged[len(merged)-1]
		if s.Addr == last.Addr && s.Lo == last.Hi+1 {
			last.Hi = s.Hi
			continue
		}
		merged = append(merged, s)
	}
	next.Shards = merged
	seen := make(map[string]bool, len(next.Shards))
	for _, s := range next.Shards {
		if seen[s.Addr] {
			return nil, fmt.Errorf("cluster: reassigning [%#x, %#x] to %s would leave it two disjoint ranges", lo, hi, addr)
		}
		seen[s.Addr] = true
	}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return next, nil
}

// DecodeMap parses and validates an encoded map. It is safe on arbitrary
// bytes: every length is checked before use and the result is only
// returned if Validate passes, so a peer cannot hand out a map that
// routing code must defend against.
func DecodeMap(b []byte) (*Map, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("cluster: map blob of %d bytes too short", len(b))
	}
	m := &Map{Epoch: binary.BigEndian.Uint64(b)}
	n := int(binary.BigEndian.Uint32(b[8:]))
	if n == 0 || n > MaxShards {
		return nil, fmt.Errorf("cluster: map blob claims %d shards", n)
	}
	off := 12
	m.Shards = make([]Shard, n)
	for i := 0; i < n; i++ {
		if len(b)-off < 18 {
			return nil, errors.New("cluster: map blob truncated")
		}
		lo := binary.BigEndian.Uint64(b[off:])
		hi := binary.BigEndian.Uint64(b[off+8:])
		alen := int(binary.BigEndian.Uint16(b[off+16:]))
		off += 18
		if alen > len(b)-off {
			return nil, errors.New("cluster: map blob truncated in address")
		}
		m.Shards[i] = Shard{Lo: lo, Hi: hi, Addr: string(b[off : off+alen])}
		off += alen
	}
	if off != len(b) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after map", len(b)-off)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
