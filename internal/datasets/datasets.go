// Package datasets generates the synthetic stand-ins for the five real-world
// datasets of the DyTIS paper (Table 1) plus the Group-2 shuffled variants
// and the Group-3 simple datasets of Figure 1.
//
// The real datasets (OpenStreetMap extracts, Amazon reviews, NYC TLC taxi
// trips) are not redistributable here, so each generator reproduces the
// dynamic characteristics the paper measures instead: the *variance of
// skewness* (how unevenly keys cover the key space) and the *key
// distribution divergence* (how the distribution of arriving keys drifts
// over insertion time). See DESIGN.md §3 for the substitution rationale.
//
// Every generator returns keys in INSERTION ORDER (order carries the KDD
// signal) and guarantees uniqueness by reserving the low bits of each key
// for a sequence counter — a sub-1e-5 relative perturbation at the scales
// used.
package datasets

import (
	"math"
	"math/rand"
)

// Spec describes one dataset: its paper-scale size and its generator.
type Spec struct {
	Name string
	// Desc matches the paper's Table 1 description.
	Desc string
	// PaperMKeys is the paper's dataset size in millions of keys; generators
	// are invoked with n = PaperMKeys * 1e6 * scale.
	PaperMKeys float64
	// Skew and KDD are the paper's low/medium/high classifications.
	Skew, KDD byte
	// Gen produces n unique keys in insertion order.
	Gen func(n int, seed int64) []uint64
}

// Count returns the number of keys at the given scale (fraction of the
// paper-scale dataset), at least 1000.
func (s Spec) Count(scale float64) int {
	n := int(s.PaperMKeys * 1e6 * scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// The five dynamic datasets of Table 1 (Group 1).
var (
	MapM = Spec{Name: "MM", Desc: "map keys, South America-like", PaperMKeys: 356,
		Skew: 'L', KDD: 'M', Gen: genMap(40, 1)}
	MapL = Spec{Name: "ML", Desc: "map keys, Africa-like", PaperMKeys: 903,
		Skew: 'L', KDD: 'M', Gen: genMap(64, 2)}
	ReviewM = Spec{Name: "RM", Desc: "review keys, deduplicated-like", PaperMKeys: 82,
		Skew: 'H', KDD: 'L', Gen: genReview(3000, 3)}
	ReviewL = Spec{Name: "RL", Desc: "review keys, ratings-like", PaperMKeys: 228,
		Skew: 'H', KDD: 'L', Gen: genReview(8000, 4)}
	Taxi = Spec{Name: "TX", Desc: "taxi-trip time keys, NYC-like", PaperMKeys: 325,
		Skew: 'M', KDD: 'H', Gen: genTaxi}
)

// Group1 is the paper's dynamic dataset suite in its usual order.
var Group1 = []Spec{MapM, MapL, ReviewM, ReviewL, Taxi}

// Group-3 simple datasets.
var (
	Uniform = Spec{Name: "Uniform", Desc: "uniform random keys", PaperMKeys: 356,
		Skew: 'L', KDD: 'L', Gen: genUniform}
	Lognormal = Spec{Name: "Lognormal", Desc: "lognormal keys", PaperMKeys: 356,
		Skew: 'M', KDD: 'L', Gen: genLognormal}
	Longlat = Spec{Name: "Longlat", Desc: "composed lat/lon keys", PaperMKeys: 356,
		Skew: 'H', KDD: 'L', Gen: genLonglat}
	Longitudes = Spec{Name: "Longitudes", Desc: "longitude keys", PaperMKeys: 356,
		Skew: 'L', KDD: 'L', Gen: genLongitudes}
)

// Group3 is the paper's simple-dataset suite.
var Group3 = []Spec{Uniform, Lognormal, Longlat, Longitudes}

// ByName returns the spec for a Group-1/Group-3 dataset name.
func ByName(name string) (Spec, bool) {
	for _, s := range append(append([]Spec{}, Group1...), Group3...) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Shuffled returns a Group-2 variant: the same key set inserted in uniformly
// random order, which removes distribution drift (lowers KDD).
func Shuffled(s Spec) Spec {
	inner := s.Gen
	return Spec{
		Name: s.Name + "(s)", Desc: s.Desc + ", shuffled order",
		PaperMKeys: s.PaperMKeys, Skew: s.Skew, KDD: 'L',
		Gen: func(n int, seed int64) []uint64 {
			keys := inner(n, seed)
			rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
			rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			return keys
		},
	}
}

// seqBits returns how many low bits the sequence counter needs for n keys.
func seqBits(n int) uint {
	b := uint(1)
	for 1<<b < n {
		b++
	}
	return b
}

// uniquify composes a sampled "shape" key with the sequence counter in the
// low bits, guaranteeing uniqueness while preserving the macro distribution.
func uniquify(shape uint64, i int, bits uint) uint64 {
	return shape&^(1<<bits-1) | uint64(i)&(1<<bits-1)
}

func genUniform(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	b := seqBits(n)
	out := make([]uint64, n)
	for i := range out {
		out[i] = uniquify(rng.Uint64(), i, b)
	}
	return out
}

func genLognormal(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	b := seqBits(n)
	out := make([]uint64, n)
	for i := range out {
		// mu/sigma chosen so the bulk spans ~2^56 with a long right tail.
		v := math.Exp(rng.NormFloat64()*2.0 + 36.0)
		out[i] = uniquify(clampF(v), i, b)
	}
	return out
}

// genMap emulates OSM-derived keys: a mixture of `regions` wide Gaussian
// blobs over the key space (smooth densities: LOW skew), inserted region by
// region the way map extracts are loaded as spatial bulks (MEDIUM KDD).
func genMap(regions int, seedSalt int64) func(int, int64) []uint64 {
	return func(n int, seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed*1315423911 + seedSalt))
		b := seqBits(n)
		type region struct {
			center, width float64
			weight        float64
		}
		regs := make([]region, regions)
		totalW := 0.0
		for r := range regs {
			regs[r] = region{
				center: rng.Float64() * math.Exp2(63),
				width:  (0.05 + rng.Float64()*0.15) * math.Exp2(63),
				weight: 0.3 + rng.Float64(),
			}
			totalW += regs[r].weight
		}
		out := make([]uint64, 0, n)
		for r := 0; r < regions && len(out) < n; r++ {
			cnt := int(float64(n) * regs[r].weight / totalW)
			if r == regions-1 || len(out)+cnt > n {
				cnt = n - len(out)
			}
			for i := 0; i < cnt; i++ {
				// Mostly this region, with a sprinkle of earlier regions
				// (map tiles overlap at boundaries).
				reg := regs[r]
				if r > 0 && rng.Intn(10) == 0 {
					reg = regs[rng.Intn(r+1)]
				}
				v := reg.center + rng.NormFloat64()*reg.width
				out = append(out, uniquify(clampF(v), len(out), b))
			}
		}
		return out
	}
}

// genReview emulates concatenated itemID|userID|time keys: `clusters`
// narrow, Zipf-weighted clusters (HIGH skew) sampled i.i.d. so the arriving
// distribution is stationary (LOW KDD).
func genReview(clusters int, seedSalt int64) func(int, int64) []uint64 {
	return func(n int, seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed*2654435761 + seedSalt))
		b := seqBits(n)
		centers := make([]float64, clusters)
		for i := range centers {
			centers[i] = rng.Float64() * math.Exp2(62)
		}
		z := rand.NewZipf(rng, 1.3, 4, uint64(clusters-1))
		out := make([]uint64, n)
		for i := range out {
			c := centers[z.Uint64()]
			v := c + rng.Float64()*math.Exp2(44) // narrow cluster (user|time suffix)
			out[i] = uniquify(clampF(v), i, b)
		}
		return out
	}
}

// genTaxi emulates pickup|dropoff time keys: the key's high bits advance
// with (simulated) wall-clock time, modulated by diurnal/weekly demand, so
// consecutive sub-datasets have visibly different distributions (HIGH KDD)
// with moderate within-window clustering (MEDIUM skew).
func genTaxi(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed*40503 + 5))
	b := seqBits(n)
	out := make([]uint64, n)
	// Simulated time advances across the whole generation; demand waves
	// make arrival density non-uniform in time.
	span := math.Exp2(60)
	t := 0.0
	for i := range out {
		frac := float64(i) / float64(n)
		// Seasonal demand waves (few, deep) give the key space its lumpy
		// medium-skew texture; fast diurnal cycles add the within-window
		// variation. Off-peak troughs leave near-empty time stretches.
		seasonal := (1 + math.Sin(frac*12*math.Pi)) / 2
		diurnal := 1 + 0.4*math.Sin(frac*2500*math.Pi)
		demand := seasonal*seasonal*diurnal + 0.1
		t += 1.0 / demand
		pickup := t
		tripDur := rng.ExpFloat64() * 1000 // drop-off offset (low bits)
		v := pickup + tripDur
		out[i] = uniquify(clampF(v*span/(float64(n)*1.6)), i, b)
	}
	return out
}

// genLonglat emulates the ALEX-style compound longitude*180+latitude keys:
// heavy clustering around populated spots, stationary order (HIGH skew).
func genLonglat(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed*97 + 11))
	b := seqBits(n)
	const spots = 300
	centers := make([]float64, spots)
	for i := range centers {
		centers[i] = rng.Float64() * math.Exp2(62)
	}
	out := make([]uint64, n)
	for i := range out {
		c := centers[rng.Intn(spots)]
		v := c + rng.NormFloat64()*math.Exp2(38)
		out[i] = uniquify(clampF(v), i, b)
	}
	return out
}

// genLongitudes emulates 1-D longitude keys: smooth, mildly non-uniform,
// stationary order (LOW skew).
func genLongitudes(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed*131 + 13))
	b := seqBits(n)
	out := make([]uint64, n)
	for i := range out {
		// Sum of two uniforms: triangular density, smooth and wide.
		v := (rng.Float64() + rng.Float64()) / 2 * math.Exp2(63)
		out[i] = uniquify(uint64(v), i, b)
	}
	return out
}

// clampF folds a sample into [0, 2^63) by reflecting at the boundaries, so
// out-of-range tails spread back into the space instead of piling up as a
// point mass at the edge (which would be an artificial pathological cluster
// no real dataset has).
func clampF(v float64) uint64 {
	lim := math.Exp2(63)
	for v < 0 || v >= lim {
		if v < 0 {
			v = -v
		}
		if v >= lim {
			v = 2*lim - v - 1
		}
	}
	return uint64(v)
}

// KeyRangeSize returns max-min, Table 1's "key range size" column.
func KeyRangeSize(keys []uint64) uint64 {
	if len(keys) == 0 {
		return 0
	}
	min, max := keys[0], keys[0]
	for _, k := range keys {
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	return max - min
}
