// vet-dytis is the driver for the project's custom analyzers (lockcheck,
// atomiccheck, protocheck, ctxcheck, metriccheck), speaking the
// `go vet -vettool` protocol:
//
//	go build -o /tmp/vet-dytis ./cmd/vet-dytis
//	go vet -vettool=/tmp/vet-dytis ./...
//
// The protocol (normally provided by golang.org/x/tools' unitchecker, which
// this stdlib-only module reimplements): the go command probes the tool with
// -V=full for a version fingerprint and -flags for its flag set, then
// invokes it once per package with a single *.cfg argument describing the
// parsed unit — file lists, the import map, and compiled export data for
// every dependency. Diagnostics go to stderr as "pos: message" followed by a
// one-line per-package summary; a non-zero exit marks the package failed
// (1 = diagnostics, 2 = the tool itself failed). Select a subset of
// analyzers with -lockcheck / -atomiccheck / -protocheck / -ctxcheck /
// -metriccheck; with none set, all run.
//
// Package facts (protocheck's opcode tables, ctxcheck's blocking-function
// sets, metriccheck's registered-series sets) ride the protocol's .vetx
// files: dependency units of this module are analyzed facts-only (VetxOnly)
// and their exports are served to dependent packages' passes, so a switch in
// client can be checked against the constants internal/proto defines.
//
// Machine-readable output for CI: the -json flag (or VET_DYTIS_JSON=1)
// prints the unit's diagnostics as a sorted JSON array on stdout, and
// VET_DYTIS_JSONFILE=<path> appends them as JSON lines to that file —
// the env forms exist because `go vet` runs the tool once per package, in
// parallel, where a shared artifact file is the practical collection point.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"dytis/tools/analyzers"
)

// vetConfig is the JSON schema of the *.cfg file the go command hands to
// vet tools, one per package unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	enabled := map[string]*bool{}
	for _, a := range analyzers.All() {
		enabled[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	printVersion := flag.String("V", "", "print version and exit (-V=full for a fingerprint)")
	flagsJSON := flag.Bool("flags", false, "print flags in JSON and exit")
	jsonOut := flag.Bool("json", false, "print diagnostics as a JSON array on stdout")
	flag.Parse()

	if *printVersion != "" {
		version()
		return
	}
	if *flagsJSON {
		printFlags()
		return
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: vet-dytis [-lockcheck] [-atomiccheck] [-protocheck] [-ctxcheck] [-metriccheck] [-json] <unit.cfg>")
		fmt.Fprintln(os.Stderr, "run via: go vet -vettool=$(command -v vet-dytis) ./...")
		os.Exit(2)
	}

	var run []*analyzers.Analyzer
	for _, a := range analyzers.All() {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	if len(run) == 0 {
		run = analyzers.All()
	}
	os.Exit(checkUnit(args[0], run, *jsonOut || os.Getenv("VET_DYTIS_JSON") == "1"))
}

// version prints the fingerprint line the go command caches vet results by.
// The format is fixed by cmd/go: "<name> version <semver-ish>
// buildID=<hex>"; hashing our own executable makes rebuilt tools invalidate
// the cache.
func version() {
	f, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("vet-dytis version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// printFlags answers the go command's -flags probe: a JSON array of the
// tool's flags so cmd/go knows which analyzer selections it may forward.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Stdout.Write(data)
}

// jsonDiag is one diagnostic in the -json / VET_DYTIS_JSONFILE output.
type jsonDiag struct {
	Package  string `json:"package"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// vetxFacts is the on-disk schema of a unit's .vetx file: one opaque blob
// per analyzer that exported facts for the package.
type vetxFacts map[string][]byte

// inModule reports whether the import path belongs to this module (test
// variants like "dytis/internal/proto.test" included). Only module packages
// are re-typechecked for facts — running the analyzers over the standard
// library would be slow and pointless, since nothing in it carries dytis
// annotations.
func inModule(importPath string) bool {
	return importPath == "dytis" || strings.HasPrefix(importPath, "dytis/")
}

func checkUnit(cfgPath string, run []*analyzers.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vet-dytis: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// writeVetx persists this unit's facts; the go command expects the file
	// to exist for every unit, even an empty one.
	facts := vetxFacts{}
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		blob, err := json.Marshal(facts)
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, blob, 0o666)
	}

	if cfg.VetxOnly && !inModule(cfg.ImportPath) {
		if err := writeVetx(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}

	// Dependencies resolve through the import map to compiled export data
	// listed in PackageFile — the same two-step lookup unitchecker does.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tconf := types.Config{Importer: imp, Error: func(error) {}}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			// A facts-only unit that fails to typecheck exports no facts;
			// dependents report the gap where it matters.
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "vet-dytis: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	// Dependency facts, lazily loaded and parsed from the .vetx files the go
	// command threads through PackageVetx.
	depCache := map[string]vetxFacts{}
	depFacts := func(path string) vetxFacts {
		if mapped, ok := cfg.ImportMap[path]; ok {
			if _, direct := cfg.PackageVetx[path]; !direct {
				path = mapped
			}
		}
		if f, ok := depCache[path]; ok {
			return f
		}
		f := vetxFacts{}
		if file, ok := cfg.PackageVetx[path]; ok {
			if blob, err := os.ReadFile(file); err == nil {
				json.Unmarshal(blob, &f)
			}
		}
		depCache[path] = f
		return f
	}

	var diags []jsonDiag
	exit := 0
	for _, a := range run {
		a := a
		pass := &analyzers.Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analyzers.Diagnostic) {
				if cfg.VetxOnly {
					return // facts-only pass: dependents get the diagnostics
				}
				p := fset.Position(d.Pos)
				diags = append(diags, jsonDiag{
					Package: cfg.ImportPath, Analyzer: a.Name,
					File: p.Filename, Line: p.Line, Col: p.Column,
					Message: d.Message,
				})
				exit = 1
			},
			ReadFacts: func(path string) []byte {
				return depFacts(path)[a.Name]
			},
			WriteFacts: func(data []byte) {
				facts[a.Name] = data
			},
			DepFacts: func() map[string][]byte {
				all := map[string][]byte{}
				for path := range cfg.PackageVetx {
					if blob, ok := depFacts(path)[a.Name]; ok {
						all[path] = blob
					}
				}
				return all
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "vet-dytis: %s: %v\n", a.Name, err)
			exit = 2
		}
	}
	if err := writeVetx(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cfg.VetxOnly {
		return 0
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.File, d.Line, d.Col, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vet-dytis: %s: %d diagnostic(s)\n", cfg.ImportPath, len(diags))
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []jsonDiag{}
		}
		enc.Encode(diags)
	}
	if path := os.Getenv("VET_DYTIS_JSONFILE"); path != "" && len(diags) > 0 {
		// One JSON object per line, appended: `go vet` runs one process per
		// package in parallel, and O_APPEND line writes this small are atomic
		// enough to interleave whole.
		if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666); err == nil {
			for _, d := range diags {
				line, _ := json.Marshal(d)
				f.Write(append(line, '\n'))
			}
			f.Close()
		}
	}
	return exit
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
