//go:build race

package core

// raceEnabled is true under the race detector. The seqlock read protocol is
// formally racy by design — element reads run concurrently with locked
// writers and are made safe by version validation — which the detector would
// report as a data race. Race builds therefore take the segment read lock
// after the lock-free directory-snapshot resolution, still exercising the
// snapshot and retirement halves of the protocol race-cleanly.
const raceEnabled = true
