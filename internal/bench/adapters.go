// Package bench is the experiment harness that regenerates the DyTIS
// paper's tables and figures: it instantiates each index behind a common
// adapter, drives the YCSB-style workloads of internal/workload over the
// synthetic datasets of internal/datasets, and reports throughput, tail
// latency, and memory — the metrics of §4.
package bench

import (
	"sort"

	"dytis/internal/alex"
	"dytis/internal/btree"
	"dytis/internal/cceh"
	"dytis/internal/core"
	"dytis/internal/ehash"
	"dytis/internal/kv"
	"dytis/internal/pgm"
	"dytis/internal/xindex"
)

// Instance is a live index under test. Scan returns false when the index
// does not support ordered scans (the pure hash baselines).
type Instance interface {
	kv.Index
	Scan(start uint64, max int, dst []kv.KV) ([]kv.KV, bool)
	// BulkLoad trains/loads ascending pairs; returns false if unsupported.
	BulkLoad(keys, vals []uint64) bool
	// Footprint estimates the structure's heap bytes (0 if unknown).
	Footprint() int64
	Close()
}

// Factory names and creates instances of one index implementation.
type Factory struct {
	Name    string
	Ordered bool // supports scans (workload E)
	New     func() Instance
}

// ---- DyTIS ----

type dytisInst struct{ d *core.DyTIS }

func (a dytisInst) Insert(k, v uint64) { a.d.Insert(k, v) }
func (a dytisInst) Get(k uint64) (uint64, bool) {
	return a.d.Get(k)
}
func (a dytisInst) Delete(k uint64) bool { return a.d.Delete(k) }
func (a dytisInst) Len() int             { return a.d.Len() }
func (a dytisInst) Scan(s uint64, m int, dst []kv.KV) ([]kv.KV, bool) {
	return a.d.Scan(s, m, dst), true
}
func (a dytisInst) BulkLoad(keys, vals []uint64) bool {
	// DyTIS is free of bulk loading by design; sorted pre-insertion is its
	// natural "load".
	for i, k := range keys {
		a.d.Insert(k, vals[i])
	}
	return true
}
func (a dytisInst) Footprint() int64 { return a.d.MemoryFootprint() }
func (a dytisInst) Close()           {}

// DyTIS returns the DyTIS factory with the given options.
func DyTIS(opts core.Options) Factory {
	return Factory{Name: "DyTIS", Ordered: true, New: func() Instance {
		return dytisInst{core.New(opts)}
	}}
}

// DyTISNamed is DyTIS with a custom display name (for ablations/sweeps).
func DyTISNamed(name string, opts core.Options) Factory {
	f := DyTIS(opts)
	f.Name = name
	return f
}

// ---- ALEX-like ----

type alexInst struct{ x *alex.Index }

func (a alexInst) Insert(k, v uint64)          { a.x.Insert(k, v) }
func (a alexInst) Get(k uint64) (uint64, bool) { return a.x.Get(k) }
func (a alexInst) Delete(k uint64) bool        { return a.x.Delete(k) }
func (a alexInst) Len() int                    { return a.x.Len() }
func (a alexInst) Scan(s uint64, m int, dst []kv.KV) ([]kv.KV, bool) {
	return a.x.Scan(s, m, dst), true
}
func (a alexInst) BulkLoad(keys, vals []uint64) bool { a.x.BulkLoad(keys, vals); return true }
func (a alexInst) Footprint() int64                  { return a.x.MemoryFootprint() }
func (a alexInst) Close()                            {}

// ALEX returns the ALEX-like factory; name it ALEX-10/ALEX-70 per the bulk
// fraction the run uses.
func ALEX(name string) Factory {
	return Factory{Name: name, Ordered: true, New: func() Instance {
		return alexInst{alex.New()}
	}}
}

// ---- XIndex-like ----

type xindexInst struct{ x *xindex.Index }

func (a xindexInst) Insert(k, v uint64)          { a.x.Insert(k, v) }
func (a xindexInst) Get(k uint64) (uint64, bool) { return a.x.Get(k) }
func (a xindexInst) Delete(k uint64) bool        { return a.x.Delete(k) }
func (a xindexInst) Len() int                    { return a.x.Len() }
func (a xindexInst) Scan(s uint64, m int, dst []kv.KV) ([]kv.KV, bool) {
	return a.x.Scan(s, m, dst), true
}
func (a xindexInst) BulkLoad(keys, vals []uint64) bool { a.x.BulkLoad(keys, vals); return true }
func (a xindexInst) Footprint() int64                  { return a.x.MemoryFootprint() }
func (a xindexInst) Close()                            { a.x.Close() }

// XIndex returns the XIndex-like factory.
func XIndex(concurrent bool) Factory {
	return Factory{Name: "XIndex", Ordered: true, New: func() Instance {
		return xindexInst{xindex.New(concurrent)}
	}}
}

// ---- B+-tree ----

type btreeInst struct{ t *btree.Tree }

func (a btreeInst) Insert(k, v uint64)          { a.t.Insert(k, v) }
func (a btreeInst) Get(k uint64) (uint64, bool) { return a.t.Get(k) }
func (a btreeInst) Delete(k uint64) bool        { return a.t.Delete(k) }
func (a btreeInst) Len() int                    { return a.t.Len() }
func (a btreeInst) Scan(s uint64, m int, dst []kv.KV) ([]kv.KV, bool) {
	return a.t.Scan(s, m, dst), true
}
func (a btreeInst) BulkLoad(keys, vals []uint64) bool { a.t.BulkLoad(keys, vals); return true }
func (a btreeInst) Footprint() int64                  { return 0 }
func (a btreeInst) Close()                            {}

// BTree returns the STX-style B+-tree factory (fanout 128 per §4.1).
func BTree() Factory {
	return Factory{Name: "B+-tree", Ordered: true, New: func() Instance {
		return btreeInst{btree.New(btree.DefaultOrder)}
	}}
}

// ---- Extendible hashing ----

type ehashInst struct{ t *ehash.Table }

func (a ehashInst) Insert(k, v uint64)          { a.t.Insert(k, v) }
func (a ehashInst) Get(k uint64) (uint64, bool) { return a.t.Get(k) }
func (a ehashInst) Delete(k uint64) bool        { return a.t.Delete(k) }
func (a ehashInst) Len() int                    { return a.t.Len() }
func (a ehashInst) Scan(uint64, int, []kv.KV) ([]kv.KV, bool) {
	return nil, false
}
func (a ehashInst) BulkLoad(keys, vals []uint64) bool { return false }
func (a ehashInst) Footprint() int64                  { return 0 }
func (a ehashInst) Close()                            {}

// EH returns the classic extendible-hashing factory (Figure 9).
func EH() Factory {
	return Factory{Name: "EH", Ordered: false, New: func() Instance {
		return ehashInst{ehash.New(0)}
	}}
}

// ---- CCEH ----

type ccehInst struct{ t *cceh.Table }

func (a ccehInst) Insert(k, v uint64)          { a.t.Insert(k, v) }
func (a ccehInst) Get(k uint64) (uint64, bool) { return a.t.Get(k) }
func (a ccehInst) Delete(k uint64) bool        { return a.t.Delete(k) }
func (a ccehInst) Len() int                    { return a.t.Len() }
func (a ccehInst) Scan(uint64, int, []kv.KV) ([]kv.KV, bool) {
	return nil, false
}
func (a ccehInst) BulkLoad(keys, vals []uint64) bool { return false }
func (a ccehInst) Footprint() int64                  { return 0 }
func (a ccehInst) Close()                            {}

// CCEH returns the CCEH factory (Figure 9).
func CCEH() Factory {
	return Factory{Name: "CCEH", Ordered: false, New: func() Instance {
		return ccehInst{cceh.New()}
	}}
}

// sortedCopy returns ascending copies of the pairs keyed by keys (bulk
// loaders require sorted input; datasets arrive in insertion order).
func sortedCopy(keys []uint64) ([]uint64, []uint64) {
	ks := append([]uint64(nil), keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	vs := make([]uint64, len(ks))
	for i, k := range ks {
		vs[i] = k
	}
	return ks, vs
}

// ---- PGM-like (extension baseline, §5 related work) ----

type pgmInst struct{ x *pgm.Index }

func (a pgmInst) Insert(k, v uint64)          { a.x.Insert(k, v) }
func (a pgmInst) Get(k uint64) (uint64, bool) { return a.x.Get(k) }
func (a pgmInst) Delete(k uint64) bool        { return a.x.Delete(k) }
func (a pgmInst) Len() int                    { return a.x.Len() }
func (a pgmInst) Scan(s uint64, m int, dst []kv.KV) ([]kv.KV, bool) {
	return a.x.Scan(s, m, dst), true
}
func (a pgmInst) BulkLoad(keys, vals []uint64) bool { a.x.BulkLoad(keys, vals); return true }
func (a pgmInst) Footprint() int64                  { return a.x.MemoryFootprint() }
func (a pgmInst) Close()                            {}

// PGM returns the dynamic PGM-index factory (extension comparison).
func PGM() Factory {
	return Factory{Name: "PGM", Ordered: true, New: func() Instance {
		return pgmInst{pgm.New()}
	}}
}
