// Wordindex: string keys on DyTIS via the strkey adapter — an inverted
// word-frequency index with prefix range queries, demonstrating the
// string-key extension (§5 of the paper discusses string support as the
// domain of SIndex/Wormhole; strkey bridges the gap for moderate key sets).
package main

import (
	"fmt"
	"strings"

	"dytis"
	"dytis/strkey"
)

const text = `the quick brown fox jumps over the lazy dog
the dog barks and the fox runs through the quiet forest
quick thinking foxes outfox the quickest dogs every day
a quiet quorum of quokkas questioned the quality of quince`

func main() {
	m := strkey.NewMap(dytis.Options{})

	// Count word frequencies.
	for _, w := range strings.Fields(text) {
		w = strings.ToLower(strings.Trim(w, ".,!?"))
		if w == "" {
			continue
		}
		n, _ := m.Get(w)
		m.Set(w, n+1)
	}
	fmt.Printf("distinct words: %d\n", m.Len())

	// Point lookups.
	for _, w := range []string{"the", "fox", "zebra"} {
		if n, ok := m.Get(w); ok {
			fmt.Printf("%-8s %d\n", w, n)
		} else {
			fmt.Printf("%-8s (absent)\n", w)
		}
	}

	// Prefix range query: every word starting with "qu" — an ordered scan
	// from "qu" that stops at the first non-matching word.
	fmt.Println("\nwords with prefix 'qu':")
	m.Range("qu", func(k string, v uint64) bool {
		if !strings.HasPrefix(k, "qu") {
			return false
		}
		fmt.Printf("  %-12s %d\n", k, v)
		return true
	})

	// Lexicographically first and last words via bounded ranges.
	m.Range("", func(k string, v uint64) bool {
		fmt.Printf("\nfirst word in order: %q\n", k)
		return false
	})
}
