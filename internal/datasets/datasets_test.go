package datasets

import (
	"testing"

	"dytis/internal/metrics"
)

func TestAllGeneratorsProduceUniqueKeys(t *testing.T) {
	specs := append(append([]Spec{}, Group1...), Group3...)
	for _, s := range specs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			keys := s.Gen(20000, 1)
			if len(keys) != 20000 {
				t.Fatalf("generated %d keys", len(keys))
			}
			seen := make(map[uint64]bool, len(keys))
			for _, k := range keys {
				if seen[k] {
					t.Fatalf("duplicate key %#x", k)
				}
				seen[k] = true
			}
		})
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Taxi.Gen(5000, 42)
	b := Taxi.Gen(5000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different keys")
		}
	}
	c := Taxi.Gen(5000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestShuffledPreservesKeySet(t *testing.T) {
	s := Shuffled(ReviewM)
	orig := ReviewM.Gen(10000, 7)
	shuf := s.Gen(10000, 7)
	om := map[uint64]bool{}
	for _, k := range orig {
		om[k] = true
	}
	moved := 0
	for i, k := range shuf {
		if !om[k] {
			t.Fatalf("shuffled introduced new key %#x", k)
		}
		if k != orig[i] {
			moved++
		}
	}
	if moved < len(orig)/2 {
		t.Fatalf("shuffle barely moved keys: %d/%d", moved, len(orig))
	}
}

func TestCountScaling(t *testing.T) {
	if got := MapM.Count(0.001); got != 356000 {
		t.Fatalf("Count(0.001)=%d", got)
	}
	if got := MapM.Count(0); got != 1000 {
		t.Fatalf("floor: %d", got)
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("TX"); !ok || s.Name != "TX" {
		t.Fatal("ByName(TX) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom dataset")
	}
}

// TestDynamicCharacteristicsMatchPaperClasses checks that the generators
// land in the paper's Figure-1 groups relative to each other: Review skews
// hardest, Taxi diverges hardest, shuffling lowers KDD, Uniform is lowest
// in both.
func TestDynamicCharacteristicsMatchPaperClasses(t *testing.T) {
	const n, chunk = 60000, 5000
	sk := map[string]float64{}
	kd := map[string]float64{}
	for _, s := range []Spec{MapM, ReviewM, Taxi, Uniform} {
		keys := s.Gen(n, 3)
		sk[s.Name] = metrics.SkewnessVariance(keys, chunk)
		kd[s.Name] = metrics.KDD(keys, chunk)
	}
	if !(sk["RM"] > sk["TX"] && sk["TX"] > sk["Uniform"]) {
		t.Fatalf("skew ordering wrong: RM=%.2f TX=%.2f MM=%.2f U=%.2f",
			sk["RM"], sk["TX"], sk["MM"], sk["Uniform"])
	}
	if !(sk["RM"] > sk["MM"]) {
		t.Fatalf("RM should out-skew MM: RM=%.2f MM=%.2f", sk["RM"], sk["MM"])
	}
	if !(kd["TX"] > kd["RM"] && kd["TX"] > kd["Uniform"]) {
		t.Fatalf("KDD ordering wrong: TX=%.3f MM=%.3f RM=%.3f U=%.3f",
			kd["TX"], kd["MM"], kd["RM"], kd["Uniform"])
	}
	// Shuffling drops the KDD of a drifting dataset.
	shufTX := Shuffled(Taxi).Gen(n, 3)
	if got := metrics.KDD(shufTX, chunk); got >= kd["TX"]/2 {
		t.Fatalf("shuffling did not stabilize TX: %.3f vs %.3f", got, kd["TX"])
	}
}
