package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dytis/internal/proto"
)

// WAL record framing, little-endian like the snapshot format (the wire
// protocol is the big-endian one; the log is never exchanged with peers):
//
//	uint32  payload length                ─┐ covered by
//	uint32  crc32c(length ‖ payload)       │ the checksum? no —
//	...     payload                       ─┘ see below
//
// The CRC is computed over the 4 length bytes followed by the payload
// (proto's Castagnoli path, hardware-accelerated), so a flipped length bit
// cannot silently re-delimit the log into plausible records — the same
// argument as the protocol v2 frame trailer, applied at rest. The CRC field
// itself sits between length and payload so a record is readable with two
// sequential reads (8-byte header, then payload).
//
// Payload shapes, tagged by their first byte:
//
//	kindInsert       k(1) key(8) val(8)
//	kindDelete       k(1) key(8)
//	kindInsertBatch  k(1) n(4) [key(8) val(8)]*n      n <= maxBatchPairs
//	kindDeleteBatch  k(1) n(4) key(8)*n               n <= maxBatchPairs
//
// Batches larger than maxBatchPairs are split into several records by the
// appender, so one corrupt record never holds more than a bounded slice of
// the log hostage and replay allocation stays bounded.
const (
	kindInsert      = 1
	kindDelete      = 2
	kindInsertBatch = 3
	kindDeleteBatch = 4

	recHeaderLen  = 8
	maxBatchPairs = 1 << 16
	// maxRecordPayload bounds a single record: the largest batch record
	// plus its tag and count. Anything larger in a length field is
	// corruption (or a torn tail), never a legitimate record.
	maxRecordPayload = 1 + 4 + 16*maxBatchPairs
)

var (
	// ErrCorrupt is wrapped by recovery failures that torn-tail tolerance
	// cannot excuse: a bad record anywhere but the tail of the newest
	// segment, a gap in the segment sequence, or an unreadable checkpoint
	// with no older fallback. Match with errors.Is.
	ErrCorrupt = errors.New("wal: log corrupt")

	// errTorn marks a record that ends before its framing says it should,
	// or fails its checksum — expected at the tail of the newest segment
	// after kill -9, fatal anywhere else. Internal: recovery converts it
	// to either a tolerated truncation or ErrCorrupt by position.
	errTorn = errors.New("wal: torn record")
)

// appendRecord frames one payload: length, CRC over length‖payload, payload.
func appendRecord(dst []byte, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := proto.CRC32CUpdate(proto.CRC32C(hdr[0:4]), payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func appendInsert(dst []byte, key, val uint64) []byte {
	var p [17]byte
	p[0] = kindInsert
	binary.LittleEndian.PutUint64(p[1:9], key)
	binary.LittleEndian.PutUint64(p[9:17], val)
	return appendRecord(dst, p[:])
}

func appendDelete(dst []byte, key uint64) []byte {
	var p [9]byte
	p[0] = kindDelete
	binary.LittleEndian.PutUint64(p[1:9], key)
	return appendRecord(dst, p[:])
}

// appendInsertBatch frames keys/vals as one or more batch records, splitting
// at maxBatchPairs.
func appendInsertBatch(dst []byte, keys, vals []uint64) []byte {
	for len(keys) > 0 {
		n := min(len(keys), maxBatchPairs)
		payload := make([]byte, 0, 5+16*n)
		payload = append(payload, kindInsertBatch)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(n))
		for i := 0; i < n; i++ {
			payload = binary.LittleEndian.AppendUint64(payload, keys[i])
			payload = binary.LittleEndian.AppendUint64(payload, vals[i])
		}
		dst = appendRecord(dst, payload)
		keys, vals = keys[n:], vals[n:]
	}
	return dst
}

func appendDeleteBatch(dst []byte, keys []uint64) []byte {
	for len(keys) > 0 {
		n := min(len(keys), maxBatchPairs)
		payload := make([]byte, 0, 5+8*n)
		payload = append(payload, kindDeleteBatch)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(n))
		for i := 0; i < n; i++ {
			payload = binary.LittleEndian.AppendUint64(payload, keys[i])
		}
		dst = appendRecord(dst, payload)
		keys = keys[n:]
	}
	return dst
}

// readRecord reads one framed record from r into buf (grown as needed) and
// returns the verified payload, which aliases buf. io.EOF means a clean end
// exactly at a record boundary; errTorn wraps every way a record can end
// early or fail its checksum.
func readRecord(r io.Reader, buf []byte) (payload, buf2 []byte, err error) {
	var hdr [recHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if n == 0 && err == io.EOF {
			return nil, buf, io.EOF
		}
		return nil, buf, fmt.Errorf("%w: %d header bytes then %v", errTorn, n, err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	if plen > maxRecordPayload {
		return nil, buf, fmt.Errorf("%w: implausible payload length %d", errTorn, plen)
	}
	if cap(buf) < int(plen) {
		buf = make([]byte, plen)
	}
	payload = buf[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, buf, fmt.Errorf("%w: payload short: %v", errTorn, err)
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if got := proto.CRC32CUpdate(proto.CRC32C(hdr[0:4]), payload); got != want {
		return nil, buf, fmt.Errorf("%w: checksum %08x, computed %08x", errTorn, want, got)
	}
	return payload, buf, nil
}

// replayPayload applies one verified record payload to apply-callbacks.
// Malformed payloads (unknown kind, truncated batch) return errTorn — the
// framing was intact but the content lies, which recovery treats exactly
// like a torn record at that position.
func replayPayload(p []byte, insert func(k, v uint64), del func(k uint64)) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: empty payload", errTorn)
	}
	switch p[0] {
	case kindInsert:
		if len(p) != 17 {
			return fmt.Errorf("%w: insert payload %d bytes", errTorn, len(p))
		}
		insert(binary.LittleEndian.Uint64(p[1:9]), binary.LittleEndian.Uint64(p[9:17]))
	case kindDelete:
		if len(p) != 9 {
			return fmt.Errorf("%w: delete payload %d bytes", errTorn, len(p))
		}
		del(binary.LittleEndian.Uint64(p[1:9]))
	case kindInsertBatch:
		if len(p) < 5 {
			return fmt.Errorf("%w: batch header %d bytes", errTorn, len(p))
		}
		n := binary.LittleEndian.Uint32(p[1:5])
		if n > maxBatchPairs || len(p) != 5+16*int(n) {
			return fmt.Errorf("%w: insert batch n=%d payload %d bytes", errTorn, n, len(p))
		}
		for i := 0; i < int(n); i++ {
			off := 5 + 16*i
			insert(binary.LittleEndian.Uint64(p[off:off+8]), binary.LittleEndian.Uint64(p[off+8:off+16]))
		}
	case kindDeleteBatch:
		if len(p) < 5 {
			return fmt.Errorf("%w: batch header %d bytes", errTorn, len(p))
		}
		n := binary.LittleEndian.Uint32(p[1:5])
		if n > maxBatchPairs || len(p) != 5+8*int(n) {
			return fmt.Errorf("%w: delete batch n=%d payload %d bytes", errTorn, n, len(p))
		}
		for i := 0; i < int(n); i++ {
			off := 5 + 8*i
			del(binary.LittleEndian.Uint64(p[off : off+8]))
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d", errTorn, p[0])
	}
	return nil
}
