// Package dytis is the public API of this repository's reproduction of
// "DyTIS: A Dynamic Dataset Targeted Index Structure Simultaneously
// Efficient for Search, Insert, and Scan" (Yang et al., EuroSys '23).
//
// DyTIS is an in-memory ordered index over uint64 keys that supports point
// search, insert (upsert), delete, and range scans, and — unlike learned
// indexes — needs no bulk-load training phase: it learns and adjusts a
// piecewise-linear approximation of the key distribution's CDF incrementally
// as keys arrive, which makes it effective for dynamic datasets whose key
// densities vary across the key space and drift over time.
//
// Quick start:
//
//	idx := dytis.New()
//	idx.Insert(42, 1)
//	v, ok := idx.Get(42)
//	pairs := idx.Scan(0, 100, nil) // first 100 pairs in key order
//
// New takes functional options; for multi-goroutine use, enable the
// two-level locking scheme of the paper's §3.4:
//
//	idx := dytis.New(dytis.WithConcurrent())
//
// The Options-struct constructor remains available as NewFromOptions.
//
// Beyond the core operations the index offers ordered iteration (NewCursor,
// Range, ScanFunc), Min/Max/Successor, a LoadSorted bulk fast path, binary
// snapshots (WriteSnapshot/ReadSnapshot), and structure statistics (Stats,
// MemoryFootprint). String keys are supported via the dytis/strkey
// subpackage. For live observability — per-operation latency histograms,
// structure-event hooks, and a Prometheus/expvar HTTP endpoint — attach an
// Observer:
//
//	ob := dytis.NewObserver()
//	idx := dytis.New(dytis.WithConcurrent(), dytis.WithObserver(ob))
//	go http.ListenAndServe(":8080", ob.Handler())
//
// The internal packages also contain the paper's baselines (an ALEX-like
// adaptive learned index, an XIndex-like concurrent learned index, an STX
// style B+-tree, classic Extendible Hashing, and CCEH), the synthetic
// dynamic datasets, the YCSB-style workload generator, and the benchmark
// harness that regenerates every table and figure of the paper's evaluation;
// see DESIGN.md and EXPERIMENTS.md.
package dytis

import (
	"dytis/internal/core"
	"dytis/internal/kv"
	"dytis/internal/obs"
)

// Key is an 8-byte integer key, ordered by unsigned value.
type Key = kv.Key

// Value is an 8-byte value payload (a pointer/handle in a real system).
type Value = kv.Value

// KV is a key/value pair, the unit returned by scans.
type KV = kv.KV

// Options configure an Index; the zero value selects the paper's §4.1
// defaults (R=9, 2 KB buckets, U_t=0.6, L_start=6, adaptive Limit_seg).
// New's functional options are the primary way to configure an index;
// Options remains for callers that build configurations programmatically
// (pass it to NewFromOptions).
type Options = core.Options

// Stats reports the index's structure-maintenance counters (splits,
// remappings, expansions, directory doublings) and shape.
type Stats = core.Stats

// Index is a DyTIS index. See the package documentation for usage; all
// methods are safe for concurrent use iff Options.Concurrent was set.
// Beyond the point operations, Index offers Scan/Range, Min/Max/Successor,
// NewCursor for ordered iteration, and LoadSorted as a bulk fast path.
type Index = core.DyTIS

// Cursor iterates an Index in ascending key order; see Index.NewCursor.
type Cursor = core.Cursor

// New creates an empty index. With no options it is single-threaded with
// the paper's §4.1 default parameters; see the With* functional options.
func New(opts ...Option) *Index {
	var o core.Options
	for _, apply := range opts {
		apply(&o)
	}
	return newFromCoreOptions(o)
}

// NewFromOptions creates an empty index from an Options struct. It is the
// compatibility path for the pre-functional-options API; New is preferred.
func NewFromOptions(o Options) *Index { return newFromCoreOptions(o) }

// NewDefault creates an empty single-threaded index with the paper's
// default parameters. Equivalent to New() with no options.
func NewDefault() *Index { return New() }

func newFromCoreOptions(o core.Options) *Index {
	idx := core.New(o)
	// Complete the observer wiring: the exporter serves Stats and
	// MemoryFootprint straight from the index.
	if ob, ok := o.Observer.(*obs.Observer); ok && ob != nil {
		ob.Attach(idx)
	}
	return idx
}
