package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/kv"
)

// eh is one second-level Extendible-Hashing table. It owns the keys whose R
// most significant bits equal its index, and organizes them as a directory of
// 2^GD entries pointing at segments (local depth LD <= GD), each holding a
// contiguous sub-range of the EH's key range.
//
// Locking (§3.4, optimistic variant): writers follow the paper's two-level
// scheme — mu.RLock to resolve the directory, then the segment write lock;
// structure changes (split, directory doubling, sibling-pointer updates)
// take mu.Lock, which excludes all other writers on this EH. Readers are
// optimistic: they resolve the directory through the published snapshot
// (snap) without touching mu, and point lookups probe the segment's
// published layout under its seqlock version counter with no lock at all,
// falling back to the locked path on conflict. Remapping and expansion only
// mutate segment internals, so they run under the segment write lock alone.
type eh struct {
	mu   sync.RWMutex
	opts *Options
	conc bool

	suffixBits uint8  // 64 - R
	base       uint64 // first key of this EH's range
	idx        int    // first-level table index (base >> suffixBits)
	obs        Observer
	noOpt      bool // cached Options.DisableOptimisticReads

	dir []*segment // guarded-by: mu
	gd  uint8      // guarded-by: mu

	// snap is the published directory snapshot optimistic readers resolve
	// through. Writers republish (under mu.Lock) before retiring any segment
	// the old snapshot routed to, so a reader that observes retirement and
	// reloads is guaranteed a directory that routes around it. Only
	// maintained in Concurrent mode past construction.
	snap atomic.Pointer[dirSnap]

	total     atomic.Int64
	limitMult atomic.Int32
	adaptDone bool // guarded-by: mu; adaptive-limit decision made (write paths)

	stats ehStats
}

// ehStats counts and times the Algorithm-1 maintenance operations, feeding
// the §4.3 insertion-breakdown experiment.
type ehStats struct {
	splits, remaps, expansions, doublings, remapFails, shrinks atomic.Int64
	splitNS, remapNS, expandNS, doubleNS, shrinkNS             atomic.Int64
}

// dirSnap is an immutable snapshot of an EH's directory: the slice is a
// private copy, so in-place directory rewrites never mutate a published
// snapshot.
type dirSnap struct {
	dir []*segment
	gd  uint8
}

// index resolves k's directory slot within the snapshot (the snapshot's gd,
// not the canonical one).
func (sn *dirSnap) index(k, base uint64, suffixBits uint8) int {
	if sn.gd == 0 {
		return 0
	}
	return int((k - base) >> (suffixBits - sn.gd))
}

// optimisticRetries bounds how many optimistic attempts a reader makes
// before falling back to the locked path.
const optimisticRetries = 4

func newEH(base uint64, suffixBits uint8, opts *Options) *eh {
	e := &eh{
		opts:       opts,
		conc:       opts.Concurrent,
		suffixBits: suffixBits,
		base:       base,
		idx:        int(base >> suffixBits),
		obs:        opts.Observer,
		gd:         0,
	}
	e.noOpt = opts.DisableOptimisticReads
	e.limitMult.Store(int32(opts.SegLimitMult))
	root := newSegment(0, suffixBits, base, 1, opts.BucketEntries, 0)
	e.dir = []*segment{root}
	e.publishDir()
	return e
}

// publishDir publishes a fresh snapshot of the directory for optimistic
// readers. Called whenever the directory or gd changes in Concurrent mode
// (and at construction/bulk-load in both modes).
//
//dytis:locked e.mu w
func (e *eh) publishDir() {
	d := make([]*segment, len(e.dir))
	copy(d, e.dir)
	e.snap.Store(&dirSnap{dir: d, gd: e.gd})
}

// fire emits a structure event for segment s; kept out of line so the
// disabled case costs one branch at each maintenance site.
func (e *eh) fire(kind EventKind, s *segment, d time.Duration) {
	if e.obs == nil {
		return
	}
	e.obs.StructureEvent(StructureEvent{
		Kind:        kind,
		EH:          e.idx,
		SegmentBase: s.base,
		LocalDepth:  s.ld,
		Duration:    d,
	})
}

// forEachSegment visits each distinct segment once by stepping over the
// aligned 2^(gd-ld) directory run each segment owns (the walk maxPair uses).
// The previous consecutive-dedup walk (`s != prev`) silently double-counted
// any segment whose run was interrupted; the stride walk visits by run, and
// checkInvariants verifies runs tile the directory exactly. Caller holds the
// EH read lock in Concurrent mode.
//
//dytis:locked e.mu r
func (e *eh) forEachSegment(fn func(*segment)) {
	for i := 0; i < len(e.dir); {
		s := e.dir[i]
		fn(s)
		i += 1 << (e.gd - s.ld)
	}
}

//dytis:locked e.mu r
func (e *eh) dirIndex(k uint64) int {
	if e.gd == 0 {
		return 0
	}
	return int((k - e.base) >> (e.suffixBits - e.gd))
}

// maxBuckets is the per-depth segment-size limit Limit_seg: it doubles with
// each local-depth increase past L_start, scaled by the (possibly adaptive)
// multiplier.
func (e *eh) maxBuckets(ld uint8) int {
	mult := int(e.limitMult.Load())
	extra := int(ld) - e.opts.StartDepth
	if extra < 0 {
		extra = 0
	}
	if extra > 14 {
		extra = 14
	}
	lim := e.opts.BaseSegBuckets * mult << extra
	if lim > 1<<20 {
		lim = 1 << 20
	}
	return lim
}

// get returns k's value and presence. Concurrent mode runs the optimistic
// protocol: resolve the segment through the published directory snapshot (no
// EH lock), probe it with tryGet (no segment lock, seqlock-validated), and
// fall back to the §3.4 locked path after bounded conflicts. A retired
// segment fails validation permanently, and the splitter republishes the
// snapshot before retiring, so the retry's reload routes around it.
func (e *eh) get(k uint64) (uint64, bool) {
	if !e.conc {
		return e.getSeq(k)
	}
	if !e.noOpt {
		for attempt := 0; attempt < optimisticRetries; attempt++ {
			sn := e.snap.Load()
			s := sn.dir[sn.index(k, e.base, e.suffixBits)]
			if v, ok, valid := s.tryGet(k); valid {
				return v, ok
			}
		}
	}
	return e.getLocked(k)
}

// getSeq is the single-threaded read path: the paper's no-lock variant, kept
// on the pre-optimistic probe so non-Concurrent mode pays nothing for the
// snapshot machinery.
//
//dytis:nolockcheck
func (e *eh) getSeq(k uint64) (uint64, bool) {
	return e.dir[e.dirIndex(k)].get(k)
}

// getLocked is the §3.4 two-level locked read: resolve the directory under
// the EH read lock, probe under the segment read lock. It is the fallback
// for optimistic conflicts and the whole read path under
// DisableOptimisticReads. Concurrent mode only.
func (e *eh) getLocked(k uint64) (uint64, bool) {
	e.mu.RLock()
	s := e.dir[e.dirIndex(k)]
	s.mu.RLock()
	e.mu.RUnlock()
	v, ok := s.get(k)
	s.mu.RUnlock()
	return v, ok
}

// insert stores or updates k, returning whether a new key was added.
// It implements Algorithm 1 of the paper.
func (e *eh) insert(k, v uint64) bool {
	for attempt := 0; ; attempt++ {
		if e.conc {
			e.mu.RLock()
		}
		gdSnap := e.gd
		s := e.dir[e.dirIndex(k)]
		if e.conc {
			s.wlock()
			e.mu.RUnlock()
		}
		bi, pos, exists, full := s.findSlot(k)
		if exists {
			s.vals[bi*s.bcap+pos] = v
			if e.conc {
				s.wunlock()
			}
			return false
		}
		if !full {
			s.insertAt(bi, pos, k, v)
			if e.conc {
				s.wunlock()
			}
			e.total.Add(1)
			return true
		}

		// In the degenerate regime where the directory hit its depth guard
		// (key clusters far narrower than any sub-range), boundary inserts
		// would trigger a whole-segment rebuild every few keys; borrow a
		// slot from a nearby bucket instead.
		if int(gdSnap) >= maxDirDepth && s.makeRoom(bi, 64) {
			if bi2, pos2, _, full2 := s.findSlot(k); !full2 {
				s.insertAt(bi2, pos2, k, v)
				if e.conc {
					s.wunlock()
				}
				e.total.Add(1)
				return true
			}
		}

		// Bucket overflow: pick a maintenance operation. Below L_start only
		// the basic Extendible-Hashing schemes run; past it, low segment
		// utilization routes to remapping and high utilization to
		// split/expansion. A retry budget forces the structural path if
		// local adjustments fail to make room (e.g. adversarial key
		// clusters denser than a sub-range can express).
		handled := false
		if int(s.ld) >= e.opts.StartDepth && attempt < 8 {
			lowUtil := s.util() <= e.opts.UtilThreshold
			switch {
			case lowUtil && !e.opts.DisableRemap:
				handled = e.remap(s, k)
			case s.ld == gdSnap && !e.opts.DisableExpansion:
				handled = e.expand(s)
			}
		}
		if e.conc {
			s.wunlock()
		}
		if handled {
			continue
		}
		e.restructure(k)
	}
}

// restructure performs one structural change (directory doubling or segment
// split) for the segment currently owning k, under the EH write lock, after
// revalidating that the overflow still exists.
func (e *eh) restructure(k uint64) {
	if e.conc {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
	s := e.dir[e.dirIndex(k)]
	if e.conc {
		s.wlock()
		defer s.wunlock()
	}
	_, _, exists, full := s.findSlot(k)
	if exists || !full {
		return // another thread already made room
	}
	if s.ld == e.gd {
		t0 := time.Now()
		if int(e.gd) >= maxDirDepth {
			// The directory cannot usefully resolve this key cluster;
			// rebalance (and if genuinely full, grow past Limit_seg)
			// instead of doubling forever.
			e.forceRebalance(s)
			return
		}
		e.doubleDirectory()
		e.stats.doublings.Add(1)
		d := time.Since(t0)
		e.stats.doubleNS.Add(int64(d))
		e.fire(EvDouble, s, d)
		return
	}
	e.splitSegment(s)
}

// forceRebalance is the escape hatch used when the directory-depth guard
// refuses further doubling: it redistributes the segment's keys with a
// bucket allocation refreshed from the observed per-sub-range counts,
// growing the segment (ignoring Limit_seg) only when it is genuinely full.
// Growing on every trip would balloon capacity unboundedly under
// insert-at-a-boundary patterns whose overflow is local, not global.
//
//dytis:locked s.mu w
func (e *eh) forceRebalance(s *segment) {
	t0 := time.Now()
	nb := s.nb
	kind := EvRemap
	if s.util() >= e.opts.UtilThreshold {
		nb *= 2
		s.expanded = true
		kind = EvExpand
		e.stats.expansions.Add(1)
	} else {
		e.stats.remaps.Add(1)
	}
	counts := s.subRangeKeyCounts(s.pbits)
	cnt := allocSmoothed(counts, nb)
	ks := make([]uint64, 0, s.total)
	vs := make([]uint64, 0, s.total)
	ks, vs = s.appendAll(ks, vs)
	s.adoptLayout(s.pbits, cnt, nb, ks, vs)
	d := time.Since(t0)
	// Book the duration to the counter matching the fired event kind, so the
	// §4.3 breakdown's remap and expansion rows stay comparable (durations
	// must have the same cardinality as their counters).
	if kind == EvExpand {
		e.stats.expandNS.Add(int64(d))
	} else {
		e.stats.remapNS.Add(int64(d))
	}
	e.fire(kind, s, d)
}

// allocSmoothed is allocProportional with additive smoothing: key-free
// sub-ranges keep ~20% of the buckets collectively, so predictions for keys
// that arrive there later (ascending appends at a frontier are the common
// case) land on real buckets instead of collapsing onto the segment's edge.
func allocSmoothed(weights []int, total int) []uint32 {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	eps := (sum + 4*len(weights) - 1) / (4 * len(weights))
	if eps < 1 {
		eps = 1
	}
	smoothed := make([]int, len(weights))
	for j, w := range weights {
		smoothed[j] = w + eps
	}
	return allocProportional(smoothed, total)
}

// forceExpand doubles a segment in place, scaling the remapping function.
//
//dytis:locked s.mu w
func (e *eh) forceExpand(s *segment) {
	t0 := time.Now()
	cnt := make([]uint32, len(s.cnt))
	for j, c := range s.cnt {
		cnt[j] = c * 2
	}
	ks := make([]uint64, 0, s.total)
	vs := make([]uint64, 0, s.total)
	ks, vs = s.appendAll(ks, vs)
	s.adoptLayout(s.pbits, cnt, s.nb*2, ks, vs)
	s.expanded = true
	e.stats.expansions.Add(1)
	d := time.Since(t0)
	e.stats.expandNS.Add(int64(d))
	e.fire(EvExpand, s, d)
}

//dytis:locked e.mu w
func (e *eh) doubleDirectory() {
	nd := make([]*segment, len(e.dir)*2)
	for i, s := range e.dir {
		nd[2*i] = s
		nd[2*i+1] = s
	}
	e.dir = nd
	e.gd++
	if e.conc {
		e.publishDir()
	}
}

// splitSegment divides s into two children at the midpoint of its key range.
// Each child is sized to fit its keys and then doubled (capped by Limit_seg),
// and its bucket allocation follows the observed per-sub-range key counts so
// the remapping-function slopes carry over. Caller holds the EH write lock
// and the segment lock (in concurrent mode).
//
//dytis:locked e.mu w
//dytis:locked s.mu w
func (e *eh) splitSegment(s *segment) {
	t0 := time.Now()
	nld := s.ld + 1
	halfBits := s.rangeBits - 1
	mid := s.base + 1<<halfBits

	ks := make([]uint64, 0, s.total)
	vs := make([]uint64, 0, s.total)
	ks, vs = s.appendAll(ks, vs)
	cut := sort.Search(len(ks), func(i int) bool { return ks[i] >= mid })

	childPb := s.pbits
	if childPb > 0 {
		childPb--
	}
	left := e.buildChild(nld, halfBits, s.base, childPb, ks[:cut], vs[:cut])
	right := e.buildChild(nld, halfBits, mid, childPb, ks[cut:], vs[cut:])
	left.expanded, right.expanded = s.expanded, s.expanded

	right.next.Store(s.next.Load())
	left.next.Store(right)

	span := 1 << (e.gd - s.ld)
	first := int((s.base - e.base) >> (e.suffixBits - e.gd))
	if first > 0 {
		e.dir[first-1].next.Store(left)
	}
	half := span / 2
	for i := 0; i < half; i++ {
		e.dir[first+i] = left
	}
	for i := half; i < span; i++ {
		e.dir[first+i] = right
	}
	// Publish the rewired directory BEFORE retiring s: a reader that
	// observes retirement (odd seq) and retries is then guaranteed — the
	// atomics are seq-cst, so the stores are totally ordered — to load a
	// snapshot that routes around the retired segment. The retirement bump
	// leaves s permanently odd in both modes; the momentary even window at
	// wunlock is harmless because a split never mutates s's arrays, so an
	// optimistic probe of the frozen pre-split contents reads the children's
	// union.
	if e.conc {
		e.publishDir()
	}
	s.seq.Add(1)
	e.stats.splits.Add(1)
	d := time.Since(t0)
	e.stats.splitNS.Add(int64(d))
	e.fire(EvSplit, s, d)

	// Adaptive Limit_seg (§3.3 "Selecting a segment size"): the first time a
	// segment reaches L' = L_start + 2, inspect the portion of segments
	// that have undergone expansion; a large portion means a uniform-ish
	// distribution, so allow much larger segments.
	if !e.adaptDone && int(nld) >= e.opts.StartDepth+2 && !e.opts.DisableAdaptiveLimit {
		e.adaptDone = true
		var total, exp int
		e.forEachSegment(func(sg *segment) {
			// expanded is written by expand/forceExpand under only sg.mu
			// (insert drops the EH read lock before restructuring), so the EH
			// write lock we hold does not exclude those writers. Safe to take
			// here: s itself left the directory above, and no path acquires
			// e.mu while holding a segment lock.
			if e.conc {
				sg.mu.RLock()
			}
			total++
			if sg.expanded {
				exp++
			}
			if e.conc {
				sg.mu.RUnlock()
			}
		})
		if total > 0 && float64(exp)/float64(total) >= DefaultAdaptiveFrac {
			e.limitMult.Store(int32(e.opts.AdaptiveMult))
		}
	}
}

// buildChild creates a split child covering [base, base+2^rangeBits) holding
// the given ascending pairs.
func (e *eh) buildChild(ld, rangeBits uint8, base uint64, pbits uint8, ks, vs []uint64) *segment {
	bcap := e.opts.BucketEntries
	fit := (len(ks) + bcap - 1) / bcap
	if fit == 0 {
		fit = 1
	}
	nb := 2 * fit
	if lim := e.maxBuckets(ld); nb > lim {
		nb = lim
	}
	if nb < fit {
		nb = fit
	}
	if pbits > rangeBits {
		pbits = rangeBits
	}
	c := newSegment(ld, rangeBits, base, nb, bcap, pbits)
	if c.pbits > 0 && len(ks) > 0 {
		counts := histogram(ks, base, rangeBits, c.pbits)
		c.cnt = allocProportional(counts, nb)
		c.start = prefixSums(c.cnt)
	}
	c.adoptLayout(c.pbits, c.cnt, nb, ks, vs)
	return c
}

// histogram counts ascending keys per 2^pbits equal sub-range of
// [base, base+2^rangeBits).
func histogram(ks []uint64, base uint64, rangeBits, pbits uint8) []int {
	out := make([]int, 1<<pbits)
	shift := rangeBits - pbits
	for _, k := range ks {
		out[(k-base)>>shift]++
	}
	return out
}

// allocProportional distributes total buckets across sub-ranges in proportion
// to their key counts (even split when no keys), using cumulative rounding so
// the counts sum exactly to total.
func allocProportional(weights []int, total int) []uint32 {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	out := make([]uint32, len(weights))
	if sum == 0 {
		evenSplit(out, total)
		return out
	}
	cum, prevAlloc := 0, 0
	for j, w := range weights {
		cum += w
		alloc := int(int64(total) * int64(cum) / int64(sum))
		out[j] = uint32(alloc - prevAlloc)
		prevAlloc = alloc
	}
	return out
}

// expand doubles the segment in place, scaling the remapping function
// (doubling every sub-range's bucket count). Caller holds the segment lock.
//
//dytis:locked s.mu w
func (e *eh) expand(s *segment) bool {
	if s.nb*2 > e.maxBuckets(s.ld) {
		return false
	}
	e.forceExpand(s)
	return true
}

// remap adjusts the segment's remapping function to relieve the skew around
// key k (§3.3 "Remapping"): it refines sub-ranges until the target sub-range
// is dense, then doubles the target's bucket share by stealing buckets from
// under-utilized sub-ranges, growing the segment only if stealing cannot
// cover the need. Caller holds the segment lock.
//
//dytis:locked s.mu w
func (e *eh) remap(s *segment, k uint64) bool {
	t0 := time.Now()
	ut := e.opts.UtilThreshold
	bcap := float64(s.bcap)

	pb := s.pbits
	cnt := append([]uint32(nil), s.cnt...)
	counts := s.subRangeKeyCounts(pb)

	maxPb := uint8(e.opts.MaxSubRangeBits)
	if maxPb > s.rangeBits {
		maxPb = s.rangeBits
	}
	if !e.opts.DisableRefinement {
		for pb < maxPb {
			t := int((k - s.base) >> (s.rangeBits - pb))
			if cnt[t] == 0 || float64(counts[t])/(float64(cnt[t])*bcap) > ut {
				break // target sub-range is dense enough to isolate the skew
			}
			// Refine: split every sub-range in two, dividing its buckets in
			// proportion to the key counts of its halves.
			fine := s.subRangeKeyCounts(pb + 1)
			ncnt := make([]uint32, 2<<pb)
			for j, c := range cnt {
				n0, n1 := fine[2*j], fine[2*j+1]
				var c0 uint32
				if n0+n1 == 0 {
					c0 = c / 2
				} else {
					c0 = uint32(int64(c) * int64(n0) / int64(n0+n1))
				}
				ncnt[2*j], ncnt[2*j+1] = c0, c-c0
			}
			pb++
			cnt, counts = ncnt, fine
		}
	}

	t := int((k - s.base) >> (s.rangeBits - pb))
	need := int(cnt[t])
	// Doubling a heavily-refined target can mean adding a bucket or two,
	// which a hot insertion point (e.g. an append frontier) exhausts within
	// a few dozen keys — and every remap costs a full segment rebuild. A
	// floor of nb/16 keeps the absorbed-inserts-per-rebuild proportional to
	// the rebuild cost, amortizing remapping to O(1) copies per insert.
	if m := s.nb / 16; need < m {
		need = m
	}
	if need == 0 {
		need = 1
	}

	// Compute how many buckets each low-utilization sub-range can donate
	// while still fitting its keys.
	avail := 0
	donate := make([]int, len(cnt))
	for j := range cnt {
		if j == t || cnt[j] == 0 {
			continue
		}
		if float64(counts[j])/(float64(cnt[j])*bcap) < ut {
			minNeed := (counts[j] + s.bcap - 1) / s.bcap
			if g := int(cnt[j]) - minNeed; g > 0 {
				donate[j] = g
				avail += g
			}
		}
	}

	nb := s.nb
	if avail >= need {
		rem := need
		for j, g := range donate {
			if rem == 0 {
				break
			}
			if g > rem {
				g = rem
			}
			cnt[j] -= uint32(g)
			rem -= g
		}
		cnt[t] += uint32(need)
	} else {
		// Stealing cannot cover the need: grow the segment so the target
		// sub-range's share doubles, if Limit_seg allows.
		nb += need
		if nb > e.maxBuckets(s.ld) {
			e.stats.remapFails.Add(1)
			e.fire(EvRemapFailure, s, 0)
			return false
		}
		cnt[t] += uint32(need)
	}

	ks := make([]uint64, 0, s.total)
	vs := make([]uint64, 0, s.total)
	ks, vs = s.appendAll(ks, vs)
	s.adoptLayout(pb, cnt, nb, ks, vs)
	e.stats.remaps.Add(1)
	d := time.Since(t0)
	e.stats.remapNS.Add(int64(d))
	e.fire(EvRemap, s, d)
	return true
}

// delete removes k if present. Deep under-utilization triggers a shrink, the
// inverse of remapping (§3.3 "Deletion").
func (e *eh) delete(k uint64) bool {
	if e.conc {
		e.mu.RLock()
	}
	s := e.dir[e.dirIndex(k)]
	if e.conc {
		s.wlock()
		e.mu.RUnlock()
		defer s.wunlock()
	}
	bi, pos, exists, _ := s.findSlot(k)
	if !exists {
		return false
	}
	s.removeAt(bi, pos)
	e.total.Add(-1)

	if s.nb > 1 && s.util() < 0.2 {
		target := int(float64(s.total)/(float64(s.bcap)*e.opts.UtilThreshold)) + 1
		if target <= s.nb/2 {
			t0 := time.Now()
			counts := s.subRangeKeyCounts(s.pbits)
			cnt := allocProportional(counts, target)
			ks := make([]uint64, 0, s.total)
			vs := make([]uint64, 0, s.total)
			ks, vs = s.appendAll(ks, vs)
			s.adoptLayout(s.pbits, cnt, target, ks, vs)
			e.stats.shrinks.Add(1)
			d := time.Since(t0)
			e.stats.shrinkNS.Add(int64(d))
			e.fire(EvShrink, s, d)
		}
	}
	return true
}

// seqSegment resolves k's directory entry with no locks; single-threaded
// mode only (Concurrent readers go through resolveRLocked or the snapshot).
//
//dytis:nolockcheck
func (e *eh) seqSegment(k uint64) *segment { return e.dir[e.dirIndex(k)] }

// resolveRLocked returns the segment owning k with its read lock held,
// resolving through the published directory snapshot so the common case
// never touches e.mu. A segment retired by a concurrent split is permanently
// odd-versioned, and no writer can be mid-critical-section while we hold the
// read lock, so an odd version under the read lock means retired: drop it
// and retry — the splitter publishes the new snapshot before retiring, so
// the reload observes a directory that routes around the retired segment.
// After bounded conflicts, fall back to the §3.4 locked resolution (under
// e.mu a directory entry cannot be retired before its lock is taken).
// Concurrent mode only.
//
//dytis:locksresult mu r
func (e *eh) resolveRLocked(k uint64) *segment {
	for attempt := 0; attempt < optimisticRetries; attempt++ {
		sn := e.snap.Load()
		s := sn.dir[sn.index(k, e.base, e.suffixBits)]
		s.mu.RLock()
		if !s.retired() {
			return s
		}
		s.mu.RUnlock()
	}
	e.mu.RLock()
	s := e.dir[e.dirIndex(k)]
	s.mu.RLock()
	e.mu.RUnlock()
	return s
}

// nextLocked advances hand-over-hand from the read-locked segment s to its
// chain successor nxt (= s.next at the call): it read-locks nxt before
// releasing s, so the chain cannot be rewired in the gap. If nxt turns out
// to be retired by a concurrent split, the splitter has already rewired
// s.next to the live left child — reload and retry. After bounded conflicts
// the retired segment is accepted: its frozen pre-split contents are a
// correct stale view of its key range (scans are documented not to be
// point-in-time snapshots), and its own next pointer continues the chain
// without overlap. Concurrent mode only.
//
//dytis:locked s.mu r
//dytis:locksresult mu r
func (e *eh) nextLocked(s, nxt *segment) *segment {
	for attempt := 0; ; attempt++ {
		nxt.mu.RLock()
		if attempt >= optimisticRetries || !nxt.retired() {
			s.mu.RUnlock()
			return nxt
		}
		nxt.mu.RUnlock()
		nxt = s.next.Load()
	}
}

// scan appends up to max pairs with key >= start from this EH, walking the
// segment sibling chain. It returns the extended slice.
func (e *eh) scan(start uint64, max int, dst []kv.KV) []kv.KV {
	if start < e.base {
		start = e.base
	}
	var s *segment
	if e.conc {
		s = e.resolveRLocked(start)
	} else {
		s = e.seqSegment(start)
	}
	bi, pos := s.lowerBound(start)
	taken := 0
	for {
		if bi >= 0 {
			for ; bi < s.nb && taken < max; bi, pos = bi+1, 0 {
				off := bi * s.bcap
				n := int(s.sz[bi])
				for ; pos < n && taken < max; pos++ {
					dst = append(dst, kv.KV{Key: s.keys[off+pos], Value: s.vals[off+pos]})
					taken++
				}
			}
		}
		if taken >= max {
			break
		}
		nxt := s.next.Load()
		if nxt == nil {
			break
		}
		if e.conc {
			nxt = e.nextLocked(s, nxt)
		}
		s = nxt
		bi, pos = 0, 0
	}
	if e.conc {
		s.mu.RUnlock()
	}
	return dst
}

// scanFunc calls fn for every pair with key >= start in this EH, in
// ascending order, walking the segment sibling chain. It returns false when
// fn stopped the iteration. In Concurrent mode fn runs under the current
// segment's read lock (see DyTIS.ScanFunc).
func (e *eh) scanFunc(start uint64, fn func(k, v uint64) bool) bool {
	if start < e.base {
		start = e.base
	}
	var s *segment
	if e.conc {
		s = e.resolveRLocked(start)
	} else {
		s = e.seqSegment(start)
	}
	bi, pos := s.lowerBound(start)
	for {
		if bi >= 0 && !s.visit(bi, pos, fn) {
			if e.conc {
				s.mu.RUnlock()
			}
			return false
		}
		nxt := s.next.Load()
		if nxt == nil {
			break
		}
		if e.conc {
			nxt = e.nextLocked(s, nxt)
		}
		s = nxt
		bi, pos = 0, 0
	}
	if e.conc {
		s.mu.RUnlock()
	}
	return true
}

// lowerBound returns the bucket/position of the first key >= k, or bi=-1 if
// none exists in the segment.
//
//dytis:locked s.mu r
func (s *segment) lowerBound(k uint64) (int, int) {
	if s.total == 0 {
		return -1, 0
	}
	c := s.candidate(k, s.predict(k))
	if c < 0 {
		return s.firstNonEmpty(), 0
	}
	ks := s.bucketKeys(c)
	i := sort.Search(len(ks), func(i int) bool { return ks[i] >= k })
	if i < len(ks) {
		return c, i
	}
	return s.nextNonEmpty(c), 0
}
