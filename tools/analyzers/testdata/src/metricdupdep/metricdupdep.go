// Package metricdupdep registers dytis_dup_requests_total; a dependent
// package registering the same name must be flagged via package facts.
package metricdupdep

import (
	"fmt"
	"io"
)

// WritePrometheus registers the series this package owns.
//
//dytis:series dytis_dup_requests_total
func WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "dytis_dup_requests_total %d\n", 0)
}
