package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"dytis/internal/cluster"
	"dytis/internal/lathist"
	"dytis/internal/proto"
)

// metricsShards spreads per-opcode latency recording over a few histogram
// shards keyed by connection serial, the same contention-avoidance scheme
// internal/obs uses with EH indexes. Power of two.
const metricsShards = 8

// Metrics collects server-side observability: per-opcode request latency
// histograms (measured from decode to response enqueue, i.e. including the
// index work but not the client's network time) and connection counters.
// All methods are safe for concurrent use; the zero value is ready.
//
// It deliberately mirrors internal/obs rather than replacing it: the obs
// Observer keeps reporting index-side op latency and structure events, and
// cmd/dytis-server serves both on one /metrics endpoint, so server-side
// latency sits next to the index's own numbers with distinct metric names
// (dytis_server_* vs dytis_*).
type Metrics struct {
	//dytis:series dytis_server_request_latency_nanoseconds
	ops [proto.NumOpcodes][metricsShards]lathist.AtomicHist
	// opCount counts index operations (batch entries count individually),
	// while the histograms count requests.
	//dytis:series dytis_server_ops_total
	opCount [proto.NumOpcodes]atomic.Int64

	//dytis:series dytis_server_connections_total
	connsTotal atomic.Int64
	//dytis:series dytis_server_connections_active
	connsActive atomic.Int64
	//dytis:series dytis_server_protocol_errors_total
	protoErrors atomic.Int64

	// Robustness counters (overload hardening + fault handling).

	//dytis:series dytis_server_overloads_total
	overloads atomic.Int64 // requests shed by admission control
	//dytis:series dytis_server_deadline_sheds_total
	deadlineSheds atomic.Int64 // requests skipped: propagated deadline expired
	//dytis:series dytis_server_panics_recovered_total
	panics atomic.Int64 // panics recovered (one connection closed each)
	//dytis:series dytis_server_connection_timeouts_total
	connTimeouts atomic.Int64 // connections reaped by idle/read deadline
	//dytis:series dytis_server_forced_closes_total
	forcedCloses atomic.Int64 // connections force-closed at drain timeout

	// Protocol v2 counters.

	//dytis:series dytis_server_frame_checksum_errors
	frameChecksums atomic.Int64 // frames failing CRC32C verification (conn quarantined each)
	//dytis:series dytis_server_scan_streams_total
	scanStreams atomic.Int64 // streaming scans started
	//dytis:series dytis_server_scan_chunks_total
	scanChunks atomic.Int64 // scan chunks produced (empty final pages included)
	//dytis:series dytis_server_out_queue_peak_bytes
	outQueuePeak atomic.Int64 // peak bytes queued on any one conn's out channel

	// Cluster counters (FeatCluster).

	//dytis:series dytis_server_wrong_shard_total
	wrongShards atomic.Int64 // requests redirected with StatusWrongShard
	//dytis:series dytis_server_handovers_started_total
	handovers atomic.Int64 // shard handovers this node originated

	// Handover robustness counters (self-healing rebalance).

	//dytis:series dytis_server_handover_failed_total
	handoverFails atomic.Int64 // handovers suspended (entered the failed state)
	//dytis:series dytis_server_handover_mirror_retries_total
	handoverMirrorRetries atomic.Int64 // double-write mirror sends retried
	//dytis:series dytis_server_handover_resumes_total
	handoverResumes atomic.Int64 // suspended handovers successfully resumed
}

func (m *Metrics) connAccepted() {
	m.connsTotal.Add(1)
	m.connsActive.Add(1)
}

func (m *Metrics) connClosed() { m.connsActive.Add(-1) }

func (m *Metrics) protoError() { m.protoErrors.Add(1) }

func (m *Metrics) overload() { m.overloads.Add(1) }

func (m *Metrics) deadlineShed() { m.deadlineSheds.Add(1) }

func (m *Metrics) panicRecovered() { m.panics.Add(1) }

func (m *Metrics) connTimeout() { m.connTimeouts.Add(1) }

func (m *Metrics) forceClosed() { m.forcedCloses.Add(1) }

func (m *Metrics) frameChecksum() { m.frameChecksums.Add(1) }

func (m *Metrics) scanStream() { m.scanStreams.Add(1) }

func (m *Metrics) scanChunk() { m.scanChunks.Add(1) }

func (m *Metrics) wrongShard() { m.wrongShards.Add(1) }

func (m *Metrics) handoverStarted() { m.handovers.Add(1) }

func (m *Metrics) handoverFailed() { m.handoverFails.Add(1) }

func (m *Metrics) handoverMirrorRetry() { m.handoverMirrorRetries.Add(1) }

func (m *Metrics) handoverResumed() { m.handoverResumes.Add(1) }

// HandoverEvents returns cluster event hooks that feed these metrics;
// cmd/dytis-server wires the result into cluster.NodeConfig.Events.
func (m *Metrics) HandoverEvents() cluster.HandoverEvents {
	return cluster.HandoverEvents{
		MirrorRetry: m.handoverMirrorRetry,
		Failed:      m.handoverFailed,
		Resumed:     m.handoverResumed,
	}
}

// noteOutQueue folds one observed out-channel byte depth into the peak.
func (m *Metrics) noteOutQueue(n int64) {
	for {
		cur := m.outQueuePeak.Load()
		if n <= cur || m.outQueuePeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// recordOp books one request of the given opcode covering n index
// operations, served in d.
func (m *Metrics) recordOp(op proto.Opcode, shard int, n int, d time.Duration) {
	if !op.Valid() {
		return
	}
	m.ops[op][shard&(metricsShards-1)].Record(d)
	m.opCount[op].Add(int64(n))
}

// OpHist returns a merged snapshot of one opcode's request latency
// histogram.
func (m *Metrics) OpHist(op proto.Opcode) *lathist.Hist {
	h := &lathist.Hist{}
	if !op.Valid() {
		return h
	}
	for i := range m.ops[op] {
		m.ops[op][i].AddTo(h)
	}
	return h
}

// OpCount returns the number of index operations served under the opcode
// (batch entries counted individually).
func (m *Metrics) OpCount(op proto.Opcode) int64 {
	if !op.Valid() {
		return 0
	}
	return m.opCount[op].Load()
}

// ConnsActive returns the number of currently served connections.
func (m *Metrics) ConnsActive() int64 { return m.connsActive.Load() }

// ConnsTotal returns the number of connections accepted since start.
func (m *Metrics) ConnsTotal() int64 { return m.connsTotal.Load() }

// ProtoErrors returns the number of malformed requests received.
func (m *Metrics) ProtoErrors() int64 { return m.protoErrors.Load() }

// Overloads returns the number of requests shed by admission control.
func (m *Metrics) Overloads() int64 { return m.overloads.Load() }

// DeadlineSheds returns the number of requests skipped because their
// propagated deadline budget had expired before execution.
func (m *Metrics) DeadlineSheds() int64 { return m.deadlineSheds.Load() }

// Panics returns the number of recovered per-connection panics.
func (m *Metrics) Panics() int64 { return m.panics.Load() }

// ConnTimeouts returns the number of connections reaped by the idle or
// per-frame read deadline (slow-loris defense).
func (m *Metrics) ConnTimeouts() int64 { return m.connTimeouts.Load() }

// ForcedCloses returns the number of connections force-closed because the
// drain timeout expired.
func (m *Metrics) ForcedCloses() int64 { return m.forcedCloses.Load() }

// FrameChecksumErrors returns the number of frames that failed CRC32C
// verification (each quarantines its connection).
func (m *Metrics) FrameChecksumErrors() int64 { return m.frameChecksums.Load() }

// ScanStreams returns the number of streaming scans started.
func (m *Metrics) ScanStreams() int64 { return m.scanStreams.Load() }

// ScanChunks returns the number of scan chunks produced.
func (m *Metrics) ScanChunks() int64 { return m.scanChunks.Load() }

// WrongShards returns the number of requests redirected with
// StatusWrongShard (key outside the owned range, or a stale scan epoch).
func (m *Metrics) WrongShards() int64 { return m.wrongShards.Load() }

// HandoversStarted returns the number of shard handovers this node
// originated.
func (m *Metrics) HandoversStarted() int64 { return m.handovers.Load() }

// HandoverFails returns the number of times a handover was suspended
// (entered the failed state) after exhausting its peer-call retries.
func (m *Metrics) HandoverFails() int64 { return m.handoverFails.Load() }

// HandoverMirrorRetries returns the number of double-write mirror sends
// that were retried against the handover target.
func (m *Metrics) HandoverMirrorRetries() int64 { return m.handoverMirrorRetries.Load() }

// HandoverResumes returns the number of suspended handovers successfully
// resumed.
func (m *Metrics) HandoverResumes() int64 { return m.handoverResumes.Load() }

// OutQueuePeakBytes returns the peak byte depth observed on any single
// connection's outbound response queue — the number that proves a streamed
// scan's server-side buffering stays bounded by the credit window instead of
// marshaling the whole result.
func (m *Metrics) OutQueuePeakBytes() int64 { return m.outQueuePeak.Load() }

var promQuantiles = []float64{0.5, 0.9, 0.99, 0.9999}

// Every series this exporter registers must appear in the metric tables of
// the listed docs; metriccheck enforces it.
//
//dytis:metric-docs ../../README.md ../../DESIGN.md

// WritePrometheus writes the server metrics in the Prometheus text
// exposition format. cmd/dytis-server appends it to the index observer's
// output on the same /metrics endpoint.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintln(w, "# HELP dytis_server_request_latency_nanoseconds Server-side request latency (decode to response enqueue) per opcode.")
	fmt.Fprintln(w, "# TYPE dytis_server_request_latency_nanoseconds summary")
	for op := proto.Opcode(1); op < proto.NumOpcodes; op++ {
		h := m.OpHist(op)
		if h.Count() == 0 {
			continue
		}
		for _, q := range promQuantiles {
			fmt.Fprintf(w, "dytis_server_request_latency_nanoseconds{op=%q,quantile=\"%g\"} %d\n",
				op.String(), q, int64(h.Quantile(q)))
		}
		fmt.Fprintf(w, "dytis_server_request_latency_nanoseconds_sum{op=%q} %d\n", op.String(), h.Sum())
		fmt.Fprintf(w, "dytis_server_request_latency_nanoseconds_count{op=%q} %d\n", op.String(), h.Count())
	}
	fmt.Fprintln(w, "# HELP dytis_server_ops_total Index operations served per opcode (batch entries counted individually).")
	fmt.Fprintln(w, "# TYPE dytis_server_ops_total counter")
	for op := proto.Opcode(1); op < proto.NumOpcodes; op++ {
		if n := m.OpCount(op); n != 0 {
			fmt.Fprintf(w, "dytis_server_ops_total{op=%q} %d\n", op.String(), n)
		}
	}
	gauges := []struct {
		name, help string
		v          int64
	}{
		{"dytis_server_connections_active", "Currently served connections.", m.ConnsActive()},
		{"dytis_server_connections_total", "Connections accepted since start.", m.ConnsTotal()},
		{"dytis_server_protocol_errors_total", "Malformed requests received.", m.ProtoErrors()},
		{"dytis_server_overloads_total", "Requests shed by admission control.", m.Overloads()},
		{"dytis_server_deadline_sheds_total", "Requests skipped because their propagated deadline expired.", m.DeadlineSheds()},
		{"dytis_server_panics_recovered_total", "Recovered per-connection panics.", m.Panics()},
		{"dytis_server_connection_timeouts_total", "Connections reaped by idle/read deadlines.", m.ConnTimeouts()},
		{"dytis_server_forced_closes_total", "Connections force-closed at drain timeout.", m.ForcedCloses()},
		{"dytis_server_frame_checksum_errors", "Frames failing CRC32C verification (connection quarantined each).", m.FrameChecksumErrors()},
		{"dytis_server_scan_streams_total", "Streaming scans started.", m.ScanStreams()},
		{"dytis_server_scan_chunks_total", "Scan chunks produced.", m.ScanChunks()},
		{"dytis_server_out_queue_peak_bytes", "Peak bytes queued on any one connection's outbound response queue.", m.OutQueuePeakBytes()},
		{"dytis_server_wrong_shard_total", "Requests redirected with StatusWrongShard.", m.WrongShards()},
		{"dytis_server_handovers_started_total", "Shard handovers this node originated.", m.HandoversStarted()},
		{"dytis_server_handover_failed_total", "Handovers suspended after exhausting peer-call retries.", m.HandoverFails()},
		{"dytis_server_handover_mirror_retries_total", "Double-write mirror sends retried against the handover target.", m.HandoverMirrorRetries()},
		{"dytis_server_handover_resumes_total", "Suspended handovers successfully resumed.", m.HandoverResumes()},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
}
