package core

// Introspection hooks for the structural checker in internal/check. The
// views expose the index's internal layout — directory runs, segment
// geometry, bucket contents, remapping functions, counters — read-only, so
// the checker can recount ground truth without reaching into unexported
// fields. The *ForTest mutators at the bottom let the checker's own tests
// corrupt an index in controlled ways; nothing else may call them.

// Introspect calls fn once per first-level EH table, in index order. In
// Concurrent mode the EH write lock is held for the duration of fn, which
// excludes directory rewrites; segment contents are only stable under the
// per-segment lock, which fn must take via SegmentView.RLock before reading
// bucket data. Must not be called from an Observer callback in Concurrent
// mode: the maintenance paths fire events while holding the same locks.
func (d *DyTIS) Introspect(fn func(EHView)) {
	for _, e := range d.ehs {
		if e.conc {
			e.mu.Lock()
		}
		fn(EHView{e: e})
		if e.conc {
			e.mu.Unlock()
		}
	}
}

// NumEHs returns the number of first-level EH tables (2^R).
func (d *DyTIS) NumEHs() int { return len(d.ehs) }

// Opts returns the index's effective (defaulted) options.
func (d *DyTIS) Opts() Options { return d.opts }

// EHView is a read-only view of one second-level EH table. It is only valid
// inside the Introspect callback that produced it.
type EHView struct{ e *eh }

// Index returns the first-level table index (the key's top R bits).
//
//dytis:nolockcheck
func (v EHView) Index() int { return v.e.idx }

// Base returns the first key of the EH's range.
//
//dytis:nolockcheck
func (v EHView) Base() uint64 { return v.e.base }

// SuffixBits returns 64 - R, the width of the EH's key range in bits.
//
//dytis:nolockcheck
func (v EHView) SuffixBits() uint8 { return v.e.suffixBits }

// GlobalDepth returns GD, the EH's directory depth.
//
//dytis:locked v.e.mu r
func (v EHView) GlobalDepth() uint8 { return v.e.gd }

// DirLen returns the directory length (expected 2^GD).
//
//dytis:locked v.e.mu r
func (v EHView) DirLen() int { return len(v.e.dir) }

// DirSegment returns the segment pointed to by directory slot i.
//
//dytis:locked v.e.mu r
func (v EHView) DirSegment(i int) SegmentView { return SegmentView{s: v.e.dir[i], conc: v.e.conc} }

// TotalCounter returns the EH's live-key counter (the bookkeeping value,
// not a recount).
//
//dytis:nolockcheck
func (v EHView) TotalCounter() int64 { return v.e.total.Load() }

// LimitMult returns the EH's current Limit_seg multiplier.
//
//dytis:nolockcheck
func (v EHView) LimitMult() int { return int(v.e.limitMult.Load()) }

// MaxBuckets returns the depth-derived segment-size cap Limit_seg for local
// depth ld under the EH's current multiplier.
//
//dytis:nolockcheck
func (v EHView) MaxBuckets(ld uint8) int { return v.e.maxBuckets(ld) }

// AtDepthGuard reports whether the directory has reached the hard depth
// guard, the degenerate regime in which segments may grow past Limit_seg.
//
//dytis:locked v.e.mu r
func (v EHView) AtDepthGuard() bool { return int(v.e.gd) >= maxDirDepth }

// Concurrent reports whether the index runs the two-level locking scheme.
//
//dytis:nolockcheck
func (v EHView) Concurrent() bool { return v.e.conc }

// SnapshotGlobalDepth returns the GD recorded in the EH's published
// directory snapshot (the one optimistic readers resolve through).
//
//dytis:nolockcheck
func (v EHView) SnapshotGlobalDepth() uint8 { return v.e.snap.Load().gd }

// SnapshotDirLen returns the published directory snapshot's length.
//
//dytis:nolockcheck
func (v EHView) SnapshotDirLen() int { return len(v.e.snap.Load().dir) }

// SnapshotSegment returns the segment in published-snapshot slot i.
//
//dytis:nolockcheck
func (v EHView) SnapshotSegment(i int) SegmentView {
	return SegmentView{s: v.e.snap.Load().dir[i], conc: v.e.conc}
}

// SegmentView is a read-only view of one segment. Two SegmentViews compare
// equal (==) iff they view the same segment object, so the checker can
// detect revisits and compare directory walks against the sibling chain.
type SegmentView struct {
	s    *segment
	conc bool
}

// Valid reports whether the view points at a segment (the zero SegmentView
// does not).
func (v SegmentView) Valid() bool { return v.s != nil }

// RLock takes the segment's read lock in Concurrent mode (no-op otherwise).
// Bucket contents, the remapping function, and the counters are only stable
// while it is held.
//
//dytis:nolockcheck
func (v SegmentView) RLock() {
	if v.conc {
		v.s.mu.RLock()
	}
}

// RUnlock releases RLock.
//
//dytis:nolockcheck
func (v SegmentView) RUnlock() {
	if v.conc {
		v.s.mu.RUnlock()
	}
}

// LocalDepth returns the segment's local depth LD.
//
//dytis:nolockcheck
func (v SegmentView) LocalDepth() uint8 { return v.s.ld }

// RangeBits returns log2 of the covered key-range width.
//
//dytis:nolockcheck
func (v SegmentView) RangeBits() uint8 { return v.s.rangeBits }

// Base returns the first key of the segment's covered range.
//
//dytis:nolockcheck
func (v SegmentView) Base() uint64 { return v.s.base }

// NumBuckets returns the segment's bucket count nb.
//
//dytis:locked v.s.mu r
func (v SegmentView) NumBuckets() int { return v.s.nb }

// BucketCap returns the per-bucket capacity B_size.
//
//dytis:nolockcheck
func (v SegmentView) BucketCap() int { return v.s.bcap }

// TotalCounter returns the segment's live-key counter (the bookkeeping
// value, not a recount).
//
//dytis:locked v.s.mu r
func (v SegmentView) TotalCounter() int { return v.s.total }

// Expanded reports whether the segment has undergone an expansion.
//
//dytis:locked v.s.mu r
func (v SegmentView) Expanded() bool { return v.s.expanded }

// SubRangeBits returns log2 of the number of remapping sub-ranges.
//
//dytis:locked v.s.mu r
func (v SegmentView) SubRangeBits() uint8 { return v.s.pbits }

// SubRangeBuckets returns the live bucket-share array cnt of the remapping
// function. The caller must not mutate it.
//
//dytis:locked v.s.mu r
func (v SegmentView) SubRangeBuckets() []uint32 { return v.s.cnt }

// StartOffsets returns the live prefix-sum array start of the remapping
// function (len(cnt)+1 entries). The caller must not mutate it.
//
//dytis:locked v.s.mu r
func (v SegmentView) StartOffsets() []uint32 { return v.s.start }

// BucketLen returns the occupancy of bucket bi.
//
//dytis:locked v.s.mu r
func (v SegmentView) BucketLen(bi int) int { return int(v.s.sz[bi]) }

// BucketKeys returns the live sorted key slice of bucket bi. The caller
// must not mutate it.
//
//dytis:locked v.s.mu r
func (v SegmentView) BucketKeys(bi int) []uint64 { return v.s.bucketKeys(bi) }

// FirstKeyCache returns entry bi of the fk cache (first key per bucket,
// right-filled with ^uint64(0) across empty buckets).
//
//dytis:locked v.s.mu r
func (v SegmentView) FirstKeyCache(bi int) uint64 { return v.s.fk[bi] }

// Predict returns the bucket index the remapping function assigns to key k.
//
//dytis:locked v.s.mu r
func (v SegmentView) Predict(k uint64) int { return v.s.predict(k) }

// SeqOdd reports whether the segment's seqlock version counter is odd. Odd
// means retired (replaced by a split) or a writer mid-critical-section; on a
// quiescent index every directory-reachable segment must be even.
//
//dytis:nolockcheck
func (v SegmentView) SeqOdd() bool { return v.s.seq.Load()&1 == 1 }

// Next returns the sibling-chain successor, or ok=false at the end of the
// EH's chain.
//
//dytis:nolockcheck
func (v SegmentView) Next() (SegmentView, bool) {
	n := v.s.next.Load()
	if n == nil {
		return SegmentView{}, false
	}
	return SegmentView{s: n, conc: v.conc}, true
}

// Test-only mutators. These exist so internal/check's tests can corrupt an
// index in precisely one way and assert the checker reports precisely one
// violation. They take no locks and must only be used on quiescent indexes.

// SetKeyForTest overwrites the key at bucket bi, position pos.
//
//dytis:nolockcheck
func (v SegmentView) SetKeyForTest(bi, pos int, k uint64) { v.s.keys[bi*v.s.bcap+pos] = k }

// SetFirstKeyCacheForTest overwrites fk cache entry bi.
//
//dytis:nolockcheck
func (v SegmentView) SetFirstKeyCacheForTest(bi int, k uint64) { v.s.fk[bi] = k }

// SetTotalForTest overwrites the segment's live-key counter.
//
//dytis:nolockcheck
func (v SegmentView) SetTotalForTest(n int) { v.s.total = n }

// SetSubRangeBucketsForTest overwrites cnt[j] without updating the start
// prefix sums, breaking remapping-function coherence.
//
//dytis:nolockcheck
func (v SegmentView) SetSubRangeBucketsForTest(j int, c uint32) { v.s.cnt[j] = c }

// SetStartOffsetForTest overwrites start[j] without updating cnt, breaking
// remapping-function coherence.
//
//dytis:nolockcheck
func (v SegmentView) SetStartOffsetForTest(j int, off uint32) { v.s.start[j] = off }

// SetNextForTest overwrites the sibling pointer (pass the zero SegmentView
// to terminate the chain).
//
//dytis:nolockcheck
func (v SegmentView) SetNextForTest(n SegmentView) { v.s.next.Store(n.s) }

// SetDirForTest overwrites directory slot i.
//
//dytis:locked v.e.mu w
func (v EHView) SetDirForTest(i int, s SegmentView) { v.e.dir[i] = s.s }

// SetTotalForTest overwrites the EH's live-key counter.
//
//dytis:nolockcheck
func (v EHView) SetTotalForTest(n int64) { v.e.total.Store(n) }

// SetLimitMultForTest overwrites the EH's Limit_seg multiplier.
//
//dytis:nolockcheck
func (v EHView) SetLimitMultForTest(m int) { v.e.limitMult.Store(int32(m)) }

// SetSnapshotForTest replaces the EH's published directory snapshot with one
// built from the given segments at depth gd, desynchronizing it from the
// canonical directory.
//
//dytis:nolockcheck
func (v EHView) SetSnapshotForTest(gd uint8, segs ...SegmentView) {
	d := make([]*segment, len(segs))
	for i, sv := range segs {
		d[i] = sv.s
	}
	v.e.snap.Store(&dirSnap{dir: d, gd: gd})
}

// SetSeqForTest overwrites the segment's seqlock version counter.
//
//dytis:nolockcheck
func (v SegmentView) SetSeqForTest(n uint64) { v.s.seq.Store(n) }
