//go:build dytisfault

package server_test

// The cluster-chaos suite: self-healing handover under injected peer-link
// faults and a target restart mid-copy. Where clusterproc_test.go proves
// fail-closed (a dead shard errors, never lies), this suite proves
// fail-and-recover: a handover interrupted mid-copy suspends, resumes from
// its bulk-copy watermark (or restarts from scratch against a wiped
// target), and completes at the next epoch with zero acked-write loss.
//
// Every fault source is seeded (fixed seeds below) so a failure replays
// identically. The client↔shard links and the peer handover link run
// through fault.Proxy instances whose plans delay and fragment traffic;
// the mid-copy interruptions themselves are deterministic (proxy kill,
// target stop) so each run exercises exactly one suspend/resume cycle and
// the watermark arithmetic stays assertable.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/cluster"
	"dytis/internal/core"
	"dytis/internal/fault"
	"dytis/internal/server"
)

// clusterChaosSeeds are the committed replay seeds for the suite.
func clusterChaosSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 7, 42}
}

// chaosPage mirrors the handover engine's bulk-copy page size; the
// watermark assertions below count in pages.
const chaosPage = 4096

// chaosLinkPlan delays and fragments traffic without corrupting it: the
// framing survives, the timing does not — exactly the stress a congested
// link puts on a handover.
var chaosLinkPlan = fault.Plan{
	DelayProb: 0.25,
	DelayMin:  200 * time.Microsecond,
	DelayMax:  3 * time.Millisecond,
	SplitProb: 0.25,
}

// rerouteDialer is a cluster peer dialer with a swappable indirection: the
// handover target's advertised address can be mapped to a fault proxy, and
// remapped to a fresh one after the old link is severed.
type rerouteDialer struct {
	mu    sync.Mutex
	route map[string]string
}

func (d *rerouteDialer) set(addr, via string) {
	d.mu.Lock()
	if d.route == nil {
		d.route = make(map[string]string)
	}
	d.route[addr] = via
	d.mu.Unlock()
}

func (d *rerouteDialer) dial(addr string) (cluster.Peer, error) {
	d.mu.Lock()
	if via, ok := d.route[addr]; ok {
		addr = via
	}
	d.mu.Unlock()
	return testDialPeer(addr)
}

// newChaosProxy starts a fault.Proxy in front of upstream, closed with the
// test.
func newChaosProxy(t *testing.T, upstream string, inj *fault.Injector) *fault.Proxy {
	t.Helper()
	p, err := fault.NewProxy(upstream, inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// startShardAt is startShardDial pinned to a specific listen address — how
// the restart test brings a killed target back where its source expects it.
func startShardAt(t *testing.T, addr string, lo, hi uint64, dial func(string) (cluster.Peer, error)) *shardProc {
	t.Helper()
	idx := core.New(smallOpts())
	node, err := cluster.NewNode(cluster.NodeConfig{
		Index: idx, Lo: lo, Hi: hi, Dial: dial, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Index: idx, Cluster: node, MaxConns: 64})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &shardProc{addr: ln.Addr().String(), srv: srv, node: node, idx: idx, done: make(chan error, 1)}
	go func() { p.done <- srv.Serve(ln) }()
	t.Cleanup(p.stop)
	return p
}

// installMapOn installs blob on each proc with the owned range its shard
// entry in m declares (matching by position: procs[i] serves m.Shards[i]).
func installMapOn(t *testing.T, m *cluster.Map, procs []*shardProc) {
	t.Helper()
	blob := m.Encode()
	ctx := context.Background()
	for i, p := range procs {
		c, err := client.Dial(p.addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetShardMap(ctx, m.Shards[i].Lo, m.Shards[i].Hi, blob); err != nil {
			t.Fatalf("installing map on shard %d: %v", i, err)
		}
		c.Close()
	}
}

// ackOracle is the acked-write ledger: a writer records a write only
// after the routed client acknowledged it, so any key disagreeing at the
// end is a lost acked write.
type ackOracle struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func (o *ackOracle) put(k, v uint64) {
	o.mu.Lock()
	o.m[k] = v
	o.mu.Unlock()
}

func (o *ackOracle) del(k uint64) {
	o.mu.Lock()
	delete(o.m, k)
	o.mu.Unlock()
}

// startUpdater keeps rewriting the given existing keys with fresh values
// until stop closes, recording each acked write. Updates never grow or
// shrink the keyset, keeping the bulk-copy pair counts exact.
func startUpdater(ctx context.Context, cl *client.Cluster, o *ackOracle, keys []uint64,
	stop chan struct{}, wg *sync.WaitGroup, errCh chan error) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[v%uint64(len(keys))]
			if err := cl.Insert(ctx, k, v); err != nil {
				select {
				case errCh <- fmt.Errorf("update %#x: %w", k, err):
				default:
				}
				return
			}
			o.put(k, v)
			time.Sleep(200 * time.Microsecond)
		}
	}()
}

// verifyAckOracle checks zero acked-write loss: the full scatter-gather
// scan must equal the oracle pair-for-pair (requireClusterOracle also
// cross-checks Len and every key by point Get).
func verifyAckOracle(t *testing.T, cl *client.Cluster, o *ackOracle) {
	t.Helper()
	o.mu.Lock()
	snapshot := make(map[uint64]uint64, len(o.m))
	for k, v := range o.m {
		snapshot[k] = v
	}
	o.mu.Unlock()
	requireClusterOracle(t, cl, snapshot)
}

// TestClusterChaosHandoverPeerLink severs the handover peer link mid-copy
// (under seeded delay/fragment chaos on every link) and requires the
// rebalance to suspend, resume from its watermark — never a full recopy —
// and complete at the next epoch with zero acked-write loss.
func TestClusterChaosHandoverPeerLink(t *testing.T) {
	for _, seed := range clusterChaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			half := ^uint64(0)/2 + 1

			rd := &rerouteDialer{}
			src := startShardDial(t, 0, half-1, rd.dial)
			rest := startShard(t, half, ^uint64(0))
			tgt := startShard(t, 1, 0) // owns nothing

			// Client↔shard links go through mild chaos proxies; the shard
			// map advertises the proxy addresses so the routed client dials
			// through them.
			linkInj := fault.New(seed, chaosLinkPlan)
			srcPx := newChaosProxy(t, src.addr, linkInj)
			restPx := newChaosProxy(t, rest.addr, linkInj)
			tgtPx := newChaosProxy(t, tgt.addr, linkInj)

			// The peer handover link gets its own chaos proxy; the source's
			// dialer maps the target's advertised address onto it.
			peerInj := fault.New(seed+1000, chaosLinkPlan)
			peerPx := newChaosProxy(t, tgt.addr, peerInj)
			rd.set(tgtPx.Addr(), peerPx.Addr())

			m, err := cluster.Uniform(1, []string{srcPx.Addr(), restPx.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			installMapOn(t, m, []*shardProc{src, rest})

			cl, err := client.DialCluster([]string{srcPx.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			// Preload: enough moving pairs that the bulk copy spans many
			// pages, plus a slice on the non-moving shard.
			const movingKeys = 8*chaosPage + 500
			oracle := &ackOracle{m: make(map[uint64]uint64, movingKeys+2000)}
			var keys, vals []uint64
			for i := uint64(0); i < movingKeys; i++ {
				keys, vals = append(keys, i), append(vals, i)
				oracle.m[i] = i
			}
			for i := uint64(0); i < 2000; i++ {
				keys, vals = append(keys, half+i), append(vals, i)
				oracle.m[half+i] = i
			}
			for off := 0; off < len(keys); off += 8192 {
				end := min(off+8192, len(keys))
				if err := cl.InsertBatch(ctx, keys[off:end], vals[off:end]); err != nil {
					t.Fatal(err)
				}
			}

			// Writers update existing keys (disjoint slices per writer)
			// through the whole drill: before, during, and after the fault.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errCh := make(chan error, 4)
			var evens, odds, high []uint64
			for i := uint64(0); i < movingKeys; i++ {
				if i%2 == 0 {
					evens = append(evens, i)
				} else {
					odds = append(odds, i)
				}
			}
			for i := uint64(0); i < 2000; i++ {
				high = append(high, half+i)
			}
			startUpdater(ctx, cl, oracle, evens, stop, &wg, errCh)
			startUpdater(ctx, cl, oracle, odds, stop, &wg, errCh)
			startUpdater(ctx, cl, oracle, high, stop, &wg, errCh)

			rebalCh := make(chan error, 1)
			go func() { rebalCh <- cl.Rebalance(ctx, 0, half-1, tgtPx.Addr()) }()

			// Sever the peer link once at least two pages have landed —
			// the copy is mid-flight, and two pages of progress make a
			// later full recopy distinguishable from a watermark resume.
			adminSrc, err := client.Dial(src.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer adminSrc.Close()
			deadline := time.Now().Add(30 * time.Second)
			for {
				p, err := adminSrc.HandoverStatus(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if p.Copied >= 2*chaosPage {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("bulk copy never reached two pages (copied %d)", p.Copied)
				}
				time.Sleep(500 * time.Microsecond)
			}
			// Heal-by-replacement first, then kill: any resume attempt
			// after the cut immediately finds the fresh link.
			peerPx2 := newChaosProxy(t, tgt.addr, fault.New(seed+2000, chaosLinkPlan))
			rd.set(tgtPx.Addr(), peerPx2.Addr())
			peerPx.Close()

			select {
			case err := <-rebalCh:
				if err != nil {
					t.Fatalf("rebalance did not self-heal: %v", err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("rebalance never completed after peer-link fault")
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatalf("writer failed during the drill: %v", err)
			default:
			}

			st, err := adminSrc.HandoverStatus(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != cluster.HandoverDone {
				t.Fatalf("handover state %d after rebalance, want done", st.State)
			}
			if st.Resumes < 1 {
				t.Fatalf("handover completed with %d resumes, want the injected fault to force one", st.Resumes)
			}
			if st.Retries < 1 {
				t.Fatalf("handover completed with %d retries, want the injected fault to force some", st.Retries)
			}
			// Watermark honored: every pair is bulk-sent once, plus at most
			// one in-flight page per resume resent. A full recopy would
			// re-send at least the two pages that had landed pre-fault.
			maxCopied := uint64(movingKeys) + st.Resumes*chaosPage
			if st.Copied < movingKeys || st.Copied > maxCopied {
				t.Fatalf("bulk-copied %d pairs for %d keys with %d resumes (max %d): watermark not honored",
					st.Copied, movingKeys, st.Resumes, maxCopied)
			}
			if got := cl.Epoch(); got != 2 {
				t.Fatalf("cluster epoch %d after rebalance, want 2", got)
			}
			if peerInj.Stats().Total() == 0 {
				t.Fatal("peer-link injector fired no faults; the run was not hostile")
			}
			if linkInj.Stats().Total() == 0 {
				t.Fatal("client-link injector fired no faults; the run was not hostile")
			}

			verifyAckOracle(t, cl, oracle)
		})
	}
}

// TestClusterChaosHandoverTargetRestart stops the handover target mid-copy
// (the in-process kill -9) and restarts it empty on the same address: the
// source must suspend, journal the suspended-window writes, detect the
// fresh import session on resume, recopy from scratch, and complete at the
// next epoch with zero acked-write loss — including a delete and an insert
// issued while the handover sat suspended.
func TestClusterChaosHandoverTargetRestart(t *testing.T) {
	for _, seed := range clusterChaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			half := ^uint64(0)/2 + 1

			rd := &rerouteDialer{}
			src := startShardDial(t, 0, half-1, rd.dial)
			rest := startShard(t, half, ^uint64(0))
			tgt := startShard(t, 1, 0)
			tgtAddr := tgt.addr

			// The peer link still runs through a seeded chaos proxy; the
			// interruption here is the target dying under it.
			peerInj := fault.New(seed, chaosLinkPlan)
			peerPx := newChaosProxy(t, tgtAddr, peerInj)
			rd.set(tgtAddr, peerPx.Addr())

			m, err := cluster.Uniform(1, []string{src.addr, rest.addr})
			if err != nil {
				t.Fatal(err)
			}
			installMapOn(t, m, []*shardProc{src, rest})

			cl, err := client.DialCluster([]string{src.addr})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			const movingKeys = 8*chaosPage + 321
			oracle := &ackOracle{m: make(map[uint64]uint64, movingKeys+1500)}
			var keys, vals []uint64
			for i := uint64(0); i < movingKeys; i++ {
				keys, vals = append(keys, i), append(vals, i)
				oracle.m[i] = i
			}
			for i := uint64(0); i < 1500; i++ {
				keys, vals = append(keys, half+i), append(vals, i)
				oracle.m[half+i] = i
			}
			for off := 0; off < len(keys); off += 8192 {
				end := min(off+8192, len(keys))
				if err := cl.InsertBatch(ctx, keys[off:end], vals[off:end]); err != nil {
					t.Fatal(err)
				}
			}

			// Writers stay off the last few moving keys; those are reserved
			// for the suspended-window delete/insert below.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errCh := make(chan error, 4)
			var evens, odds, high []uint64
			for i := uint64(0); i < movingKeys-10; i++ {
				if i%2 == 0 {
					evens = append(evens, i)
				} else {
					odds = append(odds, i)
				}
			}
			for i := uint64(0); i < 1500; i++ {
				high = append(high, half+i)
			}
			startUpdater(ctx, cl, oracle, evens, stop, &wg, errCh)
			startUpdater(ctx, cl, oracle, odds, stop, &wg, errCh)
			startUpdater(ctx, cl, oracle, high, stop, &wg, errCh)

			rebalCh := make(chan error, 1)
			go func() { rebalCh <- cl.Rebalance(ctx, 0, half-1, tgtAddr) }()

			adminSrc, err := client.Dial(src.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer adminSrc.Close()
			deadline := time.Now().Add(30 * time.Second)
			for {
				p, err := adminSrc.HandoverStatus(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if p.Copied >= chaosPage {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("bulk copy never reached one page (copied %d)", p.Copied)
				}
				time.Sleep(500 * time.Microsecond)
			}
			tgt.stop() // kill -9, in-process flavor

			// The source must suspend, not fail terminally.
			for {
				p, err := adminSrc.HandoverStatus(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if p.State == cluster.HandoverFailed {
					break
				}
				if p.State == cluster.HandoverNone || p.State == cluster.HandoverDone {
					t.Fatalf("handover state %d after target death, want suspended", p.State)
				}
				if time.Now().After(deadline) {
					t.Fatal("handover never suspended after target death")
				}
				time.Sleep(500 * time.Microsecond)
			}

			// Suspended-window writes: a delete and a brand-new insert in
			// the moving range. Both are acked now and must survive the
			// from-scratch recopy against the restarted, empty target.
			delKey, newKey := uint64(movingKeys-2), uint64(movingKeys+7)
			if _, err := cl.Delete(ctx, delKey); err != nil {
				t.Fatalf("delete during suspension: %v", err)
			}
			oracle.del(delKey)
			if err := cl.Insert(ctx, newKey, 4242); err != nil {
				t.Fatalf("insert during suspension: %v", err)
			}
			oracle.put(newKey, 4242)

			// Restart the target empty, on the same address.
			tgt2 := startShardAt(t, tgtAddr, 1, 0, testDialPeer)

			select {
			case err := <-rebalCh:
				if err != nil {
					t.Fatalf("rebalance did not survive the target restart: %v", err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("rebalance never completed after target restart")
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatalf("writer failed during the drill: %v", err)
			default:
			}

			st, err := adminSrc.HandoverStatus(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != cluster.HandoverDone {
				t.Fatalf("handover state %d after rebalance, want done", st.State)
			}
			if st.Resumes < 1 {
				t.Fatalf("handover completed with %d resumes, want the restart to force one", st.Resumes)
			}
			if got := cl.Epoch(); got != 2 {
				t.Fatalf("cluster epoch %d after rebalance, want 2", got)
			}
			if peerInj.Stats().Total() == 0 {
				t.Fatal("peer-link injector fired no faults; the run was not hostile")
			}

			// The restarted target now owns the range; the suspended-window
			// writes must be visible through it, exactly.
			tc, err := client.Dial(tgt2.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer tc.Close()
			if _, found, err := tc.Get(ctx, delKey); err != nil || found {
				t.Fatalf("deleted key %#x on restarted target: found=%v err=%v", delKey, found, err)
			}
			if v, found, err := tc.Get(ctx, newKey); err != nil || !found || v != 4242 {
				t.Fatalf("inserted key %#x on restarted target = (%d, %v, %v), want 4242", newKey, v, found, err)
			}

			verifyAckOracle(t, cl, oracle)
		})
	}
}
