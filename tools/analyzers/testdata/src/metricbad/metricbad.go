// Package metricbad violates every metriccheck rule once.
package metricbad

import (
	"fmt"
	"io"
	"sync/atomic"
)

//dytis:metric-docs docs.md

//dytis:metric-docs missing.md // want `metric docs file .*missing\.md is not readable`

// Metrics carries one counter no exporter registers and one counter
// nothing increments.
type Metrics struct {
	//dytis:series dytis_bad_orphan_total
	orphan atomic.Int64 // want `series dytis_bad_orphan_total is declared but no WritePrometheus in this package registers it`
	//dytis:series dytis_bad_stuck_total
	stuck atomic.Int64 // want `series dytis_bad_stuck_total is backed by field stuck, which nothing increments`
}

func (m *Metrics) touchOrphan() {
	// orphan is mutated — its problem is the missing registration, not a
	// dead counter.
	m.orphan.Add(1)
}

// WritePrometheus registers one undeclared series and one undocumented one.
//
//dytis:series dytis_bad_undoc_total
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "dytis_bad_stuck_total %d\n", m.stuck.Load())
	fmt.Fprintf(w, "dytis_bad_undeclared_total 1\n") // want `series dytis_bad_undeclared_total is registered but not declared with //dytis:series`
	fmt.Fprintf(w, "dytis_bad_undoc_total %d\n", 0)  // want `series dytis_bad_undoc_total is not documented in .*docs\.md`
}

var _ = (*Metrics).touchOrphan
