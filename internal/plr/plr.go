// Package plr implements maximum-error-bounded Piecewise Linear
// Representation (PLR) of a monotone point series, following the greedy
// feasible-slope-cone construction of Xie et al. (VLDB 2014), the technique
// the DyTIS paper uses to quantify the "variance of skewness" of a dataset
// (the average number of linear models needed to approximate its CDF).
//
// Given points (x_i, y_i) with strictly increasing x, Fit produces line
// segments such that for every input point covered by a segment,
// |segment(x_i) - y_i| <= maxError.
package plr

import (
	"fmt"
	"math"
)

// Segment is one linear model y = Slope*(x-StartX) + StartY covering input
// points with x in [StartX, EndX].
type Segment struct {
	StartX float64
	EndX   float64
	StartY float64
	Slope  float64
	// N is the number of input points the segment covers.
	N int
}

// Eval returns the segment's prediction at x.
func (s Segment) Eval(x float64) float64 {
	return s.StartY + s.Slope*(x-s.StartX)
}

// Fitter incrementally builds an error-bounded PLR. Points must be fed in
// strictly increasing x order.
type Fitter struct {
	maxErr float64
	segs   []Segment

	// state of the open segment
	open   bool
	x0, y0 float64 // anchor (first point of the open segment)
	lo, hi float64 // feasible slope cone through the anchor
	lastX  float64
	n      int
}

// NewFitter returns a Fitter with the given maximum absolute error bound.
// maxErr must be >= 0.
func NewFitter(maxErr float64) *Fitter {
	if maxErr < 0 || math.IsNaN(maxErr) {
		panic(fmt.Sprintf("plr: invalid maxErr %v", maxErr))
	}
	return &Fitter{maxErr: maxErr}
}

// Add feeds the next point. x must be strictly greater than the previous x.
func (f *Fitter) Add(x, y float64) {
	if !f.open {
		f.startSegment(x, y)
		return
	}
	if x <= f.lastX {
		panic(fmt.Sprintf("plr: non-increasing x: %v after %v", x, f.lastX))
	}
	dx := x - f.x0
	lo := (y - f.maxErr - f.y0) / dx
	hi := (y + f.maxErr - f.y0) / dx
	// Intersect the feasible cone with the new point's constraint.
	nlo := math.Max(f.lo, lo)
	nhi := math.Min(f.hi, hi)
	if nlo > nhi {
		// Cone empty: close the current segment and start a new one here.
		f.closeSegment()
		f.startSegment(x, y)
		return
	}
	f.lo, f.hi = nlo, nhi
	f.lastX = x
	f.n++
}

func (f *Fitter) startSegment(x, y float64) {
	f.open = true
	f.x0, f.y0 = x, y
	f.lo, f.hi = math.Inf(-1), math.Inf(1)
	f.lastX = x
	f.n = 1
}

func (f *Fitter) closeSegment() {
	slope := 0.0
	switch {
	case math.IsInf(f.lo, -1) && math.IsInf(f.hi, 1):
		slope = 0 // single-point segment
	case math.IsInf(f.lo, -1):
		slope = f.hi
	case math.IsInf(f.hi, 1):
		slope = f.lo
	default:
		slope = (f.lo + f.hi) / 2
	}
	f.segs = append(f.segs, Segment{
		StartX: f.x0, EndX: f.lastX, StartY: f.y0, Slope: slope, N: f.n,
	})
	f.open = false
}

// Finish closes any open segment and returns all segments. The Fitter may be
// reused after Finish.
func (f *Fitter) Finish() []Segment {
	if f.open {
		f.closeSegment()
	}
	out := f.segs
	f.segs = nil
	return out
}

// Fit runs the full pipeline over parallel x/y slices and returns the
// segments. It panics if the slices differ in length.
func Fit(xs, ys []float64, maxErr float64) []Segment {
	if len(xs) != len(ys) {
		panic("plr: mismatched slice lengths")
	}
	f := NewFitter(maxErr)
	for i := range xs {
		f.Add(xs[i], ys[i])
	}
	return f.Finish()
}

// FitCDF fits the empirical CDF of the sorted, de-duplicated keys: point i is
// (key[i], i). maxErr is in rank units. Keys must be ascending; keys that are
// duplicates — or that collide after the float64 conversion (possible for
// keys above 2^53) — are skipped.
func FitCDF(sortedKeys []uint64, maxErr float64) []Segment {
	f := NewFitter(maxErr)
	var prev float64
	first := true
	for i, k := range sortedKeys {
		x := float64(k)
		if !first && x <= prev {
			continue
		}
		f.Add(x, float64(i))
		prev, first = x, false
	}
	return f.Finish()
}
