package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dytis/internal/kv"
)

// fakeIndex is a mutex-guarded sorted-map Index — the oracle shape the
// differential fuzzer uses, here standing in for the real core.
type fakeIndex struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func newFakeIndex() *fakeIndex { return &fakeIndex{m: make(map[uint64]uint64)} }

func (f *fakeIndex) Get(key uint64) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[key]
	return v, ok
}

func (f *fakeIndex) Insert(key, value uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[key] = value
}

func (f *fakeIndex) Delete(key uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.m[key]
	delete(f.m, key)
	return ok
}

func (f *fakeIndex) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]uint64, 0, len(f.m))
	for k := range f.m {
		if k >= start {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if max >= 0 && len(dst) >= max {
			break
		}
		dst = append(dst, kv.KV{Key: k, Value: f.m[k]})
	}
	return dst
}

func (f *fakeIndex) GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool) {
	for _, k := range keys {
		v, ok := f.Get(k)
		vals = append(vals, v)
		found = append(found, ok)
	}
	return vals, found
}

func (f *fakeIndex) InsertBatch(keys, vals []uint64) error {
	for i, k := range keys {
		f.Insert(k, vals[i])
	}
	return nil
}

func (f *fakeIndex) DeleteBatch(keys []uint64, found []bool) ([]bool, error) {
	for _, k := range keys {
		found = append(found, f.Delete(k))
	}
	return found, nil
}

func (f *fakeIndex) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

func (f *fakeIndex) snapshot() map[uint64]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[uint64]uint64, len(f.m))
	for k, v := range f.m {
		out[k] = v
	}
	return out
}

// loopPeer adapts a target *Node into a Peer — the in-process equivalent
// of the client adapter cmd/dytis-server wires up. Failure injection:
// failMirrors fails that many upcoming Mirror calls; failResumes fails
// that many upcoming ImportResume calls; failBatchesAfter >= 0 fails
// every ImportBatch once that many batches have been accepted (set it
// back to -1 to heal the link). setNode swaps the target node underneath
// the same peer — a crash-restart as seen from an open connection.
type loopPeer struct {
	n  *Node
	mu sync.Mutex

	mirrors          int
	failMirrors      int
	failResumes      int
	batches          [][]uint64 // keys of each accepted batch
	failBatchesAfter int        // -1 = never fail
}

func newLoopPeer(n *Node) *loopPeer { return &loopPeer{n: n, failBatchesAfter: -1} }

func (p *loopPeer) node() *Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p *loopPeer) ImportStart(lo, hi uint64) error { return p.node().ImportStart(lo, hi) }
func (p *loopPeer) ImportResume(lo, hi uint64) (bool, uint64, error) {
	p.mu.Lock()
	if p.failResumes > 0 {
		p.failResumes--
		p.mu.Unlock()
		return false, 0, fmt.Errorf("injected resume failure")
	}
	p.mu.Unlock()
	return p.node().ImportResume(lo, hi)
}
func (p *loopPeer) ImportBatch(keys, vals []uint64) (uint64, error) {
	p.mu.Lock()
	if p.failBatchesAfter >= 0 && len(p.batches) >= p.failBatchesAfter {
		p.mu.Unlock()
		return 0, fmt.Errorf("injected bulk-copy failure")
	}
	p.batches = append(p.batches, append([]uint64(nil), keys...))
	p.mu.Unlock()
	return p.node().ImportBatch(keys, vals)
}
func (p *loopPeer) ImportEnd(commit bool) error { return p.node().ImportEnd(commit) }
func (p *loopPeer) Mirror(del bool, key, val uint64) error {
	p.mu.Lock()
	if p.failMirrors > 0 {
		p.failMirrors--
		p.mu.Unlock()
		return fmt.Errorf("injected mirror failure")
	}
	p.mirrors++
	p.mu.Unlock()
	return p.node().MirrorApply(del, key, val)
}
func (p *loopPeer) Close() error { return nil }

func (p *loopPeer) setNode(n *Node) {
	p.mu.Lock()
	p.n = n
	p.mu.Unlock()
}

func (p *loopPeer) setFailMirrors(k int) {
	p.mu.Lock()
	p.failMirrors = k
	p.mu.Unlock()
}

func (p *loopPeer) setFailResumes(k int) {
	p.mu.Lock()
	p.failResumes = k
	p.mu.Unlock()
}

func (p *loopPeer) setFailBatchesAfter(k int) {
	p.mu.Lock()
	p.failBatchesAfter = k
	p.mu.Unlock()
}

func (p *loopPeer) batchKeys() [][]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([][]uint64, len(p.batches))
	copy(out, p.batches)
	return out
}

// testRetry keeps handover retry backoff negligible in tests.
var testRetry = RetryPolicy{Attempts: 3, BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond}

func mustNode(t *testing.T, idx Index, lo, hi uint64, dial PeerDialer) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{Index: idx, Lo: lo, Hi: hi, Dial: dial, Logf: t.Logf, Retry: testRetry})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func waitState(t *testing.T, n *Node, want uint8) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := n.HandoverStatus().State
		if st == want {
			return
		}
		if st == HandoverFailed && want != HandoverFailed {
			t.Fatalf("handover failed while waiting for %s", handoverStateName(want))
		}
		if time.Now().After(deadline) {
			t.Fatalf("handover stuck in %s waiting for %s", handoverStateName(st), handoverStateName(want))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNodeOwnershipEnforced(t *testing.T) {
	idx := newFakeIndex()
	n := mustNode(t, idx, 100, 199, nil)
	if err := n.Insert(150, 1); err != nil {
		t.Fatalf("owned insert: %v", err)
	}
	if _, _, err := n.Get(150); err != nil {
		t.Fatalf("owned get: %v", err)
	}
	if err := n.Insert(99, 1); !errors.Is(err, ErrWrongShard) {
		t.Errorf("insert below range: %v", err)
	}
	if _, _, err := n.Get(200); !errors.Is(err, ErrWrongShard) {
		t.Errorf("get above range: %v", err)
	}
	if _, err := n.Delete(0); !errors.Is(err, ErrWrongShard) {
		t.Errorf("delete outside range: %v", err)
	}
	if _, _, err := n.GetBatch([]uint64{150, 500}, nil, nil); !errors.Is(err, ErrWrongShard) {
		t.Errorf("batch with stray key: %v", err)
	}
	if err := n.InsertBatch([]uint64{150, 500}, []uint64{1, 2}); !errors.Is(err, ErrWrongShard) {
		t.Errorf("insert batch with stray key: %v", err)
	}
	if _, err := n.DeleteBatch([]uint64{500}, nil); !errors.Is(err, ErrWrongShard) {
		t.Errorf("delete batch with stray key: %v", err)
	}
	// The stray batch must not have been half-applied.
	if _, ok := idx.Get(500); ok {
		t.Error("stray key applied despite redirect")
	}
}

func TestNodeScanClipsToRange(t *testing.T) {
	idx := newFakeIndex()
	for k := uint64(0); k < 300; k += 10 {
		idx.Insert(k, k)
	}
	n := mustNode(t, idx, 100, 199, nil)
	pairs, done, err := n.Scan(0, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("full-range page not done")
	}
	if len(pairs) != 10 || pairs[0].Key != 100 || pairs[len(pairs)-1].Key != 190 {
		t.Fatalf("clipped scan got %d pairs [%v..%v]", len(pairs), pairs[0], pairs[len(pairs)-1])
	}
	// Paged: small max walks the range and reports done at the boundary.
	var all []kv.KV
	next, done := uint64(0), false
	for !done {
		var page []kv.KV
		page, done, err = n.Scan(0, next, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, page...)
		if len(page) > 0 {
			next = page[len(page)-1].Key + 1
		}
	}
	if len(all) != 10 {
		t.Fatalf("paged scan got %d pairs, want 10", len(all))
	}
	// Start beyond the range is immediately done and empty.
	if pairs, done, err = n.Scan(0, 200, 10, nil); err != nil || !done || len(pairs) != 0 {
		t.Errorf("past-range scan: pairs=%d done=%v err=%v", len(pairs), done, err)
	}
}

func TestNodeScanEpochMismatch(t *testing.T) {
	idx := newFakeIndex()
	n := mustNode(t, idx, 0, ^uint64(0), nil)
	m, _ := Uniform(3, []string{"self"})
	if err := n.SetMap(0, ^uint64(0), m.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Scan(2, 0, 10, nil); !errors.Is(err, ErrWrongShard) {
		t.Errorf("stale scan epoch: %v", err)
	}
	if _, _, err := n.Scan(3, 0, 10, nil); err != nil {
		t.Errorf("current scan epoch: %v", err)
	}
	if _, _, err := n.Scan(0, 0, 10, nil); err != nil {
		t.Errorf("epochless scan: %v", err)
	}
}

func TestSetMapEpochRules(t *testing.T) {
	n := mustNode(t, newFakeIndex(), 0, ^uint64(0), nil)
	m3, _ := Uniform(3, []string{"self"})
	if err := n.SetMap(0, ^uint64(0), m3.Encode()); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-install of the identical map.
	if err := n.SetMap(0, ^uint64(0), m3.Encode()); err != nil {
		t.Errorf("idempotent re-install: %v", err)
	}
	// Stale epoch refused.
	m2, _ := Uniform(2, []string{"self"})
	if err := n.SetMap(0, ^uint64(0), m2.Encode()); err == nil {
		t.Error("stale epoch accepted")
	}
	// Conflicting map at the same epoch refused.
	c3, _ := Uniform(3, []string{"other"})
	if err := n.SetMap(0, ^uint64(0), c3.Encode()); err == nil {
		t.Error("conflicting same-epoch map accepted")
	}
	// Self range must be a shard of the map.
	m4, _ := Uniform(4, []string{"a", "b"})
	if err := n.SetMap(0, 1234, m4.Encode()); err == nil {
		t.Error("self range not a shard accepted")
	}
	// De-owning with no handover refused.
	if err := n.SetMap(m4.Shards[0].Lo, m4.Shards[0].Hi, m4.Encode()); err == nil {
		t.Error("de-own without handover accepted")
	}
	lo, hi, epoch, _ := n.Info()
	if lo != 0 || hi != ^uint64(0) || epoch != 3 {
		t.Errorf("state mutated by refused installs: [%#x, %#x] epoch %d", lo, hi, epoch)
	}
}

// TestHandoverFullCutover drives the whole state machine in-process: bulk
// copy + mirrored writes + cutover via two SetMaps, asserting the moved
// range lands complete on the target and is scrubbed from the source.
func TestHandoverFullCutover(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx, dstIdx := newFakeIndex(), newFakeIndex()
	dst := mustNode(t, dstIdx, 1, 0, nil) // owns nothing yet
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })

	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		k := i * (1 << 53) // spread across both halves
		if err := src.Insert(k, i); err != nil {
			t.Fatal(err)
		}
	}

	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	// Writes racing the copy: into the moving range (mirrored) and the
	// keeper range (untouched path).
	if err := src.Insert(mid+7, 777); err != nil {
		t.Fatal(err)
	}
	if err := src.Insert(42, 888); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Delete(1 << 53); err != nil { // keeper half
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	// Post-copy, pre-cutover: moving-range writes still mirror.
	if err := src.Insert(mid+9, 999); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Delete(1024 * (1 << 53)); err != nil { // moving half
		t.Fatal(err)
	}

	// Cutover: source de-owns first (fail-closed gap), then target owns.
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := src.SetMap(0, mid-1, m2.Encode()); err != nil {
		t.Fatalf("source cutover: %v", err)
	}
	if err := dst.SetMap(mid, ^uint64(0), m2.Encode()); err != nil {
		t.Fatalf("target cutover: %v", err)
	}

	// The moved half must be byte-identical to what the source acked,
	// including the mid-copy mirrored writes and deletes.
	want := make(map[uint64]uint64)
	for i := uint64(0); i < 2000; i++ {
		k := i * (1 << 53)
		if k >= mid {
			want[k] = i
		}
	}
	want[mid+7], want[mid+9] = 777, 999
	delete(want, 1024*(1<<53))
	got := dstIdx.snapshot()
	if len(got) != len(want) {
		t.Fatalf("target has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("target key %#x = %d,%v want %d", k, gv, ok, v)
		}
	}
	// Source scrubbed the moved range and redirects for it (the scrub runs
	// off the SetMap response path; wait for it).
	src.scrubs.Wait()
	for k := range srcIdx.snapshot() {
		if k >= mid {
			t.Fatalf("source still holds moved key %#x", k)
		}
	}
	if _, _, err := src.Get(mid + 7); !errors.Is(err, ErrWrongShard) {
		t.Errorf("source serves moved key: %v", err)
	}
	if v, ok, err := dst.Get(mid + 7); err != nil || !ok || v != 777 {
		t.Errorf("target Get(mid+7) = %d,%v,%v", v, ok, err)
	}
	if st := src.HandoverStatus().State; st != HandoverDone {
		t.Errorf("source handover state %s, want done", handoverStateName(st))
	}
}

// TestHandoverConcurrentTraffic hammers the moving range from many
// goroutines through the whole copy window; every acked write must be on
// the target after cutover.
func TestHandoverConcurrentTraffic(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx, dstIdx := newFakeIndex(), newFakeIndex()
	dst := mustNode(t, dstIdx, 1, 0, nil)
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := src.Insert(mid+i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := mid + uint64(w*perWriter+i)*7 + 1
				if err := src.Insert(k, uint64(w)); err != nil {
					t.Errorf("concurrent insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	waitState(t, src, HandoverCopied)
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := src.SetMap(0, mid-1, m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetMap(mid, ^uint64(0), m2.Encode()); err != nil {
		t.Fatal(err)
	}
	// Every key the source ever acked in the moving range is on the target.
	got := dstIdx.snapshot()
	for i := uint64(0); i < 5000; i++ {
		if _, ok := got[mid+i*3]; !ok {
			t.Fatalf("preloaded key %#x lost", mid+i*3)
		}
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := mid + uint64(w*perWriter+i)*7 + 1
			if v, ok := got[k]; !ok || v != uint64(w) {
				t.Fatalf("acked concurrent write %#x lost (got %d,%v)", k, v, ok)
			}
		}
	}
}

// TestImportTombstones pins the resurrection hazard: a mirrored delete
// must survive a late bulk page carrying the key's old value.
func TestImportTombstones(t *testing.T) {
	idx := newFakeIndex()
	n := mustNode(t, idx, 1, 0, nil)
	if err := n.ImportStart(100, 199); err != nil {
		t.Fatal(err)
	}
	// Mirror order: insert 150=5, delete 150, then the stale bulk page.
	if err := n.MirrorApply(false, 150, 5); err != nil {
		t.Fatal(err)
	}
	if err := n.MirrorApply(true, 150, 0); err != nil {
		t.Fatal(err)
	}
	applied, err := n.ImportBatch([]uint64{150, 160}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied %d, want 1 (tombstoned key skipped)", applied)
	}
	if _, ok := idx.Get(150); ok {
		t.Fatal("tombstoned key resurrected by bulk page")
	}
	// A fresh mirror insert clears the tombstone.
	if err := n.MirrorApply(false, 150, 9); err != nil {
		t.Fatal(err)
	}
	if err := n.ImportEnd(true); err != nil {
		t.Fatal(err)
	}
	if v, ok := idx.Get(150); !ok || v != 9 {
		t.Fatalf("post-commit key 150 = %d,%v want 9", v, ok)
	}
	if v, ok := idx.Get(160); !ok || v != 2 {
		t.Fatalf("post-commit key 160 = %d,%v want 2", v, ok)
	}
}

func TestImportAbortScrubs(t *testing.T) {
	idx := newFakeIndex()
	n := mustNode(t, idx, 1, 0, nil)
	if err := n.ImportStart(0, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ImportBatch([]uint64{1, 2, 3}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := n.ImportEnd(false); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Fatalf("aborted import left %d keys", idx.Len())
	}
	// ImportEnd with no session is a no-op (cutover may have adopted it).
	if err := n.ImportEnd(true); err != nil {
		t.Fatal(err)
	}
}

func TestImportValidation(t *testing.T) {
	n := mustNode(t, newFakeIndex(), 0, 999, nil)
	if err := n.ImportStart(500, 1500); err == nil {
		t.Error("import overlapping owned range accepted")
	}
	if err := n.ImportStart(9, 5); err == nil {
		t.Error("inverted import range accepted")
	}
	if _, err := n.ImportBatch([]uint64{1}, []uint64{1}); err == nil {
		t.Error("import batch with no session accepted")
	}
	if err := n.ImportStart(2000, 2999); err != nil {
		t.Fatal(err)
	}
	if err := n.ImportStart(3000, 3999); err == nil {
		t.Error("second concurrent import session accepted")
	}
	if _, err := n.ImportBatch([]uint64{1}, []uint64{1}); err == nil {
		t.Error("import key outside session range accepted")
	}
	if err := n.MirrorApply(false, 5000, 1); err == nil {
		t.Error("mirror with no session and unowned key accepted")
	}
}

// TestMirrorFailureFailsClosed: a persistent mirror error mid-handover
// acks the local write but suspends the handover after exhausting its
// retries, and the suspended handover refuses both cutover and a new
// StartHandover — the un-mirrored write can never be silently lost.
func TestMirrorFailureFailsClosed(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx := newFakeIndex()
	dst := mustNode(t, newFakeIndex(), 1, 0, nil)
	peer := newLoopPeer(dst)
	peer.setFailMirrors(1 << 30) // persistent: outlasts every retry
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	// The write is acked despite the mirror failure...
	if err := src.Insert(mid+1, 7); err != nil {
		t.Fatalf("write not acked on mirror failure: %v", err)
	}
	if v, ok, err := src.Get(mid + 1); err != nil || !ok || v != 7 {
		t.Fatalf("acked write not readable: %d,%v,%v", v, ok, err)
	}
	// ...the handover is suspended, with the retries it burned visible...
	info := src.HandoverStatus()
	if info.State != HandoverFailed {
		t.Fatalf("handover state %s, want failed", handoverStateName(info.State))
	}
	if info.Retries < 2 {
		t.Errorf("retries = %d, want >= 2 (attempts exhausted)", info.Retries)
	}
	if info.Cause == nil {
		t.Error("suspended handover reports no cause")
	}
	// ...cutover is refused, so the map cannot orphan the write...
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := src.SetMap(0, mid-1, m2.Encode()); err == nil {
		t.Fatal("cutover accepted after failed handover")
	}
	// ...and a fresh handover is refused with the typed suspension error.
	if err := src.StartHandover(mid, ^uint64(0), "dst"); !errors.Is(err, ErrHandoverSuspended) {
		t.Fatalf("StartHandover over a suspended handover: %v, want ErrHandoverSuspended", err)
	}
}

// TestMirrorRetryRidesOutBlip: a transient mirror failure is absorbed by
// the retry budget — the handover completes without ever suspending.
func TestMirrorRetryRidesOutBlip(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx, dstIdx := newFakeIndex(), newFakeIndex()
	dst := mustNode(t, dstIdx, 1, 0, nil)
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	peer.setFailMirrors(2) // fails attempts 1 and 2; attempt 3 succeeds
	if err := src.Insert(mid+1, 7); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	info := src.HandoverStatus()
	if info.Retries < 2 {
		t.Errorf("retries = %d, want >= 2", info.Retries)
	}
	if info.Mirrored != 1 {
		t.Errorf("mirrored = %d, want 1", info.Mirrored)
	}
	if v, ok := dstIdx.Get(mid + 1); !ok || v != 7 {
		t.Errorf("retried mirror did not land: %d,%v", v, ok)
	}
}

// TestHandoverWatermarkResume: a bulk-copy failure suspends the handover
// at a page boundary; resume reattaches to the same import session and
// continues from the watermark — already-copied pages are not re-sent.
func TestHandoverWatermarkResume(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx, dstIdx := newFakeIndex(), newFakeIndex()
	dst := mustNode(t, dstIdx, 1, 0, nil)
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	// Three full pages plus change in the moving range.
	const total = 3*copyPage + 100
	for i := uint64(0); i < total; i++ {
		if err := src.Insert(mid+i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	peer.setFailBatchesAfter(2) // accept two pages, then fail persistently
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverFailed)
	info := src.HandoverStatus()
	if info.Copied != 2*copyPage {
		t.Fatalf("copied = %d at suspension, want %d", info.Copied, 2*copyPage)
	}
	wantMark := mid + (2*copyPage-1)*3 + 1 // one past the last accepted key
	if info.Watermark != wantMark {
		t.Fatalf("watermark = %#x, want %#x", info.Watermark, wantMark)
	}
	// A write during suspension is acked and journaled for the resume.
	if err := src.Insert(mid+1, 42); err != nil {
		t.Fatalf("suspended-window write not acked: %v", err)
	}
	preResume := len(peer.batchKeys())
	peer.setFailBatchesAfter(-1) // heal the link
	if err := src.HandoverResume(); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	info = src.HandoverStatus()
	if info.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", info.Resumes)
	}
	if info.Copied != total {
		t.Errorf("copied = %d after resume, want %d", info.Copied, total)
	}
	// The resumed copy started at the watermark: no page re-sent a key
	// below it.
	for _, page := range peer.batchKeys()[preResume:] {
		if len(page) > 0 && page[0] < wantMark {
			t.Fatalf("resumed copy re-sent key %#x below watermark %#x", page[0], wantMark)
		}
	}
	// Cutover: everything — including the suspended-window write — lands.
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := src.SetMap(0, mid-1, m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetMap(mid, ^uint64(0), m2.Encode()); err != nil {
		t.Fatal(err)
	}
	got := dstIdx.snapshot()
	if len(got) != total+1 { // the preload plus the suspended-window write
		t.Fatalf("target has %d keys, want %d", len(got), total+1)
	}
	if v := got[mid+1]; v != 42 {
		t.Fatalf("suspended-window write = %d on target, want 42", v)
	}
}

// TestHandoverResumeAfterTargetRestart: the target loses the import
// session (restart); resume detects the fresh session and recopies from
// the start — with suspended-window deletes still honored.
func TestHandoverResumeAfterTargetRestart(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx := newFakeIndex()
	dst := mustNode(t, newFakeIndex(), 1, 0, nil)
	peer := newLoopPeer(dst)
	var pmu sync.Mutex
	cur := peer
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) {
		pmu.Lock()
		defer pmu.Unlock()
		return cur, nil
	})
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	const total = copyPage + 100
	for i := uint64(0); i < total; i++ {
		if err := src.Insert(mid+i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	peer.setFailBatchesAfter(1) // one page lands, then the target "dies"
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverFailed)
	// Suspended-window churn: a delete and an overwrite, both acked.
	if _, err := src.Delete(mid); err != nil {
		t.Fatal(err)
	}
	if err := src.Insert(mid+3, 999); err != nil {
		t.Fatal(err)
	}
	// "Restart" the target: fresh node, fresh index, no session.
	dst2Idx := newFakeIndex()
	dst2 := mustNode(t, dst2Idx, 1, 0, nil)
	pmu.Lock()
	cur = newLoopPeer(dst2)
	pmu.Unlock()
	if err := src.HandoverResume(); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	info := src.HandoverStatus()
	if info.Copied != total-1 { // one key deleted during suspension
		t.Errorf("copied = %d after fresh resume, want %d", info.Copied, total-1)
	}
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := src.SetMap(0, mid-1, m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := dst2.SetMap(mid, ^uint64(0), m2.Encode()); err != nil {
		t.Fatal(err)
	}
	got := dst2Idx.snapshot()
	if _, ok := got[mid]; ok {
		t.Error("suspended-window delete resurrected on restarted target")
	}
	if v := got[mid+3]; v != 999 {
		t.Errorf("suspended-window overwrite = %d on target, want 999", v)
	}
	if len(got) != total-1 {
		t.Errorf("target has %d keys, want %d", len(got), total-1)
	}
}

// TestCutoverProbeTargetRestart: the target crashes after the copy
// finishes but before the admin pushes the cutover map. The de-own probe
// sees a fresh import session, refuses to surrender the range (de-owning
// would scrub the only live copy), and suspends for a full recopy; a
// resume then completes the handover against the restarted target.
func TestCutoverProbeTargetRestart(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx := newFakeIndex()
	dst := mustNode(t, newFakeIndex(), 1, 0, nil)
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	const total = copyPage + 75
	for i := uint64(0); i < total; i++ {
		if err := src.Insert(mid+i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	// Crash-restart the target behind the source's open connection:
	// fresh node, fresh index, no import session.
	dst2Idx := newFakeIndex()
	dst2 := mustNode(t, dst2Idx, 1, 0, nil)
	peer.setNode(dst2)
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	err := src.SetMap(0, mid-1, m2.Encode())
	if err == nil {
		t.Fatal("SetMap de-owned the moving range against a restarted, empty target")
	}
	if !strings.Contains(err.Error(), "restarted before cutover") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	info := src.HandoverStatus()
	if info.State != HandoverFailed {
		t.Fatalf("state = %s after refused cutover, want %s",
			handoverStateName(info.State), handoverStateName(HandoverFailed))
	}
	if info.Watermark != mid || info.Copied != 0 {
		t.Errorf("progress not reset for recopy: watermark %#x copied %d", info.Watermark, info.Copied)
	}
	// The refused install must leave the source owning and serving the range.
	if _, ok, err := src.Get(mid); err != nil || !ok {
		t.Fatalf("source lost the moving range after refused cutover: ok=%v err=%v", ok, err)
	}
	// Suspended-window churn lands in the journal (and is acked locally).
	if _, err := src.Delete(mid + 6); err != nil {
		t.Fatal(err)
	}
	if err := src.Insert(mid+3, 4242); err != nil {
		t.Fatal(err)
	}
	if err := src.HandoverResume(); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	info = src.HandoverStatus()
	if info.Copied != total-1 { // one key deleted during suspension
		t.Errorf("copied = %d after recopy, want %d", info.Copied, total-1)
	}
	if err := src.SetMap(0, mid-1, m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := dst2.SetMap(mid, ^uint64(0), m2.Encode()); err != nil {
		t.Fatal(err)
	}
	got := dst2Idx.snapshot()
	if len(got) != total-1 {
		t.Errorf("restarted target has %d keys, want %d", len(got), total-1)
	}
	if v := got[mid+3]; v != 4242 {
		t.Errorf("suspended-window overwrite = %d on target, want 4242", v)
	}
	if _, ok := got[mid+6]; ok {
		t.Error("suspended-window delete resurrected on restarted target")
	}
}

// TestCutoverProbeUnreachable: the target stops answering between copy
// completion and the map push. The probe failure suspends the handover
// with all progress intact — no de-own, no scrub, no recopy — and a
// resume reattaches to the live session and cuts straight over.
func TestCutoverProbeUnreachable(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx, dstIdx := newFakeIndex(), newFakeIndex()
	dst := mustNode(t, dstIdx, 1, 0, nil)
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	const total = copyPage + 50
	for i := uint64(0); i < total; i++ {
		if err := src.Insert(mid+i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	preBatches := len(peer.batchKeys())
	peer.setFailResumes(1)
	m2 := &Map{Epoch: 2, Shards: []Shard{{0, mid - 1, "src"}, {mid, ^uint64(0), "dst"}}}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	err := src.SetMap(0, mid-1, m2.Encode())
	if err == nil {
		t.Fatal("SetMap de-owned the moving range with the target unreachable")
	}
	if !strings.Contains(err.Error(), "unreachable at cutover") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	info := src.HandoverStatus()
	if info.State != HandoverFailed {
		t.Fatalf("state = %s after refused cutover, want %s",
			handoverStateName(info.State), handoverStateName(HandoverFailed))
	}
	if info.Copied != total {
		t.Errorf("copy progress lost on unreachable probe: copied %d, want %d", info.Copied, total)
	}
	// The session survived on the target, so resume must not recopy.
	if err := src.HandoverResume(); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
	if got := len(peer.batchKeys()); got != preBatches {
		t.Errorf("resume recopied an intact target: %d batches, was %d", got, preBatches)
	}
	if err := src.SetMap(0, mid-1, m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetMap(mid, ^uint64(0), m2.Encode()); err != nil {
		t.Fatal(err)
	}
	if got := dstIdx.snapshot(); len(got) != total {
		t.Errorf("target has %d keys after cutover, want %d", len(got), total)
	}
}

// TestHandoverAbortClears: aborting a suspended handover frees the slot
// (and the target's session) so a fresh StartHandover can begin.
func TestHandoverAbortClears(t *testing.T) {
	const mid = uint64(1) << 63
	srcIdx, dstIdx := newFakeIndex(), newFakeIndex()
	dst := mustNode(t, dstIdx, 1, 0, nil)
	peer := newLoopPeer(dst)
	src := mustNode(t, srcIdx, 0, ^uint64(0), func(addr string) (Peer, error) { return peer, nil })
	m1, _ := Uniform(1, []string{"src"})
	if err := src.SetMap(0, ^uint64(0), m1.Encode()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := src.Insert(mid+i, i); err != nil {
			t.Fatal(err)
		}
	}
	peer.setFailBatchesAfter(0) // first page already fails
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverFailed)
	if err := src.HandoverAbort(); err != nil {
		t.Fatal(err)
	}
	if st := src.HandoverStatus().State; st != HandoverNone {
		t.Fatalf("post-abort state %s, want none", handoverStateName(st))
	}
	if dstIdx.Len() != 0 {
		t.Fatalf("abort left %d keys on the target", dstIdx.Len())
	}
	// The slot is free again.
	peer.setFailBatchesAfter(-1)
	if err := src.StartHandover(mid, ^uint64(0), "dst"); err != nil {
		t.Fatal(err)
	}
	waitState(t, src, HandoverCopied)
}

func TestStartHandoverValidation(t *testing.T) {
	peerless := mustNode(t, newFakeIndex(), 0, 999, nil)
	if err := peerless.StartHandover(0, 10, "x"); err == nil {
		t.Error("handover without dialer accepted")
	}
	dst := mustNode(t, newFakeIndex(), 1, 0, nil)
	peer := &loopPeer{n: dst}
	n := mustNode(t, newFakeIndex(), 0, 999, func(string) (Peer, error) { return peer, nil })
	if err := n.StartHandover(500, 1500, "dst"); err == nil {
		t.Error("handover of unowned range accepted")
	}
	if err := n.StartHandover(9, 5, "dst"); err == nil {
		t.Error("inverted handover range accepted")
	}
	if err := n.StartHandover(500, 999, "dst"); err != nil {
		t.Fatal(err)
	}
	if err := n.StartHandover(0, 10, "dst"); err == nil {
		t.Error("second concurrent handover accepted")
	}
}
