package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinMaxSuccessor(t *testing.T) {
	d := New(smallOpts())
	if _, ok := d.Min(); ok {
		t.Fatal("Min of empty index")
	}
	if _, ok := d.Max(); ok {
		t.Fatal("Max of empty index")
	}
	keys := []uint64{5, 1 << 30, 7, 1 << 62, 42, 3}
	for _, k := range keys {
		d.Insert(k, k*2)
	}
	if p, ok := d.Min(); !ok || p.Key != 3 || p.Value != 6 {
		t.Fatalf("Min = %+v, %v", p, ok)
	}
	if p, ok := d.Max(); !ok || p.Key != 1<<62 {
		t.Fatalf("Max = %+v, %v", p, ok)
	}
	if p, ok := d.Successor(8); !ok || p.Key != 42 {
		t.Fatalf("Successor(8) = %+v", p)
	}
	if p, ok := d.Successor(42); !ok || p.Key != 42 {
		t.Fatalf("Successor(42) = %+v (must be inclusive)", p)
	}
	if _, ok := d.Successor(1<<62 + 1); ok {
		t.Fatal("Successor past max")
	}
}

func TestMaxAfterDeletingMax(t *testing.T) {
	d := New(smallOpts())
	for i := uint64(1); i <= 1000; i++ {
		d.Insert(i, i)
	}
	for i := uint64(1000); i > 990; i-- {
		d.Delete(i)
		want := i - 1
		if p, ok := d.Max(); !ok || p.Key != want {
			t.Fatalf("Max after deleting %d = %+v want %d", i, p, want)
		}
	}
}

func TestCursorFullTraversal(t *testing.T) {
	d := New(smallOpts())
	const n = 20000
	rng := rand.New(rand.NewSource(9))
	want := make([]uint64, 0, n)
	seen := map[uint64]bool{}
	for len(want) < n {
		k := rng.Uint64()
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
			d.Insert(k, k^1)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	c := d.NewCursor(0)
	for i, w := range want {
		p, ok := c.Next()
		if !ok || p.Key != w || p.Value != w^1 {
			t.Fatalf("cursor[%d] = %+v, %v; want key %d", i, p, ok, w)
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("cursor did not terminate")
	}
	if _, ok := c.Next(); ok {
		t.Fatal("cursor resurrected after end")
	}
}

func TestCursorSeek(t *testing.T) {
	d := New(smallOpts())
	for i := uint64(0); i < 1000; i++ {
		d.Insert(i*10, i)
	}
	c := d.NewCursor(0)
	c.Next()
	c.Seek(995)
	p, ok := c.Next()
	if !ok || p.Key != 1000 {
		t.Fatalf("after Seek(995): %+v", p)
	}
	c.Seek(0)
	if p, _ := c.Next(); p.Key != 0 {
		t.Fatalf("after Seek(0): %+v", p)
	}
}

func TestCursorAtMaxKey(t *testing.T) {
	d := New(smallOpts())
	d.Insert(^uint64(0), 1)
	d.Insert(^uint64(0)-1, 2)
	c := d.NewCursor(^uint64(0) - 1)
	if p, ok := c.Next(); !ok || p.Key != ^uint64(0)-1 {
		t.Fatalf("first: %+v", p)
	}
	if p, ok := c.Next(); !ok || p.Key != ^uint64(0) {
		t.Fatalf("second: %+v", p)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("cursor overflowed past MaxUint64")
	}
}

func TestLoadSortedMatchesInserted(t *testing.T) {
	const n = 50000
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 0, n)
	seen := map[uint64]bool{}
	for len(keys) < n {
		k := rng.Uint64()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = keys[i] + 1
	}
	d := New(smallOpts())
	d.LoadSorted(keys, vals)
	if d.Len() != n {
		t.Fatalf("Len=%d want %d", d.Len(), n)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 37 {
		v, ok := d.Get(keys[i])
		if !ok || v != vals[i] {
			t.Fatalf("Get(%#x) = %d,%v", keys[i], v, ok)
		}
	}
	got := d.Scan(0, n+1, nil)
	if len(got) != n {
		t.Fatalf("scan %d want %d", len(got), n)
	}
	for i := range got {
		if got[i].Key != keys[i] {
			t.Fatalf("scan[%d] = %d want %d", i, got[i].Key, keys[i])
		}
	}
	// The structure stays fully operational after a bulk load.
	d.Insert(keys[0]+1, 777) // likely new key between existing ones
	for i := uint64(0); i < 5000; i++ {
		d.Insert(i<<40|7, i)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSortedRejectsUnsorted(t *testing.T) {
	d := New(smallOpts())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.LoadSorted([]uint64{2, 1}, []uint64{0, 0})
}

func TestLoadSortedEmpty(t *testing.T) {
	d := New(smallOpts())
	d.LoadSorted(nil, nil)
	if d.Len() != 0 {
		t.Fatal("nonzero len")
	}
	d.Insert(1, 1)
	if _, ok := d.Get(1); !ok {
		t.Fatal("unusable after empty load")
	}
}

// Property: cursor traversal equals sorted reference for random key sets.
func TestQuickCursorMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(smallOpts())
		ref := map[uint64]uint64{}
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(5000)) << uint(rng.Intn(40))
			ref[k] = k
			d.Insert(k, k)
		}
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		c := d.NewCursor(0)
		for _, w := range keys {
			p, ok := c.Next()
			if !ok || p.Key != w {
				return false
			}
		}
		_, ok := c.Next()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
