// Command dytis-server serves a DyTIS index over TCP with the pipelined
// binary protocol of internal/proto. It is the network face of the
// reproduction: a concurrent index (optimistic lock-free reads by default)
// behind per-connection read/write goroutines, batched opcodes, connection
// limits with accept-side backpressure, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	dytis-server -addr :7070 -metrics :8080 -mode optimistic
//	dytis-server -addr :7070 -wal-dir /var/lib/dytis -fsync always
//
// With -wal-dir the server is durable: every mutation is write-ahead
// logged before it is acknowledged, checkpoints compact the log in the
// background, and startup recovers the index from the directory —
// surviving kill -9 (-fsync always guarantees no acked write is lost;
// interval bounds loss to -fsync-interval; off leaves flushing to the OS).
//
// With -metrics, an HTTP endpoint serves the index observer's histograms
// and structure-event counters together with the server-side request
// latency metrics on one /metrics page (Prometheus text format; expvar
// JSON at /debug/vars), plus a /healthz readiness probe that answers 200
// while the server accepts work and 503 once it is draining.
//
//	-mode optimistic   concurrent index, lock-free Get / snapshot Scan (default)
//	-mode locked       concurrent index, fully locked §3.4 read path
//
// Overload hardening is flag-controlled: -idle-timeout, -read-timeout, and
// -write-timeout bound slow or stalled peers (the read timeout is the
// slow-loris defense), and -max-inflight with -retry-after turns on
// admission control — excess requests are shed with a typed overload answer
// carrying the retry-after hint instead of queueing without bound.
//
// On SIGINT/SIGTERM the server stops accepting, finishes every request it
// has read, flushes the responses, shuts the metrics endpoint down, closes
// the index, and exits 0; -shutdown-timeout bounds the wait, and any
// connection still open when it expires is closed forcibly and logged.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dytis"
	"dytis/client"
	"dytis/internal/cluster"
	"dytis/internal/obs"
	"dytis/internal/server"
)

var (
	addrFlag    = flag.String("addr", ":7070", "TCP listen address for the binary protocol")
	metricsFlag = flag.String("metrics", "", "HTTP listen address for /metrics and /debug/vars (empty = disabled)")
	modeFlag    = flag.String("mode", "optimistic", "concurrency mode: optimistic|locked")
	maxConns    = flag.Int("max-conns", 256, "simultaneous connection cap (excess clients wait in the accept backlog)")
	pipeline    = flag.Int("pipeline", 128, "per-connection response queue depth")

	shutdownFlag = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget before connections are closed forcibly")
	drainFlag    = flag.Duration("drain-timeout", 10*time.Second, "deprecated alias for -shutdown-timeout")

	idleTimeout  = flag.Duration("idle-timeout", 0, "max time a connection may sit between requests (0 = unlimited)")
	readTimeout  = flag.Duration("read-timeout", 0, "max time to receive one request frame after its header arrives — slow-loris defense (0 = unlimited)")
	writeTimeout = flag.Duration("write-timeout", 0, "max time for one write of response bytes to a connection (0 = unlimited)")
	maxInflight  = flag.Int("max-inflight", 0, "cap on requests executing at once; excess is shed with an overload answer (0 = no admission control)")
	retryAfter   = flag.Duration("retry-after", 100*time.Millisecond, "retry hint sent with overload answers, and the slot wait for requests without a deadline")

	disableV2 = flag.Bool("disable-v2", false, "reject the protocol v2 handshake, emulating a pre-v2 server (escape hatch; v2 clients fall back to plain v1)")

	shardFlag = flag.String("shard", "", `owned key range, making this a cluster shard server: "lo:hi" (inclusive, 0x-prefixed hex or decimal) or "i/n" (i-th of n uniform shards, 0-based); "none" owns nothing (a fresh node awaiting handover). Empty = single-server mode, whole key space, no cluster opcodes`)

	walDir     = flag.String("wal-dir", "", "directory for the write-ahead log and checkpoints; the index recovers from it at startup (empty = in-memory only, no durability)")
	fsyncFlag  = flag.String("fsync", "interval", "WAL fsync policy with -wal-dir: off|interval|always (always = every acked write is on stable storage before the response)")
	fsyncEvery = flag.Duration("fsync-interval", 50*time.Millisecond, "background WAL sync cadence under -fsync interval")
	ckptEvery  = flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint cadence with -wal-dir, in addition to the 64 MiB size trigger (0 = size-triggered only)")
)

// shutdownBudget resolves -shutdown-timeout against its deprecated alias:
// an explicitly set -drain-timeout still works, -shutdown-timeout wins when
// both are given.
func shutdownBudget() time.Duration {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["shutdown-timeout"] && set["drain-timeout"] {
		return *drainFlag
	}
	return *shutdownFlag
}

func main() {
	flag.Parse()

	ob := dytis.NewObserver()
	idxOpts := []dytis.Option{dytis.WithConcurrent(), dytis.WithObserver(ob)}
	switch *modeFlag {
	case "optimistic":
	case "locked":
		idxOpts = append(idxOpts, dytis.WithLockedReads())
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want optimistic or locked)\n", *modeFlag)
		os.Exit(2)
	}
	// With -wal-dir the served index is a durable store: mutations are
	// write-ahead logged (batch failures answer StatusErr; a single-op log
	// failure fail-stops its connection), and startup recovers whatever the
	// directory holds. Without it, the index lives and dies in memory.
	var idx server.Index
	var wm *dytis.WALMetrics
	var closeIndex func() error
	if *walDir != "" {
		policy, err := dytis.ParseFsyncPolicy(*fsyncFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wm = &dytis.WALMetrics{}
		store, err := dytis.OpenDurable(*walDir, dytis.DurableConfig{
			Fsync:              policy,
			FsyncInterval:      *fsyncEvery,
			CheckpointInterval: *ckptEvery,
			Metrics:            wm,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}, idxOpts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		info := store.Recovery()
		fmt.Printf("wal: recovered %d keys from %s (checkpoint %d: %d keys; %d records replayed; torn tail: %v) in %s\n",
			store.Len(), *walDir, info.CheckpointSeq, info.CheckpointKeys, info.Records, info.TornTail, info.Elapsed)
		idx = store.Serving()
		closeIndex = store.Close
	} else {
		mem := dytis.New(idxOpts...)
		idx = mem
		closeIndex = mem.Close
	}

	// With -shard the server is one member of a cluster: the node wraps
	// every data op in ownership checks (StatusWrongShard redirects carry
	// the current map) and the cluster opcode family unlocks behind the
	// negotiated FeatCluster.
	sm := &server.Metrics{}
	var node *cluster.Node
	if *shardFlag != "" {
		lo, hi, err := parseShard(*shardFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		node, err = cluster.NewNode(cluster.NodeConfig{
			Index:  idx,
			Lo:     lo,
			Hi:     hi,
			Dial:   dialPeer,
			Events: sm.HandoverEvents(),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "cluster: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if lo > hi {
			fmt.Println("shard: owning nothing (awaiting handover)")
		} else {
			fmt.Printf("shard: owning [%#x, %#x]\n", lo, hi)
		}
	}

	srv := server.New(server.Config{
		Index:        idx,
		Cluster:      node,
		MaxConns:     *maxConns,
		Pipeline:     *pipeline,
		Metrics:      sm,
		IdleTimeout:  *idleTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxInflight:  *maxInflight,
		RetryAfter:   *retryAfter,
		DisableV2:    *disableV2,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var metricsSrv *http.Server
	if *metricsFlag != "" {
		metricsSrv = &http.Server{Addr: *metricsFlag, Handler: metricsHandler(ob, sm, wm, srv, node)}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsFlag)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("dytis-server (%s reads) listening on %s\n", *modeFlag, ln.Addr())

	select {
	case err := <-serveErr:
		// Listener failed outright; nothing to drain.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("signal received; draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownBudget())
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v (%d connection(s) force-closed)\n", err, sm.ForcedCloses())
	}
	<-serveErr // Serve has returned ErrServerClosed
	if metricsSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		metricsSrv.Shutdown(shCtx)
		cancel()
	}
	if node != nil {
		node.Close() // abandons any in-flight handover and closes its peer
	}
	// Closing last: with a WAL this seals the log (flush + fsync), so a
	// clean shutdown replays nothing beyond the last checkpoint on restart.
	if err := closeIndex(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
	fmt.Println("dytis-server: clean shutdown")
}

// metricsHandler serves the index observer's endpoints with the server-side
// (and, with -wal-dir, the durability-side) metrics appended to /metrics,
// so index-op latency, structure events, server request latency, and WAL
// activity read as one page, plus the /healthz readiness probe backed by
// srv.Ready.
func metricsHandler(ob *obs.Observer, sm *server.Metrics, wm *dytis.WALMetrics, srv *server.Server, node *cluster.Node) http.Handler {
	obH := ob.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ob.WritePrometheus(w)
		sm.WritePrometheus(w)
		if wm != nil {
			wm.WritePrometheus(w)
		}
	})
	mux.Handle("/healthz", server.HealthHandler(srv, node))
	mux.Handle("/debug/vars", obH)
	mux.Handle("/vars", obH)
	mux.Handle("/", obH)
	return mux
}

// parseShard parses the -shard flag: "lo:hi" (inclusive bounds, any base
// strconv accepts), "i/n" (the i-th of n uniform shards, matching
// cluster.Uniform's split), or "none" (own nothing; awaiting a handover).
func parseShard(s string) (lo, hi uint64, err error) {
	if s == "none" {
		return 1, 0, nil // lo > hi: owns nothing
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		idx, err1 := strconv.ParseUint(s[:i], 10, 64)
		n, err2 := strconv.ParseUint(s[i+1:], 10, 64)
		if err1 != nil || err2 != nil || n == 0 || idx >= n {
			return 0, 0, fmt.Errorf(`-shard %q: want "i/n" with 0 <= i < n`, s)
		}
		width := ^uint64(0)/n + 1
		lo = idx * width
		hi = lo + width - 1
		if idx == n-1 {
			hi = ^uint64(0)
		}
		return lo, hi, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf(`-shard %q: want "lo:hi", "i/n", or "none"`, s)
	}
	lo, err1 := strconv.ParseUint(s[:i], 0, 64)
	hi, err2 := strconv.ParseUint(s[i+1:], 0, 64)
	if err1 != nil || err2 != nil || lo > hi {
		return 0, 0, fmt.Errorf(`-shard %q: want "lo:hi" with lo <= hi (0x-prefixed hex or decimal)`, s)
	}
	return lo, hi, nil
}

// peerOpTimeout bounds each server-to-server handover call. Mirror calls
// sit on the write path of the moving range, so this is also the worst-case
// stall a mirrored write can see before the handover is declared failed.
const peerOpTimeout = 30 * time.Second

// clientPeer adapts client.Client to cluster.Peer: the node's handover
// engine is context-free (its calls happen under the node's handover lock),
// so each call runs under its own deadline.
type clientPeer struct{ c *client.Client }

func (p clientPeer) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), peerOpTimeout)
}

func (p clientPeer) ImportStart(lo, hi uint64) error {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportStart(ctx, lo, hi)
}

func (p clientPeer) ImportBatch(keys, vals []uint64) (uint64, error) {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportBatch(ctx, keys, vals)
}

func (p clientPeer) ImportEnd(commit bool) error {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportEnd(ctx, commit)
}

func (p clientPeer) ImportResume(lo, hi uint64) (bool, uint64, error) {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.ImportResume(ctx, lo, hi)
}

func (p clientPeer) Mirror(del bool, key, val uint64) error {
	ctx, cancel := p.ctx()
	defer cancel()
	return p.c.Mirror(ctx, del, key, val)
}

func (p clientPeer) Close() error { return p.c.Close() }

// dialPeer opens the server-to-server connection a handover streams over.
func dialPeer(addr string) (cluster.Peer, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerOpTimeout)
	err = c.RequireCluster(ctx)
	cancel()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("handover target %s: %w", addr, err)
	}
	return clientPeer{c: c}, nil
}
