package server_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/core"
	"dytis/internal/fault"
	"dytis/internal/server"
)

// This file is the chaos/robustness end-to-end suite: oracle-checked
// workloads driven through a fault-injecting proxy under fixed seeds, plus
// directed regression tests for the individual defenses (slow-loris reaping,
// admission-control shedding, deadline sheds, panic recovery, forced drain).
//
// The contract under test is fail-closed: a fault may surface to the caller
// as an error — a timeout, a lost connection, an overload — but never as a
// wrong answer. The oracle tracks, per key, the set of states the server
// could legitimately be in (an acknowledged op collapses the set, a failed
// op widens it, because the server may or may not have applied it — and may
// still apply it later, when the request was buffered on a connection the
// client has already given up on), and every acknowledged read must be
// consistent with that set.

// startIndex is start() for a stub-wrapped index: the server serves idx,
// while soundness at teardown is checked against the underlying core index.
func startIndex(t *testing.T, idx server.Index, d *core.DyTIS, cfg server.Config) (string, *server.Server) {
	t.Helper()
	cfg.Index = idx
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		requireSound(t, d)
	})
	return ln.Addr().String(), srv
}

// --- uncertainty-tracking oracle ---------------------------------------------

// pstate is one possible state of a key: present with a value, or absent.
type pstate struct {
	present bool
	val     uint64
}

// keyState is the oracle's knowledge of one key: the set of states the
// server could be in. One entry and untainted means certainty; once an op
// on the key fails the key is tainted — the failed op may have applied, and
// because its request may still sit buffered on an abandoned connection it
// can even apply later, so from then on the set only grows and acknowledged
// reads are checked for membership, never used to collapse it.
type keyState struct {
	states  []pstate
	tainted bool
}

func (ks *keyState) add(s pstate) {
	for _, e := range ks.states {
		if e == s {
			return
		}
	}
	ks.states = append(ks.states, s)
}

func (ks *keyState) has(s pstate) bool {
	for _, e := range ks.states {
		if e == s {
			return true
		}
	}
	return false
}

func (ks *keyState) hasPresent(p bool) bool {
	for _, e := range ks.states {
		if e.present == p {
			return true
		}
	}
	return false
}

func (ks *keyState) String() string {
	var b strings.Builder
	for i, e := range ks.states {
		if i > 0 {
			b.WriteByte('|')
		}
		if e.present {
			fmt.Fprintf(&b, "=%d", e.val)
		} else {
			b.WriteString("absent")
		}
	}
	if ks.tainted {
		b.WriteString(" (tainted)")
	}
	return b.String()
}

// chaosOracle holds one worker's keys. Keys are owned single-writer (key %
// nclients == id), so the worker's own sequential view is authoritative.
type chaosOracle struct {
	keys map[uint64]*keyState
}

func newChaosOracle() *chaosOracle { return &chaosOracle{keys: make(map[uint64]*keyState)} }

func (o *chaosOracle) state(k uint64) *keyState {
	ks := o.keys[k]
	if ks == nil {
		ks = &keyState{states: []pstate{{present: false}}}
		o.keys[k] = ks
	}
	return ks
}

// mutate books an Insert or Delete outcome. ok means the server acknowledged
// the op; outcome is the state the op drives the key to.
func (o *chaosOracle) mutate(k uint64, outcome pstate, ok bool) {
	ks := o.state(k)
	if !ok {
		ks.tainted = true
		ks.add(outcome)
		return
	}
	if ks.tainted {
		// A zombie of an earlier failed op may still overwrite this later;
		// the acknowledged outcome joins the set instead of replacing it.
		ks.add(outcome)
		return
	}
	ks.states = ks.states[:0]
	ks.states = append(ks.states, outcome)
}

// observe checks an acknowledged read of k against the oracle and, when the
// key is untainted, uses it to confirm the singleton. Returns "" when
// consistent, a violation description otherwise.
func (o *chaosOracle) observe(k uint64, got pstate) string {
	ks := o.state(k)
	if !ks.has(got) {
		return fmt.Sprintf("key %#x: observed %v, oracle allows %v", k, got, ks)
	}
	return ""
}

// --- chaos workload ----------------------------------------------------------

// chaosPlan is the fault mix for the oracle-checked run: faults that
// delay, fragment, truncate, or kill the byte stream but never corrupt
// bytes in flight. FlipProb and DupProb stay zero here on purpose — not
// because corruption is undetectable (protocol v2's per-frame CRC32C
// catches it) but because the HELLO exchange travels before the checksum
// is negotiated, so a flip there surfaces as a failed dial rather than an
// oracle-checkable op outcome. Corrupting faults get their own run,
// TestChaosCorruption, which pins the client to v2 and asserts detection.
func chaosPlan() fault.Plan {
	return fault.Plan{
		DelayProb: 0.05, DelayMin: 100 * time.Microsecond, DelayMax: 2 * time.Millisecond,
		SplitProb: 0.15,
		DropProb:  0.01,
		CloseProb: 0.005,
	}
}

func chaosSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3, 5, 8}
}

func TestChaosOracle(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosOracle(t, seed)
		})
	}
}

func runChaosOracle(t *testing.T, seed int64) {
	const (
		nclients = 4
		keySpace = 64 // owned keys per client
	)
	ops := 600
	if testing.Short() {
		ops = 150
	}

	idx := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{
		Metrics:      m,
		IdleTimeout:  30 * time.Second,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 5 * time.Second,
		MaxInflight:  64,
	})

	inj := fault.New(seed, chaosPlan())
	px, err := fault.NewProxy(addr, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	var (
		wg        sync.WaitGroup
		oracleMu  sync.Mutex
		oracles   = make([]*chaosOracle, nclients)
		completed atomic.Int64
		failed    atomic.Int64
	)
	violation := func(id int, format string, args ...any) {
		t.Errorf("client %d: %s", id, fmt.Sprintf(format, args...))
	}
	for id := 0; id < nclients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			o := chaosWorker(t, px.Addr(), id, nclients, keySpace, ops, seed, &completed, &failed, violation)
			oracleMu.Lock()
			oracles[id] = o
			oracleMu.Unlock()
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: close the proxy (kills every chaotic connection), then wait
	// for the server to finish the requests it had already buffered — only
	// then is the zombie window closed and the oracle's final sets stable.
	px.Close()
	quiesce := time.Now().Add(5 * time.Second)
	for m.ConnsActive() > 0 && time.Now().Before(quiesce) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := m.ConnsActive(); n > 0 {
		t.Fatalf("%d connection(s) still active after proxy close", n)
	}

	t.Logf("chaos seed=%d: %d ops acknowledged, %d failed; faults: %d delays, %d splits, %d dups, %d drops, %d closes",
		seed, completed.Load(), failed.Load(),
		inj.Stats().Delays(), inj.Stats().Splits(), inj.Stats().Dups(), inj.Stats().Drops(), inj.Stats().Closes())
	if completed.Load() == 0 {
		t.Fatal("no operation completed under chaos")
	}
	if inj.Stats().Total() == 0 {
		t.Fatal("no fault fired; the chaos run tested nothing")
	}

	verifyChaosReadback(t, addr, nclients, oracles)
}

// chaosWorker drives one client's share of the workload through the proxy
// and returns its oracle. Violations are reported through report; op errors
// are expected and only widen the oracle.
func chaosWorker(t *testing.T, addr string, id, nclients, keySpace, ops int, seed int64,
	completed, failed *atomic.Int64, report func(id int, format string, args ...any)) *chaosOracle {
	rng := rand.New(rand.NewSource(seed*7919 + int64(id)))
	o := newChaosOracle()
	c, err := client.Dial(addr,
		client.WithPoolSize(2),
		client.WithPipeline(16),
		client.WithReconnect(8, time.Millisecond, 20*time.Millisecond),
		client.WithCircuitBreaker(0, 0), // the breaker has its own tests; here it would only throttle coverage
		client.WithDialTimeout(2*time.Second),
	)
	if err != nil {
		report(id, "dial through proxy: %v", err)
		return o
	}
	defer c.Close()

	// Keys 1..keySpace*nclients, striped so each worker is the single
	// writer of its own stripe: worker id owns k iff (k-1)%nclients == id.
	ownedKey := func() uint64 { return uint64(rng.Intn(keySpace)*nclients + id + 1) }
	owned := func(k uint64) bool { return k >= 1 && (k-1)%uint64(nclients) == uint64(id) }
	for i := 0; i < ops; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		switch p := rng.Intn(100); {
		case p < 45: // insert
			k, v := ownedKey(), rng.Uint64()
			err := c.Insert(ctx, k, v)
			o.mutate(k, pstate{present: true, val: v}, err == nil)
			book(completed, failed, err)
		case p < 70: // get
			k := ownedKey()
			v, ok, err := c.Get(ctx, k)
			if err == nil {
				if msg := o.observe(k, obs(ok, v)); msg != "" {
					report(id, "get: %s", msg)
				}
			}
			book(completed, failed, err)
		case p < 85: // delete
			k := ownedKey()
			found, err := c.Delete(ctx, k)
			if err == nil && !o.state(k).hasPresent(found) {
				report(id, "delete: key %#x reported found=%v, oracle allows %v", k, found, o.state(k))
			}
			o.mutate(k, pstate{present: false}, err == nil)
			book(completed, failed, err)
		case p < 95: // scan: ordered page, owned pairs consistent
			start := uint64(rng.Intn(keySpace * nclients))
			keys, vals, err := c.Scan(ctx, start, 32)
			if err == nil {
				for j, k := range keys {
					if k < start {
						report(id, "scan: key %#x below start %#x", k, start)
					}
					if j > 0 && keys[j-1] >= k {
						report(id, "scan: page out of order at %d: %#x then %#x", j, keys[j-1], k)
					}
					if owned(k) {
						if msg := o.observe(k, pstate{present: true, val: vals[j]}); msg != "" {
							report(id, "scan: %s", msg)
						}
					}
				}
			}
			book(completed, failed, err)
		default: // batched get over a handful of owned keys
			keys := make([]uint64, 1+rng.Intn(8))
			for j := range keys {
				keys[j] = ownedKey()
			}
			vals, found, err := c.GetBatch(ctx, keys)
			if err == nil {
				// Duplicate keys in the batch are fine: each answer is
				// checked independently against the same oracle set.
				for j, k := range keys {
					if msg := o.observe(k, obs(found[j], vals[j])); msg != "" {
						report(id, "getbatch: %s", msg)
					}
				}
			}
			book(completed, failed, err)
		}
		cancel()
	}
	return o
}

func book(completed, failed *atomic.Int64, err error) {
	if err == nil {
		completed.Add(1)
	} else {
		failed.Add(1)
	}
}

// obs normalizes a read result: the value only carries meaning when the key
// was found, and the oracle's absent state is canonically {false, 0}.
func obs(ok bool, v uint64) pstate {
	if !ok {
		return pstate{present: false}
	}
	return pstate{present: true, val: v}
}

// verifyChaosReadback reads the whole index back over a clean, fault-free
// connection and holds every key to its oracle: untainted keys must match
// exactly, tainted keys must land on one of their possible states.
func verifyChaosReadback(t *testing.T, addr string, nclients int, oracles []*chaosOracle) {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Merge the per-client oracles; ownership made their key sets disjoint.
	merged := make(map[uint64]*keyState)
	for _, o := range oracles {
		for k, ks := range o.keys {
			merged[k] = ks
		}
	}

	// Point reads: every key the workload ever touched.
	for k, ks := range merged {
		v, ok, err := c.Get(ctx, k)
		if err != nil {
			t.Fatalf("clean readback Get(%#x): %v", k, err)
		}
		got := obs(ok, v)
		if !ks.has(got) {
			t.Errorf("readback: key %#x is %v, oracle allows %v", k, got, ks)
		}
		if !ks.tainted && len(ks.states) == 1 && got != ks.states[0] {
			t.Errorf("readback: untainted key %#x is %v, want exactly %v", k, got, ks.states[0])
		}
	}
	if t.Failed() {
		return
	}

	// Full paginated scan: completeness (every key that must be present
	// appears, with a permitted value) and soundness (nothing the oracle
	// rules out appears).
	seen := make(map[uint64]uint64)
	var start uint64
	for {
		keys, vals, err := c.Scan(ctx, start, 512)
		if err != nil {
			t.Fatalf("clean readback Scan(%#x): %v", start, err)
		}
		if len(keys) == 0 {
			break
		}
		for i, k := range keys {
			if i > 0 && keys[i-1] >= k {
				t.Fatalf("readback scan out of order: %#x then %#x", keys[i-1], k)
			}
			seen[k] = vals[i]
		}
		if keys[len(keys)-1] == ^uint64(0) {
			break
		}
		start = keys[len(keys)-1] + 1
	}
	sortedKeys := make([]uint64, 0, len(merged))
	for k := range merged {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Slice(sortedKeys, func(i, j int) bool { return sortedKeys[i] < sortedKeys[j] })
	for _, k := range sortedKeys {
		ks := merged[k]
		v, inScan := seen[k]
		if inScan {
			if !ks.has(pstate{present: true, val: v}) {
				t.Errorf("readback scan: key %#x=%d, oracle allows %v", k, v, ks)
			}
		} else if !ks.hasPresent(false) {
			t.Errorf("readback scan: key %#x missing, oracle requires presence (%v)", k, ks)
		}
	}
}

// TestChaosCorruption runs a corrupting plan — bit flips and duplicated
// spans — against a client pinned to protocol v2 (WithRequireV2: no silent
// downgrade to the checksum-free v1 wire). With per-frame CRC32C on both
// directions the contract is stronger than structural survival: corruption
// must be *detected* — the server's checksum-error counter moves or the
// client reports ErrFrameCorrupt — the corrupt connection is quarantined,
// and no acknowledged op ever returns a wrong answer. Each key is written
// with exactly one value, so the clean readback can hold every present key
// to it: under a 2^-32 CRC collision this run would forge a value, and the
// fixed seed keeps that out of the test's luck budget.
func TestChaosCorruption(t *testing.T) {
	idx := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{
		Metrics:     m,
		IdleTimeout: 30 * time.Second,
		ReadTimeout: 2 * time.Second,
	})
	inj := fault.New(42, fault.Plan{FlipProb: 0.15, DupProb: 0.05, SplitProb: 0.2})
	px, err := fault.NewProxy(addr, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	// Dial's own handshake runs through the flip proxy too and may be the
	// corruption's first victim (RequireV2 fails closed rather than
	// downgrading); retry until a clean one lands.
	var c *client.Client
	for attempt := 0; ; attempt++ {
		c, err = client.Dial(px.Addr(),
			client.WithRequireV2(),
			client.WithReconnect(8, time.Millisecond, 10*time.Millisecond),
			client.WithCircuitBreaker(0, 0),
			client.WithDialTimeout(time.Second))
		if err == nil {
			break
		}
		if attempt == 20 {
			t.Fatalf("handshake through the flip proxy never succeeded: %v", err)
		}
	}
	defer c.Close()
	ops := 120
	if testing.Short() {
		ops = 40
	}
	val := func(i int) uint64 { return uint64(i)*0x9E3779B97F4A7C15 + 1 }
	acked := make(map[uint64]uint64)
	var corrupt int
	for i := 0; i < ops; i++ {
		// The op timeout is deliberately tight: until a corrupt frame is
		// detected and the conn quarantined, every op on it burns its budget.
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		k := uint64(i)
		err := c.Insert(ctx, k, val(i))
		if err == nil {
			acked[k] = val(i)
		} else if errors.Is(err, client.ErrFrameCorrupt) {
			corrupt++
		}
		cancel()
	}
	t.Logf("bit-flip run: %d/%d inserts acknowledged; %d flips fired, %d server-side checksum errors, %d client-side corrupt frames",
		len(acked), ops, inj.Stats().Flips(), m.FrameChecksumErrors(), corrupt)
	if inj.Stats().Flips() == 0 {
		t.Fatal("no flip fired; the run tested nothing")
	}
	if m.FrameChecksumErrors() == 0 && corrupt == 0 {
		t.Fatal("corruption was injected but never detected on either side")
	}

	// Clean readback, bypassing the proxy: an acknowledged insert must be
	// present with its value (the sealed ack is trustworthy), and any other
	// key of ours that landed (a zombie of an unacknowledged insert) must
	// still carry the one value ever written for it — anything else means a
	// corrupt frame was executed as a real request.
	cv, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cv.Close()
	ctx := context.Background()
	for i := 0; i < ops; i++ {
		k := uint64(i)
		v, ok, err := cv.Get(ctx, k)
		if err != nil {
			t.Fatalf("clean readback Get(%d): %v", k, err)
		}
		if want, wasAcked := acked[k]; wasAcked {
			if !ok || v != want {
				t.Errorf("acked key %d reads back %d,%v, want %d,true", k, v, ok, want)
			}
		} else if ok && v != val(i) {
			t.Errorf("key %d present with forged value %d (only %d was ever written)", k, v, val(i))
		}
	}
}

// --- directed regression tests ----------------------------------------------

// TestSlowLorisReaped stalls a connection mid-frame (header sent, body
// trickling nothing) and requires the per-frame read deadline to reap it
// while a healthy connection keeps being served.
func TestSlowLorisReaped(t *testing.T) {
	idx := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{
		ReadTimeout: 150 * time.Millisecond,
		Metrics:     m,
		Logf:        t.Logf,
	})

	// The attacker: a frame header promising a 100-byte body, 10 bytes of
	// it, then silence.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}

	// The bystander: keeps pinging throughout; its service must not degrade
	// into errors while the stalled peer is reaped.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnTimeouts() == 0 && time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Ping(ctx)
		cancel()
		if err != nil {
			t.Fatalf("healthy connection failed while slow-loris conn pending: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := m.ConnTimeouts(); n != 1 {
		t.Fatalf("ConnTimeouts = %d, want 1 (stalled conn reaped)", n)
	}
	// The stalled socket observes the close.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(hdr[:]); err == nil {
		t.Fatal("stalled connection still open after read deadline")
	}
}

// gateIndex blocks Get(magic) until the gate closes — the probe for
// admission control (holds an inflight slot) and drain behavior.
type gateIndex struct {
	server.Index
	gate    chan struct{}
	magic   uint64
	entered atomic.Int64
}

func (g *gateIndex) Get(k uint64) (uint64, bool) {
	if k == g.magic {
		g.entered.Add(1)
		<-g.gate
	}
	return g.Index.Get(k)
}

func (g *gateIndex) waitEntered(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.entered.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("gate not entered %d times", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShed fills the only inflight slot and requires the next
// request to be shed with a typed overload error carrying the retry-after
// hint — and, when the request carries a deadline budget shorter than the
// retry-after window, to be shed as a deadline exceed instead.
func TestOverloadShed(t *testing.T) {
	const magic = ^uint64(0)
	d := core.New(smallOpts())
	gi := &gateIndex{Index: d, gate: make(chan struct{}), magic: magic}
	m := &server.Metrics{}
	addr, _ := startIndex(t, gi, d, server.Config{
		MaxInflight: 1,
		RetryAfter:  50 * time.Millisecond,
		Metrics:     m,
	})

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr, client.WithCircuitBreaker(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	blocked := make(chan error, 1)
	go func() {
		_, _, err := c1.Get(context.Background(), magic)
		blocked <- err
	}()
	gi.waitEntered(t, 1)

	// No deadline budget: shed after the retry-after window, typed, with
	// the hint parsed back.
	_, _, err = c2.Get(context.Background(), 1)
	if !errors.Is(err, client.ErrOverload) {
		t.Fatalf("Get under overload = %v, want ErrOverload", err)
	}
	var oe *client.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overload error %v does not unwrap to *OverloadError", err)
	}
	if oe.RetryAfter != 50*time.Millisecond {
		t.Fatalf("RetryAfter hint = %v, want 50ms", oe.RetryAfter)
	}
	if m.Overloads() == 0 {
		t.Fatal("Overloads metric did not move")
	}

	// A budget shorter than the retry-after window: the server sheds it as
	// a deadline exceed (nobody is waiting), booked on its own counter. The
	// client-side error races between the server's answer and the local ctx
	// expiry; either is an error, and that is all fail-closed requires.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	_, _, err = c2.Get(ctx, 1)
	cancel()
	if err == nil {
		t.Fatal("Get with expired budget under overload succeeded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.DeadlineSheds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.DeadlineSheds() == 0 {
		t.Fatal("DeadlineSheds metric did not move")
	}

	close(gi.gate)
	if err := <-blocked; err != nil {
		t.Fatalf("gated Get failed after release: %v", err)
	}
}

// panicIndex panics on Get(magic) — the server must convert that into an
// ERR response plus one closed connection, nothing more.
type panicIndex struct {
	server.Index
	magic uint64
}

func (p *panicIndex) Get(k uint64) (uint64, bool) {
	if k == p.magic {
		panic("panicIndex: boom")
	}
	return p.Index.Get(k)
}

func TestPanicRecovery(t *testing.T) {
	const magic = ^uint64(0)
	d := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := startIndex(t, &panicIndex{Index: d, magic: magic}, d, server.Config{
		Metrics: m,
		Logf:    t.Logf,
	})

	bystander, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	c, err := client.Dial(addr, client.WithReconnect(4, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	_, _, err = c.Get(ctx, magic)
	if err == nil {
		t.Fatal("Get of panicking key succeeded")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("Get of panicking key = %v, want the ERR response, not a bare connection error", err)
	}
	if m.Panics() != 1 {
		t.Fatalf("Panics = %d, want 1", m.Panics())
	}

	// The same client recovers over a fresh connection...
	if err := c.Insert(ctx, 7, 11); err != nil {
		t.Fatalf("Insert after panic: %v", err)
	}
	if v, ok, err := c.Get(ctx, 7); err != nil || !ok || v != 11 {
		t.Fatalf("Get after panic = %d,%v,%v want 11,true,nil", v, ok, err)
	}
	// ...and a connection that predates the panic was never disturbed.
	if err := bystander.Ping(ctx); err != nil {
		t.Fatalf("bystander connection broken by another conn's panic: %v", err)
	}
	if m.Panics() != 1 {
		t.Fatalf("Panics = %d after recovery traffic, want still 1", m.Panics())
	}
}

// TestShutdownForceClose wedges a request inside the index and requires a
// bounded Shutdown to force-close the straggler, log it, and count it.
func TestShutdownForceClose(t *testing.T) {
	const magic = ^uint64(0)
	d := core.New(smallOpts())
	gi := &gateIndex{Index: d, gate: make(chan struct{}), magic: magic}
	m := &server.Metrics{}

	var logMu sync.Mutex
	var logs []string
	cfg := server.Config{
		Index:   gi,
		Metrics: m,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Get(context.Background(), magic) // wedges in the gate, holding its conn
	gi.waitEntered(t, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// The drain deadline passes, the wedged conn is force-closed...
	deadline := time.Now().Add(5 * time.Second)
	for m.ForcedCloses() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.ForcedCloses() == 0 {
		t.Fatal("ForcedCloses metric did not move")
	}
	// ...but Shutdown still waits for the handler itself, which is wedged
	// in the index until the gate opens.
	close(gi.gate)
	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-done; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "force-closing connection") {
		t.Fatalf("force-close not logged; logs:\n%s", joined)
	}
	requireSound(t, d)
}

var _ server.Index = (*gateIndex)(nil)
var _ server.Index = (*panicIndex)(nil)
