// Package fault is a deterministic, seedable fault-injection framework for
// the serving stack. It wraps net.Conn so a test (or a chaos run of
// cmd/dytis-server) can make the network misbehave on purpose — delaying
// bytes, splitting writes at byte granularity, flipping bits, duplicating
// payload bytes, and dropping connections mid-stream — while every fault
// drawn from one seed replays identically on the next run.
//
// The pieces compose bottom-up:
//
//   - Plan says which faults may fire and how often (probabilities are
//     per I/O operation, not per byte, so rates stay workload-independent).
//   - Injector owns the seed and derives an independent, deterministic
//     random stream per wrapped connection; it also counts every fault it
//     fires (Stats) so a test can assert the run actually was hostile.
//   - Conn is the chaos net.Conn: faults fire on the write path (where a
//     proxy forwards bytes) and delays also fire on reads.
//   - Proxy is an in-process TCP proxy: client → proxy → server, with both
//     directions forwarded through injected conns. This is how the chaos
//     e2e suite attacks the real client and the real server without either
//     needing test hooks in its hot path.
//
// The serving stack's own injection points (server.Config.WrapConn,
// client.WithDialer, the dytisfault-gated frame hook in internal/proto)
// accept the wrappers built here and cost nothing when unused: nil-checked
// function fields on the slow accept/dial paths, and a build tag for the
// per-frame hook.
//
// Fail-closed is the contract under test: a faulted byte stream may surface
// as an error anywhere, but never as a wrong answer — the length-prefixed
// framing plus decoder validation turn flips, splits, and truncations into
// connection-fatal protocol errors, and the chaos suite's oracle asserts
// exactly that.
package fault

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Plan configures which faults an Injector may fire. All probabilities are
// in [0, 1] and are evaluated independently per I/O operation on each
// wrapped connection. The zero Plan injects nothing (wrapped conns forward
// bytes unchanged).
type Plan struct {
	// DelayProb delays an I/O operation (read or write) by a uniform
	// duration in [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration

	// SplitProb splits one Write into several smaller writes at random byte
	// offsets (2–4 pieces), each flushed to the socket separately — the
	// wire-level shape of a peer whose frames straddle packet boundaries.
	SplitProb float64

	// FlipProb flips one random bit of the payload before it is written.
	// The caller's buffer is never modified; the corruption happens in a
	// private copy.
	FlipProb float64

	// DupProb duplicates a random span of the payload (writes it twice),
	// desynchronizing the stream the way a buggy retransmit layer would.
	DupProb float64

	// DropProb abandons a Write mid-payload: a random prefix reaches the
	// peer, the rest vanishes, and the connection closes — the classic
	// half-written frame of a crashing peer.
	DropProb float64

	// CloseProb closes the connection before the Write (and closes it
	// again — a duplicate close must be harmless to the stack under test).
	CloseProb float64
}

// active reports whether the plan can fire any fault at all.
func (p Plan) active() bool {
	return p.DelayProb > 0 || p.SplitProb > 0 || p.FlipProb > 0 ||
		p.DupProb > 0 || p.DropProb > 0 || p.CloseProb > 0
}

// Stats counts the faults an Injector has fired, for assertions and chaos
// run logs. All fields are read with the corresponding getters; the counts
// are monotone.
type Stats struct {
	delays atomic.Int64
	splits atomic.Int64
	flips  atomic.Int64
	dups   atomic.Int64
	drops  atomic.Int64
	closes atomic.Int64
}

// Delays returns how many I/O operations were delayed.
func (s *Stats) Delays() int64 { return s.delays.Load() }

// Splits returns how many writes were split.
func (s *Stats) Splits() int64 { return s.splits.Load() }

// Flips returns how many writes had a bit flipped.
func (s *Stats) Flips() int64 { return s.flips.Load() }

// Dups returns how many writes had a span duplicated.
func (s *Stats) Dups() int64 { return s.dups.Load() }

// Drops returns how many writes were abandoned mid-payload.
func (s *Stats) Drops() int64 { return s.drops.Load() }

// Closes returns how many connections were fault-closed.
func (s *Stats) Closes() int64 { return s.closes.Load() }

// Total returns the total number of faults fired.
func (s *Stats) Total() int64 {
	return s.Delays() + s.Splits() + s.Flips() + s.Dups() + s.Drops() + s.Closes()
}

// Injector derives deterministic fault schedules for wrapped connections.
// Safe for concurrent use: each wrapped conn gets its own random stream,
// seeded from the injector seed and the conn's serial number, so the fault
// schedule of connection k is a pure function of (seed, k) regardless of
// how other connections interleave.
type Injector struct {
	plan  Plan
	seed  int64
	stats Stats

	serial atomic.Int64
}

// New returns an Injector firing plan's faults from the given seed.
func New(seed int64, plan Plan) *Injector {
	return &Injector{plan: plan, seed: seed}
}

// Stats exposes the injector's fault counters.
func (in *Injector) Stats() *Stats { return &in.stats }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Wrap returns nc with the injector's faults applied to its I/O. With an
// inactive plan it returns nc unchanged (zero cost when disabled).
func (in *Injector) Wrap(nc net.Conn) net.Conn {
	if in == nil || !in.plan.active() {
		return nc
	}
	k := in.serial.Add(1)
	// splitmix-style seed derivation keeps per-conn streams independent:
	// adjacent serials must not produce correlated rand sequences.
	z := uint64(in.seed) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &Conn{
		Conn: nc,
		inj:  in,
		rng:  rand.New(rand.NewSource(int64(z ^ (z >> 31)))),
	}
}

// Conn is a net.Conn whose I/O misbehaves according to its Injector's Plan.
// Concurrent Reads, Writes, and Closes are safe (the stack under test uses
// one writer and one reader per conn, plus asynchronous Close); the fault
// schedule is deterministic per conn given serialized writes.
type Conn struct {
	net.Conn
	inj *Injector

	mu  sync.Mutex // serializes rng draws and fault decisions
	rng *rand.Rand // guarded-by: mu

	closed atomic.Bool
}

// decision is one write's drawn fault set, decided under mu in one batch so
// the rng stream stays deterministic even if delays reorder the actual I/O.
type decision struct {
	delay  time.Duration
	kill   bool   // close the conn (twice) instead of writing
	drop   int    // bytes to forward before abandoning; -1 = no drop
	flip   int    // bit index to flip; -1 = none
	dup    [2]int // [start, end) span to duplicate; start == -1 = none
	splits []int  // ascending cut offsets; nil = no split
}

// decide draws every fault for one write of n bytes.
func (c *Conn) decide(n int) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.inj.plan
	d := decision{drop: -1, flip: -1, dup: [2]int{-1, -1}}
	if p.DelayProb > 0 && c.rng.Float64() < p.DelayProb {
		d.delay = p.DelayMin
		if span := p.DelayMax - p.DelayMin; span > 0 {
			d.delay += time.Duration(c.rng.Int63n(int64(span)))
		}
	}
	if p.CloseProb > 0 && c.rng.Float64() < p.CloseProb {
		d.kill = true
		return d // nothing after a close matters
	}
	if n == 0 {
		return d
	}
	if p.DropProb > 0 && c.rng.Float64() < p.DropProb {
		d.drop = c.rng.Intn(n) // 0..n-1 bytes make it out
	}
	if p.FlipProb > 0 && c.rng.Float64() < p.FlipProb {
		d.flip = c.rng.Intn(n * 8)
	}
	if p.DupProb > 0 && c.rng.Float64() < p.DupProb {
		start := c.rng.Intn(n)
		end := start + 1 + c.rng.Intn(n-start)
		d.dup = [2]int{start, end}
	}
	if p.SplitProb > 0 && n > 1 && c.rng.Float64() < p.SplitProb {
		pieces := 2 + c.rng.Intn(3)
		cuts := make(map[int]bool, pieces-1)
		for i := 0; i < pieces-1; i++ {
			cuts[1+c.rng.Intn(n-1)] = true
		}
		for cut := range cuts {
			d.splits = append(d.splits, cut)
		}
		sortInts(d.splits)
	}
	return d
}

// Write forwards p through the fault plan. It always reports len(p)
// consumed on success-so-far semantics matching net.Conn (an error means
// the stream is dead anyway), and never modifies p.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.decide(len(p))
	st := c.inj.Stats()
	if d.delay > 0 {
		st.delays.Add(1)
		time.Sleep(d.delay)
	}
	if d.kill {
		st.closes.Add(1)
		c.Close()
		c.Conn.Close() // duplicate close on purpose: must be harmless
		return 0, net.ErrClosed
	}
	buf := p
	if d.flip >= 0 || d.dup[0] >= 0 {
		buf = append([]byte(nil), p...)
		if d.flip >= 0 {
			st.flips.Add(1)
			buf[d.flip/8] ^= 1 << (d.flip % 8)
		}
		if s, e := d.dup[0], d.dup[1]; s >= 0 {
			st.dups.Add(1)
			dup := append([]byte(nil), buf[s:e]...)
			buf = append(buf[:e:e], append(dup, buf[e:]...)...)
		}
	}
	if d.drop >= 0 {
		st.drops.Add(1)
		if d.drop > len(buf) {
			d.drop = len(buf)
		}
		if _, err := c.Conn.Write(buf[:d.drop]); err != nil {
			return 0, err
		}
		c.Close()
		return 0, net.ErrClosed
	}
	if d.splits != nil {
		st.splits.Add(1)
		prev := 0
		for _, cut := range append(d.splits, len(buf)) {
			if cut <= prev || cut > len(buf) {
				continue
			}
			if _, err := c.Conn.Write(buf[prev:cut]); err != nil {
				return 0, err
			}
			prev = cut
		}
		return len(p), nil
	}
	if _, err := c.Conn.Write(buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read forwards to the wrapped conn, applying only delays (payload faults
// fire on the write side, where the bytes are chosen).
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	var delay time.Duration
	pl := c.inj.plan
	if pl.DelayProb > 0 && c.rng.Float64() < pl.DelayProb {
		delay = pl.DelayMin
		if span := pl.DelayMax - pl.DelayMin; span > 0 {
			delay += time.Duration(c.rng.Int63n(int64(span)))
		}
	}
	c.mu.Unlock()
	if delay > 0 {
		c.inj.Stats().delays.Add(1)
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

// Close closes the wrapped conn; duplicate closes are counted but harmless.
func (c *Conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return c.Conn.Close()
}

// sortInts is a tiny insertion sort (split offset lists have ≤ 3 entries).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
