package dytis

import (
	"time"

	"dytis/internal/core"
	"dytis/internal/obs"
	"dytis/internal/wal"
)

// Durable persistence. OpenDurable wraps an index in the internal/wal
// durability subsystem: every mutation is appended to a checksummed
// write-ahead log before it is applied, the log is compacted by periodic
// snapshot checkpoints, and reopening the same directory recovers the index
// (newest valid checkpoint + log replay, tolerating the torn final record a
// kill -9 leaves behind):
//
//	store, err := dytis.OpenDurable("/var/lib/dytis", dytis.DurableConfig{
//		Fsync: dytis.FsyncAlways, // acked writes are on stable storage
//	}, dytis.WithConcurrent())
//	defer store.Close()
//	err = store.Insert(42, 1) // nil = durably logged
//
// Mutations on a DurableStore return errors (the durability ack can fail);
// reads go straight to the in-memory index. See the internal/wal package
// documentation and DESIGN.md's durability section for the on-disk format
// and the exact crash-consistency guarantees per fsync policy.

// DurableStore is a DyTIS index fronted by a write-ahead log and
// checkpoints. Open with OpenDurable, mutate with the error-returning
// methods, stop with Close.
type DurableStore = wal.Store

// WALMetrics collects the dytis_wal_* durability series.
type WALMetrics = wal.Metrics

// RecoveryInfo reports what OpenDurable had to do (checkpoint used, records
// replayed, torn tail discarded); see DurableStore.Recovery.
type RecoveryInfo = wal.RecoveryInfo

// FsyncPolicy says when logged records are forced to stable storage.
type FsyncPolicy = wal.FsyncPolicy

// The fsync policies, from fastest to most durable. FsyncAlways makes every
// acked mutation crash-proof; FsyncInterval bounds loss to one sync
// interval; FsyncOff leaves flushing to the OS and checkpoints.
const (
	FsyncOff      = wal.FsyncOff
	FsyncInterval = wal.FsyncInterval
	FsyncAlways   = wal.FsyncAlways
)

// ParseFsyncPolicy maps the strings off, interval, always to their policies
// (the -fsync flag surface of cmd/dytis-server).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseFsyncPolicy(s) }

// Typed failures of the durability and snapshot paths, for errors.Is.
var (
	// ErrWALCorrupt: recovery met corruption torn-tail tolerance cannot
	// excuse (a bad record before the newest segment's tail, a segment
	// gap). OpenDurable fails rather than serve wrong answers.
	ErrWALCorrupt = wal.ErrCorrupt
	// ErrStoreClosed: a mutation reached a DurableStore after Close.
	ErrStoreClosed = wal.ErrClosed
	// ErrStoreFailed: a log append or sync failed; the store refuses all
	// later mutations (reads keep working) so it cannot ack writes it
	// cannot make durable.
	ErrStoreFailed = wal.ErrFailed
	// ErrSnapshotCorrupt: ReadSnapshot rejected the input (bad magic,
	// lying pair count, unsorted keys, torn tail).
	ErrSnapshotCorrupt = core.ErrSnapshotCorrupt
	// ErrSnapshotRaced: WriteSnapshot observed concurrent mutation and
	// aborted rather than emit an inconsistent image.
	ErrSnapshotRaced = core.ErrSnapshotRaced
	// ErrIndexClosed: a batch mutation reached a plain Index after Close.
	ErrIndexClosed = core.ErrClosed
)

// DurableConfig tunes the durability subsystem; the zero value gives
// OS-flushed (FsyncOff) logging with default checkpoint thresholds. Index
// geometry and concurrency come from the functional options passed to
// OpenDurable, same as New.
type DurableConfig struct {
	// Fsync is the append-path durability policy.
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 50ms).
	FsyncInterval time.Duration
	// CheckpointInterval, when positive, checkpoints on a timer in
	// addition to the size trigger.
	CheckpointInterval time.Duration
	// CheckpointBytes triggers a checkpoint once that many log bytes
	// accumulate past the last one (default 64 MiB; negative disables).
	CheckpointBytes int64
	// SegmentBytes bounds one log segment file (default 16 MiB; negative
	// disables size-based rotation).
	SegmentBytes int64
	// Metrics, when non-nil, receives the dytis_wal_* series.
	Metrics *WALMetrics
	// Logf, when non-nil, receives one line per notable durability event.
	Logf func(format string, args ...any)
}

// OpenDurable opens (creating or recovering) a durable store rooted at dir.
// The variadic options configure the in-memory index exactly as for New;
// pass WithConcurrent when the store is shared across goroutines.
func OpenDurable(dir string, cfg DurableConfig, opts ...Option) (*DurableStore, error) {
	var o core.Options
	for _, apply := range opts {
		apply(&o)
	}
	s, err := wal.Open(dir, wal.Options{
		Index:              o,
		Fsync:              cfg.Fsync,
		FsyncInterval:      cfg.FsyncInterval,
		CheckpointInterval: cfg.CheckpointInterval,
		CheckpointBytes:    cfg.CheckpointBytes,
		SegmentBytes:       cfg.SegmentBytes,
		Metrics:            cfg.Metrics,
		Logf:               cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	// Same observer completion as New: the exporter serves Stats and
	// MemoryFootprint from the recovered index.
	if ob, ok := o.Observer.(*obs.Observer); ok && ob != nil {
		ob.Attach(s.Index())
	}
	return s, nil
}
