package check_test

import (
	"strings"
	"testing"

	"dytis/internal/check"
	"dytis/internal/core"
)

func opts() core.Options {
	return core.Options{FirstLevelBits: 2, BucketEntries: 8, StartDepth: 2}
}

// build returns a quiescent index with a populated, multi-segment first EH.
func build(t *testing.T, concurrent bool) *core.DyTIS {
	t.Helper()
	o := opts()
	o.Concurrent = concurrent
	d := core.New(o)
	for i := uint64(0); i < 3000; i++ {
		d.Insert(i*7, i)
	}
	for i := uint64(0); i < 3000; i += 3 {
		d.Delete(i * 7)
	}
	return d
}

// eh0 returns the view of the first EH table. The tests run single-threaded
// on quiescent indexes, so holding the views beyond Introspect is safe.
func eh0(d *core.DyTIS) core.EHView {
	var out core.EHView
	first := true
	d.Introspect(func(e core.EHView) {
		if first {
			out, first = e, false
		}
	})
	return out
}

// segments returns EH e's distinct segments in directory order.
func segments(e core.EHView) []core.SegmentView {
	var out []core.SegmentView
	for i := 0; i < e.DirLen(); {
		s := e.DirSegment(i)
		out = append(out, s)
		run := 1
		for i+run < e.DirLen() && e.DirSegment(i+run) == s {
			run++
		}
		i += run
	}
	return out
}

func kindSet(vs []check.Violation) map[check.Kind]int {
	out := map[check.Kind]int{}
	for _, v := range vs {
		out[v.Kind]++
	}
	return out
}

// requireOnly asserts every violation has the single expected kind and at
// least one was reported.
func requireOnly(t *testing.T, vs []check.Violation, want check.Kind) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("no violations, want %v", want)
	}
	for _, v := range vs {
		if v.Kind != want {
			t.Fatalf("unexpected violation %v (want only %v); all: %v", v, want, vs)
		}
	}
}

func requireHas(t *testing.T, vs []check.Violation, want check.Kind) check.Violation {
	t.Helper()
	for _, v := range vs {
		if v.Kind == want {
			return v
		}
	}
	t.Fatalf("no %v violation in %v", want, vs)
	return check.Violation{}
}

func TestCheckCleanSingleThreaded(t *testing.T) {
	d := build(t, false)
	if vs := check.Check(d); len(vs) != 0 {
		t.Fatalf("clean index reported violations: %v", vs)
	}
}

func TestCheckCleanConcurrentMode(t *testing.T) {
	d := build(t, true)
	if vs := check.Check(d); len(vs) != 0 {
		t.Fatalf("clean concurrent-mode index reported violations: %v", vs)
	}
}

func TestCheckCleanEdgeKeys(t *testing.T) {
	d := core.New(opts())
	d.Insert(0, 1)
	d.Insert(^uint64(0), 2)
	d.Insert(^uint64(0)-1, 3)
	if vs := check.Check(d); len(vs) != 0 {
		t.Fatalf("edge-key index reported violations: %v", vs)
	}
}

func TestCheckCleanAfterLoadSorted(t *testing.T) {
	d := core.New(opts())
	keys := make([]uint64, 5000)
	vals := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i) * 13
		vals[i] = uint64(i)
	}
	d.LoadSorted(keys, vals)
	if vs := check.Check(d); len(vs) != 0 {
		t.Fatalf("LoadSorted index reported violations: %v", vs)
	}
}

func TestCheckEmptyIndex(t *testing.T) {
	if vs := check.Check(core.New(opts())); len(vs) != 0 {
		t.Fatalf("empty index reported violations: %v", vs)
	}
}

// findBucket returns a segment of e and a bucket index holding at least two
// keys.
func findBucket(t *testing.T, e core.EHView) (core.SegmentView, int) {
	t.Helper()
	for _, s := range segments(e) {
		for bi := 0; bi < s.NumBuckets(); bi++ {
			if s.BucketLen(bi) >= 2 {
				return s, bi
			}
		}
	}
	t.Fatal("no bucket with >= 2 keys")
	return core.SegmentView{}, 0
}

func TestCheckUnsortedBucket(t *testing.T) {
	d := build(t, false)
	s, bi := findBucket(t, eh0(d))
	// Duplicate the bucket's first key into position 1: order breaks, but
	// the fk cache, counters, and ranges stay intact — exactly one
	// violation.
	s.SetKeyForTest(bi, 1, s.BucketKeys(bi)[0])
	requireOnly(t, check.Check(d), check.KindBucketOrder)
}

func TestCheckBrokenSiblingChain(t *testing.T) {
	d := build(t, false)
	segs := segments(eh0(d))
	if len(segs) < 2 {
		t.Fatal("need >= 2 segments")
	}
	segs[0].SetNextForTest(core.SegmentView{})
	vs := check.Check(d)
	requireOnly(t, vs, check.KindSiblingChain)
	if want := "chain ends after 1 of"; !strings.Contains(vs[0].Detail, want) {
		t.Fatalf("detail %q, want %q", vs[0].Detail, want)
	}
}

func TestCheckMisalignedDirRun(t *testing.T) {
	// Cluster every key at the bottom of EH 0's range so splits deepen only
	// the leftmost segment: the top-half segment keeps LD=1 while GD grows,
	// giving it a directory run with span > 1 that we can shift off its
	// alignment.
	d := core.New(opts())
	for i := uint64(0); i < 20000; i++ {
		d.Insert(i, i)
	}
	e := eh0(d)
	if e.GlobalDepth() < 2 {
		t.Fatalf("gd=%d, need >= 2", e.GlobalDepth())
	}
	dirLen := e.DirLen()
	top := e.DirSegment(dirLen - 1) // LD=1, owns the upper half of the directory
	if top.LocalDepth() != 1 {
		t.Fatalf("top segment ld=%d, want 1", top.LocalDepth())
	}
	// Shift the top run one slot left: it now starts at dirLen/2-1, which is
	// not a multiple of its span dirLen/2.
	e.SetDirForTest(dirLen/2-1, top)
	vs := check.Check(d)
	v := requireHas(t, vs, check.KindDirRunMisaligned)
	if !strings.Contains(v.Detail, "not aligned to span") {
		t.Fatalf("detail %q, want alignment complaint", v.Detail)
	}
	// The displaced neighbour's run necessarily breaks too; nothing
	// segment-local may be implicated.
	for _, v := range vs {
		switch v.Kind {
		case check.KindBucketOrder, check.KindKeyRange, check.KindFirstKeyCache,
			check.KindSegmentTotal, check.KindRemapShape, check.KindRemapMonotone:
			t.Fatalf("directory corruption implicated segment-local kind: %v", v)
		}
	}
}

func TestCheckStaleUtilizationCounter(t *testing.T) {
	d := build(t, false)
	segs := segments(eh0(d))
	s := segs[0]
	s.SetTotalForTest(s.TotalCounter() + 3)
	vs := check.Check(d)
	requireOnly(t, vs, check.KindSegmentTotal)
	if !strings.Contains(vs[0].Detail, "recounted") {
		t.Fatalf("detail %q, want recount complaint", vs[0].Detail)
	}
}

func TestCheckStaleEHTotal(t *testing.T) {
	d := build(t, false)
	e := eh0(d)
	e.SetTotalForTest(e.TotalCounter() + 5)
	// Both the per-EH recount and the index-wide Len comparison report it;
	// both carry the same kind.
	requireOnly(t, check.Check(d), check.KindEHTotal)
}

func TestCheckStaleFirstKeyCache(t *testing.T) {
	d := build(t, false)
	s, bi := findBucket(t, eh0(d))
	s.SetFirstKeyCacheForTest(bi, s.BucketKeys(bi)[0]+1)
	requireOnly(t, check.Check(d), check.KindFirstKeyCache)
}

func TestCheckRemapIncoherent(t *testing.T) {
	d := build(t, false)
	var target core.SegmentView
	found := false
	for _, s := range segments(eh0(d)) {
		if len(s.SubRangeBuckets()) >= 2 {
			target, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no segment with >= 2 sub-ranges")
	}
	target.SetSubRangeBucketsForTest(0, target.SubRangeBuckets()[0]+1)
	requireOnly(t, check.Check(d), check.KindRemapShape)
}

func TestCheckRemapNotMonotone(t *testing.T) {
	d := build(t, false)
	var target core.SegmentView
	found := false
	for _, s := range segments(eh0(d)) {
		if len(s.SubRangeBuckets()) >= 2 && s.StartOffsets()[1] > 0 && s.NumBuckets() >= 2 {
			target, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no suitable segment")
	}
	// Zero a later start offset: predictions step backwards across the
	// sub-range boundary. The prefix sums are now incoherent too, so a
	// shape violation accompanies the monotonicity one.
	target.SetStartOffsetForTest(1, 0)
	vs := check.Check(d)
	requireHas(t, vs, check.KindRemapMonotone)
}

func TestCheckInvalidLimitMult(t *testing.T) {
	d := build(t, false)
	eh0(d).SetLimitMultForTest(7)
	vs := check.Check(d)
	requireOnly(t, vs, check.KindLimitMult)
}

func TestCheckStaleSnapshot(t *testing.T) {
	d := build(t, true)
	e := eh0(d)
	// Publish a snapshot with the wrong depth and length: every optimistic
	// reader would mis-route. The canonical directory is untouched, so this
	// is exactly one violation.
	e.SetSnapshotForTest(0, e.DirSegment(0))
	requireOnly(t, check.Check(d), check.KindSnapshot)
}

func TestCheckSnapshotEntryMismatch(t *testing.T) {
	d := build(t, true)
	e := eh0(d)
	distinct := segments(e)
	if len(distinct) < 2 {
		t.Fatal("need a multi-segment EH")
	}
	// Right depth and length, but slot 0 points at the wrong segment — the
	// shape comparison passes and only the per-slot walk catches it.
	segs := make([]core.SegmentView, e.DirLen())
	for i := range segs {
		segs[i] = e.DirSegment(i)
	}
	segs[0] = distinct[len(distinct)-1]
	e.SetSnapshotForTest(e.GlobalDepth(), segs...)
	requireOnly(t, check.Check(d), check.KindSnapshot)
}

func TestCheckSnapshotNotCheckedSingleThreaded(t *testing.T) {
	// Single-threaded maintenance legitimately leaves the construction-time
	// snapshot behind the canonical directory; the checker must not flag it.
	d := build(t, false)
	e := eh0(d)
	e.SetSnapshotForTest(0, e.DirSegment(0))
	if vs := check.Check(d); len(vs) != 0 {
		t.Fatalf("single-threaded snapshot drift reported: %v", vs)
	}
}

func TestCheckOddSeqVersion(t *testing.T) {
	for _, conc := range []bool{false, true} {
		d := build(t, conc)
		e := eh0(d)
		segments(e)[0].SetSeqForTest(1)
		if conc {
			// The corrupted segment is still referenced by the published
			// snapshot, so resolveRLocked/tryGet would spin on it; only the
			// parity check itself is under test here.
			requireHas(t, check.Check(d), check.KindSeqParity)
		} else {
			requireOnly(t, check.Check(d), check.KindSeqParity)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := check.Violation{Kind: check.KindBucketOrder, EH: 3, SegmentBase: 0x40, Detail: "boom"}
	if got := v.String(); !strings.Contains(got, "bucket-order") || !strings.Contains(got, "eh=3") {
		t.Fatalf("String() = %q", got)
	}
	w := check.Violation{Kind: check.KindStats, EH: -1, Detail: "boom"}
	if got := w.String(); !strings.Contains(got, "[stats]") || strings.Contains(got, "eh=") {
		t.Fatalf("String() = %q", got)
	}
}
