package bench

import (
	"bytes"
	"strings"
	"testing"

	"dytis/internal/core"
	"dytis/internal/datasets"
	"dytis/internal/workload"
)

func smallKeys(t *testing.T) []uint64 {
	t.Helper()
	return datasets.Taxi.Gen(20000, 1)
}

// allFactories returns every index under test, single-threaded variants.
func allFactories() []Factory {
	return []Factory{
		DyTIS(core.Options{}),
		ALEX("ALEX-10"),
		XIndex(false),
		BTree(),
		EH(),
		CCEH(),
	}
}

func TestRunLoadAllIndexes(t *testing.T) {
	keys := smallKeys(t)
	for _, f := range allFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			r := Run(Config{Factory: f, Dataset: "TX", Keys: keys, Kind: workload.Load, Seed: 1})
			if r.Unsupported {
				t.Fatal("load marked unsupported")
			}
			if r.Ops != len(keys) {
				t.Fatalf("ops=%d want %d", r.Ops, len(keys))
			}
			if r.MopsPerSec() <= 0 {
				t.Fatal("zero throughput")
			}
			if r.Hist.Count() != uint64(len(keys)) {
				t.Fatalf("hist count %d", r.Hist.Count())
			}
		})
	}
}

func TestRunEveryWorkloadOnDyTIS(t *testing.T) {
	keys := smallKeys(t)
	for _, k := range workload.Kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			r := Run(Config{
				Factory: DyTIS(core.Options{}), Dataset: "TX", Keys: keys,
				Kind: k, Ops: 5000, Seed: 2,
			})
			if r.Unsupported || r.Ops == 0 || r.Elapsed <= 0 {
				t.Fatalf("bad result: %+v", r)
			}
		})
	}
}

func TestScanWorkloadUnsupportedOnHashes(t *testing.T) {
	keys := smallKeys(t)
	for _, f := range []Factory{EH(), CCEH()} {
		r := Run(Config{Factory: f, Dataset: "TX", Keys: keys, Kind: workload.E, Ops: 100})
		if !r.Unsupported {
			t.Fatalf("%s should not support workload E", f.Name)
		}
	}
}

func TestBulkFracLoadSkipsLoadedKeys(t *testing.T) {
	keys := smallKeys(t)
	r := Run(Config{
		Factory: ALEX("ALEX-70"), Dataset: "TX", Keys: keys,
		Kind: workload.Load, BulkFrac: 0.7, Seed: 3,
	})
	want := len(keys) - int(0.7*float64(len(keys)))
	if r.Ops != want {
		t.Fatalf("measured ops %d want %d (bulk-loaded keys excluded)", r.Ops, want)
	}
}

func TestBulkFracFallsBackToInsertsForHashes(t *testing.T) {
	keys := smallKeys(t)
	r := Run(Config{
		Factory: EH(), Dataset: "TX", Keys: keys,
		Kind: workload.C, Ops: 2000, BulkFrac: 0.7, Seed: 4,
	})
	if r.Unsupported || r.Ops != 2000 {
		t.Fatalf("hash fallback failed: %+v", r)
	}
}

func TestThreadedRun(t *testing.T) {
	keys := smallKeys(t)
	r := Run(Config{
		Factory: DyTIS(core.Options{Concurrent: true}), Dataset: "TX",
		Keys: keys, Kind: workload.A, Ops: 8000, Threads: 4, Seed: 5,
	})
	if r.Ops != 8000 {
		t.Fatalf("ops=%d", r.Ops)
	}
	if r.Hist.Count() != 8000 {
		t.Fatalf("hist count %d", r.Hist.Count())
	}
}

func TestResultsAreConsistentAcrossIndexes(t *testing.T) {
	// All ordered indexes must contain exactly the dataset after Load.
	keys := smallKeys(t)
	for _, f := range allFactories() {
		inst := f.New()
		for _, k := range keys {
			inst.Insert(k, k)
		}
		if inst.Len() != len(keys) {
			t.Fatalf("%s: Len=%d want %d", f.Name, inst.Len(), len(keys))
		}
		for i := 0; i < len(keys); i += 97 {
			if v, ok := inst.Get(keys[i]); !ok || v != keys[i] {
				t.Fatalf("%s: Get(%#x)=%d,%v", f.Name, keys[i], v, ok)
			}
		}
		if f.Ordered {
			got, ok := inst.Scan(0, len(keys), nil)
			if !ok || len(got) != len(keys) {
				t.Fatalf("%s: full scan %d want %d", f.Name, len(got), len(keys))
			}
			for i := 1; i < len(got); i++ {
				if got[i].Key <= got[i-1].Key {
					t.Fatalf("%s: scan out of order", f.Name)
				}
			}
		}
		inst.Close()
	}
}

func TestWriteTable(t *testing.T) {
	keys := smallKeys(t)
	r := Run(Config{Factory: BTree(), Dataset: "TX", Keys: keys, Kind: workload.C, Ops: 1000})
	var buf bytes.Buffer
	WriteTable(&buf, []Result{r, {Index: "EH", Dataset: "TX", Kind: workload.E, Unsupported: true}})
	out := buf.String()
	if !strings.Contains(out, "B+-tree") || !strings.Contains(out, "n/a") {
		t.Fatalf("table output missing rows:\n%s", out)
	}
}
