package alex

import (
	"dytis/internal/kv"
)

const (
	// maxDataCap bounds a data node's slot count; past it the node splits.
	maxDataCap = 1 << 14
	// initialDensity is the fill factor after (re)training.
	initialDensity = 0.7
	// maxDensity triggers expansion/split before an insert would exceed it.
	maxDensity = 0.8
	// minDensity triggers contraction after deletes.
	minDensity = 0.1
	// maxFanout bounds an inner node's child-pointer array.
	maxFanout = 1 << 12
	// leafTargetKeys sizes bulk-loaded data nodes.
	leafTargetKeys = 4096
)

type node interface{ isNode() }

// inner is an internal RMI node: one linear model routing keys into a
// power-of-two child-pointer array. Pointers may repeat (a child can own a
// run of slots), which is what makes sideways data-node splits cheap.
type inner struct {
	model    linearModel // key -> child slot
	children []node
}

func (in *inner) isNode() {}

// Stats counts the structure-maintenance operations; the paper's §4.3
// compares the share of "expensive operations" (retraining model-based
// expansions, splits, parent expansions) across datasets.
type Stats struct {
	Expands       int64 // data-node expansions (retrain + re-spread)
	SplitsSide    int64 // sideways data-node splits
	SplitsDown    int64 // downward splits (new inner node)
	ParentExpands int64 // inner-node fanout doublings
	Contracts     int64
	DataNodes     int64
	InnerNodes    int64
	MaxDepth      int
}

// Index is an ALEX-like adaptive learned index. It is not safe for
// concurrent use (the paper runs ALEX single-threaded).
type Index struct {
	root  node
	head  *dataNode // leftmost data node (scan entry)
	n     int
	stats Stats
}

// New returns an empty index (a single data node that adapts as it grows).
func New() *Index {
	d := newDataNode(nil, nil, 64)
	return &Index{root: d, head: d}
}

// BulkLoad replaces the index contents with the ascending keys — the
// "training" phase the paper's ALEX-10/ALEX-70 configurations perform.
func (x *Index) BulkLoad(keys, values []uint64) {
	if len(keys) != len(values) {
		panic("alex: mismatched bulk-load slices")
	}
	x.n = len(keys)
	x.stats = Stats{}
	var leaves []*dataNode
	x.root = x.build(keys, values, &leaves)
	for i := 1; i < len(leaves); i++ {
		leaves[i-1].next = leaves[i]
		leaves[i].prev = leaves[i-1]
	}
	if len(leaves) > 0 {
		x.head = leaves[0]
	}
}

func (x *Index) build(keys, values []uint64, leaves *[]*dataNode) node {
	if len(keys) <= leafTargetKeys {
		capacity := int(float64(len(keys))/initialDensity) + 16
		if capacity > maxDataCap {
			capacity = maxDataCap
		}
		d := newDataNode(keys, values, capacity)
		*leaves = append(*leaves, d)
		x.stats.DataNodes++
		return d
	}
	fanout := 2
	for fanout < maxFanout && len(keys)/fanout > leafTargetKeys {
		fanout *= 2
	}
	in := &inner{model: fitLinear(keys, fanout), children: make([]node, fanout)}
	x.stats.InnerNodes++
	// Partition keys by predicted child slot; predictions are monotone in
	// the key, so each child receives a contiguous ascending run.
	startIdx := 0
	slot := 0
	for i := 0; i <= len(keys); i++ {
		var s int
		if i < len(keys) {
			s = in.model.PredictClamped(keys[i], fanout)
			if s < slot {
				s = slot // guard against float non-monotonicity at ties
			}
		} else {
			s = fanout
		}
		if s == slot {
			continue
		}
		child := x.build(keys[startIdx:i], values[startIdx:i], leaves)
		for j := slot; j < s; j++ {
			if j == slot || startIdx == i {
				in.children[j] = child
			} else {
				// Slots past the first for a non-empty run would route
				// later keys wrongly; they belong to the same child run.
				in.children[j] = child
			}
		}
		slot = s
		startIdx = i
	}
	return in
}

// Get returns the value for key.
func (x *Index) Get(key uint64) (uint64, bool) {
	d := x.leafFor(key)
	if i, ok := d.find(key); ok {
		return d.vals[i], true
	}
	return 0, false
}

func (x *Index) leafFor(key uint64) *dataNode {
	n := x.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*dataNode)
		}
		n = in.children[in.model.PredictClamped(key, len(in.children))]
	}
}

// path records the traversal for structure maintenance.
type pathEntry struct {
	in   *inner
	slot int
}

func (x *Index) leafForWithPath(key uint64, path []pathEntry) (*dataNode, []pathEntry) {
	n := x.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*dataNode), path
		}
		s := in.model.PredictClamped(key, len(in.children))
		path = append(path, pathEntry{in, s})
		n = in.children[s]
	}
}

// Insert stores or updates key.
func (x *Index) Insert(key, value uint64) {
	var pathBuf [24]pathEntry
	for {
		d, path := x.leafForWithPath(key, pathBuf[:0])
		if float64(d.num+1) <= maxDensity*float64(d.cap()) {
			if d.insert(key, value) {
				x.n++
			}
			return
		}
		x.grow(d, path)
	}
}

// grow makes room in an over-dense data node: expansion while below the size
// cap, otherwise a split (sideways through the parent's pointer run, doubling
// the parent, or downward as a last resort).
func (x *Index) grow(d *dataNode, path []pathEntry) {
	if d.cap() < maxDataCap {
		ks := make([]uint64, 0, d.num)
		vs := make([]uint64, 0, d.num)
		ks, vs = d.appendAll(ks, vs)
		bigger := d.cap() * 2
		if bigger > maxDataCap {
			bigger = maxDataCap
		}
		nd := &dataNode{
			keys:   make([]uint64, bigger),
			vals:   make([]uint64, bigger),
			bitmap: make([]uint64, (bigger+63)/64),
		}
		nd.load(ks, vs)
		*d = dataNode{model: nd.model, keys: nd.keys, vals: nd.vals,
			bitmap: nd.bitmap, num: nd.num, next: d.next, prev: d.prev}
		x.stats.Expands++
		return
	}
	if len(path) == 0 {
		x.splitDown(d, nil, 0)
		return
	}
	pe := path[len(path)-1]
	a, b := childRun(pe.in, pe.slot)
	if b-a >= 2 {
		x.splitSideways(d, pe.in, a, b)
		return
	}
	if len(pe.in.children) < maxFanout {
		x.expandParent(pe.in, path)
		// Retry: the run now spans two slots.
		a, b = childRun(pe.in, pe.slot*2)
		x.splitSideways(d, pe.in, a, b)
		return
	}
	x.splitDown(d, pe.in, pe.slot)
}

// childRun returns the [a,b) run of parent slots pointing at the same child
// as slot s.
func childRun(in *inner, s int) (int, int) {
	c := in.children[s]
	a, b := s, s+1
	for a > 0 && in.children[a-1] == c {
		a--
	}
	for b < len(in.children) && in.children[b] == c {
		b++
	}
	return a, b
}

// splitSideways partitions d's keys at the parent-model boundary of the
// middle of its pointer run, giving each half of the run its own node.
func (x *Index) splitSideways(d *dataNode, in *inner, a, b int) {
	mid := (a + b) / 2
	ks := make([]uint64, 0, d.num)
	vs := make([]uint64, 0, d.num)
	ks, vs = d.appendAll(ks, vs)
	cut := 0
	for cut < len(ks) && in.model.PredictClamped(ks[cut], len(in.children)) < mid {
		cut++
	}
	left := x.newLeaf(ks[:cut], vs[:cut])
	right := x.newLeaf(ks[cut:], vs[cut:])
	x.relink(d, left, right)
	for j := a; j < mid; j++ {
		in.children[j] = left
	}
	for j := mid; j < b; j++ {
		in.children[j] = right
	}
	x.stats.SplitsSide++
}

// splitDown replaces d with a new 2-way inner node over d's keys.
func (x *Index) splitDown(d *dataNode, parent *inner, slot int) {
	ks := make([]uint64, 0, d.num)
	vs := make([]uint64, 0, d.num)
	ks, vs = d.appendAll(ks, vs)
	nin := &inner{model: fitLinear(ks, 2), children: make([]node, 2)}
	cut := 0
	for cut < len(ks) && nin.model.PredictClamped(ks[cut], 2) < 1 {
		cut++
	}
	left := x.newLeaf(ks[:cut], vs[:cut])
	right := x.newLeaf(ks[cut:], vs[cut:])
	x.relink(d, left, right)
	nin.children[0], nin.children[1] = left, right
	if parent == nil {
		x.root = nin
	} else {
		parent.children[slot] = nin
	}
	x.stats.SplitsDown++
	x.stats.InnerNodes++
}

func (x *Index) newLeaf(ks, vs []uint64) *dataNode {
	capacity := int(float64(len(ks))/initialDensity) + 16
	if capacity > maxDataCap {
		capacity = maxDataCap
	}
	x.stats.DataNodes++
	return newDataNode(ks, vs, capacity)
}

// relink substitutes (left,right) for d in the leaf chain.
func (x *Index) relink(d *dataNode, left, right *dataNode) {
	left.prev = d.prev
	left.next = right
	right.prev = left
	right.next = d.next
	if d.prev != nil {
		d.prev.next = left
	}
	if d.next != nil {
		d.next.prev = right
	}
	if x.head == d {
		x.head = left
	}
	x.stats.DataNodes-- // d replaced by two new leaves (net +1 via newLeaf)
}

// expandParent doubles an inner node's fanout, duplicating child pointers
// and scaling the model.
func (x *Index) expandParent(in *inner, path []pathEntry) {
	nc := make([]node, len(in.children)*2)
	for i, c := range in.children {
		nc[2*i] = c
		nc[2*i+1] = c
	}
	in.children = nc
	in.model.Slope *= 2
	in.model.Intercept *= 2
	x.stats.ParentExpands++
}

// Delete removes key, contracting severely under-filled nodes.
func (x *Index) Delete(key uint64) bool {
	d := x.leafFor(key)
	if !d.remove(key) {
		return false
	}
	x.n--
	if d.cap() > 64 && float64(d.num) < minDensity*float64(d.cap()) {
		ks := make([]uint64, 0, d.num)
		vs := make([]uint64, 0, d.num)
		ks, vs = d.appendAll(ks, vs)
		smaller := d.cap() / 2
		nd := &dataNode{
			keys:   make([]uint64, smaller),
			vals:   make([]uint64, smaller),
			bitmap: make([]uint64, (smaller+63)/64),
		}
		nd.load(ks, vs)
		*d = dataNode{model: nd.model, keys: nd.keys, vals: nd.vals,
			bitmap: nd.bitmap, num: nd.num, next: d.next, prev: d.prev}
		x.stats.Contracts++
	}
	return true
}

// Scan appends up to max pairs with key >= start in ascending order.
func (x *Index) Scan(start uint64, max int, dst []kv.KV) []kv.KV {
	d := x.leafFor(start)
	i := d.lowerBoundSlot(start)
	taken := 0
	for d != nil && taken < max {
		for ; i < d.cap() && taken < max; i++ {
			if d.occupied(i) && d.keys[i] >= start {
				dst = append(dst, kv.KV{Key: d.keys[i], Value: d.vals[i]})
				taken++
			}
		}
		d = d.next
		i = 0
	}
	return dst
}

// Len returns the number of live keys.
func (x *Index) Len() int { return x.n }

// Stats returns maintenance counters plus current tree shape.
func (x *Index) Stats() Stats {
	st := x.stats
	st.MaxDepth = depth(x.root)
	return st
}

func depth(n node) int {
	in, ok := n.(*inner)
	if !ok {
		return 1
	}
	max := 0
	seen := map[node]bool{}
	for _, c := range in.children {
		if seen[c] {
			continue
		}
		seen[c] = true
		if d := depth(c); d > max {
			max = d
		}
	}
	return max + 1
}

// MemoryFootprint estimates heap bytes used by the index structure.
func (x *Index) MemoryFootprint() int64 {
	var walk func(n node) int64
	walk = func(n node) int64 {
		if in, ok := n.(*inner); ok {
			b := int64(len(in.children))*8 + 32
			var prev node
			for _, c := range in.children {
				if c != prev {
					b += walk(c)
					prev = c
				}
			}
			return b
		}
		d := n.(*dataNode)
		return int64(d.cap())*16 + int64(len(d.bitmap))*8 + 64
	}
	return walk(x.root)
}
