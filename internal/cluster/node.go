package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/kv"
)

// Index is the index surface a Node wraps — the same shape as
// server.Index (the package is declared here to avoid an import cycle:
// server imports cluster). It must be safe for concurrent use.
type Index interface {
	Get(key uint64) (uint64, bool)
	Insert(key, value uint64)
	Delete(key uint64) bool
	Scan(start uint64, max int, dst []kv.KV) []kv.KV
	GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool)
	InsertBatch(keys, vals []uint64) error
	DeleteBatch(keys []uint64, found []bool) ([]bool, error)
	Len() int
}

// Peer is the slice of a remote shard server a handover drives: the
// import session on the new owner plus the double-write mirror. The
// production implementation adapts client.Client (cmd/dytis-server); tests
// substitute fakes. Implementations must be safe for concurrent use — the
// bulk-copy goroutine and mirroring writers overlap.
type Peer interface {
	ImportStart(lo, hi uint64) error
	// ImportResume reattaches to an existing import session for exactly
	// [lo, hi] (fresh=false, applied echoes its progress) or, when the
	// target lost it (restart), opens a new one (fresh=true).
	ImportResume(lo, hi uint64) (fresh bool, applied uint64, err error)
	ImportBatch(keys, vals []uint64) (applied uint64, err error)
	ImportEnd(commit bool) error
	Mirror(del bool, key, val uint64) error
	Close() error
}

// PeerDialer opens a Peer to the shard server at addr.
type PeerDialer func(addr string) (Peer, error)

// ErrWrongShard marks an operation on a key (or epoch) this node does not
// own; the server answers it as StatusWrongShard with the current map
// attached. Match with errors.Is.
var ErrWrongShard = errors.New("cluster: wrong shard")

// ErrHandoverSuspended marks an operation refused because the node's
// handover sits in HandoverFailed: it must be resumed (HandoverResume) or
// abandoned (HandoverAbort) before a new one can start. Match with
// errors.Is.
var ErrHandoverSuspended = errors.New("cluster: handover suspended")

// Handover states, as carried in HandoverStatus/ShardInfo responses.
const (
	HandoverNone    uint8 = iota // no handover has run
	HandoverCopying              // bulk copy in progress, mirroring on
	HandoverCopied               // bulk copy complete, mirroring on, safe to cut over
	HandoverFailed               // copy or mirror exhausted retries; suspended, resumable
	HandoverDone                 // cutover complete, range de-owned
)

func handoverStateName(s uint8) string {
	switch s {
	case HandoverNone:
		return "none"
	case HandoverCopying:
		return "copying"
	case HandoverCopied:
		return "copied"
	case HandoverFailed:
		return "failed"
	case HandoverDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", s)
}

// copyPage is the bulk-copy and scrub page size: big enough to amortize
// framing, small enough that one page never approaches frame limits.
const copyPage = 4096

// RetryPolicy bounds how hard a handover fights transient peer failures
// before suspending: each peer call (mirror, bulk page) is attempted up
// to Attempts times with jittered exponential backoff between tries.
type RetryPolicy struct {
	Attempts   int           // total tries per peer call; <=0 means the default (4)
	BackoffMin time.Duration // first backoff; <=0 means the default (2ms)
	BackoffMax time.Duration // backoff cap; <=0 means the default (250ms)
}

func (r RetryPolicy) normalized() RetryPolicy {
	if r.Attempts <= 0 {
		r.Attempts = 4
	}
	if r.BackoffMin <= 0 {
		r.BackoffMin = 2 * time.Millisecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 250 * time.Millisecond
	}
	if r.BackoffMax < r.BackoffMin {
		r.BackoffMax = r.BackoffMin
	}
	return r
}

// HandoverEvents are optional hooks fired on handover robustness events;
// the server wires them to its metrics. Nil fields are skipped. Hooks may
// be called under node locks and must not block or call back into the
// Node.
type HandoverEvents struct {
	MirrorRetry func() // one mirror send is being retried
	Failed      func() // handover entered HandoverFailed (suspended)
	Resumed     func() // a suspended handover was resumed
}

// NodeConfig configures a Node.
type NodeConfig struct {
	Index Index
	// Lo, Hi is the initially owned range (inclusive). Lo > Hi means the
	// node starts owning nothing (a fresh node awaiting a handover).
	Lo, Hi uint64
	// Dial opens connections to handover targets. Required only on nodes
	// that originate handovers.
	Dial PeerDialer
	// Logf, when non-nil, receives one line per abnormal handover event.
	Logf func(format string, args ...any)
	// Retry bounds per-peer-call retries during a handover; zero fields
	// take defaults.
	Retry RetryPolicy
	// Events, when set, observes handover robustness transitions.
	Events HandoverEvents
}

// Node is the per-server cluster brain: it wraps the local index with
// ownership enforcement, holds the node's view of the shard map, and runs
// both sides of live shard handover.
//
// Locking: mu guards the routing state (range, epoch, map, handover and
// import-session pointers). hmu serializes everything that must see a
// frozen handover/import state end to end: moving-range writes (apply +
// synchronous mirror), import-session operations, handover transitions,
// and map installs. Lock order is hmu before mu; mu is never held across
// a network call, hmu is (that synchronous mirror under hmu is exactly
// what makes double-writes ordered and cutover lossless).
type Node struct {
	idx    Index
	dial   PeerDialer
	logf   func(format string, args ...any)
	retry  RetryPolicy
	events HandoverEvents

	hmu sync.Mutex // see above; acquired before mu

	scrubs sync.WaitGroup // background de-own scrubs spawned by SetMap

	mu     sync.RWMutex
	lo, hi uint64 // owned range; lo > hi = owns nothing
	epoch  uint64 // current map epoch; 0 until a map is installed
	blob   []byte // current encoded map; replaced wholesale, never mutated
	ho     *handover
	imp    *importSession
}

// handover is the source-side state machine of one range migration. It
// survives suspension: a failed run keeps the struct (watermark, counters,
// pending journal) so HandoverResume can continue instead of recopying.
type handover struct {
	lo, hi uint64
	addr   string

	// peer and stop are per-run: replaced together on resume. Both are
	// guarded by the node's mu; a copy goroutine holds the pair it was
	// started with and checks identity (ho.stop == stop) before recording
	// progress, so a superseded run can never corrupt the live one.
	peer Peer
	stop chan struct{} // closed on suspend/abort to end the run

	state     uint8 // guarded by the node's mu
	failCause error // guarded by the node's mu; last suspension cause

	copied    atomic.Uint64 // pairs accepted by the target's bulk import
	mirrored  atomic.Uint64 // double-writes acked by the target
	retries   atomic.Uint64 // peer-call retries (mirror + bulk) across runs
	resumes   atomic.Uint64 // successful HandoverResume calls
	watermark atomic.Uint64 // next bulk-copy key; resume restarts here
	copyDone  atomic.Bool   // bulk copy finished (mirroring may continue)

	// pending journals moving-range writes applied locally while the
	// handover is suspended (plus the write whose mirror exhausted
	// retries). Last-write-wins per key; replayed as mirrors — which
	// overwrite and maintain tombstones — before a resume goes live.
	// Guarded by the node's hmu.
	pending map[uint64]mirrorOp
}

type mirrorOp struct {
	del bool
	val uint64
}

func (h *handover) covers(key uint64) bool { return key >= h.lo && key <= h.hi }

// addPending journals one suspended-window write. Callers hold hmu.
func (h *handover) addPending(del bool, key, val uint64) {
	if h.pending == nil {
		h.pending = make(map[uint64]mirrorOp)
	}
	h.pending[key] = mirrorOp{del: del, val: val}
}

// importSession is the target side of a handover: bulk pages apply
// insert-if-absent, and tombstones remember mirrored deletes so a late
// bulk page cannot resurrect a key deleted during the copy.
type importSession struct {
	lo, hi  uint64
	applied uint64
	tombs   map[uint64]struct{}
}

// NewNode builds a node owning [cfg.Lo, cfg.Hi].
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Index == nil {
		return nil, errors.New("cluster: NodeConfig.Index is required")
	}
	n := &Node{
		idx: cfg.Index, dial: cfg.Dial, logf: cfg.Logf,
		retry: cfg.Retry.normalized(), events: cfg.Events,
		lo: cfg.Lo, hi: cfg.Hi,
	}
	return n, nil
}

// retryPeer runs op up to the retry budget with jittered exponential
// backoff, aborting early (with the last error) once stop closes. mirror
// marks the retries that feed the mirror-retry event hook.
func (n *Node) retryPeer(ho *handover, stop chan struct{}, mirror bool, op func() error) error {
	backoff := n.retry.BackoffMin
	var err error
	for attempt := 0; attempt < n.retry.Attempts; attempt++ {
		if attempt > 0 {
			ho.retries.Add(1)
			if mirror && n.events.MirrorRetry != nil {
				n.events.MirrorRetry()
			}
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			select {
			case <-stop:
				return err
			case <-time.After(d):
			}
			if backoff *= 2; backoff > n.retry.BackoffMax {
				backoff = n.retry.BackoffMax
			}
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

func (n *Node) logErr(format string, args ...any) {
	if n.logf != nil {
		n.logf(format, args...)
	}
}

// ownsLocked reports whether key is in the owned range. Callers hold mu.
func (n *Node) ownsLocked(key uint64) bool { return key >= n.lo && key <= n.hi }

func (n *Node) wrongShardLocked(key uint64) error {
	return fmt.Errorf("%w: key %#x outside owned [%#x, %#x] at epoch %d", ErrWrongShard, key, n.lo, n.hi, n.epoch)
}

// --- data path --------------------------------------------------------------

// Get serves a point read, held under mu so a concurrent cutover's scrub
// cannot interleave and serve a half-removed key.
func (n *Node) Get(key uint64) (uint64, bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.ownsLocked(key) {
		return 0, false, n.wrongShardLocked(key)
	}
	v, ok := n.idx.Get(key)
	return v, ok, nil
}

// Insert applies a write. Writes inside a live handover's moving range
// take the slow path: serialized under hmu, applied locally, then
// synchronously mirrored to the new owner before the ack — the invariant
// that makes cutover lossless.
func (n *Node) Insert(key, val uint64) error {
	n.mu.RLock()
	if !n.ownsLocked(key) {
		err := n.wrongShardLocked(key)
		n.mu.RUnlock()
		return err
	}
	if ho := n.ho; ho != nil && ho.covers(key) && ho.state != HandoverDone {
		n.mu.RUnlock()
		_, err := n.mirroredWrite(false, key, val)
		return err
	}
	// Holding mu across the apply pins the ownership check: SetMap (which
	// takes mu exclusively) cannot de-own and scrub between check and write,
	// so an acked write can never land in a range another node now owns.
	n.idx.Insert(key, val)
	n.mu.RUnlock()
	return nil
}

// Delete applies a delete; same slow-path rules as Insert.
func (n *Node) Delete(key uint64) (bool, error) {
	n.mu.RLock()
	if !n.ownsLocked(key) {
		err := n.wrongShardLocked(key)
		n.mu.RUnlock()
		return false, err
	}
	if ho := n.ho; ho != nil && ho.covers(key) && ho.state != HandoverDone {
		n.mu.RUnlock()
		return n.mirroredWrite(true, key, 0)
	}
	found := n.idx.Delete(key)
	n.mu.RUnlock()
	return found, nil
}

// mirroredWrite is the moving-range slow path: one write applied locally
// and mirrored to the handover target before it is acknowledged. hmu
// serializes these end to end, so mirrors arrive at the target in apply
// order — concurrent same-key writes cannot invert on the wire. While the
// handover is suspended the write is journaled instead of mirrored; the
// journal replays (as mirrors, which overwrite and maintain tombstones)
// before a resume goes live, so acked suspended-window writes still reach
// the target before any cutover.
func (n *Node) mirroredWrite(del bool, key, val uint64) (bool, error) {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.RLock()
	if !n.ownsLocked(key) {
		err := n.wrongShardLocked(key)
		n.mu.RUnlock()
		return false, err
	}
	ho := n.ho
	var (
		peer  Peer
		stop  chan struct{}
		state = HandoverDone // anything inactive
	)
	if ho != nil && ho.covers(key) {
		state, peer, stop = ho.state, ho.peer, ho.stop
	}
	n.mu.RUnlock()
	var found bool
	if del {
		found = n.idx.Delete(key)
	} else {
		n.idx.Insert(key, val)
	}
	switch state {
	case HandoverCopying, HandoverCopied:
		err := n.retryPeer(ho, stop, true, func() error { return peer.Mirror(del, key, val) })
		if err != nil {
			// The local apply stands and the write is still acknowledged:
			// suspending the handover here guarantees this map can never cut
			// the range over (SetMap refuses to de-own anything not covered by
			// a Copied handover), and the journal entry carries the write into
			// the eventual resume — either way it cannot be lost.
			n.suspendHandoverLocked(ho, fmt.Errorf("mirror to %s: %w", ho.addr, err))
			ho.addPending(del, key, val)
			return found, nil
		}
		ho.mirrored.Add(1)
	case HandoverFailed:
		ho.addPending(del, key, val)
	}
	return found, nil
}

// Scan serves one clipped page of the owned range starting at start. done
// reports that the owned range is exhausted. epoch, when nonzero, must
// match the node's current map epoch — a streaming scan spans many pages,
// and a cutover between pages would otherwise silently truncate it.
func (n *Node) Scan(epoch, start uint64, max int, dst []kv.KV) (_ []kv.KV, done bool, _ error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if epoch != 0 && n.epoch != 0 && epoch != n.epoch {
		return dst[:0], false, fmt.Errorf("%w: scan epoch %d, node at %d", ErrWrongShard, epoch, n.epoch)
	}
	if n.lo > n.hi || start > n.hi {
		return dst[:0], true, nil
	}
	if start < n.lo {
		start = n.lo
	}
	dst = n.idx.Scan(start, max, dst[:0])
	for i, p := range dst {
		if p.Key > n.hi {
			dst = dst[:i]
			break
		}
	}
	done = len(dst) < max || (len(dst) > 0 && dst[len(dst)-1].Key >= n.hi)
	return dst, done, nil
}

// GetBatch serves a batched read; every key must be owned (the routing
// client splits batches per shard, so a stray key means a stale map and
// the whole batch redirects).
func (n *Node) GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, k := range keys {
		if !n.ownsLocked(k) {
			return vals, found, n.wrongShardLocked(k)
		}
	}
	vals, found = n.idx.GetBatch(keys, vals, found)
	return vals, found, nil
}

// InsertBatch applies a batched write, falling to the serialized mirror
// path when any key is inside a live handover's moving range.
func (n *Node) InsertBatch(keys, vals []uint64) error {
	n.mu.RLock()
	slow := false
	for _, k := range keys {
		if !n.ownsLocked(k) {
			err := n.wrongShardLocked(k)
			n.mu.RUnlock()
			return err
		}
		if ho := n.ho; ho != nil && ho.covers(k) && ho.state != HandoverDone {
			slow = true
		}
	}
	if !slow {
		err := n.idx.InsertBatch(keys, vals)
		n.mu.RUnlock()
		return err
	}
	n.mu.RUnlock()
	for i, k := range keys {
		if _, err := n.mirroredWrite(false, k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBatch applies a batched delete; same slow-path rules as
// InsertBatch.
func (n *Node) DeleteBatch(keys []uint64, found []bool) ([]bool, error) {
	n.mu.RLock()
	slow := false
	for _, k := range keys {
		if !n.ownsLocked(k) {
			err := n.wrongShardLocked(k)
			n.mu.RUnlock()
			return found, err
		}
		if ho := n.ho; ho != nil && ho.covers(k) && ho.state != HandoverDone {
			slow = true
		}
	}
	if !slow {
		var err error
		found, err = n.idx.DeleteBatch(keys, found)
		n.mu.RUnlock()
		return found, err
	}
	n.mu.RUnlock()
	found = found[:0]
	for _, k := range keys {
		f, err := n.mirroredWrite(true, k, 0)
		if err != nil {
			return found, err
		}
		found = append(found, f)
	}
	return found, nil
}

// --- map management ---------------------------------------------------------

// Info returns the owned range, map epoch, and handover state.
func (n *Node) Info() (lo, hi, epoch uint64, state uint8) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	state = HandoverNone
	if n.ho != nil {
		state = n.ho.state
	}
	return n.lo, n.hi, n.epoch, state
}

// MapBlob returns the node's current encoded map (nil before any map is
// installed). The slice is never mutated after install, so callers may
// retain it.
func (n *Node) MapBlob() []byte {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blob
}

// SetMap installs an encoded shard map and adjusts the owned range to
// [selfLo, selfHi] (selfLo > selfHi = owns nothing). The epoch must move
// strictly forward (re-installing the identical blob is an idempotent
// no-op). De-owning any key is only permitted when a handover in state
// HandoverCopied covers the de-owned region — that is the cutover, which
// this call finalizes: the import session commits on the target, the
// peer closes, and the de-owned region is scrubbed from the local index.
func (n *Node) SetMap(selfLo, selfHi uint64, blob []byte) error {
	m, err := DecodeMap(blob)
	if err != nil {
		return err
	}
	if selfLo <= selfHi {
		// The declared self range must be exactly one shard of the map:
		// ownership and routing must agree or every client would loop.
		ok := false
		for _, s := range m.Shards {
			if s.Lo == selfLo && s.Hi == selfHi {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("cluster: self range [%#x, %#x] is not a shard of the map", selfLo, selfHi)
		}
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	if m.Epoch < n.epoch {
		cur := n.epoch
		n.mu.Unlock()
		return fmt.Errorf("cluster: map epoch %d older than current %d", m.Epoch, cur)
	}
	if m.Epoch == n.epoch && n.epoch != 0 {
		same := string(blob) == string(n.blob) && selfLo == n.lo && selfHi == n.hi
		n.mu.Unlock()
		if same {
			return nil
		}
		return fmt.Errorf("cluster: conflicting map at same epoch %d", m.Epoch)
	}
	deowned := subtractRange(n.lo, n.hi, selfLo, selfHi)
	var finalize *handover
	if len(deowned) > 0 {
		ho := n.ho
		for _, r := range deowned {
			if ho == nil || ho.state != HandoverCopied || r.lo < ho.lo || r.hi > ho.hi {
				n.mu.Unlock()
				return fmt.Errorf("cluster: map de-owns [%#x, %#x] with no completed handover covering it (state %s)",
					r.lo, r.hi, handoverStateName(hoState(ho)))
			}
		}
		n.mu.Unlock()
		// Probe the target before surrendering ownership: a target that
		// crashed after the copy finished holds none of the moved data, and
		// de-owning against it would scrub the only live copy. ImportResume
		// is read-only when the session is intact; a fresh answer (or no
		// answer) suspends the handover instead — resumable, never lossy.
		// hmu is held throughout, so the handover cannot change underneath
		// the probe.
		fresh, _, perr := ho.peer.ImportResume(ho.lo, ho.hi)
		if perr != nil {
			n.suspendHandoverLocked(ho, fmt.Errorf("cutover probe to %s: %w", ho.addr, perr))
			return fmt.Errorf("cluster: refusing de-own of [%#x, %#x]: target %s unreachable at cutover (handover suspended): %w",
				ho.lo, ho.hi, ho.addr, perr)
		}
		if fresh {
			// The target restarted between copy and cutover: its data and
			// session are gone (the probe opened an empty one). Reset the
			// copy progress so the resume recopies everything.
			ho.watermark.Store(ho.lo)
			ho.copied.Store(0)
			ho.copyDone.Store(false)
			n.mu.Lock()
			ho.pending = nil
			n.mu.Unlock()
			n.suspendHandoverLocked(ho, fmt.Errorf("target %s restarted before cutover; import session lost", ho.addr))
			return fmt.Errorf("cluster: refusing de-own of [%#x, %#x]: target %s restarted before cutover (handover suspended for recopy)",
				ho.lo, ho.hi, ho.addr)
		}
		n.mu.Lock()
		if n.ho != ho || ho.state != HandoverCopied {
			st := hoState(n.ho)
			n.mu.Unlock()
			return fmt.Errorf("cluster: handover changed during cutover probe (state %s)", handoverStateName(st))
		}
		ho.state = HandoverDone
		finalize = ho
	}
	// A session for a range the new map gives us commits implicitly: the
	// source finalizes with an explicit ImportEnd too, but adopting here
	// makes the cutover robust to the source dying right after our install.
	if imp := n.imp; imp != nil && selfLo <= selfHi && imp.lo >= selfLo && imp.hi <= selfHi {
		n.imp = nil
	}
	n.lo, n.hi, n.epoch, n.blob = selfLo, selfHi, m.Epoch, blob
	n.mu.Unlock()

	if finalize != nil {
		if err := finalize.peer.ImportEnd(true); err != nil {
			n.logErr("cluster: import-end commit to %s: %v", finalize.addr, err)
		}
		if err := finalize.peer.Close(); err != nil {
			n.logErr("cluster: closing peer %s: %v", finalize.addr, err)
		}
	}
	// Scrub de-owned keys off the response path: the region already answers
	// WrongShard, and the caller is mid-cutover — it cannot install the map
	// on the new owner until we respond, so the fail-closed routing window
	// must not scale with the number of moved keys. The goroutine re-takes
	// hmu (serializing against handover machinery) and skips anything this
	// node has re-owned or started re-importing in the meantime.
	if len(deowned) > 0 {
		n.scrubs.Add(1)
		go func() {
			defer n.scrubs.Done()
			n.hmu.Lock()
			defer n.hmu.Unlock()
			for _, r := range deowned {
				n.mu.RLock()
				stale := subtractRange(r.lo, r.hi, n.lo, n.hi)
				if imp := n.imp; imp != nil {
					var kept []keyRange
					for _, s := range stale {
						kept = append(kept, subtractRange(s.lo, s.hi, imp.lo, imp.hi)...)
					}
					stale = kept
				}
				n.mu.RUnlock()
				for _, s := range stale {
					n.scrub(s.lo, s.hi)
				}
			}
		}()
	}
	return nil
}

func hoState(ho *handover) uint8 {
	if ho == nil {
		return HandoverNone
	}
	return ho.state
}

type keyRange struct{ lo, hi uint64 }

// subtractRange returns old minus new as up to two inclusive ranges.
// An empty old (lo > hi) yields nothing; an empty new de-owns all of old.
func subtractRange(oldLo, oldHi, newLo, newHi uint64) []keyRange {
	if oldLo > oldHi {
		return nil
	}
	if newLo > newHi {
		return []keyRange{{oldLo, oldHi}}
	}
	var out []keyRange
	if newLo > oldLo {
		hi := oldHi
		if newLo-1 < hi {
			hi = newLo - 1
		}
		out = append(out, keyRange{oldLo, hi})
	}
	if newHi < oldHi {
		lo := oldLo
		if newHi+1 > lo {
			lo = newHi + 1
		}
		out = append(out, keyRange{lo, oldHi})
	}
	return out
}

// scrub deletes every key in [lo, hi] from the local index, paging via
// Scan. Called under hmu with the region already de-owned.
func (n *Node) scrub(lo, hi uint64) {
	buf := make([]kv.KV, 0, copyPage)
	next := lo
	for {
		buf = n.idx.Scan(next, copyPage, buf[:0])
		if len(buf) == 0 {
			return
		}
		for _, p := range buf {
			if p.Key > hi {
				return
			}
			n.idx.Delete(p.Key)
		}
		last := buf[len(buf)-1].Key
		if len(buf) < copyPage || last >= hi || last == ^uint64(0) {
			return
		}
		next = last + 1
	}
}

// --- handover: source side --------------------------------------------------

// StartHandover begins migrating the owned subrange [lo, hi] to the shard
// server at addr: it opens an import session there, starts mirroring
// moving-range writes, and kicks off the bulk copy. Progress is polled
// with HandoverStatus; cutover happens when a new map de-owns the range
// (SetMap).
func (n *Node) StartHandover(lo, hi uint64, addr string) error {
	if lo > hi {
		return fmt.Errorf("cluster: handover range inverted [%#x, %#x]", lo, hi)
	}
	if n.dial == nil {
		return errors.New("cluster: node has no peer dialer")
	}
	n.mu.RLock()
	err := n.checkHandoverLocked(lo, hi)
	n.mu.RUnlock()
	if err != nil {
		return err
	}
	peer, err := n.dial(addr)
	if err != nil {
		return fmt.Errorf("cluster: dialing handover target %s: %w", addr, err)
	}
	if err := peer.ImportStart(lo, hi); err != nil {
		peer.Close()
		return fmt.Errorf("cluster: opening import session on %s: %w", addr, err)
	}
	ho := &handover{lo: lo, hi: hi, addr: addr, peer: peer, state: HandoverCopying, stop: make(chan struct{})}
	ho.watermark.Store(lo)
	n.hmu.Lock()
	n.mu.Lock()
	// Re-check under the lock: a map install may have raced the dial.
	if err := n.checkHandoverLocked(lo, hi); err != nil {
		n.mu.Unlock()
		n.hmu.Unlock()
		peer.ImportEnd(false)
		peer.Close()
		return err
	}
	n.ho = ho
	n.mu.Unlock()
	n.hmu.Unlock()
	go n.runCopy(ho, peer, ho.stop)
	return nil
}

// checkHandoverLocked validates that [lo, hi] is fully owned and no
// handover is live or suspended. Callers hold mu.
func (n *Node) checkHandoverLocked(lo, hi uint64) error {
	if !n.ownsLocked(lo) || !n.ownsLocked(hi) {
		return fmt.Errorf("cluster: handover range [%#x, %#x] not fully owned ([%#x, %#x])", lo, hi, n.lo, n.hi)
	}
	switch ho := n.ho; {
	case ho == nil:
	case ho.state == HandoverCopying || ho.state == HandoverCopied:
		return fmt.Errorf("cluster: handover of [%#x, %#x] already %s", ho.lo, ho.hi, handoverStateName(ho.state))
	case ho.state == HandoverFailed:
		return fmt.Errorf("%w: [%#x, %#x] to %s — resume or abort it first", ErrHandoverSuspended, ho.lo, ho.hi, ho.addr)
	}
	return nil
}

// HandoverInfo is a snapshot of the live (or last) handover's progress.
type HandoverInfo struct {
	State     uint8
	Lo, Hi    uint64 // moving range; zero unless a handover exists
	Target    string // target server address
	Copied    uint64 // pairs accepted by the target's bulk import
	Mirrored  uint64 // double-writes acked by the target
	Retries   uint64 // peer-call retries across all runs
	Resumes   uint64 // successful resumes
	Watermark uint64 // next bulk-copy key (resume restarts here)
	Cause     error  // last suspension cause; nil unless State is HandoverFailed
}

// HandoverStatus reports the live (or last) handover's progress.
func (n *Node) HandoverStatus() HandoverInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ho := n.ho
	if ho == nil {
		return HandoverInfo{State: HandoverNone}
	}
	return HandoverInfo{
		State:     ho.state,
		Lo:        ho.lo,
		Hi:        ho.hi,
		Target:    ho.addr,
		Copied:    ho.copied.Load(),
		Mirrored:  ho.mirrored.Load(),
		Retries:   ho.retries.Load(),
		Resumes:   ho.resumes.Load(),
		Watermark: ho.watermark.Load(),
		Cause:     ho.failCause,
	}
}

// currentRun reports whether stop is still ho's live run. Callers hold mu
// (any mode); resume swaps ho.stop under mu exclusively, so a positive
// answer pins the run for the duration of the lock.
func (h *handover) currentRun(stop chan struct{}) bool { return h.stop == stop }

// runCopy is the bulk-copy goroutine: it pages the moving range out of the
// local index and streams it to the target's import session, advancing the
// watermark after every accepted page so a later resume can continue
// instead of recopying. Writes that land mid-copy are covered by the
// mirror, and the target's insert-if-absent + tombstones make copy/mirror
// interleavings converge (see importSession). peer and stop are the run's
// own pair: after a resume supersedes this run, progress recording is
// skipped (currentRun) and the next stop check exits.
func (n *Node) runCopy(ho *handover, peer Peer, stop chan struct{}) {
	buf := make([]kv.KV, 0, copyPage)
	keys := make([]uint64, 0, copyPage)
	vals := make([]uint64, 0, copyPage)
	next := ho.watermark.Load()
	for {
		select {
		case <-stop:
			return
		default:
		}
		buf = n.idx.Scan(next, copyPage, buf[:0])
		keys, vals = keys[:0], vals[:0]
		for _, p := range buf {
			if p.Key > ho.hi {
				break
			}
			keys = append(keys, p.Key)
			vals = append(vals, p.Value)
		}
		if len(keys) > 0 {
			err := n.retryPeer(ho, stop, false, func() error {
				_, e := peer.ImportBatch(keys, vals)
				return e
			})
			if err != nil {
				n.suspendHandover(ho, fmt.Errorf("bulk copy to %s: %w", ho.addr, err))
				return
			}
		}
		done := len(buf) < copyPage
		last := next
		if len(buf) > 0 {
			last = buf[len(buf)-1].Key
		}
		if !done && (last >= ho.hi || last == ^uint64(0)) {
			done = true
		}
		// Record progress only while this run is current: a stale run's page
		// may still land (idempotently) on the target, but it must not move
		// the watermark of a fresh-restarted copy.
		n.mu.RLock()
		if ho.currentRun(stop) {
			ho.copied.Add(uint64(len(keys)))
			if !done {
				ho.watermark.Store(last + 1)
			} else {
				ho.watermark.Store(last)
				ho.copyDone.Store(true)
			}
		}
		n.mu.RUnlock()
		if done {
			break
		}
		next = last + 1
	}
	n.hmu.Lock()
	n.mu.Lock()
	if n.ho == ho && ho.currentRun(stop) && ho.state == HandoverCopying {
		ho.state = HandoverCopied
	}
	n.mu.Unlock()
	n.hmu.Unlock()
}

// suspendHandover marks ho failed-but-resumable: the run stops and the
// peer connection closes, but — unlike an abort — the target's import
// session is left alive so HandoverResume can reattach and continue from
// the watermark.
func (n *Node) suspendHandover(ho *handover, cause error) {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.suspendHandoverLocked(ho, cause)
}

// suspendHandoverLocked is suspendHandover for callers already holding hmu.
func (n *Node) suspendHandoverLocked(ho *handover, cause error) {
	n.mu.Lock()
	if ho.state != HandoverCopying && ho.state != HandoverCopied {
		n.mu.Unlock()
		return
	}
	ho.state = HandoverFailed
	ho.failCause = cause
	close(ho.stop)
	peer := ho.peer
	n.mu.Unlock()
	n.logErr("cluster: handover of [%#x, %#x] suspended: %v", ho.lo, ho.hi, cause)
	if n.events.Failed != nil {
		n.events.Failed()
	}
	if err := peer.Close(); err != nil {
		n.logErr("cluster: closing peer %s: %v", ho.addr, err)
	}
}

// HandoverResume restarts a suspended handover: it redials the target,
// reattaches to (or, after a target restart, recreates) the import
// session, replays the journal of suspended-window writes, and continues
// the bulk copy from the watermark — or goes straight back to
// HandoverCopied when the copy had already finished.
func (n *Node) HandoverResume() error {
	if n.dial == nil {
		return errors.New("cluster: node has no peer dialer")
	}
	n.mu.RLock()
	ho := n.ho
	var state uint8
	if ho != nil {
		state = ho.state
	}
	n.mu.RUnlock()
	if ho == nil {
		return errors.New("cluster: no handover to resume")
	}
	if state != HandoverFailed {
		return fmt.Errorf("cluster: handover is %s; only a suspended handover resumes", handoverStateName(state))
	}
	peer, err := n.dial(ho.addr)
	if err != nil {
		return fmt.Errorf("cluster: redialing handover target %s: %w", ho.addr, err)
	}
	fresh, _, err := peer.ImportResume(ho.lo, ho.hi)
	if err != nil {
		peer.Close()
		return fmt.Errorf("cluster: reattaching import session on %s: %w", ho.addr, err)
	}
	stop := make(chan struct{})
	n.hmu.Lock()
	n.mu.Lock()
	if n.ho != ho || ho.state != HandoverFailed {
		n.mu.Unlock()
		n.hmu.Unlock()
		peer.Close()
		return errors.New("cluster: handover changed during resume")
	}
	ho.peer, ho.stop, ho.failCause = peer, stop, nil
	if fresh {
		// The target lost the session (restart): it starts empty, so the
		// journal is subsumed by a full recopy of current local state.
		ho.watermark.Store(ho.lo)
		ho.copied.Store(0)
		ho.copyDone.Store(false)
		ho.pending = nil
	}
	n.mu.Unlock()
	// Replay the suspended-window journal under hmu (writers queue behind
	// it): mirrors overwrite and maintain tombstones, so replay before the
	// bulk copy resumes makes the target converge to every acked write.
	for k, op := range ho.pending {
		err := n.retryPeer(ho, stop, true, func() error { return peer.Mirror(op.del, k, op.val) })
		if err != nil {
			n.mu.Lock()
			ho.state = HandoverCopying // let suspend see a live run
			n.mu.Unlock()
			n.suspendHandoverLocked(ho, fmt.Errorf("replaying journal to %s: %w", ho.addr, err))
			n.hmu.Unlock()
			return fmt.Errorf("cluster: resume of [%#x, %#x] failed replaying journal: %w", ho.lo, ho.hi, err)
		}
		delete(ho.pending, k)
		ho.mirrored.Add(1)
	}
	copyDone := ho.copyDone.Load()
	n.mu.Lock()
	if copyDone {
		ho.state = HandoverCopied
	} else {
		ho.state = HandoverCopying
	}
	ho.resumes.Add(1)
	n.mu.Unlock()
	n.hmu.Unlock()
	if n.events.Resumed != nil {
		n.events.Resumed()
	}
	if !copyDone {
		go n.runCopy(ho, peer, stop)
	}
	n.logErr("cluster: handover of [%#x, %#x] resumed (fresh=%v, watermark %#x)", ho.lo, ho.hi, fresh, ho.watermark.Load())
	return nil
}

// HandoverAbort abandons the node's handover entirely: the run stops, the
// target is told (best effort) to scrub its partial import, and the
// node's handover slot clears so a new StartHandover can begin.
func (n *Node) HandoverAbort() error {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	ho := n.ho
	if ho == nil {
		n.mu.Unlock()
		return errors.New("cluster: no handover to abort")
	}
	if ho.state == HandoverDone {
		n.mu.Unlock()
		return errors.New("cluster: handover already completed; nothing to abort")
	}
	live := ho.state == HandoverCopying || ho.state == HandoverCopied
	if live {
		close(ho.stop)
	}
	ho.state = HandoverFailed
	peer := ho.peer
	n.ho = nil
	n.mu.Unlock()
	n.logErr("cluster: handover of [%#x, %#x] aborted", ho.lo, ho.hi)
	if live {
		if err := peer.ImportEnd(false); err != nil {
			n.logErr("cluster: import-end abort to %s: %v", ho.addr, err)
		}
		peer.Close()
		return nil
	}
	// Suspended: the old peer is already closed. Redial (best effort) so
	// the target scrubs the orphaned session instead of blocking future
	// imports.
	if n.dial != nil {
		if p, err := n.dial(ho.addr); err == nil {
			if err := p.ImportEnd(false); err != nil {
				n.logErr("cluster: import-end abort to %s: %v", ho.addr, err)
			}
			p.Close()
		} else {
			n.logErr("cluster: abort could not reach %s to scrub its import: %v", ho.addr, err)
		}
	}
	return nil
}

// Close stops any running copy and tears down the handover peer,
// aborting the target's import session — a closing node cannot resume.
func (n *Node) Close() error {
	// Drain background de-own scrubs first (they take hmu themselves), so
	// nothing touches the index after Close returns.
	n.scrubs.Wait()
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	ho := n.ho
	live := ho != nil && (ho.state == HandoverCopying || ho.state == HandoverCopied)
	if live {
		ho.state = HandoverFailed
		ho.failCause = errors.New("node closing")
		close(ho.stop)
	}
	n.mu.Unlock()
	if live {
		n.logErr("cluster: handover of [%#x, %#x] failed: node closing", ho.lo, ho.hi)
		if err := ho.peer.ImportEnd(false); err != nil {
			n.logErr("cluster: import-end abort to %s: %v", ho.addr, err)
		}
		if err := ho.peer.Close(); err != nil {
			n.logErr("cluster: closing peer %s: %v", ho.addr, err)
		}
	}
	return nil
}

// --- handover: target side --------------------------------------------------

// ImportStart opens an import session for [lo, hi], which must be disjoint
// from the owned range (a handover moves keys this node does not have).
func (n *Node) ImportStart(lo, hi uint64) error {
	if lo > hi {
		return fmt.Errorf("cluster: import range inverted [%#x, %#x]", lo, hi)
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.imp != nil {
		return fmt.Errorf("cluster: import of [%#x, %#x] already in progress", n.imp.lo, n.imp.hi)
	}
	if n.lo <= n.hi && lo <= n.hi && hi >= n.lo {
		return fmt.Errorf("cluster: import range [%#x, %#x] overlaps owned [%#x, %#x]", lo, hi, n.lo, n.hi)
	}
	n.imp = &importSession{lo: lo, hi: hi, tombs: make(map[uint64]struct{})}
	return nil
}

// ImportResume reattaches a handover source to this node's import
// session after the peer link dropped. A session for exactly [lo, hi]
// answers fresh=false with its progress; no session at all (this node
// restarted and lost it) opens a new one and answers fresh=true, telling
// the source to recopy from the start. A session for a different range is
// an error.
func (n *Node) ImportResume(lo, hi uint64) (fresh bool, applied uint64, err error) {
	if lo > hi {
		return false, 0, fmt.Errorf("cluster: import range inverted [%#x, %#x]", lo, hi)
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if imp := n.imp; imp != nil {
		if imp.lo == lo && imp.hi == hi {
			return false, imp.applied, nil
		}
		return false, 0, fmt.Errorf("cluster: import of [%#x, %#x] already in progress", imp.lo, imp.hi)
	}
	if n.lo <= n.hi && lo <= n.hi && hi >= n.lo {
		return false, 0, fmt.Errorf("cluster: import range [%#x, %#x] overlaps owned [%#x, %#x]", lo, hi, n.lo, n.hi)
	}
	n.imp = &importSession{lo: lo, hi: hi, tombs: make(map[uint64]struct{})}
	return true, 0, nil
}

// ImportBatch applies one bulk page: insert-if-absent, skipping
// tombstoned keys, so pages racing mirrored writes can never clobber a
// newer value or resurrect a deleted key.
func (n *Node) ImportBatch(keys, vals []uint64) (uint64, error) {
	if len(keys) != len(vals) {
		return 0, fmt.Errorf("cluster: import batch keys/vals length mismatch (%d vs %d)", len(keys), len(vals))
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.RLock()
	imp := n.imp
	n.mu.RUnlock()
	if imp == nil {
		return 0, errors.New("cluster: no import session")
	}
	var applied uint64
	for i, k := range keys {
		if k < imp.lo || k > imp.hi {
			return applied, fmt.Errorf("cluster: import key %#x outside session [%#x, %#x]", k, imp.lo, imp.hi)
		}
		if _, dead := imp.tombs[k]; dead {
			continue
		}
		if _, ok := n.idx.Get(k); ok {
			continue
		}
		n.idx.Insert(k, vals[i])
		applied++
	}
	imp.applied += applied
	return applied, nil
}

// ImportEnd closes the import session. commit keeps the imported data
// (the range is about to be owned via SetMap); abort scrubs it. A missing
// session is a no-op: SetMap may already have adopted it.
func (n *Node) ImportEnd(commit bool) error {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	imp := n.imp
	n.imp = nil
	n.mu.Unlock()
	if imp == nil {
		return nil
	}
	if !commit {
		n.scrub(imp.lo, imp.hi)
	}
	return nil
}

// MirrorApply applies one double-written op from a handover source: into
// the import session when one covers the key (maintaining tombstones), or
// directly when this node already owns the key (a mirror that raced the
// cutover). Anything else is a protocol error.
func (n *Node) MirrorApply(del bool, key, val uint64) error {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.RLock()
	imp := n.imp
	owned := n.ownsLocked(key)
	n.mu.RUnlock()
	if imp != nil && key >= imp.lo && key <= imp.hi {
		if del {
			n.idx.Delete(key)
			imp.tombs[key] = struct{}{}
		} else {
			n.idx.Insert(key, val)
			delete(imp.tombs, key)
		}
		return nil
	}
	if owned {
		if del {
			n.idx.Delete(key)
		} else {
			n.idx.Insert(key, val)
		}
		return nil
	}
	return fmt.Errorf("%w: mirrored key %#x has no import session and is not owned", ErrWrongShard, key)
}

// Len is the local index size. During a handover it double-counts the
// moving range (present on source and target); Cluster.Len documents the
// approximation.
func (n *Node) Len() int { return n.idx.Len() }
