package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"dytis/internal/core"
	"dytis/internal/datasets"
	"dytis/internal/workload"
)

func TestWriteCSVRoundTrips(t *testing.T) {
	keys := datasets.ReviewM.Gen(5000, 1)
	results := []Result{
		Run(Config{Factory: DyTIS(core.Options{}), Dataset: "RM", Keys: keys, Kind: workload.C, Ops: 1000}),
		{Index: "EH", Dataset: "RM", Kind: workload.E, Unsupported: true},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0][0] != "index" || len(rows[0]) != 12 {
		t.Fatalf("header: %v", rows[0])
	}
	if rows[1][0] != "DyTIS" || rows[1][1] != "RM" || rows[1][2] != "C" {
		t.Fatalf("data row: %v", rows[1])
	}
	if !strings.Contains(rows[2][11], "true") {
		t.Fatalf("unsupported flag missing: %v", rows[2])
	}
}
