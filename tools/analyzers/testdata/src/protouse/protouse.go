// Package protouse consumes protodef's protocol: its switches are checked
// against the constant tables protodef exports as package facts, the way
// client and internal/server switches are checked against internal/proto.
package protouse

import "protodef"

// route misses the response-only opcode, which the responses set requires.
func route(op protodef.Opcode) int {
	//dytis:opswitch responses
	switch op { // want `protocol switch \(responses\) does not handle OpScanChunk`
	case protodef.OpPing:
		return 1
	case protodef.OpGet:
		return 2
	}
	return 0
}

// dispatch covers the requests set exactly; response-only opcodes are not
// required.
func dispatch(op protodef.Opcode) int {
	//dytis:opswitch requests
	switch op {
	case protodef.OpPing:
		return 1
	case protodef.OpGet:
		return 2
	}
	return 0
}

// Grouped switches union their coverage: between them, serveControl and
// serveData handle every request opcode, so neither is flagged alone.
func serveControl(op protodef.Opcode) int {
	//dytis:opswitch requests group=serve
	switch op {
	case protodef.OpPing:
		return 1
	}
	return 0
}

func serveData(op protodef.Opcode) int {
	//dytis:opswitch requests group=serve
	switch op {
	case protodef.OpGet:
		return 2
	}
	return 0
}

var (
	_ = route
	_ = dispatch
	_ = serveControl
	_ = serveData
)
