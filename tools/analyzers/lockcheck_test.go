package analyzers

import "testing"

func TestLockCheck(t *testing.T) {
	runAnalyzerTest(t, LockCheck, "a")
}
