// Quickstart: the basic DyTIS API — insert, search, update, scan, delete —
// and the structure statistics that show the index learning the key
// distribution as data arrives (no bulk-load training phase).
package main

import (
	"fmt"

	"dytis"
)

func main() {
	idx := dytis.New()

	// Insert a skewed little dataset: three dense ID clusters, the shape
	// that breaks plain hash directories and untrained learned indexes.
	clusters := []uint64{1 << 20, 1 << 40, 1 << 60}
	for _, base := range clusters {
		for i := uint64(0); i < 50_000; i++ {
			idx.Insert(base+i, i)
		}
	}
	fmt.Printf("inserted %d keys\n", idx.Len())

	// Point lookups.
	if v, ok := idx.Get(1<<40 + 7); ok {
		fmt.Printf("Get(2^40+7) = %d\n", v)
	}
	if _, ok := idx.Get(42); !ok {
		fmt.Println("Get(42) -> not found (as expected)")
	}

	// In-place update (inserts are upserts).
	idx.Insert(1<<20+1, 999)
	v, _ := idx.Get(1<<20 + 1)
	fmt.Printf("after update: %d\n", v)

	// Range scan: first five pairs at or after 2^60.
	for _, p := range idx.Scan(1<<60, 5, nil) {
		fmt.Printf("scan -> key=%d value=%d\n", p.Key, p.Value)
	}

	// Ordered iteration over a bounded range.
	count := 0
	idx.Range(1<<20, 1<<20+10, func(k, v uint64) bool {
		count++
		return true
	})
	fmt.Printf("keys in [2^20, 2^20+10]: %d\n", count)

	// Delete.
	idx.Delete(1<<20 + 1)
	if _, ok := idx.Get(1<<20 + 1); !ok {
		fmt.Println("deleted 2^20+1")
	}

	// The structure adapted to the skew with remapping/expansion rather
	// than unbounded directory growth.
	st := idx.Stats()
	fmt.Printf("structure: %d segments, %d buckets, %d splits, %d remaps, %d expansions, %d doublings\n",
		st.Segments, st.Buckets, st.Splits, st.Remaps, st.Expansions, st.Doublings)
}
