package client_test

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/proto"
)

// This file tests the client against a hostile or dying server: response
// frames with lying length prefixes, operations after Close, and the
// circuit breaker's open/half-open/closed cycle. The contract is the same
// fail-closed one the server chaos suite enforces: a hostile frame may fail
// the request and quarantine the connection, but it must never panic the
// client, hang a caller, or route a response to the wrong waiter.

// fakeServer accepts connections on a loopback listener and hands each to
// script, which speaks raw proto frames. Stop with close().
type fakeServer struct {
	ln net.Listener
	wg sync.WaitGroup
}

func newFakeServer(t *testing.T, script func(conn net.Conn)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln}
	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			fs.wg.Add(1)
			go func() {
				defer fs.wg.Done()
				defer nc.Close()
				script(nc)
			}()
		}
	}()
	t.Cleanup(fs.close)
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) close() {
	fs.ln.Close()
	fs.wg.Wait()
}

// readRequest decodes one request frame from br, failing the conn silently
// on error (the client closed it).
func readRequest(br *bufio.Reader) (*proto.Request, error) {
	body, _, err := proto.ReadFrame(br, nil)
	if err != nil {
		return nil, err
	}
	req := new(proto.Request)
	if err := proto.DecodeRequest(body, req); err != nil {
		return nil, err
	}
	return req, nil
}

func okResponse(t *testing.T, req *proto.Request) []byte {
	t.Helper()
	resp := &proto.Response{ID: req.ID, Op: req.Op}
	if req.Op == proto.OpGet {
		resp.Val, resp.Found = req.Key, true // echo: the key IS the value
	}
	frame, err := proto.AppendResponse(nil, resp)
	if err != nil {
		t.Errorf("encode response: %v", err)
	}
	return frame
}

// hostileOpts makes redials immediate so the test exercises quarantine +
// replace, not backoff timing.
func hostileOpts() []client.Option {
	return []client.Option{
		client.WithPoolSize(1),
		client.WithV1Protocol(), // fake servers speak raw v1, no handshake
		client.WithReconnect(2, time.Millisecond, 2*time.Millisecond),
		client.WithCircuitBreaker(0, 0),
	}
}

// TestHostileTruncatedResponse: the server's frame promises more bytes than
// it delivers before closing. The in-flight request must fail with an
// error, the connection must be quarantined, and the next operation must
// succeed over a fresh connection.
func TestHostileTruncatedResponse(t *testing.T) {
	var lied sync.Once
	fs := newFakeServer(t, func(nc net.Conn) {
		br := bufio.NewReader(nc)
		for {
			req, err := readRequest(br)
			if err != nil {
				return
			}
			hostile := false
			lied.Do(func() { hostile = true })
			if !hostile {
				nc.Write(okResponse(t, req))
				continue
			}
			// A healthy header for a 64-byte body, then only 10 bytes.
			frame := okResponse(t, req)
			frame[0], frame[1], frame[2], frame[3] = 0, 0, 0, 64
			nc.Write(frame[:4+10])
			return // close with the body short
		}
	})

	c, err := client.Dial(fs.addr(), hostileOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, _, err := c.Get(ctx, 7); err == nil {
		t.Fatal("Get served from a truncated frame succeeded")
	} else if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Get = %v, want io.ErrUnexpectedEOF in the chain", err)
	}
	// Quarantined and replaced: the next op runs on a fresh, honest conn.
	if v, ok, err := c.Get(ctx, 9); err != nil || !ok || v != 9 {
		t.Fatalf("Get after quarantine = %d,%v,%v want 9,true,nil", v, ok, err)
	}
}

// TestHostileOversizeLengthPrefix: a length prefix beyond MaxFrame must be
// rejected before any allocation, fail the conn, and leave the client
// usable.
func TestHostileOversizeLengthPrefix(t *testing.T) {
	var lied sync.Once
	fs := newFakeServer(t, func(nc net.Conn) {
		br := bufio.NewReader(nc)
		for {
			req, err := readRequest(br)
			if err != nil {
				return
			}
			hostile := false
			lied.Do(func() { hostile = true })
			if !hostile {
				nc.Write(okResponse(t, req))
				continue
			}
			nc.Write([]byte{0x7f, 0xff, 0xff, 0xff}) // 2GiB frame, says the peer
			return
		}
	})

	c, err := client.Dial(fs.addr(), hostileOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, _, err := c.Get(ctx, 7); err == nil {
		t.Fatal("Get served from an oversize frame succeeded")
	} else if !errors.Is(err, proto.ErrFrameTooLarge) {
		t.Fatalf("Get = %v, want proto.ErrFrameTooLarge in the chain", err)
	}
	if v, ok, err := c.Get(ctx, 9); err != nil || !ok || v != 9 {
		t.Fatalf("Get after quarantine = %d,%v,%v want 9,true,nil", v, ok, err)
	}
}

// TestHostileFrameNoMisroute pipelines many concurrent Gets into a server
// that answers some honestly and then lies. Every caller must get either
// its own answer (the echoed key) or an error — never another request's
// value, no matter how the lying frame lands.
func TestHostileFrameNoMisroute(t *testing.T) {
	const workers = 8
	var served sync.Map // id -> struct{}: requests answered honestly
	var count int
	var mu sync.Mutex
	fs := newFakeServer(t, func(nc net.Conn) {
		br := bufio.NewReader(nc)
		for {
			req, err := readRequest(br)
			if err != nil {
				return
			}
			mu.Lock()
			count++
			lie := count%3 == 0 // every third request gets a lying frame
			mu.Unlock()
			if !lie {
				served.Store(req.ID, struct{}{})
				nc.Write(okResponse(t, req))
				continue
			}
			// Truncated lie: header for 32 bytes, only 5 delivered, close.
			nc.Write([]byte{0, 0, 0, 32, 1, 2, 3, 4, 5})
			return
		}
	})

	c, err := client.Dial(fs.addr(),
		client.WithPoolSize(1),
		client.WithV1Protocol(),
		client.WithPipeline(workers),
		client.WithReconnect(4, time.Millisecond, 2*time.Millisecond),
		client.WithCircuitBreaker(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := uint64(w)<<32 | uint64(i) | 1
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				v, ok, err := c.Get(ctx, key)
				cancel()
				if err != nil {
					continue // fail-closed: errors are always acceptable
				}
				if !ok || v != key {
					t.Errorf("worker %d: Get(%#x) = %#x,%v — another request's answer", w, key, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestClientClosedTyped: after Close, every entry point fails with an error
// matching ErrClientClosed — including an operation already in flight when
// Close runs.
func TestClientClosedTyped(t *testing.T) {
	// A server that reads requests but never answers: the in-flight op can
	// only end through Close.
	fs := newFakeServer(t, func(nc net.Conn) {
		io.Copy(io.Discard, nc)
	})
	c, err := client.Dial(fs.addr(), client.WithPoolSize(1), client.WithV1Protocol())
	if err != nil {
		t.Fatal(err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, _, err := c.Get(context.Background(), 1)
		inflight <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the wire
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-inflight:
		if !errors.Is(err, client.ErrClientClosed) {
			t.Fatalf("in-flight op after Close = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight op hung across Close")
	}

	ctx := context.Background()
	checks := map[string]error{}
	_, _, err = c.Get(ctx, 1)
	checks["Get"] = err
	checks["Insert"] = c.Insert(ctx, 1, 2)
	_, err = c.Delete(ctx, 1)
	checks["Delete"] = err
	checks["Ping"] = c.Ping(ctx)
	_, _, err = c.Scan(ctx, 0, 10)
	checks["Scan"] = err
	_, _, err = c.GetBatch(ctx, []uint64{1})
	checks["GetBatch"] = err
	checks["InsertBatch"] = c.InsertBatch(ctx, []uint64{1}, []uint64{2})
	_, err = c.DeleteBatch(ctx, []uint64{1})
	checks["DeleteBatch"] = err
	_, err = c.Len(ctx)
	checks["Len"] = err
	for op, err := range checks {
		if !errors.Is(err, client.ErrClientClosed) {
			t.Errorf("%s after Close = %v, want ErrClientClosed", op, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCircuitBreaker walks the breaker through its whole cycle: trips open
// on consecutive connection failures, fails fast while open, re-opens on a
// failed half-open probe, and closes again once a probe succeeds.
func TestCircuitBreaker(t *testing.T) {
	idx := newIndex()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop := serveOn(t, idx, ln)

	const trips = 3
	cooldown := 200 * time.Millisecond
	c, err := client.Dial(addr,
		client.WithPoolSize(1),
		client.WithReconnect(1, time.Millisecond, 2*time.Millisecond),
		client.WithCircuitBreaker(trips, cooldown))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the server; each failed op counts one trip.
	stop()
	for i := 0; i < trips; i++ {
		if err := c.Ping(ctx); err == nil {
			t.Fatalf("Ping %d with server down succeeded", i)
		} else if errors.Is(err, client.ErrCircuitOpen) {
			t.Fatalf("breaker opened after %d failures, want %d", i, trips)
		}
	}
	if err := c.Ping(ctx); !errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("Ping after %d failures = %v, want ErrCircuitOpen", trips, err)
	}

	// Cooldown elapses, the half-open probe fails (server still down), and
	// the breaker snaps shut again without admitting a second op.
	time.Sleep(cooldown + 50*time.Millisecond)
	if err := c.Ping(ctx); err == nil || errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("half-open probe = %v, want a connection error", err)
	}
	if err := c.Ping(ctx); !errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("Ping after failed probe = %v, want ErrCircuitOpen", err)
	}

	// Server returns on the same address; after the cooldown the probe
	// succeeds and the breaker closes for good.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	stop2 := serveOn(t, idx, ln2)
	defer stop2()
	time.Sleep(cooldown + 50*time.Millisecond)
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("probe with server back = %v, want success", err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Ping(ctx); err != nil {
			t.Fatalf("Ping %d after breaker closed: %v", i, err)
		}
	}
	requireSound(t, idx)
}
