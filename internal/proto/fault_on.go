//go:build dytisfault

package proto

import "sync/atomic"

// FrameFault, when non-nil under the dytisfault build tag, is invoked with
// every frame body read by ReadBody/ReadFrame, after framing and before
// decoding. The hook may corrupt the body in place; it must not grow it.
// Set it with SetFrameFault.
//
// This is the internal/proto injection point of the fault framework: it
// models memory- or middlebox-level corruption that slips past TCP
// checksums, and proves the decoders (not just the framer) fail closed on
// damaged-but-well-delimited input.
var frameFault atomic.Pointer[func(body []byte)]

// SetFrameFault installs (or with nil, clears) the frame corruption hook.
func SetFrameFault(fn func(body []byte)) {
	if fn == nil {
		frameFault.Store(nil)
		return
	}
	frameFault.Store(&fn)
}

func hookFrame(body []byte) {
	if fn := frameFault.Load(); fn != nil {
		(*fn)(body)
	}
}
