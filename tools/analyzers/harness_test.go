package analyzers

// A minimal analysistest-style harness: load testdata/src/<dir>, typecheck
// it with the source importer (stdlib-only environment), run one analyzer,
// and compare its diagnostics against `// want "regexp"` comments. Every
// want must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by a want.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

type wantLine struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func runAnalyzerTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	src := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(src, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", src)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(dir, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}

	wants := collectWants(t, fset, files)
	var diags []Diagnostic
	pass := &Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

var wantRE = regexp.MustCompile(`// want (".*"|` + "`.*`" + `)\s*$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantLine {
	t.Helper()
	var out []*wantLine
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				m := wantRE.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				raw := m[1]
				var pat string
				if raw[0] == '`' {
					pat = raw[1 : len(raw)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("bad want at %s: %v", fset.Position(cm.Pos()), err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp at %s: %v", fset.Position(cm.Pos()), err)
				}
				pos := fset.Position(cm.Pos())
				out = append(out, &wantLine{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
