// Command dytis-bench regenerates the tables and figures of the DyTIS
// paper's evaluation (§4) on the synthetic dataset suite. Each experiment
// prints the same rows/series the paper reports; see EXPERIMENTS.md for the
// experiment index and the paper-vs-measured record.
//
// Usage:
//
//	dytis-bench -exp fig8 [-scale 0.001] [-ops N] [-datasets MM,TX] [-seed 1]
//
// Experiments: table1, fig8, fig9, fig10, fig11, fig12, table2, mem,
// params, breakdown, ablation, pgmcmp, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dytis/internal/bench"
	"dytis/internal/core"
	"dytis/internal/datasets"
	"dytis/internal/metrics"
	"dytis/internal/workload"
)

var (
	expFlag      = flag.String("exp", "fig8", "experiment: table1|fig8|fig9|fig10|fig11|fig12|table2|mem|params|breakdown|ablation|pgmcmp|net|netscan|recover|cluster|all")
	scaleFlag    = flag.Float64("scale", 0.001, "dataset scale relative to the paper (1.0 = paper size)")
	opsFlag      = flag.Int("ops", 0, "measured ops per workload (0 = half the dataset)")
	seedFlag     = flag.Int64("seed", 1, "dataset + workload seed")
	datasetsFlag = flag.String("datasets", "", "comma-separated dataset filter (default: all of MM,ML,RM,RL,TX)")
	csvFlag      = flag.String("csv", "", "also write per-cell results as CSV to this file (fig8/fig9/table2)")
)

// csvResults accumulates cells for the -csv output.
var csvResults []bench.Result

func record(r bench.Result) bench.Result {
	if *csvFlag != "" {
		csvResults = append(csvResults, r)
	}
	return r
}

func flushCSV() {
	if *csvFlag == "" || len(csvResults) == 0 {
		return
	}
	f, err := os.Create(*csvFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	if err := bench.WriteCSV(f, csvResults); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
	}
}

func main() {
	flag.Parse()
	exps := map[string]func(){
		"table1": table1, "fig8": fig8, "fig9": fig9, "fig10": fig10,
		"fig11": fig11, "fig12": fig12, "table2": table2, "mem": memExp,
		"params": params, "breakdown": breakdown, "ablation": ablation,
		"pgmcmp": pgmcmp, "net": netExp, "netscan": netScanExp,
		"recover": recoverExp, "cluster": clusterExp,
	}
	if *expFlag == "all" {
		for _, name := range []string{"table1", "fig8", "fig9", "fig10", "fig11",
			"fig12", "table2", "mem", "params", "breakdown", "ablation"} {
			fmt.Printf("\n========== %s ==========\n", name)
			exps[name]()
		}
		fmt.Printf("\n========== pgmcmp ==========\n")
		pgmcmp()
		flushCSV()
		return
	}
	run, ok := exps[*expFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	run()
	flushCSV()
}

// group1 returns the (possibly filtered) dynamic dataset suite.
func group1() []datasets.Spec {
	if *datasetsFlag == "" {
		return datasets.Group1
	}
	var out []datasets.Spec
	for _, name := range strings.Split(*datasetsFlag, ",") {
		s, ok := datasets.ByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", name)
			os.Exit(2)
		}
		out = append(out, s)
	}
	return out
}

var keyCache = map[string][]uint64{}

func keysOf(s datasets.Spec) []uint64 {
	if k, ok := keyCache[s.Name]; ok {
		return k
	}
	k := s.Gen(s.Count(*scaleFlag), *seedFlag)
	keyCache[s.Name] = k
	return k
}

func runCell(f bench.Factory, s datasets.Spec, kind workload.Kind, bulk float64, threads int) bench.Result {
	return record(bench.Run(bench.Config{
		Factory: f, Dataset: s.Name, Keys: keysOf(s), Kind: kind,
		Ops: *opsFlag, BulkFrac: bulk, Threads: threads, Seed: *seedFlag,
	}))
}

// fig8Indexes are the paper's Figure-8 contenders with their bulk fractions.
func fig8Indexes(concurrent bool) []struct {
	f    bench.Factory
	bulk float64
} {
	return []struct {
		f    bench.Factory
		bulk float64
	}{
		{bench.DyTIS(core.Options{Concurrent: concurrent}), 0},
		{bench.ALEX("ALEX-10"), 0.1},
		{bench.ALEX("ALEX-70"), 0.7},
		{bench.XIndex(concurrent), 0.7},
		{bench.BTree(), 0},
	}
}

// table1 prints the dataset inventory of Table 1 with measured dynamic
// characteristics (the quantities behind Figure 1's classification).
func table1() {
	fmt.Println("Table 1: datasets (scaled; classes from the paper, metrics measured)")
	fmt.Printf("%-6s %-28s %10s %14s %9s %8s %8s\n",
		"name", "description", "keys", "keyrange", "size", "skewVar", "KDD")
	chunk := chunkFor()
	for _, s := range datasets.Group1 {
		keys := keysOf(s)
		sv := metrics.SkewnessVariance(keys, chunk)
		kd := metrics.KDD(keys, chunk)
		fmt.Printf("%-6s %-28s %10d %14.3g %8.1fMB %8.2f %8.4f  (paper class: skew=%c kdd=%c)\n",
			s.Name, s.Desc, len(keys), float64(datasets.KeyRangeSize(keys)),
			float64(len(keys)*16)/1e6, sv, kd, s.Skew, s.KDD)
	}
}

// chunkFor scales the paper's 0.1M-key metric chunk with the dataset scale.
func chunkFor() int {
	c := int(100000 * *scaleFlag * 100) // 0.1M at scale 0.001 -> 10k chunks
	if c < 2000 {
		c = 2000
	}
	return c
}

// fig8 reproduces Figure 8: throughput of the seven YCSB-style workloads for
// the five indexes over the five dynamic datasets.
func fig8() {
	fmt.Println("Figure 8: YCSB-style workload throughput (Mops/s)")
	for _, kind := range workload.Kinds {
		fmt.Printf("\n--- workload %s ---\n", kind)
		fmt.Printf("%-10s", "index")
		for _, s := range group1() {
			fmt.Printf("%10s", s.Name)
		}
		fmt.Println()
		for _, ix := range fig8Indexes(false) {
			fmt.Printf("%-10s", ix.f.Name)
			for _, s := range group1() {
				r := runCell(ix.f, s, kind, ix.bulk, 1)
				if r.Unsupported {
					fmt.Printf("%10s", "n/a")
				} else {
					fmt.Printf("%10.3f", r.MopsPerSec())
				}
			}
			fmt.Println()
		}
	}
}

// fig9 reproduces Figure 9: DyTIS vs CCEH vs classic EH on insertion and
// search.
func fig9() {
	fmt.Println("Figure 9: DyTIS vs CCEH vs EH (Mops/s)")
	for _, phase := range []workload.Kind{workload.Load, workload.C} {
		label := "Insertion"
		if phase == workload.C {
			label = "Search"
		}
		fmt.Printf("\n--- %s ---\n", label)
		fmt.Printf("%-8s", "index")
		for _, s := range group1() {
			fmt.Printf("%10s", s.Name)
		}
		fmt.Println()
		for _, f := range []bench.Factory{bench.DyTIS(core.Options{}), bench.CCEH(), bench.EH()} {
			fmt.Printf("%-8s", f.Name)
			for _, s := range group1() {
				r := runCell(f, s, phase, 0, 1)
				fmt.Printf("%10.3f", r.MopsPerSec())
			}
			fmt.Println()
		}
	}
}

// fig10 reproduces Figure 10: ALEX throughput over bulk-loading percentages,
// normalized to ALEX-10.
func fig10() {
	fmt.Println("Figure 10: ALEX bulk-loading sweep (throughput normalized to ALEX-10)")
	fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	for _, s := range group1() {
		fmt.Printf("\n--- %s ---\n", s.Name)
		fmt.Printf("%-8s", "bulk%")
		for _, kind := range workload.Kinds {
			fmt.Printf("%8s", kind)
		}
		fmt.Println()
		base := make(map[workload.Kind]float64)
		for _, frac := range fracs {
			fmt.Printf("%-8.0f", frac*100)
			for _, kind := range workload.Kinds {
				name := fmt.Sprintf("ALEX-%d", int(frac*100))
				r := runCell(bench.ALEX(name), s, kind, frac, 1)
				m := r.MopsPerSec()
				if frac == 0.1 {
					base[kind] = m
					fmt.Printf("%8.2f", 1.0)
				} else if base[kind] > 0 {
					fmt.Printf("%8.2f", m/base[kind])
				} else {
					fmt.Printf("%8s", "-")
				}
			}
			fmt.Println()
		}
	}
}

// fig11 reproduces Figure 11: the influence of KDD (original vs shuffled
// insertion order) and of skewness (shuffled vs Uniform) on insert/search.
func fig11() {
	fmt.Println("Figure 11a: KDD effect — original / shuffled throughput")
	indexes := []struct {
		f    bench.Factory
		bulk float64
	}{
		{bench.DyTIS(core.Options{}), 0},
		{bench.ALEX("ALEX-10"), 0.1},
		{bench.BTree(), 0},
	}
	fmt.Printf("%-10s %-6s %12s %12s\n", "index", "data", "insert", "search")
	for _, s := range group1() {
		shuf := datasets.Shuffled(s)
		for _, ix := range indexes {
			var ratio [2]float64
			for pi, kind := range []workload.Kind{workload.Load, workload.C} {
				orig := runCell(ix.f, s, kind, ix.bulk, 1).MopsPerSec()
				keyCache[shuf.Name] = shuf.Gen(s.Count(*scaleFlag), *seedFlag)
				sh := runCell(ix.f, shuf, kind, ix.bulk, 1).MopsPerSec()
				if sh > 0 {
					ratio[pi] = orig / sh
				}
			}
			fmt.Printf("%-10s %-6s %12.2f %12.2f\n", ix.f.Name, s.Name, ratio[0], ratio[1])
		}
	}

	fmt.Println("\nFigure 11b: skewness effect — shuffled / uniform throughput")
	fmt.Printf("%-10s %-6s %12s %12s\n", "index", "data", "insert", "search")
	for _, s := range group1() {
		shuf := datasets.Shuffled(s)
		n := s.Count(*scaleFlag)
		keyCache[shuf.Name] = shuf.Gen(n, *seedFlag)
		uni := datasets.Spec{Name: "U-" + s.Name, PaperMKeys: s.PaperMKeys,
			Gen: datasets.Uniform.Gen}
		keyCache[uni.Name] = uni.Gen(n, *seedFlag)
		for _, ix := range indexes {
			var ratio [2]float64
			for pi, kind := range []workload.Kind{workload.Load, workload.C} {
				sh := runCell(ix.f, shuf, kind, ix.bulk, 1).MopsPerSec()
				un := runCell(ix.f, uni, kind, ix.bulk, 1).MopsPerSec()
				if un > 0 {
					ratio[pi] = sh / un
				}
			}
			fmt.Printf("%-10s %-6s %12.2f %12.2f\n", ix.f.Name, s.Name, ratio[0], ratio[1])
		}
	}
}

// fig12 reproduces Figure 12: DyTIS vs XIndex thread scaling on RL and TX
// for insertion, search, and scan-100.
func fig12() {
	fmt.Println("Figure 12: thread scaling (Mops/s)")
	threadCounts := []int{1, 2, 4, 8}
	for _, name := range []string{"RL", "TX"} {
		s, _ := datasets.ByName(name)
		fmt.Printf("\n--- %s ---\n", s.Name)
		fmt.Printf("%-8s %-10s", "threads", "index")
		for _, op := range []string{"insert", "search", "scan100"} {
			fmt.Printf("%10s", op)
		}
		fmt.Println()
		for _, th := range threadCounts {
			for _, ix := range []struct {
				f    bench.Factory
				bulk float64
			}{
				{bench.DyTIS(core.Options{Concurrent: true}), 0},
				{bench.XIndex(true), 0.7},
			} {
				fmt.Printf("%-8d %-10s", th, ix.f.Name)
				for _, kind := range []workload.Kind{workload.Load, workload.C, workload.E} {
					r := runCell(ix.f, s, kind, ix.bulk, th)
					fmt.Printf("%10.3f", r.MopsPerSec())
				}
				fmt.Println()
			}
		}
	}
}

// table2 reproduces Table 2: average, p99, and p99.99 latency for Load and
// workload A.
func table2() {
	fmt.Println("Table 2: avg / p99 / p99.99 latency (ns)")
	for _, kind := range []workload.Kind{workload.Load, workload.A} {
		fmt.Printf("\n--- %s ---\n", kind)
		fmt.Printf("%-6s", "data")
		for _, ix := range fig8Indexes(false) {
			fmt.Printf("%26s", ix.f.Name)
		}
		fmt.Println()
		for _, s := range group1() {
			fmt.Printf("%-6s", s.Name)
			for _, ix := range fig8Indexes(false) {
				r := runCell(ix.f, s, kind, ix.bulk, 1)
				fmt.Printf("  %7d/%7d/%8d",
					r.Hist.Mean().Nanoseconds(),
					r.Hist.Quantile(0.99).Nanoseconds(),
					r.Hist.Quantile(0.9999).Nanoseconds())
			}
			fmt.Println()
		}
	}
}

// memExp reproduces the §4.3 memory-usage comparison after a Load.
func memExp() {
	fmt.Println("Memory usage after Load (structure footprint estimate + heap growth)")
	fmt.Printf("%-10s %-6s %14s %14s\n", "index", "data", "footprintMB", "heapMB")
	for _, s := range group1() {
		for _, ix := range fig8Indexes(false) {
			r := runCell(ix.f, s, workload.Load, ix.bulk, 1)
			fmt.Printf("%-10s %-6s %14.2f %14.2f\n", ix.f.Name, s.Name,
				float64(r.FootprintBytes)/1e6, float64(r.HeapBytes)/1e6)
		}
	}
}

// params reproduces the §4.3 parameter-effect study: each DyTIS parameter is
// swept around its default, reporting Load/C/E throughput normalized to the
// default configuration.
func params() {
	fmt.Println("Parameter effect: throughput normalized to the default configuration")
	type variant struct {
		name string
		opts core.Options
	}
	sweeps := []struct {
		param    string
		variants []variant
	}{
		{"Bsize", []variant{
			{"1KB", core.Options{BucketEntries: 64}},
			{"2KB*", core.Options{}},
			{"4KB", core.Options{BucketEntries: 256}},
		}},
		{"Lstart", []variant{
			{"4", core.Options{StartDepth: 4}},
			{"6*", core.Options{}},
			{"8", core.Options{StartDepth: 8}},
			{"10", core.Options{StartDepth: 10}},
		}},
		{"R", []variant{
			{"7", core.Options{FirstLevelBits: 7}},
			{"9*", core.Options{}},
			{"11", core.Options{FirstLevelBits: 11}},
			{"13", core.Options{FirstLevelBits: 13}},
		}},
		{"Ut", []variant{
			{"0.5", core.Options{UtilThreshold: 0.5}},
			{"0.6*", core.Options{}},
			{"0.7", core.Options{UtilThreshold: 0.7}},
		}},
		{"Limitseg", []variant{
			{"2x(fixed)", core.Options{DisableAdaptiveLimit: true}},
			{"adaptive*", core.Options{}},
			{"128x", core.Options{SegLimitMult: 128, DisableAdaptiveLimit: true}},
		}},
	}
	kinds := []workload.Kind{workload.Load, workload.C, workload.E}
	measure := func(name string, opts core.Options) map[workload.Kind]float64 {
		avg := map[workload.Kind]float64{}
		for _, s := range group1() {
			for _, kind := range kinds {
				f := bench.DyTISNamed("DyTIS-"+name, opts)
				avg[kind] += runCell(f, s, kind, 0, 1).MopsPerSec()
			}
		}
		for _, kind := range kinds {
			avg[kind] /= float64(len(group1()))
		}
		return avg
	}
	for _, sw := range sweeps {
		fmt.Printf("\n--- %s (averaged over datasets; * = default) ---\n", sw.param)
		fmt.Printf("%-12s %10s %10s %10s\n", sw.param, "insert", "search", "scan")
		// Measure the default first so every row normalizes against it.
		var base map[workload.Kind]float64
		for _, v := range sw.variants {
			if strings.HasSuffix(v.name, "*") {
				base = measure(v.name, v.opts)
				break
			}
		}
		for _, v := range sw.variants {
			var avg map[workload.Kind]float64
			if strings.HasSuffix(v.name, "*") {
				avg = base
			} else {
				avg = measure(v.name, v.opts)
			}
			fmt.Printf("%-12s", v.name)
			for _, kind := range kinds {
				if base[kind] > 0 {
					fmt.Printf("%10.2f", avg[kind]/base[kind])
				} else {
					fmt.Printf("%10s", "-")
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\nnote: rows are normalized to the * (default) row of each sweep.")
}

// breakdown reproduces the §4.3 insertion-time breakdown: the share of Load
// time spent in each maintenance operation, per dataset.
func breakdown() {
	fmt.Println("Insertion breakdown: maintenance-operation counts and time share of Load")
	fmt.Printf("%-6s %10s %10s %10s %10s %12s %12s %12s %12s\n",
		"data", "splits", "remaps", "expands", "doublings",
		"split%", "remap%", "expand%", "double%")
	for _, s := range group1() {
		keys := keysOf(s)
		d := core.New(core.Options{})
		t0 := time.Now()
		for _, k := range keys {
			d.Insert(k, k)
		}
		total := time.Since(t0)
		st := d.Stats()
		pct := func(ns int64) float64 { return 100 * float64(ns) / float64(total.Nanoseconds()) }
		fmt.Printf("%-6s %10d %10d %10d %10d %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			s.Name, st.Splits, st.Remaps, st.Expansions, st.Doublings,
			pct(st.SplitNS), pct(st.RemapNS), pct(st.ExpandNS), pct(st.DoubleNS))
	}
}

// ablation quantifies each §3.3 mechanism by disabling it (not a paper
// figure; see DESIGN.md §8).
func ablation() {
	fmt.Println("Ablation: DyTIS mechanisms disabled one at a time (Mops/s)")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"-remap", core.Options{DisableRemap: true}},
		{"-expansion", core.Options{DisableExpansion: true}},
		{"-adaptive", core.Options{DisableAdaptiveLimit: true}},
		{"-refine", core.Options{DisableRefinement: true}},
	}
	for _, kind := range []workload.Kind{workload.Load, workload.C} {
		fmt.Printf("\n--- workload %s ---\n", kind)
		fmt.Printf("%-12s", "variant")
		for _, s := range group1() {
			fmt.Printf("%10s", s.Name)
		}
		fmt.Println()
		for _, v := range variants {
			fmt.Printf("%-12s", v.name)
			for _, s := range group1() {
				f := bench.DyTISNamed("DyTIS"+v.name, v.opts)
				r := runCell(f, s, kind, 0, 1)
				fmt.Printf("%10.3f", r.MopsPerSec())
			}
			fmt.Println()
		}
	}
}

// pgmcmp is an extension experiment (not a paper figure): DyTIS against the
// dynamic PGM-index of the related-work section, over Load, search, and
// scan — a learned index whose update strategy (geometric run merging)
// differs from both ALEX and XIndex.
func pgmcmp() {
	fmt.Println("Extension: DyTIS vs dynamic PGM-index (Mops/s)")
	for _, kind := range []workload.Kind{workload.Load, workload.C, workload.E} {
		fmt.Printf("\n--- workload %s ---\n", kind)
		fmt.Printf("%-8s", "index")
		for _, s := range group1() {
			fmt.Printf("%10s", s.Name)
		}
		fmt.Println()
		for _, f := range []bench.Factory{bench.DyTIS(core.Options{}), bench.PGM()} {
			fmt.Printf("%-8s", f.Name)
			for _, s := range group1() {
				r := runCell(f, s, kind, 0, 1)
				fmt.Printf("%10.3f", r.MopsPerSec())
			}
			fmt.Println()
		}
	}
}
