// Package linmod provides the simple linear models shared by the learned
// index structures in this repository (the ALEX-like and XIndex-like
// baselines): least-squares fits of rank over key, scaled to a target output
// range.
package linmod

// Model predicts a position from a key: pos = Slope*key + Intercept.
// Keys are converted to float64; the ~2^-53 relative rounding only perturbs
// predictions, never correctness (callers do exact last-mile searches).
type Model struct {
	Slope     float64
	Intercept float64
}

// Predict returns the raw (unclamped) prediction. Predictions far outside
// the int range are not meaningful; use PredictClamped for indexing.
func (m Model) Predict(k uint64) int {
	return int(m.Slope*float64(k) + m.Intercept)
}

// PredictClamped clamps the prediction into [0, n). The comparison happens in
// float space, so predictions beyond the int range clamp correctly instead of
// overflowing in the conversion.
func (m Model) PredictClamped(k uint64, n int) int {
	p := m.Slope*float64(k) + m.Intercept
	if !(p >= 0) { // also catches NaN
		return 0
	}
	if p >= float64(n) {
		return n - 1
	}
	return int(p)
}

// Fit least-squares-fits positions 0..n-1 over the ascending keys and scales
// the result so predictions span [0, outRange). Mean-centered for numerical
// stability. With fewer than 2 distinct keys the model degenerates to a
// constant.
func Fit(keys []uint64, outRange int) Model {
	n := len(keys)
	if n == 0 || outRange <= 0 {
		return Model{}
	}
	if n == 1 || keys[0] == keys[n-1] {
		return Model{Slope: 0, Intercept: float64(outRange) / 2}
	}
	var meanX, meanY float64
	for i, k := range keys {
		meanX += float64(k)
		meanY += float64(i)
	}
	meanX /= float64(n)
	meanY /= float64(n)
	var sxx, sxy float64
	for i, k := range keys {
		dx := float64(k) - meanX
		sxx += dx * dx
		sxy += dx * (float64(i) - meanY)
	}
	if sxx == 0 {
		return Model{Slope: 0, Intercept: float64(outRange) / 2}
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX
	scale := float64(outRange) / float64(n)
	return Model{Slope: slope * scale, Intercept: intercept * scale}
}
