package alex

import "math"

// Gapped-array fill convention: every gap slot duplicates the key of the
// nearest occupied slot to its RIGHT (trailing gaps hold the max sentinel),
// keeping the key array non-decreasing so position search is a plain
// (exponential + binary) search over the raw array; the bitmap then tells
// gaps from real entries.
const gapSentinel = math.MaxUint64

type dataNode struct {
	model  linearModel // key -> slot
	keys   []uint64
	vals   []uint64
	bitmap []uint64
	num    int
	next   *dataNode
	prev   *dataNode
}

func (d *dataNode) isNode() {}

func (d *dataNode) cap() int { return len(d.keys) }

func (d *dataNode) occupied(i int) bool {
	return d.bitmap[i>>6]&(1<<(uint(i)&63)) != 0
}

func (d *dataNode) setOccupied(i int)   { d.bitmap[i>>6] |= 1 << (uint(i) & 63) }
func (d *dataNode) clearOccupied(i int) { d.bitmap[i>>6] &^= 1 << (uint(i) & 63) }

// newDataNode builds a gapped node of the given capacity holding the
// ascending keys, spread by a freshly trained model.
func newDataNode(keys, vals []uint64, capacity int) *dataNode {
	if capacity < len(keys) {
		capacity = len(keys)
	}
	if capacity < 16 {
		capacity = 16
	}
	d := &dataNode{
		keys:   make([]uint64, capacity),
		vals:   make([]uint64, capacity),
		bitmap: make([]uint64, (capacity+63)/64),
	}
	d.load(keys, vals)
	return d
}

// load replaces the node contents with the ascending pairs, retraining the
// model and re-spreading entries across the gaps (ALEX's model-based
// expansion/retrain).
func (d *dataNode) load(keys, vals []uint64) {
	capacity := d.cap()
	for i := range d.bitmap {
		d.bitmap[i] = 0
	}
	d.model = fitLinear(keys, capacity)
	slot := -1
	for i, k := range keys {
		p := d.model.PredictClamped(k, capacity)
		if p <= slot {
			p = slot + 1
		}
		// Leave room for the remaining keys.
		if maxP := capacity - (len(keys) - i); p > maxP {
			p = maxP
		}
		slot = p
		d.keys[slot] = k
		d.vals[slot] = vals[i]
		d.setOccupied(slot)
	}
	d.num = len(keys)
	// Fill gaps right-to-left with the nearest occupied key to the right.
	fill := uint64(gapSentinel)
	for i := capacity - 1; i >= 0; i-- {
		if d.occupied(i) {
			fill = d.keys[i]
		} else {
			d.keys[i] = fill
		}
	}
}

// lowerBoundSlot returns the first slot whose (possibly gap-filled) key is
// >= k, found by exponential search around the model's prediction.
func (d *dataNode) lowerBoundSlot(k uint64) int {
	n := d.cap()
	p := d.model.PredictClamped(k, n)
	var lo, hi int
	if d.keys[p] >= k {
		// Walk left exponentially until keys[lo] < k.
		step := 1
		lo, hi = p, p
		for lo > 0 && d.keys[lo] >= k {
			hi = lo
			lo -= step
			step <<= 1
			if lo < 0 {
				lo = 0
			}
		}
		if d.keys[lo] >= k && lo == 0 {
			hi = lo
		}
	} else {
		step := 1
		lo = p
		hi = p + 1
		for hi < n && d.keys[hi] < k {
			lo = hi
			hi += step
			step <<= 1
			if hi > n {
				hi = n
			}
		}
	}
	// Binary search in (lo, hi]: first slot >= k.
	for lo < hi {
		mid := (lo + hi) / 2
		if d.keys[mid] >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// find returns the slot of k if present.
func (d *dataNode) find(k uint64) (int, bool) {
	i := d.lowerBoundSlot(k)
	for ; i < d.cap() && !d.occupied(i); i++ {
		// skip the gap run (fills equal the next occupied key)
	}
	if i < d.cap() && d.keys[i] == k && d.occupied(i) {
		return i, true
	}
	return i, false
}

// insert places (k,v); returns false if the key already existed (value
// updated in place). The node must have at least one gap.
func (d *dataNode) insert(k, v uint64) bool {
	i := d.lowerBoundSlot(k)
	n := d.cap()
	// Existing key? The first occupied slot at/after i holds the answer.
	j := i
	for j < n && !d.occupied(j) {
		j++
	}
	if j < n && d.keys[j] == k {
		d.vals[j] = v
		return false
	}
	if i < n && !d.occupied(i) {
		// The lower-bound slot itself is a gap: place directly.
		d.keys[i] = k
		d.vals[i] = v
		d.setOccupied(i)
		d.num++
		return true
	}
	// Slot i is occupied (keys[i] > k, or i==n). Shift toward nearest gap.
	if i == n {
		i = n - 1 // insert after the last occupied slot via left-shift path
		if d.occupied(i) {
			g := i
			for g >= 0 && d.occupied(g) {
				g--
			}
			d.shiftLeft(g, i+1)
			d.keys[i] = k
			d.vals[i] = v
			d.setOccupied(g)
			d.num++
			return true
		}
		d.keys[i] = k
		d.vals[i] = v
		d.setOccupied(i)
		d.num++
		return true
	}
	gl, gr := d.nearestGaps(i)
	if gr >= 0 && (gl < 0 || gr-i <= i-gl) {
		// Shift [i, gr) right by one, insert at i.
		copy(d.keys[i+1:gr+1], d.keys[i:gr])
		copy(d.vals[i+1:gr+1], d.vals[i:gr])
		d.setOccupied(gr)
		d.keys[i] = k
		d.vals[i] = v
		// Gap run immediately left of i used to duplicate old keys[i];
		// refresh it to the new right-neighbor k.
		for m := i - 1; m >= 0 && !d.occupied(m); m-- {
			d.keys[m] = k
		}
		d.num++
		return true
	}
	// Shift (gl, i) left by one, insert at i-1.
	d.shiftLeft(gl, i)
	d.keys[i-1] = k
	d.vals[i-1] = v
	d.setOccupied(gl)
	d.num++
	return true
}

// shiftLeft moves occupied slots (g, end) one position left into the gap g.
func (d *dataNode) shiftLeft(g, end int) {
	copy(d.keys[g:end-1], d.keys[g+1:end])
	copy(d.vals[g:end-1], d.vals[g+1:end])
	// Gap run left of g duplicated old keys[g+1]; it now matches the shifted
	// value at g automatically (same key), so no refresh is needed.
	for m := g - 1; m >= 0 && !d.occupied(m); m-- {
		d.keys[m] = d.keys[g]
	}
}

// nearestGaps returns the closest gap strictly left of i and the closest gap
// at or right of i (-1 when absent).
func (d *dataNode) nearestGaps(i int) (int, int) {
	gl, gr := -1, -1
	for l, r := i-1, i; l >= 0 || r < d.cap(); l, r = l-1, r+1 {
		if l >= 0 && !d.occupied(l) {
			gl = l
			break
		}
		if r < d.cap() && !d.occupied(r) {
			gr = r
			break
		}
	}
	// The loop breaks on whichever side hits first; finish the other side
	// only if nothing found at equal distance.
	if gl < 0 && gr < 0 {
		return -1, -1
	}
	return gl, gr
}

// remove deletes k, reporting presence.
func (d *dataNode) remove(k uint64) bool {
	j, ok := d.find(k)
	if !ok {
		return false
	}
	d.clearOccupied(j)
	d.num--
	fill := uint64(gapSentinel)
	if j+1 < d.cap() {
		fill = d.keys[j+1]
	}
	for m := j; m >= 0 && !d.occupied(m); m-- {
		d.keys[m] = fill
	}
	return true
}

// appendAll appends the node's live pairs in order.
func (d *dataNode) appendAll(ks, vs []uint64) ([]uint64, []uint64) {
	for i := 0; i < d.cap(); i++ {
		if d.occupied(i) {
			ks = append(ks, d.keys[i])
			vs = append(vs, d.vals[i])
		}
	}
	return ks, vs
}
