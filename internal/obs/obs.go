// Package obs is the standard observability layer for a DyTIS index: it
// implements core.Observer with sharded per-operation latency histograms and
// a structure-event subscriber fan-out, plus an HTTP exporter (see
// exporter.go) that serves the merged histograms, the index's Stats, and its
// MemoryFootprint in Prometheus text format and expvar-style JSON.
//
// Design: the hot path (RecordOp) must stay cheap under heavy concurrent
// load, so latencies land in per-shard lathist.AtomicHist instances selected
// by the operation's first-level EH index — goroutines working different key
// regions never touch the same cache lines, and recording is a handful of
// uncontended atomic adds. Readers pay instead: OpHist folds all shards into
// one lathist.Hist per call.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/core"
	"dytis/internal/lathist"
)

// Shards is the number of histogram shards per operation. EH indexes are
// folded onto shards by masking, so it must be a power of two; 64 shards
// keep same-shard collisions rare at realistic thread counts while bounding
// the observer's footprint (4 ops x 64 shards x ~15 KB ≈ 4 MB).
const Shards = 64

// StatsSource is the index-side surface the exporter reads; *core.DyTIS
// (and therefore the public dytis.Index) implements it.
type StatsSource interface {
	Stats() core.Stats
	MemoryFootprint() int64
	Len() int
}

// Observer collects per-operation latency histograms and structure-event
// counters from one or more DyTIS indexes. All methods are safe for
// concurrent use. Create with New, pass to the index via
// core.Options.Observer (or dytis.WithObserver), and attach the index back
// with Attach so the exporter can serve Stats and MemoryFootprint.
type Observer struct {
	hists [core.NumOps][Shards]lathist.AtomicHist

	eventCount [core.NumEventKinds]atomic.Int64
	eventNS    [core.NumEventKinds]atomic.Int64

	mu   sync.RWMutex
	subs []func(core.StructureEvent)
	src  StatsSource

	start time.Time
}

// New returns an empty Observer.
func New() *Observer { return &Observer{start: time.Now()} }

// RecordOp implements core.Observer: it records one operation latency into
// the shard owned by the operation's first-level EH table.
func (o *Observer) RecordOp(op core.Op, shard int, d time.Duration) {
	o.hists[op][shard&(Shards-1)].Record(d)
}

// RecordBatch implements core.BatchObserver: a batch of n operations that
// took total altogether lands as n samples of the mean per-op latency in the
// given shard's histogram, at the cost of a single RecordOp regardless of n.
func (o *Observer) RecordBatch(op core.Op, shard int, n int, total time.Duration) {
	if n <= 0 {
		return
	}
	o.hists[op][shard&(Shards-1)].RecordN(total/time.Duration(n), n)
}

// StructureEvent implements core.Observer: it bumps the per-kind counters
// and fans the event out to every subscriber. It is called from inside the
// index's maintenance paths (under locks in Concurrent mode), so
// subscribers must return quickly and must not call back into the index.
func (o *Observer) StructureEvent(ev core.StructureEvent) {
	o.eventCount[ev.Kind].Add(1)
	o.eventNS[ev.Kind].Add(int64(ev.Duration))
	o.mu.RLock()
	subs := o.subs
	o.mu.RUnlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Subscribe registers fn to be called for every future structure event. See
// StructureEvent for the constraints on fn. Subscribers cannot be removed;
// register a closure that checks its own liveness if needed.
func (o *Observer) Subscribe(fn func(core.StructureEvent)) {
	o.mu.Lock()
	// Copy-on-write so StructureEvent can iterate without holding the lock.
	o.subs = append(append(make([]func(core.StructureEvent), 0, len(o.subs)+1), o.subs...), fn)
	o.mu.Unlock()
}

// Attach registers the index whose Stats, MemoryFootprint, and Len the
// exporter serves. dytis.New calls it automatically when the observer is
// passed via WithObserver.
func (o *Observer) Attach(src StatsSource) {
	o.mu.Lock()
	o.src = src
	o.mu.Unlock()
}

// DetachIndex implements core.Detacher: if src is the currently attached
// index, the exporter stops serving its Stats/MemoryFootprint/Len.
// DyTIS.Close calls it so a closed index is released; detaching does not
// clear the histograms or event counters already collected.
func (o *Observer) DetachIndex(src any) {
	s, ok := src.(StatsSource)
	if !ok {
		return
	}
	o.mu.Lock()
	if o.src == s {
		o.src = nil
	}
	o.mu.Unlock()
}

func (o *Observer) source() StatsSource {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.src
}

// OpHist returns a merged snapshot of the given operation's latency
// histogram across all shards.
func (o *Observer) OpHist(op core.Op) *lathist.Hist {
	h := &lathist.Hist{}
	for i := range o.hists[op] {
		o.hists[op][i].AddTo(h)
	}
	return h
}

// EventCount returns how many events of the given kind have fired.
func (o *Observer) EventCount(k core.EventKind) int64 { return o.eventCount[k].Load() }

// EventDuration returns the cumulative wall time spent in events of the
// given kind.
func (o *Observer) EventDuration(k core.EventKind) time.Duration {
	return time.Duration(o.eventNS[k].Load())
}
