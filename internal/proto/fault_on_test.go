//go:build dytisfault

package proto

import (
	"bytes"
	"testing"
)

// TestFrameFaultHook (dytisfault builds only): the injection seam fires on
// every frame body read and corruption surfaces as a decode error — the
// decoder, not just the framer, fails closed.
func TestFrameFaultHook(t *testing.T) {
	defer SetFrameFault(nil)

	frame, err := AppendRequest(nil, &Request{ID: 5, Op: OpGet, Key: 77})
	if err != nil {
		t.Fatal(err)
	}

	fired := 0
	SetFrameFault(func(body []byte) {
		fired++
		body[8] = 0xEE // opcode byte → garbage
	})
	body, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	var req Request
	if err := DecodeRequest(body, &req); err == nil {
		t.Fatal("corrupted frame decoded")
	}

	// Cleared hook: the same frame reads and decodes cleanly again.
	SetFrameFault(nil)
	body, _, err = ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequest(body, &req); err != nil || req.Key != 77 {
		t.Fatalf("clean frame failed after hook cleared: %+v, %v", req, err)
	}
}
