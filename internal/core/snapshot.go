package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot format: a little-endian header (magic, version, count) followed
// by count (key, value) pairs in ascending key order. Reading rebuilds the
// index through the LoadSorted fast path.
const (
	snapshotMagic   = 0x5359_5444 // "DTYS"
	snapshotVersion = 1
)

// WriteSnapshot streams the index contents to w in ascending key order.
// Must not run concurrently with writers (readers are fine in concurrent
// mode, but the snapshot is only point-in-time when the index is quiescent).
func (d *DyTIS) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(d.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	written := 0
	c := d.NewCursor(0)
	for {
		p, ok := c.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(rec[0:8], p.Key)
		binary.LittleEndian.PutUint64(rec[8:16], p.Value)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		written++
	}
	if written != int(binary.LittleEndian.Uint64(hdr[8:16])) {
		return fmt.Errorf("core: snapshot raced with writers: wrote %d of %d pairs",
			written, binary.LittleEndian.Uint64(hdr[8:16]))
	}
	return bw.Flush()
}

// ReadSnapshot replaces the index contents with a snapshot written by
// WriteSnapshot. Must not run concurrently with any other operation.
func (d *DyTIS) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapshotMagic {
		return fmt.Errorf("core: not a DyTIS snapshot")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > 1<<40 {
		return fmt.Errorf("core: implausible snapshot size %d", n)
	}
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	var rec [16]byte
	var prev uint64
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("core: snapshot pair %d: %w", i, err)
		}
		k := binary.LittleEndian.Uint64(rec[0:8])
		if i > 0 && k <= prev {
			return fmt.Errorf("core: snapshot keys not ascending at %d", i)
		}
		prev = k
		keys[i] = k
		vals[i] = binary.LittleEndian.Uint64(rec[8:16])
	}
	d.LoadSorted(keys, vals)
	return nil
}
