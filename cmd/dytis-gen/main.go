// Command dytis-gen exports a synthetic dataset as CSV (one key per line, in
// insertion order), mirroring the artifact's review-small.csv format so the
// benchmarks can also be fed from files.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"dytis/internal/datasets"
)

var (
	nameFlag = flag.String("dataset", "RM", "dataset name (MM|ML|RM|RL|TX|Uniform|Lognormal|Longlat|Longitudes), append (s) for shuffled")
	nFlag    = flag.Int("n", 100000, "number of keys")
	seedFlag = flag.Int64("seed", 1, "generator seed")
	outFlag  = flag.String("out", "-", "output file (default stdout)")
)

func main() {
	flag.Parse()
	name := *nameFlag
	shuffled := false
	if len(name) > 3 && name[len(name)-3:] == "(s)" {
		shuffled = true
		name = name[:len(name)-3]
	}
	spec, ok := datasets.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", name)
		os.Exit(2)
	}
	if shuffled {
		spec = datasets.Shuffled(spec)
	}
	out := os.Stdout
	if *outFlag != "-" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, k := range spec.Gen(*nFlag, *seedFlag) {
		w.WriteString(strconv.FormatUint(k, 10))
		w.WriteByte('\n')
	}
}
