package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dytis/internal/kv"
)

// smallOpts exercises every maintenance path with little data.
func smallOpts() Options {
	return Options{FirstLevelBits: 2, BucketEntries: 8, StartDepth: 2}
}

func TestInsertGetSequential(t *testing.T) {
	d := New(smallOpts())
	const n = 20000
	for i := uint64(0); i < n; i++ {
		d.Insert(i, i*7)
	}
	if d.Len() != n {
		t.Fatalf("Len=%d want %d", d.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := d.Get(i)
		if !ok || v != i*7 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := d.Get(n + 1); ok {
		t.Fatal("phantom key")
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetWideKeySpace(t *testing.T) {
	d := New(smallOpts())
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 30000)
	for i := range keys {
		keys[i] = rng.Uint64()
		d.Insert(keys[i], uint64(i))
	}
	for i, k := range keys {
		v, ok := d.Get(k)
		if !ok {
			t.Fatalf("missing key %#x (i=%d)", k, i)
		}
		_ = v
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	d := New(smallOpts())
	d.Insert(100, 1)
	d.Insert(100, 2)
	if d.Len() != 1 {
		t.Fatalf("Len=%d", d.Len())
	}
	if v, _ := d.Get(100); v != 2 {
		t.Fatalf("v=%d", v)
	}
}

func TestHighlySkewedClusters(t *testing.T) {
	// Dense clusters at a few points of the key space: the remapping path
	// must absorb the skew (like RM/RL in the paper).
	d := New(smallOpts())
	centers := []uint64{1 << 20, 1 << 40, 1<<62 + 12345, 77}
	n := 0
	for _, c := range centers {
		for i := uint64(0); i < 6000; i++ {
			d.Insert(c+i, i)
			n++
		}
	}
	if d.Len() != n {
		t.Fatalf("Len=%d want %d", d.Len(), n)
	}
	for _, c := range centers {
		for i := uint64(0); i < 6000; i += 7 {
			if _, ok := d.Get(c + i); !ok {
				t.Fatalf("missing %#x", c+i)
			}
		}
	}
	st := d.Stats()
	if st.Remaps == 0 {
		t.Fatalf("skewed load performed no remapping: %+v", st)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformTriggersExpansion(t *testing.T) {
	d := New(Options{FirstLevelBits: 1, BucketEntries: 8, StartDepth: 1})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		d.Insert(rng.Uint64(), 1)
	}
	st := d.Stats()
	if st.Expansions == 0 {
		t.Fatalf("uniform load performed no expansions: %+v", st)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveLimitRaisesOnUniform(t *testing.T) {
	opts := Options{FirstLevelBits: 1, BucketEntries: 8, StartDepth: 1}
	d := New(opts)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60000; i++ {
		d.Insert(rng.Uint64(), 1)
	}
	if st := d.Stats(); st.AdaptiveEHs == 0 {
		t.Fatalf("adaptive Limit_seg never triggered on uniform data: %+v", st)
	}
	// With the ablation switch it must stay off.
	opts.DisableAdaptiveLimit = true
	d2 := New(opts)
	rng = rand.New(rand.NewSource(5))
	for i := 0; i < 60000; i++ {
		d2.Insert(rng.Uint64(), 1)
	}
	if st := d2.Stats(); st.AdaptiveEHs != 0 {
		t.Fatalf("DisableAdaptiveLimit ignored: %+v", st)
	}
}

func TestScanBasic(t *testing.T) {
	d := New(smallOpts())
	for i := uint64(0); i < 5000; i++ {
		d.Insert(i*10, i)
	}
	got := d.Scan(95, 50, nil)
	if len(got) != 50 {
		t.Fatalf("scan len=%d", len(got))
	}
	if got[0].Key != 100 {
		t.Fatalf("first=%d want 100", got[0].Key)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key != got[i-1].Key+10 {
			t.Fatalf("scan out of order at %d: %d after %d", i, got[i].Key, got[i-1].Key)
		}
	}
}

func TestScanCrossesEHBoundaries(t *testing.T) {
	// FirstLevelBits=2 gives 4 EH tables; keys straddling the quarters of
	// the key space force the scan to hop EHs.
	d := New(smallOpts())
	var want []uint64
	for q := uint64(0); q < 4; q++ {
		base := q << 62
		for i := uint64(0); i < 500; i++ {
			k := base + i*3
			d.Insert(k, k)
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := d.Scan(0, len(want)+10, nil)
	if len(got) != len(want) {
		t.Fatalf("full scan %d want %d", len(got), len(want))
	}
	for i, k := range want {
		if got[i].Key != k {
			t.Fatalf("scan[%d]=%d want %d", i, got[i].Key, k)
		}
	}
	// Start mid-space.
	mid := uint64(2) << 62
	got = d.Scan(mid, 100, nil)
	if len(got) != 100 || got[0].Key != mid {
		t.Fatalf("mid scan start=%d len=%d", got[0].Key, len(got))
	}
}

func TestScanEmptyAndPastEnd(t *testing.T) {
	d := New(smallOpts())
	if r := d.Scan(0, 10, nil); len(r) != 0 {
		t.Fatal("scan of empty index returned results")
	}
	d.Insert(5, 5)
	if r := d.Scan(6, 10, nil); len(r) != 0 {
		t.Fatalf("scan past end returned %v", r)
	}
	if r := d.Scan(5, 0, nil); len(r) != 0 {
		t.Fatal("scan with max=0 returned results")
	}
}

func TestDelete(t *testing.T) {
	d := New(smallOpts())
	const n = 10000
	for i := uint64(0); i < n; i++ {
		d.Insert(i, i)
	}
	for i := uint64(0); i < n; i += 2 {
		if !d.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if d.Delete(0) {
		t.Fatal("double delete")
	}
	if d.Len() != n/2 {
		t.Fatalf("Len=%d", d.Len())
	}
	for i := uint64(0); i < n; i++ {
		_, ok := d.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteShrinksSegments(t *testing.T) {
	d := New(smallOpts())
	const n = 20000
	for i := uint64(0); i < n; i++ {
		d.Insert(i, i)
	}
	before := d.Stats().Buckets
	for i := uint64(0); i < n; i++ {
		if i%16 != 0 {
			d.Delete(i)
		}
	}
	st := d.Stats()
	after := st.Buckets
	if after >= before {
		t.Fatalf("buckets did not shrink after mass delete: %d -> %d", before, after)
	}
	if st.Shrinks == 0 {
		t.Fatalf("buckets shrank %d -> %d but Stats.Shrinks is zero: %+v", before, after, st)
	}
	if st.ShrinkNS == 0 {
		t.Fatalf("Shrinks=%d but ShrinkNS=0: shrink duration not booked", st.Shrinks)
	}
	// Everything remaining still reachable and ordered.
	got := d.Scan(0, n, nil)
	if len(got) != d.Len() {
		t.Fatalf("scan %d vs Len %d", len(got), d.Len())
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	d := New(smallOpts())
	for i := uint64(0); i < 1000; i++ {
		d.Insert(i*2, i)
	}
	var keys []uint64
	d.Range(100, 200, func(k, v uint64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 51 || keys[0] != 100 || keys[len(keys)-1] != 200 {
		t.Fatalf("range keys: n=%d first=%d last=%d", len(keys), keys[0], keys[len(keys)-1])
	}
	// Early stop.
	count := 0
	d.Range(0, ^uint64(0), func(k, v uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop count=%d", count)
	}
}

func TestExtremeKeys(t *testing.T) {
	d := New(smallOpts())
	edge := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, 1<<63 - 1}
	for i, k := range edge {
		d.Insert(k, uint64(i))
	}
	for i, k := range edge {
		v, ok := d.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("edge key %#x", k)
		}
	}
	got := d.Scan(0, 10, nil)
	if len(got) != len(edge) {
		t.Fatalf("scan found %d of %d edge keys", len(got), len(edge))
	}
	if got[0].Key != 0 || got[len(got)-1].Key != ^uint64(0) {
		t.Fatalf("edge order wrong: %v", got)
	}
}

func TestDescendingInsertion(t *testing.T) {
	d := New(smallOpts())
	for i := 30000; i > 0; i-- {
		d.Insert(uint64(i), uint64(i))
	}
	got := d.Scan(0, 5, nil)
	if len(got) != 5 || got[0].Key != 1 {
		t.Fatalf("scan after descending insert: %v", got)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationDisableRemap(t *testing.T) {
	opts := smallOpts()
	opts.DisableRemap = true
	d := New(opts)
	for i := uint64(0); i < 20000; i++ {
		d.Insert(i, i) // dense sequential: heavy skew per segment
	}
	st := d.Stats()
	if st.Remaps != 0 {
		t.Fatalf("remaps ran despite DisableRemap: %+v", st)
	}
	for i := uint64(0); i < 20000; i += 13 {
		if _, ok := d.Get(i); !ok {
			t.Fatalf("missing %d", i)
		}
	}
}

func TestStatsBreakdownTimesPopulated(t *testing.T) {
	d := New(smallOpts())
	for i := uint64(0); i < 30000; i++ {
		d.Insert((i*2654435761)%(1<<40), i)
	}
	st := d.Stats()
	if st.Splits == 0 || st.Segments == 0 || st.Buckets == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.Splits > 0 && st.SplitNS == 0 {
		t.Fatalf("split time not recorded: %+v", st)
	}
	if d.MemoryFootprint() <= 0 {
		t.Fatal("memory footprint not positive")
	}
}

// TestQuickMatchesReference drives random operation sequences against a map +
// sorted-slice reference model and compares point and range results.
func TestQuickMatchesReference(t *testing.T) {
	prop := func(seed int64, skew bool) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(smallOpts())
		ref := map[uint64]uint64{}
		keyGen := func() uint64 {
			if skew {
				// clustered keys
				return uint64(rng.Intn(8))<<61 + uint64(rng.Intn(300))
			}
			return rng.Uint64() % 100000
		}
		for op := 0; op < 4000; op++ {
			k := keyGen()
			switch rng.Intn(6) {
			case 0, 1, 2:
				v := rng.Uint64()
				d.Insert(k, v)
				ref[k] = v
			case 3:
				_, in := ref[k]
				if d.Delete(k) != in {
					return false
				}
				delete(ref, k)
			case 4:
				gv, gok := d.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			case 5:
				got := d.Scan(k, 20, nil)
				// reference scan
				var want []kv.KV
				keys := make([]uint64, 0, len(ref))
				for rk := range ref {
					if rk >= k {
						keys = append(keys, rk)
					}
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for i := 0; i < len(keys) && i < 20; i++ {
					want = append(want, kv.KV{Key: keys[i], Value: ref[keys[i]]})
				}
				if len(got) != len(want) {
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		if d.Len() != len(ref) {
			return false
		}
		return d.checkInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentRemapInvariants checks the remapping-function invariants
// directly: prediction is monotone in the key and covers [0, nb).
func TestSegmentRemapInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rangeBits := uint8(8 + rng.Intn(20))
		pbits := uint8(rng.Intn(5))
		nb := 1 + rng.Intn(64)
		s := newSegment(0, rangeBits, 0, nb, 8, pbits)
		// random but valid allocation
		if len(s.cnt) > 1 {
			w := make([]int, len(s.cnt))
			for i := range w {
				w[i] = rng.Intn(10)
			}
			s.cnt = allocProportional(w, nb)
			s.start = prefixSums(s.cnt)
		}
		prev := 0
		step := s.width() / 997
		if step == 0 {
			step = 1
		}
		for r := uint64(0); r < s.width(); r += step {
			bi := s.predict(r)
			if bi < 0 || bi >= s.nb {
				return false
			}
			if bi < prev {
				return false // monotonicity violated
			}
			prev = bi
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceSortedNeverOverflows feeds adversarial ascending key sets whose
// predictions concentrate at the right edge, checking the tail-clamp logic.
func TestPlaceSortedNeverOverflows(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bcap := 4
		nb := 2 + rng.Intn(10)
		rangeBits := uint8(16)
		n := rng.Intn(nb*bcap + 1)
		// keys clustered near the top of the range
		ks := make([]uint64, 0, n)
		base := uint64(1<<16 - 1)
		for len(ks) < n {
			k := base - uint64(rng.Intn(256))
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		// dedupe
		uniq := ks[:0]
		for i, k := range ks {
			if i == 0 || k != ks[i-1] {
				uniq = append(uniq, k)
			}
		}
		ks = uniq
		vs := make([]uint64, len(ks))
		s := newSegment(0, rangeBits, 0, nb, bcap, 2)
		s.adoptLayout(s.pbits, s.cnt, nb, ks, vs)
		if err := s.checkInvariants(); err != nil {
			return false
		}
		for _, k := range ks {
			if _, ok := s.get(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultOptionsWork(t *testing.T) {
	d := NewDefault()
	for i := uint64(0); i < 100000; i++ {
		d.Insert(i<<30, i)
	}
	if d.Len() != 100000 {
		t.Fatalf("Len=%d", d.Len())
	}
	if _, ok := d.Get(5 << 30); !ok {
		t.Fatal("missing key under defaults")
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
