package fault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

// collect reads everything from c until EOF/error.
func collect(c net.Conn, done chan<- []byte) {
	var all []byte
	buf := make([]byte, 4096)
	for {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := c.Read(buf)
		all = append(all, buf[:n]...)
		if err != nil {
			done <- all
			return
		}
	}
}

// TestZeroPlanIsIdentity: an inactive plan returns the conn unwrapped and
// forwards bytes untouched through the proxy.
func TestZeroPlanIsIdentity(t *testing.T) {
	in := New(1, Plan{})
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	if w := in.Wrap(a); w != a {
		t.Fatal("zero plan did not return the conn unwrapped")
	}
	_ = b
}

// TestSplitPreservesBytes: split writes change packet boundaries, never
// content or order.
func TestSplitPreservesBytes(t *testing.T) {
	in := New(7, Plan{SplitProb: 1})
	a, b := pipePair()
	w := in.Wrap(a)
	payload := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	done := make(chan []byte, 1)
	go collect(b, done)
	for i := 0; i < 10; i++ {
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	got := <-done
	want := bytes.Repeat(payload, 10)
	if !bytes.Equal(got, want) {
		t.Fatalf("split writes corrupted the stream:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if in.Stats().Splits() != 10 {
		t.Fatalf("Splits = %d want 10", in.Stats().Splits())
	}
}

// TestFlipCorruptsCopyNotCaller: the caller's buffer must never be
// modified — the stack reuses request buffers.
func TestFlipCorruptsCopyNotCaller(t *testing.T) {
	in := New(3, Plan{FlipProb: 1})
	a, b := pipePair()
	w := in.Wrap(a)
	payload := []byte{0x00, 0x00, 0x00, 0x00}
	orig := append([]byte(nil), payload...)
	done := make(chan []byte, 1)
	go collect(b, done)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got := <-done
	if !bytes.Equal(payload, orig) {
		t.Fatal("Write modified the caller's buffer")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("FlipProb=1 write arrived uncorrupted")
	}
	diff := 0
	for i := range got {
		for bit := 0; bit < 8; bit++ {
			if (got[i]^orig[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diff)
	}
}

// TestDropTruncatesAndCloses: a drop forwards a strict prefix then kills
// the conn — the half-written frame shape.
func TestDropTruncatesAndCloses(t *testing.T) {
	in := New(11, Plan{DropProb: 1})
	a, b := pipePair()
	w := in.Wrap(a)
	payload := bytes.Repeat([]byte{0xAB}, 100)
	done := make(chan []byte, 1)
	go collect(b, done)
	if _, err := w.Write(payload); err == nil {
		t.Fatal("dropped write reported success")
	}
	got := <-done
	if len(got) >= len(payload) {
		t.Fatalf("drop forwarded %d of %d bytes, want a strict prefix", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("drop corrupted the forwarded prefix")
	}
	if _, err := w.Write(payload); err == nil {
		t.Fatal("write after drop-close succeeded")
	}
}

// TestCloseIsDuplicateSafe: CloseProb faults double-close deliberately;
// neither close may panic and both ends must see EOF.
func TestCloseIsDuplicateSafe(t *testing.T) {
	in := New(5, Plan{CloseProb: 1})
	a, b := pipePair()
	w := in.Wrap(a)
	done := make(chan []byte, 1)
	go collect(b, done)
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write on close-faulted conn succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("explicit duplicate close errored: %v", err)
	}
	<-done
	if in.Stats().Closes() != 1 {
		t.Fatalf("Closes = %d want 1", in.Stats().Closes())
	}
}

// TestDeterminism: the same seed must produce the same byte stream,
// fault-for-fault, across runs; a different seed must diverge.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []byte {
		in := New(seed, Plan{SplitProb: 0.5, FlipProb: 0.3, DupProb: 0.3})
		a, b := pipePair()
		w := in.Wrap(a)
		done := make(chan []byte, 1)
		go collect(b, done)
		for i := 0; i < 20; i++ {
			if _, err := w.Write([]byte("deterministic chaos payload")); err != nil {
				break
			}
		}
		w.Close()
		return <-done
	}
	s1a, s1b, s2 := run(42), run(42), run(43)
	if !bytes.Equal(s1a, s1b) {
		t.Fatal("same seed produced different fault streams")
	}
	if bytes.Equal(s1a, s2) {
		t.Fatal("different seeds produced identical fault streams (suspicious)")
	}
}

// TestProxyPassthrough: with a zero plan the proxy is a transparent TCP
// relay — an echo server behind it answers byte-identically.
func TestProxyPassthrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { io.Copy(c, c); c.Close() }(c)
		}
	}()

	p, err := NewProxy(ln.Addr().String(), New(1, Plan{}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the chaos proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo through proxy = %q want %q", got, msg)
	}
}

// TestProxyInjectsFaults: with an aggressive plan, streams through the
// proxy actually get damaged (stats move) and connections die rather than
// hang forever.
func TestProxyInjectsFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { io.Copy(io.Discard, c); c.Close() }(c)
		}
	}()

	in := New(99, Plan{DropProb: 0.2, FlipProb: 0.2, SplitProb: 0.2})
	p, err := NewProxy(ln.Addr().String(), in)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if _, err := c.Write(bytes.Repeat([]byte{byte(j)}, 512)); err != nil {
				break
			}
		}
		c.Close()
	}
	// Stats are updated by the proxy's forwarding goroutines; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for in.Stats().Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if in.Stats().Total() == 0 {
		t.Fatal("aggressive plan fired zero faults through the proxy")
	}
}
