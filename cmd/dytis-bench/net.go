package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"dytis/client"
	"dytis/internal/core"
	"dytis/internal/lathist"
	"dytis/internal/proto"
	"dytis/internal/server"
	"dytis/internal/workload"
)

// The net experiment measures the serving subsystem end to end: it replays
// the YCSB-style measured workloads (A/B/C/D'/E/F) through the public client
// over loopback TCP against a dytis-server-equivalent in-process server
// (or an external one via -net-addr), reporting client-observed throughput
// and latency — protocol encode/decode, kernel round trips, pipelining, and
// index work included. Contrast with fig8, which measures the bare index.
var (
	netClients = flag.Int("net-clients", 4, "concurrent client goroutines in -exp net (each with its own connection pool)")
	netAddr    = flag.String("net-addr", "", "replay against an already-running dytis-server at this address instead of an in-process one")
	netJSON    = flag.String("net-json", "", "also write the -exp net results as JSON to this file")
	netProto   = flag.String("net-proto", "v2", "client protocol for -exp net/netscan: v2 (negotiated handshake, CRC, streaming scan) or v1 (legacy wire)")
	scanKeys   = flag.Int("scan-keys", 1<<20, "key count for -exp netscan")
	scanJSON   = flag.String("scan-json", "", "also write the -exp netscan results as JSON to this file")
)

// protoOpts maps -net-proto onto client dial options.
func protoOpts() []client.Option {
	switch *netProto {
	case "v2":
		return nil // the default: negotiate
	case "v1":
		return []client.Option{client.WithV1Protocol()}
	default:
		fmt.Fprintf(os.Stderr, "unknown -net-proto %q (want v1 or v2)\n", *netProto)
		os.Exit(2)
		return nil
	}
}

// netKinds are the measured workloads; Load is the preload phase, reported
// separately.
var netKinds = []workload.Kind{workload.A, workload.B, workload.C, workload.DPrime, workload.E, workload.F}

type netCell struct {
	Kind       string  `json:"workload"`
	Clients    int     `json:"clients"`
	Ops        int     `json:"ops"`
	Mops       float64 `json:"mops_per_sec"`
	MeanNS     int64   `json:"mean_ns"`
	P50NS      int64   `json:"p50_ns"`
	P99NS      int64   `json:"p99_ns"`
	P9999NS    int64   `json:"p9999_ns"`
	WallMillis int64   `json:"wall_ms"`
}

func netExp() {
	s := group1()[0]
	keys := keysOf(s)

	addr := *netAddr
	var srv *server.Server
	var idx *core.DyTIS
	if addr == "" {
		idx = core.New(core.Options{Concurrent: true})
		srv = server.New(server.Config{Index: idx, MaxConns: *netClients * 4})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go srv.Serve(ln)
		addr = ln.Addr().String()
	}

	fmt.Printf("Network-mode workload replay: dataset %s (%d keys), %d clients, server %s, GOMAXPROCS %d\n",
		s.Name, len(keys), *netClients, addr, runtime.GOMAXPROCS(0))
	fmt.Printf("%-9s %9s %12s %10s %10s %10s %10s\n",
		"workload", "ops", "Mops/s", "mean_us", "p50_us", "p99_us", "p99.99_us")

	var cells []netCell
	for _, kind := range netKinds {
		cell, err := runNetWorkload(addr, kind, keys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload %s: %v\n", kind, err)
			os.Exit(1)
		}
		cells = append(cells, cell)
		fmt.Printf("%-9s %9d %12.3f %10.1f %10.1f %10.1f %10.1f\n",
			cell.Kind, cell.Ops, cell.Mops,
			float64(cell.MeanNS)/1e3, float64(cell.P50NS)/1e3,
			float64(cell.P99NS)/1e3, float64(cell.P9999NS)/1e3)
	}

	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		idx.Close()
	}

	if *netJSON != "" {
		out := struct {
			Dataset string    `json:"dataset"`
			Keys    int       `json:"keys"`
			Cells   []netCell `json:"workloads"`
		}{s.Name, len(keys), cells}
		data, _ := json.MarshalIndent(out, "", "  ")
		if err := os.WriteFile(*netJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "net-json:", err)
		}
	}
}

// runNetWorkload preloads the workload's fraction of the dataset through one
// batching client, stripes the measured ops over the client goroutines, and
// replays them concurrently, recording client-observed per-op latency.
//
// The index is rebuilt for every workload (delete everything first) so each
// row starts from the workload's own preload state, like fig8's fresh index
// per cell.
func runNetWorkload(addr string, kind workload.Kind, keys []uint64) (netCell, error) {
	ctx := context.Background()
	ops := *opsFlag
	if ops == 0 {
		ops = len(keys) / 2
	}
	plan := workload.Build(workload.Config{Kind: kind, Keys: keys, Ops: ops, Seed: *seedFlag})

	// Reset + preload through one client with the batch opcodes.
	c0, err := client.Dial(addr, append(protoOpts(), client.WithPoolSize(1))...)
	if err != nil {
		return netCell{}, err
	}
	defer c0.Close()
	const chunk = 4096
	s := c0.ScanStream(ctx, 0, 0)
	var live []uint64
	for s.Next() {
		live = append(live, s.Key())
	}
	if err := s.Err(); err != nil {
		return netCell{}, err
	}
	for i := 0; i < len(live); i += chunk {
		if _, err := c0.DeleteBatch(ctx, live[i:min(i+chunk, len(live))]); err != nil {
			return netCell{}, err
		}
	}
	pre := keys[:plan.PreloadCount]
	for i := 0; i < len(pre); i += chunk {
		end := i + chunk
		if end > len(pre) {
			end = len(pre)
		}
		if err := c0.InsertBatch(ctx, pre[i:end], pre[i:end]); err != nil {
			return netCell{}, err
		}
	}

	stripes := workload.Stripe(plan.Ops, *netClients)
	hists := make([]lathist.Hist, *netClients)
	errs := make([]error, *netClients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, stripe := range stripes {
		wg.Add(1)
		go func(i int, stripe []workload.Op) {
			defer wg.Done()
			errs[i] = replayStripe(ctx, addr, stripe, &hists[i])
		}(i, stripe)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return netCell{}, err
		}
	}

	var h lathist.Hist
	for i := range hists {
		h.Merge(&hists[i])
	}
	n := len(plan.Ops)
	return netCell{
		Kind:       string(kind),
		Clients:    *netClients,
		Ops:        n,
		Mops:       float64(n) / wall.Seconds() / 1e6,
		MeanNS:     h.Mean().Nanoseconds(),
		P50NS:      h.Quantile(0.5).Nanoseconds(),
		P99NS:      h.Quantile(0.99).Nanoseconds(),
		P9999NS:    h.Quantile(0.9999).Nanoseconds(),
		WallMillis: wall.Milliseconds(),
	}, nil
}

// The netscan experiment contrasts the two ways a full scan can travel:
// slurped v1 pages (each response marshalled whole before its first byte
// moves, 64Ki pairs ≈ 1 MiB per frame, one round trip of dead air between
// pages) against the v2 chunk stream (small frames, credit flow control,
// the server never buffering beyond the window). Each mode gets a fresh
// in-process server so the out-queue peak metric isolates that mode's
// server-side buffering.
type scanCell struct {
	Mode            string  `json:"mode"`
	Keys            int     `json:"keys"`
	ChunkPairs      int     `json:"chunk_pairs"`
	WallMillis      int64   `json:"wall_ms"`
	FirstPairMicros int64   `json:"first_pair_us"`
	MpairsPerSec    float64 `json:"mpairs_per_sec"`
	ServerPeakBytes int64   `json:"server_out_queue_peak_bytes"`
}

func netScanExp() {
	n := *scanKeys
	fmt.Printf("Full-scan transport comparison: %d keys, GOMAXPROCS %d\n", n, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %12s %10s %14s %12s %22s\n",
		"mode", "chunk_pairs", "wall_ms", "first_pair_us", "Mpairs/s", "server_peak_bytes")

	modes := []struct {
		name  string
		chunk int
		opts  []client.Option
	}{
		// The legacy shape: v1 wire, pages as big as one OpScan allows.
		{"slurped-v1", proto.MaxScan, []client.Option{client.WithV1Protocol(), client.WithScanStream(proto.MaxScan, 1)}},
		// The v2 stream at the client defaults.
		{"streamed-v2", 1024, []client.Option{client.WithScanStream(1024, 8)}},
	}
	var cells []scanCell
	for _, mode := range modes {
		cell, err := runNetScan(n, mode.chunk, mode.opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netscan %s: %v\n", mode.name, err)
			os.Exit(1)
		}
		cell.Mode = mode.name
		cells = append(cells, cell)
		fmt.Printf("%-12s %12d %10d %14d %12.3f %22d\n",
			cell.Mode, cell.ChunkPairs, cell.WallMillis, cell.FirstPairMicros,
			cell.MpairsPerSec, cell.ServerPeakBytes)
	}

	if *scanJSON != "" {
		out := struct {
			Keys  int        `json:"keys"`
			Cells []scanCell `json:"modes"`
		}{n, cells}
		data, _ := json.MarshalIndent(out, "", "  ")
		if err := os.WriteFile(*scanJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scan-json:", err)
		}
	}
}

func runNetScan(n, chunk int, opts []client.Option) (scanCell, error) {
	idx := core.New(core.Options{Concurrent: true})
	defer idx.Close()
	for k := 0; k < n; k++ {
		idx.Insert(uint64(k), uint64(k)+1)
	}
	m := &server.Metrics{}
	srv := server.New(server.Config{Index: idx, Metrics: m})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return scanCell{}, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}()

	c, err := client.Dial(ln.Addr().String(), append(opts, client.WithPoolSize(1))...)
	if err != nil {
		return scanCell{}, err
	}
	defer c.Close()

	t0 := time.Now()
	s := c.ScanStream(context.Background(), 0, 0)
	defer s.Close()
	var count int
	var firstPair time.Duration
	for s.Next() {
		if count == 0 {
			firstPair = time.Since(t0)
		}
		count++
	}
	wall := time.Since(t0)
	if err := s.Err(); err != nil {
		return scanCell{}, err
	}
	if count != n {
		return scanCell{}, fmt.Errorf("scan delivered %d pairs, want %d", count, n)
	}
	return scanCell{
		Keys:            n,
		ChunkPairs:      chunk,
		WallMillis:      wall.Milliseconds(),
		FirstPairMicros: firstPair.Microseconds(),
		MpairsPerSec:    float64(n) / wall.Seconds() / 1e6,
		ServerPeakBytes: m.OutQueuePeakBytes(),
	}, nil
}

// replayStripe executes one client's substream, timing each logical op
// (an RMW is one op: a read round trip then an update round trip).
func replayStripe(ctx context.Context, addr string, stripe []workload.Op, h *lathist.Hist) error {
	c, err := client.Dial(addr, append(protoOpts(), client.WithPoolSize(1))...)
	if err != nil {
		return err
	}
	defer c.Close()
	for _, op := range stripe {
		t0 := time.Now()
		switch op.Type {
		case workload.OpInsert, workload.OpUpdate:
			err = c.Insert(ctx, op.Key, op.Val)
		case workload.OpRead:
			_, _, err = c.Get(ctx, op.Key)
		case workload.OpScan:
			s := c.ScanStream(ctx, op.Key, workload.ScanLen)
			for s.Next() {
			}
			err = s.Err()
			s.Close()
		case workload.OpRMW:
			if _, _, err = c.Get(ctx, op.Key); err == nil {
				err = c.Insert(ctx, op.Key, op.Val)
			}
		}
		if err != nil {
			return err
		}
		h.Record(time.Since(t0))
	}
	return nil
}
