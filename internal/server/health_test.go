package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dytis/internal/cluster"
	"dytis/internal/core"
	"dytis/internal/server"
)

// probe hits a HealthHandler and decodes its JSON body.
func probe(t *testing.T, h http.Handler) (int, map[string]any, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("body %q is not JSON: %v", rec.Body.String(), err)
	}
	return rec.Code, body, rec.Body.String()
}

// waitReady waits out the gap between start() returning and the Serve
// goroutine flipping the serving flag.
func waitReady(t *testing.T, srv *server.Server) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if srv.Ready() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func TestHealthzJSON(t *testing.T) {
	idx := core.New(smallOpts())
	_, srv := start(t, idx, server.Config{})
	waitReady(t, srv)

	h := server.HealthHandler(srv, nil)
	code, body, raw := probe(t, h)
	if code != http.StatusOK {
		t.Fatalf("serving healthz = %d, want 200", code)
	}
	if body["status"] != "ok" {
		t.Fatalf(`status = %v, want "ok"`, body["status"])
	}
	// CI's liveness check greps the body for "ok"; keep that contract.
	if !strings.Contains(raw, "ok") {
		t.Fatalf("body %q does not contain the grep-able ok", raw)
	}
	// A non-cluster server reports no shard fields.
	if _, has := body["shard"]; has {
		t.Fatalf("non-cluster body has shard field: %v", body)
	}
	if _, has := body["epoch"]; has {
		t.Fatalf("non-cluster body has epoch field: %v", body)
	}
}

func TestHealthzShardFields(t *testing.T) {
	p := startShard(t, 0, ^uint64(0))
	m, err := cluster.Uniform(7, []string{p.addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.node.SetMap(0, ^uint64(0), m.Encode()); err != nil {
		t.Fatal(err)
	}
	waitReady(t, p.srv)

	code, body, _ := probe(t, server.HealthHandler(p.srv, p.node))
	if code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if body["status"] != "ok" {
		t.Fatalf(`status = %v, want "ok"`, body["status"])
	}
	if body["epoch"] != float64(7) {
		t.Fatalf("epoch = %v, want 7", body["epoch"])
	}
	shard, ok := body["shard"].(map[string]any)
	if !ok {
		t.Fatalf("shard field missing or malformed: %v", body)
	}
	if shard["lo"] != "0x0" || shard["hi"] != "0xffffffffffffffff" {
		t.Fatalf("shard range = %v, want 0x0..0xffffffffffffffff", shard)
	}
}

func TestHealthzDraining(t *testing.T) {
	idx := core.New(smallOpts())
	srv := server.New(server.Config{Index: idx})
	// Never served: Ready() is false both before Serve and after Shutdown.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)

	code, body, _ := probe(t, server.HealthHandler(srv, nil))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", code)
	}
	if body["status"] != "draining" {
		t.Fatalf(`status = %v, want "draining"`, body["status"])
	}
}
