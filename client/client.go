// Package client is the Go client for dytis-server, speaking the
// length-prefixed binary protocol of internal/proto with request
// pipelining, connection pooling, batch helpers, context-based timeouts,
// and bounded reconnect with exponential backoff.
//
// A Client is safe for concurrent use and that is the intended way to use
// it: goroutines issuing requests on the same Client share its pooled
// connections, and because every request carries an id that the server
// echoes, many requests ride one connection concurrently — the write side
// interleaves frames, the read loop routes each response to its waiter. A
// single goroutine gets pipelining for free the same way by issuing batch
// calls (GetBatch/InsertBatch/DeleteBatch), which amortize both framing and
// the server's per-op dispatch.
//
// Error semantics: an operation fails with the server's error for rejected
// requests, with ctx.Err() on timeout/cancellation, and with a connection
// error when the link dies mid-flight (e.g. the server restarts). The
// client never silently retries an operation after its bytes may have
// reached the server — a failed Insert may or may not have applied, and
// only the caller knows whether re-issuing is safe — but the next operation
// on the client transparently redials (bounded attempts, jittered
// exponential backoff), so a restarted server resumes service without new
// Dial calls.
//
// Overload and failure handling: when the server sheds a request under
// admission control, the operation fails with an error matching
// ErrOverload, and errors.As against *OverloadError yields the server's
// retry-after hint. A circuit breaker (see WithCircuitBreaker) watches
// connection-level failures and overloads: after enough consecutive ones
// it opens, failing operations instantly with ErrCircuitOpen instead of
// hammering a struggling server, and after a cooldown it lets a single
// probe through (half-open) — one success closes it again. When the
// calling context carries a deadline, the remaining budget is propagated
// to the server on the wire, letting it skip requests whose caller has
// already given up.
//
// Close semantics: Close is idempotent and safe to call concurrently with
// operations. It closes every pooled connection; operations blocked on a
// response fail promptly, and every entry point called after Close —
// including ones racing with it — returns an error matching
// ErrClientClosed. A closed client never redials; create a new Client with
// Dial to reconnect.
//
//	c, err := client.Dial("127.0.0.1:7070")
//	defer c.Close()
//	err = c.Insert(ctx, 42, 1)
//	v, ok, err := c.Get(ctx, 42)
//	keys, vals, err := c.Scan(ctx, 0, 100)
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/proto"
)

// The client promises that every caller-facing wait respects the caller's
// context; ctxcheck (tools/analyzers) enforces it package-wide.
//
//dytis:ctxcheck

// ErrClientClosed is returned by every entry point invoked after Close
// (match with errors.Is).
var ErrClientClosed = errors.New("client: closed")

// ErrClosed is a deprecated alias for ErrClientClosed.
//
// Deprecated: use ErrClientClosed.
var ErrClosed = ErrClientClosed

// ErrOverload matches (via errors.Is) the error of an operation the server
// shed under admission control; errors.As with *OverloadError recovers the
// retry-after hint.
var ErrOverload = errors.New("client: server overloaded")

// ErrCircuitOpen matches (via errors.Is) operations failed fast by the
// circuit breaker while it is open: the server has produced enough
// consecutive connection failures or overloads that the client backs off
// entirely until the breaker's cooldown lets a probe through.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// ErrFrameCorrupt matches (via errors.Is) operations that failed because a
// frame flunked CRC32C verification with protocol v2 negotiated — either a
// server frame the client caught, or a client frame the server answered
// with StatusChecksum. The connection is retired in both cases: a stream
// that has carried corruption cannot be trusted to stay aligned.
var ErrFrameCorrupt = errors.New("client: frame failed checksum verification")

// OverloadError is the typed error of a request shed by the server.
type OverloadError struct {
	// RetryAfter is the server's hint for when to try again (zero when the
	// server sent none or it did not parse).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: server overloaded; retry after %s", e.RetryAfter)
	}
	return "client: server overloaded"
}

// Is makes errors.Is(err, ErrOverload) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// ErrWrongShard matches (via errors.Is) operations a shard server answered
// with StatusWrongShard: the key (or scan epoch) no longer belongs to it.
// errors.As with *WrongShardError recovers the server's current shard map.
// Cluster handles these transparently; it surfaces only from Client used
// directly against a shard server.
var ErrWrongShard = errors.New("client: wrong shard")

// WrongShardError is the typed error of a request redirected by a shard
// server.
type WrongShardError struct {
	// MapBlob is the server's current encoded shard map (cluster.DecodeMap
	// parses it). Empty when the server has none installed or the
	// connection speaks protocol v1, which cannot carry it.
	MapBlob []byte
	// Msg is the server's diagnostic.
	Msg string
}

func (e *WrongShardError) Error() string {
	return "client: wrong shard: " + e.Msg
}

// Is makes errors.Is(err, ErrWrongShard) match.
func (e *WrongShardError) Is(target error) bool { return target == ErrWrongShard }

// Option configures a Client at Dial time.
type Option func(*options)

// Dialer opens the client's transport connections; the default is a plain
// TCP dial. Replace it with WithDialer to route through a proxy or a
// fault-injected conn (internal/fault) in chaos tests.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

type options struct {
	poolSize    int
	pipeline    int
	dialTimeout time.Duration
	reqTimeout  time.Duration
	redials     int
	backoffMin  time.Duration
	backoffMax  time.Duration
	breakTrips  int           // consecutive failures that open the breaker; 0 = disabled
	breakCool   time.Duration // open-state cooldown before a half-open probe
	dialer      Dialer
	forceV1     bool // never attempt the v2 handshake
	requireV2   bool // fail the dial unless v2 with checksums is negotiated
	scanChunk   int  // streaming-scan per-chunk pair bound (and fallback page size)
	scanWindow  int  // streaming-scan credit window
}

func defaultOptions() options {
	return options{
		poolSize:    2,
		pipeline:    128,
		dialTimeout: 5 * time.Second,
		reqTimeout:  0, // context-only by default
		redials:     4,
		backoffMin:  25 * time.Millisecond,
		backoffMax:  1 * time.Second,
		breakTrips:  16,
		breakCool:   500 * time.Millisecond,
		scanChunk:   1024,
		scanWindow:  8,
	}
}

// WithPoolSize sets how many connections the client keeps to the server
// (default 2). Requests are spread round-robin; more connections help many
// goroutines more than they help one.
func WithPoolSize(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithPipeline caps the requests one connection keeps in flight (default
// 128); at the cap, callers block until a response frees a slot.
func WithPipeline(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.pipeline = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithRequestTimeout applies a default per-request deadline when the
// caller's context has none (default: none — the context rules).
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.reqTimeout = d
		}
	}
}

// WithReconnect bounds transparent redialing of a broken pool slot:
// attempts tries per operation, with jittered exponential backoff from min
// to max between consecutive failures of that slot (defaults: 4 tries,
// 25ms–1s). Jitter (±25%) keeps a fleet of clients from re-dialing a
// recovering server in lockstep.
func WithReconnect(attempts int, min, max time.Duration) Option {
	return func(o *options) {
		if attempts > 0 {
			o.redials = attempts
		}
		if min > 0 {
			o.backoffMin = min
		}
		if max >= min && max > 0 {
			o.backoffMax = max
		}
	}
}

// WithCircuitBreaker tunes the client's circuit breaker: after trips
// consecutive connection failures or overloads the breaker opens and
// operations fail fast with ErrCircuitOpen; after cooldown one probe is
// let through (half-open) and its success closes the breaker. Defaults:
// 16 trips, 500ms cooldown. trips <= 0 disables the breaker.
func WithCircuitBreaker(trips int, cooldown time.Duration) Option {
	return func(o *options) {
		o.breakTrips = trips
		if cooldown > 0 {
			o.breakCool = cooldown
		}
	}
}

// WithDialer replaces the transport dialer (default: TCP). The chaos test
// suite routes connections through internal/fault with this.
func WithDialer(d Dialer) Option {
	return func(o *options) {
		if d != nil {
			o.dialer = d
		}
	}
}

// WithV1Protocol pins the client to protocol v1: no HELLO handshake is ever
// sent, so the wire traffic is byte-identical to a pre-v2 client. Use it
// against servers that predate the handshake, or to rule the upgrade path
// out when debugging.
func WithV1Protocol() Option {
	return func(o *options) { o.forceV1 = true }
}

// WithRequireV2 refuses to operate below protocol v2 with checksums: a dial
// (or redial) whose handshake does not negotiate FeatCRC fails instead of
// falling back to plain v1. Without it the client upgrades opportunistically
// — which keeps old servers working but means an attacker (or a fault) that
// can corrupt the HELLO exchange can hold the session at v1. Set this when
// the link is untrusted enough that silent downgrade matters.
func WithRequireV2() Option {
	return func(o *options) { o.requireV2 = true }
}

// WithScanStream tunes streaming scans: chunk is the per-chunk pair bound
// (default 1024, capped at proto.MaxScan) and doubles as the page size of
// the v1 pagination fallback; window is the credit window — how many chunks
// the server may run ahead of consumption (default 8, capped at
// proto.MaxScanCredits). Bigger values trade client memory for throughput.
func WithScanStream(chunk, window int) Option {
	return func(o *options) {
		if chunk > 0 {
			o.scanChunk = min(chunk, proto.MaxScan)
		}
		if window > 0 {
			o.scanWindow = min(window, proto.MaxScanCredits)
		}
	}
}

// Client is a pooled, pipelining dytis-server client. Create with Dial; all
// methods are safe for concurrent use.
type Client struct {
	addr string
	o    options
	br   *breaker // nil when the breaker is disabled

	// serverV1 memoizes an explicit v1 refusal (StatusBadRequest to HELLO)
	// so later dials to the same address skip the doomed probe. Only that
	// explicit signal sets it — an ambiguous handshake failure falls back
	// for one connection but probes again on the next dial.
	serverV1 atomic.Bool

	mu     sync.Mutex
	slots  []*slot // guarded-by: mu (slice header; slots have their own locks)
	rr     uint64  // guarded-by: mu
	closed bool    // guarded-by: mu
}

// breaker is the client's circuit breaker. States: closed (normal), open
// (fail fast until cooldown), half-open (one probe in flight). Connection
// failures and overloads count; responses received from the server — even
// error responses — and caller-side context expiries do not.
type breaker struct {
	trips    int
	cooldown time.Duration

	mu       sync.Mutex
	fails    int       // guarded-by: mu — consecutive trip-class failures
	openedAt time.Time // guarded-by: mu — zero when closed
	probing  bool      // guarded-by: mu — a half-open probe is in flight
}

// allow gates an operation: nil to proceed, ErrCircuitOpen to fail fast.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return nil
	}
	if time.Since(b.openedAt) < b.cooldown || b.probing {
		return ErrCircuitOpen
	}
	b.probing = true // half-open: exactly one probe
	return nil
}

// record books an operation's outcome. verdict trips the breaker on
// breakerTrip, closes it on breakerOK, and leaves it untouched otherwise.
func (b *breaker) record(v breakerVerdict) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch v {
	case breakerOK:
		b.fails = 0
		b.openedAt = time.Time{}
		b.probing = false
	case breakerTrip:
		b.fails++
		b.probing = false
		if b.fails >= b.trips {
			b.openedAt = time.Now()
		}
	default: // breakerNeutral: a probe slot must still be released
		b.probing = false
	}
}

type breakerVerdict int

const (
	breakerNeutral breakerVerdict = iota // ctx expiry, client closed
	breakerOK                            // a response arrived (even an error response)
	breakerTrip                          // connection failure or overload
)

// classify maps an operation error to its breaker verdict.
func classify(err error, gotResponse bool) breakerVerdict {
	switch {
	case err == nil:
		return breakerOK
	case errors.Is(err, ErrOverload):
		return breakerTrip
	case errors.Is(err, ErrClientClosed),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return breakerNeutral
	case gotResponse:
		// The server answered (e.g. StatusBadRequest): the link is healthy.
		return breakerOK
	default:
		return breakerTrip // dial, write, or read failure
	}
}

// slot is one pool position: a live connection, or a cooldown record from
// its last failure that the next user must respect before redialing.
type slot struct {
	mu       sync.Mutex
	cc       *clientConn // guarded-by: mu
	failures int         // guarded-by: mu — consecutive dial/IO failures
	lastFail time.Time   // guarded-by: mu — when the last one happened
}

// Dial connects to a dytis-server at addr. The first connection is
// established eagerly so an unreachable address fails here, not on the
// first operation.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, apply := range opts {
		apply(&o)
	}
	if o.forceV1 && o.requireV2 {
		return nil, errors.New("client: WithV1Protocol and WithRequireV2 conflict")
	}
	c := &Client{addr: addr, o: o, slots: make([]*slot, o.poolSize)}
	if o.breakTrips > 0 {
		c.br = &breaker{trips: o.breakTrips, cooldown: o.breakCool}
	}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.slots[0].cc = cc
	return c, nil
}

// Protocol returns the negotiated protocol version and feature bits of a
// live pooled connection (proto.Version1 with no features when the server
// predates the handshake or the client is pinned with WithV1Protocol).
func (c *Client) Protocol(ctx context.Context) (version uint8, features uint32, err error) {
	cc, err := c.conn(ctx)
	if err != nil {
		return 0, 0, err
	}
	return cc.ver, cc.feats, nil
}

// Close shuts the client down: all pooled connections close, their
// in-flight requests fail, and every later operation returns an error
// matching ErrClientClosed. Close is idempotent and safe to call
// concurrently with operations.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	slots := c.slots
	c.mu.Unlock()
	for _, s := range slots {
		s.mu.Lock()
		if s.cc != nil {
			s.cc.fail(ErrClientClosed)
			s.cc = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// conn returns a live connection from the pool, redialing its slot if the
// previous connection died — waiting out the slot's backoff first, bounded
// by both the reconnect budget and ctx.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.rr++
	s := c.slots[c.rr%uint64(len(c.slots))]
	c.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cc != nil && !s.cc.broken() {
		return s.cc, nil
	}
	s.cc = nil
	var lastErr error
	for try := 0; try < c.o.redials; try++ {
		if wait := c.backoff(s); wait > 0 {
			s.mu.Unlock()
			err := sleepCtx(ctx, wait)
			s.mu.Lock()
			if err != nil {
				return nil, err
			}
			if s.cc != nil && !s.cc.broken() { // another goroutine redialed
				return s.cc, nil
			}
		}
		cc, err := c.dialConn()
		if err != nil {
			lastErr = err
			s.failures++
			s.lastFail = time.Now()
			continue
		}
		s.cc = cc
		s.failures = 0
		return cc, nil
	}
	return nil, fmt.Errorf("client: reconnect to %s failed after %d attempts: %w", c.addr, c.o.redials, lastErr)
}

// backoff returns how long the slot's cooldown still has to run. The
// exponential base is jittered ±25% so a client fleet whose server just
// restarted does not redial in lockstep (a thundering herd re-creates the
// overload that killed the server).
//
//dytis:locked s.mu
func (c *Client) backoff(s *slot) time.Duration {
	if s.failures == 0 {
		return 0
	}
	d := c.o.backoffMin << (s.failures - 1)
	if d > c.o.backoffMax || d <= 0 {
		d = c.o.backoffMax
	}
	d = time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
	if elapsed := time.Since(s.lastFail); elapsed < d {
		return d - elapsed
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do sends req on a pooled connection and waits for its response, gated by
// the circuit breaker and with the ctx deadline budget propagated on the
// wire.
func (c *Client) do(ctx context.Context, req *proto.Request) (*proto.Response, error) {
	if c.o.reqTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.o.reqTimeout)
			defer cancel()
		}
	}
	if c.br != nil {
		if err := c.br.allow(); err != nil {
			return nil, err
		}
	}
	resp, err := c.doOnce(ctx, req)
	if c.br != nil {
		c.br.record(classify(err, resp != nil))
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// doOnce is one attempt: pick (or redial) a connection, send, wait, and
// map error statuses to typed errors. A non-nil response alongside a
// non-nil error means the server answered — the link itself is healthy.
func (c *Client) doOnce(ctx context.Context, req *proto.Request) (*proto.Response, error) {
	cc, err := c.conn(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := cc.do(ctx, req)
	if err != nil {
		return nil, err
	}
	if serr, retire := statusErr(resp); serr != nil {
		if retire {
			cc.fail(serr)
		}
		return resp, serr
	}
	return resp, nil
}

// statusErr maps a response's status to the client's typed error surface;
// retire reports that the connection can no longer be trusted and must be
// failed. Every status the protocol defines must be mapped here — a new one
// falling silently into the generic branch would lose its typed meaning —
// so the switch is exhaustive (protocheck enforces it).
func statusErr(resp *proto.Response) (err error, retire bool) {
	//dytis:opswitch statuses
	switch resp.Status {
	case proto.StatusOK:
		return nil, false
	case proto.StatusOverload:
		ra, _ := resp.RetryAfter()
		return &OverloadError{RetryAfter: ra}, false
	case proto.StatusChecksum:
		// The server detected corruption in a frame we sent and is about to
		// quarantine the connection; retire it on this side too.
		return fmt.Errorf("%w (detected server-side)", ErrFrameCorrupt), true
	case proto.StatusWrongShard:
		// The key (or scan epoch) does not belong to the server anymore; the
		// attached map, when present, is the one to re-route from.
		return &WrongShardError{MapBlob: resp.MapBlob, Msg: resp.Msg}, false
	case proto.StatusBadRequest, proto.StatusShuttingDown,
		proto.StatusErr, proto.StatusDeadlineExceeded:
		return resp.Err(), false
	}
	return resp.Err(), false
}

// --- operations -------------------------------------------------------------

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpPing})
	return err
}

// Get returns the value stored under key and whether it exists.
func (c *Client) Get(ctx context.Context, key uint64) (uint64, bool, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Found, nil
}

// Insert stores or updates value under key.
func (c *Client) Insert(ctx context.Context, key, value uint64) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpInsert, Key: key, Val: value})
	return err
}

// Delete removes key, reporting whether it was present.
func (c *Client) Delete(ctx context.Context, key uint64) (bool, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// Scan returns up to max pairs with key >= start in ascending key order, as
// parallel key/value slices. max is capped by the protocol at proto.MaxScan
// (65536); page with the last key + 1 to go further.
//
// Deprecated: Scan materializes the whole result before returning. Use
// ScanStream, which streams the pairs in bounded chunks with no size cap;
// Scan is now a thin wrapper over it.
func (c *Client) Scan(ctx context.Context, start uint64, max int) (keys, vals []uint64, err error) {
	if max <= 0 {
		return nil, nil, nil
	}
	if max > proto.MaxScan {
		max = proto.MaxScan
	}
	s := c.ScanStream(ctx, start, max)
	defer s.Close()
	for s.Next() {
		keys = append(keys, s.Key())
		vals = append(vals, s.Value())
	}
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return keys, vals, nil
}

// GetBatch looks up every key of keys in one round trip, returning parallel
// result slices (vals[i], found[i] answer keys[i]). At most proto.MaxBatch
// (65536) keys per call.
func (c *Client) GetBatch(ctx context.Context, keys []uint64) (vals []uint64, found []bool, err error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpGetBatch, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	return resp.Vals, resp.Founds, nil
}

// InsertBatch stores vals[i] under keys[i] for every i in one round trip.
// At most proto.MaxBatch pairs per call; the batch is not atomic on the
// server, it is an amortization.
func (c *Client) InsertBatch(ctx context.Context, keys, vals []uint64) error {
	_, err := c.do(ctx, &proto.Request{Op: proto.OpInsertBatch, Keys: keys, Vals: vals})
	return err
}

// DeleteBatch removes every key of keys in one round trip, returning
// whether each was present.
func (c *Client) DeleteBatch(ctx context.Context, keys []uint64) ([]bool, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpDeleteBatch, Keys: keys})
	if err != nil {
		return nil, err
	}
	return resp.Founds, nil
}

// Len returns the number of live keys in the served index.
func (c *Client) Len(ctx context.Context) (int, error) {
	resp, err := c.do(ctx, &proto.Request{Op: proto.OpLen})
	if err != nil {
		return 0, err
	}
	return int(resp.Val), nil
}
