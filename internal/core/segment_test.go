package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildSegment creates a segment holding the given ascending keys with a
// count-proportional allocation — the states rebuilds produce.
func buildSegment(t testing.TB, rangeBits uint8, nb, bcap int, pbits uint8, keys []uint64) *segment {
	s := newSegment(0, rangeBits, 0, nb, bcap, pbits)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = keys[i] + 1
	}
	s.adoptLayout(s.pbits, s.cnt, nb, keys, vals)
	if err := s.checkInvariants(); err != nil {
		t.Fatalf("buildSegment: %v", err)
	}
	return s
}

func ascKeys(n int, gap uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i+1) * gap
	}
	return out
}

func TestEvenSplit(t *testing.T) {
	cnt := make([]uint32, 4)
	evenSplit(cnt, 10)
	want := []uint32{3, 3, 2, 2}
	for i := range want {
		if cnt[i] != want[i] {
			t.Fatalf("evenSplit = %v", cnt)
		}
	}
}

func TestAllocProportionalSumsExactly(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		w := make([]int, n)
		for i := range w {
			w[i] = rng.Intn(100)
		}
		total := 1 + rng.Intn(1000)
		out := allocProportional(w, total)
		sum := uint32(0)
		for _, c := range out {
			sum += c
		}
		if int(sum) != total {
			return false
		}
		// Smoothed variant must also sum exactly and give every sub-range
		// weight when others dominate.
		out2 := allocSmoothed(w, total)
		sum = 0
		for _, c := range out2 {
			sum += c
		}
		return int(sum) == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocSmoothedReservesForEmptyRanges(t *testing.T) {
	// One sub-range has all the keys; smoothing must still leave buckets
	// for the others.
	w := []int{1000, 0, 0, 0}
	out := allocSmoothed(w, 40)
	if out[1] == 0 || out[3] == 0 {
		t.Fatalf("smoothing left empty ranges bucketless: %v", out)
	}
	if out[0] < out[1] {
		t.Fatalf("smoothing inverted proportionality: %v", out)
	}
}

func TestPredictWithExactBoundaries(t *testing.T) {
	// 4 sub-ranges, rangeBits 8 (width 256), cnt = [2,4,1,1], nb=8.
	cnt := []uint32{2, 4, 1, 1}
	start := prefixSums(cnt)
	probe := func(r uint64) int { return predictWith(r, 8, 2, cnt, start, 8) }
	if got := probe(0); got != 0 {
		t.Fatalf("predict(0)=%d", got)
	}
	if got := probe(63); got != 1 { // end of sub-range 0: 63/64*2 = 1
		t.Fatalf("predict(63)=%d", got)
	}
	if got := probe(64); got != 2 { // start of sub-range 1
		t.Fatalf("predict(64)=%d", got)
	}
	if got := probe(128); got != 6 { // start of sub-range 2
		t.Fatalf("predict(128)=%d", got)
	}
	if got := probe(255); got != 7 { // last key -> last bucket
		t.Fatalf("predict(255)=%d", got)
	}
}

func TestCandidateAgainstLinearScan(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 2 + rng.Intn(30)
		bcap := 4
		// Sparse random keys leave plenty of empty buckets.
		n := rng.Intn(nb * bcap / 2)
		keySet := map[uint64]bool{}
		for len(keySet) < n {
			keySet[uint64(rng.Intn(1<<16))] = true
		}
		keys := make([]uint64, 0, n)
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		s := buildSegment(t, 16, nb, bcap, uint8(rng.Intn(3)), keys)
		for probe := 0; probe < 200; probe++ {
			k := uint64(rng.Intn(1 << 16))
			got := s.candidate(k, s.predict(k))
			// Reference: last non-empty bucket with first key <= k.
			want := -1
			for j := 0; j < s.nb; j++ {
				if s.sz[j] > 0 && s.firstKey(j) <= k {
					want = j
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeRoomPreservesOrderAndContent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 4 + rng.Intn(12)
		bcap := 4
		n := nb * bcap * 3 / 4
		keys := ascKeys(n, 3)
		s := buildSegment(t, 16, nb, bcap, 2, keys)
		// Fill one bucket to capacity by targeted inserts, then makeRoom.
		for tries := 0; tries < 50; tries++ {
			full := -1
			for j := 0; j < s.nb; j++ {
				if int(s.sz[j]) == bcap {
					full = j
					break
				}
			}
			if full < 0 {
				// Force one: insert next to an existing key.
				k := keys[rng.Intn(len(keys))] + 1
				bi, pos, exists, fullFlag := s.findSlot(k)
				if !exists && !fullFlag {
					s.insertAt(bi, pos, k, k)
				}
				continue
			}
			before := s.total
			if !s.makeRoom(full, s.nb) {
				return true // nothing to borrow: segment truly full
			}
			if s.total != before {
				return false
			}
			if int(s.sz[full]) >= bcap {
				return false // makeRoom must free a slot in the target
			}
			if s.checkInvariants() != nil {
				return false
			}
		}
		return s.checkInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeRoomFailsWhenSegmentFull(t *testing.T) {
	keys := ascKeys(16, 2)
	s := buildSegment(t, 12, 4, 4, 0, keys) // 4x4 completely full
	if s.makeRoom(1, 4) {
		t.Fatal("makeRoom succeeded on a full segment")
	}
}

func TestFKCacheMaintainedUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := buildSegment(t, 20, 16, 4, 2, ascKeys(30, 11))
	live := map[uint64]uint64{}
	for _, k := range ascKeys(30, 11) {
		live[k] = k + 1
	}
	for op := 0; op < 5000; op++ {
		k := uint64(rng.Intn(1 << 9))
		bi, pos, exists, full := s.findSlot(k)
		switch {
		case exists && rng.Intn(2) == 0:
			s.removeAt(bi, pos)
			delete(live, k)
		case !exists && !full && s.total < s.nb*s.bcap:
			s.insertAt(bi, pos, k, k+1)
			live[k] = k + 1
		}
		if op%500 == 0 {
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.total != len(live) {
		t.Fatalf("total=%d want %d", s.total, len(live))
	}
	for k, v := range live {
		got, ok := s.get(k)
		if !ok || got != v {
			t.Fatalf("get(%d) = %d,%v", k, got, ok)
		}
	}
}

func TestAdoptLayoutRespectsThreshHeadroom(t *testing.T) {
	// With 2x slack, no bucket should exceed the 75% spill threshold.
	keys := ascKeys(64, 5)
	s := buildSegment(t, 16, 32, 4, 2, keys) // capacity 128 for 64 keys
	for j := 0; j < s.nb; j++ {
		if int(s.sz[j]) == s.bcap {
			t.Fatalf("bucket %d packed to capacity despite slack", j)
		}
	}
}

func TestCountBelow(t *testing.T) {
	s := buildSegment(t, 16, 8, 4, 1, ascKeys(20, 7)) // keys 7,14,...,140
	if got := s.countBelow(0); got != 0 {
		t.Fatalf("countBelow(0)=%d", got)
	}
	if got := s.countBelow(50); got != 7 { // 7..49: 7 keys
		t.Fatalf("countBelow(50)=%d", got)
	}
	if got := s.countBelow(1 << 15); got != 20 {
		t.Fatalf("countBelow(max)=%d", got)
	}
}

func TestSubRangeOfAndHistogram(t *testing.T) {
	s := buildSegment(t, 8, 4, 4, 2, []uint64{1, 2, 100, 200, 250})
	counts := s.subRangeKeyCounts(2)
	want := []int{2, 1, 0, 2} // width 64: {1,2}, {100}, {}, {200,250}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts=%v want %v", counts, want)
		}
	}
	if s.subRangeOf(100) != 1 || s.subRangeOf(255) != 3 {
		t.Fatal("subRangeOf wrong")
	}
}
