package wal

import (
	"bufio"
	"cmp"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"dytis/internal/core"
)

// RecoveryInfo reports what Open had to do: which checkpoint it started
// from, how much log it replayed, and whether it discarded a torn tail.
type RecoveryInfo struct {
	// CheckpointSeq is the checkpoint recovery started from; 0 means the
	// directory never checkpointed (recovery was pure log replay).
	CheckpointSeq uint64
	// CheckpointKeys is how many keys that checkpoint loaded.
	CheckpointKeys int
	// CorruptCheckpoints counts newer checkpoints skipped as unreadable.
	CorruptCheckpoints int
	// Segments and Records count what replay processed after the checkpoint.
	Segments int
	Records  int64
	// TornTail reports that the newest segment ended in a partial record —
	// the expected signature of kill -9 mid-append — which was discarded
	// and physically truncated away.
	TornTail bool
	// Elapsed is the wall time of the whole recovery.
	Elapsed time.Duration
}

// Open recovers a Store from dir, creating it if needed.
//
// Recovery: load the newest checkpoint that reads back valid (falling back
// past corrupt ones — each costs a CorruptCheckpoints tick), then replay
// the segments at and after its sequence number in order. If checkpoints
// exist but none reads back, Open fails with ErrCorrupt: the log before the
// oldest checkpoint was truncated when it was taken, so a fresh index plus
// the surviving tail would be silent data loss, not recovery. A torn
// record at the tail of the newest segment is tolerated:
// everything after the last valid record is discarded and truncated away,
// so the invariant "torn tails only ever appear in the newest segment"
// survives repeated crashes. A bad record anywhere else — or a gap in the
// segment sequence — is real corruption and fails with ErrCorrupt: errors
// are acceptable, silently wrong answers are not.
//
// Appends then resume in a fresh segment after the newest existing one;
// recovered segments are never appended to again.
func Open(dir string, o Options) (*Store, error) {
	start := time.Now()
	opts := o.withDefaults()
	m := opts.Metrics
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		m:        m,
		ckptKick: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}

	segs, ckpts, err := scanDir(dir, s.logf)
	if err != nil {
		return nil, err
	}

	// Newest checkpoint that loads cleanly wins; corrupt ones are skipped
	// (they stay on disk for forensics until the next checkpoint truncation).
	slices.SortFunc(ckpts, func(a, b uint64) int { return cmp.Compare(b, a) }) // descending
	for _, cq := range ckpts {
		idx := core.New(opts.Index)
		if err := idx.ReadSnapshotFile(filepath.Join(dir, checkpointName(cq))); err != nil {
			s.logf("wal: skipping corrupt checkpoint %d: %v", cq, err)
			s.info.CorruptCheckpoints++
			continue
		}
		s.idx, s.info.CheckpointSeq, s.info.CheckpointKeys = idx, cq, idx.Len()
		break
	}
	if s.idx == nil {
		// No checkpoint loaded. If checkpoints existed but none read back,
		// the data they subsumed is gone — the segments before the oldest
		// checkpoint were truncated away when it was taken, so starting
		// fresh and replaying the surviving tail would silently drop every
		// acked write the checkpoints held. Errors are acceptable, silent
		// loss is not.
		if s.info.CorruptCheckpoints > 0 {
			return nil, fmt.Errorf("%w: all %d checkpoints unreadable, newest %d — refusing to recover from the log tail alone",
				ErrCorrupt, s.info.CorruptCheckpoints, ckpts[0])
		}
		s.idx = core.New(opts.Index)
	}

	// Replay segments >= the checkpoint, in order, contiguously.
	slices.Sort(segs)
	replay := segs[:0:0]
	for _, sq := range segs {
		if sq >= s.info.CheckpointSeq {
			replay = append(replay, sq)
		}
	}
	if c := s.info.CheckpointSeq; c != 0 && (len(replay) == 0 || replay[0] != c) {
		return nil, fmt.Errorf("%w: checkpoint %d present but segment %d missing", ErrCorrupt, c, c)
	}
	for i, sq := range replay {
		if i > 0 && sq != replay[i-1]+1 {
			return nil, fmt.Errorf("%w: segment gap: %d follows %d", ErrCorrupt, sq, replay[i-1])
		}
		if err := s.replaySegment(sq, i == len(replay)-1); err != nil {
			return nil, err
		}
		s.info.Segments++
	}

	// Appends go to a fresh segment: one past the newest, or — with a
	// checkpoint and no segments at all — the checkpoint's own number, so
	// the ckpt-n ⇒ replay-from-segment-n convention holds either way.
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	} else if s.info.CheckpointSeq > 0 {
		next = s.info.CheckpointSeq
	}
	log, err := openLog(dir, next, opts.Fsync, m)
	if err != nil {
		return nil, err
	}
	log.onRotate = opts.Hooks.Rotate
	s.log = log

	s.info.Elapsed = time.Since(start)
	m.replayedRecords.Store(s.info.Records)
	m.recoveryNS.Store(s.info.Elapsed.Nanoseconds())
	go s.run()
	return s, nil
}

// replaySegment applies one segment's records to the recovering index.
// newest tells it whether torn-tail tolerance applies.
func (s *Store) replaySegment(seq uint64, newest bool) error {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: segment %d: %v", ErrCorrupt, seq, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	insert := func(k, v uint64) { s.idx.Insert(k, v) }
	del := func(k uint64) { s.idx.Delete(k) }

	var buf []byte
	var valid int64 // byte offset past the last fully applied record
	for {
		var payload []byte
		payload, buf, err = readRecord(br, buf)
		if err == io.EOF {
			return nil
		}
		if err == nil {
			err = replayPayload(payload, insert, del)
		}
		if err != nil {
			if !newest || !errors.Is(err, errTorn) {
				return fmt.Errorf("%w: segment %d at offset %d: %v", ErrCorrupt, seq, valid, err)
			}
			// Torn tail of the newest segment: the crash signature. Discard
			// it and truncate the file so the segment replays cleanly once
			// it is no longer the newest.
			s.logf("wal: discarding torn tail of segment %d at offset %d: %v", seq, valid, err)
			s.info.TornTail = true
			s.m.tornTails.Add(1)
			if err := truncateAt(path, valid); err != nil {
				return fmt.Errorf("wal: truncating torn tail of segment %d: %w", seq, err)
			}
			return nil
		}
		valid += recHeaderLen + int64(len(payload))
		s.info.Records++
	}
}

// truncateAt cuts a segment to length n and fsyncs the result.
func truncateAt(path string, n int64) error {
	if err := os.Truncate(path, n); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// scanDir inventories a WAL directory: segment and checkpoint sequence
// numbers, sweeping the temp files an interrupted checkpoint leaves behind.
// Unrecognized names are reported and left alone.
func scanDir(dir string, logf func(string, ...any)) (segs, ckpts []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
		case strings.Contains(name, ".tmp"):
			// An interrupted checkpoint's unrenamed snapshot: never valid,
			// safe to sweep.
			if err := os.Remove(filepath.Join(dir, name)); err != nil && logf != nil {
				logf("wal: sweeping %s: %v", name, err)
			}
		default:
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				segs = append(segs, seq)
			} else if seq, ok := parseSeq(name, "ckpt-", ".snap"); ok {
				ckpts = append(ckpts, seq)
			} else if logf != nil {
				logf("wal: ignoring unrecognized file %s", name)
			}
		}
	}
	return segs, ckpts, nil
}

func removeFile(dir, name string) error {
	if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
