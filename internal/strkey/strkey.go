// Package strkey adapts DyTIS's integer key space to string keys, the
// extension direction §5 of the paper discusses (SIndex/Wormhole handle
// strings natively; DyTIS targets 8-byte integer keys).
//
// Encode packs a string's first 8 bytes big-endian, which preserves
// lexicographic order: Encode(a) < Encode(b) whenever a < b differ within
// the first 8 bytes. Strings sharing an 8-byte prefix collide; Map layers a
// per-prefix overflow list on top of a DyTIS index so lookups stay exact and
// scans stay ordered, while short keys pay no overhead.
package strkey

import (
	"sort"

	"dytis/internal/core"
)

// Encode maps a string to an order-preserving uint64: the first 8 bytes,
// big-endian, zero-padded. Strings equal in their first 8 bytes map to the
// same value.
func Encode(s string) uint64 {
	var k uint64
	for i := 0; i < 8; i++ {
		k <<= 8
		if i < len(s) {
			k |= uint64(s[i])
		}
	}
	return k
}

// entry is one string key/value pair in a prefix's overflow list.
type entry struct {
	key string
	val uint64
}

// Map is an ordered map from string keys to uint64 values built on DyTIS.
// Keys with distinct 8-byte prefixes live directly in the index; colliding
// keys share a per-prefix sorted overflow list. Not safe for concurrent use.
type Map struct {
	idx *core.DyTIS
	// overflow holds every prefix shared by 2+ strings.
	overflow map[uint64][]entry
	// resident remembers the full string for keys longer than 8 bytes that
	// are stored directly in the index (short keys reconstruct from the
	// prefix itself).
	resident map[uint64]string
	n        int
}

// NewMap returns an empty string-keyed map with the given DyTIS options.
func NewMap(opts core.Options) *Map {
	return &Map{
		idx:      core.New(opts),
		overflow: map[uint64][]entry{},
		resident: map[uint64]string{},
	}
}

// exact reports whether Encode is injective for this string: no information
// beyond the first 8 bytes.
func exact(s string) bool { return len(s) <= 8 }

// Set stores or updates key.
func (m *Map) Set(key string, value uint64) {
	pk := Encode(key)
	if lst, ok := m.overflow[pk]; ok {
		i := sort.Search(len(lst), func(i int) bool { return lst[i].key >= key })
		if i < len(lst) && lst[i].key == key {
			lst[i].val = value
			return
		}
		lst = append(lst, entry{})
		copy(lst[i+1:], lst[i:])
		lst[i] = entry{key, value}
		m.overflow[pk] = lst
		m.n++
		return
	}
	if old, present := m.idx.Get(pk); present {
		// Prefix occupied: the same string updates in place; a different
		// string sharing the prefix spills both into an overflow list.
		prevKey, prevVal := m.residentKey(pk), old
		if prevKey == key {
			m.idx.Insert(pk, value)
			return
		}
		lst := []entry{{prevKey, prevVal}}
		i := sort.Search(len(lst), func(i int) bool { return lst[i].key >= key })
		lst = append(lst, entry{})
		copy(lst[i+1:], lst[i:])
		lst[i] = entry{key, value}
		m.overflow[pk] = lst
		m.idx.Insert(pk, 0) // value now lives in the overflow list
		delete(m.resident, pk)
		m.n++
		return
	}
	m.idx.Insert(pk, value)
	if !exact(key) {
		if m.resident == nil {
			m.resident = map[uint64]string{}
		}
		m.resident[pk] = key
	}
	m.n++
}

// residentKey reconstructs the string stored directly under pk.
func (m *Map) residentKey(pk uint64) string {
	if s, ok := m.resident[pk]; ok {
		return s
	}
	return decode(pk)
}

// decode inverts Encode for strings of length <= 8 (trailing zeros trimmed).
func decode(pk uint64) string {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(pk)
		pk >>= 8
	}
	n := 8
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return string(b[:n])
}

// Get returns the value for key.
func (m *Map) Get(key string) (uint64, bool) {
	pk := Encode(key)
	if lst, ok := m.overflow[pk]; ok {
		i := sort.Search(len(lst), func(i int) bool { return lst[i].key >= key })
		if i < len(lst) && lst[i].key == key {
			return lst[i].val, true
		}
		return 0, false
	}
	v, ok := m.idx.Get(pk)
	if !ok {
		return 0, false
	}
	if m.residentKey(pk) != key {
		return 0, false
	}
	return v, true
}

// Delete removes key, reporting presence.
func (m *Map) Delete(key string) bool {
	pk := Encode(key)
	if lst, ok := m.overflow[pk]; ok {
		i := sort.Search(len(lst), func(i int) bool { return lst[i].key >= key })
		if i == len(lst) || lst[i].key != key {
			return false
		}
		lst = append(lst[:i], lst[i+1:]...)
		m.n--
		switch len(lst) {
		case 1:
			// Collapse back to a direct resident.
			delete(m.overflow, pk)
			m.idx.Insert(pk, lst[0].val)
			if !exact(lst[0].key) {
				m.resident[pk] = lst[0].key
			}
		case 0:
			delete(m.overflow, pk)
			m.idx.Delete(pk)
		default:
			m.overflow[pk] = lst
		}
		return true
	}
	if _, ok := m.idx.Get(pk); ok && m.residentKey(pk) == key {
		m.idx.Delete(pk)
		delete(m.resident, pk)
		m.n--
		return true
	}
	return false
}

// Len returns the number of live string keys.
func (m *Map) Len() int { return m.n }

// Range calls fn for every pair with key >= start, in lexicographic order,
// until fn returns false.
func (m *Map) Range(start string, fn func(key string, value uint64) bool) {
	c := m.idx.NewCursor(Encode(start))
	for {
		p, ok := c.Next()
		if !ok {
			return
		}
		if lst, over := m.overflow[p.Key]; over {
			for _, e := range lst {
				if e.key < start {
					continue
				}
				if !fn(e.key, e.val) {
					return
				}
			}
			continue
		}
		k := m.residentKey(p.Key)
		if k < start {
			continue
		}
		if !fn(k, p.Value) {
			return
		}
	}
}
