package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/proto"
)

// errServerV1 marks a handshake the server explicitly refused (an old server
// answering the unknown OpHello with StatusBadRequest): the address speaks
// plain v1, which the Client memoizes so later dials skip the probe.
var errServerV1 = errors.New("client: server speaks protocol v1")

// clientConn is one pooled connection. Requests from any number of
// goroutines interleave on it: each registers a waiter keyed by its request
// id, appends its frame under the write lock, and blocks on its own channel;
// the single read loop routes responses by id, so pipelined completions can
// arrive in any order. Streaming scans register a stream channel instead of
// a waiter: every OpScanChunk/OpScanEnd carrying the stream's id routes
// there. When the connection dies every waiter and stream fails with the
// sticky error and the conn is left for the pool to replace.
type clientConn struct {
	nc     net.Conn
	br     *bufio.Reader // shared by handshake and read loop
	nextID atomic.Uint64

	// Negotiated protocol state, written by the handshake before the read
	// loop starts (plain v1 when no handshake ran).
	ver   uint8
	feats uint32

	// inflight bounds pipelining: a slot is taken before writing and
	// released when the response (or failure) arrives.
	inflight chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint64]chan result // guarded-by: mu
	streams map[uint64]chan result // guarded-by: mu — scan streams, keyed by ScanStart id
	err     error                  // guarded-by: mu — sticky; non-nil once the conn is dead
}

type result struct {
	resp *proto.Response
	err  error
}

// dialConn opens one connection for the client: dial, then — unless the
// client is pinned to v1 or the address is memoized as v1 — a synchronous
// HELLO exchange before the read loop starts. A server that explicitly
// refuses the handshake (StatusBadRequest from a pre-v2 build) sets the memo
// and the connection is redialed speaking plain v1; any more ambiguous
// handshake failure falls back to plain v1 for this connection only. With
// WithRequireV2 there is no fallback: a failed negotiation fails the dial.
func (c *Client) dialConn() (*clientConn, error) {
	o := &c.o
	tryV2 := !o.forceV1 && (o.requireV2 || !c.serverV1.Load())
	cc, err := dialRaw(c.addr, o)
	if err != nil {
		return nil, err
	}
	if tryV2 {
		if herr := cc.handshake(o); herr != nil {
			cc.nc.Close()
			if o.requireV2 {
				return nil, herr
			}
			if errors.Is(herr, errServerV1) {
				c.serverV1.Store(true)
			}
			if cc, err = dialRaw(c.addr, o); err != nil {
				return nil, err
			}
		} else if o.requireV2 && (cc.ver < proto.Version2 || cc.feats&proto.FeatCRC == 0) {
			cc.nc.Close()
			return nil, fmt.Errorf("client: server did not grant protocol v2 with checksums (version %d, features %#x)", cc.ver, cc.feats)
		}
	}
	go cc.readLoop()
	return cc, nil
}

// dialRaw opens the transport and builds an un-negotiated (v1) conn without
// starting its read loop.
func dialRaw(addr string, o *options) (*clientConn, error) {
	dial := o.dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, o.dialTimeout)
	if err != nil {
		return nil, err
	}
	return &clientConn{
		nc:       nc,
		br:       bufio.NewReaderSize(nc, 32<<10),
		ver:      proto.Version1,
		inflight: make(chan struct{}, o.pipeline),
		waiters:  make(map[uint64]chan result),
	}, nil
}

// handshake runs the HELLO exchange synchronously on the freshly dialed
// connection (the read loop is not running yet). Both directions travel as
// plain v1 frames; the negotiated state applies from the next frame on.
func (cc *clientConn) handshake(o *options) error {
	cc.nextID.Store(1) // HELLO consumes id 1
	frame, err := proto.AppendRequest(nil, &proto.Request{
		ID: 1, Op: proto.OpHello, Ver: proto.MaxVersion, Feats: proto.AllFeatures,
	})
	if err != nil {
		return err
	}
	if o.dialTimeout > 0 {
		cc.nc.SetDeadline(time.Now().Add(o.dialTimeout))
		defer cc.nc.SetDeadline(time.Time{})
	}
	if _, err := cc.nc.Write(frame); err != nil {
		return fmt.Errorf("client: hello write: %w", err)
	}
	body, _, err := proto.ReadFrame(cc.br, nil)
	if err != nil {
		return fmt.Errorf("client: hello read: %w", err)
	}
	var resp proto.Response
	if err := proto.DecodeResponse(body, &resp); err != nil {
		return fmt.Errorf("client: hello decode: %w", err)
	}
	if resp.ID != 1 {
		return fmt.Errorf("client: hello answered with id %d", resp.ID)
	}
	if resp.Status == proto.StatusBadRequest {
		return errServerV1
	}
	if resp.Status != proto.StatusOK || resp.Op != proto.OpHello {
		return fmt.Errorf("client: hello refused: op %v status %d: %s", resp.Op, resp.Status, resp.Msg)
	}
	if resp.Ver >= proto.Version2 {
		cc.ver = proto.Version2
		cc.feats = resp.Feats & proto.AllFeatures
	}
	return nil
}

// broken reports whether the connection has failed and must be replaced.
func (cc *clientConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// fail marks the connection dead, closes the socket, and delivers err to
// every waiter and stream. Idempotent; the first error wins.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	waiters := cc.waiters
	streams := cc.streams
	cc.waiters = nil
	cc.streams = nil
	cc.mu.Unlock()
	cc.nc.Close()
	for _, ch := range waiters {
		ch <- result{err: err}
	}
	for _, ch := range streams {
		// Stream channels reserve one slot beyond the flow-control window,
		// so this send can never block (see registerStream).
		ch <- result{err: err}
	}
}

// registerStream routes future chunk/end frames with the given id to ch.
// ch must have capacity for the stream's full credit window plus the end
// frame plus one failure slot, so the read loop and fail never block on it.
func (cc *clientConn) registerStream(id uint64, ch chan result) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	if cc.streams == nil {
		cc.streams = make(map[uint64]chan result)
	}
	cc.streams[id] = ch
	return nil
}

// dropStream deregisters a stream; late frames for it are dropped.
func (cc *clientConn) dropStream(id uint64) {
	cc.mu.Lock()
	if cc.streams != nil {
		delete(cc.streams, id)
	}
	cc.mu.Unlock()
}

// readLoop routes response frames to waiters and streams until the
// connection dies, verifying CRC32C trailers when negotiated.
func (cc *clientConn) readLoop() {
	var buf []byte
	sealed := cc.feats&proto.FeatCRC != 0
	for {
		var body []byte
		var err error
		if sealed {
			body, buf, err = proto.ReadFrameCRC(cc.br, buf)
		} else {
			body, buf, err = proto.ReadFrame(cc.br, buf)
		}
		if err != nil {
			if errors.Is(err, proto.ErrChecksum) {
				// The server's frame arrived corrupt. The stream can no
				// longer be trusted to be aligned; surface the typed error
				// and retire the connection.
				cc.fail(fmt.Errorf("%w: %v", ErrFrameCorrupt, err))
				return
			}
			cc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp := new(proto.Response) // escapes to the waiter; no reuse
		if err := proto.DecodeResponseV(body, resp, cc.ver); err != nil {
			cc.fail(fmt.Errorf("client: protocol error: %w", err))
			return
		}
		// Routing is deliberately exhaustive over the response opcodes
		// (protocheck enforces it): an opcode added to the protocol must
		// decide here whether it belongs to a stream or a waiter.
		//dytis:opswitch responses
		switch resp.Op {
		case proto.OpScanChunk, proto.OpScanEnd, proto.OpScanStart:
			// Stream-routed: chunks and the end frame, but also an OpScanStart
			// error response (bad request, overload) — the scan registered in
			// streams, not waiters, so that answer must land there too or the
			// Scanner would block until its ctx expired. Chunks keep the
			// stream; end and start-refusal frames are terminal.
			cc.mu.Lock()
			ch := cc.streams[resp.ID]
			if resp.Op != proto.OpScanChunk && ch != nil {
				delete(cc.streams, resp.ID)
			}
			cc.mu.Unlock()
			if ch != nil {
				select {
				case ch <- result{resp: resp}:
				default:
					// The server pushed past the credit window we granted:
					// a flow-control violation, not a transient condition.
					cc.fail(fmt.Errorf("client: scan stream %d overran its credit window", resp.ID))
					return
				}
			}
			// A chunk with no stream belongs to a cancelled scan; drop it.
		case proto.OpPing, proto.OpGet, proto.OpInsert, proto.OpDelete,
			proto.OpScan, proto.OpGetBatch, proto.OpInsertBatch,
			proto.OpDeleteBatch, proto.OpLen, proto.OpHello,
			proto.OpScanCredit, proto.OpScanCancel,
			proto.OpShardInfo, proto.OpMapGet, proto.OpMapSet,
			proto.OpHandoverStart, proto.OpHandoverStatus,
			proto.OpHandoverResume, proto.OpHandoverAbort,
			proto.OpImportStart, proto.OpImportBatch, proto.OpImportEnd,
			proto.OpImportResume, proto.OpMirror:
			cc.mu.Lock()
			ch := cc.waiters[resp.ID]
			delete(cc.waiters, resp.ID)
			cc.mu.Unlock()
			if ch != nil {
				ch <- result{resp: resp}
			}
			// A response with no waiter is one whose caller timed out; drop it.
		}
	}
}

// encodeFrame frames req, sealing it when FeatCRC is negotiated.
func (cc *clientConn) encodeFrame(req *proto.Request) ([]byte, error) {
	frame, err := proto.AppendRequest(nil, req)
	if err != nil {
		return nil, err
	}
	if cc.feats&proto.FeatCRC != 0 {
		frame = proto.SealFrame(frame, 0)
	}
	return frame, nil
}

// writeFrame encodes req — sealing it when FeatCRC is negotiated — and
// writes it under the write lock, honoring ctx's deadline for the write. A
// write error fails the whole connection (a partial frame desynchronizes
// the stream for every user).
func (cc *clientConn) writeFrame(ctx context.Context, req *proto.Request) error {
	frame, err := cc.encodeFrame(req)
	if err != nil {
		return err
	}
	return cc.writeBytes(ctx, frame)
}

// writeBytes writes one encoded frame under the write lock.
func (cc *clientConn) writeBytes(ctx context.Context, frame []byte) error {
	cc.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		cc.nc.SetWriteDeadline(dl)
	} else {
		cc.nc.SetWriteDeadline(time.Time{})
	}
	_, werr := cc.nc.Write(frame)
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail(fmt.Errorf("client: write: %w", werr))
		return fmt.Errorf("client: write: %w", werr)
	}
	return nil
}

// do sends req and waits for its response, honoring ctx for the queueing,
// the write, and the wait.
func (cc *clientConn) do(ctx context.Context, req *proto.Request) (*proto.Response, error) {
	select {
	case cc.inflight <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	//dytis:blocking-ok releasing the slot acquired above from a buffered channel never blocks
	defer func() { <-cc.inflight }()

	req.ID = cc.nextID.Add(1)
	// Propagate the caller's remaining deadline budget on the wire so the
	// server can skip executing a request whose caller has already given
	// up (it answers StatusDeadlineExceeded, which nobody is waiting for).
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			ms := int64(rem / time.Millisecond)
			if ms < 1 {
				ms = 1
			}
			if ms > int64(^uint32(0)) {
				ms = int64(^uint32(0))
			}
			req.TimeoutMS = uint32(ms)
		}
	}
	frame, err := cc.encodeFrame(req)
	if err != nil {
		return nil, err
	}
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return nil, err
	}
	cc.waiters[req.ID] = ch
	cc.mu.Unlock()

	if werr := cc.writeBytes(ctx, frame); werr != nil {
		<-ch //dytis:blocking-ok a write error fails the conn, which delivers to every waiter (or a routed response raced it)
		return nil, werr
	}

	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		// Deregister so the response, if it still comes, is dropped.
		cc.mu.Lock()
		if cc.waiters != nil {
			delete(cc.waiters, req.ID)
		}
		cc.mu.Unlock()
		select {
		case r := <-ch: // response or failure raced the deregistration
			return r.resp, r.err
		default:
		}
		return nil, ctx.Err()
	}
}
