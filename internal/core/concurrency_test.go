package core

import (
	"math/rand"
	"sync"
	"testing"
)

func concOpts() Options {
	return Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2, Concurrent: true}
}

func TestConcurrentInsertGet(t *testing.T) {
	d := New(concOpts())
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := uint64(w)<<32 | uint64(i)
				d.Insert(k, k+1)
				if rng.Intn(4) == 0 {
					if v, ok := d.Get(k); !ok || v != k+1 {
						t.Errorf("worker %d: Get(%#x) = %d,%v", w, k, v, ok)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.Len() != workers*perWorker {
		t.Fatalf("Len=%d want %d", d.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 17 {
			k := uint64(w)<<32 | uint64(i)
			if v, ok := d.Get(k); !ok || v != k+1 {
				t.Fatalf("post: Get(%#x) = %d,%v", k, v, ok)
			}
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	d := New(concOpts())
	// Pre-load a base population.
	for i := uint64(0); i < 20000; i++ {
		d.Insert(i*3, i)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(30000)) * 3
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					d.Insert(k, uint64(w))
				case 4, 5, 6:
					d.Get(k)
				case 7:
					d.Delete(k)
				case 8, 9:
					got := d.Scan(k, 50, nil)
					for j := 1; j < len(got); j++ {
						if got[j].Key <= got[j-1].Key {
							t.Errorf("scan not ascending under concurrency")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointRangesLinearizable: workers own disjoint key ranges,
// so each worker's final writes must all be visible exactly.
func TestConcurrentDisjointRangesLinearizable(t *testing.T) {
	d := New(concOpts())
	const workers = 6
	var wg sync.WaitGroup
	final := make([]map[uint64]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7))
			mine := map[uint64]uint64{}
			base := uint64(w) << 40
			for i := 0; i < 8000; i++ {
				k := base + uint64(rng.Intn(4000))
				if rng.Intn(5) == 0 {
					d.Delete(k)
					delete(mine, k)
				} else {
					v := rng.Uint64()
					d.Insert(k, v)
					mine[k] = v
				}
			}
			final[w] = mine
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		total += len(final[w])
		for k, v := range final[w] {
			got, ok := d.Get(k)
			if !ok || got != v {
				t.Fatalf("worker %d key %#x: got %d,%v want %d", w, k, got, ok, v)
			}
		}
	}
	if d.Len() != total {
		t.Fatalf("Len=%d want %d", d.Len(), total)
	}
}
