// Package metrics quantifies the dynamic characteristics of a dataset the
// way §2.1 of the DyTIS paper defines them:
//
//   - Variance of skewness: the average number of maximum-error-bounded PLR
//     linear models needed to approximate the dataset's CDF, normalized per
//     fixed-size chunk of keys (the paper uses 0.1M keys). The error bound
//     is calibrated so a Uniform dataset needs exactly one model.
//   - Key Distribution Divergence (KDD): the average Kullback-Leibler
//     divergence between the histograms of every two consecutive fixed-size
//     sub-datasets in insertion order.
package metrics

import (
	"math"
	"sort"

	"dytis/internal/plr"
)

// DefaultChunk is the per-chunk key count both metrics normalize by. The
// paper uses 0.1M at full scale; the metrics are largely insensitive to the
// choice (§2.1), and callers pass a scaled-down value for scaled datasets.
const DefaultChunk = 100000

// SkewnessVariance returns the average number of PLR models per chunk keys
// needed to approximate the CDF of the dataset (insertion order ignored).
// The PLR error bound is 2*sqrt(n) rank units, the magnitude of empirical-CDF
// noise for a uniform sample, so Uniform ≈ 1 model total.
func SkewnessVariance(keys []uint64, chunk int) float64 {
	if len(keys) == 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	eps := 2 * math.Sqrt(float64(len(sorted)))
	models := len(plr.FitCDF(sorted, eps))
	chunks := float64(len(keys)) / float64(chunk)
	if chunks < 1 {
		chunks = 1
	}
	return float64(models) / chunks
}

// ModelCount returns the raw number of PLR models for the dataset's CDF with
// the same calibrated bound (Figure 2 reports these counts per dataset).
func ModelCount(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	eps := 2 * math.Sqrt(float64(len(sorted)))
	return len(plr.FitCDF(sorted, eps))
}

// histBins is the histogram resolution for KDD sub-dataset comparison.
const histBins = 100

// KDD returns the average KL divergence between consecutive sub-datasets of
// `chunk` keys in insertion order. Each pair's histograms share a key range
// spanning both sub-datasets (per §2.1); counts use add-one smoothing so the
// divergence is always finite.
func KDD(keys []uint64, chunk int) float64 {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if len(keys) < 2*chunk {
		return 0
	}
	var sum float64
	var pairs int
	for off := 0; off+2*chunk <= len(keys); off += chunk {
		a := keys[off : off+chunk]
		b := keys[off+chunk : off+2*chunk]
		sum += KLDivergence(a, b)
		pairs++
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// KLDivergence computes KL(P_a || P_b) between the histograms of two key
// slices over their joint range, with add-one smoothing.
func KLDivergence(a, b []uint64) float64 {
	min, max := a[0], a[0]
	for _, s := range [][]uint64{a, b} {
		for _, k := range s {
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
		}
	}
	width := float64(max-min) + 1
	var ha, hb [histBins]float64
	for _, k := range a {
		ha[binOf(k-min, width, histBins)]++
	}
	for _, k := range b {
		hb[binOf(k-min, width, histBins)]++
	}
	// Add-one smoothing and normalization.
	na, nb := float64(len(a)+histBins), float64(len(b)+histBins)
	var kl float64
	for i := 0; i < histBins; i++ {
		p := (ha[i] + 1) / na
		q := (hb[i] + 1) / nb
		kl += p * math.Log(p/q)
	}
	return kl
}

// Histogram returns the bin counts of the keys over [min, max] with the
// given number of bins; Figure 3 plots these for consecutive sub-datasets.
func Histogram(keys []uint64, bins int) []int {
	out := make([]int, bins)
	if len(keys) == 0 {
		return out
	}
	min, max := keys[0], keys[0]
	for _, k := range keys {
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	width := float64(max-min) + 1
	for _, k := range keys {
		out[binOf(k-min, width, bins)]++
	}
	return out
}

// binOf maps an offset into [0, bins), clamping the float-rounding edge case
// where offset/width rounds to 1.0 for offsets near 2^63.
func binOf(off uint64, width float64, bins int) int {
	b := int(float64(off) / width * float64(bins))
	if b >= bins {
		b = bins - 1
	}
	return b
}
