package workload

import "testing"

func TestPartitionRoutesByRange(t *testing.T) {
	const n = 4
	width := ^uint64(0)/n + 1
	ops := []Op{
		{Type: OpInsert, Key: 0},
		{Type: OpInsert, Key: width - 1},
		{Type: OpInsert, Key: width},
		{Type: OpRead, Key: 2*width + 5},
		{Type: OpRead, Key: ^uint64(0)},
		{Type: OpInsert, Key: 1},
	}
	parts := Partition(ops, n)
	if len(parts) != n {
		t.Fatalf("got %d partitions, want %d", len(parts), n)
	}
	wantKeys := [][]uint64{
		{0, width - 1, 1},
		{width},
		{2*width + 5},
		{^uint64(0)},
	}
	for i, want := range wantKeys {
		if len(parts[i]) != len(want) {
			t.Fatalf("partition %d has %d ops, want %d", i, len(parts[i]), len(want))
		}
		for j, k := range want {
			if parts[i][j].Key != k {
				t.Errorf("partition %d op %d key = %#x, want %#x (order must be preserved)", i, j, parts[i][j].Key, k)
			}
		}
	}
}

func TestPartitionCoversAllOps(t *testing.T) {
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = mix64(uint64(i)) // spread over the whole key space
	}
	p := Build(Config{Kind: A, Keys: keys, Ops: 1000, Seed: 7})
	for _, n := range []int{1, 2, 3, 5, 16} {
		parts := Partition(p.Ops, n)
		total := 0
		width := ^uint64(0)/uint64(n) + 1
		for i, p := range parts {
			total += len(p)
			for _, op := range p {
				got := n - 1
				if width != 0 {
					if j := int(op.Key / width); j < got {
						got = j
					}
				}
				if got != i {
					t.Fatalf("n=%d: key %#x landed in partition %d, want %d", n, op.Key, i, got)
				}
			}
		}
		if total != len(p.Ops) {
			t.Fatalf("n=%d: partitions hold %d ops, input had %d", n, total, len(p.Ops))
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	// n < 1 clamps to a single partition holding everything in order.
	ops := []Op{{Key: 3}, {Key: ^uint64(0)}, {Key: 0}}
	one := Partition(ops, 0)
	if len(one) != 1 || len(one[0]) != len(ops) {
		t.Fatalf("Partition(ops, 0) = %d partitions of %d ops, want 1 of %d", len(one), len(one[0]), len(ops))
	}
	for i, op := range one[0] {
		if op.Key != ops[i].Key {
			t.Fatalf("single partition reordered ops: %v", one[0])
		}
	}

	// Empty input still yields n (empty) partitions.
	empty := Partition(nil, 4)
	if len(empty) != 4 {
		t.Fatalf("Partition(nil, 4) = %d partitions, want 4", len(empty))
	}
	for i, p := range empty {
		if len(p) != 0 {
			t.Fatalf("partition %d of empty input has %d ops", i, len(p))
		}
	}

	// More partitions than ops: everything lands by range, the rest empty.
	sparse := Partition([]Op{{Key: 0}}, 8)
	if len(sparse[0]) != 1 {
		t.Fatalf("key 0 not in partition 0: %v", sparse)
	}
	for i := 1; i < 8; i++ {
		if len(sparse[i]) != 0 {
			t.Fatalf("partition %d unexpectedly non-empty", i)
		}
	}

	// Returned slices must not alias the input.
	in := []Op{{Key: 1, Val: 10}}
	p := Partition(in, 1)
	p[0][0].Val = 99
	if in[0].Val != 10 {
		t.Fatal("Partition aliased the input slice")
	}
}
