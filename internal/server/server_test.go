package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/check"
	"dytis/internal/core"
	"dytis/internal/proto"
	"dytis/internal/server"
)

// smallOpts mirrors the concurrency tests' configuration: tiny segments so
// even small key counts exercise splits, remaps, and directory doublings
// under the server's multi-connection load.
func smallOpts() core.Options {
	return core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2, Concurrent: true}
}

// start runs a server over idx on a loopback listener and returns its
// address; the server is drained at test end and the index checked.
func start(t *testing.T, idx *core.DyTIS, cfg server.Config) (string, *server.Server) {
	t.Helper()
	cfg.Index = idx
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		requireSound(t, idx)
	})
	return ln.Addr().String(), srv
}

func requireSound(t *testing.T, d *core.DyTIS) {
	t.Helper()
	if vs := check.Check(d); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("invariant violation: %v", v)
		}
		t.FailNow()
	}
}

func TestServeBasicOps(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := c.Insert(ctx, k<<40, k); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := c.Get(ctx, 7<<40)
	if err != nil || !ok || v != 7 {
		t.Fatalf("Get = %d,%v,%v want 7,true,nil", v, ok, err)
	}
	if _, ok, _ := c.Get(ctx, 12345); ok {
		t.Fatal("Get of absent key reported found")
	}
	found, err := c.Delete(ctx, 7<<40)
	if err != nil || !found {
		t.Fatalf("Delete = %v,%v want true,nil", found, err)
	}
	if n, _ := c.Len(ctx); n != 99 {
		t.Fatalf("Len = %d want 99", n)
	}
	keys, vals, err := c.Scan(ctx, 0, 10)
	if err != nil || len(keys) != 10 {
		t.Fatalf("Scan returned %d keys, err %v", len(keys), err)
	}
	for i, k := range keys {
		if k != vals[i]<<40 {
			t.Fatalf("scan pair %d: key %d val %d", i, k, vals[i])
		}
	}

	// Batched opcodes.
	bk := []uint64{1 << 40, 2 << 40, 7 << 40}
	bv, bf, err := c.GetBatch(ctx, bk)
	if err != nil {
		t.Fatal(err)
	}
	if !bf[0] || !bf[1] || bf[2] {
		t.Fatalf("GetBatch founds = %v", bf)
	}
	if bv[0] != 1 || bv[1] != 2 {
		t.Fatalf("GetBatch vals = %v", bv)
	}
	if err := c.InsertBatch(ctx, []uint64{500, 501}, []uint64{5, 6}); err != nil {
		t.Fatal(err)
	}
	df, err := c.DeleteBatch(ctx, []uint64{500, 999})
	if err != nil || !df[0] || df[1] {
		t.Fatalf("DeleteBatch = %v, %v", df, err)
	}
}

// TestPipelinedResponses drives many goroutines over a single pooled
// connection; response-to-request matching by id is what keeps every caller
// seeing its own key's value.
func TestPipelinedResponses(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{})
	c, err := client.Dial(addr, client.WithPoolSize(1), client.WithPipeline(64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	const workers = 16
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := uint64(w)<<32 | uint64(i)
				if err := c.Insert(ctx, k, k+1); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				v, ok, err := c.Get(ctx, k)
				if err != nil || !ok || v != k+1 {
					t.Errorf("get %d = %d,%v,%v", k, v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := c.Len(ctx); n != workers*perWorker {
		t.Fatalf("Len = %d want %d", n, workers*perWorker)
	}
}

// TestMalformedFrame sends a syntactically framed but semantically garbage
// request: the server must answer StatusBadRequest with the echoed id and
// close the connection, never crash or hang.
func TestMalformedFrame(t *testing.T) {
	idx := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{Metrics: m})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// id=77, opcode=0xEE (unknown).
	body := binary.BigEndian.AppendUint64(nil, 77)
	body = append(body, 0xEE)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	respBody, _, err := proto.ReadFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp proto.Response
	if err := proto.DecodeResponse(respBody, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 || resp.Status != proto.StatusBadRequest {
		t.Fatalf("resp = %+v, want id 77 status bad-request", resp)
	}
	// The connection must now close.
	if _, _, err := proto.ReadFrame(nc, nil); err == nil {
		t.Fatal("connection stayed open after protocol error")
	}
	if m.ProtoErrors() != 1 {
		t.Fatalf("ProtoErrors = %d want 1", m.ProtoErrors())
	}
}

// TestConnLimitBackpressure: with MaxConns=1 a second client connects (the
// kernel backlog accepts it) but is not served until the first leaves —
// backpressure, not rejection.
func TestConnLimitBackpressure(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{MaxConns: 1})

	c1, err := client.Dial(addr, client.WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	// TCP-accepted by the kernel backlog, but not served.
	c2, err := client.Dial(addr, client.WithPoolSize(1))
	if err != nil {
		t.Fatalf("second dial should enter the backlog, got %v", err)
	}
	defer c2.Close()
	shortCtx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := c2.Ping(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unserved conn's ping = %v, want DeadlineExceeded", err)
	}

	c1.Close() // frees the slot
	longCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := c2.Ping(longCtx); err != nil {
		t.Fatalf("ping after slot freed: %v", err)
	}
}

// TestGracefulDrain: requests the server has already read are executed and
// their responses flushed before the connection closes, so a pipelining
// client gets an answer for everything it managed to send.
func TestGracefulDrain(t *testing.T) {
	idx := core.New(smallOpts())
	addr, srv := start(t, idx, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 200
	var out []byte
	for i := uint64(1); i <= n; i++ {
		out, err = proto.AppendRequest(out, &proto.Request{ID: i, Op: proto.OpInsert, Key: i, Val: i})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to buffer the burst, then drain.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := 0
	var buf []byte
	for {
		var body []byte
		body, buf, err = proto.ReadFrame(nc, buf)
		if err != nil {
			break // EOF once the drained conn closes
		}
		var resp proto.Response
		if err := proto.DecodeResponse(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != proto.StatusOK {
			t.Fatalf("drained response %d: %+v", resp.ID, resp)
		}
		got++
	}
	if got != n {
		t.Fatalf("received %d responses before close, want %d", got, n)
	}
	if idx.Len() != n {
		t.Fatalf("index has %d keys, want %d", idx.Len(), n)
	}
}

// TestSlowReaderBackpressure: a client that writes a large pipelined burst
// and refuses to read must stall the server's bounded per-connection queue,
// not balloon its memory — and the server must keep serving other
// connections meanwhile. When the slow reader finally reads, every response
// arrives intact.
func TestSlowReaderBackpressure(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{Pipeline: 8})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// A burst of scans with fat responses, written without reading anything:
	// response bytes >> request bytes, so the server-side queue and socket
	// buffers fill long before the burst is consumed.
	for k := uint64(0); k < 2000; k++ {
		idx.Insert(k, k)
	}
	const burst = 2000
	var out []byte
	for i := uint64(1); i <= burst; i++ {
		out, err = proto.AppendRequest(out, &proto.Request{ID: i, Op: proto.OpScan, Key: 0, Max: 512})
		if err != nil {
			t.Fatal(err)
		}
	}
	wrote := make(chan error, 1)
	go func() {
		_, err := nc.Write(out)
		wrote <- err
	}()

	// While the slow reader is stalled, a second connection is served
	// promptly: per-connection backpressure does not become head-of-line
	// blocking across connections.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c2.Ping(ctx); err != nil {
		t.Fatalf("second conn starved during slow-reader stall: %v", err)
	}

	// Now read everything; all burst responses must arrive, in order and
	// well-formed.
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	var buf []byte
	var resp proto.Response
	for want := uint64(1); want <= burst; want++ {
		body, nbuf, err := proto.ReadFrame(nc, buf)
		buf = nbuf
		if err != nil {
			t.Fatalf("reading response %d: %v", want, err)
		}
		if err := proto.DecodeResponse(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID != want || resp.Status != proto.StatusOK || len(resp.Keys) != 512 {
			t.Fatalf("response %d: id=%d status=%d keys=%d", want, resp.ID, resp.Status, len(resp.Keys))
		}
	}
	if err := <-wrote; err != nil {
		t.Fatalf("burst write: %v", err)
	}
}

func TestMetricsPrometheus(t *testing.T) {
	idx := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{Metrics: m})
	c, err := client.Dial(addr, client.WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.Insert(ctx, 1, 2)
	c.Get(ctx, 1)
	c.GetBatch(ctx, []uint64{1, 2, 3})

	if got := m.OpCount(proto.OpGetBatch); got != 3 {
		t.Errorf("OpCount(get-batch) = %d want 3 (batch entries count individually)", got)
	}
	if m.ConnsActive() != 1 || m.ConnsTotal() != 1 {
		t.Errorf("conns active/total = %d/%d want 1/1", m.ConnsActive(), m.ConnsTotal())
	}
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`dytis_server_request_latency_nanoseconds{op="get",quantile="0.99"}`,
		`dytis_server_ops_total{op="insert"} 1`,
		`dytis_server_ops_total{op="get-batch"} 3`,
		"dytis_server_connections_active 1",
		"dytis_server_protocol_errors_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(out, `op="delete"`) {
		t.Error("metrics output contains series for unused opcode")
	}
}

// TestShutdownIdempotent also covers shutting down with no connections.
func TestShutdownIdempotent(t *testing.T) {
	idx := core.New(smallOpts())
	_, srv := start(t, idx, server.Config{})
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
