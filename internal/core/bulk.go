package core

import "sort"

// LoadSorted replaces the index contents with the given strictly-ascending
// pairs. DyTIS needs no training phase — incremental Insert is its normal
// loading path — but when data is already sorted, building segments directly
// skips all maintenance operations (a DESIGN.md §8 extension; the B+-tree
// offers the same fast path).
//
// Each populated EH gets a flat directory (all segments at LD = GD) sized so
// segments start near the base Limit_seg, with bucket allocations following
// the observed per-sub-range key counts. Must not be called concurrently
// with other operations.
func (d *DyTIS) LoadSorted(keys, values []uint64) {
	d.mustOpen("LoadSorted")
	if len(keys) != len(values) {
		panic("core: mismatched LoadSorted slices")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			panic("core: LoadSorted keys must be strictly ascending")
		}
	}
	lo := 0
	for i, e := range d.ehs {
		hi := lo
		if i == len(d.ehs)-1 {
			hi = len(keys)
		} else {
			limit := uint64(i+1) << d.suffixBits
			hi = lo + sort.Search(len(keys)-lo, func(j int) bool { return keys[lo+j] >= limit })
		}
		e.loadSorted(keys[lo:hi], values[lo:hi])
		lo = hi
	}
	// Rebuild cross-EH sibling continuity is not needed: scans step across
	// EH tables by index, and sibling pointers only chain within an EH.
}

// loadSorted rebuilds one EH from its ascending key slice.
//
//dytis:nolockcheck
func (e *eh) loadSorted(keys, values []uint64) {
	bcap := e.opts.BucketEntries
	// Target: segments that start around half the base segment limit so
	// they have room to grow before any maintenance triggers.
	targetKeys := e.opts.BaseSegBuckets * e.opts.SegLimitMult * bcap / 2
	gd := 0
	for len(keys) > targetKeys<<gd && gd < maxDirDepth {
		gd++
	}
	e.gd = uint8(gd)
	e.total.Store(int64(len(keys)))
	e.dir = make([]*segment, 1<<gd)
	rangeBits := e.suffixBits - uint8(gd)
	var prev *segment
	lo := 0
	for di := 0; di < 1<<gd; di++ {
		base := e.base + uint64(di)<<rangeBits
		hi := lo
		if di == 1<<gd-1 {
			hi = len(keys)
		} else {
			limit := base + 1<<rangeBits
			hi = lo + sort.Search(len(keys)-lo, func(j int) bool { return keys[lo+j] >= limit })
		}
		pb := uint8(e.opts.MaxSubRangeBits)
		if pb > rangeBits {
			pb = rangeBits
		}
		s := e.buildChild(uint8(gd), rangeBits, base, pb, keys[lo:hi], values[lo:hi])
		if prev != nil {
			prev.next.Store(s)
		}
		prev = s
		e.dir[di] = s
		lo = hi
	}
	// LoadSorted is documented non-concurrent, but the rebuilt directory must
	// still be published so optimistic readers resolve through it afterwards.
	e.publishDir()
}
