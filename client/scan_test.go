package client_test

// Tests for the redesigned scan API: the Scanner must behave identically
// over its two transports — the v2 chunk stream and the v1 pagination
// fallback — and the deprecated Scan wrapper must keep its old contract on
// top of it.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/server"
)

// serveCfg is serveOn with a caller-supplied config (for DisableV2).
func serveCfg(t *testing.T, cfg server.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	return ln.Addr().String()
}

// collectStream drains a Scanner, checking order, and returns its pairs.
func collectStream(t *testing.T, s *client.Scanner) (keys, vals []uint64) {
	t.Helper()
	defer s.Close()
	for s.Next() {
		if n := len(keys); n > 0 && keys[n-1] >= s.Key() {
			t.Fatalf("scan out of order: %#x then %#x", keys[n-1], s.Key())
		}
		keys = append(keys, s.Key())
		vals = append(vals, s.Value())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return keys, vals
}

// eachTransport runs f against a v2 server (chunk stream) and a v1 server
// (pagination fallback): the Scanner's observable behavior must not depend
// on which transport carried it.
func eachTransport(t *testing.T, f func(t *testing.T, c *client.Client)) {
	for _, tc := range []struct {
		name      string
		disableV2 bool
	}{
		{"v2-stream", false},
		{"v1-fallback", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			idx := newIndex()
			addr := serveCfg(t, server.Config{Index: idx, DisableV2: tc.disableV2})
			c, err := client.Dial(addr,
				client.WithPoolSize(1),
				client.WithScanStream(256, 4))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			f(t, c)
			requireSound(t, idx)
		})
	}
}

func TestScanStreamBothTransports(t *testing.T) {
	eachTransport(t, func(t *testing.T, c *client.Client) {
		ctx := context.Background()
		const n = 3000 // ~12 chunks of 256: several credit grants / pages
		for k := uint64(0); k < n; k++ {
			if err := c.Insert(ctx, k*2, k*2+1); err != nil {
				t.Fatal(err)
			}
		}

		// Full scan.
		keys, vals := collectStream(t, c.ScanStream(ctx, 0, 0))
		if len(keys) != n {
			t.Fatalf("full scan delivered %d pairs, want %d", len(keys), n)
		}
		for i, k := range keys {
			if k != uint64(i)*2 || vals[i] != k+1 {
				t.Fatalf("pair %d: %d/%d", i, k, vals[i])
			}
		}

		// Offset start and a budget that ends mid-chunk.
		s := c.ScanStream(ctx, 101, 333)
		keys, _ = collectStream(t, s)
		if len(keys) != 333 || keys[0] != 102 {
			t.Fatalf("bounded scan: %d pairs from %d, want 333 from 102", len(keys), keys[0])
		}
		if s.Total() != 333 {
			t.Fatalf("Total = %d, want 333", s.Total())
		}

		// Start past every key.
		if keys, _ := collectStream(t, c.ScanStream(ctx, n*2, 0)); len(keys) != 0 {
			t.Fatalf("scan past the end delivered %d pairs", len(keys))
		}
	})
}

func TestScanStreamEmptyIndex(t *testing.T) {
	eachTransport(t, func(t *testing.T, c *client.Client) {
		s := c.ScanStream(context.Background(), 0, 0)
		defer s.Close()
		if s.Next() {
			t.Fatal("Next on an empty index returned true")
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if s.Total() != 0 {
			t.Fatalf("Total = %d, want 0", s.Total())
		}
	})
}

// TestScanStreamTopOfKeyspace: a scan reaching the maximum key must include
// it and terminate (the naive last+1 resume would wrap to 0 and loop).
func TestScanStreamTopOfKeyspace(t *testing.T) {
	eachTransport(t, func(t *testing.T, c *client.Client) {
		ctx := context.Background()
		top := ^uint64(0)
		for _, k := range []uint64{5, top - 1, top} {
			if err := c.Insert(ctx, k, k); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan struct{})
		var keys []uint64
		go func() {
			defer close(done)
			keys, _ = collectStream(t, c.ScanStream(ctx, top-1, 0))
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("scan over the top of the keyspace did not terminate")
		}
		if len(keys) != 2 || keys[0] != top-1 || keys[1] != top {
			t.Fatalf("scan from top-1 = %#x, want [top-1, top]", keys)
		}
	})
}

// TestScanWrapperEquivalence: the deprecated Scan must return exactly what
// the Scanner yields, on both transports, including its legacy edge cases.
func TestScanWrapperEquivalence(t *testing.T) {
	eachTransport(t, func(t *testing.T, c *client.Client) {
		ctx := context.Background()
		for k := uint64(0); k < 1000; k++ {
			if err := c.Insert(ctx, k, k+5); err != nil {
				t.Fatal(err)
			}
		}
		keys, vals, err := c.Scan(ctx, 10, 600)
		if err != nil {
			t.Fatal(err)
		}
		sKeys, sVals := collectStream(t, c.ScanStream(ctx, 10, 600))
		if len(keys) != len(sKeys) || len(keys) != 600 {
			t.Fatalf("Scan %d pairs vs ScanStream %d, want 600", len(keys), len(sKeys))
		}
		for i := range keys {
			if keys[i] != sKeys[i] || vals[i] != sVals[i] {
				t.Fatalf("pair %d: Scan %d/%d vs ScanStream %d/%d", i, keys[i], vals[i], sKeys[i], sVals[i])
			}
		}
		// max <= 0 keeps its historical "no pairs" meaning on the wrapper.
		if keys, vals, err := c.Scan(ctx, 0, 0); err != nil || keys != nil || vals != nil {
			t.Fatalf("Scan(max=0) = %v,%v,%v, want nils", keys, vals, err)
		}
	})
}

// TestScanStreamRefusedPromptly: a server refusal of OpScanStart (here the
// per-connection concurrent-stream cap) must surface on the Scanner as a
// typed error promptly — the refusal frame carries Op: OpScanStart, and a
// read loop that only routes chunk/end frames to streams would drop it,
// leaving Next blocked until the caller's deadline.
func TestScanStreamRefusedPromptly(t *testing.T) {
	idx := newIndex()
	addr := serveCfg(t, server.Config{Index: idx})
	c, err := client.Dial(addr,
		client.WithPoolSize(1),
		client.WithScanStream(1, 1)) // 1-pair chunks: streams stay open
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for k := uint64(0); k < 64; k++ {
		if err := c.Insert(ctx, k, k); err != nil {
			t.Fatal(err)
		}
	}

	// Pin 16 live streams on the one pooled connection (the server-side
	// per-conn cap). Pulling a single pair leaves each stream parked
	// waiting for credit, so it stays registered.
	const cap = 16
	for i := 0; i < cap; i++ {
		s := c.ScanStream(ctx, 0, 0)
		defer s.Close()
		if !s.Next() {
			t.Fatalf("stream %d: first Next = false, err %v", i, s.Err())
		}
	}

	// The 17th start must be refused — and the refusal must reach us even
	// with no deadline on the context.
	s := c.ScanStream(ctx, 0, 0)
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if s.Next() {
			t.Error("Next on a refused stream returned true")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("refused scan did not fail promptly (refusal frame dropped?)")
	}
	if err := s.Err(); !errors.Is(err, client.ErrOverload) {
		t.Fatalf("refused scan Err = %v, want ErrOverload in the chain", err)
	}
	var oe *client.OverloadError
	if !errors.As(s.Err(), &oe) {
		t.Fatalf("refused scan Err = %v, want *OverloadError", s.Err())
	}
	requireSound(t, idx)
}

// TestScannerCloseWithoutNext: a Scanner abandoned before its first Next
// must not leak or wedge anything.
func TestScannerCloseWithoutNext(t *testing.T) {
	eachTransport(t, func(t *testing.T, c *client.Client) {
		ctx := context.Background()
		if err := c.Insert(ctx, 1, 1); err != nil {
			t.Fatal(err)
		}
		s := c.ScanStream(ctx, 0, 0)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if s.Next() {
			t.Fatal("Next after Close returned true")
		}
		// The client is untouched.
		if v, ok, err := c.Get(ctx, 1); err != nil || !ok || v != 1 {
			t.Fatalf("Get after abandoned scan = %d,%v,%v", v, ok, err)
		}
	})
}
