package client_test

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/check"
	"dytis/internal/core"
	"dytis/internal/server"
)

func newIndex() *core.DyTIS {
	return core.New(core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2, Concurrent: true})
}

func requireSound(t *testing.T, d *core.DyTIS) {
	t.Helper()
	if vs := check.Check(d); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("invariant violation: %v", v)
		}
		t.FailNow()
	}
}

// serveOn starts a server for idx on ln and returns a shutdown func.
func serveOn(t *testing.T, idx *core.DyTIS, ln net.Listener) (stop func()) {
	t.Helper()
	srv := server.New(server.Config{Index: idx})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	return func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			<-done
		})
	}
}

// TestRestartMidPipeline kills the server under a client running a pipelined
// request storm, then brings a new server up on the same address. In-flight
// operations must fail with errors (never hang, never silently retry), and
// once the server is back the same Client must resume transparently through
// its bounded-backoff redial — no new Dial.
func TestRestartMidPipeline(t *testing.T) {
	idx1 := newIndex()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop1 := serveOn(t, idx1, ln)

	c, err := client.Dial(addr,
		client.WithPipeline(64),
		client.WithReconnect(8, 10*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// A storm of workers keeps the pipeline full while the server dies.
	var opErrs atomic.Int64
	var stopStorm atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stopStorm.Load(); i++ {
				k := uint64(w)<<32 | uint64(i)
				if err := c.Insert(ctx, k, k); err != nil {
					opErrs.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // storm is in full swing
	stop1()                           // server gone mid-pipeline

	// With the server down and no listener, an operation must error once its
	// bounded redial budget is spent — deterministically, while the storm's
	// own errors depend on how much of the pipeline the drain answered.
	downCtx, cancelDown := context.WithTimeout(ctx, 5*time.Second)
	if err := c.Ping(downCtx); err == nil {
		t.Fatal("ping succeeded with no server listening")
	}
	cancelDown()

	// Restart on the same address.
	idx2 := newIndex()
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop2 := serveOn(t, idx2, ln2)
	defer stop2()

	// The SAME client must recover: redial happens inside the next ops.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Ping(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after server restart")
		}
		time.Sleep(20 * time.Millisecond)
	}

	stopStorm.Store(true)
	wg.Wait()
	t.Logf("storm: %d operations errored across the restart", opErrs.Load())

	// The recovered link works for real operations on the fresh index.
	if err := c.Insert(ctx, 42, 99); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(ctx, 42); err != nil || !ok || v != 99 {
		t.Fatalf("get after restart = %d,%v,%v", v, ok, err)
	}
	requireSound(t, idx2)
}

// TestInFlightErrorPropagation: a server that accepts, reads, and slams the
// connection shut must surface an error to the blocked caller promptly.
func TestInFlightErrorPropagation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				buf := make([]byte, 64)
				nc.Read(buf) // swallow the request...
				nc.Close()   // ...and hang up without answering
			}(nc)
		}
	}()

	c, err := client.Dial(ln.Addr().String(), client.WithPoolSize(1), client.WithV1Protocol())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := c.Get(ctx, 1); err == nil {
		t.Fatal("Get on a hung-up connection returned nil error")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("connection loss reported as timeout: %v", err)
	}
}

// TestContextTimeout: a server that accepts but never responds must not
// hold a caller past its deadline.
func TestContextTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // hold the conn open, never respond
		}
	}()

	c, err := client.Dial(ln.Addr().String(), client.WithPoolSize(1), client.WithV1Protocol())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, _, err := c.Get(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get = %v, want DeadlineExceeded", err)
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatal("Get overstayed its deadline")
	}
	// The next call with a live deadline behaves the same; the timed-out
	// request did not wedge the connection's bookkeeping.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, _, err := c.Get(ctx2, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Get = %v, want DeadlineExceeded", err)
	}
}

// TestReconnectBounded: with the server down for good, operations fail after
// the configured number of redial attempts instead of spinning forever.
func TestReconnectBounded(t *testing.T) {
	idx := newIndex()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop := serveOn(t, idx, ln)

	c, err := client.Dial(addr, client.WithPoolSize(1),
		client.WithReconnect(2, 5*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop() // server never comes back

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// First op may fail with the dead conn's error; subsequent ops hit the
	// bounded redial path and must return (not hang) with a dial error.
	var lastErr error
	for i := 0; i < 5; i++ {
		if err := c.Ping(ctx); err != nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("pings to a dead server succeeded")
	}
}

// TestConcurrentInsertsVsScans races writer clients against scanner clients
// on one server and checks both scan sanity during the race and full index
// soundness after it — the client-side twin of the core concurrency tests.
func TestConcurrentInsertsVsScans(t *testing.T) {
	idx := newIndex()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := serveOn(t, idx, ln)
	defer stop()
	addr := ln.Addr().String()
	ctx := context.Background()

	const (
		writers    = 4
		scanners   = 3
		perWriter  = 800
		scanRounds = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				k := uint64(i)*writers + uint64(w)
				if err := c.Insert(ctx, k, k+1); err != nil {
					t.Errorf("writer %d: insert: %v", w, err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("scanner %d: %v", s, err)
				return
			}
			defer c.Close()
			for i := 0; i < scanRounds; i++ {
				start := uint64(i * 37 % (writers * perWriter))
				keys, vals, err := c.Scan(ctx, start, 256)
				if err != nil {
					t.Errorf("scanner %d: %v", s, err)
					return
				}
				if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
					t.Errorf("scanner %d: page out of order", s)
					return
				}
				for j, k := range keys {
					if k < start || vals[j] != k+1 {
						t.Errorf("scanner %d: pair %d/%d under start %d", s, k, vals[j], start)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every written key is present with its value.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, err := c.Len(ctx); err != nil || n != writers*perWriter {
		t.Fatalf("Len = %d,%v want %d", n, err, writers*perWriter)
	}
	requireSound(t, idx)
}
