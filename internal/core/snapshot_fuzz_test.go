package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
)

// snapBytes assembles a snapshot image: a header claiming count pairs and
// whatever pair bytes follow. Used to seed the fuzzer with the interesting
// corrupt shapes.
func snapBytes(count uint64, pairs ...uint64) []byte {
	if len(pairs)%2 != 0 {
		panic("snapBytes wants key/value pairs")
	}
	b := make([]byte, snapshotHeaderLen, snapshotHeaderLen+8*len(pairs))
	binary.LittleEndian.PutUint32(b[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(b[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(b[8:16], count)
	for _, x := range pairs {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}

// FuzzReadSnapshot holds ReadSnapshot to its hardening contract: arbitrary
// bytes produce either a rebuilt index or a typed error — never a panic,
// and never an allocation proportional to a lying header count. The seeds
// are the shapes the recovery path meets in practice: a truncated header, a
// huge-count header over no data (the 16 TiB preallocation bug), descending
// keys, and a torn final pair.
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte{})                                          // empty
	f.Add(snapBytes(0))                                      // valid empty snapshot
	f.Add(snapBytes(2, 1, 10, 2, 20))                        // valid two-pair snapshot
	f.Add(snapBytes(0)[:10])                                 // truncated header
	f.Add(snapBytes(1<<39, 1, 10))                           // huge count, near-empty body
	f.Add(snapBytes(math.MaxUint64))                         // count over the plausibility cap
	f.Add(snapBytes(2, 9, 90, 3, 30))                        // descending keys
	f.Add(snapBytes(2, 5, 50, 5, 51))                        // duplicate key
	f.Add(snapBytes(2, 1, 10, 2, 20)[:snapshotHeaderLen+20]) // torn tail mid-pair
	f.Add(append(snapBytes(1, 7, 70), 0xAA))                 // trailing garbage (ignored by contract)

	f.Fuzz(func(t *testing.T, data []byte) {
		d := New(Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2})
		if err := d.ReadSnapshot(bytes.NewReader(data)); err != nil {
			return
		}
		// Accepted input must have rebuilt a structurally sound index.
		if err := d.checkInvariants(); err != nil {
			t.Fatalf("accepted snapshot built unsound index: %v", err)
		}
	})
}

// TestReadSnapshotHugeCountBounded is the directed regression for the
// preallocation bug: a crafted header under the 1<<40 plausibility cap but
// with no pairs behind it must fail with ErrSnapshotCorrupt after at most
// one chunk of allocation — under the old up-front make([]uint64, n) this
// test dies to the OOM killer long before the error.
func TestReadSnapshotHugeCountBounded(t *testing.T) {
	d := New(Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2})
	crafted := snapBytes(1<<40-1, 1, 10) // ~16 TiB claimed, 16 bytes present
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := d.ReadSnapshot(bytes.NewReader(crafted)); err == nil {
				b.Fatal("crafted huge-count snapshot accepted")
			}
		}
	})
	// One chunk of pairs is 2 slices * 8 bytes * snapshotChunkPairs = 1 MiB;
	// allow generous slack for bufio and error formatting.
	if per := res.AllocedBytesPerOp(); per > 4<<20 {
		t.Fatalf("ReadSnapshot of crafted header allocated %d bytes/op, want bounded by the chunk size", per)
	}
	// A sized reader rejects the lying count before reading any pair.
	if err := d.ReadSnapshot(bytes.NewReader(crafted)); err == nil {
		t.Fatal("crafted huge-count snapshot accepted")
	}
}

// TestSnapshotRoundTripCorpus is the property test over the differential
// fuzzer's adversarial key shapes: extremes of the key space, dense runs,
// first-level EH boundaries, and single keys all survive
// WriteSnapshot → ReadSnapshot and WriteSnapshotFile → ReadSnapshotFile
// bit-exactly.
func TestSnapshotRoundTripCorpus(t *testing.T) {
	denseLow := make([]uint64, 3000)
	for i := range denseLow {
		denseLow[i] = uint64(i)
	}
	denseHigh := make([]uint64, 3000)
	for i := range denseHigh {
		denseHigh[i] = math.MaxUint64 - uint64(len(denseHigh)) + 1 + uint64(i)
	}
	straddle := make([]uint64, 0, 2048)
	for eh := uint64(0); eh < 8; eh++ { // a dense run at every first-level EH base (R=3)
		for i := 0; i < 256; i++ {
			straddle = append(straddle, eh<<61+uint64(i))
		}
	}
	cases := map[string][]uint64{
		"empty":        {},
		"zero":         {0},
		"max":          {math.MaxUint64},
		"extremes":     {0, 1, math.MaxUint64 - 1, math.MaxUint64},
		"dense-low":    denseLow,
		"dense-high":   denseHigh,
		"eh-straddle":  straddle,
		"powers-of-2":  {1, 2, 4, 8, 1 << 20, 1 << 40, 1 << 60},
		"single-large": {0xDEADBEEFCAFEF00D},
	}
	for name, keys := range cases {
		t.Run(name, func(t *testing.T) {
			sorted := append([]uint64(nil), keys...)
			vals := make([]uint64, len(sorted))
			for i := range sorted {
				vals[i] = sorted[i]*0x9E3779B97F4A7C15 + 1
			}
			d := New(Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2})
			d.LoadSorted(sorted, vals)

			var buf bytes.Buffer
			if err := d.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			d2 := New(Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2})
			if err := d2.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			requireSame(t, d2, sorted, vals)

			path := filepath.Join(t.TempDir(), "snap")
			if err := d.WriteSnapshotFile(path); err != nil {
				t.Fatal(err)
			}
			d3 := New(Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2})
			if err := d3.ReadSnapshotFile(path); err != nil {
				t.Fatal(err)
			}
			requireSame(t, d3, sorted, vals)
		})
	}
}

func requireSame(t *testing.T, d *DyTIS, keys, vals []uint64) {
	t.Helper()
	if d.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(keys))
	}
	for i, k := range keys {
		if v, ok := d.Get(k); !ok || v != vals[i] {
			t.Fatalf("Get(%#x) = %d,%v want %d,true", k, v, ok, vals[i])
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
