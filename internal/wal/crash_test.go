//go:build dytisfault

package wal_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"dytis/internal/check"
	"dytis/internal/core"
	"dytis/internal/wal"
)

// The kill -9 matrix: a child process (this same test binary, re-executed)
// applies a deterministic op sequence to a durable store and prints an ack
// line after each op returns; the parent kills it — asynchronously during
// steady writes, or at an exact durability instant via the Hooks seams
// (mid-checkpoint before and after the snapshot commit, mid-rotation with
// the old segment sealed and the new one not yet created). The parent then
// recovers the directory and holds it to the durability contract:
//
//   - the recovered index passes check.Check (structurally sound);
//   - its contents equal the op sequence applied up to some prefix L
//     (Store serializes mutations, so log order = apply order and the
//     oracle is exact, stronger than the chaos tests' uncertainty sets);
//   - under -fsync always, L >= the number of acked ops: an acked write is
//     never lost. Errors are allowed, wrong answers never.
//
// The op stream is a fixed function of the op index (no seeds to drift), so
// parent and child agree on it by construction.

const (
	crashGolden = 0x9E3779B97F4A7C15
	crashDirEnv = "WAL_CRASH_DIR"
)

func crashKey(x uint64) uint64 { return x * crashGolden } // odd multiplier: bijective
func crashVal(x uint64) uint64 { return x ^ 0xD1B54A32D192ED03 }

// crashApply drives op i into the callbacks. Each op is exactly one WAL
// record (the two-key batch stays under the split threshold), so torn-tail
// truncation can only land between ops, never inside one.
func crashApply(i uint64, insert func(keys, vals []uint64), del func(key uint64)) {
	switch {
	case i%7 == 3 && i >= 16:
		del(crashKey(2 * (i - 16)))
	case i%13 == 5:
		insert([]uint64{crashKey(2 * i), crashKey(2*i + 1)},
			[]uint64{crashVal(2 * i), crashVal(2*i + 1)})
	default:
		insert([]uint64{crashKey(2 * i)}, []uint64{crashVal(2 * i)})
	}
}

func crashIndexOpts() core.Options {
	return core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2}
}

// TestCrashRecoveryChild is the victim process; it only runs when the
// parent points it at a directory via environment.
func TestCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash child: driven by TestCrashRecovery")
	}
	policy, err := wal.ParseFsyncPolicy(os.Getenv("WAL_CRASH_FSYNC"))
	if err != nil {
		t.Fatal(err)
	}
	total, err := strconv.ParseUint(os.Getenv("WAL_CRASH_OPS"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	stage := os.Getenv("WAL_CRASH_STAGE")

	// SIGKILL to self: the real crash signature — no deferred closes, no
	// buffer flushes, nothing orderly.
	die := func() {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable; SIGKILL cannot be handled
	}
	opts := wal.Options{Index: crashIndexOpts(), Fsync: policy}
	switch stage {
	case "": // steady writes; churn rotations and background checkpoints
		opts.SegmentBytes = 8 << 10
		opts.CheckpointBytes = 32 << 10
	case "ckpt-rotated", "ckpt-written":
		opts.CheckpointBytes = -1 // only the explicit checkpoint below
		want := strings.TrimPrefix(stage, "ckpt-")
		opts.Hooks.Checkpoint = func(st string) {
			if st == want {
				die()
			}
		}
	case "rotate-sealed":
		opts.SegmentBytes = 8 << 10
		opts.CheckpointBytes = -1
		rotations := 0
		opts.Hooks.Rotate = func(st string) {
			if st == "sealed" {
				if rotations++; rotations == 2 {
					die()
				}
			}
		}
	default:
		t.Fatalf("unknown crash stage %q", stage)
	}

	s, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < total; i++ {
		crashApply(i,
			func(keys, vals []uint64) {
				if len(keys) == 1 {
					err = s.Insert(keys[0], vals[0])
				} else {
					err = s.InsertBatch(keys, vals)
				}
			},
			func(key uint64) { _, err = s.Delete(key) })
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		fmt.Fprintf(os.Stdout, "ack %d\n", i+1)
	}
	if strings.HasPrefix(stage, "ckpt-") {
		s.Checkpoint() // dies inside, at the hooked stage
	}
	// Steady cases never get here: the parent kills mid-loop. If it raced
	// past the whole workload, say so and let the parent treat the run as a
	// clean-shutdown recovery check instead.
	fmt.Fprintln(os.Stdout, "done")
	s.Close()
}

func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashDirEnv) != "" {
		t.Skip("crash child must not recurse into the parent test")
	}
	cases := []struct {
		name   string
		fsync  string
		stage  string
		ops    uint64
		killAt int // parent SIGKILLs at this ack count; -1 = child dies via hook
	}{
		{"steady-always", "always", "", 4000, 1500},
		{"steady-interval", "interval", "", 30000, 15000},
		{"mid-checkpoint-rotated", "always", "ckpt-rotated", 1200, -1},
		{"mid-checkpoint-written", "always", "ckpt-written", 1200, -1},
		{"mid-rotation", "always", "rotate-sealed", 4000, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRecoveryChild$")
			cmd.Env = append(os.Environ(),
				crashDirEnv+"="+dir,
				"WAL_CRASH_FSYNC="+tc.fsync,
				"WAL_CRASH_STAGE="+tc.stage,
				"WAL_CRASH_OPS="+strconv.FormatUint(tc.ops, 10),
			)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Count acks as they stream; past the kill point, pull the
			// trigger and keep draining — acks already in flight when the
			// signal lands still count as acked.
			var acked uint64
			killed, childDone := false, false
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if n, ok := strings.CutPrefix(line, "ack "); ok {
					v, err := strconv.ParseUint(n, 10, 64)
					if err != nil {
						t.Fatalf("bad ack line %q", line)
					}
					acked = v
				} else if line == "done" {
					childDone = true
				}
				if tc.killAt >= 0 && !killed && acked >= uint64(tc.killAt) {
					killed = true
					if err := cmd.Process.Kill(); err != nil {
						t.Fatal(err)
					}
				}
			}
			err = cmd.Wait()
			if tc.killAt < 0 && childDone {
				t.Fatalf("hook stage %q never fired; child ran to completion (stderr: %s)", tc.stage, &stderr)
			}
			if err == nil && !childDone {
				t.Fatalf("child exited cleanly without finishing (stderr: %s)", &stderr)
			}
			if acked == 0 {
				t.Fatalf("no ops acked before the crash (stderr: %s)", &stderr)
			}
			t.Logf("child crashed after %d acked ops", acked)

			st, err := wal.Open(dir, wal.Options{Index: crashIndexOpts()})
			if err != nil {
				t.Fatalf("recovery failed: %v (stderr: %s)", err, &stderr)
			}
			defer st.Close()
			info := st.Recovery()
			t.Logf("recovery: %+v", info)
			if vs := check.Check(st.Index()); len(vs) != 0 {
				t.Fatalf("recovered index unsound: %v", vs)
			}

			// Exact-prefix oracle: walk prefixes of the op sequence until
			// one reproduces the recovered state; under always it must lie
			// at or past the acked count.
			minL := uint64(0)
			if tc.fsync == "always" {
				minL = acked
			}
			model := map[uint64]uint64{}
			matched := int64(-1)
			for l := uint64(0); l <= tc.ops; l++ {
				if l > 0 {
					crashApply(l-1,
						func(keys, vals []uint64) {
							for i := range keys {
								model[keys[i]] = vals[i]
							}
						},
						func(key uint64) { delete(model, key) })
				}
				if l >= minL && modelMatches(st, model) {
					matched = int64(l)
					break
				}
			}
			if matched < 0 {
				t.Fatalf("recovered state (%d keys) matches no op-sequence prefix >= %d acked (of %d ops): acked writes lost or wrong answers",
					st.Len(), minL, tc.ops)
			}
			t.Logf("recovered state = prefix of %d ops (%d acked)", matched, acked)

			// The recovered store keeps serving.
			if err := st.Insert(^uint64(0), 1); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
		})
	}
}

// modelMatches reports whether the store's contents equal the model map
// exactly (size and every pair).
func modelMatches(s *wal.Store, model map[uint64]uint64) bool {
	if s.Len() != len(model) {
		return false
	}
	for k, v := range model {
		if got, ok := s.Get(k); !ok || got != v {
			return false
		}
	}
	return true
}
