// Package check is the deep structural validator for DyTIS. Check walks
// every first-level EH table and verifies the paper's layout invariants
// mechanically — the properties Algorithm 1's maintenance operations (split,
// remap, expand, directory doubling) must preserve but that ordinary unit
// tests cannot see. It is the invariant wall behind the differential fuzzer
// and the concurrency tests: both run it after structure events and at
// teardown and require zero violations.
//
// The checked invariants, with their origin in the paper:
//
//   - Directory run tiling (§3.2, Extendible-Hashing skeleton): each segment
//     with local depth LD owns exactly one aligned run of 2^(GD−LD)
//     directory slots, the runs tile the directory exactly, and the
//     directory has 2^GD slots.
//   - Segment geometry (§3.2): a segment's covered range is the key span its
//     directory run addresses — rangeBits = suffixBits − LD and base aligned
//     to its run position.
//   - Bucket order (§3.1): bucket key arrays are sorted, globally ascending
//     across buckets, inside the segment's key span, within capacity, and
//     the first-key cache is the right-fill of bucket first keys.
//   - Remapping-function coherence and monotonicity (§3.3): the per-segment
//     piecewise-linear function has 2^pbits sub-ranges, its start array is
//     the prefix sums of cnt with start[last] = nb, and the predicted bucket
//     is non-decreasing over the segment's key range.
//   - Counter ground truth (§4.3 accounting): segment and EH live-key
//     counters, Len, Stats shape counters, and MemoryFootprint equal values
//     recounted from the structure itself.
//   - Sibling-chain agreement (§3.2, scans): the sibling-pointer chain
//     visits exactly the segments an in-order directory walk visits.
//   - Limit_seg discipline (§3.3): the adaptive multiplier is one of the two
//     configured values and, below the directory depth guard, no segment
//     exceeds its depth-derived bucket cap.
//   - Optimistic-read publication (§3.4, optimistic variant): in Concurrent
//     mode each EH's published directory snapshot agrees with the canonical
//     directory, and — in both modes — every directory-reachable segment's
//     seqlock version counter is even (odd permanently marks a segment
//     retired by a split, or transiently a writer mid-critical-section,
//     neither of which a quiescent directory may reference).
//
// Check assumes a quiescent index: in Concurrent mode it takes the EH and
// segment locks itself, but the final comparison against Stats, Len, and
// MemoryFootprint is only meaningful with no operations in flight. It must
// not be called from an Observer callback in Concurrent mode (the
// maintenance paths fire events while holding the locks Check needs).
package check

import (
	"fmt"

	"dytis/internal/core"
)

// Kind identifies one invariant class a Violation belongs to.
type Kind uint8

const (
	// KindDirSize: directory length differs from 2^GD.
	KindDirSize Kind = iota
	// KindDirRunMisaligned: a segment's directory run does not start at a
	// multiple of its span 2^(GD-LD).
	KindDirRunMisaligned
	// KindDirRunBroken: a directory run is interrupted or has the wrong
	// length for the segment's local depth, or a segment owns multiple runs.
	KindDirRunBroken
	// KindDepthExceeded: a segment's local depth exceeds the global depth.
	KindDepthExceeded
	// KindGeometry: a segment's base/rangeBits disagree with its directory
	// position.
	KindGeometry
	// KindBucketOrder: bucket keys unsorted, not globally ascending, or a
	// bucket over capacity.
	KindBucketOrder
	// KindKeyRange: a key lies outside its segment's covered range.
	KindKeyRange
	// KindFirstKeyCache: the fk cache is not the right-fill of bucket first
	// keys.
	KindFirstKeyCache
	// KindRemapShape: the remapping function arrays are incoherent (bad
	// lengths, start not the prefix sums of cnt, start[last] != nb).
	KindRemapShape
	// KindRemapMonotone: the remapping function predicts a smaller bucket
	// for a larger key.
	KindRemapMonotone
	// KindSiblingChain: the sibling-pointer chain disagrees with the
	// in-order directory walk.
	KindSiblingChain
	// KindSegmentTotal: a segment's live-key counter differs from the
	// recounted occupancy.
	KindSegmentTotal
	// KindEHTotal: an EH's live-key counter differs from the sum of its
	// segments' recounts.
	KindEHTotal
	// KindLimitMult: the Limit_seg multiplier is not one of the configured
	// values.
	KindLimitMult
	// KindSegLimit: below the depth guard, a segment exceeds its
	// depth-derived bucket cap.
	KindSegLimit
	// KindStats: Stats shape counters differ from the recounted ground
	// truth.
	KindStats
	// KindFootprint: MemoryFootprint differs from the recomputed value.
	KindFootprint
	// KindSnapshot: in Concurrent mode, the published directory snapshot
	// disagrees with the canonical directory.
	KindSnapshot
	// KindSeqParity: a directory-reachable segment has an odd seqlock
	// version (retired, or a writer mid-critical-section on a quiescent
	// index).
	KindSeqParity

	numKinds
)

var kindNames = [numKinds]string{
	"dir-size", "dir-run-misaligned", "dir-run-broken", "depth-exceeded",
	"geometry", "bucket-order", "key-range", "first-key-cache",
	"remap-shape", "remap-monotone", "sibling-chain", "segment-total",
	"eh-total", "limit-mult", "seg-limit", "stats", "footprint",
	"snapshot", "seq-parity",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Violation is one invariant breach. EH is the first-level table index, or
// -1 for index-wide violations (Stats/Footprint). SegmentBase identifies the
// offending segment where one is involved.
type Violation struct {
	Kind        Kind
	EH          int
	SegmentBase uint64
	Detail      string
}

func (v Violation) String() string {
	if v.EH < 0 {
		return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("[%s] eh=%d seg=%#x: %s", v.Kind, v.EH, v.SegmentBase, v.Detail)
}

// Check validates every invariant over the whole index and returns all
// violations found (nil when the index is sound). See the package comment
// for the invariant list and the quiescence requirement.
func Check(d *core.DyTIS) []Violation {
	var vs []Violation
	opts := d.Opts()

	// Ground-truth accumulators recomputed independently of the stride walk
	// Stats and MemoryFootprint use.
	var wantSegments, wantBuckets, wantDir int
	var wantLen, wantBytes int64

	d.Introspect(func(e core.EHView) {
		c := &ehChecker{e: e, opts: opts}
		c.run()
		vs = append(vs, c.vs...)
		wantSegments += c.segments
		wantBuckets += c.buckets
		wantDir += e.DirLen()
		wantLen += c.keys
		wantBytes += c.bytes + int64(e.DirLen())*8
	})

	// Locks are released; compare the index's own accounting against the
	// recount. Only meaningful on a quiescent index.
	if n := int64(d.Len()); n != wantLen {
		vs = append(vs, Violation{Kind: KindEHTotal, EH: -1,
			Detail: fmt.Sprintf("Len()=%d, recounted %d", n, wantLen)})
	}
	st := d.Stats()
	if st.Segments != wantSegments || st.Buckets != wantBuckets || st.DirEntries != wantDir {
		vs = append(vs, Violation{Kind: KindStats, EH: -1,
			Detail: fmt.Sprintf("Stats segments=%d buckets=%d dir=%d, recounted %d/%d/%d",
				st.Segments, st.Buckets, st.DirEntries, wantSegments, wantBuckets, wantDir)})
	}
	if got := d.MemoryFootprint(); got != wantBytes {
		vs = append(vs, Violation{Kind: KindFootprint, EH: -1,
			Detail: fmt.Sprintf("MemoryFootprint=%d, recomputed %d", got, wantBytes)})
	}
	return vs
}

// ehChecker validates one EH table under the EH lock Introspect holds.
type ehChecker struct {
	e    core.EHView
	opts core.Options
	vs   []Violation

	segments, buckets int
	keys              int64 // recounted live keys
	bytes             int64 // recomputed segment heap bytes
}

func (c *ehChecker) violate(kind Kind, segBase uint64, format string, args ...any) {
	c.vs = append(c.vs, Violation{
		Kind: kind, EH: c.e.Index(), SegmentBase: segBase,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (c *ehChecker) run() {
	e := c.e
	gd := e.GlobalDepth()
	dirLen := e.DirLen()
	if dirLen != 1<<gd {
		c.violate(KindDirSize, 0, "directory has %d slots, gd=%d wants %d", dirLen, gd, 1<<gd)
		// The run walk below still works on whatever is there.
	}

	// Optimistic readers resolve through the published snapshot, so in
	// Concurrent mode it must agree with the canonical directory (writers
	// republish before retiring the segments a stale snapshot would route
	// to). Single-threaded mode only publishes at construction/bulk-load and
	// legitimately diverges after maintenance.
	if e.Concurrent() {
		if sgd, sn := e.SnapshotGlobalDepth(), e.SnapshotDirLen(); sgd != gd || sn != dirLen {
			c.violate(KindSnapshot, 0, "snapshot gd=%d len=%d, canonical gd=%d len=%d",
				sgd, sn, gd, dirLen)
		} else {
			for i := 0; i < dirLen; i++ {
				if e.SnapshotSegment(i) != e.DirSegment(i) {
					c.violate(KindSnapshot, e.DirSegment(i).Base(),
						"snapshot dir[%d] disagrees with canonical directory", i)
					break
				}
			}
		}
	}

	// Walk the directory collecting maximal same-segment runs, verifying
	// tiling, alignment, and geometry, then validate each segment once.
	var inOrder []core.SegmentView
	seen := map[core.SegmentView]bool{}
	for i := 0; i < dirLen; {
		s := e.DirSegment(i)
		runLen := 1
		for i+runLen < dirLen && e.DirSegment(i+runLen) == s {
			runLen++
		}
		ld := s.LocalDepth()
		if ld > gd {
			c.violate(KindDepthExceeded, s.Base(), "segment ld=%d exceeds gd=%d", ld, gd)
		} else {
			span := 1 << (gd - ld)
			if runLen != span {
				c.violate(KindDirRunBroken, s.Base(),
					"run at dir[%d] has %d slots, ld=%d wants %d", i, runLen, ld, span)
			}
			if i%span != 0 {
				c.violate(KindDirRunMisaligned, s.Base(),
					"run at dir[%d] not aligned to span %d", i, span)
			}
			// Geometry: the run's position addresses exactly the segment's
			// covered key span.
			if wantBits := e.SuffixBits() - ld; s.RangeBits() != wantBits {
				c.violate(KindGeometry, s.Base(),
					"rangeBits=%d, suffixBits=%d ld=%d wants %d",
					s.RangeBits(), e.SuffixBits(), ld, wantBits)
			} else if runLen == span && i%span == 0 {
				wantBase := e.Base() + uint64(i)<<(e.SuffixBits()-gd)
				if s.Base() != wantBase {
					c.violate(KindGeometry, s.Base(),
						"base=%#x, dir position %d wants %#x", s.Base(), i, wantBase)
				}
			}
		}
		if seen[s] {
			c.violate(KindDirRunBroken, s.Base(), "segment owns multiple directory runs (second at dir[%d])", i)
		} else {
			seen[s] = true
			inOrder = append(inOrder, s)
			// Retirement marks a segment permanently odd in both modes; a
			// quiescent directory must never reference one, and no writer can
			// be mid-critical-section.
			if s.SeqOdd() {
				c.violate(KindSeqParity, s.Base(),
					"directory-reachable segment has odd seqlock version")
			}
			c.checkSegment(s)
		}
		i += runLen
	}

	c.checkSiblingChain(inOrder)

	if got := e.TotalCounter(); got != c.keys {
		c.violate(KindEHTotal, 0, "eh total=%d, recounted %d", got, c.keys)
	}
	if m := e.LimitMult(); m != c.opts.SegLimitMult && m != c.opts.AdaptiveMult {
		c.violate(KindLimitMult, 0, "limitMult=%d, want %d or %d",
			m, c.opts.SegLimitMult, c.opts.AdaptiveMult)
	}
}

// checkSegment validates one segment's buckets, remapping function,
// counters, and size cap, and accumulates the ground-truth totals.
func (c *ehChecker) checkSegment(s core.SegmentView) {
	s.RLock()
	defer s.RUnlock()

	nb, bcap := s.NumBuckets(), s.BucketCap()
	base := s.Base()
	var width uint64 // 0 means the full 2^64 range (rangeBits == 64 cannot occur: R >= 1)
	if s.RangeBits() < 64 {
		width = uint64(1) << s.RangeBits()
	}

	c.segments++
	c.buckets += nb
	cnt := s.SubRangeBuckets()
	c.bytes += int64(nb*bcap)*16 + int64(nb)*2 + int64(len(cnt))*8 + 96

	// Bucket order, key range, capacity, and the fk cache in one pass.
	counted := 0
	var prev uint64
	seenAny := false
	for bi := 0; bi < nb; bi++ {
		n := s.BucketLen(bi)
		if n > bcap {
			c.violate(KindBucketOrder, base, "bucket %d holds %d > cap %d", bi, n, bcap)
			continue
		}
		ks := s.BucketKeys(bi)
		counted += len(ks)
		for _, k := range ks {
			if seenAny && k <= prev {
				c.violate(KindBucketOrder, base,
					"keys not globally ascending at bucket %d (%#x after %#x)", bi, k, prev)
			}
			if k < base || (width != 0 && k-base >= width) {
				c.violate(KindKeyRange, base,
					"key %#x outside [%#x, %#x+2^%d)", k, base, base, s.RangeBits())
			}
			prev, seenAny = k, true
		}
	}
	c.keys += int64(counted)
	if got := s.TotalCounter(); got != counted {
		c.violate(KindSegmentTotal, base, "segment total=%d, recounted %d", got, counted)
	}

	// fk must be the right-fill of bucket first keys (sentinel ^0 past the
	// last non-empty bucket).
	fill := ^uint64(0)
	for bi := nb - 1; bi >= 0; bi-- {
		if s.BucketLen(bi) > 0 {
			fill = s.BucketKeys(bi)[0]
		}
		if got := s.FirstKeyCache(bi); got != fill {
			c.violate(KindFirstKeyCache, base, "fk[%d]=%#x, want %#x", bi, got, fill)
			break // one report per segment; the rest is usually the same corruption
		}
	}

	// Remapping function: shape, prefix-sum coherence, and monotonicity.
	pbits := s.SubRangeBits()
	start := s.StartOffsets()
	lengthsOK := true
	if pbits > s.RangeBits() {
		c.violate(KindRemapShape, base, "pbits=%d exceeds rangeBits=%d", pbits, s.RangeBits())
		lengthsOK = false
	}
	if len(cnt) != 1<<pbits || len(start) != len(cnt)+1 {
		c.violate(KindRemapShape, base,
			"len(cnt)=%d len(start)=%d, pbits=%d wants %d/%d",
			len(cnt), len(start), pbits, 1<<pbits, 1<<pbits+1)
		lengthsOK = false
	}
	if lengthsOK {
		sum := uint32(0)
		coherent := true
		for j, cj := range cnt {
			if start[j] != sum {
				c.violate(KindRemapShape, base,
					"start[%d]=%d, prefix sum of cnt wants %d", j, start[j], sum)
				coherent = false
				break
			}
			sum += cj
		}
		if coherent && int(start[len(cnt)]) != nb {
			c.violate(KindRemapShape, base, "start[last]=%d, nb=%d", start[len(cnt)], nb)
		}
	}
	// Monotonicity is checked against observed predictions, not re-derived
	// from prefix-sum coherence, so a corrupted start array that shifts
	// predictions backwards is caught even though each check alone could
	// miss it. Gated only on array lengths (prediction indexes safely).
	if lengthsOK && width != 0 {
		// Sample each sub-range's boundary and midpoint keys and require
		// non-decreasing bucket predictions.
		prevBi := -1
		sub := width >> pbits
		for j := range cnt {
			lo := base + uint64(j)*sub
			for _, k := range [...]uint64{lo, lo + sub/2, lo + sub - 1} {
				bi := s.Predict(k)
				if bi < prevBi {
					c.violate(KindRemapMonotone, base,
						"predict(%#x)=%d after %d: remapping not monotone", k, bi, prevBi)
					return
				}
				if bi < 0 || bi >= nb {
					c.violate(KindRemapShape, base, "predict(%#x)=%d outside [0,%d)", k, bi, nb)
					return
				}
				prevBi = bi
			}
		}
	}

	// Limit_seg: below the depth guard no segment may exceed its
	// depth-derived cap. (At the guard, forceRebalance grows past the cap by
	// design; and a split child that cannot fit its keys within the cap is
	// sized to fit, so a genuinely-full segment is exempt.)
	if !c.e.AtDepthGuard() {
		lim := c.e.MaxBuckets(s.LocalDepth())
		needed := (counted + bcap - 1) / bcap
		if nb > lim && nb > needed {
			c.violate(KindSegLimit, base, "nb=%d exceeds Limit_seg=%d (ld=%d, %d keys)",
				nb, lim, s.LocalDepth(), counted)
		}
	}
}

// checkSiblingChain verifies the next-pointer chain visits exactly the
// segments of the in-order directory walk, in order, ending with no
// successor.
func (c *ehChecker) checkSiblingChain(inOrder []core.SegmentView) {
	if len(inOrder) == 0 {
		return
	}
	cur := inOrder[0]
	for i := 1; i < len(inOrder); i++ {
		nxt, ok := cur.Next()
		if !ok {
			c.violate(KindSiblingChain, cur.Base(),
				"chain ends after %d of %d segments", i, len(inOrder))
			return
		}
		if nxt != inOrder[i] {
			c.violate(KindSiblingChain, cur.Base(),
				"chain visits seg %#x, directory walk wants %#x", nxt.Base(), inOrder[i].Base())
			return
		}
		cur = nxt
	}
	if nxt, ok := cur.Next(); ok {
		c.violate(KindSiblingChain, cur.Base(),
			"chain continues past the last segment (to %#x)", nxt.Base())
	}
}
