// Package kv defines the key/value types and the common index interfaces
// shared by the DyTIS core and by every baseline index structure in this
// repository (B+-tree, ALEX-like, XIndex-like, CCEH, extendible hashing).
//
// Keys are unsigned 64-bit integers, matching the 8-byte integer keys the
// DyTIS paper evaluates. Values are also 64-bit; in a real data management
// system a value may be a pointer or record handle.
package kv

// Key is an 8-byte integer key, ordered by its unsigned numeric value.
type Key = uint64

// Value is an 8-byte value payload (possibly a pointer/handle).
type Value = uint64

// KV is a key/value pair, the unit returned by scans.
type KV struct {
	Key   Key
	Value Value
}

// Index is the operation set all point indexes in this repository support.
// Insert is an upsert: inserting an existing key updates its value in place,
// mirroring the paper's in-place-update semantics for workloads A/B/D'/F.
type Index interface {
	// Insert stores or updates the value for key.
	Insert(key Key, value Value)
	// Get returns the value for key and whether it exists.
	Get(key Key) (Value, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key Key) bool
	// Len returns the number of live keys.
	Len() int
}

// Scanner is implemented by ordered indexes that support range scans.
// Scan appends up to max pairs with key >= start, in ascending key order,
// to dst and returns the extended slice.
type Scanner interface {
	Scan(start Key, max int, dst []KV) []KV
}

// OrderedIndex combines point operations with ordered scans; DyTIS, the
// B+-tree, and the learned indexes satisfy it. Pure hash indexes (EH, CCEH)
// only satisfy Index.
type OrderedIndex interface {
	Index
	Scanner
}

// BulkLoader is implemented by indexes that can be initialized from a sorted
// key/value stream (the learned-index "training"/bulk-loading phase).
// Keys must be strictly ascending.
type BulkLoader interface {
	BulkLoad(keys []Key, values []Value)
}
