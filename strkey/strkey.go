// Package strkey provides string-keyed access to DyTIS: an order-preserving
// 8-byte prefix encoding plus an ordered Map that handles prefix collisions
// exactly — the string-key extension direction §5 of the paper discusses.
//
//	m := strkey.NewMap(dytis.Options{})
//	m.Set("alpha", 1)
//	v, ok := m.Get("alpha")
//	m.Range("a", func(k string, v uint64) bool { ... })
package strkey

import (
	"dytis"
	"dytis/internal/strkey"
)

// Map is an ordered map from string keys to uint64 values built on a DyTIS
// index. Not safe for concurrent use.
type Map = strkey.Map

// NewMap returns an empty string-keyed map with the given DyTIS options.
func NewMap(opts dytis.Options) *Map { return strkey.NewMap(opts) }

// Encode maps a string to an order-preserving uint64 (first 8 bytes,
// big-endian). Strings equal in their first 8 bytes collide; Map handles
// collisions exactly, raw Encode users must tolerate them.
func Encode(s string) uint64 { return strkey.Encode(s) }
