package analyzers

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricCheck keeps the `dytis_*` Prometheus series honest: every series a
// package exposes must be declared, written by exactly one exporter, backed
// by something that actually changes, and documented.
//
// Series are declared with a `//dytis:series <name> [<name>...]` comment:
//
//   - on a struct field — the field backs those series, and MetricCheck
//     verifies the field is mutated (Add/Record/Store/…) somewhere outside
//     the exporter, so a counter that nothing increments is flagged;
//   - on a func declaration — for series derived on the fly (gauges computed
//     from a Stats snapshot), which have no backing field to watch.
//
// The exporter is any function named WritePrometheus; every `dytis_*` name
// in its string literals counts as registered (`_sum`/`_count` forms fold
// into their summary's base name). MetricCheck reports:
//
//   - a declared series no WritePrometheus in the package registers
//   - a registered series never declared with //dytis:series
//   - a field-backed series whose field nothing increments
//   - a series registered by two packages (via package facts — flagged in
//     any package that imports both exporters)
//   - a registered series missing from a documentation file listed by a
//     `//dytis:metric-docs <path>...` comment (paths relative to the file
//     carrying the marker)
var MetricCheck = &Analyzer{
	Name: "metriccheck",
	Doc:  "verify dytis_* metric series are declared, registered once, incremented, and documented",
	Run:  runMetricCheck,
}

const (
	seriesMarker     = "dytis:series"
	metricDocsMarker = "dytis:metric-docs"
)

// metricFacts is the fact blob a package exports: the series its exporters
// register, canonicalized and sorted.
type metricFacts struct {
	Registered []string `json:"registered,omitempty"`
}

var seriesNameRE = regexp.MustCompile(`dytis_[a-zA-Z0-9_]+`)

// incrementVerbs are the method names that count as mutating a metric field.
var incrementVerbs = map[string]bool{
	"Add": true, "Record": true, "RecordN": true, "Store": true,
	"Inc": true, "Dec": true, "CompareAndSwap": true, "Swap": true,
	"Observe": true,
}

func runMetricCheck(pass *Pass) error {
	type decl struct {
		pos   token.Pos
		field types.Object // non-nil for field-backed series
	}
	declared := map[string]decl{}        // series name -> declaration
	registered := map[string]token.Pos{} // canonical series name -> first literal
	mutated := map[types.Object]bool{}   // fields mutated outside exporters
	type docsRef struct {
		path string // resolved docs file path
		pos  token.Pos
	}
	var docs []docsRef

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		fileDir := filepath.Dir(pass.Fset.Position(f.Pos()).Filename)

		// Declarations on struct fields and func decls; docs markers on any
		// comment in the file.
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if rest, ok := cutComment(cm.Text, metricDocsMarker); ok {
					for _, rel := range strings.Fields(stripInlineComment(rest)) {
						docs = append(docs, docsRef{path: filepath.Join(fileDir, rel), pos: cm.Pos()})
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					names := seriesAnnotation(field.Doc, field.Comment)
					if len(names) == 0 || len(field.Names) == 0 {
						continue
					}
					obj := pass.TypesInfo.Defs[field.Names[0]]
					for _, s := range names {
						declared[s] = decl{pos: field.Pos(), field: obj}
					}
				}
			case *ast.FuncDecl:
				for _, s := range seriesAnnotation(n.Doc, nil) {
					declared[s] = decl{pos: n.Pos()}
				}
			}
			return true
		})

		// Registrations and field mutations.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "WritePrometheus" {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						return true
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil {
						return true
					}
					for _, name := range seriesNameRE.FindAllString(s, -1) {
						if _, seen := registered[name]; !seen {
							registered[name] = lit.Pos()
						}
					}
					return true
				})
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || !incrementVerbs[sel.Sel.Name] {
						return true
					}
					if obj := selectedField(pass, sel.X); obj != nil {
						mutated[obj] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if obj := selectedField(pass, lhs); obj != nil {
							mutated[obj] = true
						}
					}
				case *ast.IncDecStmt:
					if obj := selectedField(pass, n.X); obj != nil {
						mutated[obj] = true
					}
				}
				return true
			})
		}
	}

	// Fold _sum/_count variants into their summary's base series.
	for name := range registered {
		for _, suffix := range []string{"_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				if _, has := registered[base]; has {
					delete(registered, name)
				}
			}
		}
	}

	regNames := make([]string, 0, len(registered))
	for n := range registered {
		regNames = append(regNames, n)
	}
	sort.Strings(regNames)
	if len(regNames) > 0 {
		if blob, err := json.Marshal(&metricFacts{Registered: regNames}); err == nil {
			pass.writeFacts(blob)
		}
	}

	declNames := make([]string, 0, len(declared))
	for n := range declared {
		declNames = append(declNames, n)
	}
	sort.Strings(declNames)
	for _, name := range declNames {
		d := declared[name]
		if _, ok := registered[name]; !ok {
			pass.Reportf(d.pos, "series %s is declared but no WritePrometheus in this package registers it", name)
			continue
		}
		if d.field != nil && !mutated[d.field] {
			pass.Reportf(d.pos, "series %s is backed by field %s, which nothing increments", name, d.field.Name())
		}
	}
	for _, name := range regNames {
		if _, ok := declared[name]; !ok {
			pass.Reportf(registered[name], "series %s is registered but not declared with //dytis:series", name)
		}
	}

	// Documentation coverage.
	for _, ref := range docs {
		data, err := os.ReadFile(ref.path)
		if err != nil {
			pass.Reportf(ref.pos, "metric docs file %s is not readable: %v", ref.path, err)
			continue
		}
		text := string(data)
		for _, name := range regNames {
			if !strings.Contains(text, name) {
				pass.Reportf(registered[name], "series %s is not documented in %s", name, ref.path)
			}
		}
	}

	// Cross-package double registration, via facts: flagged in any package
	// whose dependency set (plus itself) registers a series twice.
	owners := map[string][]string{}
	for _, n := range regNames {
		owners[n] = append(owners[n], pass.Pkg.Path())
	}
	depPaths := make([]string, 0)
	for path := range pass.depFacts() {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	deps := pass.depFacts()
	for _, path := range depPaths {
		var f metricFacts
		if json.Unmarshal(deps[path], &f) != nil {
			continue
		}
		for _, n := range f.Registered {
			owners[n] = append(owners[n], path)
		}
	}
	dupNames := make([]string, 0)
	for n, pkgs := range owners {
		if len(pkgs) > 1 {
			dupNames = append(dupNames, n)
		}
	}
	sort.Strings(dupNames)
	for _, n := range dupNames {
		pos := registered[n]
		if pos == token.NoPos && len(pass.Files) > 0 {
			pos = pass.Files[0].Name.Pos()
		}
		pass.Reportf(pos, "series %s is registered by more than one package: %s", n, strings.Join(owners[n], ", "))
	}
	return nil
}

// seriesAnnotation extracts the names of a //dytis:series comment in either
// comment group.
func seriesAnnotation(groups ...*ast.CommentGroup) []string {
	var names []string
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			if rest, ok := cutComment(cm.Text, seriesMarker); ok {
				names = append(names, strings.Fields(stripInlineComment(rest))...)
			}
		}
	}
	return names
}

// selectedField resolves the struct field an expression ultimately selects,
// looking through index expressions (m.ops[op][shard] -> field ops).
func selectedField(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			return nil
		default:
			return nil
		}
	}
}
