package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ProtoCheck verifies the wire protocol's enumerated constants are handled
// exhaustively at every annotated boundary, and that the frame-size
// constants stay mutually consistent.
//
// The defining package is any package declaring a named integer type called
// Opcode (and/or Status). ProtoCheck enumerates its constants — every
// Opcode-typed `Op*` constant with a nonzero value, every Status-typed
// `Status*` constant, every `Feat*`/`Version*` constant — and exports them
// as a package fact, so switches in dependent packages are checked against
// the same table.
//
// A switch opts into exhaustiveness checking with a marker comment on the
// line above it (or its own line):
//
//	//dytis:opswitch <set> [group=<name>]
//
// where <set> is one of:
//
//	requests  — every request opcode (all Op* minus //dytis:response-only)
//	responses — every opcode that may appear in a response (all Op*)
//	opcodes   — alias of responses, for opcode-to-name tables
//	statuses  — every Status* constant
//
// Each marked switch must name every constant of its set in its case
// clauses; a `default:` clause does not count (that is the point — adding an
// opcode must force a decision at every boundary). Switches sharing a
// `group=<name>` are unioned first, for dispatch logic split across several
// switches (e.g. a v2-control dispatch plus a v1 execute switch).
//
// An opcode constant whose doc or line comment carries
// `//dytis:response-only` is excluded from the `requests` set.
//
// In the defining package, ProtoCheck additionally cross-checks the frame
// constants when present: AllFeatures is the OR of every Feat* bit,
// MaxVersion is the highest Version*, maxBody == MaxFrame - headerLen, and a
// maximal batch request / scan response still fits in maxBody.
var ProtoCheck = &Analyzer{
	Name: "protocheck",
	Doc:  "check exhaustive handling of wire-protocol opcode/status constants and frame-size consistency",
	Run:  runProtoCheck,
}

// protoFacts is the fact blob a defining package exports, JSON-encoded.
type protoFacts struct {
	// Opcodes maps each request/response opcode constant name to its value
	// (OpInvalid/zero excluded).
	Opcodes map[string]uint64 `json:"opcodes,omitempty"`
	// ResponseOnly lists opcode names that never appear in requests.
	ResponseOnly []string `json:"response_only,omitempty"`
	// Statuses maps each status constant name to its value.
	Statuses map[string]uint64 `json:"statuses,omitempty"`
}

const (
	opswitchMarker     = "dytis:opswitch"
	responseOnlyMarker = "dytis:response-only"
)

func runProtoCheck(pass *Pass) error {
	local := gatherProtoFacts(pass)
	if local != nil {
		if blob, err := json.Marshal(local); err == nil {
			pass.writeFacts(blob)
		}
		checkProtoValues(pass)
	}

	// factsFor resolves the fact table governing a switch tag's named type.
	factsFor := func(named *types.Named) *protoFacts {
		pkg := named.Obj().Pkg()
		if pkg == nil {
			return nil
		}
		if pkg == pass.Pkg {
			return local
		}
		blob := pass.readFacts(pkg.Path())
		if blob == nil {
			return nil
		}
		var f protoFacts
		if json.Unmarshal(blob, &f) != nil {
			return nil
		}
		return &f
	}

	// One coverage accumulator per (defining package, set, group); ungrouped
	// switches get a unique key so they must each be exhaustive alone.
	type groupKey struct {
		pkg, set, group string
	}
	type coverage struct {
		facts   *protoFacts
		set     string
		covered map[string]bool
		pos     token.Pos // first switch of the group, where misses report
	}
	groups := map[groupKey]*coverage{}
	var order []groupKey

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		markers := opswitchMarkers(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			line := pass.Fset.Position(sw.Pos()).Line
			m := markers[line-1]
			if m == nil {
				m = markers[line]
			}
			if m == nil {
				return true
			}
			m.used = true
			if sw.Tag == nil {
				pass.Reportf(sw.Pos(), "dytis:opswitch on a switch without a tag expression")
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named, _ := tv.Type.(*types.Named)
			if named == nil {
				pass.Reportf(sw.Pos(), "dytis:opswitch on a switch over %s, not a protocol Opcode/Status type", tv.Type)
				return true
			}
			typeName := named.Obj().Name()
			wantType := "Opcode"
			if m.set == "statuses" {
				wantType = "Status"
			}
			if typeName != wantType {
				pass.Reportf(sw.Pos(), "dytis:opswitch %s: switch tag type %s is not %s", m.set, typeName, wantType)
				return true
			}
			facts := factsFor(named)
			if facts == nil {
				pass.Reportf(sw.Pos(), "no protocol facts for package %s (is protocheck running over it?)", named.Obj().Pkg().Path())
				return true
			}
			key := groupKey{pkg: named.Obj().Pkg().Path(), set: m.set, group: m.group}
			if m.group == "" {
				key.group = fmt.Sprintf("@%d", sw.Pos()) // unique: standalone switch
			}
			cov := groups[key]
			if cov == nil {
				cov = &coverage{facts: facts, set: m.set, covered: map[string]bool{}, pos: sw.Pos()}
				groups[key] = cov
				order = append(order, key)
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name := constName(pass, e); name != "" {
						cov.covered[name] = true
					}
				}
			}
			return true
		})
		for _, m := range markers {
			if !m.used {
				pass.Reportf(m.pos, "dytis:opswitch marker is not attached to a switch statement")
			}
		}
	}

	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]].pos < groups[order[j]].pos
	})
	for _, key := range order {
		cov := groups[key]
		for _, name := range requiredNames(cov.facts, cov.set) {
			if !cov.covered[name] {
				pass.Reportf(cov.pos, "protocol switch (%s) does not handle %s", cov.set, name)
			}
		}
	}
	return nil
}

// requiredNames returns the sorted constant names a switch of the given set
// must handle.
func requiredNames(f *protoFacts, set string) []string {
	var names []string
	switch set {
	case "requests":
		respOnly := map[string]bool{}
		for _, n := range f.ResponseOnly {
			respOnly[n] = true
		}
		for n := range f.Opcodes {
			if !respOnly[n] {
				names = append(names, n)
			}
		}
	case "responses", "opcodes":
		for n := range f.Opcodes {
			names = append(names, n)
		}
	case "statuses":
		for n := range f.Statuses {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// opswitch holds one parsed //dytis:opswitch marker.
type opswitch struct {
	set   string
	group string
	pos   token.Pos
	used  bool
}

// opswitchMarkers parses the file's //dytis:opswitch comments, keyed by line.
func opswitchMarkers(pass *Pass, f *ast.File) map[int]*opswitch {
	markers := map[int]*opswitch{}
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			rest, ok := cutComment(cm.Text, opswitchMarker)
			if !ok {
				continue
			}
			fields := strings.Fields(stripInlineComment(rest))
			m := &opswitch{pos: cm.Pos(), used: true} // parse errors report once, here
			if len(fields) >= 1 {
				m.set = fields[0]
			}
			switch m.set {
			case "requests", "responses", "opcodes", "statuses":
			default:
				pass.Reportf(cm.Pos(), "dytis:opswitch: unknown set %q (want requests|responses|opcodes|statuses)", m.set)
				continue
			}
			bad := false
			for _, opt := range fields[1:] {
				if g, ok := strings.CutPrefix(opt, "group="); ok && g != "" {
					m.group = g
				} else {
					pass.Reportf(cm.Pos(), "dytis:opswitch: unknown option %q", opt)
					bad = true
				}
			}
			if bad {
				continue
			}
			m.used = false
			markers[pass.Fset.Position(cm.Pos()).Line] = m
		}
	}
	return markers
}

// constName resolves a case expression to the constant name it denotes, ""
// when it is not a simple reference to a constant.
func constName(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// gatherProtoFacts enumerates the package's protocol constants, nil when the
// package defines neither an Opcode nor a Status type.
func gatherProtoFacts(pass *Pass) *protoFacts {
	opType := namedIntType(pass.Pkg, "Opcode")
	stType := namedIntType(pass.Pkg, "Status")
	if opType == nil && stType == nil {
		return nil
	}
	f := &protoFacts{Opcodes: map[string]uint64{}, Statuses: map[string]uint64{}}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		v, exact := constUint64(c)
		if !exact {
			continue
		}
		switch {
		case opType != nil && c.Type() == opType && strings.HasPrefix(name, "Op") && v != 0:
			f.Opcodes[name] = v
		case stType != nil && c.Type() == stType && strings.HasPrefix(name, "Status"):
			f.Statuses[name] = v
		}
	}
	// Response-only opcodes are tagged on their declaration comments.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !hasMarker(vs.Doc, responseOnlyMarker) && !hasMarker(vs.Comment, responseOnlyMarker) {
					continue
				}
				for _, n := range vs.Names {
					if _, isOp := f.Opcodes[n.Name]; isOp {
						f.ResponseOnly = append(f.ResponseOnly, n.Name)
					}
				}
			}
		}
	}
	sort.Strings(f.ResponseOnly)
	return f
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, cm := range cg.List {
		if commentIs(cm.Text, marker) {
			return true
		}
	}
	return false
}

// namedIntType returns the package-scope named type of the given name when
// its underlying type is an integer, else nil.
func namedIntType(pkg *types.Package, name string) types.Type {
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	if b, ok := tn.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return tn.Type()
}

func constUint64(c *types.Const) (uint64, bool) {
	return constant.Uint64Val(constant.ToInt(c.Val()))
}

// lookupConst fetches a package-scope constant's value by name.
func lookupConst(pkg *types.Package, name string) (uint64, *types.Const, bool) {
	c, ok := pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, nil, false
	}
	v, exact := constUint64(c)
	return v, c, exact
}

// checkProtoValues cross-checks the defining package's frame-size and
// feature/version constants. Each individual check runs only when every
// constant it mentions exists, so partial protocol packages (testdata) stay
// quiet about the rest.
func checkProtoValues(pass *Pass) {
	pkg := pass.Pkg
	scope := pkg.Scope()

	// AllFeatures == OR of every Feat* bit.
	if all, allObj, ok := lookupConst(pkg, "AllFeatures"); ok {
		var or uint64
		any := false
		for _, name := range scope.Names() {
			if strings.HasPrefix(name, "Feat") {
				if v, _, ok := lookupConst(pkg, name); ok {
					or |= v
					any = true
				}
			}
		}
		if any && all != or {
			pass.Reportf(allObj.Pos(), "AllFeatures (%#x) != OR of Feat* constants (%#x)", all, or)
		}
	}

	// MaxVersion == highest Version*.
	if maxV, maxObj, ok := lookupConst(pkg, "MaxVersion"); ok {
		var hi uint64
		any := false
		for _, name := range scope.Names() {
			if strings.HasPrefix(name, "Version") {
				if v, _, ok := lookupConst(pkg, name); ok && v > hi {
					hi = v
					any = true
				}
			}
		}
		if any && maxV != hi {
			pass.Reportf(maxObj.Pos(), "MaxVersion (%d) != highest Version* constant (%d)", maxV, hi)
		}
	}

	maxFrame, _, okFrame := lookupConst(pkg, "MaxFrame")
	headerLen, _, okHeader := lookupConst(pkg, "headerLen")
	prefixLen, _, okPrefix := lookupConst(pkg, "prefixLen")
	maxBody, bodyObj, okBody := lookupConst(pkg, "maxBody")

	// maxBody == MaxFrame - headerLen: the length prefix is counted in
	// MaxFrame but not in the body it delimits (the CRC trailer, when
	// negotiated, is counted in neither — it rides outside the prefix).
	if okFrame && okHeader && okBody && maxBody != maxFrame-headerLen {
		pass.Reportf(bodyObj.Pos(), "maxBody (%d) != MaxFrame-headerLen (%d)", maxBody, maxFrame-headerLen)
	}

	// A maximal batch request still fits one frame: id+opcode prefix, the
	// 4-byte deadline budget FlagDeadline can add, a 4-byte count, then 16
	// bytes per key/value pair.
	if maxBatch, batchObj, ok := lookupConst(pkg, "MaxBatch"); ok && okPrefix && okBody {
		if need := prefixLen + 4 + 4 + 16*maxBatch; need > maxBody {
			pass.Reportf(batchObj.Pos(), "a full MaxBatch insert batch (%d bytes) exceeds maxBody (%d)", need, maxBody)
		}
	}

	// A maximal scan response fits too: prefix, 1-byte status, 4-byte count,
	// 16 bytes per pair.
	if maxScan, scanObj, ok := lookupConst(pkg, "MaxScan"); ok && okPrefix && okBody {
		if need := prefixLen + 1 + 4 + 16*maxScan; need > maxBody {
			pass.Reportf(scanObj.Pos(), "a full MaxScan scan response (%d bytes) exceeds maxBody (%d)", need, maxBody)
		}
	}
}
