//go:build dytisfault

package server_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/cluster"
	"dytis/internal/core"
	"dytis/internal/server"
)

// The cluster kill -9 matrix: real dytis-server-shaped processes (this test
// binary re-executed), a routed client driving traffic, and SIGKILL landing
// on a shard — mid-traffic, and on the old owner mid-handover. The contract
// under fire is fail-closed: operations touching the dead range error,
// scans error rather than silently truncate, surviving ranges answer
// exactly as before, and a handover whose source dies is reported as a
// failure with ownership never granted to the target. Errors are allowed;
// wrong answers and lost acked writes on surviving shards never.

const (
	clusterProcEnv = "DYTIS_CLUSTERPROC_SHARD" // "lo:hi" in hex, marks the child
)

// TestClusterProcChild is one shard-server process; it only runs when the
// parent points it at a range via environment. It prints its listen address
// and serves until killed.
func TestClusterProcChild(t *testing.T) {
	rng := os.Getenv(clusterProcEnv)
	if rng == "" {
		t.Skip("cluster child: driven by the kill-matrix parents")
	}
	var lo, hi uint64
	if _, err := fmt.Sscanf(rng, "%x:%x", &lo, &hi); err != nil {
		t.Fatalf("bad %s=%q: %v", clusterProcEnv, rng, err)
	}
	idx := core.New(smallOpts())
	node, err := cluster.NewNode(cluster.NodeConfig{Index: idx, Lo: lo, Hi: hi, Dial: testDialPeer})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Index: idx, Cluster: node, MaxConns: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("READY %s\n", ln.Addr())
	t.Fatal(srv.Serve(ln)) // serves until the parent kills the process
}

// clusterChild is one spawned shard process.
type clusterChild struct {
	addr string
	cmd  *exec.Cmd
}

func (c *clusterChild) kill() {
	if c.cmd.Process != nil {
		syscall.Kill(c.cmd.Process.Pid, syscall.SIGKILL)
	}
	c.cmd.Wait()
}

// spawnShard re-executes the test binary as a shard server owning [lo, hi]
// and waits for its READY line.
func spawnShard(t *testing.T, lo, hi uint64) *clusterChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestClusterProcChild$", "-test.v")
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%x:%x", clusterProcEnv, lo, hi))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ch := &clusterChild{cmd: cmd}
	t.Cleanup(ch.kill)

	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "READY "); ok {
				ready <- addr
				break
			}
		}
		close(ready)
	}()
	select {
	case addr, ok := <-ready:
		if !ok || addr == "" {
			t.Fatalf("child exited before READY; stderr:\n%s", stderr.String())
		}
		ch.addr = addr
	case <-time.After(30 * time.Second):
		t.Fatalf("child never printed READY; stderr:\n%s", stderr.String())
	}
	return ch
}

// spawnCluster boots n uniform shard processes and installs the epoch-1 map.
func spawnCluster(t *testing.T, n int) []*clusterChild {
	t.Helper()
	width := ^uint64(0)/uint64(n) + 1
	children := make([]*clusterChild, n)
	addrs := make([]string, n)
	for i := range children {
		lo := uint64(i) * width
		hi := lo + width - 1
		if i == n-1 {
			hi = ^uint64(0)
		}
		children[i] = spawnShard(t, lo, hi)
		addrs[i] = children[i].addr
	}
	m, err := cluster.Uniform(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	blob := m.Encode()
	ctx := context.Background()
	for i, ch := range children {
		c, err := client.Dial(ch.addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetShardMap(ctx, m.Shards[i].Lo, m.Shards[i].Hi, blob); err != nil {
			t.Fatalf("installing map on shard %d: %v", i, err)
		}
		c.Close()
	}
	return children
}

// TestClusterProcKillShard SIGKILLs one shard process mid-traffic and holds
// the routed client to the fail-closed contract.
func TestClusterProcKillShard(t *testing.T) {
	if os.Getenv(clusterProcEnv) != "" {
		t.Skip("cluster child must not recurse into the parent test")
	}
	children := spawnCluster(t, 3)
	ctx := context.Background()

	cl, err := client.DialCluster([]string{children[0].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	oracle := make(map[uint64]uint64)
	var mu sync.Mutex
	for i := uint64(0); i < 2000; i++ {
		k := spread(i)
		if err := cl.Insert(ctx, k, i); err != nil {
			t.Fatal(err)
		}
		oracle[k] = i
	}

	// Traffic runs while the kill lands. Writers record only acked writes;
	// an error after the kill is expected (the dead range fails closed) and
	// ends that writer.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := spread(500_000 + uint64(w)*100_000 + i%2000)
				if err := cl.Insert(ctx, k, i); err != nil {
					return // dead range: fail-closed error, not a wrong answer
				}
				mu.Lock()
				oracle[k] = i
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)
	width := ^uint64(0)/3 + 1
	deadLo, deadHi := width, 2*width-1
	children[1].kill()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()

	// Dead range: errors, never hangs or stale answers.
	if _, _, err := cl.Get(opCtx, deadLo+5); err == nil {
		t.Fatal("Get on killed shard succeeded")
	}
	// Scans must fail closed, not return a truncated two-shard result.
	if _, _, err := cl.Scan(opCtx, 0, 0); err == nil {
		t.Fatal("cluster scan with a killed shard returned success")
	}
	// Every acked write on a surviving shard is still there, exact.
	mu.Lock()
	defer mu.Unlock()
	for k, want := range oracle {
		if k >= deadLo && k <= deadHi {
			continue
		}
		v, found, err := cl.Get(ctx, k)
		if err != nil || !found || v != want {
			t.Fatalf("surviving shard Get(%#x) = (%d, %v, %v), oracle %d", k, v, found, err, want)
		}
	}
}

// TestClusterProcKillOldOwnerMidHandover SIGKILLs the handover source while
// the bulk copy is running: the rebalance must fail (never silently
// "succeed"), ownership must never transfer, and the surviving shards must
// keep answering exactly.
func TestClusterProcKillOldOwnerMidHandover(t *testing.T) {
	if os.Getenv(clusterProcEnv) != "" {
		t.Skip("cluster child must not recurse into the parent test")
	}
	children := spawnCluster(t, 3)
	fresh := spawnShard(t, 1, 0) // owns nothing
	ctx := context.Background()

	cl, err := client.DialCluster([]string{children[0].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	oracle := make(map[uint64]uint64)
	for i := uint64(0); i < 30_000; i++ { // enough pages that the copy has duration
		k := spread(i)
		if err := cl.Insert(ctx, k, i); err != nil {
			t.Fatal(err)
		}
		oracle[k] = i
	}

	mid := cl.Map().Shards[1]
	src, err := client.Dial(children[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.HandoverStart(ctx, mid.Lo, mid.Hi, fresh.addr); err != nil {
		t.Fatalf("handover start: %v", err)
	}
	// Kill the old owner while the copy is in flight (state copying). If
	// the copy already finished, the kill still lands before any cutover —
	// the map is never advanced, so ownership must not move either way.
	p, err := src.HandoverStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("killing old owner in handover state %d (copied %d)", p.State, p.Copied)
	children[1].kill()
	src.Close()

	// The target must never have been granted ownership: no SetShardMap ran,
	// so it still owns nothing at epoch 0 or 1.
	fc, err := client.Dial(fresh.addr)
	if err != nil {
		t.Fatal(err)
	}
	info, err := fc.ShardInfo(ctx)
	fc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Lo <= info.Hi {
		t.Fatalf("target owns [%#x, %#x] after source died mid-handover", info.Lo, info.Hi)
	}

	// Surviving shards answer exactly; the dead range fails closed.
	opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, _, err := cl.Get(opCtx, mid.Lo+5); err == nil {
		t.Fatal("Get on killed source succeeded")
	}
	if _, _, err := cl.Scan(opCtx, 0, 0); err == nil {
		t.Fatal("scan with killed source returned success")
	}
	for i := uint64(0); i < 30_000; i += 131 {
		k := spread(i)
		if k >= mid.Lo && k <= mid.Hi {
			continue
		}
		v, found, err := cl.Get(ctx, k)
		if err != nil || !found || v != oracle[k] {
			t.Fatalf("surviving Get(%#x) = (%d, %v, %v), oracle %d", k, v, found, err, oracle[k])
		}
	}
}
