package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dytis/internal/cluster"
	"dytis/internal/kv"
	"dytis/internal/proto"
)

// conn is one client connection: a read loop (the serve goroutine itself,
// which also executes the index operations) feeding encoded responses to a
// write loop over the bounded out channel. See the package comment for the
// backpressure chain.
type conn struct {
	srv   *Server
	nc    netConn
	raddr string // remote address, for force-close logs
	out   chan []byte

	// Read-loop scratch, reused across requests so the steady state of a
	// connection allocates only the response frames it sends.
	readBuf []byte
	req     proto.Request
	resp    proto.Response
	kvBuf   []kv.KV
	shard   int

	// Negotiated protocol state. Written only by the read loop (at the HELLO
	// exchange, before any scan goroutine exists), read by the read loop and
	// by scan goroutines it starts afterwards, so plain fields suffice.
	ver     uint8
	feats   uint32
	nframes uint64 // frames decoded so far; HELLO is valid only as frame 1

	// Streaming-scan state (scan.go). scanStop is closed when the read loop
	// exits; every scan goroutine joins through scanWg before the out
	// channel closes, so a stream can always complete its pending send.
	scanMu   sync.Mutex
	scans    map[uint64]*scanStream // guarded-by: scanMu
	scanWg   sync.WaitGroup
	scanStop chan struct{}

	// queued tracks the bytes sitting in the out channel (enqueue adds,
	// write loop subtracts), feeding the out-queue peak metric that bounds a
	// streamed scan's server-side buffering.
	queued atomic.Int64
}

// netConn is the subset of net.Conn the conn uses (test seam).
type netConn interface {
	io.ReadWriteCloser
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// armReadDeadline sets the next read deadline: now+d normally, cleared
// when d is zero (so a stale per-frame deadline cannot reap an idling
// connection), and "now" once the server is draining, so the loop cannot
// re-arm past Shutdown's pulled deadline.
func (c *conn) armReadDeadline(d time.Duration) {
	if c.srv.Draining() {
		c.nc.SetReadDeadline(time.Now())
		return
	}
	if d > 0 {
		c.nc.SetReadDeadline(time.Now().Add(d))
	} else {
		c.nc.SetReadDeadline(time.Time{})
	}
}

func (c *conn) serve() {
	c.shard = int(connSerial.Add(1))
	c.out = make(chan []byte, c.srv.cfg.Pipeline)
	c.ver = proto.Version1
	c.scanStop = make(chan struct{})
	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)

	cfg := &c.srv.cfg
	br := bufio.NewReaderSize(c.nc, 32<<10)
	for {
		// Two deadline regimes per frame: a (long) idle deadline while
		// waiting for the next request to start, then a (short) per-frame
		// deadline once its header has arrived. A slow-loris peer that
		// trickles a frame byte by byte trips the second one and is reaped
		// without affecting any other connection.
		if cfg.IdleTimeout > 0 || cfg.ReadTimeout > 0 || c.srv.Draining() {
			c.armReadDeadline(cfg.IdleTimeout)
		}
		n, err := proto.ReadHeader(br)
		if err != nil {
			c.reportReadErr(err, "idle")
			break
		}
		if cfg.ReadTimeout > 0 {
			c.armReadDeadline(cfg.ReadTimeout)
		}
		body, buf, err := proto.ReadBody(br, n, c.readBuf)
		c.readBuf = buf
		if err != nil {
			c.reportReadErr(err, "frame")
			break
		}
		if c.feats&proto.FeatCRC != 0 {
			// FeatCRC negotiated: every frame carries a CRC32C trailer over
			// its length prefix and body. A mismatch means the stream has
			// carried corruption — answer best-effort with the (possibly
			// corrupt) id so a pipelined caller fails fast rather than
			// timing out, then quarantine the connection: nothing after a
			// corrupt frame can be trusted to be aligned.
			if err := proto.ReadTrailer(br, n, body); err != nil {
				if !errors.Is(err, proto.ErrChecksum) {
					c.reportReadErr(err, "frame")
					break
				}
				if m := cfg.Metrics; m != nil {
					m.frameChecksum()
				}
				c.srv.logf("server: conn %s: %v; quarantining connection", c.raddr, err)
				c.send(&proto.Response{
					ID: binary.BigEndian.Uint64(body), Op: proto.OpPing,
					Status: proto.StatusChecksum, Msg: "frame checksum mismatch",
				})
				break
			}
		}
		arrival := time.Now()
		if err := proto.DecodeRequest(body, &c.req); err != nil {
			// The frame was well-delimited but its body is malformed. Answer
			// with the request id if one was present, then drop the
			// connection: a peer that emits garbage cannot be assumed to
			// agree on stream alignment from here on.
			if m := cfg.Metrics; m != nil {
				m.protoError()
			}
			var id uint64
			if len(body) >= 8 {
				id = binary.BigEndian.Uint64(body)
			}
			c.send(&proto.Response{
				ID: id, Op: proto.OpPing, Status: proto.StatusBadRequest, Msg: err.Error(),
			})
			break
		}
		c.nframes++
		if !c.dispatch(arrival) {
			break
		}
	}
	// Exit order matters: stop the scan streams and join them before closing
	// the out channel (a stream blocked sending a chunk is absorbed because
	// the write loop keeps draining until the channel closes), then join the
	// writer so every queued response flushes before the socket closes.
	close(c.scanStop)
	c.scanWg.Wait()
	close(c.out)
	<-writerDone
	c.nc.Close()
}

// dispatch routes one decoded request: the v2 opcodes to the negotiation and
// scan-stream handlers, everything else to handle. It reports whether the
// connection should go on.
func (c *conn) dispatch(arrival time.Time) bool {
	cfg := &c.srv.cfg
	req := &c.req
	switch req.Op {
	case proto.OpHello, proto.OpScanStart, proto.OpScanCredit, proto.OpScanCancel,
		proto.OpShardInfo, proto.OpMapGet, proto.OpMapSet,
		proto.OpHandoverStart, proto.OpHandoverStatus,
		proto.OpHandoverResume, proto.OpHandoverAbort, proto.OpImportResume,
		proto.OpImportStart, proto.OpImportBatch, proto.OpImportEnd, proto.OpMirror:
		if cfg.DisableV2 {
			// Emulate a pre-v2 server byte for byte: before the handshake
			// existed these opcodes failed request decoding, which answered
			// StatusBadRequest with the decoder's message and dropped the
			// connection. A v2 client takes that as "speak plain v1".
			if m := cfg.Metrics; m != nil {
				m.protoError()
			}
			opb := byte(req.Op)
			if req.TimeoutMS != 0 {
				opb |= proto.FlagDeadline
			}
			if req.Epoch != 0 {
				opb |= proto.FlagEpoch
			}
			c.send(&proto.Response{
				ID: req.ID, Op: proto.OpPing, Status: proto.StatusBadRequest,
				Msg: fmt.Sprintf("proto: unknown opcode: %d", opb),
			})
			return false
		}
	}
	switch req.Op {
	case proto.OpShardInfo, proto.OpMapGet, proto.OpMapSet,
		proto.OpHandoverStart, proto.OpHandoverStatus,
		proto.OpHandoverResume, proto.OpHandoverAbort, proto.OpImportResume,
		proto.OpImportStart, proto.OpImportBatch, proto.OpImportEnd, proto.OpMirror:
		// Cluster opcodes need the feature negotiated, which a non-cluster
		// server never grants; a peer using them anyway is broken, so the
		// connection quarantines like any other feature violation.
		if cfg.Cluster == nil || c.feats&proto.FeatCluster == 0 {
			c.send(&proto.Response{
				ID: req.ID, Op: req.Op, Status: proto.StatusBadRequest,
				Msg: "cluster: feature not negotiated",
			})
			return false
		}
	}
	//dytis:opswitch requests group=serve
	switch req.Op {
	case proto.OpHello:
		return c.handleHello(arrival)
	case proto.OpScanStart:
		return c.handleScanStart(arrival)
	case proto.OpScanCredit:
		c.handleScanCredit()
		return true
	case proto.OpScanCancel:
		c.handleScanCancel()
		return true
	}
	return c.handle(arrival)
}

// handleHello performs the v2 feature negotiation. The reply is encoded and
// queued before the negotiated state takes effect, so the HELLO exchange
// itself always travels as plain v1 frames in both directions.
func (c *conn) handleHello(arrival time.Time) bool {
	req, resp := &c.req, &c.resp
	*resp = proto.Response{ID: req.ID, Op: proto.OpHello}
	if c.nframes != 1 {
		resp.Status = proto.StatusBadRequest
		resp.Msg = "hello: must be the first request on a connection"
		c.send(resp)
		return false
	}
	ver, feats := proto.Version1, uint32(0)
	if req.Ver >= proto.Version2 {
		ver = proto.Version2
		feats = req.Feats & proto.AllFeatures
		if c.srv.cfg.Cluster == nil {
			// A non-cluster server must not advertise the cluster opcode
			// family: pre-cluster peers depend on the exact grant
			// (compat tests pin it), and granting it would invite opcodes
			// the execute path cannot serve.
			feats &^= proto.FeatCluster
		}
	}
	resp.Ver, resp.Feats = ver, feats
	if m := c.srv.cfg.Metrics; m != nil {
		m.recordOp(proto.OpHello, c.shard, 1, time.Since(arrival))
	}
	ok := c.send(resp)
	c.ver, c.feats = ver, feats
	return ok
}

// reportReadErr books and logs one read-loop failure. Timeouts outside a
// drain are reaped connections (idle or slow-loris), which are counted and
// logged; drain deadlines and a departing peer are normal ends.
func (c *conn) reportReadErr(err error, stage string) {
	if err == io.EOF {
		return
	}
	if isTimeout(err) {
		if c.srv.Draining() {
			return // Shutdown pulled the deadline; normal end
		}
		if m := c.srv.cfg.Metrics; m != nil {
			m.connTimeout()
		}
		c.srv.logf("server: conn %s: %s read timed out; reaping", c.raddr, stage)
		return
	}
	if !clientGone(err) {
		c.srv.logf("server: conn read: %v", err)
	}
}

// handle executes c.req against the index, books the server-side latency,
// and queues the response; it reports whether the connection should go on.
// arrival is when the request's frame finished arriving, the reference
// point for its propagated deadline budget.
func (c *conn) handle(arrival time.Time) bool {
	cfg := &c.srv.cfg
	req, resp := &c.req, &c.resp
	*resp = proto.Response{
		ID: req.ID, Op: req.Op,
		Keys: resp.Keys[:0], Vals: resp.Vals[:0], Founds: resp.Founds[:0],
	}

	// budget is the request's propagated deadline, zero when none.
	var budget time.Duration
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	// Admission control: acquire an execution slot, waiting at most the
	// retry-after window — or the request's own remaining deadline budget,
	// whichever ends first — then shed instead of queueing unboundedly.
	// The shed status says why: StatusOverload ("back off and retry") when
	// the window ran out, StatusDeadlineExceeded when the caller's budget
	// did (nobody is waiting for that answer anymore).
	if g := c.srv.inflight; g != nil {
		select {
		case g <- struct{}{}:
		default:
			wait := cfg.RetryAfter
			overload := true
			if budget > 0 {
				if rem := budget - time.Since(arrival); rem < wait {
					wait, overload = rem, false
				}
			}
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case g <- struct{}{}:
					t.Stop()
					goto admitted
				case <-t.C:
				}
			}
			if !overload {
				return c.shedDeadline(req, resp)
			}
			if m := cfg.Metrics; m != nil {
				m.overload()
			}
			resp.Status = proto.StatusOverload
			resp.Msg = cfg.RetryAfter.String()
			// Typed hint for v2 peers; AppendResponseV only encodes it at
			// Version2, so the v1 wire stays byte-identical.
			resp.RetryAfterMS = uint32(cfg.RetryAfter.Milliseconds())
			return c.send(resp)
		}
	admitted:
		defer func() { <-g }()
	}

	// A request whose budget expired before execution is shed, not served:
	// its caller has already timed out, and answering late with real data
	// would only burn index work nobody can use.
	if budget > 0 && time.Since(arrival) > budget {
		return c.shedDeadline(req, resp)
	}

	t0 := time.Now()
	panicked := c.execute(req, resp)
	if m := cfg.Metrics; m != nil && !panicked {
		m.recordOp(req.Op, c.shard, batchSize(req), time.Since(t0))
	}
	ok := c.send(resp)
	if panicked {
		// The response (ERR) is queued; close this one connection. The
		// process, the index, and every other connection keep going.
		return false
	}
	return ok
}

// shedDeadline answers a request whose propagated deadline already expired.
func (c *conn) shedDeadline(req *proto.Request, resp *proto.Response) bool {
	if m := c.srv.cfg.Metrics; m != nil {
		m.deadlineShed()
	}
	resp.Status = proto.StatusDeadlineExceeded
	resp.Msg = "deadline budget expired before execution"
	return c.send(resp)
}

// execute runs one decoded request against the index, converting a panic
// anywhere below (index bug, corrupted state) into an ERR response for this
// request — the panic takes down one connection, never the process.
func (c *conn) execute(req *proto.Request, resp *proto.Response) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			if m := c.srv.cfg.Metrics; m != nil {
				m.panicRecovered()
			}
			c.srv.logf("server: panic serving %s from %s: %v\n%s", req.Op, c.raddr, r, debug.Stack())
			*resp = proto.Response{
				ID: req.ID, Op: req.Op, Status: proto.StatusErr, Msg: "internal error",
			}
		}
	}()
	idx := c.srv.cfg.Index
	node := c.srv.cfg.Cluster
	//dytis:opswitch requests group=serve
	switch req.Op {
	case proto.OpPing:
	case proto.OpGet:
		if node != nil {
			v, found, err := node.Get(req.Key)
			if err != nil {
				c.clusterErr(resp, err)
			} else {
				resp.Val, resp.Found = v, found
			}
		} else {
			resp.Val, resp.Found = idx.Get(req.Key)
		}
	case proto.OpInsert:
		if node != nil {
			if err := node.Insert(req.Key, req.Val); err != nil {
				c.clusterErr(resp, err)
			}
		} else {
			idx.Insert(req.Key, req.Val)
		}
	case proto.OpDelete:
		if node != nil {
			found, err := node.Delete(req.Key)
			if err != nil {
				c.clusterErr(resp, err)
			} else {
				resp.Found = found
			}
		} else {
			resp.Found = idx.Delete(req.Key)
		}
	case proto.OpScan:
		if node != nil {
			var err error
			c.kvBuf, _, err = node.Scan(req.Epoch, req.Key, int(req.Max), c.kvBuf[:0])
			if err != nil {
				c.clusterErr(resp, err)
				break
			}
		} else {
			c.kvBuf = idx.Scan(req.Key, int(req.Max), c.kvBuf[:0])
		}
		for _, p := range c.kvBuf {
			resp.Keys = append(resp.Keys, p.Key)
			resp.Vals = append(resp.Vals, p.Value)
		}
	case proto.OpGetBatch:
		if node != nil {
			var err error
			resp.Vals, resp.Founds, err = node.GetBatch(req.Keys, resp.Vals, resp.Founds)
			if err != nil {
				c.clusterErr(resp, err)
			}
		} else {
			resp.Vals, resp.Founds = idx.GetBatch(req.Keys, resp.Vals, resp.Founds)
		}
	case proto.OpInsertBatch:
		var err error
		if node != nil {
			err = node.InsertBatch(req.Keys, req.Vals)
		} else {
			err = idx.InsertBatch(req.Keys, req.Vals)
		}
		if err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpDeleteBatch:
		var err error
		if node != nil {
			resp.Founds, err = node.DeleteBatch(req.Keys, resp.Founds)
		} else {
			resp.Founds, err = idx.DeleteBatch(req.Keys, resp.Founds)
		}
		if err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpLen:
		resp.Val = uint64(idx.Len())

	// Cluster opcode family; dispatch admits these only on a cluster
	// server with FeatCluster negotiated, so node is non-nil here.
	case proto.OpShardInfo:
		resp.Lo, resp.Hi, resp.Epoch, resp.State = node.Info()
	case proto.OpMapGet:
		blob := node.MapBlob()
		if len(blob) == 0 {
			resp.Status, resp.Msg = proto.StatusErr, "cluster: no shard map installed"
		} else {
			resp.MapBlob = blob
		}
	case proto.OpMapSet:
		if err := node.SetMap(req.Lo, req.Hi, req.MapBlob); err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpHandoverStart:
		if err := node.StartHandover(req.Lo, req.Hi, req.Addr); err != nil {
			c.clusterErr(resp, err)
		} else if m := c.srv.cfg.Metrics; m != nil {
			m.handoverStarted()
		}
	case proto.OpHandoverStatus:
		info := node.HandoverStatus()
		resp.State, resp.Copied, resp.Mirrored = info.State, info.Copied, info.Mirrored
		resp.Retries, resp.Resumes, resp.Watermark = info.Retries, info.Resumes, info.Watermark
		resp.Lo, resp.Hi, resp.Addr = info.Lo, info.Hi, info.Target
	case proto.OpHandoverResume:
		if err := node.HandoverResume(); err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpHandoverAbort:
		if err := node.HandoverAbort(); err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpImportStart:
		if err := node.ImportStart(req.Lo, req.Hi); err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpImportResume:
		fresh, applied, err := node.ImportResume(req.Lo, req.Hi)
		if err != nil {
			c.clusterErr(resp, err)
		} else {
			resp.Fresh, resp.Applied = fresh, applied
		}
	case proto.OpImportBatch:
		applied, err := node.ImportBatch(req.Keys, req.Vals)
		if err != nil {
			c.clusterErr(resp, err)
		} else {
			resp.Applied = applied
		}
	case proto.OpImportEnd:
		if err := node.ImportEnd(req.Commit); err != nil {
			c.clusterErr(resp, err)
		}
	case proto.OpMirror:
		if err := node.MirrorApply(req.Del, req.Key, req.Val); err != nil {
			c.clusterErr(resp, err)
		}
	}
	return false
}

// clusterErr books a cluster-layer error into resp: an ownership (or epoch)
// miss becomes StatusWrongShard with the node's current map attached — the
// redirect a routing client refreshes from — and anything else is a plain
// StatusErr.
func (c *conn) clusterErr(resp *proto.Response, err error) {
	if errors.Is(err, cluster.ErrWrongShard) {
		if m := c.srv.cfg.Metrics; m != nil {
			m.wrongShard()
		}
		resp.Status, resp.Msg = proto.StatusWrongShard, err.Error()
		if node := c.srv.cfg.Cluster; node != nil {
			resp.MapBlob = node.MapBlob()
		}
		return
	}
	resp.Status, resp.Msg = proto.StatusErr, err.Error()
}

// batchSize is the operation count a request represents, for metrics.
func batchSize(req *proto.Request) int {
	switch req.Op {
	case proto.OpGetBatch, proto.OpInsertBatch, proto.OpDeleteBatch:
		return len(req.Keys)
	}
	return 1
}

// send encodes resp for the connection's negotiated version — sealing it
// with a CRC32C trailer when FeatCRC is on — and queues it on the out
// channel, blocking when the write loop is backed up (the read side of the
// backpressure chain). It is called by the read loop and by scan-stream
// goroutines; each caller passes its own Response.
func (c *conn) send(resp *proto.Response) bool {
	frame, err := proto.AppendResponseV(nil, resp, c.ver)
	if err != nil {
		// Only reachable if the index returned an over-limit result, which
		// the request validation rules out; treat as a connection-fatal bug.
		c.srv.logf("server: encode response: %v", err)
		return false
	}
	if c.feats&proto.FeatCRC != 0 {
		frame = proto.SealFrame(frame, 0)
	}
	if n := c.queued.Add(int64(len(frame))); c.srv.cfg.Metrics != nil {
		c.srv.cfg.Metrics.noteOutQueue(n)
	}
	c.out <- frame
	return true
}

// writeLoop drains the out channel into the socket through one buffered
// writer, flushing whenever the queue momentarily empties, so pipelined
// responses coalesce into large writes but the last response of a burst is
// never withheld. With a WriteTimeout configured, every socket write is
// armed with it, so a peer that stops reading cannot pin this goroutine
// past the deadline.
func (c *conn) writeLoop(done chan<- struct{}) {
	defer close(done)
	wt := c.srv.cfg.WriteTimeout
	bw := bufio.NewWriterSize(writeDeadlineWriter{c.nc, wt}, 32<<10)
	for frame := range c.out {
		if _, err := bw.Write(frame); err != nil {
			c.nc.Close() // unwedge the read loop too
			drainOut(c.out)
			return
		}
		c.queued.Add(-int64(len(frame)))
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				c.nc.Close()
				drainOut(c.out)
				return
			}
		}
	}
	bw.Flush()
}

// writeDeadlineWriter arms the connection's write deadline before every
// underlying write (bufio flushes included).
type writeDeadlineWriter struct {
	nc netConn
	d  time.Duration
}

func (w writeDeadlineWriter) Write(p []byte) (int, error) {
	if w.d > 0 {
		w.nc.SetWriteDeadline(time.Now().Add(w.d))
	}
	return w.nc.Write(p)
}

// drainOut keeps a failed writer from wedging the read loop on a full
// channel: consume until the read loop closes it.
func drainOut(out <-chan []byte) {
	for range out {
	}
}
