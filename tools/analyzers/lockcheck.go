package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCheck verifies the repository's lock discipline: struct fields
// annotated `// guarded-by: <mutex>` may only be read while the named
// sibling mutex is held (read- or write-locked) on the current path, and
// only written while it is write-locked.
//
// The analysis is deliberately optimistic (flow-lite), tuned to the
// codebase's idioms so that real violations surface without drowning in
// false positives:
//
//   - Branches merge by union, and the stronger lock mode wins, so the
//     pervasive `if e.conc { e.mu.Lock() }` pattern counts as acquired and
//     an unlock inside one branch does not clear the fact.
//   - `defer mu.Unlock()` is ignored: the lock is held for the rest of the
//     function body.
//   - A branch ending in return/break/continue/panic is excluded from the
//     merge.
//   - `s := nxt` copies nxt's lock facts to s (hand-over-hand iteration).
//   - Objects born on this path — `&T{...}` literals, or calls to
//     functions named new*/build*/make* returning a pointer — are exempt:
//     nobody else can see them yet.
//   - Function literals are analyzed at their position with the facts held
//     there (the codebase only uses synchronous closures); `go` statements
//     analyze the closure with no facts.
//
// Function annotations, written in doc comments:
//
//	//dytis:locked <path>.<mutex> [r|w]
//
// seeds the fact at entry (the caller holds that lock), and — when the
// path's root names the receiver or a parameter — doubles as a call-site
// contract: every caller inside the package must hold the corresponding
// lock on its own expression for that argument.
//
//	//dytis:locks <path>.<mutex> [r|w]
//	//dytis:unlocks <path>.<mutex>
//
// declare a call-site lock effect: calling the function acquires (releases)
// the named lock on the caller's expression for that receiver/parameter,
// exactly as if the caller had called Lock/Unlock itself. This is how
// helpers that wrap a mutex acquisition (e.g. a seqlock write-enter that
// bumps a version counter around mu.Lock) stay transparent to the analysis.
// A deferred call to a //dytis:unlocks function is ignored like a deferred
// Unlock.
//
//	//dytis:locksresult <mutex> [r|w]
//
// declares that the function returns a value with the named lock already
// held on it: `s := f(...)` seeds the fact `s.<mutex>` in the caller
// (resolve-and-lock helpers in hand-over-hand iteration).
//
//	//dytis:seqlocked
//
// marks a function as an optimistic seqlock reader: read-mode field checks
// and read-mode call contracts are suppressed inside it (its reads are made
// safe by version validation, not by holding the mutex). Write accesses are
// still enforced.
//
//	//dytis:nolockcheck
//
// skips the function entirely (single-threaded rebuild paths, test-only
// corruptors).
//
// _test.go files are skipped.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "check that guarded-by-annotated fields are accessed under their mutex",
	Run:  runLockCheck,
}

// lockMode is the strength of a held lock fact.
type lockMode byte

const (
	lockRead  lockMode = iota + 1 // RLock
	lockWrite                     // Lock
)

func (m lockMode) String() string {
	if m == lockWrite {
		return "w"
	}
	return "r"
}

// contract is one //dytis:locked annotation whose root names the receiver
// or a parameter, checked at call sites.
type contract struct {
	argIndex int // -1 = receiver, else parameter index
	rest     string
	mode     lockMode
}

// lockEffectAnn is one //dytis:locks or //dytis:unlocks annotation: calling
// the function acquires (releases) the lock on the caller's expression for
// the named receiver/parameter.
type lockEffectAnn struct {
	argIndex int // -1 = receiver, else parameter index
	rest     string
	mode     lockMode
	unlock   bool
}

// resultLock is one //dytis:locksresult annotation: the function's result
// comes back with the named lock held on it.
type resultLock struct {
	name string
	mode lockMode
}

// funcFacts is the parsed annotation set of one function.
type funcFacts struct {
	skip        bool
	seqlocked   bool
	seeds       map[string]lockMode // path -> mode, seeded at entry
	contracts   []contract
	effects     []lockEffectAnn
	resultLocks []resultLock
}

type lockChecker struct {
	pass    *Pass
	guarded map[*types.Var]string      // annotated field -> mutex field name
	facts   map[types.Object]funcFacts // function/method object -> annotations

	// curSeqlocked is set while checking a //dytis:seqlocked function:
	// read-mode field accesses and read-mode call contracts are suppressed.
	curSeqlocked bool
}

func runLockCheck(pass *Pass) error {
	c := &lockChecker{
		pass:    pass,
		guarded: map[*types.Var]string{},
		facts:   map[types.Object]funcFacts{},
	}
	c.collectGuards()
	c.collectAnnotations()
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// collectGuards finds `// guarded-by: <name>` comments on struct fields.
func (c *lockChecker) collectGuards() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardName(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.guarded[v] = guard
					}
				}
			}
			return true
		})
	}
}

func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			text := strings.TrimPrefix(cm.Text, "//")
			text = strings.TrimSpace(text)
			if rest, ok := strings.CutPrefix(text, "guarded-by:"); ok {
				rest = strings.TrimSpace(rest)
				if i := strings.IndexAny(rest, " \t;,"); i >= 0 {
					rest = rest[:i]
				}
				return rest
			}
		}
	}
	return ""
}

// collectAnnotations parses //dytis:locked and //dytis:nolockcheck doc
// comments on every function declaration.
func (c *lockChecker) collectAnnotations() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			obj := c.pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			ff := funcFacts{seeds: map[string]lockMode{}}
			for _, cm := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
				switch {
				case text == "dytis:nolockcheck":
					ff.skip = true
				case text == "dytis:seqlocked":
					ff.seqlocked = true
				case strings.HasPrefix(text, "dytis:locked "):
					spec := strings.TrimPrefix(text, "dytis:locked ")
					path, mode, ok := parseLockSpec(spec)
					if !ok {
						continue
					}
					if old, ok := ff.seeds[path]; !ok || mode > old {
						ff.seeds[path] = mode
					}
					root, rest, _ := strings.Cut(path, ".")
					if rest == "" {
						continue
					}
					if idx, ok := paramIndex(fd, root); ok {
						ff.contracts = append(ff.contracts, contract{argIndex: idx, rest: "." + rest, mode: mode})
					}
				case strings.HasPrefix(text, "dytis:locksresult "):
					spec := strings.TrimPrefix(text, "dytis:locksresult ")
					name, mode, ok := parseLockSpec(spec)
					if !ok {
						continue
					}
					ff.resultLocks = append(ff.resultLocks, resultLock{name: name, mode: mode})
				case strings.HasPrefix(text, "dytis:locks "), strings.HasPrefix(text, "dytis:unlocks "):
					unlock := strings.HasPrefix(text, "dytis:unlocks ")
					spec := strings.TrimPrefix(strings.TrimPrefix(text, "dytis:locks "), "dytis:unlocks ")
					path, mode, ok := parseLockSpec(spec)
					if !ok {
						continue
					}
					root, rest, _ := strings.Cut(path, ".")
					if rest == "" {
						continue
					}
					if idx, ok := paramIndex(fd, root); ok {
						ff.effects = append(ff.effects, lockEffectAnn{
							argIndex: idx, rest: "." + rest, mode: mode, unlock: unlock,
						})
					}
				}
			}
			c.facts[obj] = ff
		}
	}
}

// parseLockSpec parses "<path> [r|w]", defaulting to read mode.
func parseLockSpec(spec string) (string, lockMode, bool) {
	parts := strings.Fields(spec)
	if len(parts) == 0 {
		return "", 0, false
	}
	mode := lockRead
	if len(parts) > 1 && parts[1] == "w" {
		mode = lockWrite
	}
	return parts[0], mode, true
}

// paramIndex resolves an annotation root name to the receiver (-1) or a
// parameter index of fd.
func paramIndex(fd *ast.FuncDecl, root string) (int, bool) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		for _, n := range fd.Recv.List[0].Names {
			if n.Name == root {
				return -1, true
			}
		}
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, n := range field.Names {
			if n.Name == root {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// lockState is the per-path analysis state.
type lockState struct {
	facts map[string]lockMode
	owned map[types.Object]bool
}

func newLockState() *lockState {
	return &lockState{facts: map[string]lockMode{}, owned: map[types.Object]bool{}}
}

func (st *lockState) clone() *lockState {
	n := newLockState()
	for k, v := range st.facts {
		n.facts[k] = v
	}
	for k, v := range st.owned {
		n.owned[k] = v
	}
	return n
}

// merge unions other into st, keeping the stronger mode (optimistic).
func (st *lockState) merge(other *lockState) {
	for k, v := range other.facts {
		if v > st.facts[k] {
			st.facts[k] = v
		}
	}
	for k, v := range other.owned {
		if v {
			st.owned[k] = true
		}
	}
}

func (c *lockChecker) checkFunc(fd *ast.FuncDecl) {
	obj := c.pass.TypesInfo.Defs[fd.Name]
	ff := c.facts[obj]
	if ff.skip {
		return
	}
	st := newLockState()
	for path, mode := range ff.seeds {
		st.facts[path] = mode
	}
	prev := c.curSeqlocked
	c.curSeqlocked = ff.seqlocked
	c.block(fd.Body.List, st)
	c.curSeqlocked = prev
}

// block walks stmts sequentially, returning whether the path terminated
// (return / branch / panic).
func (c *lockChecker) block(stmts []ast.Stmt, st *lockState) bool {
	for _, s := range stmts {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *lockChecker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			c.expr(s.X, st)
			return true
		}
		c.expr(s.X, st)
	case *ast.AssignStmt:
		c.assign(s, st)
	case *ast.IncDecStmt:
		c.writeTarget(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// Ignore deferred unlocks (the lock stays held for the rest of the
		// body); analyze anything else for accesses without lock effects.
		if c.lockEffect(s.Call, st, false) {
			return false
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
	case *ast.GoStmt:
		// A spawned goroutine holds nothing.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(fl.Body.List, newLockState())
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
	case *ast.BlockStmt:
		return c.block(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		then := st.clone()
		thenDone := c.block(s.Body.List, then)
		if s.Else != nil {
			els := st.clone()
			elseDone := c.stmt(s.Else, els)
			switch {
			case thenDone && elseDone:
				return true
			case thenDone:
				*st = *els
			case elseDone:
				*st = *then
			default:
				st.merge(then)
				st.merge(els)
			}
		} else if !thenDone {
			st.merge(then)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.expr(s.Cond, st)
		}
		body := st.clone()
		if !c.block(s.Body.List, body) {
			if s.Post != nil {
				c.stmt(s.Post, body)
			}
			st.merge(body)
		}
	case *ast.RangeStmt:
		c.expr(s.X, st)
		body := st.clone()
		if !c.block(s.Body.List, body) {
			st.merge(body)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st)
		}
		c.caseClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.stmt(s.Assign, st)
		c.caseClauses(s.Body.List, st)
	case *ast.SelectStmt:
		c.caseClauses(s.Body.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	}
	return false
}

func (c *lockChecker) caseClauses(clauses []ast.Stmt, st *lockState) {
	merged := false
	out := newLockState()
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e, st)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.stmt(cl.Comm, st)
			}
			body = cl.Body
		}
		branch := st.clone()
		if !c.block(body, branch) {
			out.merge(branch)
			merged = true
		}
	}
	if merged {
		st.merge(out)
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// assign handles RHS reads, fresh-object births, fact aliasing, and LHS
// write accesses.
func (c *lockChecker) assign(s *ast.AssignStmt, st *lockState) {
	for _, r := range s.Rhs {
		c.expr(r, st)
	}
	// Alias: `s = nxt` copies nxt's facts and ownedness to s.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if lid, ok := s.Lhs[0].(*ast.Ident); ok && lid.Name != "_" {
			if rid, ok := s.Rhs[0].(*ast.Ident); ok {
				c.aliasFacts(st, lid.Name, rid.Name)
				if robj := c.pass.TypesInfo.Uses[rid]; robj != nil && st.owned[robj] {
					if lobj := c.identObj(lid); lobj != nil {
						st.owned[lobj] = true
					}
				}
			}
		}
	}
	// //dytis:locksresult: `s := f(...)` where f returns its result with a
	// lock held seeds that fact on s (after dropping any stale facts).
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if lid, ok := s.Lhs[0].(*ast.Ident); ok && lid.Name != "_" {
				if calleeObj, _ := c.calleeOf(call); calleeObj != nil {
					if ff, ok := c.facts[calleeObj]; ok && len(ff.resultLocks) > 0 {
						for path := range st.facts {
							if path == lid.Name || strings.HasPrefix(path, lid.Name+".") {
								delete(st.facts, path)
							}
						}
						for _, rl := range ff.resultLocks {
							st.facts[lid.Name+"."+rl.name] = rl.mode
						}
					}
				}
			}
		}
	}
	// Fresh objects: lhs bound to &T{...} or new*/build*/make* call results.
	if len(s.Lhs) >= 1 && len(s.Rhs) == 1 && isFreshExpr(s.Rhs[0], c.pass) {
		if lid, ok := s.Lhs[0].(*ast.Ident); ok && lid.Name != "_" {
			if obj := c.identObj(lid); obj != nil {
				st.owned[obj] = true
			}
		}
	}
	for _, l := range s.Lhs {
		if _, ok := l.(*ast.Ident); ok {
			continue // plain variable bind, not a guarded-field write
		}
		c.writeTarget(l, st)
	}
}

// identObj resolves an identifier on the LHS of an assignment (a Def for :=,
// a Use for =).
func (c *lockChecker) identObj(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Uses[id]
}

// aliasFacts copies every fact rooted at `from` to the same path rooted at
// `to`, after dropping stale facts rooted at `to`.
func (c *lockChecker) aliasFacts(st *lockState, to, from string) {
	for path := range st.facts {
		if path == to || strings.HasPrefix(path, to+".") {
			delete(st.facts, path)
		}
	}
	for path, mode := range st.facts {
		if path == from || strings.HasPrefix(path, from+".") {
			st.facts[to+strings.TrimPrefix(path, from)] = mode
		}
	}
}

// isFreshExpr reports whether e births an object unreachable by other
// goroutines: a &T{...} literal or a call to a new*/build*/make*-named
// function returning a pointer.
func isFreshExpr(e ast.Expr, pass *Pass) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		_, isLit := e.X.(*ast.CompositeLit)
		return e.Op.String() == "&" && isLit
	case *ast.CallExpr:
		var name string
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return false
		}
		lower := strings.ToLower(name)
		if !strings.HasPrefix(lower, "new") && !strings.HasPrefix(lower, "build") && !strings.HasPrefix(lower, "make") {
			return false
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return false
		}
		_, isPtr := tv.Type.Underlying().(*types.Pointer)
		return isPtr
	}
	return false
}

// writeTarget checks the guarded-field access implied by an assignment
// target, unwrapping indexes, stars, and parens.
func (c *lockChecker) writeTarget(e ast.Expr, st *lockState) {
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			c.expr(t.Index, st)
			e = t.X
			continue
		case *ast.StarExpr:
			e = t.X
			continue
		case *ast.ParenExpr:
			e = t.X
			continue
		case *ast.SelectorExpr:
			c.checkFieldAccess(t, st, lockWrite)
			c.expr(t.X, st)
			return
		default:
			c.expr(e, st)
			return
		}
	}
}

// expr walks e checking guarded reads, lock effects, closures, and
// call-site contracts.
func (c *lockChecker) expr(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if c.lockEffect(e, st, true) {
			return
		}
		c.checkContracts(e, st)
		c.applyCallEffects(e, st)
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			// A method value's base expression is still a read path.
			c.expr(sel.X, st)
			if c.isFieldSel(sel) {
				c.checkFieldAccess(sel, st, lockRead)
			}
		} else {
			c.expr(e.Fun, st)
		}
		for _, a := range e.Args {
			c.expr(a, st)
		}
	case *ast.SelectorExpr:
		c.checkFieldAccess(e, st, lockRead)
		c.expr(e.X, st)
	case *ast.FuncLit:
		// Synchronous closure: runs with the facts held here.
		c.block(e.Body.List, st.clone())
	case *ast.UnaryExpr:
		c.expr(e.X, st)
	case *ast.BinaryExpr:
		c.expr(e.X, st)
		c.expr(e.Y, st)
	case *ast.IndexExpr:
		c.expr(e.X, st)
		c.expr(e.Index, st)
	case *ast.SliceExpr:
		c.expr(e.X, st)
		c.expr(e.Low, st)
		c.expr(e.High, st)
		c.expr(e.Max, st)
	case *ast.StarExpr:
		c.expr(e.X, st)
	case *ast.ParenExpr:
		c.expr(e.X, st)
	case *ast.TypeAssertExpr:
		c.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kvp, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kvp.Value, st)
			} else {
				c.expr(el, st)
			}
		}
	}
}

// isFieldSel reports whether sel selects a struct field (not a method).
func (c *lockChecker) isFieldSel(sel *ast.SelectorExpr) bool {
	s, ok := c.pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// lockEffect applies Lock/RLock/Unlock/RUnlock calls on sync mutexes to st,
// reporting whether call was such a call. When apply is false the state is
// left untouched (deferred unlocks).
func (c *lockChecker) lockEffect(call *ast.CallExpr, st *lockState, apply bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	var mode lockMode
	unlock := false
	switch name {
	case "Lock":
		mode = lockWrite
	case "RLock":
		mode = lockRead
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return false
	}
	if !isSyncMutex(c.pass.TypesInfo.Types[sel.X].Type) {
		return false
	}
	path := renderPath(sel.X)
	if path == "" || !apply {
		return true
	}
	if unlock {
		delete(st.facts, path)
	} else if mode > st.facts[path] {
		st.facts[path] = mode
	}
	return true
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// calleeOf resolves a call's target object and, for method-value calls, the
// receiver expression.
func (c *lockChecker) calleeOf(call *ast.CallExpr) (types.Object, ast.Expr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[fun], nil
	case *ast.SelectorExpr:
		var recvExpr ast.Expr
		if s, ok := c.pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
			recvExpr = fun.X
		}
		return c.pass.TypesInfo.Uses[fun.Sel], recvExpr
	}
	return nil, nil
}

// applyCallEffects applies the callee's //dytis:locks and //dytis:unlocks
// annotations to the caller's state (deferred calls never reach here, so
// deferred unlock helpers are ignored like deferred Unlocks).
func (c *lockChecker) applyCallEffects(call *ast.CallExpr, st *lockState) {
	calleeObj, recvExpr := c.calleeOf(call)
	if calleeObj == nil {
		return
	}
	ff, ok := c.facts[calleeObj]
	if !ok {
		return
	}
	for _, ef := range ff.effects {
		var arg ast.Expr
		if ef.argIndex == -1 {
			arg = recvExpr
		} else if ef.argIndex < len(call.Args) {
			arg = call.Args[ef.argIndex]
		}
		if arg == nil {
			continue
		}
		base := renderPath(arg)
		if base == "" {
			continue
		}
		path := base + ef.rest
		if ef.unlock {
			delete(st.facts, path)
		} else if ef.mode > st.facts[path] {
			st.facts[path] = ef.mode
		}
	}
}

// checkContracts enforces //dytis:locked call-site contracts of the callee.
func (c *lockChecker) checkContracts(call *ast.CallExpr, st *lockState) {
	calleeObj, recvExpr := c.calleeOf(call)
	if calleeObj == nil {
		return
	}
	ff, ok := c.facts[calleeObj]
	if !ok {
		return
	}
	for _, ct := range ff.contracts {
		if c.curSeqlocked && ct.mode == lockRead {
			continue
		}
		var arg ast.Expr
		if ct.argIndex == -1 {
			arg = recvExpr
		} else if ct.argIndex < len(call.Args) {
			arg = call.Args[ct.argIndex]
		}
		if arg == nil {
			continue
		}
		base := renderPath(arg)
		if base == "" {
			continue
		}
		if obj := rootObj(c.pass, arg); obj != nil && st.owned[obj] {
			continue
		}
		path := base + ct.rest
		if st.facts[path] < ct.mode {
			verb := "holding"
			if ct.mode == lockWrite {
				verb = "write-holding"
			}
			c.pass.Reportf(call.Pos(), "call to %s requires %s %s", calleeObj.Name(), verb, path)
		}
	}
}

// checkFieldAccess reports a guarded field touched without its mutex.
func (c *lockChecker) checkFieldAccess(sel *ast.SelectorExpr, st *lockState, need lockMode) {
	if c.curSeqlocked && need == lockRead {
		return // optimistic reads are validated by the version counter
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, ok := c.guarded[field]
	if !ok {
		return
	}
	base := renderPath(sel.X)
	if base == "" {
		return // unrenderable receiver; give up rather than false-positive
	}
	if obj := rootObj(c.pass, sel.X); obj != nil && st.owned[obj] {
		return
	}
	path := base + "." + guard
	if st.facts[path] < need {
		if need == lockWrite {
			c.pass.Reportf(sel.Sel.Pos(), "write to %s.%s requires write-holding %s", base, field.Name(), path)
		} else {
			c.pass.Reportf(sel.Sel.Pos(), "read of %s.%s requires holding %s", base, field.Name(), path)
		}
	}
}

// renderPath renders an ident/selector chain as a dotted path, or "" if the
// expression is anything else.
func renderPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderPath(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return renderPath(e.X)
		}
	}
	return ""
}

// rootObj returns the types object of the leftmost identifier of e.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		default:
			return nil
		}
	}
}
