package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dytis/internal/cluster"
)

// healthBody is the /healthz response document. Status is "ok" while the
// server serves and "draining" once Shutdown began; the cluster fields
// appear only on shard servers.
type healthBody struct {
	Status string       `json:"status"`
	Epoch  uint64       `json:"epoch,omitempty"`
	Shard  *healthShard `json:"shard,omitempty"`
}

type healthShard struct {
	Lo string `json:"lo"`
	Hi string `json:"hi"`
}

// HealthHandler serves the readiness probe: HTTP 200 with a small JSON body
// while the server is accepting and serving, 503 once it drains — the same
// status contract the pre-cluster text endpoint had, so orchestration
// probes keep working unchanged. node may be nil (a non-cluster server),
// which omits the shard fields.
func HealthHandler(s *Server, node *cluster.Node) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := healthBody{Status: "ok"}
		code := http.StatusOK
		if !s.Ready() {
			body.Status, code = "draining", http.StatusServiceUnavailable
		}
		if node != nil {
			lo, hi, epoch, _ := node.Info()
			body.Epoch = epoch
			body.Shard = &healthShard{Lo: fmt.Sprintf("%#x", lo), Hi: fmt.Sprintf("%#x", hi)}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
	})
}
