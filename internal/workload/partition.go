package workload

// Partition splits an op stream by key range into n substreams, substream i
// receiving the ops whose keys fall in the i-th of n equal contiguous MSB
// ranges — the same partitioning a uniform cluster shard map applies
// (cluster.Uniform), so substream i is exactly the traffic shard i would
// see. Each op keeps its relative order within its substream. Unlike
// Stripe, the substreams are as skewed as the key distribution is: that is
// the point — cluster benchmarking wants per-shard load to mirror the
// distribution, not be rebalanced by the harness.
//
// n < 1 clamps to 1. The returned slices alias freshly allocated arrays,
// not ops.
func Partition(ops []Op, n int) [][]Op {
	if n < 1 {
		n = 1
	}
	width := ^uint64(0)/uint64(n) + 1
	out := make([][]Op, n)
	for _, op := range ops {
		i := n - 1
		if width != 0 {
			// width is 0 only when n == 1 (2^64 overflows); any key maps to
			// the single partition then.
			if j := int(op.Key / width); j < i {
				i = j
			}
		}
		out[i] = append(out[i], op)
	}
	return out
}
