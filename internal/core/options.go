// Package core implements DyTIS (Dynamic dataset Targeted Index Structure),
// the primary contribution of the EuroSys '23 paper. DyTIS is an ordered
// index built on the skeleton of Extendible Hashing: a static first level of
// 2^R EH tables selected by the R most significant key bits, and inside each
// EH a CCEH-style directory → segments → buckets hierarchy. Unlike a hash
// index, DyTIS uses the raw key (not a hashed pseudo-key) for placement and
// keeps every bucket sorted, so range scans work; skewed key distributions
// are flattened by per-segment piecewise-linear remapping functions that
// approximate the CDF of the segment's keys and are adjusted incrementally as
// keys arrive — no bulk-load training phase.
package core

// Defaults mirror §4.1 of the paper.
const (
	DefaultFirstLevelBits  = 9   // R: 2^9 first-level EH tables
	DefaultBucketEntries   = 128 // 2 KB bucket: 128 key/value pairs
	DefaultUtilThreshold   = 0.6 // U_t
	DefaultStartDepth      = 6   // L_start: depth at which remap/expansion begin
	DefaultSegLimitMult    = 2   // Limit_seg default multiplier
	DefaultAdaptiveMult    = 128 // Limit_seg for expansion-heavy (uniform-ish) EHs
	DefaultMaxSubRangeBits = 8   // at most 2^8 remapping sub-ranges per segment
	DefaultAdaptiveFrac    = 0.5 // expansion share that triggers the 128x limit
	DefaultBaseSegBuckets  = 64  // base segment size in buckets at L_start

	// maxDirDepth hard-stops directory doubling: past this global depth an
	// EH grows segments past Limit_seg instead. Legitimate directories stay
	// around a dozen levels even at paper scale; the guard protects against
	// clusters far narrower than the directory can resolve, whose one-sided
	// splits would otherwise double the directory unboundedly.
	maxDirDepth = 18
)

// Options configure a DyTIS index. The zero value selects all defaults.
type Options struct {
	// FirstLevelBits is R, the number of key MSBs that select the
	// first-level EH table. The first level has 2^R entries.
	FirstLevelBits int
	// BucketEntries is the number of key/value pairs per bucket
	// (the paper's B_size; 128 pairs = 2 KB).
	BucketEntries int
	// UtilThreshold is U_t, the segment utilization separating the
	// split/expansion path from the remapping path on bucket overflow.
	UtilThreshold float64
	// StartDepth is L_start: segments below this local depth use only the
	// basic Extendible-Hashing schemes (split, directory doubling).
	StartDepth int
	// BaseSegBuckets is the base segment size in buckets; the per-depth
	// limit is BaseSegBuckets*SegLimitMult, doubling per local-depth level
	// past StartDepth.
	BaseSegBuckets int
	// SegLimitMult is the base multiplier of the per-depth segment-size
	// limit (the paper's Limit_seg, default 2x).
	SegLimitMult int
	// AdaptiveMult replaces SegLimitMult for an EH whose observed
	// maintenance mix is expansion-heavy (the paper raises it to 128x at
	// local depth L_start+2).
	AdaptiveMult int
	// MaxSubRangeBits caps the number of remapping sub-ranges per segment
	// at 2^MaxSubRangeBits.
	MaxSubRangeBits int
	// Concurrent enables the two-level (EH + segment) reader/writer
	// locking scheme of §3.4. When false, DyTIS is the paper's
	// single-threaded no-lock variant and must not be shared across
	// goroutines.
	Concurrent bool

	// Observer, when non-nil, receives per-operation latencies and
	// structure-maintenance events. nil (the default) compiles the
	// instrumentation down to one branch per operation.
	Observer Observer

	// Ablation switches (not in the paper's interface; used by the
	// ablation benchmarks to quantify each mechanism of §3.3).

	// DisableRemap forces the split/doubling path on every overflow.
	DisableRemap bool
	// DisableExpansion forces directory doubling where expansion would run.
	DisableExpansion bool
	// DisableAdaptiveLimit pins Limit_seg to SegLimitMult.
	DisableAdaptiveLimit bool
	// DisableRefinement stops remapping from subdividing sub-ranges.
	DisableRefinement bool
	// DisableOptimisticReads forces Concurrent-mode Get back onto the §3.4
	// two-level locked read path, bypassing the seqlock-validated lock-free
	// probe. Used by the read-throughput benchmarks as the locked baseline.
	DisableOptimisticReads bool
}

// withDefaults returns a copy of o with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.FirstLevelBits <= 0 {
		o.FirstLevelBits = DefaultFirstLevelBits
	}
	if o.FirstLevelBits > 16 {
		o.FirstLevelBits = 16
	}
	if o.BucketEntries <= 0 {
		o.BucketEntries = DefaultBucketEntries
	}
	if o.BucketEntries > 1<<15 {
		o.BucketEntries = 1 << 15
	}
	if o.UtilThreshold <= 0 || o.UtilThreshold >= 1 {
		o.UtilThreshold = DefaultUtilThreshold
	}
	if o.StartDepth <= 0 {
		o.StartDepth = DefaultStartDepth
	}
	if o.BaseSegBuckets <= 0 {
		o.BaseSegBuckets = DefaultBaseSegBuckets
	}
	if o.SegLimitMult <= 0 {
		o.SegLimitMult = DefaultSegLimitMult
	}
	if o.AdaptiveMult <= 0 {
		o.AdaptiveMult = DefaultAdaptiveMult
	}
	if o.MaxSubRangeBits <= 0 {
		o.MaxSubRangeBits = DefaultMaxSubRangeBits
	}
	return o
}
