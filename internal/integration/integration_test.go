// Package integration runs cross-module tests: every index executing the
// full workload suite over every synthetic dataset, checked for exact result
// parity against a reference model — the end-to-end counterpart of the
// per-package unit tests.
package integration

import (
	"math/rand"
	"sort"
	"testing"

	"dytis/internal/bench"
	"dytis/internal/core"
	"dytis/internal/datasets"
	"dytis/internal/kv"
	"dytis/internal/workload"
)

func contenders() []bench.Factory {
	return []bench.Factory{
		bench.DyTIS(core.Options{FirstLevelBits: 4, BucketEntries: 16, StartDepth: 3}),
		bench.ALEX("ALEX"),
		bench.XIndex(false),
		bench.BTree(),
		bench.EH(),
		bench.CCEH(),
		bench.PGM(),
	}
}

// refModel is the trivially-correct comparison oracle.
type refModel struct {
	m map[uint64]uint64
}

func newRef() *refModel { return &refModel{m: map[uint64]uint64{}} }

func (r *refModel) apply(op workload.Op) {
	switch op.Type {
	case workload.OpInsert, workload.OpUpdate:
		r.m[op.Key] = op.Val
	case workload.OpRMW:
		r.m[op.Key] = r.m[op.Key] + op.Val
	}
}

func (r *refModel) sortedKeys() []uint64 {
	out := make([]uint64, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestWorkloadParityAcrossIndexes replays every workload kind over every
// Group-1 dataset on every index and requires the final state to match the
// reference exactly (point lookups for all, full ordered scans for the
// ordered indexes).
func TestWorkloadParityAcrossIndexes(t *testing.T) {
	for _, spec := range datasets.Group1 {
		keys := spec.Gen(6000, 7)
		for _, kind := range workload.Kinds {
			plan := workload.Build(workload.Config{
				Kind: kind, Keys: keys, Ops: 8000, Seed: 3,
			})
			ref := newRef()
			for _, k := range keys[:plan.PreloadCount] {
				ref.apply(workload.Op{Type: workload.OpInsert, Key: k, Val: k})
			}
			for _, op := range plan.Ops {
				ref.apply(op)
			}
			want := ref.sortedKeys()

			for _, f := range contenders() {
				if kind == workload.E && !f.Ordered {
					continue
				}
				inst := f.New()
				for _, k := range keys[:plan.PreloadCount] {
					inst.Insert(k, k)
				}
				var buf []kv.KV
				for _, op := range plan.Ops {
					bench.ExecOp(inst, op, &buf)
				}
				if inst.Len() != len(ref.m) {
					t.Fatalf("%s/%s/%s: Len=%d want %d",
						f.Name, spec.Name, kind, inst.Len(), len(ref.m))
				}
				for i := 0; i < len(want); i += 13 {
					k := want[i]
					v, ok := inst.Get(k)
					if !ok || v != ref.m[k] {
						t.Fatalf("%s/%s/%s: Get(%#x)=%d,%v want %d",
							f.Name, spec.Name, kind, k, v, ok, ref.m[k])
					}
				}
				if f.Ordered {
					got, _ := inst.Scan(0, len(want)+1, nil)
					if len(got) != len(want) {
						t.Fatalf("%s/%s/%s: scan %d want %d",
							f.Name, spec.Name, kind, len(got), len(want))
					}
					for i := range want {
						if got[i].Key != want[i] || got[i].Value != ref.m[want[i]] {
							t.Fatalf("%s/%s/%s: scan[%d]=%+v want {%d %d}",
								f.Name, spec.Name, kind, i, got[i], want[i], ref.m[want[i]])
						}
					}
				}
				inst.Close()
			}
		}
	}
}

// TestDeleteChurnParity drives interleaved insert/delete churn (not part of
// the YCSB mixes) through every index.
func TestDeleteChurnParity(t *testing.T) {
	keys := datasets.ReviewM.Gen(5000, 11)
	for _, f := range contenders() {
		rng := rand.New(rand.NewSource(5))
		inst := f.New()
		ref := map[uint64]uint64{}
		for op := 0; op < 40000; op++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64()
				inst.Insert(k, v)
				ref[k] = v
			case 2:
				_, in := ref[k]
				if inst.Delete(k) != in {
					t.Fatalf("%s: delete disagreement on %#x", f.Name, k)
				}
				delete(ref, k)
			}
		}
		if inst.Len() != len(ref) {
			t.Fatalf("%s: Len=%d want %d", f.Name, inst.Len(), len(ref))
		}
		for k, v := range ref {
			got, ok := inst.Get(k)
			if !ok || got != v {
				t.Fatalf("%s: Get(%#x)=%d,%v want %d", f.Name, k, got, ok, v)
			}
		}
		inst.Close()
	}
}

// TestScanWindowsAgreeAcrossOrderedIndexes loads identical data into every
// ordered index and checks that arbitrary scan windows agree pairwise.
func TestScanWindowsAgreeAcrossOrderedIndexes(t *testing.T) {
	keys := datasets.Taxi.Gen(8000, 13)
	var ordered []bench.Instance
	var names []string
	for _, f := range contenders() {
		if !f.Ordered {
			continue
		}
		inst := f.New()
		for _, k := range keys {
			inst.Insert(k, k^0xabc)
		}
		ordered = append(ordered, inst)
		names = append(names, f.Name)
	}
	defer func() {
		for _, inst := range ordered {
			inst.Close()
		}
	}()
	rng := rand.New(rand.NewSource(17))
	for q := 0; q < 200; q++ {
		start := keys[rng.Intn(len(keys))] - uint64(rng.Intn(1000))
		n := 1 + rng.Intn(200)
		base, _ := ordered[0].Scan(start, n, nil)
		for i := 1; i < len(ordered); i++ {
			got, _ := ordered[i].Scan(start, n, nil)
			if len(got) != len(base) {
				t.Fatalf("scan(%#x,%d): %s returned %d, %s returned %d",
					start, n, names[0], len(base), names[i], len(got))
			}
			for j := range base {
				if got[j] != base[j] {
					t.Fatalf("scan(%#x,%d)[%d]: %s=%+v %s=%+v",
						start, n, j, names[0], base[j], names[i], got[j])
				}
			}
		}
	}
}

// TestSegmentCapExhaustionRecovery is failure injection: a configuration
// with tiny segment limits must still absorb a hostile cluster through the
// doubling/force-rebalance escape paths.
func TestSegmentCapExhaustionRecovery(t *testing.T) {
	d := core.New(core.Options{
		FirstLevelBits: 2, BucketEntries: 8, StartDepth: 1,
		BaseSegBuckets: 2, SegLimitMult: 1, AdaptiveMult: 2,
	})
	// Narrow hostile cluster + a scattered backdrop.
	for i := uint64(0); i < 20000; i++ {
		d.Insert(1<<50|i, i)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		d.Insert(rng.Uint64(), 1)
	}
	if d.Len() == 0 {
		t.Fatal("no keys")
	}
	for i := uint64(0); i < 20000; i += 117 {
		if _, ok := d.Get(1<<50 | i); !ok {
			t.Fatalf("missing cluster key %d", i)
		}
	}
	got := d.Scan(1<<50, 20000, nil)
	if len(got) < 20000 {
		t.Fatalf("cluster scan found %d", len(got))
	}
}

// TestDatasetsAreDeterministicAcrossRuns pins the generator outputs the
// benchmarks depend on for reproducibility.
func TestDatasetsAreDeterministicAcrossRuns(t *testing.T) {
	for _, s := range datasets.Group1 {
		a := s.Gen(2000, 99)
		b := s.Gen(2000, 99)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d", s.Name, i)
			}
		}
	}
}
