// GeoKV: a concurrent geospatial key-value store, the map-dataset scenario
// (MM/ML) of the paper. Keys encode (latitude, longitude) on an interleaved
// grid so nearby places share key prefixes; writers load map regions in
// spatial bulks from multiple goroutines — exactly the "bulk insertion of
// similar keys" pattern §2.1 describes — while readers run concurrent
// bounding-box scans, using the Concurrent option's two-level locking
// (§3.4).
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"dytis"
)

// cellKey packs a lat/lon grid cell into a key: 22 bits of latitude band,
// 22 bits of longitude band, 20 bits of place ID. Scans over a latitude band
// sweep contiguous key ranges.
func cellKey(latBand, lonBand, placeID uint64) uint64 {
	return latBand<<42 | lonBand<<20 | placeID
}

func main() {
	idx := dytis.New(dytis.WithConcurrent())

	// Four loader goroutines, each streaming one continent's places
	// region-by-region (spatially clustered insertion order).
	regions := []struct {
		name         string
		latLo, latHi uint64
		lonLo, lonHi uint64
		places       int
	}{
		{"south-america", 100_000, 900_000, 500_000, 1_200_000, 300_000},
		{"africa", 1_200_000, 2_000_000, 1_800_000, 2_600_000, 400_000},
		{"europe", 2_600_000, 3_200_000, 1_700_000, 2_400_000, 250_000},
		{"oceania", 300_000, 800_000, 3_200_000, 4_000_000, 150_000},
	}
	var wg sync.WaitGroup
	var loaded atomic.Int64
	for w, r := range regions {
		wg.Add(1)
		go func(w int, r struct {
			name         string
			latLo, latHi uint64
			lonLo, lonHi uint64
			places       int
		}) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < r.places; i++ {
				lat := r.latLo + uint64(rng.Int63n(int64(r.latHi-r.latLo)))
				lon := r.lonLo + uint64(rng.Int63n(int64(r.lonHi-r.lonLo)))
				idx.Insert(cellKey(lat, lon, uint64(i)), uint64(w)<<32|uint64(i))
				loaded.Add(1)
			}
		}(w, r)
	}

	// A concurrent reader samples bounding-box queries while loads run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(99))
		for q := 0; q < 50; q++ {
			latBand := uint64(rng.Intn(3_000_000))
			lo := cellKey(latBand, 0, 0)
			hi := cellKey(latBand+10_000, 0, 0)
			n := 0
			idx.Range(lo, hi, func(k, v uint64) bool {
				n++
				return n < 10_000
			})
		}
	}()
	wg.Wait()
	<-done
	fmt.Printf("loaded %d places across %d regions\n", loaded.Load(), len(regions))
	fmt.Printf("index holds %d keys\n", idx.Len())

	// Bounding-box query: everything in a latitude band slice of Africa.
	lo := cellKey(1_500_000, 0, 0)
	hi := cellKey(1_501_000, 0, 0)
	n := 0
	idx.Range(lo, hi, func(k, v uint64) bool {
		n++
		return true
	})
	fmt.Printf("places in latitude band [1.5M, 1.5M+1000): %d\n", n)

	// Nearest-following place for a probe point (successor query).
	probe := cellKey(2_700_000, 2_000_000, 0)
	if hit := idx.Scan(probe, 1, nil); len(hit) == 1 {
		fmt.Printf("successor of probe: lat=%d lon=%d place=%d\n",
			hit[0].Key>>42, hit[0].Key>>20&(1<<22-1), hit[0].Key&(1<<20-1))
	}

	st := idx.Stats()
	fmt.Printf("structure: %d segments / %d buckets; %d splits, %d remaps, %d expansions\n",
		st.Segments, st.Buckets, st.Splits, st.Remaps, st.Expansions)
}
