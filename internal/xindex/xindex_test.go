package xindex

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"dytis/internal/kv"
)

func TestInsertGetSingleThread(t *testing.T) {
	x := New(false)
	const n = 50000
	for i := uint64(0); i < n; i++ {
		x.Insert(i, i*2)
	}
	if x.Len() != n {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := x.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d)=%d,%v", i, v, ok)
		}
	}
	if st := x.Stats(); st.Compactions == 0 {
		t.Fatalf("no compactions after %d inserts: %+v", n, st)
	}
}

func TestBulkLoadThenOps(t *testing.T) {
	var keys, vals []uint64
	for i := uint64(0); i < 100000; i++ {
		keys = append(keys, i*5)
		vals = append(vals, i)
	}
	x := New(false)
	x.BulkLoad(keys, vals)
	if x.Len() != len(keys) {
		t.Fatalf("Len=%d", x.Len())
	}
	for i := 0; i < len(keys); i += 17 {
		if v, ok := x.Get(keys[i]); !ok || v != vals[i] {
			t.Fatalf("Get(%d)", keys[i])
		}
	}
	// Keys below the first loaded key still route somewhere valid.
	x.Insert(2, 99)
	if v, ok := x.Get(2); !ok || v != 99 {
		t.Fatal("insert below min failed")
	}
	if st := x.Stats(); st.Groups < 10 {
		t.Fatalf("bulk load built too few groups: %+v", st)
	}
}

func TestUpdateInPlaceBothPlaces(t *testing.T) {
	x := New(false)
	var keys, vals []uint64
	for i := uint64(0); i < 1000; i++ {
		keys = append(keys, i*10)
		vals = append(vals, i)
	}
	x.BulkLoad(keys, vals) // key in main array
	x.Insert(50, 123)
	if v, _ := x.Get(50); v != 123 {
		t.Fatal("main-array update failed")
	}
	x.Insert(55, 7) // delta insert
	x.Insert(55, 8) // delta update
	if v, _ := x.Get(55); v != 8 {
		t.Fatal("delta update failed")
	}
	if x.Len() != 1001 {
		t.Fatalf("Len=%d", x.Len())
	}
}

func TestDeleteTombstonesAndCompaction(t *testing.T) {
	x := New(false)
	for i := uint64(0); i < 20000; i++ {
		x.Insert(i, i)
	}
	for i := uint64(0); i < 20000; i += 2 {
		if !x.Delete(i) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if x.Delete(0) {
		t.Fatal("double delete")
	}
	if x.Len() != 10000 {
		t.Fatalf("Len=%d", x.Len())
	}
	// Force more compactions over tombstoned groups.
	for i := uint64(100000); i < 120000; i++ {
		x.Insert(i, i)
	}
	for i := uint64(0); i < 20000; i++ {
		_, ok := x.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v", i, ok)
		}
	}
	// Deleted key can be reinserted.
	x.Insert(0, 42)
	if v, ok := x.Get(0); !ok || v != 42 {
		t.Fatal("reinsert after delete failed")
	}
}

func TestScanMergesDeltaAndMain(t *testing.T) {
	x := New(false)
	var keys, vals []uint64
	for i := uint64(0); i < 1000; i++ {
		keys = append(keys, i*10)
		vals = append(vals, i)
	}
	x.BulkLoad(keys, vals)
	// Odd keys go to deltas.
	for i := uint64(0); i < 100; i++ {
		x.Insert(i*10+5, i)
	}
	got := x.Scan(0, 150, nil)
	if len(got) != 150 {
		t.Fatalf("scan len=%d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key <= got[i-1].Key {
			t.Fatalf("not ascending at %d: %d after %d", i, got[i].Key, got[i-1].Key)
		}
	}
	// Both sources present.
	if got[0].Key != 0 || got[1].Key != 5 {
		t.Fatalf("merge wrong: %v %v", got[0], got[1])
	}
}

func TestScanSkipsTombstones(t *testing.T) {
	x := New(false)
	for i := uint64(0); i < 5000; i++ {
		x.Insert(i, i)
	}
	x.Delete(2)
	x.Delete(3)
	got := x.Scan(0, 5, nil)
	want := []uint64{0, 1, 4, 5, 6}
	for i, w := range want {
		if got[i].Key != w {
			t.Fatalf("scan[%d]=%d want %d", i, got[i].Key, w)
		}
	}
}

func TestGroupSplits(t *testing.T) {
	x := New(false)
	for i := uint64(0); i < uint64(maxGroup*4); i++ {
		x.Insert(i, i)
	}
	if st := x.Stats(); st.GroupSplits == 0 || st.Groups < 2 {
		t.Fatalf("groups never split: %+v", st)
	}
}

func TestQuickMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(false)
		ref := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			k := uint64(rng.Intn(3000)) * 7
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := rng.Uint64()
				x.Insert(k, v)
				ref[k] = v
			case 3:
				_, in := ref[k]
				if x.Delete(k) != in {
					return false
				}
				delete(ref, k)
			case 4:
				gv, gok := x.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			}
		}
		if x.Len() != len(ref) {
			return false
		}
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := x.Scan(0, len(ref)+1, nil)
		if len(got) != len(keys) {
			return false
		}
		for i, k := range keys {
			if got[i] != (kv.KV{Key: k, Value: ref[k]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	x := New(true)
	defer x.Close()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(w) << 32
			for i := 0; i < 5000; i++ {
				k := base + uint64(rng.Intn(10000))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					x.Insert(k, k)
				case 5, 6:
					x.Get(k)
				case 7:
					x.Delete(k)
				default:
					got := x.Scan(k, 20, nil)
					for j := 1; j < len(got); j++ {
						if got[j].Key <= got[j-1].Key {
							t.Errorf("concurrent scan not ascending")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Workers own disjoint ranges: every final write must be visible.
func TestConcurrentDisjointExact(t *testing.T) {
	x := New(true)
	defer x.Close()
	const workers = 6
	final := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			mine := map[uint64]uint64{}
			base := uint64(w) << 40
			for i := 0; i < 10000; i++ {
				k := base + uint64(rng.Intn(5000))
				if rng.Intn(6) == 0 {
					x.Delete(k)
					delete(mine, k)
				} else {
					v := rng.Uint64()
					x.Insert(k, v)
					mine[k] = v
				}
			}
			final[w] = mine
		}(w)
	}
	wg.Wait()
	total := 0
	for w := range final {
		total += len(final[w])
		for k, v := range final[w] {
			got, ok := x.Get(k)
			if !ok || got != v {
				t.Fatalf("worker %d key %#x: %d,%v want %d", w, k, got, ok, v)
			}
		}
	}
	if x.Len() != total {
		t.Fatalf("Len=%d want %d", x.Len(), total)
	}
}
