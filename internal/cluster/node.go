package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dytis/internal/kv"
)

// Index is the index surface a Node wraps — the same shape as
// server.Index (the package is declared here to avoid an import cycle:
// server imports cluster). It must be safe for concurrent use.
type Index interface {
	Get(key uint64) (uint64, bool)
	Insert(key, value uint64)
	Delete(key uint64) bool
	Scan(start uint64, max int, dst []kv.KV) []kv.KV
	GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool)
	InsertBatch(keys, vals []uint64) error
	DeleteBatch(keys []uint64, found []bool) ([]bool, error)
	Len() int
}

// Peer is the slice of a remote shard server a handover drives: the
// import session on the new owner plus the double-write mirror. The
// production implementation adapts client.Client (cmd/dytis-server); tests
// substitute fakes. Implementations must be safe for concurrent use — the
// bulk-copy goroutine and mirroring writers overlap.
type Peer interface {
	ImportStart(lo, hi uint64) error
	ImportBatch(keys, vals []uint64) (applied uint64, err error)
	ImportEnd(commit bool) error
	Mirror(del bool, key, val uint64) error
	Close() error
}

// PeerDialer opens a Peer to the shard server at addr.
type PeerDialer func(addr string) (Peer, error)

// ErrWrongShard marks an operation on a key (or epoch) this node does not
// own; the server answers it as StatusWrongShard with the current map
// attached. Match with errors.Is.
var ErrWrongShard = errors.New("cluster: wrong shard")

// Handover states, as carried in HandoverStatus/ShardInfo responses.
const (
	HandoverNone    uint8 = iota // no handover has run
	HandoverCopying              // bulk copy in progress, mirroring on
	HandoverCopied               // bulk copy complete, mirroring on, safe to cut over
	HandoverFailed               // copy or mirror failed; cutover is refused
	HandoverDone                 // cutover complete, range de-owned
)

func handoverStateName(s uint8) string {
	switch s {
	case HandoverNone:
		return "none"
	case HandoverCopying:
		return "copying"
	case HandoverCopied:
		return "copied"
	case HandoverFailed:
		return "failed"
	case HandoverDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", s)
}

// copyPage is the bulk-copy and scrub page size: big enough to amortize
// framing, small enough that one page never approaches frame limits.
const copyPage = 4096

// NodeConfig configures a Node.
type NodeConfig struct {
	Index Index
	// Lo, Hi is the initially owned range (inclusive). Lo > Hi means the
	// node starts owning nothing (a fresh node awaiting a handover).
	Lo, Hi uint64
	// Dial opens connections to handover targets. Required only on nodes
	// that originate handovers.
	Dial PeerDialer
	// Logf, when non-nil, receives one line per abnormal handover event.
	Logf func(format string, args ...any)
}

// Node is the per-server cluster brain: it wraps the local index with
// ownership enforcement, holds the node's view of the shard map, and runs
// both sides of live shard handover.
//
// Locking: mu guards the routing state (range, epoch, map, handover and
// import-session pointers). hmu serializes everything that must see a
// frozen handover/import state end to end: moving-range writes (apply +
// synchronous mirror), import-session operations, handover transitions,
// and map installs. Lock order is hmu before mu; mu is never held across
// a network call, hmu is (that synchronous mirror under hmu is exactly
// what makes double-writes ordered and cutover lossless).
type Node struct {
	idx  Index
	dial PeerDialer
	logf func(format string, args ...any)

	hmu sync.Mutex // see above; acquired before mu

	mu     sync.RWMutex
	lo, hi uint64 // owned range; lo > hi = owns nothing
	epoch  uint64 // current map epoch; 0 until a map is installed
	blob   []byte // current encoded map; replaced wholesale, never mutated
	ho     *handover
	imp    *importSession
}

type handover struct {
	lo, hi     uint64
	addr       string
	peer       Peer
	state      uint8 // guarded by the node's mu
	copied     atomic.Uint64
	mirrored   atomic.Uint64
	cancelOnce sync.Once
	cancel     chan struct{}
}

func (h *handover) covers(key uint64) bool { return key >= h.lo && key <= h.hi }

// importSession is the target side of a handover: bulk pages apply
// insert-if-absent, and tombstones remember mirrored deletes so a late
// bulk page cannot resurrect a key deleted during the copy.
type importSession struct {
	lo, hi  uint64
	applied uint64
	tombs   map[uint64]struct{}
}

// NewNode builds a node owning [cfg.Lo, cfg.Hi].
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Index == nil {
		return nil, errors.New("cluster: NodeConfig.Index is required")
	}
	n := &Node{idx: cfg.Index, dial: cfg.Dial, logf: cfg.Logf, lo: cfg.Lo, hi: cfg.Hi}
	return n, nil
}

func (n *Node) logErr(format string, args ...any) {
	if n.logf != nil {
		n.logf(format, args...)
	}
}

// ownsLocked reports whether key is in the owned range. Callers hold mu.
func (n *Node) ownsLocked(key uint64) bool { return key >= n.lo && key <= n.hi }

func (n *Node) wrongShardLocked(key uint64) error {
	return fmt.Errorf("%w: key %#x outside owned [%#x, %#x] at epoch %d", ErrWrongShard, key, n.lo, n.hi, n.epoch)
}

// --- data path --------------------------------------------------------------

// Get serves a point read, held under mu so a concurrent cutover's scrub
// cannot interleave and serve a half-removed key.
func (n *Node) Get(key uint64) (uint64, bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.ownsLocked(key) {
		return 0, false, n.wrongShardLocked(key)
	}
	v, ok := n.idx.Get(key)
	return v, ok, nil
}

// Insert applies a write. Writes inside a live handover's moving range
// take the slow path: serialized under hmu, applied locally, then
// synchronously mirrored to the new owner before the ack — the invariant
// that makes cutover lossless.
func (n *Node) Insert(key, val uint64) error {
	n.mu.RLock()
	if !n.ownsLocked(key) {
		err := n.wrongShardLocked(key)
		n.mu.RUnlock()
		return err
	}
	if ho := n.ho; ho != nil && ho.covers(key) && (ho.state == HandoverCopying || ho.state == HandoverCopied) {
		n.mu.RUnlock()
		_, err := n.mirroredWrite(false, key, val)
		return err
	}
	// Holding mu across the apply pins the ownership check: SetMap (which
	// takes mu exclusively) cannot de-own and scrub between check and write,
	// so an acked write can never land in a range another node now owns.
	n.idx.Insert(key, val)
	n.mu.RUnlock()
	return nil
}

// Delete applies a delete; same slow-path rules as Insert.
func (n *Node) Delete(key uint64) (bool, error) {
	n.mu.RLock()
	if !n.ownsLocked(key) {
		err := n.wrongShardLocked(key)
		n.mu.RUnlock()
		return false, err
	}
	if ho := n.ho; ho != nil && ho.covers(key) && (ho.state == HandoverCopying || ho.state == HandoverCopied) {
		n.mu.RUnlock()
		return n.mirroredWrite(true, key, 0)
	}
	found := n.idx.Delete(key)
	n.mu.RUnlock()
	return found, nil
}

// mirroredWrite is the moving-range slow path: one write applied locally
// and mirrored to the handover target before it is acknowledged. hmu
// serializes these end to end, so mirrors arrive at the target in apply
// order — concurrent same-key writes cannot invert on the wire.
func (n *Node) mirroredWrite(del bool, key, val uint64) (bool, error) {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.RLock()
	if !n.ownsLocked(key) {
		err := n.wrongShardLocked(key)
		n.mu.RUnlock()
		return false, err
	}
	ho := n.ho
	mirror := ho != nil && ho.covers(key) && (ho.state == HandoverCopying || ho.state == HandoverCopied)
	n.mu.RUnlock()
	var found bool
	if del {
		found = n.idx.Delete(key)
	} else {
		n.idx.Insert(key, val)
	}
	if !mirror {
		return found, nil
	}
	if err := ho.peer.Mirror(del, key, val); err != nil {
		// The local apply stands and the write is still acknowledged: failing
		// the handover here guarantees this map can never cut the range over
		// (SetMap refuses to de-own anything not covered by a Copied
		// handover), so the unmirrored write cannot be lost.
		n.failHandoverLocked(ho, fmt.Errorf("mirror to %s: %w", ho.addr, err))
		return found, nil
	}
	ho.mirrored.Add(1)
	return found, nil
}

// Scan serves one clipped page of the owned range starting at start. done
// reports that the owned range is exhausted. epoch, when nonzero, must
// match the node's current map epoch — a streaming scan spans many pages,
// and a cutover between pages would otherwise silently truncate it.
func (n *Node) Scan(epoch, start uint64, max int, dst []kv.KV) (_ []kv.KV, done bool, _ error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if epoch != 0 && n.epoch != 0 && epoch != n.epoch {
		return dst[:0], false, fmt.Errorf("%w: scan epoch %d, node at %d", ErrWrongShard, epoch, n.epoch)
	}
	if n.lo > n.hi || start > n.hi {
		return dst[:0], true, nil
	}
	if start < n.lo {
		start = n.lo
	}
	dst = n.idx.Scan(start, max, dst[:0])
	for i, p := range dst {
		if p.Key > n.hi {
			dst = dst[:i]
			break
		}
	}
	done = len(dst) < max || (len(dst) > 0 && dst[len(dst)-1].Key >= n.hi)
	return dst, done, nil
}

// GetBatch serves a batched read; every key must be owned (the routing
// client splits batches per shard, so a stray key means a stale map and
// the whole batch redirects).
func (n *Node) GetBatch(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, k := range keys {
		if !n.ownsLocked(k) {
			return vals, found, n.wrongShardLocked(k)
		}
	}
	vals, found = n.idx.GetBatch(keys, vals, found)
	return vals, found, nil
}

// InsertBatch applies a batched write, falling to the serialized mirror
// path when any key is inside a live handover's moving range.
func (n *Node) InsertBatch(keys, vals []uint64) error {
	n.mu.RLock()
	slow := false
	for _, k := range keys {
		if !n.ownsLocked(k) {
			err := n.wrongShardLocked(k)
			n.mu.RUnlock()
			return err
		}
		if ho := n.ho; ho != nil && ho.covers(k) && (ho.state == HandoverCopying || ho.state == HandoverCopied) {
			slow = true
		}
	}
	if !slow {
		err := n.idx.InsertBatch(keys, vals)
		n.mu.RUnlock()
		return err
	}
	n.mu.RUnlock()
	for i, k := range keys {
		if _, err := n.mirroredWrite(false, k, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// DeleteBatch applies a batched delete; same slow-path rules as
// InsertBatch.
func (n *Node) DeleteBatch(keys []uint64, found []bool) ([]bool, error) {
	n.mu.RLock()
	slow := false
	for _, k := range keys {
		if !n.ownsLocked(k) {
			err := n.wrongShardLocked(k)
			n.mu.RUnlock()
			return found, err
		}
		if ho := n.ho; ho != nil && ho.covers(k) && (ho.state == HandoverCopying || ho.state == HandoverCopied) {
			slow = true
		}
	}
	if !slow {
		var err error
		found, err = n.idx.DeleteBatch(keys, found)
		n.mu.RUnlock()
		return found, err
	}
	n.mu.RUnlock()
	found = found[:0]
	for _, k := range keys {
		f, err := n.mirroredWrite(true, k, 0)
		if err != nil {
			return found, err
		}
		found = append(found, f)
	}
	return found, nil
}

// --- map management ---------------------------------------------------------

// Info returns the owned range, map epoch, and handover state.
func (n *Node) Info() (lo, hi, epoch uint64, state uint8) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	state = HandoverNone
	if n.ho != nil {
		state = n.ho.state
	}
	return n.lo, n.hi, n.epoch, state
}

// MapBlob returns the node's current encoded map (nil before any map is
// installed). The slice is never mutated after install, so callers may
// retain it.
func (n *Node) MapBlob() []byte {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blob
}

// SetMap installs an encoded shard map and adjusts the owned range to
// [selfLo, selfHi] (selfLo > selfHi = owns nothing). The epoch must move
// strictly forward (re-installing the identical blob is an idempotent
// no-op). De-owning any key is only permitted when a handover in state
// HandoverCopied covers the de-owned region — that is the cutover, which
// this call finalizes: the import session commits on the target, the
// peer closes, and the de-owned region is scrubbed from the local index.
func (n *Node) SetMap(selfLo, selfHi uint64, blob []byte) error {
	m, err := DecodeMap(blob)
	if err != nil {
		return err
	}
	if selfLo <= selfHi {
		// The declared self range must be exactly one shard of the map:
		// ownership and routing must agree or every client would loop.
		ok := false
		for _, s := range m.Shards {
			if s.Lo == selfLo && s.Hi == selfHi {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("cluster: self range [%#x, %#x] is not a shard of the map", selfLo, selfHi)
		}
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	if m.Epoch < n.epoch {
		cur := n.epoch
		n.mu.Unlock()
		return fmt.Errorf("cluster: map epoch %d older than current %d", m.Epoch, cur)
	}
	if m.Epoch == n.epoch && n.epoch != 0 {
		same := string(blob) == string(n.blob) && selfLo == n.lo && selfHi == n.hi
		n.mu.Unlock()
		if same {
			return nil
		}
		return fmt.Errorf("cluster: conflicting map at same epoch %d", m.Epoch)
	}
	deowned := subtractRange(n.lo, n.hi, selfLo, selfHi)
	var finalize *handover
	if len(deowned) > 0 {
		ho := n.ho
		for _, r := range deowned {
			if ho == nil || ho.state != HandoverCopied || r.lo < ho.lo || r.hi > ho.hi {
				n.mu.Unlock()
				return fmt.Errorf("cluster: map de-owns [%#x, %#x] with no completed handover covering it (state %s)",
					r.lo, r.hi, handoverStateName(hoState(ho)))
			}
		}
		ho.state = HandoverDone
		finalize = ho
	}
	// A session for a range the new map gives us commits implicitly: the
	// source finalizes with an explicit ImportEnd too, but adopting here
	// makes the cutover robust to the source dying right after our install.
	if imp := n.imp; imp != nil && selfLo <= selfHi && imp.lo >= selfLo && imp.hi <= selfHi {
		n.imp = nil
	}
	n.lo, n.hi, n.epoch, n.blob = selfLo, selfHi, m.Epoch, blob
	n.mu.Unlock()

	if finalize != nil {
		if err := finalize.peer.ImportEnd(true); err != nil {
			n.logErr("cluster: import-end commit to %s: %v", finalize.addr, err)
		}
		if err := finalize.peer.Close(); err != nil {
			n.logErr("cluster: closing peer %s: %v", finalize.addr, err)
		}
	}
	// Scrub de-owned keys (still under hmu, after mu released: reads and
	// writes of the region already answer WrongShard, so order is free).
	for _, r := range deowned {
		n.scrub(r.lo, r.hi)
	}
	return nil
}

func hoState(ho *handover) uint8 {
	if ho == nil {
		return HandoverNone
	}
	return ho.state
}

type keyRange struct{ lo, hi uint64 }

// subtractRange returns old minus new as up to two inclusive ranges.
// An empty old (lo > hi) yields nothing; an empty new de-owns all of old.
func subtractRange(oldLo, oldHi, newLo, newHi uint64) []keyRange {
	if oldLo > oldHi {
		return nil
	}
	if newLo > newHi {
		return []keyRange{{oldLo, oldHi}}
	}
	var out []keyRange
	if newLo > oldLo {
		hi := oldHi
		if newLo-1 < hi {
			hi = newLo - 1
		}
		out = append(out, keyRange{oldLo, hi})
	}
	if newHi < oldHi {
		lo := oldLo
		if newHi+1 > lo {
			lo = newHi + 1
		}
		out = append(out, keyRange{lo, oldHi})
	}
	return out
}

// scrub deletes every key in [lo, hi] from the local index, paging via
// Scan. Called under hmu with the region already de-owned.
func (n *Node) scrub(lo, hi uint64) {
	buf := make([]kv.KV, 0, copyPage)
	next := lo
	for {
		buf = n.idx.Scan(next, copyPage, buf[:0])
		if len(buf) == 0 {
			return
		}
		for _, p := range buf {
			if p.Key > hi {
				return
			}
			n.idx.Delete(p.Key)
		}
		last := buf[len(buf)-1].Key
		if len(buf) < copyPage || last >= hi || last == ^uint64(0) {
			return
		}
		next = last + 1
	}
}

// --- handover: source side --------------------------------------------------

// StartHandover begins migrating the owned subrange [lo, hi] to the shard
// server at addr: it opens an import session there, starts mirroring
// moving-range writes, and kicks off the bulk copy. Progress is polled
// with HandoverStatus; cutover happens when a new map de-owns the range
// (SetMap).
func (n *Node) StartHandover(lo, hi uint64, addr string) error {
	if lo > hi {
		return fmt.Errorf("cluster: handover range inverted [%#x, %#x]", lo, hi)
	}
	if n.dial == nil {
		return errors.New("cluster: node has no peer dialer")
	}
	n.mu.RLock()
	err := n.checkHandoverLocked(lo, hi)
	n.mu.RUnlock()
	if err != nil {
		return err
	}
	peer, err := n.dial(addr)
	if err != nil {
		return fmt.Errorf("cluster: dialing handover target %s: %w", addr, err)
	}
	if err := peer.ImportStart(lo, hi); err != nil {
		peer.Close()
		return fmt.Errorf("cluster: opening import session on %s: %w", addr, err)
	}
	ho := &handover{lo: lo, hi: hi, addr: addr, peer: peer, state: HandoverCopying, cancel: make(chan struct{})}
	n.hmu.Lock()
	n.mu.Lock()
	// Re-check under the lock: a map install may have raced the dial.
	if err := n.checkHandoverLocked(lo, hi); err != nil {
		n.mu.Unlock()
		n.hmu.Unlock()
		peer.ImportEnd(false)
		peer.Close()
		return err
	}
	n.ho = ho
	n.mu.Unlock()
	n.hmu.Unlock()
	go n.runCopy(ho)
	return nil
}

// checkHandoverLocked validates that [lo, hi] is fully owned and no
// handover is live. Callers hold mu.
func (n *Node) checkHandoverLocked(lo, hi uint64) error {
	if !n.ownsLocked(lo) || !n.ownsLocked(hi) {
		return fmt.Errorf("cluster: handover range [%#x, %#x] not fully owned ([%#x, %#x])", lo, hi, n.lo, n.hi)
	}
	if ho := n.ho; ho != nil && (ho.state == HandoverCopying || ho.state == HandoverCopied) {
		return fmt.Errorf("cluster: handover of [%#x, %#x] already %s", ho.lo, ho.hi, handoverStateName(ho.state))
	}
	return nil
}

// HandoverStatus reports the live (or last) handover's progress.
func (n *Node) HandoverStatus() (state uint8, copied, mirrored uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.ho == nil {
		return HandoverNone, 0, 0
	}
	return n.ho.state, n.ho.copied.Load(), n.ho.mirrored.Load()
}

// runCopy is the bulk-copy goroutine: it pages the moving range out of the
// local index and streams it to the target's import session. Writes that
// land mid-copy are covered by the mirror, and the target's
// insert-if-absent + tombstones make copy/mirror interleavings converge
// (see importSession).
func (n *Node) runCopy(ho *handover) {
	buf := make([]kv.KV, 0, copyPage)
	keys := make([]uint64, 0, copyPage)
	vals := make([]uint64, 0, copyPage)
	next := ho.lo
	for {
		select {
		case <-ho.cancel:
			return
		default:
		}
		buf = n.idx.Scan(next, copyPage, buf[:0])
		keys, vals = keys[:0], vals[:0]
		for _, p := range buf {
			if p.Key > ho.hi {
				break
			}
			keys = append(keys, p.Key)
			vals = append(vals, p.Value)
		}
		if len(keys) > 0 {
			if _, err := ho.peer.ImportBatch(keys, vals); err != nil {
				n.failHandover(ho, fmt.Errorf("bulk copy to %s: %w", ho.addr, err))
				return
			}
			ho.copied.Add(uint64(len(keys)))
		}
		done := len(buf) < copyPage
		if !done {
			last := buf[len(buf)-1].Key
			if last >= ho.hi || last == ^uint64(0) {
				done = true
			} else {
				next = last + 1
			}
		}
		if done {
			break
		}
	}
	n.hmu.Lock()
	n.mu.Lock()
	if ho.state == HandoverCopying {
		ho.state = HandoverCopied
	}
	n.mu.Unlock()
	n.hmu.Unlock()
}

// failHandover marks ho failed and tears down its target session.
func (n *Node) failHandover(ho *handover, cause error) {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.failHandoverLocked(ho, cause)
}

// failHandoverLocked is failHandover for callers already holding hmu.
func (n *Node) failHandoverLocked(ho *handover, cause error) {
	n.mu.Lock()
	if ho.state != HandoverCopying && ho.state != HandoverCopied {
		n.mu.Unlock()
		return
	}
	ho.state = HandoverFailed
	n.mu.Unlock()
	n.logErr("cluster: handover of [%#x, %#x] failed: %v", ho.lo, ho.hi, cause)
	// Best effort: tell the target to scrub the partial import.
	if err := ho.peer.ImportEnd(false); err != nil {
		n.logErr("cluster: import-end abort to %s: %v", ho.addr, err)
	}
	if err := ho.peer.Close(); err != nil {
		n.logErr("cluster: closing peer %s: %v", ho.addr, err)
	}
}

// Close cancels any running copy and tears down the handover peer.
func (n *Node) Close() error {
	n.mu.Lock()
	ho := n.ho
	n.mu.Unlock()
	if ho != nil {
		ho.cancelOnce.Do(func() { close(ho.cancel) })
		n.failHandover(ho, errors.New("node closing"))
	}
	return nil
}

// --- handover: target side --------------------------------------------------

// ImportStart opens an import session for [lo, hi], which must be disjoint
// from the owned range (a handover moves keys this node does not have).
func (n *Node) ImportStart(lo, hi uint64) error {
	if lo > hi {
		return fmt.Errorf("cluster: import range inverted [%#x, %#x]", lo, hi)
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.imp != nil {
		return fmt.Errorf("cluster: import of [%#x, %#x] already in progress", n.imp.lo, n.imp.hi)
	}
	if n.lo <= n.hi && lo <= n.hi && hi >= n.lo {
		return fmt.Errorf("cluster: import range [%#x, %#x] overlaps owned [%#x, %#x]", lo, hi, n.lo, n.hi)
	}
	n.imp = &importSession{lo: lo, hi: hi, tombs: make(map[uint64]struct{})}
	return nil
}

// ImportBatch applies one bulk page: insert-if-absent, skipping
// tombstoned keys, so pages racing mirrored writes can never clobber a
// newer value or resurrect a deleted key.
func (n *Node) ImportBatch(keys, vals []uint64) (uint64, error) {
	if len(keys) != len(vals) {
		return 0, fmt.Errorf("cluster: import batch keys/vals length mismatch (%d vs %d)", len(keys), len(vals))
	}
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.RLock()
	imp := n.imp
	n.mu.RUnlock()
	if imp == nil {
		return 0, errors.New("cluster: no import session")
	}
	var applied uint64
	for i, k := range keys {
		if k < imp.lo || k > imp.hi {
			return applied, fmt.Errorf("cluster: import key %#x outside session [%#x, %#x]", k, imp.lo, imp.hi)
		}
		if _, dead := imp.tombs[k]; dead {
			continue
		}
		if _, ok := n.idx.Get(k); ok {
			continue
		}
		n.idx.Insert(k, vals[i])
		applied++
	}
	imp.applied += applied
	return applied, nil
}

// ImportEnd closes the import session. commit keeps the imported data
// (the range is about to be owned via SetMap); abort scrubs it. A missing
// session is a no-op: SetMap may already have adopted it.
func (n *Node) ImportEnd(commit bool) error {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.Lock()
	imp := n.imp
	n.imp = nil
	n.mu.Unlock()
	if imp == nil {
		return nil
	}
	if !commit {
		n.scrub(imp.lo, imp.hi)
	}
	return nil
}

// MirrorApply applies one double-written op from a handover source: into
// the import session when one covers the key (maintaining tombstones), or
// directly when this node already owns the key (a mirror that raced the
// cutover). Anything else is a protocol error.
func (n *Node) MirrorApply(del bool, key, val uint64) error {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.mu.RLock()
	imp := n.imp
	owned := n.ownsLocked(key)
	n.mu.RUnlock()
	if imp != nil && key >= imp.lo && key <= imp.hi {
		if del {
			n.idx.Delete(key)
			imp.tombs[key] = struct{}{}
		} else {
			n.idx.Insert(key, val)
			delete(imp.tombs, key)
		}
		return nil
	}
	if owned {
		if del {
			n.idx.Delete(key)
		} else {
			n.idx.Insert(key, val)
		}
		return nil
	}
	return fmt.Errorf("%w: mirrored key %#x has no import session and is not owned", ErrWrongShard, key)
}

// Len is the local index size. During a handover it double-counts the
// moving range (present on source and target); Cluster.Len documents the
// approximation.
func (n *Node) Len() int { return n.idx.Len() }
