// Package blockdep stands in for internal/proto: it exports a blocking
// reader annotated //dytis:blocks, which ctxcheck serves to dependents as a
// package fact. The package itself does not opt into ctxcheck.
package blockdep

import "net"

// ReadFull fills b from the connection.
//
//dytis:blocks
func ReadFull(nc net.Conn, b []byte) error {
	for len(b) > 0 {
		n, err := nc.Read(b)
		if err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}
