package a

import "sync"

type box struct {
	mu   sync.RWMutex
	data []int // guarded-by: mu
	n    int   // guarded-by: mu
}

func good(b *box) {
	b.mu.Lock()
	b.data = append(b.data, 1)
	b.n++
	b.mu.Unlock()
}

func goodDeferred(b *box) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

func badRead(b *box) int {
	return b.n // want `read of b.n requires holding b.mu`
}

func badWriteUnderRead(b *box) {
	b.mu.RLock()
	b.n = 2 // want `write to b.n requires write-holding b.mu`
	b.mu.RUnlock()
}

func badAfterUnlock(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.data[0] = 1 // want `write to b.data requires write-holding b.mu`
}

func condLock(b *box, c bool) {
	if c {
		b.mu.Lock()
	}
	b.n = 1 // optimistic branch merge: conditional lock counts as acquired
	if c {
		b.mu.Unlock()
	}
}

func unlockInBranch(b *box, c bool) {
	b.mu.Lock()
	if c {
		b.mu.Unlock()
		return
	}
	b.n = 4 // terminated branch excluded; still write-held here
	b.mu.Unlock()
}

//dytis:locked b.mu w
func contract(b *box) { b.n = 3 }

func callsContractBare(b *box) {
	contract(b) // want `call to contract requires write-holding b.mu`
}

func callsContractHeld(b *box) {
	b.mu.Lock()
	contract(b)
	b.mu.Unlock()
}

//dytis:locked x.mu r
func (x *box) sum() int { return x.n + len(x.data) }

func callsMethodBare(b *box) int {
	return b.sum() // want `call to sum requires holding b.mu`
}

func callsMethodHeld(b *box) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.sum()
}

//dytis:nolockcheck
func exempt(b *box) { b.n = 9 }

func fresh() *box {
	b := &box{}
	b.n = 1 // fresh object: nobody else can see it yet
	return b
}

func newBox() *box { return &box{} }

func viaBuilder() *box {
	b := newBox()
	b.data = append(b.data, 1) // fresh via new*-named constructor
	return b
}

func alias(b *box) int {
	b.mu.RLock()
	c := b
	n := c.n // alias copies b's facts to c
	c.mu.RUnlock()
	return n
}

func closure(b *box) {
	b.mu.Lock()
	f := func() { b.n++ } // synchronous closure inherits held facts
	f()
	b.mu.Unlock()
}

func closureBare(b *box) {
	f := func() { b.n++ } // want `write to b.n requires write-holding b.mu`
	f()
}

func spawned(b *box) {
	b.mu.Lock()
	go func() {
		b.n++ // want `write to b.n requires write-holding b.mu`
	}()
	b.mu.Unlock()
}

//dytis:locks b.mu w
func (b *box) enter() { b.mu.Lock() }

//dytis:locked b.mu w
//dytis:unlocks b.mu
func (b *box) exit() { b.mu.Unlock() }

func usesLockHelpers(b *box) int {
	b.enter()
	b.n = 5 // helper-acquired lock counts as held
	b.exit()
	return b.n // want `read of b.n requires holding b.mu`
}

func deferredHelperUnlock(b *box) int {
	b.enter()
	defer b.exit() // deferred unlock helper ignored like a deferred Unlock
	return b.n
}

func helperUnlockBare(b *box) {
	b.exit() // want `call to exit requires write-holding b.mu`
}

//dytis:locksresult mu r
func resolve(b *box) *box {
	b.mu.RLock()
	return b
}

func usesLockedResult(b *box) int {
	c := resolve(b)
	n := c.n // result came back read-locked
	c.mu.RUnlock()
	return n
}

func staleFactsDropped(b *box) int {
	c := b
	c.mu.Lock()
	c.mu.Unlock()
	c = resolve(b)
	c.n = 1 // want `write to c.n requires write-holding c.mu`
	n := c.n
	c.mu.RUnlock()
	return n
}

//dytis:seqlocked
func optimisticRead(b *box) int {
	return b.n + b.sum() // version-validated reads: checks suppressed
}

//dytis:seqlocked
func optimisticWrite(b *box) {
	b.n = 1 // want `write to b.n requires write-holding b.mu`
}
