package proto

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder — the
// exact surface a hostile client reaches once ReadFrame has accepted a
// length prefix. The decoder must never panic, never allocate beyond the
// validated counts, and must re-encode anything it accepts into a frame
// that decodes to the same request (encode∘decode is the identity on the
// decoder's accepted set, which is how corrupted-but-parseable frames are
// caught semantically, not just memory-safely).
func FuzzDecodeRequest(f *testing.F) {
	seed := func(r *Request) {
		frame, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(&Request{ID: 1, Op: OpPing})
	seed(&Request{ID: 2, Op: OpGet, Key: 42})
	seed(&Request{ID: 3, Op: OpInsert, Key: 1, Val: 2})
	seed(&Request{ID: 4, Op: OpScan, Key: 9, Max: 100})
	seed(&Request{ID: 5, Op: OpGetBatch, Keys: []uint64{1, 2, 3}})
	seed(&Request{ID: 6, Op: OpInsertBatch, Keys: []uint64{7}, Vals: []uint64{8}})
	seed(&Request{ID: 7, Op: OpDeleteBatch, Keys: []uint64{0, ^uint64(0)}})
	f.Add([]byte{})
	f.Add(make([]byte, 9))

	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := DecodeRequest(body, &req); err != nil {
			return
		}
		// Accepted input must re-encode to a body that decodes identically.
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		var again Request
		if err := DecodeRequest(frame[4:], &again); err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !bytes.Equal(frame[4:], body) {
			// The wire format has exactly one encoding per request, so any
			// accepted body must be the canonical one.
			t.Fatalf("non-canonical body accepted:\n in: %x\nout: %x", body, frame[4:])
		}
	})
}

// FuzzDecodeResponse is the client-side mirror: arbitrary bytes at the
// response decoder, which a hostile or corrupted server reaches.
func FuzzDecodeResponse(f *testing.F) {
	seed := func(r *Response) {
		frame, err := AppendResponse(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	seed(&Response{ID: 1, Op: OpPing})
	seed(&Response{ID: 2, Op: OpGet, Found: true, Val: 3})
	seed(&Response{ID: 3, Op: OpScan, Keys: []uint64{1, 2}, Vals: []uint64{3, 4}})
	seed(&Response{ID: 4, Op: OpGetBatch, Vals: []uint64{1}, Founds: []bool{true}})
	seed(&Response{ID: 5, Op: OpDeleteBatch, Founds: []bool{false, true}})
	seed(&Response{ID: 6, Op: OpLen, Val: 99})
	seed(&Response{ID: 7, Op: OpGet, Status: StatusErr, Msg: "boom"})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		var resp Response
		if err := DecodeResponse(body, &resp); err != nil {
			return
		}
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %+v: %v", resp, err)
		}
		var again Response
		if err := DecodeResponse(frame[4:], &again); err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
	})
}
