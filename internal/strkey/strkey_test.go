package strkey

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"dytis/internal/core"
)

func opts() core.Options {
	return core.Options{FirstLevelBits: 2, BucketEntries: 8, StartDepth: 2}
}

func TestEncodeOrderPreserving(t *testing.T) {
	words := []string{"", "a", "aa", "ab", "abacus", "b", "zebra", "zz"}
	for i := 1; i < len(words); i++ {
		if !(Encode(words[i-1]) < Encode(words[i])) {
			t.Fatalf("Encode(%q)=%#x !< Encode(%q)=%#x",
				words[i-1], Encode(words[i-1]), words[i], Encode(words[i]))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello", "12345678"} {
		if got := decode(Encode(s)); got != s {
			t.Fatalf("decode(Encode(%q)) = %q", s, got)
		}
	}
}

func TestSetGetDelete(t *testing.T) {
	m := NewMap(opts())
	m.Set("alpha", 1)
	m.Set("beta", 2)
	m.Set("alpha", 3) // update
	if v, ok := m.Get("alpha"); !ok || v != 3 {
		t.Fatalf("Get(alpha) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d", m.Len())
	}
	if !m.Delete("alpha") || m.Delete("alpha") {
		t.Fatal("delete semantics")
	}
	if _, ok := m.Get("alpha"); ok {
		t.Fatal("alpha survived delete")
	}
}

func TestPrefixCollisions(t *testing.T) {
	m := NewMap(opts())
	// All share the 8-byte prefix "collide_".
	keys := []string{"collide_one", "collide_two", "collide_three", "collide_"}
	for i, k := range keys {
		m.Set(k, uint64(i))
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len=%d", m.Len())
	}
	for i, k := range keys {
		if v, ok := m.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v", k, v, ok)
		}
	}
	if _, ok := m.Get("collide_four"); ok {
		t.Fatal("phantom colliding key")
	}
	// Updates inside the overflow list.
	m.Set("collide_two", 99)
	if v, _ := m.Get("collide_two"); v != 99 {
		t.Fatal("overflow update failed")
	}
	// Deleting down to one collapses back to a direct resident.
	m.Delete("collide_one")
	m.Delete("collide_three")
	m.Delete("collide_")
	if v, ok := m.Get("collide_two"); !ok || v != 99 {
		t.Fatalf("survivor lost: %d,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d", m.Len())
	}
}

func TestLongKeySameStringUpdates(t *testing.T) {
	m := NewMap(opts())
	m.Set("long-key-beyond-8", 1)
	m.Set("long-key-beyond-8", 2)
	if m.Len() != 1 {
		t.Fatalf("Len=%d want 1", m.Len())
	}
	if v, _ := m.Get("long-key-beyond-8"); v != 2 {
		t.Fatal("long-key update failed")
	}
	// A different long key with the same prefix must NOT match.
	if _, ok := m.Get("long-key-beyond-9"); ok {
		t.Fatal("prefix false positive")
	}
}

func TestRangeLexicographic(t *testing.T) {
	m := NewMap(opts())
	words := []string{"apple", "apricot", "banana", "blueberry", "cherry",
		"prefix__collide1", "prefix__collide2", "prefix__"}
	for i, w := range words {
		m.Set(w, uint64(i))
	}
	var got []string
	m.Range("", func(k string, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), words...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("range returned %d keys, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %q want %q", i, got[i], want[i])
		}
	}
	// Start mid-way and early stop.
	got = got[:0]
	m.Range("banana", func(k string, v uint64) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != "banana" || got[1] != "blueberry" {
		t.Fatalf("bounded range: %v", got)
	}
}

func TestQuickMatchesGoMap(t *testing.T) {
	// A pool with deliberately colliding prefixes.
	pool := make([]string, 0, 64)
	for i := 0; i < 16; i++ {
		pool = append(pool, fmt.Sprintf("k%02d", i))
		pool = append(pool, fmt.Sprintf("shared__%d", i))
		pool = append(pool, "shared__"+strings.Repeat("x", i))
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap(opts())
		ref := map[string]uint64{}
		for op := 0; op < 1500; op++ {
			k := pool[rng.Intn(len(pool))]
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := rng.Uint64()
				m.Set(k, v)
				ref[k] = v
			case 3:
				_, in := ref[k]
				if m.Delete(k) != in {
					return false
				}
				delete(ref, k)
			case 4:
				gv, gok := m.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		// Ordered traversal equals the sorted reference.
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okAll := true
		m.Range("", func(k string, v uint64) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
