// Package wal is the durability subsystem: a write-ahead log plus periodic
// checkpoints in one directory, wrapped around the in-memory index as a
// Store. Every mutation is framed, checksummed, and appended to the active
// log segment before it is applied (and, under FsyncAlways, fsynced before
// the call returns — the ack). A checkpoint is a full snapshot on the
// WriteSnapshot/LoadSorted fast path, committed by atomic rename, after
// which the segments it subsumes are deleted. Recovery is Open: load the
// newest valid checkpoint, replay the segments after it in order, tolerate
// exactly one torn record at the tail of the newest segment (the expected
// signature of kill -9 mid-append), and refuse — with a typed error — any
// other corruption.
//
// Directory layout (all names zero-padded so lexical order = numeric order):
//
//	wal-0000000000000001.log    log segments, immutable once rotated
//	wal-0000000000000002.log    ← active segment (largest sequence)
//	ckpt-0000000000000002.snap  snapshot; replay resumes AT segment 2
//
// A checkpoint's sequence number names the first segment whose records are
// NOT contained in it: checkpointing rotates to a fresh segment n, then
// snapshots the index (which holds everything through segment n-1), so
// recovery = load ckpt-n + replay segments ≥ n. Snapshots land under a
// temporary name and are renamed into place only when fully written and
// fsynced — a crash mid-checkpoint leaves a *.tmp file (swept by Open),
// never a half checkpoint with a valid name.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dytis/internal/fsutil"
)

// FsyncPolicy says when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncOff never syncs on the append path; the OS flushes when it
	// pleases. Crash durability is bounded only by checkpoints. Fastest.
	FsyncOff FsyncPolicy = iota
	// FsyncInterval syncs the active segment on a background timer
	// (Options.FsyncInterval). A crash loses at most one interval of acked
	// writes. The default.
	FsyncInterval
	// FsyncAlways syncs before every mutation returns: an acked write is on
	// stable storage. The guarantee the crash matrix proves, at the price of
	// an fsync per mutation (group-commit batching via InsertBatch amortizes
	// it).
	FsyncAlways
)

// ParseFsyncPolicy maps the -fsync flag values off|interval|always.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "off":
		return FsyncOff, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want off, interval, or always)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncOff:
		return "off"
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

func segmentName(seq uint64) string    { return fmt.Sprintf("wal-%016d.log", seq) }
func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%016d.snap", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// walLog is the segmented appender. It is not self-synchronizing: every
// method runs under the owning Store's mu (lockcheck's guarded-by marker
// only names sibling mutexes, so the discipline is stated here instead),
// which is what makes log order equal apply order.
type walLog struct {
	dir     string
	policy  FsyncPolicy
	metrics *Metrics

	f     *os.File      // active segment
	bw    *bufio.Writer // buffers f
	seq   uint64        // active segment sequence
	size  int64         // bytes appended to the active segment
	dirty bool          // appended bytes not yet fsynced

	// onRotate, when non-nil, is called at the named stages of a rotation
	// ("sealed": old segment durable and closed, new one not yet created).
	// The crash matrix lands kill -9 there.
	onRotate func(stage string)
}

// openLog creates and syncs a fresh active segment with the given sequence
// number. The directory entry is fsynced so the segment's existence survives
// a crash.
func openLog(dir string, seq uint64, policy FsyncPolicy, m *Metrics) (*walLog, error) {
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fsutil.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	m.activeSegment.Store(int64(seq))
	return &walLog{dir: dir, policy: policy, metrics: m, f: f, bw: bufio.NewWriterSize(f, 1<<16), seq: seq}, nil
}

// append writes one or more framed records (already encoded into rec) and,
// under FsyncAlways, forces them to stable storage before returning.
func (l *walLog) append(rec []byte, nrecords int) error {
	if _, err := l.bw.Write(rec); err != nil {
		return err
	}
	l.size += int64(len(rec))
	l.dirty = true
	l.metrics.appends.Add(int64(nrecords))
	l.metrics.bytes.Add(int64(len(rec)))
	if l.policy == FsyncAlways {
		return l.sync()
	}
	return nil
}

// sync flushes buffered bytes and fsyncs the active segment.
func (l *walLog) sync() error {
	if !l.dirty {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.metrics.fsync(time.Since(start).Nanoseconds())
	l.dirty = false
	return nil
}

// rotate seals the active segment (flush, fsync, close) and opens segment
// seq+1. After rotate returns, the old segment is immutable and fully on
// stable storage.
func (l *walLog) rotate() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.metrics.fsync(time.Since(start).Nanoseconds())
	if err := l.f.Close(); err != nil {
		return err
	}
	if l.onRotate != nil {
		l.onRotate("sealed")
	}
	seq := l.seq + 1
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := fsutil.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.bw, l.seq, l.size, l.dirty = f, bufio.NewWriterSize(f, 1<<16), seq, 0, false
	l.metrics.rotations.Add(1)
	l.metrics.activeSegment.Store(int64(seq))
	return nil
}

// close seals the active segment and closes it.
func (l *walLog) close() error {
	if err := l.sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
