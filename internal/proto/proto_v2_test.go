package proto

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

func TestHelloRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Op: OpHello, Ver: MaxVersion, Feats: AllFeatures}
	got := roundTripReq(t, req)
	normReq(got)
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("hello request round trip:\n got %+v\nwant %+v", got, req)
	}

	resp := &Response{ID: 7, Op: OpHello, Ver: Version2, Feats: FeatCRC}
	frame, err := AppendResponse(nil, resp)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	body, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	var dec Response
	if err := DecodeResponse(body, &dec); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	normResp(&dec)
	if !reflect.DeepEqual(&dec, resp) {
		t.Fatalf("hello response round trip:\n got %+v\nwant %+v", &dec, resp)
	}
}

func TestScanStreamRoundTrips(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Op: OpScanStart, Key: 42, ScanMax: 1 << 40, Max: 512, Credits: 8},
		{ID: 1, Op: OpScanStart, Key: 0, ScanMax: 0, Max: 1, Credits: 1, TimeoutMS: 250},
		{ID: 1, Op: OpScanCredit, Credits: 3},
		{ID: 1, Op: OpScanCancel},
	}
	for _, r := range reqs {
		got := roundTripReq(t, r)
		normReq(got)
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", r.Op, got, r)
		}
	}

	resps := []*Response{
		{ID: 1, Op: OpScanStart, Status: StatusBadRequest, Msg: "no such stream"},
		{ID: 1, Op: OpScanChunk, Keys: []uint64{1, 2, 3}, Vals: []uint64{10, 20, 30}},
		{ID: 1, Op: OpScanChunk},
		{ID: 1, Op: OpScanEnd, Val: 1 << 20},
		{ID: 1, Op: OpScanEnd, Status: StatusShuttingDown, Msg: "draining"},
	}
	for _, r := range resps {
		frame, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("%v AppendResponse: %v", r.Op, err)
		}
		body, _, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		var dec Response
		if err := DecodeResponse(body, &dec); err != nil {
			t.Fatalf("%v DecodeResponse: %v", r.Op, err)
		}
		normResp(&dec)
		want := *r
		normResp(&want)
		if !reflect.DeepEqual(dec, want) {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", r.Op, dec, want)
		}
	}
}

func TestScanStartLimits(t *testing.T) {
	bad := []*Request{
		{Op: OpScanStart, Max: 0, Credits: 1},                  // zero chunk
		{Op: OpScanStart, Max: MaxScan + 1, Credits: 1},        // oversized chunk
		{Op: OpScanStart, Max: 1, Credits: 0},                  // zero credits
		{Op: OpScanStart, Max: 1, Credits: MaxScanCredits + 1}, // oversized credits
		{Op: OpScanCredit, Credits: 0},
		{Op: OpScanCredit, Credits: MaxScanCredits + 1},
	}
	for _, r := range bad {
		if _, err := AppendRequest(nil, r); !errors.Is(err, ErrLimit) {
			t.Errorf("%+v: AppendRequest err = %v, want ErrLimit", r, err)
		}
	}
	// The decoder must enforce the same limits on a hand-forged frame.
	body := appendU64(nil, 1)                // id
	body = append(body, byte(OpScanStart))   // op
	body = appendU64(body, 0)                // start
	body = appendU64(body, 0)                // scan max
	body = appendU32(body, 1)                // chunk
	body = appendU32(body, MaxScanCredits+1) // credits — over limit
	var req Request
	if err := DecodeRequest(body, &req); !errors.Is(err, ErrLimit) {
		t.Errorf("forged credits: DecodeRequest err = %v, want ErrLimit", err)
	}
}

// TestResponseOnlyOpcodesRejectedAsRequests pins the request/response opcode
// split: chunk and end frames must never decode as requests.
func TestResponseOnlyOpcodesRejectedAsRequests(t *testing.T) {
	for _, op := range []Opcode{OpScanChunk, OpScanEnd} {
		if op.Valid() {
			t.Errorf("%v.Valid() = true, want false (response-only)", op)
		}
		if !op.ValidResponse() {
			t.Errorf("%v.ValidResponse() = false, want true", op)
		}
		body := appendU64(nil, 1)
		body = append(body, byte(op))
		var req Request
		if err := DecodeRequest(body, &req); !errors.Is(err, ErrBadOpcode) {
			t.Errorf("%v as request: err = %v, want ErrBadOpcode", op, err)
		}
	}
}

// TestOverloadRetryAfterVersions pins the one point where v1 and v2 response
// encodings differ: the typed retry-after field of a StatusOverload response.
func TestOverloadRetryAfterVersions(t *testing.T) {
	src := &Response{ID: 9, Op: OpGet, Status: StatusOverload, RetryAfterMS: 75, Msg: "75ms"}

	// v2: the typed field survives the wire.
	frame, err := AppendResponseV(nil, src, Version2)
	if err != nil {
		t.Fatalf("AppendResponseV: %v", err)
	}
	body, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	var v2 Response
	if err := DecodeResponseV(body, &v2, Version2); err != nil {
		t.Fatalf("DecodeResponseV: %v", err)
	}
	if v2.RetryAfterMS != 75 || v2.Msg != "75ms" {
		t.Fatalf("v2 overload: got RetryAfterMS=%d Msg=%q", v2.RetryAfterMS, v2.Msg)
	}
	if d, ok := v2.RetryAfter(); !ok || d != 75*time.Millisecond {
		t.Fatalf("v2 RetryAfter() = %v, %v", d, ok)
	}

	// v1: the typed field is not encoded; the hint rides in Msg only.
	frame, err = AppendResponseV(nil, src, Version1)
	if err != nil {
		t.Fatalf("AppendResponseV(v1): %v", err)
	}
	body, _, err = ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	var v1 Response
	if err := DecodeResponse(body, &v1); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if v1.RetryAfterMS != 0 || v1.Msg != "75ms" {
		t.Fatalf("v1 overload: got RetryAfterMS=%d Msg=%q", v1.RetryAfterMS, v1.Msg)
	}
	if d, ok := v1.RetryAfter(); !ok || d != 75*time.Millisecond {
		t.Fatalf("v1 RetryAfter() fallback = %v, %v", d, ok)
	}

	// The typed field wins over a contradictory Msg.
	r := &Response{Status: StatusOverload, RetryAfterMS: 10, Msg: "1h"}
	if d, ok := r.RetryAfter(); !ok || d != 10*time.Millisecond {
		t.Fatalf("typed-over-Msg RetryAfter() = %v, %v", d, ok)
	}
}

// TestSealFrameRoundTrip pins the sealed framing: a sealed frame reads back
// through ReadFrameCRC, and through the split ReadHeader/ReadBody/ReadTrailer
// path the server uses.
func TestSealFrameRoundTrip(t *testing.T) {
	req := &Request{ID: 3, Op: OpInsert, Key: 1, Val: 2}
	frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	sealed := SealFrame(frame, 0)
	if len(sealed) != len(frame)+TrailerLen {
		t.Fatalf("sealed length %d, want %d", len(sealed), len(frame)+TrailerLen)
	}

	body, _, err := ReadFrameCRC(bytes.NewReader(sealed), nil)
	if err != nil {
		t.Fatalf("ReadFrameCRC: %v", err)
	}
	var got Request
	if err := DecodeRequest(body, &got); err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if got.Key != 1 || got.Val != 2 {
		t.Fatalf("decoded %+v", got)
	}

	// Split path.
	r := bytes.NewReader(sealed)
	n, err := ReadHeader(r)
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	body, _, err = ReadBody(r, n, nil)
	if err != nil {
		t.Fatalf("ReadBody: %v", err)
	}
	if err := ReadTrailer(r, n, body); err != nil {
		t.Fatalf("ReadTrailer: %v", err)
	}

	// Multi-frame stream: sealing must not confuse the framing.
	stream := append(append([]byte(nil), sealed...), sealed...)
	br := bytes.NewReader(stream)
	for i := 0; i < 2; i++ {
		if _, _, err := ReadFrameCRC(br, nil); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if br.Len() != 0 {
		t.Fatalf("%d bytes left after two frames", br.Len())
	}
}

// TestSealedFrameBitFlipDetected is the checksum-canonicality property from
// the issue: flip ANY bit of a sealed frame — prefix, body, or trailer — and
// the read must fail (checksum mismatch, framing error, or truncation), never
// deliver a wrong body.
func TestSealedFrameBitFlipDetected(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 0xdeadbeef, Op: OpInsert, Key: 0x1122334455667788, Val: 42})
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	sealed := SealFrame(frame, 0)
	for byteIdx := 0; byteIdx < len(sealed); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[byteIdx] ^= 1 << bit
			body, _, err := ReadFrameCRC(bytes.NewReader(mut), nil)
			if err == nil {
				t.Fatalf("flip byte %d bit %d: accepted corrupt frame, body %x", byteIdx, bit, body)
			}
			// A length-prefix flip may yield a framing/short-read error; any
			// flip that leaves the framing intact must be ErrChecksum.
			if byteIdx >= headerLen && byteIdx < len(sealed)-TrailerLen {
				// Body flips keep the length prefix valid, so the trailer is
				// read in full and the error must be the checksum.
				if !errors.Is(err, ErrChecksum) {
					t.Fatalf("flip byte %d bit %d: err = %v, want ErrChecksum", byteIdx, bit, err)
				}
			}
		}
	}
}

// TestReadTrailerTruncation: a stream that ends mid-trailer is an unexpected
// EOF, not a clean EOF — the peer vanished mid-frame.
func TestReadTrailerTruncation(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 1, Op: OpPing})
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	sealed := SealFrame(frame, 0)
	for cut := len(frame); cut < len(sealed); cut++ {
		_, _, err := ReadFrameCRC(bytes.NewReader(sealed[:cut]), nil)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestSealFrameMidBuffer: SealFrame must checksum only the frame at start,
// not the whole buffer, so a writer can batch multiple sealed frames into
// one buffer.
func TestSealFrameMidBuffer(t *testing.T) {
	var buf []byte
	var offsets []int
	for i := 0; i < 3; i++ {
		offsets = append(offsets, len(buf))
		var err error
		buf, err = AppendRequest(buf, &Request{ID: uint64(i), Op: OpGet, Key: uint64(i) * 7})
		if err != nil {
			t.Fatalf("AppendRequest: %v", err)
		}
		buf = SealFrame(buf, offsets[i])
	}
	r := bytes.NewReader(buf)
	for i := 0; i < 3; i++ {
		body, _, err := ReadFrameCRC(r, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var req Request
		if err := DecodeRequest(body, &req); err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if req.ID != uint64(i) || req.Key != uint64(i)*7 {
			t.Fatalf("frame %d: got %+v", i, req)
		}
	}
}
