package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"dytis/client"
	"dytis/internal/cluster"
	"dytis/internal/core"
	"dytis/internal/server"
)

// The cluster experiment measures sharded serving end to end: bulk load,
// point reads, and the scatter-gather full scan, through the routed client
// against an N-shard cluster, next to the same workload against one server
// through the plain client. In-process shards (the default) share one
// machine's cores, so the interesting read is serving overhead and the
// scan's k-way merge; true multi-process scaling comes from -cluster-addrs
// pointed at separately launched dytis-server -shard processes (see
// EXPERIMENTS.md for the 3-process recipe).
var (
	clusterAddrs   = flag.String("cluster-addrs", "", "comma-separated addresses of already-running shard servers (launched with -shard, map installed); empty = in-process shards")
	clusterShards  = flag.Int("cluster-shards", 3, "in-process shard count for -exp cluster when -cluster-addrs is empty")
	clusterClients = flag.Int("cluster-clients", 4, "concurrent client goroutines in -exp cluster")
	clusterKeys    = flag.Int("cluster-keys", 1<<20, "key count for -exp cluster")
	clusterReads   = flag.Int("cluster-reads", 1<<20, "point-read count for -exp cluster")
	clusterJSON    = flag.String("cluster-json", "", "also write the -exp cluster results as JSON to this file")
)

// clusterGolden spreads a counter over the whole key space (odd multiplier:
// bijective), so a uniform shard map sees uniform load.
const clusterGolden = 0x9E3779B97F4A7C15

func clusterKey(i uint64) uint64 { return i * clusterGolden }

type clusterCell struct {
	Config     string  `json:"config"` // "single" or "cluster-N"
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Keys       int     `json:"keys"`
	LoadMops   float64 `json:"load_mops_per_sec"`
	GetMops    float64 `json:"get_mops_per_sec"`
	ScanMpairs float64 `json:"scan_mpairs_per_sec"`
	LoadMs     int64   `json:"load_wall_ms"`
	GetMs      int64   `json:"get_wall_ms"`
	ScanMs     int64   `json:"scan_wall_ms"`
}

// kvBench is the slice of the client surface the experiment drives; both
// client.Client (single) and client.Cluster (routed) satisfy it.
type kvBench interface {
	InsertBatch(ctx context.Context, keys, vals []uint64) error
	Get(ctx context.Context, key uint64) (uint64, bool, error)
	Len(ctx context.Context) (int, error)
}

// kvScanner is the iterator both scan paths return.
type kvScanner interface {
	Next() bool
	Key() uint64
	Err() error
	Close() error
}

func clusterExp() {
	n := *clusterKeys
	fmt.Printf("Sharded serving: %d keys, %d client goroutines, GOMAXPROCS %d\n",
		n, *clusterClients, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %7s %12s %12s %12s\n", "config", "shards", "load_Mops", "get_Mops", "scan_Mpairs")

	var cells []clusterCell

	// Baseline: one plain server, one pooled client.
	single, err := runClusterCell("single", 1, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "single:", err)
		os.Exit(1)
	}
	cells = append(cells, single)

	// The cluster: external processes when -cluster-addrs is given,
	// in-process shards otherwise.
	var addrs []string
	if *clusterAddrs != "" {
		for _, a := range strings.Split(*clusterAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}
	shards := len(addrs)
	if shards == 0 {
		shards = *clusterShards
	}
	clusterCellRes, err := runClusterCell(fmt.Sprintf("cluster-%d", shards), shards, addrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
	cells = append(cells, clusterCellRes)

	for _, c := range cells {
		fmt.Printf("%-12s %7d %12.3f %12.3f %12.3f\n", c.Config, c.Shards, c.LoadMops, c.GetMops, c.ScanMpairs)
	}
	fmt.Printf("scaling: load %.2fx, get %.2fx, scan %.2fx over single-server\n",
		clusterCellRes.LoadMops/single.LoadMops,
		clusterCellRes.GetMops/single.GetMops,
		clusterCellRes.ScanMpairs/single.ScanMpairs)

	if *clusterJSON != "" {
		out := struct {
			Keys    int           `json:"keys"`
			Clients int           `json:"clients"`
			Cells   []clusterCell `json:"configs"`
		}{n, *clusterClients, cells}
		data, _ := json.MarshalIndent(out, "", "  ")
		if err := os.WriteFile(*clusterJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cluster-json:", err)
		}
	}
}

// startBenchShards boots n in-process shard servers with the epoch-1
// uniform map installed, returning their addresses and a teardown.
func startBenchShards(n int) ([]string, func(), error) {
	width := ^uint64(0)/uint64(n) + 1
	addrs := make([]string, n)
	var stops []func()
	stop := func() {
		for _, f := range stops {
			f()
		}
	}
	for i := 0; i < n; i++ {
		lo := uint64(i) * width
		hi := lo + width - 1
		if i == n-1 {
			hi = ^uint64(0)
		}
		idx := core.New(core.Options{Concurrent: true})
		node, err := cluster.NewNode(cluster.NodeConfig{Index: idx, Lo: lo, Hi: hi})
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := server.New(server.Config{Index: idx, Cluster: node, MaxConns: *clusterClients * 4 * n})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		go srv.Serve(ln)
		addrs[i] = ln.Addr().String()
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx)
			cancel()
			idx.Close()
		})
	}
	m, err := cluster.Uniform(1, addrs)
	if err != nil {
		stop()
		return nil, nil, err
	}
	blob := m.Encode()
	ctx := context.Background()
	for i, s := range m.Shards {
		c, err := client.Dial(s.Addr)
		if err == nil {
			err = c.SetShardMap(ctx, s.Lo, s.Hi, blob)
			c.Close()
		}
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("installing map on shard %d: %w", i, err)
		}
	}
	return addrs, stop, nil
}

// runClusterCell measures one configuration. shards == 1 with no addrs is
// the plain single-server baseline; otherwise the routed client drives the
// given (or freshly started in-process) shard set.
func runClusterCell(config string, shards int, addrs []string) (clusterCell, error) {
	ctx := context.Background()
	teardown := func() {}

	var api kvBench
	var scan func() kvScanner
	var closeClient func() error
	if shards == 1 && addrs == nil {
		idx := core.New(core.Options{Concurrent: true})
		srv := server.New(server.Config{Index: idx, MaxConns: *clusterClients * 4})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return clusterCell{}, err
		}
		go srv.Serve(ln)
		teardown = func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(sctx)
			cancel()
			idx.Close()
		}
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			teardown()
			return clusterCell{}, err
		}
		api = c
		scan = func() kvScanner { return c.ScanStream(ctx, 0, 0) }
		closeClient = c.Close
	} else {
		if addrs == nil {
			var err error
			addrs, teardown, err = startBenchShards(shards)
			if err != nil {
				return clusterCell{}, err
			}
		}
		cl, err := client.DialCluster(addrs[:1])
		if err != nil {
			teardown()
			return clusterCell{}, err
		}
		api = cl
		scan = func() kvScanner { return cl.ScanStream(ctx, 0, 0) }
		closeClient = cl.Close
	}
	defer teardown()
	defer closeClient()

	cell := clusterCell{Config: config, Shards: shards, Clients: *clusterClients, Keys: *clusterKeys}

	// Load: every client goroutine batch-inserts its slice of the key set.
	n := *clusterKeys
	const chunk = 4096
	var wg sync.WaitGroup
	errs := make([]error, *clusterClients)
	per := n / *clusterClients
	t0 := time.Now()
	for w := 0; w < *clusterClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*per, (w+1)*per
			if w == *clusterClients-1 {
				hi = n
			}
			keys := make([]uint64, 0, chunk)
			for i := lo; i < hi; i += chunk {
				end := i + chunk
				if end > hi {
					end = hi
				}
				keys = keys[:0]
				for j := i; j < end; j++ {
					keys = append(keys, clusterKey(uint64(j)))
				}
				if err := api.InsertBatch(ctx, keys, keys); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	loadWall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return clusterCell{}, err
		}
	}
	if got, err := api.Len(ctx); err != nil || got != n {
		return clusterCell{}, fmt.Errorf("after load Len = %d, %v; want %d", got, err, n)
	}
	cell.LoadMops = float64(n) / loadWall.Seconds() / 1e6
	cell.LoadMs = loadWall.Milliseconds()

	// Point reads, striped over the goroutines.
	reads := *clusterReads
	perR := reads / *clusterClients
	t0 = time.Now()
	for w := 0; w < *clusterClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perR; i++ {
				k := clusterKey(uint64((w*perR + i) % n))
				if _, found, err := api.Get(ctx, k); err != nil || !found {
					errs[w] = fmt.Errorf("Get(%#x) = (found=%v, err=%v)", k, found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	getWall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return clusterCell{}, err
		}
	}
	cell.GetMops = float64(perR**clusterClients) / getWall.Seconds() / 1e6
	cell.GetMs = getWall.Milliseconds()

	// Full ordered scan: single stream vs the scatter-gather k-way merge.
	t0 = time.Now()
	s := scan()
	count, last, ordered := 0, uint64(0), true
	for s.Next() {
		if count > 0 && s.Key() <= last {
			ordered = false
		}
		last = s.Key()
		count++
	}
	scanWall := time.Since(t0)
	err := s.Err()
	s.Close()
	if err != nil {
		return clusterCell{}, err
	}
	if count != n || !ordered {
		return clusterCell{}, fmt.Errorf("scan delivered %d pairs (ordered=%v), want %d ascending", count, ordered, n)
	}
	cell.ScanMpairs = float64(count) / scanWall.Seconds() / 1e6
	cell.ScanMs = scanWall.Milliseconds()
	return cell, nil
}
