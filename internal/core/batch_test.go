package core_test

import (
	"math/rand"
	"testing"
	"time"

	"dytis/internal/check"
	"dytis/internal/core"
)

// TestBatchMatchesSingleOps drives identical mixed workloads through the
// batch entry points and the single-op methods on two indexes; every
// intermediate result and the final structures must agree.
func TestBatchMatchesSingleOps(t *testing.T) {
	opts := core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2}
	db := core.New(opts) // batched
	ds := core.New(opts) // single-op reference
	rng := rand.New(rand.NewSource(42))

	var vals []uint64
	var found []bool
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(64)
		keys := make([]uint64, n)
		vs := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1 << 12))
			vs[i] = rng.Uint64()
		}
		switch round % 3 {
		case 0:
			db.InsertBatch(keys, vs)
			for i, k := range keys {
				ds.Insert(k, vs[i])
			}
		case 1:
			vals, found = db.GetBatch(keys, vals[:0], found[:0])
			for i, k := range keys {
				v, ok := ds.Get(k)
				if found[i] != ok || (ok && vals[i] != v) {
					t.Fatalf("round %d: GetBatch[%d] key %d = %d,%v; single = %d,%v",
						round, i, k, vals[i], found[i], v, ok)
				}
			}
		case 2:
			var err error
			found, err = db.DeleteBatch(keys, found[:0])
			if err != nil {
				t.Fatalf("round %d: DeleteBatch: %v", round, err)
			}
			for i, k := range keys {
				if ok := ds.Delete(k); found[i] != ok {
					t.Fatalf("round %d: DeleteBatch[%d] key %d = %v; single = %v",
						round, i, k, found[i], ok)
				}
			}
		}
	}
	if db.Len() != ds.Len() {
		t.Fatalf("Len: batched %d, single %d", db.Len(), ds.Len())
	}
	bs, ss := db.Scan(0, db.Len()+1, nil), ds.Scan(0, ds.Len()+1, nil)
	if len(bs) != len(ss) {
		t.Fatalf("scan lengths differ: %d vs %d", len(bs), len(ss))
	}
	for i := range bs {
		if bs[i] != ss[i] {
			t.Fatalf("scan[%d]: batched %+v, single %+v", i, bs[i], ss[i])
		}
	}
	if vs := check.Check(db); len(vs) != 0 {
		t.Fatalf("batched index unsound: %v", vs)
	}
}

func TestBatchEdgeCases(t *testing.T) {
	d := core.New(core.Options{})
	// Empty batches are no-ops, not panics, and leave dst slices untouched.
	vals, found := d.GetBatch(nil, nil, nil)
	if vals != nil || found != nil {
		t.Fatal("empty GetBatch grew its slices")
	}
	if err := d.InsertBatch(nil, nil); err != nil {
		t.Fatalf("empty InsertBatch: %v", err)
	}
	if f, err := d.DeleteBatch(nil, nil); f != nil || err != nil {
		t.Fatalf("empty DeleteBatch = %v, %v; want nil, nil", f, err)
	}
	// Mismatched InsertBatch lengths panic loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("InsertBatch with mismatched slices did not panic")
		}
	}()
	d.InsertBatch([]uint64{1, 2}, []uint64{1})
}

// batchSpyObserver counts per-op and batched bookings.
type batchSpyObserver struct {
	recordOps   int
	batchCalls  int
	batchedN    int
	lastShard   int
	structureEv int
}

func (o *batchSpyObserver) RecordOp(op core.Op, shard int, d time.Duration) { o.recordOps++ }
func (o *batchSpyObserver) StructureEvent(ev core.StructureEvent)           { o.structureEv++ }

type batchCapableObserver struct {
	batchSpyObserver
}

func (o *batchCapableObserver) RecordBatch(op core.Op, shard int, n int, total time.Duration) {
	o.batchCalls++
	o.batchedN += n
	o.lastShard = shard
}

// TestBatchObserverDispatch: an observer implementing BatchObserver gets one
// RecordBatch per batch; a plain Observer gets n RecordOp fallback calls —
// either way every operation is booked.
func TestBatchObserverDispatch(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50}
	vals := []uint64{1, 2, 3, 4, 5}

	plain := &batchSpyObserver{}
	d1 := core.New(core.Options{Observer: plain})
	d1.InsertBatch(keys, vals)
	d1.GetBatch(keys, nil, nil)
	if plain.recordOps != 2*len(keys) {
		t.Errorf("plain observer got %d RecordOp calls, want %d", plain.recordOps, 2*len(keys))
	}

	capable := &batchCapableObserver{}
	d2 := core.New(core.Options{Observer: capable})
	d2.InsertBatch(keys, vals)
	d2.GetBatch(keys, nil, nil)
	d2.DeleteBatch(keys[:2], nil)
	if capable.recordOps != 0 {
		t.Errorf("batch-capable observer got %d per-op fallbacks, want 0", capable.recordOps)
	}
	if capable.batchCalls != 3 || capable.batchedN != 2*len(keys)+2 {
		t.Errorf("RecordBatch calls/ops = %d/%d, want 3/%d",
			capable.batchCalls, capable.batchedN, 2*len(keys)+2)
	}
}

// detachSpy records DetachIndex calls.
type detachSpy struct {
	batchSpyObserver
	detached []any
}

func (o *detachSpy) DetachIndex(src any) { o.detached = append(o.detached, src) }

func TestCloseDetachesAndStopsObserving(t *testing.T) {
	spy := &detachSpy{}
	d := core.New(core.Options{Observer: spy})
	d.Insert(1, 2)
	before := spy.recordOps
	if before == 0 {
		t.Fatal("observer not wired")
	}
	if d.Closed() {
		t.Fatal("Closed before Close")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !d.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if len(spy.detached) != 1 || spy.detached[0] != any(d) {
		t.Fatalf("DetachIndex calls = %v, want exactly the index once", spy.detached)
	}
	// Idempotent: no second detach.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(spy.detached) != 1 {
		t.Fatalf("second Close detached again: %v", spy.detached)
	}
	// The structure stays readable, but mutations now fail loudly instead
	// of silently applying unlogged (see TestClosedMutations for the full
	// post-Close contract).
	if v, ok := d.Get(1); !ok || v != 2 {
		t.Fatalf("Get after Close = %d,%v", v, ok)
	}
	if err := d.InsertBatch([]uint64{5}, []uint64{6}); err == nil {
		t.Fatal("InsertBatch after Close succeeded")
	}
	if spy.recordOps != before {
		t.Fatalf("observer recorded %d ops after Close (had %d)", spy.recordOps, before)
	}
}
