package client

// Cluster is the routed client for a sharded dytis deployment: it holds the
// latest shard map it has seen, routes every operation to the owner of its
// key (splitting batches per shard), scatter-gathers scans across all
// shards through a k-way merge, and transparently follows StatusWrongShard
// redirects — including through the brief fail-closed window of a live
// handover cutover, which it retries with backoff instead of surfacing.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dytis/internal/cluster"
	"dytis/internal/proto"
)

const (
	// clusterAttempts bounds redirect-retry loops: a cutover re-routes in
	// one or two redirects, so running out means the map is churning faster
	// than this client can follow (or the cluster is misconfigured).
	clusterAttempts = 8
	// clusterBackoffMin/Max pace retries through a cutover's fail-closed
	// window (source de-owned, target not yet granted).
	clusterBackoffMin = 2 * time.Millisecond
	clusterBackoffMax = 100 * time.Millisecond
)

// ErrNoShardMap is returned by DialCluster when no seed server could
// provide a shard map.
var ErrNoShardMap = errors.New("client: no seed server has a shard map installed")

// ErrRouting matches (via errors.Is) operations the router gave up on after
// exhausting its redirect-retry budget: the shard map was churning faster
// than this client could follow, or the cluster is misconfigured. It is a
// routing outcome, not a data error — the operation may be retried whole.
// errors.As with *RoutingError recovers the attempt count and last cause.
var ErrRouting = errors.New("client: routing exhausted")

// RoutingError is the typed error of an operation that was still being
// redirected (or re-split) when the router ran out of attempts.
type RoutingError struct {
	// Op names the routed operation ("point op", "batch", "scan").
	Op string
	// Attempts is how many routing rounds were spent.
	Attempts int
	// Pending is how many keys were still unrouted when the budget ran out
	// (1 for point operations, 0 when the count is not per-key).
	Pending int
	// LastErr is the final redirect or refresh failure observed.
	LastErr error
}

func (e *RoutingError) Error() string {
	if e.Pending > 1 {
		return fmt.Sprintf("client: %s: %d keys still redirected after %d attempts: %v",
			e.Op, e.Pending, e.Attempts, e.LastErr)
	}
	return fmt.Sprintf("client: %s still redirected after %d attempts: %v", e.Op, e.Attempts, e.LastErr)
}

func (e *RoutingError) Unwrap() error { return e.LastErr }

// Is makes errors.Is(err, ErrRouting) match.
func (e *RoutingError) Is(target error) bool { return target == ErrRouting }

// EndpointHealth is the router's view of one endpoint, snapshotted by
// Health. An endpoint is healthy while its operations complete — any
// response counts, including redirects and overload sheds; only transport
// failures (dial errors, timeouts, dead connections) count against it.
type EndpointHealth struct {
	Addr string
	// Fails counts consecutive transport failures; 0 means healthy.
	Fails int
	// LastErr is the failure that set Fails, nil when healthy.
	LastErr error
}

// Cluster routes operations across a sharded dytis deployment. Create with
// DialCluster; all methods are safe for concurrent use. Close closes every
// per-shard client.
type Cluster struct {
	opts []Option

	mu      sync.RWMutex
	m       *cluster.Map               // guarded-by: mu — latest adopted map
	blob    []byte                     // guarded-by: mu — its encoded form
	clients map[string]*Client         // guarded-by: mu — per-address pooled clients
	health  map[string]*EndpointHealth // guarded-by: mu — per-address failure streaks
	closed  bool                       // guarded-by: mu
}

// DialCluster connects to a sharded deployment: it dials seeds in order
// until one provides a shard map, then routes by it. opts configure every
// per-shard Client the router opens (WithV1Protocol is rejected: routing
// needs the v2 cluster feature).
func DialCluster(seeds []string, opts ...Option) (*Cluster, error) {
	if len(seeds) == 0 {
		return nil, errors.New("client: DialCluster needs at least one seed address")
	}
	o := defaultOptions()
	for _, apply := range opts {
		apply(&o)
	}
	if o.forceV1 {
		return nil, errors.New("client: WithV1Protocol conflicts with cluster routing (FeatCluster is v2)")
	}
	cl := &Cluster{
		opts:    opts,
		clients: make(map[string]*Client),
		health:  make(map[string]*EndpointHealth),
	}
	var lastErr error = ErrNoShardMap
	for _, addr := range seeds {
		c, err := cl.client(addr)
		if err != nil {
			lastErr = err
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), o.dialTimeout)
		blob, err := c.ShardMap(ctx)
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("client: shard map from seed %s: %w", addr, err)
			continue
		}
		m, err := cluster.DecodeMap(blob)
		if err != nil {
			lastErr = fmt.Errorf("client: shard map from seed %s: %w", addr, err)
			continue
		}
		cl.m, cl.blob = m, blob
		return cl, nil
	}
	cl.Close()
	return nil, lastErr
}

// Close closes every per-shard client. Idempotent.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	clients := cl.clients
	cl.clients = nil
	cl.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	return nil
}

// Map returns the router's current shard map.
func (cl *Cluster) Map() *cluster.Map {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.m
}

// Epoch returns the epoch of the router's current shard map.
func (cl *Cluster) Epoch() uint64 {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	if cl.m == nil {
		return 0
	}
	return cl.m.Epoch
}

// client returns (opening if needed) the pooled client for addr.
func (cl *Cluster) client(addr string) (*Client, error) {
	cl.mu.RLock()
	c, closed := cl.clients[addr], cl.closed
	cl.mu.RUnlock()
	if closed {
		return nil, ErrClientClosed
	}
	if c != nil {
		return c, nil
	}
	c, err := Dial(addr, cl.opts...)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		c.Close()
		return nil, ErrClientClosed
	}
	if prev := cl.clients[addr]; prev != nil { // another goroutine won the race
		cl.mu.Unlock()
		c.Close()
		return prev, nil
	}
	cl.clients[addr] = c
	cl.mu.Unlock()
	return c, nil
}

// noteResult feeds one operation's outcome into the endpoint's health
// streak. A server that answered — even with a redirect or an overload
// shed — is alive; only transport-level failures count against it. A
// caller-canceled context says nothing about the endpoint and is neutral.
func (cl *Cluster) noteResult(addr string, err error) {
	healthy := err == nil || errors.Is(err, ErrWrongShard) || errors.Is(err, ErrOverload)
	if !healthy && errors.Is(err, context.Canceled) {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return
	}
	h := cl.health[addr]
	if h == nil {
		if healthy {
			return // nothing to reset
		}
		h = &EndpointHealth{Addr: addr}
		cl.health[addr] = h
	}
	if healthy {
		h.Fails, h.LastErr = 0, nil
	} else {
		h.Fails++
		h.LastErr = err
	}
}

// Health snapshots the router's per-endpoint failure streaks, one entry per
// endpoint the router has talked to, in no particular order. Endpoints with
// Fails == 0 are considered healthy; the router itself uses the streaks to
// order endpoints when any of them can serve (Refresh), never to refuse the
// sole owner of a key.
func (cl *Cluster) Health() []EndpointHealth {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	out := make([]EndpointHealth, 0, len(cl.health))
	for _, h := range cl.health {
		out = append(out, *h)
	}
	return out
}

// healthyFirst orders addrs so endpoints with no active failure streak come
// before ones mid-streak, preserving relative order within each class.
func (cl *Cluster) healthyFirst(addrs []string) []string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	out := make([]string, 0, len(addrs))
	var sick []string
	for _, a := range addrs {
		if h := cl.health[a]; h != nil && h.Fails > 0 {
			sick = append(sick, a)
			continue
		}
		out = append(out, a)
	}
	return append(out, sick...)
}

// snapshot returns the current map, failing when none is installed.
func (cl *Cluster) snapshot() (*cluster.Map, error) {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	if cl.closed {
		return nil, ErrClientClosed
	}
	if cl.m == nil {
		return nil, ErrNoShardMap
	}
	return cl.m, nil
}

// adopt installs the map encoded in blob if it is newer than the current
// one. A nil, unparseable, or stale blob is ignored — the redirect itself
// already says "refresh", and the retry loop's backoff covers the case
// where the server had nothing better to offer.
func (cl *Cluster) adopt(blob []byte) {
	if len(blob) == 0 {
		return
	}
	m, err := cluster.DecodeMap(blob)
	if err != nil {
		return
	}
	cl.mu.Lock()
	if !cl.closed && (cl.m == nil || m.Epoch > cl.m.Epoch) {
		cl.m, cl.blob = m, blob
	}
	cl.mu.Unlock()
}

// Refresh re-pulls the shard map from the current owners (any shard will
// do), adopting it if newer. Routing self-heals off redirects without it;
// Refresh exists for callers that want an up-to-date Map() view.
func (cl *Cluster) Refresh(ctx context.Context) error {
	m, err := cl.snapshot()
	if err != nil {
		return err
	}
	var lastErr error
	for _, addr := range cl.healthyFirst(shardAddrs(m)) {
		c, err := cl.client(addr)
		if err != nil {
			cl.noteResult(addr, err)
			lastErr = err
			continue
		}
		blob, err := c.ShardMap(ctx)
		cl.noteResult(addr, err)
		if err != nil {
			lastErr = err
			continue
		}
		cl.adopt(blob)
		return nil
	}
	return fmt.Errorf("client: refreshing shard map: %w", lastErr)
}

// withKey routes one point operation to key's owner, following redirects.
func (cl *Cluster) withKey(ctx context.Context, key uint64, op func(c *Client) error) error {
	backoff := clusterBackoffMin
	var lastErr error
	for attempt := 0; attempt < clusterAttempts; attempt++ {
		m, err := cl.snapshot()
		if err != nil {
			return err
		}
		addr := m.Owner(key).Addr
		c, err := cl.client(addr)
		if err != nil {
			cl.noteResult(addr, err)
			return err
		}
		err = op(c)
		cl.noteResult(addr, err)
		var ws *WrongShardError
		if !errors.As(err, &ws) {
			return err
		}
		// Redirected: adopt the attached map (when newer) and retry. The
		// backoff rides out a cutover's fail-closed window, where for a
		// moment no server owns the key.
		lastErr = err
		cl.adopt(ws.MapBlob)
		if serr := sleepCtx(ctx, backoff); serr != nil {
			return serr
		}
		if backoff *= 2; backoff > clusterBackoffMax {
			backoff = clusterBackoffMax
		}
	}
	return &RoutingError{Op: "point op", Attempts: clusterAttempts, Pending: 1, LastErr: lastErr}
}

// Ping round-trips on every shard's owner, failing on the first dead one.
func (cl *Cluster) Ping(ctx context.Context) error {
	m, err := cl.snapshot()
	if err != nil {
		return err
	}
	for _, addr := range shardAddrs(m) {
		c, err := cl.client(addr)
		if err != nil {
			return err
		}
		if err := c.Ping(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value stored under key and whether it exists.
func (cl *Cluster) Get(ctx context.Context, key uint64) (val uint64, found bool, err error) {
	err = cl.withKey(ctx, key, func(c *Client) error {
		var err error
		val, found, err = c.Get(ctx, key)
		return err
	})
	return val, found, err
}

// Insert stores or updates value under key on its owning shard.
func (cl *Cluster) Insert(ctx context.Context, key, value uint64) error {
	return cl.withKey(ctx, key, func(c *Client) error {
		return c.Insert(ctx, key, value)
	})
}

// Delete removes key from its owning shard, reporting whether it was
// present.
func (cl *Cluster) Delete(ctx context.Context, key uint64) (found bool, err error) {
	err = cl.withKey(ctx, key, func(c *Client) error {
		var err error
		found, err = c.Delete(ctx, key)
		return err
	})
	return found, err
}

// Len returns the total number of live keys across all shards. During a
// live handover the moving range exists on both source and target, so the
// sum can transiently over-count.
func (cl *Cluster) Len(ctx context.Context) (int, error) {
	m, err := cl.snapshot()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, addr := range shardAddrs(m) {
		c, err := cl.client(addr)
		if err != nil {
			return 0, err
		}
		n, err := c.Len(ctx)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// shardAddrs returns the map's addresses, deduplicated, in shard order.
func shardAddrs(m *cluster.Map) []string {
	seen := make(map[string]bool, len(m.Shards))
	addrs := make([]string, 0, len(m.Shards))
	for _, s := range m.Shards {
		if !seen[s.Addr] {
			seen[s.Addr] = true
			addrs = append(addrs, s.Addr)
		}
	}
	return addrs
}

// doSharded runs one batched operation over keys, split per owning shard
// and issued concurrently; op receives each group's client, the indexes of
// its keys in the original slice, and the keys themselves. Groups answered
// with StatusWrongShard are re-split against the refreshed map and retried;
// any other failure fails the whole call (sub-batches already applied stay
// applied — batches are amortization, not transactions, same as Client).
func (cl *Cluster) doSharded(ctx context.Context, keys []uint64, op func(c *Client, idxs []int, keys []uint64) error) error {
	pend := make([]int, len(keys))
	for i := range pend {
		pend[i] = i
	}
	backoff := clusterBackoffMin
	var lastErr error
	for attempt := 0; attempt < clusterAttempts && len(pend) > 0; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return err
			}
			if backoff *= 2; backoff > clusterBackoffMax {
				backoff = clusterBackoffMax
			}
		}
		m, err := cl.snapshot()
		if err != nil {
			return err
		}
		groups := make(map[string][]int)
		for _, i := range pend {
			addr := m.Owner(keys[i]).Addr
			groups[addr] = append(groups[addr], i)
		}
		var (
			wg         sync.WaitGroup
			mu         sync.Mutex
			redirected []int
			failErr    error
		)
		for addr, idxs := range groups {
			c, err := cl.client(addr)
			if err != nil {
				cl.noteResult(addr, err)
				return err
			}
			wg.Add(1)
			go func(c *Client, addr string, idxs []int) {
				defer wg.Done()
				gk := make([]uint64, len(idxs))
				for j, i := range idxs {
					gk[j] = keys[i]
				}
				err := op(c, idxs, gk)
				cl.noteResult(addr, err)
				var ws *WrongShardError
				switch {
				case err == nil:
				case errors.As(err, &ws):
					cl.adopt(ws.MapBlob)
					mu.Lock()
					redirected = append(redirected, idxs...)
					lastErr = err
					mu.Unlock()
				default:
					mu.Lock()
					if failErr == nil {
						failErr = err
					}
					mu.Unlock()
				}
			}(c, addr, idxs)
		}
		wg.Wait() //dytis:blocking-ok each group's op runs under the caller's ctx, so the join is bounded by it
		if failErr != nil {
			return failErr
		}
		pend = redirected
	}
	if len(pend) > 0 {
		return &RoutingError{Op: "batch", Attempts: clusterAttempts, Pending: len(pend), LastErr: lastErr}
	}
	return nil
}

// GetBatch looks up every key of keys across the cluster in one round trip
// per shard, returning parallel result slices in the input's order.
func (cl *Cluster) GetBatch(ctx context.Context, keys []uint64) (vals []uint64, found []bool, err error) {
	vals = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	err = cl.doSharded(ctx, keys, func(c *Client, idxs []int, gk []uint64) error {
		gv, gf, err := c.GetBatch(ctx, gk)
		if err != nil {
			return err
		}
		if len(gv) != len(idxs) || len(gf) != len(idxs) {
			return fmt.Errorf("client: shard answered %d/%d results for %d keys", len(gv), len(gf), len(idxs))
		}
		for j, i := range idxs {
			vals[i], found[i] = gv[j], gf[j]
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// InsertBatch stores vals[i] under keys[i] across the cluster, one batch
// per owning shard, issued concurrently.
func (cl *Cluster) InsertBatch(ctx context.Context, keys, vals []uint64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("client: InsertBatch keys/vals length mismatch (%d vs %d)", len(keys), len(vals))
	}
	return cl.doSharded(ctx, keys, func(c *Client, idxs []int, gk []uint64) error {
		gv := make([]uint64, len(idxs))
		for j, i := range idxs {
			gv[j] = vals[i]
		}
		return c.InsertBatch(ctx, gk, gv)
	})
}

// DeleteBatch removes every key of keys across the cluster, returning
// whether each was present, in the input's order.
func (cl *Cluster) DeleteBatch(ctx context.Context, keys []uint64) ([]bool, error) {
	found := make([]bool, len(keys))
	err := cl.doSharded(ctx, keys, func(c *Client, idxs []int, gk []uint64) error {
		gf, err := c.DeleteBatch(ctx, gk)
		if err != nil {
			return err
		}
		if len(gf) != len(idxs) {
			return fmt.Errorf("client: shard answered %d results for %d keys", len(gf), len(idxs))
		}
		for j, i := range idxs {
			found[i] = gf[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}

// ScanStream begins a scatter-gather scan: one pinned Scanner per shard
// whose range reaches start, merged in ascending key order (max <= 0 scans
// everything). Every per-shard stream is pinned to the map epoch the scan
// started under — if a handover cuts a range over mid-scan, the affected
// stream fails with ErrWrongShard instead of silently truncating, and the
// whole merge surfaces that error; re-issue the scan to retry against the
// new map (Scan does this automatically).
func (cl *Cluster) ScanStream(ctx context.Context, start uint64, max int) *MergeScanner {
	m, err := cl.snapshot()
	if err != nil {
		return failedMergeScanner(err)
	}
	var srcs []kvStream
	for _, s := range m.Shards {
		if s.Hi < start {
			continue
		}
		c, err := cl.client(s.Addr)
		if err != nil {
			for _, src := range srcs {
				src.Close()
			}
			return failedMergeScanner(err)
		}
		from := start
		if s.Lo > from {
			from = s.Lo
		}
		// Per-shard streams are unbounded; the merge applies the global max
		// and Close releases whatever the early stop left running.
		srcs = append(srcs, c.ScanStreamAt(ctx, from, 0, m.Epoch))
	}
	var budget uint64
	if max > 0 {
		budget = uint64(max)
	}
	return newMergeScanner(srcs, budget)
}

// Scan returns up to max pairs with key >= start across the whole cluster
// in ascending key order (max <= 0 scans everything), as parallel
// key/value slices. A scan interrupted by a shard-map change is retried
// from scratch against the new map.
func (cl *Cluster) Scan(ctx context.Context, start uint64, max int) (keys, vals []uint64, err error) {
	backoff := clusterBackoffMin
	var lastErr error
	for attempt := 0; attempt < clusterAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, nil, err
			}
			if backoff *= 2; backoff > clusterBackoffMax {
				backoff = clusterBackoffMax
			}
			if err := cl.Refresh(ctx); err != nil {
				lastErr = err
				continue
			}
		}
		keys, vals = keys[:0], vals[:0]
		s := cl.ScanStream(ctx, start, max)
		for s.Next() {
			keys = append(keys, s.Key())
			vals = append(vals, s.Value())
		}
		err := s.Err()
		s.Close()
		if err == nil {
			return keys, vals, nil
		}
		if !errors.Is(err, ErrWrongShard) {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, &RoutingError{Op: "scan", Attempts: clusterAttempts, LastErr: lastErr}
}

// Rebalance live-moves [lo, hi] (which must lie within one current shard)
// to the server at target, orchestrating the whole handover: start the
// copy on the source, poll it to completion, then install the successor
// map in cutover order — source first (de-own; fail closed), target next
// (grant), every other shard after (route). The moved range may extend a
// neighboring shard or populate a fresh, empty server.
func (cl *Cluster) Rebalance(ctx context.Context, lo, hi uint64, target string) error {
	m, err := cl.snapshot()
	if err != nil {
		return err
	}
	src := m.Owner(lo)
	if !src.Contains(hi) {
		return fmt.Errorf("client: rebalance range [%#x, %#x] spans shards (owner of lo is [%#x, %#x])", lo, hi, src.Lo, src.Hi)
	}
	if src.Addr == target {
		return fmt.Errorf("client: rebalance target %s already owns [%#x, %#x]", target, lo, hi)
	}
	next, err := m.Reassign(lo, hi, target)
	if err != nil {
		return err
	}

	srcClient, err := cl.client(src.Addr)
	if err != nil {
		return err
	}
	if err := srcClient.HandoverStart(ctx, lo, hi, target); err != nil {
		return fmt.Errorf("client: starting handover on %s: %w", src.Addr, err)
	}
	return cl.finishHandover(ctx, srcClient, src.Addr, target, next)
}

// ResumeRebalance picks up a rebalance whose handover suspended (or whose
// orchestrating client died before cutover): it reads the handover's range
// and target back from the source at src, resumes it if suspended, and
// carries it through cutover exactly as Rebalance would have. Safe to call
// while the handover is still live — it then just polls to cutover.
func (cl *Cluster) ResumeRebalance(ctx context.Context, src string) error {
	c, err := cl.client(src)
	if err != nil {
		return err
	}
	p, err := c.HandoverStatus(ctx)
	if err != nil {
		return fmt.Errorf("client: reading handover state on %s: %w", src, err)
	}
	if p.Target == "" || p.State == cluster.HandoverNone || p.State == cluster.HandoverDone {
		return fmt.Errorf("client: no resumable handover on %s (state %d)", src, p.State)
	}
	m, err := cl.snapshot()
	if err != nil {
		return err
	}
	next, err := m.Reassign(p.Lo, p.Hi, p.Target)
	if err != nil {
		return fmt.Errorf("client: rebuilding successor map for handover on %s: %w", src, err)
	}
	return cl.finishHandover(ctx, c, src, p.Target, next)
}

// AbortRebalance abandons the handover on src in whatever state it is,
// scrubbing the partial copy from its target. The shard map is untouched —
// src still owns the range.
func (cl *Cluster) AbortRebalance(ctx context.Context, src string) error {
	c, err := cl.client(src)
	if err != nil {
		return err
	}
	if err := c.HandoverAbort(ctx); err != nil {
		return fmt.Errorf("client: aborting handover on %s: %w", src, err)
	}
	return nil
}

// rebalanceResumes bounds how many times finishHandover will resume a
// suspending handover before giving up: transient faults heal in one or
// two, and a target that keeps killing the copy needs an operator, not an
// infinite loop. The resume backoff is its own, slower scale (up to
// resumeBackoffMax) — the fault being ridden out is a peer-link or target
// outage, not a cutover's millisecond fail-closed window.
const (
	rebalanceResumes = 8
	resumeBackoffMax = 500 * time.Millisecond
)

// finishHandover drives a started handover on srcAddr to completion:
// poll until the bulk copy lands, resuming (bounded) whenever the handover
// suspends, then install next in cutover order.
func (cl *Cluster) finishHandover(ctx context.Context, srcClient *Client, srcAddr, target string, next *cluster.Map) error {
	blob := next.Encode()
	resumes := 0
	backoff := clusterBackoffMin
cutover:
	for {
	poll:
		for {
			p, err := srcClient.HandoverStatus(ctx)
			if err != nil {
				return fmt.Errorf("client: polling handover on %s: %w", srcAddr, err)
			}
			switch p.State {
			case cluster.HandoverCopied:
				break poll
			case cluster.HandoverCopying:
				if err := sleepCtx(ctx, 5*time.Millisecond); err != nil {
					return err
				}
			case cluster.HandoverFailed:
				// Suspended: the source keeps its watermark and journals the
				// moving range's writes, so a resume continues rather than
				// recopies. Backoff gives the fault time to clear.
				if resumes >= rebalanceResumes {
					return fmt.Errorf("client: handover on %s still suspended after %d resumes (%d pairs copied)",
						srcAddr, resumes, p.Copied)
				}
				resumes++
				if err := sleepCtx(ctx, backoff); err != nil {
					return err
				}
				if backoff *= 2; backoff > resumeBackoffMax {
					backoff = resumeBackoffMax
				}
				if err := srcClient.HandoverResume(ctx); err != nil {
					// The target may still be down; the next round retries.
					continue
				}
			default:
				return fmt.Errorf("client: handover on %s entered state %d before cutover", srcAddr, p.State)
			}
		}

		// De-own the source. Its cutover probe re-verifies the target holds
		// the copy; a target lost since the copy finished suspends the
		// handover instead of de-owning, and the poll loop resumes it.
		err := cl.installMap(ctx, srcAddr, next, blob)
		if err == nil {
			break cutover
		}
		if p, serr := srcClient.HandoverStatus(ctx); serr == nil && p.State == cluster.HandoverFailed && resumes < rebalanceResumes {
			continue cutover
		}
		return err
	}

	// Rest of the cutover, in the lossless-by-construction order: the
	// source de-owned first above (its SetMap also commits the target's
	// import session and scrubs locally), so there is never a moment with
	// two owners — only a brief fail-closed window the routing retry rides
	// out. Then the target is granted, then the rest are informed.
	if err := cl.installMap(ctx, target, next, blob); err != nil {
		return err
	}
	for _, addr := range shardAddrs(next) {
		if addr == srcAddr || addr == target {
			continue
		}
		if err := cl.installMap(ctx, addr, next, blob); err != nil {
			return err
		}
	}
	cl.adopt(blob)
	return nil
}

// installMap pushes next onto the server at addr, declaring the range the
// map assigns that address (owns-nothing when the map leaves it out).
func (cl *Cluster) installMap(ctx context.Context, addr string, next *cluster.Map, blob []byte) error {
	selfLo, selfHi := uint64(1), uint64(0) // owns nothing unless the map says otherwise
	for _, s := range next.Shards {
		if s.Addr == addr {
			selfLo, selfHi = s.Lo, s.Hi
			break
		}
	}
	c, err := cl.client(addr)
	if err != nil {
		return err
	}
	if err := c.SetShardMap(ctx, selfLo, selfHi, blob); err != nil {
		return fmt.Errorf("client: installing map epoch %d on %s: %w", next.Epoch, addr, err)
	}
	return nil
}

// Protocol sanity: the router requires the v2 cluster feature on every
// connection it routes over; a shard server that stopped granting it would
// quarantine admin opcodes. This compile-time reference keeps the proto
// dependency explicit.
var _ = proto.FeatCluster
