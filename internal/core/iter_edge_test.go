package core

import "testing"

// TestIterEmptyIndex: Min/Max/Successor and cursors on an index with no
// keys, in both locking modes.
func TestIterEmptyIndex(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		if _, ok := d.Min(); ok {
			t.Fatal("Min on empty index returned a pair")
		}
		if _, ok := d.Max(); ok {
			t.Fatal("Max on empty index returned a pair")
		}
		for _, k := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
			if _, ok := d.Successor(k); ok {
				t.Fatalf("Successor(%#x) on empty index returned a pair", k)
			}
		}
		c := d.NewCursor(0)
		if _, ok := c.Next(); ok {
			t.Fatal("cursor on empty index yielded a pair")
		}
		d.ScanFunc(0, func(k, v uint64) bool {
			t.Fatal("ScanFunc on empty index yielded a pair")
			return false
		})
	})
}

// TestIterExtremeKeys: keys at the very edges of the key space, 0 and
// ^uint64(0), flow through every iteration surface.
func TestIterExtremeKeys(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		maxK := ^uint64(0)
		d.Insert(0, 100)
		d.Insert(maxK, 200)
		d.Insert(1<<40, 300)

		if p, ok := d.Min(); !ok || p.Key != 0 || p.Value != 100 {
			t.Fatalf("Min = %+v, %v; want key 0", p, ok)
		}
		if p, ok := d.Max(); !ok || p.Key != maxK || p.Value != 200 {
			t.Fatalf("Max = %+v, %v; want key MaxUint64", p, ok)
		}
		if p, ok := d.Successor(0); !ok || p.Key != 0 {
			t.Fatalf("Successor(0) = %+v; must include key 0", p)
		}
		if p, ok := d.Successor(maxK); !ok || p.Key != maxK {
			t.Fatalf("Successor(MaxUint64) = %+v; must include the max key", p)
		}

		// A full cursor traversal sees all three, in order, and terminates
		// without wrapping past MaxUint64.
		c := d.NewCursor(0)
		wantKeys := []uint64{0, 1 << 40, maxK}
		for i, w := range wantKeys {
			p, ok := c.Next()
			if !ok || p.Key != w {
				t.Fatalf("cursor[%d] = %+v, %v; want key %#x", i, p, ok, w)
			}
		}
		if _, ok := c.Next(); ok {
			t.Fatal("cursor wrapped past MaxUint64")
		}

		// Range spanning the whole key space is inclusive at both edges.
		var got []uint64
		d.Range(0, maxK, func(k, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 3 || got[0] != 0 || got[2] != maxK {
			t.Fatalf("Range(0, MaxUint64) = %#x, want all three keys", got)
		}

		// Deleting the extremes keeps the middle reachable.
		d.Delete(0)
		d.Delete(maxK)
		if p, ok := d.Min(); !ok || p.Key != 1<<40 {
			t.Fatalf("Min after deleting extremes = %+v", p)
		}
		if p, ok := d.Max(); !ok || p.Key != 1<<40 {
			t.Fatalf("Max after deleting extremes = %+v", p)
		}
	})
}

// TestCursorSeekBackwardAfterExhaustion: a cursor that has returned ok=false
// must come back to life when Seek'd to an earlier position.
func TestCursorSeekBackwardAfterExhaustion(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		d := New(opts)
		for i := uint64(0); i < 500; i++ {
			d.Insert(i*10, i)
		}
		c := d.NewCursor(4000)
		n := 0
		for {
			if _, ok := c.Next(); !ok {
				break
			}
			n++
		}
		if n != 100 {
			t.Fatalf("tail traversal saw %d pairs, want 100", n)
		}
		if _, ok := c.Next(); ok {
			t.Fatal("exhausted cursor yielded a pair")
		}

		// Seek backwards: the cursor must clear its done state and buffer.
		c.Seek(100)
		p, ok := c.Next()
		if !ok || p.Key != 100 {
			t.Fatalf("after backward Seek(100): %+v, %v; want key 100", p, ok)
		}
		rest := 1
		for {
			if _, ok := c.Next(); !ok {
				break
			}
			rest++
		}
		if rest != 490 {
			t.Fatalf("after backward seek saw %d pairs, want 490", rest)
		}

		// Seek to before the smallest key after exhausting again.
		c.Seek(0)
		if p, ok := c.Next(); !ok || p.Key != 0 {
			t.Fatalf("after Seek(0): %+v, %v; want key 0", p, ok)
		}
	})
}
