package ehash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	h := New(8) // tiny buckets to force many splits
	const n = 10000
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i*3)
	}
	if h.Len() != n {
		t.Fatalf("Len=%d want %d", h.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := h.Get(i)
		if !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := h.Get(n + 5); ok {
		t.Fatal("found key that was never inserted")
	}
}

func TestUpdateInPlace(t *testing.T) {
	h := New(0)
	h.Insert(42, 1)
	h.Insert(42, 2)
	if h.Len() != 1 {
		t.Fatalf("Len=%d want 1", h.Len())
	}
	if v, _ := h.Get(42); v != 2 {
		t.Fatalf("value=%d want 2", v)
	}
}

func TestDelete(t *testing.T) {
	h := New(16)
	for i := uint64(0); i < 1000; i++ {
		h.Insert(i, i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !h.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if h.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if h.Len() != 500 {
		t.Fatalf("Len=%d want 500", h.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok := h.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v want %v", i, ok, want)
		}
	}
}

func TestDirectoryGrows(t *testing.T) {
	h := New(4)
	for i := uint64(0); i < 4096; i++ {
		h.Insert(i, i)
	}
	if h.GlobalDepth() < 8 {
		t.Fatalf("global depth %d suspiciously small for 4096 keys / 4-entry buckets", h.GlobalDepth())
	}
	if h.DirSize() != 1<<h.GlobalDepth() {
		t.Fatalf("dir size %d != 2^GD %d", h.DirSize(), 1<<h.GlobalDepth())
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		m := Mix64(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %x", prev, i, m)
		}
		seen[m] = i
	}
}

func TestAdversarialSequentialAndClustered(t *testing.T) {
	// Sequential keys and dense clusters are spread by the hash.
	h := New(32)
	base := uint64(1) << 60
	for c := 0; c < 50; c++ {
		for i := uint64(0); i < 200; i++ {
			h.Insert(base+uint64(c)*7+i<<3, i)
		}
	}
	if h.Len() == 0 {
		t.Fatal("no keys")
	}
}

func TestQuickMatchesMap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(8)
		ref := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			k := uint64(rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64()
				h.Insert(k, v)
				ref[k] = v
			case 2:
				_, inRef := ref[k]
				if h.Delete(k) != inRef {
					return false
				}
				delete(ref, k)
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := h.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
