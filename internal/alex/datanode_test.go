package alex

import (
	"math/rand"
	"testing"
)

func TestNewDataNodeSpreadsKeys(t *testing.T) {
	keys := make([]uint64, 100)
	vals := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i) * 1000
		vals[i] = uint64(i)
	}
	d := newDataNode(keys, vals, 200)
	if d.num != 100 {
		t.Fatalf("num=%d", d.num)
	}
	// The gapped array must be non-decreasing including fills.
	for i := 1; i < d.cap(); i++ {
		if d.keys[i] < d.keys[i-1] {
			t.Fatalf("keys not sorted at slot %d", i)
		}
	}
	// Roughly model-spread: the first key should not be at the very end.
	if i, ok := d.find(0); !ok || i > 50 {
		t.Fatalf("first key at slot %d", i)
	}
}

func TestLowerBoundSlotEdges(t *testing.T) {
	keys := []uint64{10, 20, 30}
	d := newDataNode(keys, []uint64{1, 2, 3}, 16)
	if i := d.lowerBoundSlot(0); d.keys[i] != 10 {
		t.Fatalf("lowerBound(0) -> slot %d key %d", i, d.keys[i])
	}
	if i := d.lowerBoundSlot(31); i < d.cap() && d.keys[i] != gapSentinel {
		// must point past the last real key
		if d.occupied(i) && d.keys[i] <= 30 {
			t.Fatalf("lowerBound(31) -> slot %d key %d", i, d.keys[i])
		}
	}
	// Exact hits.
	for _, k := range keys {
		if i, ok := d.find(k); !ok || d.keys[i] != k {
			t.Fatalf("find(%d) failed", k)
		}
	}
}

func TestInsertIntoTrailingGapRegion(t *testing.T) {
	d := newDataNode([]uint64{1, 2, 3}, []uint64{1, 2, 3}, 32)
	// Keys larger than everything land in the trailing sentinel region.
	for k := uint64(100); k < 110; k++ {
		if !d.insert(k, k) {
			t.Fatalf("insert(%d) reported duplicate", k)
		}
	}
	for k := uint64(100); k < 110; k++ {
		if _, ok := d.find(k); !ok {
			t.Fatalf("find(%d) after trailing insert", k)
		}
	}
}

func TestShiftPathsBothDirections(t *testing.T) {
	// Force a nearly-full node so inserts must shift toward distant gaps.
	keys := make([]uint64, 0, 24)
	for i := 0; i < 24; i++ {
		keys = append(keys, uint64(i)*10)
	}
	d := newDataNode(keys, keys, 32)
	rng := rand.New(rand.NewSource(3))
	for tries := 0; tries < 6 && d.num < 30; tries++ {
		k := uint64(rng.Intn(240))
		if _, ok := d.find(k); ok {
			continue
		}
		d.insert(k, k)
		for i := 1; i < d.cap(); i++ {
			if d.keys[i] < d.keys[i-1] {
				t.Fatalf("order violated after insert(%d)", k)
			}
		}
	}
}

func TestRemoveUpdatesFills(t *testing.T) {
	d := newDataNode([]uint64{5, 10, 15}, []uint64{1, 2, 3}, 16)
	if !d.remove(10) {
		t.Fatal("remove(10)")
	}
	if _, ok := d.find(10); ok {
		t.Fatal("10 still findable")
	}
	for i := 1; i < d.cap(); i++ {
		if d.keys[i] < d.keys[i-1] {
			t.Fatalf("fill invariant broken at %d", i)
		}
	}
	// Neighbors unaffected.
	if _, ok := d.find(5); !ok {
		t.Fatal("5 lost")
	}
	if _, ok := d.find(15); !ok {
		t.Fatal("15 lost")
	}
}

func TestNodeLoadRetrainsModel(t *testing.T) {
	d := newDataNode(nil, nil, 16)
	keys := make([]uint64, 10)
	vals := make([]uint64, 10)
	for i := range keys {
		keys[i] = uint64(i) << 40
		vals[i] = uint64(i)
	}
	d.load(keys, vals)
	// A retrained model should predict within a couple of slots.
	for i, k := range keys {
		p := d.model.PredictClamped(k, d.cap())
		j, ok := d.find(k)
		if !ok || d.vals[j] != vals[i] {
			t.Fatalf("find(%#x) after load", k)
		}
		if abs(p-j) > d.cap()/2 {
			t.Fatalf("model way off for %#x: predict %d actual %d", k, p, j)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestStatsShapeCounters(t *testing.T) {
	x := New()
	for i := uint64(0); i < 100000; i++ {
		x.Insert(i, i)
	}
	st := x.Stats()
	if st.Expands == 0 {
		t.Fatalf("no expansions recorded: %+v", st)
	}
	if st.MaxDepth < 1 {
		t.Fatalf("depth %d", st.MaxDepth)
	}
	if st.DataNodes < 1 {
		t.Fatalf("data nodes %d", st.DataNodes)
	}
}
