package lathist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestSingleValue(t *testing.T) {
	var h Hist
	h.Record(1500 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Mean() != 1500 {
		t.Fatalf("mean=%v", h.Mean())
	}
	if h.Min() != 1500 || h.Max() != 1500 {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	q := h.Quantile(0.5)
	if q > 1500 || q < 1500*31/32 {
		t.Fatalf("q50=%v not within bucket of 1500", q)
	}
}

func TestSmallValuesExact(t *testing.T) {
	// Values below subCount land in exact unit buckets.
	var h Hist
	for v := 0; v < 32; v++ {
		h.Record(time.Duration(v))
	}
	if h.Quantile(0) != 0 {
		t.Fatalf("q0=%v", h.Quantile(0))
	}
	if h.Quantile(0.999) != 31 {
		t.Fatalf("q99.9=%v want 31", h.Quantile(0.999))
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	for b := 0; b < nBuckets; b++ {
		lb := lowerBound(b)
		if got := bucketOf(lb); got != b {
			t.Fatalf("bucketOf(lowerBound(%d)=%d) = %d", b, lb, got)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(100 + i))
		b.Record(time.Duration(100000 + i))
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count=%d", a.Count())
	}
	if a.Min() != 100 {
		t.Fatalf("min=%v", a.Min())
	}
	if a.Max() < 100000 {
		t.Fatalf("max=%v", a.Max())
	}
	if a.Quantile(0.25) > 250 {
		t.Fatalf("q25=%v should be from the low half", a.Quantile(0.25))
	}
	if a.Quantile(0.75) < 90000 {
		t.Fatalf("q75=%v should be from the high half", a.Quantile(0.75))
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Hist
	b.Record(7)
	a.Merge(&b)
	if a.Min() != 7 || a.Count() != 1 {
		t.Fatalf("merge into empty: min=%v n=%d", a.Min(), a.Count())
	}
}

func TestReset(t *testing.T) {
	var h Hist
	h.Record(123456)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	var h Hist
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative duration should clamp to 0, min=%v", h.Min())
	}
}

// Property: histogram quantiles are within ~3.2% (one sub-bucket) of exact
// sample quantiles.
func TestQuickQuantileAccuracy(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(2000)
		var h Hist
		vals := make([]uint64, n)
		for i := range vals {
			v := uint64(rng.Intn(1_000_000) + 1)
			vals[i] = v
			h.Record(time.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := vals[int(q*float64(n))]
			got := uint64(h.Quantile(q))
			// Bucket lower bound: got <= exact and within one sub-bucket.
			if got > exact {
				return false
			}
			if float64(exact-got) > float64(exact)/float64(subCount)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordNMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var batched, looped Hist
	var ab AtomicHist
	for i := 0; i < 200; i++ {
		d := time.Duration(rng.Intn(1 << 20))
		n := 1 + rng.Intn(50)
		batched.RecordN(d, n)
		ab.RecordN(d, n)
		for j := 0; j < n; j++ {
			looped.Record(d)
		}
	}
	var fromAtomic Hist
	ab.AddTo(&fromAtomic)
	for _, pair := range []struct {
		name string
		h    *Hist
	}{{"Hist.RecordN", &batched}, {"AtomicHist.RecordN", &fromAtomic}} {
		h := pair.h
		if h.Count() != looped.Count() || h.Sum() != looped.Sum() ||
			h.Min() != looped.Min() || h.Max() != looped.Max() {
			t.Fatalf("%s: count/sum/min/max %d/%d/%v/%v, loop %d/%d/%v/%v",
				pair.name, h.Count(), h.Sum(), h.Min(), h.Max(),
				looped.Count(), looped.Sum(), looped.Min(), looped.Max())
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if h.Quantile(q) != looped.Quantile(q) {
				t.Fatalf("%s: q%v = %v, loop %v", pair.name, q, h.Quantile(q), looped.Quantile(q))
			}
		}
	}
}

func TestRecordNZeroAndNegative(t *testing.T) {
	var h Hist
	var ah AtomicHist
	h.RecordN(time.Microsecond, 0)
	ah.RecordN(time.Microsecond, -1)
	var fromAtomic Hist
	ah.AddTo(&fromAtomic)
	if h.Count() != 0 || fromAtomic.Count() != 0 {
		t.Fatalf("RecordN with n<=0 recorded something: %d/%d", h.Count(), fromAtomic.Count())
	}
}
