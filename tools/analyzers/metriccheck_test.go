package analyzers

import "testing"

func TestMetricCheckClean(t *testing.T) {
	runAnalyzerTest(t, MetricCheck, "metricgood")
}

func TestMetricCheckViolations(t *testing.T) {
	runAnalyzerTest(t, MetricCheck, "metricbad")
}

func TestMetricCheckCrossPackageDuplicate(t *testing.T) {
	runAnalyzerTest(t, MetricCheck, "metricdup")
}
