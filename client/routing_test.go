package client

// Unit tests for the router's typed failure surface: RoutingError /
// ErrRouting, ScanInterruptedError / ErrScanInterrupted, and the
// per-endpoint health streaks behind Cluster.Health.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
)

func TestRoutingErrorTyped(t *testing.T) {
	cause := errors.New("map churning")
	err := error(&RoutingError{Op: "point op", Attempts: 8, Pending: 1, LastErr: cause})
	if !errors.Is(err, ErrRouting) {
		t.Fatal("RoutingError does not match ErrRouting")
	}
	if !errors.Is(err, cause) {
		t.Fatal("RoutingError does not unwrap to its cause")
	}
	var re *RoutingError
	if !errors.As(err, &re) || re.Attempts != 8 || re.Pending != 1 {
		t.Fatalf("errors.As recovered %+v", re)
	}
	if msg := err.Error(); !strings.Contains(msg, "8 attempts") {
		t.Fatalf("message %q does not name the attempt count", msg)
	}
	batch := error(&RoutingError{Op: "batch", Attempts: 8, Pending: 42, LastErr: cause})
	if msg := batch.Error(); !strings.Contains(msg, "42 keys") {
		t.Fatalf("batch message %q does not name the pending count", msg)
	}
	// A routing failure is not a data error and must not match other
	// sentinels.
	if errors.Is(err, ErrWrongShard) || errors.Is(err, ErrOverload) {
		t.Fatal("RoutingError matches an unrelated sentinel")
	}
}

func TestScanInterruptedErrorTyped(t *testing.T) {
	cause := errors.New("conn reset")
	err := error(&ScanInterruptedError{Source: 2, Err: cause})
	if !errors.Is(err, ErrScanInterrupted) {
		t.Fatal("ScanInterruptedError does not match ErrScanInterrupted")
	}
	if !errors.Is(err, cause) {
		t.Fatal("ScanInterruptedError does not unwrap to its cause")
	}
	var se *ScanInterruptedError
	if !errors.As(err, &se) || se.Source != 2 {
		t.Fatalf("errors.As recovered %+v", se)
	}
}

func TestEndpointHealthStreaks(t *testing.T) {
	cl := &Cluster{
		clients: make(map[string]*Client),
		health:  make(map[string]*EndpointHealth),
	}
	boom := errors.New("dial tcp: connection refused")

	// Transport failures accumulate; a success resets the streak.
	cl.noteResult("a", boom)
	cl.noteResult("a", boom)
	cl.noteResult("b", nil)
	h := healthByAddr(cl.Health())
	if h["a"].Fails != 2 || !errors.Is(h["a"].LastErr, boom) {
		t.Fatalf("a after two failures: %+v", h["a"])
	}
	if _, ok := h["b"]; ok {
		t.Fatal("an endpoint that only ever succeeded grew a health entry")
	}
	cl.noteResult("a", nil)
	if h = healthByAddr(cl.Health()); h["a"].Fails != 0 || h["a"].LastErr != nil {
		t.Fatalf("a after success: %+v", h["a"])
	}

	// Answered errors — redirects and overload sheds — prove the endpoint
	// is alive and reset the streak too.
	cl.noteResult("a", boom)
	cl.noteResult("a", &WrongShardError{Msg: "moved"})
	if h = healthByAddr(cl.Health()); h["a"].Fails != 0 {
		t.Fatalf("a after redirect: %+v", h["a"])
	}
	cl.noteResult("a", boom)
	cl.noteResult("a", &OverloadError{})
	if h = healthByAddr(cl.Health()); h["a"].Fails != 0 {
		t.Fatalf("a after overload shed: %+v", h["a"])
	}

	// A caller-canceled context says nothing about the endpoint.
	cl.noteResult("a", boom)
	cl.noteResult("a", context.Canceled)
	if h = healthByAddr(cl.Health()); h["a"].Fails != 1 {
		t.Fatalf("a after caller cancel: %+v", h["a"])
	}

	// healthyFirst keeps relative order within each class.
	cl.noteResult("c", net.ErrClosed)
	got := cl.healthyFirst([]string{"a", "b", "c", "d"})
	want := []string{"b", "d", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("healthyFirst = %v, want %v", got, want)
		}
	}
}

func healthByAddr(hs []EndpointHealth) map[string]EndpointHealth {
	m := make(map[string]EndpointHealth, len(hs))
	for _, h := range hs {
		m[h.Addr] = h
	}
	return m
}
