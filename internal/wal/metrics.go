package wal

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics collects durability-side observability: append/fsync volume and
// latency, checkpoint cadence and cost, and what the last recovery had to do.
// All methods are safe for concurrent use; the zero value is ready. Pass one
// instance in Options and serve it next to the index observer and server
// metrics on the same /metrics endpoint (cmd/dytis-server does).
type Metrics struct {
	//dytis:series dytis_wal_appends_total
	appends atomic.Int64 // records appended (batch split counts each record)
	//dytis:series dytis_wal_bytes_total
	bytes atomic.Int64 // framed bytes appended
	//dytis:series dytis_wal_fsyncs_total
	fsyncs atomic.Int64 // fsync calls on the active segment
	//dytis:series dytis_wal_fsync_nanoseconds_total
	fsyncNS atomic.Int64 // time spent in those fsyncs
	//dytis:series dytis_wal_rotations_total
	rotations atomic.Int64 // segment rotations
	//dytis:series dytis_wal_active_segment
	activeSegment atomic.Int64 // sequence number of the segment taking appends

	//dytis:series dytis_wal_checkpoints_total
	checkpoints atomic.Int64 // checkpoints committed
	//dytis:series dytis_wal_checkpoint_nanoseconds_total
	checkpointNS atomic.Int64 // time spent writing committed checkpoints
	//dytis:series dytis_wal_checkpoint_failures_total
	checkpointFails atomic.Int64 // checkpoint attempts that failed (store keeps serving)

	// Recovery facts from the most recent Open on this Metrics instance.

	//dytis:series dytis_wal_recovery_replayed_records
	replayedRecords atomic.Int64 // records replayed by the last recovery
	//dytis:series dytis_wal_recovery_torn_tails_total
	tornTails atomic.Int64 // torn tails discarded across recoveries
	//dytis:series dytis_wal_recovery_nanoseconds
	recoveryNS atomic.Int64 // wall time of the last recovery
}

func (m *Metrics) fsync(ns int64) {
	m.fsyncs.Add(1)
	m.fsyncNS.Add(ns)
}

// Appends returns the number of records appended.
func (m *Metrics) Appends() int64 { return m.appends.Load() }

// Bytes returns the number of framed bytes appended.
func (m *Metrics) Bytes() int64 { return m.bytes.Load() }

// Fsyncs returns the number of fsync calls issued on the active segment.
func (m *Metrics) Fsyncs() int64 { return m.fsyncs.Load() }

// Rotations returns the number of segment rotations.
func (m *Metrics) Rotations() int64 { return m.rotations.Load() }

// ActiveSegment returns the sequence number of the segment taking appends.
func (m *Metrics) ActiveSegment() int64 { return m.activeSegment.Load() }

// Checkpoints returns the number of committed checkpoints.
func (m *Metrics) Checkpoints() int64 { return m.checkpoints.Load() }

// CheckpointFailures returns the number of failed checkpoint attempts.
func (m *Metrics) CheckpointFailures() int64 { return m.checkpointFails.Load() }

// ReplayedRecords returns how many records the last recovery replayed.
func (m *Metrics) ReplayedRecords() int64 { return m.replayedRecords.Load() }

// TornTails returns how many torn segment tails recoveries have discarded.
func (m *Metrics) TornTails() int64 { return m.tornTails.Load() }

// Every series this exporter registers must appear in the metric tables of
// the listed docs; metriccheck enforces it.
//
//dytis:metric-docs ../../README.md ../../DESIGN.md

// WritePrometheus writes the WAL metrics in the Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	series := []struct {
		name, typ, help string
		v               int64
	}{
		{"dytis_wal_appends_total", "counter", "WAL records appended (split batch records counted individually).", m.appends.Load()},
		{"dytis_wal_bytes_total", "counter", "Framed bytes appended to the WAL.", m.bytes.Load()},
		{"dytis_wal_fsyncs_total", "counter", "fsync calls issued on the active WAL segment.", m.fsyncs.Load()},
		{"dytis_wal_fsync_nanoseconds_total", "counter", "Time spent in WAL segment fsyncs.", m.fsyncNS.Load()},
		{"dytis_wal_rotations_total", "counter", "WAL segment rotations.", m.rotations.Load()},
		{"dytis_wal_active_segment", "gauge", "Sequence number of the WAL segment taking appends.", m.activeSegment.Load()},
		{"dytis_wal_checkpoints_total", "counter", "Checkpoints committed.", m.checkpoints.Load()},
		{"dytis_wal_checkpoint_nanoseconds_total", "counter", "Time spent writing committed checkpoints.", m.checkpointNS.Load()},
		{"dytis_wal_checkpoint_failures_total", "counter", "Checkpoint attempts that failed (the store keeps serving on the old checkpoint).", m.checkpointFails.Load()},
		{"dytis_wal_recovery_replayed_records", "gauge", "Records the most recent recovery replayed.", m.replayedRecords.Load()},
		{"dytis_wal_recovery_torn_tails_total", "counter", "Torn segment tails discarded by recovery.", m.tornTails.Load()},
		{"dytis_wal_recovery_nanoseconds", "gauge", "Wall time of the most recent recovery.", m.recoveryNS.Load()},
	}
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.v)
	}
}
