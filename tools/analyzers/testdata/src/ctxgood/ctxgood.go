// Package ctxgood is context-aware code that always bounds its waits:
// ctxcheck must accept it without diagnostics.
package ctxgood

//dytis:ctxcheck

import (
	"context"
	"net"
	"time"
)

// waitGuarded blocks only as long as the ctx allows.
func waitGuarded(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// sleepCtx sleeps via a timer select instead of time.Sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// trySend never blocks: the select has a default case.
func trySend(ctx context.Context, ch chan int) bool {
	_ = ctx
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// annotated waives the check with a reason.
func annotated(ctx context.Context, ch chan int) int {
	_ = ctx
	return <-ch //dytis:blocking-ok the channel is buffered and pre-filled by the caller
}

// writeArmed arms a write deadline before touching the socket.
func writeArmed(ctx context.Context, nc net.Conn, b []byte) error {
	dl, ok := ctx.Deadline()
	if !ok {
		dl = time.Now().Add(time.Second)
	}
	nc.SetWriteDeadline(dl)
	_, err := nc.Write(b)
	return err
}

// plain has no context in scope, so it may block freely.
func plain(ch chan int) int {
	return <-ch
}

var (
	_ = waitGuarded
	_ = sleepCtx
	_ = trySend
	_ = annotated
	_ = writeArmed
	_ = plain
)
