package cceh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	h := New()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		h.Insert(i, i^0xdead)
	}
	if h.Len() != n {
		t.Fatalf("Len=%d want %d", h.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := h.Get(i)
		if !ok || v != i^0xdead {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := h.Get(n + 99); ok {
		t.Fatal("phantom key")
	}
}

func TestUpdateInPlace(t *testing.T) {
	h := New()
	h.Insert(7, 1)
	h.Insert(7, 9)
	if h.Len() != 1 {
		t.Fatalf("Len=%d", h.Len())
	}
	if v, _ := h.Get(7); v != 9 {
		t.Fatalf("v=%d", v)
	}
}

func TestDelete(t *testing.T) {
	h := New()
	for i := uint64(0); i < 20000; i++ {
		h.Insert(i, i)
	}
	for i := uint64(0); i < 20000; i += 3 {
		if !h.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
		if h.Delete(i) {
			t.Fatalf("double delete of %d", i)
		}
	}
	for i := uint64(0); i < 20000; i++ {
		_, ok := h.Get(i)
		if want := i%3 != 0; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
}

func TestSegmentSplitsAndDirectoryDoubles(t *testing.T) {
	h := New()
	gd0 := h.GlobalDepth()
	// A segment holds at most 2^SegmentBits * BucketSlots entries; well
	// before that, probe windows overflow and segments split.
	for i := uint64(0); i < 1<<SegmentBits*BucketSlots*8; i++ {
		h.Insert(i*2654435761, i)
	}
	if h.GlobalDepth() <= gd0 {
		t.Fatalf("directory never doubled: gd=%d", h.GlobalDepth())
	}
}

func TestKeyHashingToZeroPseudoKey(t *testing.T) {
	// pk==0 must be storable; occupancy is tracked by count, not sentinel.
	h := New()
	h.Insert(0, 123)
	if v, ok := h.Get(0); !ok || v != 123 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
}

func TestQuickMatchesMap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New()
		ref := map[uint64]uint64{}
		for op := 0; op < 4000; op++ {
			k := rng.Uint64() % 800
			switch rng.Intn(4) {
			case 0, 1, 2:
				v := rng.Uint64()
				h.Insert(k, v)
				ref[k] = v
			case 3:
				_, inRef := ref[k]
				if h.Delete(k) != inRef {
					return false
				}
				delete(ref, k)
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := h.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
