package dytis_test

import (
	"fmt"

	"dytis"
)

// The zero-config index supports point operations and ordered scans with no
// training phase.
func Example() {
	idx := dytis.New()
	for i := uint64(0); i < 100; i++ {
		idx.Insert(i*7, i)
	}
	v, ok := idx.Get(21)
	fmt.Println(v, ok)
	for _, p := range idx.Scan(10, 3, nil) {
		fmt.Println(p.Key)
	}
	// Output:
	// 3 true
	// 14
	// 21
	// 28
}

// Functional options configure the index; WithObserver attaches live
// observability (latency histograms, structure events, HTTP exporter).
func ExampleNew() {
	ob := dytis.NewObserver()
	idx := dytis.New(dytis.WithConcurrent(), dytis.WithObserver(ob))
	for i := uint64(0); i < 1000; i++ {
		idx.Insert(i, i)
	}
	idx.Get(500)
	fmt.Println(ob.OpHist(dytis.OpInsert).Count(), ob.OpHist(dytis.OpGet).Count())
	// Output: 1000 1
}

// ScanFunc visits pairs in key order with no intermediate buffer.
func ExampleIndex_ScanFunc() {
	idx := dytis.New()
	for i := uint64(0); i < 10; i++ {
		idx.Insert(i*10, i)
	}
	idx.ScanFunc(25, func(k, v uint64) bool {
		fmt.Println(k, v)
		return k < 40
	})
	// Output:
	// 30 3
	// 40 4
}

func ExampleIndex_Range() {
	idx := dytis.New()
	for i := uint64(0); i < 10; i++ {
		idx.Insert(i, i*i)
	}
	sum := uint64(0)
	idx.Range(3, 5, func(k, v uint64) bool {
		sum += v
		return true
	})
	fmt.Println(sum) // 9 + 16 + 25
	// Output: 50
}

func ExampleIndex_NewCursor() {
	idx := dytis.New()
	idx.Insert(30, 3)
	idx.Insert(10, 1)
	idx.Insert(20, 2)
	c := idx.NewCursor(15)
	for {
		p, ok := c.Next()
		if !ok {
			break
		}
		fmt.Println(p.Key, p.Value)
	}
	// Output:
	// 20 2
	// 30 3
}

func ExampleIndex_LoadSorted() {
	idx := dytis.New()
	keys := []uint64{2, 3, 5, 7, 11}
	vals := []uint64{1, 2, 3, 4, 5}
	idx.LoadSorted(keys, vals)
	fmt.Println(idx.Len())
	v, _ := idx.Get(7)
	fmt.Println(v)
	// Output:
	// 5
	// 4
}
