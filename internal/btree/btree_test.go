package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dytis/internal/kv"
)

func TestInsertGetSequential(t *testing.T) {
	b := New(8) // small order to exercise splits
	const n = 20000
	for i := uint64(0); i < n; i++ {
		b.Insert(i, i*2)
	}
	if b.Len() != n {
		t.Fatalf("Len=%d want %d", b.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := b.Get(i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d)=%d,%v", i, v, ok)
		}
	}
}

func TestInsertGetReverseAndRandom(t *testing.T) {
	b := New(6)
	for i := 5000; i > 0; i-- {
		b.Insert(uint64(i), uint64(i))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := rng.Uint64()
		b.Insert(k, k+1)
		if v, ok := b.Get(k); !ok || v != k+1 {
			t.Fatalf("immediate Get(%d) failed", k)
		}
	}
}

func TestUpdateInPlace(t *testing.T) {
	b := New(0)
	b.Insert(10, 1)
	b.Insert(10, 2)
	if b.Len() != 1 {
		t.Fatalf("Len=%d", b.Len())
	}
	if v, _ := b.Get(10); v != 2 {
		t.Fatalf("v=%d", v)
	}
}

func TestScan(t *testing.T) {
	b := New(7)
	for i := uint64(0); i < 1000; i++ {
		b.Insert(i*10, i)
	}
	got := b.Scan(95, 20, nil)
	if len(got) != 20 {
		t.Fatalf("scan returned %d", len(got))
	}
	if got[0].Key != 100 {
		t.Fatalf("first key %d want 100", got[0].Key)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key <= got[i-1].Key {
			t.Fatal("scan not ascending")
		}
	}
	// Scan past the end.
	tail := b.Scan(9990, 100, nil)
	if len(tail) != 1 || tail[0].Key != 9990 {
		t.Fatalf("tail scan: %v", tail)
	}
	if r := b.Scan(1_000_000, 10, nil); len(r) != 0 {
		t.Fatalf("scan beyond max returned %d", len(r))
	}
}

func TestScanEmptyTree(t *testing.T) {
	b := New(0)
	if r := b.Scan(0, 10, nil); len(r) != 0 {
		t.Fatal("scan of empty tree returned results")
	}
}

func TestDeleteWithRebalance(t *testing.T) {
	b := New(6)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		b.Insert(i, i)
	}
	// Delete everything in an order that forces borrows and merges.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for _, p := range perm {
		if !b.Delete(uint64(p)) {
			t.Fatalf("Delete(%d) missed", p)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len=%d want 0", b.Len())
	}
	if b.Height() != 1 {
		t.Fatalf("height=%d want 1 after draining", b.Height())
	}
	// Tree still usable.
	b.Insert(1, 1)
	if v, ok := b.Get(1); !ok || v != 1 {
		t.Fatal("tree unusable after drain")
	}
}

func TestDeleteMissing(t *testing.T) {
	b := New(0)
	b.Insert(5, 5)
	if b.Delete(6) {
		t.Fatal("deleted missing key")
	}
	if b.Len() != 1 {
		t.Fatal("len changed")
	}
}

func TestBulkLoad(t *testing.T) {
	b := New(8)
	var keys, vals []uint64
	for i := uint64(0); i < 10000; i++ {
		keys = append(keys, i*3)
		vals = append(vals, i)
	}
	b.BulkLoad(keys, vals)
	if b.Len() != 10000 {
		t.Fatalf("Len=%d", b.Len())
	}
	for i, k := range keys {
		if v, ok := b.Get(k); !ok || v != vals[i] {
			t.Fatalf("Get(%d) after bulk load", k)
		}
	}
	got := b.Scan(0, len(keys), nil)
	if len(got) != len(keys) {
		t.Fatalf("full scan %d want %d", len(got), len(keys))
	}
	// Inserts after bulk load keep working.
	b.Insert(1, 77)
	if v, ok := b.Get(1); !ok || v != 77 {
		t.Fatal("insert after bulk load failed")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	b := New(0)
	b.BulkLoad(nil, nil)
	if b.Len() != 0 {
		t.Fatal("non-zero len")
	}
	b.Insert(1, 1)
	if _, ok := b.Get(1); !ok {
		t.Fatal("unusable after empty bulk load")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	b := New(128)
	for i := uint64(0); i < 200000; i++ {
		b.Insert(i, i)
	}
	if h := b.Height(); h > 4 {
		t.Fatalf("height %d too large for 200k keys at order 128", h)
	}
}

// checkStructure validates B+-tree invariants: sorted keys, separator
// correctness, and leaf chain completeness.
func checkStructure(t *testing.T, b *Tree) {
	t.Helper()
	var walk func(n *node, lo, hi uint64)
	walk = func(n *node, lo, hi uint64) {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				t.Fatalf("unsorted keys in node")
			}
		}
		for _, k := range n.keys {
			if k < lo || k >= hi {
				t.Fatalf("key %d outside [%d,%d)", k, lo, hi)
			}
		}
		if n.leaf {
			return
		}
		if len(n.kids) != len(n.keys)+1 {
			t.Fatalf("inner node with %d keys has %d kids", len(n.keys), len(n.kids))
		}
		for i, c := range n.kids {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			walk(c, clo, chi)
		}
	}
	walk(b.root, 0, ^uint64(0))
	// Leaf chain covers exactly Len() keys in order.
	got := b.Scan(0, b.Len()+10, nil)
	if len(got) != b.Len() {
		t.Fatalf("leaf chain has %d keys, Len=%d", len(got), b.Len())
	}
}

func TestQuickMatchesReferenceWithScan(t *testing.T) {
	prop := func(seed int64, orderRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 4 + int(orderRaw%29)
		b := New(order)
		ref := map[uint64]uint64{}
		for op := 0; op < 2500; op++ {
			k := uint64(rng.Intn(400))
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := rng.Uint64()
				b.Insert(k, v)
				ref[k] = v
			case 3:
				_, in := ref[k]
				if b.Delete(k) != in {
					return false
				}
				delete(ref, k)
			case 4:
				gv, gok := b.Get(k)
				rv, rok := ref[k]
				if gok != rok || (gok && gv != rv) {
					return false
				}
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		// Full scan must equal sorted reference.
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		got := b.Scan(0, len(ref)+1, nil)
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != (kv.KV{Key: keys[i], Value: ref[keys[i]]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStructureInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := New(5)
	live := map[uint64]bool{}
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(2000))
		if rng.Intn(3) == 0 {
			b.Delete(k)
			delete(live, k)
		} else {
			b.Insert(k, k)
			live[k] = true
		}
	}
	if b.Len() != len(live) {
		t.Fatalf("Len=%d want %d", b.Len(), len(live))
	}
	checkStructure(t, b)
}
