package server_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/check"
	"dytis/internal/core"
	"dytis/internal/server"
	"dytis/internal/wal"
)

// Compile-time: the durable store's adapter satisfies the serving surface.
var _ server.Index = wal.ServingIndex{}

func durableOpts() wal.Options {
	return wal.Options{
		Index: core.Options{FirstLevelBits: 3, BucketEntries: 16, StartDepth: 2, Concurrent: true},
		// Interval sync keeps the wire-level test honest but fast: the
		// fsync path runs, without one fsync per op.
		Fsync:           wal.FsyncInterval,
		CheckpointBytes: 32 << 10, // churn background checkpoints under load
		SegmentBytes:    16 << 10,
	}
}

// TestE2EDurableServer drives concurrent clients against a server whose
// index is a WAL-backed store, then closes everything cleanly and recovers
// the directory: the recovered index must hold exactly the merged oracle
// state — the wire ack was a durability ack.
func TestE2EDurableServer(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startIndex(t, st.Serving(), st.Index(), server.Config{MaxConns: 16})

	const (
		numClients   = 4
		opsPerClient = 1500
		keySpace     = 1 << 12
	)
	ctx := context.Background()
	oracles := make([]map[uint64]uint64, numClients)
	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithPipeline(16))
			if err != nil {
				t.Errorf("client %d: dial: %v", id, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(7000 + id)))
			oracle := make(map[uint64]uint64)
			own := func() uint64 {
				return uint64(rng.Intn(keySpace/numClients))*numClients + uint64(id)
			}
			for i := 0; i < opsPerClient; i++ {
				switch r := rng.Intn(100); {
				case r < 50:
					k, v := own(), rng.Uint64()
					if err := c.Insert(ctx, k, v); err != nil {
						t.Errorf("client %d: insert: %v", id, err)
						return
					}
					oracle[k] = v
				case r < 65:
					k := own()
					if _, err := c.Delete(ctx, k); err != nil {
						t.Errorf("client %d: delete: %v", id, err)
						return
					}
					delete(oracle, k)
				case r < 80:
					n := 1 + rng.Intn(16)
					keys := make([]uint64, n)
					vals := make([]uint64, n)
					for j := range keys {
						keys[j], vals[j] = own(), rng.Uint64()
					}
					if err := c.InsertBatch(ctx, keys, vals); err != nil {
						t.Errorf("client %d: insert batch: %v", id, err)
						return
					}
					for j := range keys {
						oracle[keys[j]] = vals[j]
					}
				default: // reads run against the mutex-free path while writers log
					k := own()
					v, ok, err := c.Get(ctx, k)
					if err != nil {
						t.Errorf("client %d: get: %v", id, err)
						return
					}
					if want, has := oracle[k]; has != ok || (ok && v != want) {
						t.Errorf("client %d: get %d = %d,%v; oracle %d,%v", id, k, v, ok, want, has)
						return
					}
				}
			}
			oracles[id] = oracle
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	expect := make(map[uint64]uint64)
	for _, o := range oracles {
		for k, v := range o {
			expect[k] = v
		}
	}

	// Graceful teardown, then recovery from the directory alone.
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
	if n := st.Metrics().Appends(); n == 0 {
		t.Fatal("no WAL appends recorded: the server is not writing through the log")
	}
	t.Logf("wal after load: appends=%d rotations=%d checkpoints=%d",
		st.Metrics().Appends(), st.Metrics().Rotations(), st.Metrics().Checkpoints())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := wal.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if vs := check.Check(st2.Index()); len(vs) != 0 {
		t.Fatalf("recovered index unsound: %v", vs)
	}
	if st2.Len() != len(expect) {
		t.Fatalf("recovered Len = %d, want %d", st2.Len(), len(expect))
	}
	for k, v := range expect {
		if got, ok := st2.Get(k); !ok || got != v {
			t.Fatalf("recovered Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
}

// TestDurableServerBatchErrorSurfaces: once the store refuses mutations
// (closed here, poisoned in production), a batch mutation over the wire
// comes back as a typed server error on that request — reads keep serving.
func TestDurableServerBatchErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startIndex(t, st.Serving(), st.Index(), server.Config{})
	ctx := context.Background()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.InsertBatch(ctx, []uint64{1, 2}, []uint64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertBatch(ctx, []uint64{3}, []uint64{30}); err == nil {
		t.Fatal("batch insert on a closed store acked over the wire")
	}
	// The in-memory structure still answers reads.
	if v, ok, err := c.Get(ctx, 1); err != nil || !ok || v != 10 {
		t.Fatalf("Get after store close = %d,%v,%v", v, ok, err)
	}
}
