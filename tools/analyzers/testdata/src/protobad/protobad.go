// Package protobad violates every protocheck rule once: a deliberately
// unhandled opcode, malformed markers, and inconsistent frame constants.
package protobad

type Opcode uint8

const (
	OpInvalid Opcode = iota
	OpPing
	OpGet
	// OpNew is handled nowhere; every opswitch below must flag it.
	OpNew
)

type Status uint8

const (
	StatusOK Status = iota
	StatusErr
)

// Frame constants that do not add up.
const (
	MaxFrame  = 1 << 12
	headerLen = 4
	prefixLen = 9
	maxBody   = MaxFrame - 8 // want `maxBody \(4088\) != MaxFrame-headerLen \(4092\)`
	MaxBatch  = 1 << 16      // want `a full MaxBatch insert batch \(1048593 bytes\) exceeds maxBody \(4088\)`
	MaxScan   = 1 << 16      // want `a full MaxScan scan response \(1048590 bytes\) exceeds maxBody \(4088\)`
)

const (
	Version1   = 1
	Version2   = 2
	MaxVersion = Version1 // want `MaxVersion \(1\) != highest Version\* constant \(2\)`

	FeatCRC    = 1
	FeatStream = 2

	AllFeatures = FeatCRC // want `AllFeatures \(0x1\) != OR of Feat\* constants \(0x3\)`
)

var (
	_ = maxBody
	_ = prefixLen
	_ = MaxVersion
	_ = AllFeatures
)

// String misses OpNew.
func (o Opcode) String() string {
	//dytis:opswitch opcodes
	switch o { // want `protocol switch \(opcodes\) does not handle OpNew`
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	}
	return "INVALID"
}

// A default clause does not count as handling the missing opcode.
func route(o Opcode) int {
	//dytis:opswitch requests
	switch o { // want `protocol switch \(requests\) does not handle OpNew`
	case OpPing:
		return 1
	case OpGet:
		return 2
	default:
		return -1
	}
}

// A marker with a bogus set name.
func bogusSet(o Opcode) {
	//dytis:opswitch everything // want `dytis:opswitch: unknown set "everything"`
	switch o {
	case OpPing:
	}
}

// A marker with an unknown option.
func bogusOpt(o Opcode) {
	//dytis:opswitch requests grp=serve // want `dytis:opswitch: unknown option "grp=serve"`
	switch o {
	case OpPing, OpGet, OpNew:
	}
}

// A statuses marker on an Opcode switch.
func wrongType(o Opcode) {
	//dytis:opswitch statuses
	switch o { // want `dytis:opswitch statuses: switch tag type Opcode is not Status`
	case OpPing:
	}
}

// A marker on a switch with no tag expression.
func noTag(n int) int {
	//dytis:opswitch requests
	switch { // want `dytis:opswitch on a switch without a tag expression`
	case n > 0:
		return 1
	}
	return 0
}

// A marker on a switch over a non-protocol type.
func notProto(n int) {
	//dytis:opswitch requests
	switch n { // want `dytis:opswitch on a switch over int, not a protocol Opcode/Status type`
	case 1:
	}
}

// A marker attached to nothing.
func floating() {
	//dytis:opswitch requests // want `dytis:opswitch marker is not attached to a switch statement`
	_ = 1
}

var (
	_ = route
	_ = bogusSet
	_ = bogusOpt
	_ = wrongType
	_ = noTag
	_ = notProto
	_ = floating
)
