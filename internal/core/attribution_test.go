package core

import (
	"sync"
	"testing"
	"time"
)

// kindDurObserver sums structure-event durations and counts per kind.
type kindDurObserver struct {
	n  [NumEventKinds]int64
	ns [NumEventKinds]int64
}

func (o *kindDurObserver) RecordOp(Op, int, time.Duration) {}

func (o *kindDurObserver) StructureEvent(ev StructureEvent) {
	o.n[ev.Kind]++
	o.ns[ev.Kind] += int64(ev.Duration)
}

// TestDepthGuardRebalanceAttribution drives one EH's directory to the hard
// depth guard (DisableRemap + DisableExpansion leave only splits and
// doublings, and a dense sequential cluster is far narrower than the
// directory can resolve) so overflow falls through to forceRebalance, which
// fires both its remap and expand branches here. Counters, event counts, and
// durations all derive from the same measurement in single-threaded mode, so
// each per-kind NS counter must equal that kind's summed event durations —
// forceRebalance booking its remap-branch duration in ExpandNS was the
// §4.3-breakdown attribution bug.
func TestDepthGuardRebalanceAttribution(t *testing.T) {
	o := &kindDurObserver{}
	opts := Options{
		FirstLevelBits: 2, BucketEntries: 4, StartDepth: 2, BaseSegBuckets: 4,
		DisableRemap: true, DisableExpansion: true, UtilThreshold: 0.99,
		Observer: o,
	}
	d := New(opts)
	for i := uint64(0); i < 20000; i++ {
		d.Insert(i, i)
	}
	guard := false
	d.Introspect(func(e EHView) { guard = guard || e.AtDepthGuard() })
	if !guard {
		t.Fatal("workload never reached the directory depth guard; forceRebalance untested")
	}
	st := d.Stats()
	if o.n[EvRemap] == 0 {
		t.Fatalf("no remap-branch rebalances fired; attribution untested (%+v)", st)
	}
	for _, c := range []struct {
		kind  EventKind
		count int64
		ns    int64
	}{
		{EvSplit, st.Splits, st.SplitNS},
		{EvRemap, st.Remaps, st.RemapNS},
		{EvExpand, st.Expansions, st.ExpandNS},
		{EvDouble, st.Doublings, st.DoubleNS},
	} {
		if c.count != o.n[c.kind] {
			t.Errorf("%v: counter %d, %d events fired", c.kind, c.count, o.n[c.kind])
		}
		if c.ns != o.ns[c.kind] {
			t.Errorf("%v: counter booked %dns, events carried %dns (misattributed duration)",
				c.kind, c.ns, o.ns[c.kind])
		}
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// scanShardObserver counts OpScan records per shard.
type scanShardObserver struct {
	mu    sync.Mutex
	scans map[int]int
}

func newScanShardObserver() *scanShardObserver {
	return &scanShardObserver{scans: map[int]int{}}
}

func (o *scanShardObserver) RecordOp(op Op, shard int, d time.Duration) {
	if op != OpScan {
		return
	}
	o.mu.Lock()
	o.scans[shard]++
	o.mu.Unlock()
}

func (o *scanShardObserver) StructureEvent(StructureEvent) {}

func (o *scanShardObserver) reset() {
	o.mu.Lock()
	o.scans = map[int]int{}
	o.mu.Unlock()
}

// TestScanAttributionPerEH asserts a scan crossing first-level tables records
// one OpScan span per EH that contributed pairs — always including the
// starting EH, never an empty table crossed in passing. Attributing the whole
// multi-EH latency to the starting key's shard was the third PR-3 bugfix.
func TestScanAttributionPerEH(t *testing.T) {
	o := newScanShardObserver()
	opts := smallOpts() // FirstLevelBits=2: four EH tables, suffixBits=62
	opts.Observer = o
	d := New(opts)
	for i := uint64(0); i < 100; i++ {
		d.Insert(i, i)       // shard 0
		d.Insert(2<<62|i, i) // shard 2; shards 1 and 3 stay empty
	}

	got := d.Scan(0, 200, nil)
	if len(got) != 200 {
		t.Fatalf("scan returned %d pairs, want 200", len(got))
	}
	if want := map[int]int{0: 1, 2: 1}; !mapsEqual(o.scans, want) {
		t.Fatalf("Scan spanning shards 0 and 2 recorded %v, want %v", o.scans, want)
	}

	// Starting in an empty shard still records it (empty scans stay visible),
	// plus the shard the pairs actually came from.
	o.reset()
	d.Scan(1<<62, 50, nil)
	if want := map[int]int{1: 1, 2: 1}; !mapsEqual(o.scans, want) {
		t.Fatalf("Scan starting in empty shard 1 recorded %v, want %v", o.scans, want)
	}

	// ScanFunc shares the attribution contract, including early stop.
	o.reset()
	d.ScanFunc(0, func(k, v uint64) bool { return k < 10 })
	if want := map[int]int{0: 1}; !mapsEqual(o.scans, want) {
		t.Fatalf("early-stopped ScanFunc recorded %v, want %v", o.scans, want)
	}

	o.reset()
	d.ScanFunc(0, func(k, v uint64) bool { return true })
	if want := map[int]int{0: 1, 2: 1}; !mapsEqual(o.scans, want) {
		t.Fatalf("full ScanFunc recorded %v, want %v", o.scans, want)
	}
}

func mapsEqual(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
