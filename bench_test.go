// Benchmarks regenerating the DyTIS paper's tables and figures as testing.B
// benchmarks, one family per experiment (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for paper-vs-measured). They run at a small dataset scale so
// `go test -bench=.` completes in minutes; cmd/dytis-bench runs the same
// experiments at configurable scale with full output tables.
//
// Each sub-benchmark measures steady-state per-operation cost: the index is
// preloaded outside the timer and b.N operations replay a pregenerated
// stream (cycling if b.N exceeds it, which turns extra Load inserts into
// updates — throughput of the first pass dominates at the default benchtime).
package dytis_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"dytis"
	"dytis/internal/bench"
	"dytis/internal/core"
	"dytis/internal/datasets"
	"dytis/internal/kv"
	"dytis/internal/metrics"
	"dytis/internal/workload"
)

// benchScale keeps -bench=. fast; the ratios between datasets are preserved.
const benchScale = 0.0002

var (
	keyCacheMu sync.Mutex
	keyCache   = map[string][]uint64{}
)

func benchKeys(s datasets.Spec) []uint64 {
	keyCacheMu.Lock()
	defer keyCacheMu.Unlock()
	if k, ok := keyCache[s.Name]; ok {
		return k
	}
	k := s.Gen(s.Count(benchScale), 1)
	keyCache[s.Name] = k
	return k
}

// fig8Sets is the dataset subset exercised per-index in the benchmark suite
// (the full five-dataset sweep runs via cmd/dytis-bench).
var fig8Sets = []datasets.Spec{datasets.ReviewM, datasets.Taxi}

type contender struct {
	f    bench.Factory
	bulk float64
}

func fig8Contenders() []contender {
	return []contender{
		{bench.DyTIS(core.Options{}), 0},
		{bench.ALEX("ALEX-10"), 0.1},
		{bench.ALEX("ALEX-70"), 0.7},
		{bench.XIndex(false), 0.7},
		{bench.BTree(), 0},
	}
}

// runCell preloads an index per cfg and then measures b.N ops from the
// workload's stream.
func runCell(b *testing.B, c contender, spec datasets.Spec, kind workload.Kind, threads int) {
	b.Helper()
	keys := benchKeys(spec)
	if kind == workload.E && !c.f.Ordered {
		b.Skip("index does not support scans")
	}
	plan := workload.Build(workload.Config{
		Kind: kind, Keys: keys, Ops: len(keys), Seed: 1,
	})
	inst := c.f.New()
	defer inst.Close()
	// Unmeasured setup: bulk-load + preload per the paper's §4.3 protocol.
	preOps := plan.Ops
	if kind == workload.Load {
		bulkN := int(c.bulk * float64(len(keys)))
		if bulkN > 0 {
			ks, vs := sortedKV(keys[:bulkN])
			if !inst.BulkLoad(ks, vs) {
				for i := range ks {
					inst.Insert(ks[i], vs[i])
				}
			}
		}
		preOps = plan.Ops[bulkN:]
	} else {
		bulkN := int(c.bulk * float64(plan.PreloadCount))
		if bulkN > 0 {
			ks, vs := sortedKV(keys[:bulkN])
			if !inst.BulkLoad(ks, vs) {
				bulkN = 0
			}
		}
		for _, k := range keys[bulkN:plan.PreloadCount] {
			inst.Insert(k, k)
		}
	}
	if len(preOps) == 0 {
		b.Skip("empty op stream")
	}
	b.ResetTimer()
	if threads <= 1 {
		var buf []kv.KV
		for i := 0; i < b.N; i++ {
			bench.ExecOp(inst, preOps[i%len(preOps)], &buf)
		}
	} else {
		var wg sync.WaitGroup
		per := b.N / threads
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				var buf []kv.KV
				for i := 0; i < per; i++ {
					bench.ExecOp(inst, preOps[(t+i*threads)%len(preOps)], &buf)
				}
			}(t)
		}
		wg.Wait()
	}
}

func sortedKV(keys []uint64) ([]uint64, []uint64) {
	ks := append([]uint64(nil), keys...)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks, append([]uint64(nil), ks...)
}

// BenchmarkTable1Datasets measures dataset generation plus the §2.1 metrics
// (the quantities behind Table 1 and Figure 1).
func BenchmarkTable1Datasets(b *testing.B) {
	for _, s := range datasets.Group1 {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				keys := s.Gen(20000, int64(i))
				_ = metrics.SkewnessVariance(keys, 5000)
				_ = metrics.KDD(keys, 5000)
			}
		})
	}
}

// BenchmarkFig8 regenerates Figure 8's cells: workload x dataset x index.
func BenchmarkFig8(b *testing.B) {
	for _, kind := range workload.Kinds {
		for _, s := range fig8Sets {
			for _, c := range fig8Contenders() {
				kind, s, c := kind, s, c
				b.Run(fmt.Sprintf("%s/%s/%s", kind, s.Name, c.f.Name), func(b *testing.B) {
					runCell(b, c, s, kind, 1)
				})
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: DyTIS vs CCEH vs EH insert and search.
func BenchmarkFig9(b *testing.B) {
	hashes := []contender{
		{bench.DyTIS(core.Options{}), 0},
		{bench.CCEH(), 0},
		{bench.EH(), 0},
	}
	for _, kind := range []workload.Kind{workload.Load, workload.C} {
		for _, s := range fig8Sets {
			for _, c := range hashes {
				kind, s, c := kind, s, c
				b.Run(fmt.Sprintf("%s/%s/%s", kind, s.Name, c.f.Name), func(b *testing.B) {
					runCell(b, c, s, kind, 1)
				})
			}
		}
	}
}

// BenchmarkFig10 regenerates Figure 10's sweep: ALEX bulk-loading fractions.
func BenchmarkFig10(b *testing.B) {
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		for _, kind := range []workload.Kind{workload.Load, workload.C} {
			frac, kind := frac, kind
			name := fmt.Sprintf("ALEX-%d/%s", int(frac*100), kind)
			b.Run(name, func(b *testing.B) {
				runCell(b, contender{bench.ALEX("ALEX"), frac}, datasets.Taxi, kind, 1)
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11: original vs shuffled (KDD effect)
// and shuffled vs uniform (skewness effect) on insert and search.
func BenchmarkFig11(b *testing.B) {
	variants := []datasets.Spec{
		datasets.Taxi,
		datasets.Shuffled(datasets.Taxi),
		datasets.Uniform,
	}
	for _, s := range variants {
		for _, kind := range []workload.Kind{workload.Load, workload.C} {
			s, kind := s, kind
			b.Run(fmt.Sprintf("%s/%s", s.Name, kind), func(b *testing.B) {
				runCell(b, contender{bench.DyTIS(core.Options{}), 0}, s, kind, 1)
			})
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: DyTIS vs XIndex thread scaling.
func BenchmarkFig12(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		for _, c := range []contender{
			{bench.DyTIS(core.Options{Concurrent: true}), 0},
			{bench.XIndex(true), 0.7},
		} {
			for _, kind := range []workload.Kind{workload.Load, workload.C, workload.E} {
				threads, c, kind := threads, c, kind
				b.Run(fmt.Sprintf("%s/%s/t%d", c.f.Name, kind, threads), func(b *testing.B) {
					runCell(b, c, datasets.Taxi, kind, threads)
				})
			}
		}
	}
}

// BenchmarkTable2Latency regenerates Table 2's workloads (Load and A); tail
// latencies come from cmd/dytis-bench -exp table2, which runs the same cells
// with the latency histogram attached.
func BenchmarkTable2Latency(b *testing.B) {
	for _, kind := range []workload.Kind{workload.Load, workload.A} {
		for _, c := range fig8Contenders() {
			kind, c := kind, c
			b.Run(fmt.Sprintf("%s/%s", kind, c.f.Name), func(b *testing.B) {
				runCell(b, c, datasets.ReviewM, kind, 1)
			})
		}
	}
}

// BenchmarkParams regenerates the §4.3 parameter study on DyTIS knobs.
func BenchmarkParams(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"default", core.Options{}},
		{"Bsize-1KB", core.Options{BucketEntries: 64}},
		{"Bsize-4KB", core.Options{BucketEntries: 256}},
		{"Lstart-4", core.Options{StartDepth: 4}},
		{"Lstart-8", core.Options{StartDepth: 8}},
		{"R-7", core.Options{FirstLevelBits: 7}},
		{"R-11", core.Options{FirstLevelBits: 11}},
		{"Ut-0.5", core.Options{UtilThreshold: 0.5}},
		{"Ut-0.7", core.Options{UtilThreshold: 0.7}},
	}
	for _, v := range variants {
		for _, kind := range []workload.Kind{workload.Load, workload.C} {
			v, kind := v, kind
			b.Run(fmt.Sprintf("%s/%s", v.name, kind), func(b *testing.B) {
				runCell(b, contender{bench.DyTISNamed(v.name, v.opts), 0}, datasets.Taxi, kind, 1)
			})
		}
	}
}

// BenchmarkExtensionPGM compares DyTIS with the dynamic PGM-index of the
// related-work section (geometric run merging vs in-place remapping).
func BenchmarkExtensionPGM(b *testing.B) {
	for _, c := range []contender{
		{bench.DyTIS(core.Options{}), 0},
		{bench.PGM(), 0},
	} {
		for _, kind := range []workload.Kind{workload.Load, workload.C, workload.E} {
			c, kind := c, kind
			b.Run(fmt.Sprintf("%s/%s", c.f.Name, kind), func(b *testing.B) {
				runCell(b, c, datasets.Taxi, kind, 1)
			})
		}
	}
}

// BenchmarkObservability measures the hot-path cost of the observability
// subsystem: "off" is the default index (nil observer, one branch per op),
// "on" has a full Observer recording into sharded atomic histograms. The
// API contract is that "off" stays within 5% of the pre-observability
// baseline; the off/on gap is the documented cost of enabling metrics.
func BenchmarkObservability(b *testing.B) {
	const n = 200000
	keys := benchKeys(datasets.Taxi)
	if len(keys) > n {
		keys = keys[:n]
	}
	modes := []struct {
		name string
		mk   func() *dytis.Index
	}{
		{"off", func() *dytis.Index { return dytis.New() }},
		{"on", func() *dytis.Index {
			return dytis.New(dytis.WithObserver(dytis.NewObserver()))
		}},
	}
	for _, m := range modes {
		m := m
		b.Run("Get/"+m.name, func(b *testing.B) {
			idx := m.mk()
			for _, k := range keys {
				idx.Insert(k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Get(keys[i%len(keys)])
			}
		})
		b.Run("Insert/"+m.name, func(b *testing.B) {
			idx := m.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Insert(keys[i%len(keys)], uint64(i))
			}
		})
	}
}

// BenchmarkAblation quantifies each §3.3 mechanism by disabling it.
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-remap", core.Options{DisableRemap: true}},
		{"no-expansion", core.Options{DisableExpansion: true}},
		{"no-adaptive", core.Options{DisableAdaptiveLimit: true}},
		{"no-refine", core.Options{DisableRefinement: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			runCell(b, contender{bench.DyTISNamed(v.name, v.opts), 0}, datasets.ReviewM, workload.Load, 1)
		})
	}
}
