// Package analyzers holds the project's custom static-analysis passes and
// the minimal framework they run on. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic, plus
// package-level facts) but is self-contained — the module is stdlib-only —
// and supports exactly what the five passes need: a parsed, type-checked
// single package, a diagnostic sink, and an opaque per-package fact blob so
// contracts cross package boundaries (protocheck's opcode tables, ctxcheck's
// blocking-function sets, metriccheck's registered-series sets).
// cmd/vet-dytis adapts it to the `go vet -vettool` protocol, storing the
// fact blobs in the .vetx files that protocol already threads from each
// package to its dependents.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run applies the pass to one package, reporting findings via
	// pass.Report.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	// ReadFacts returns the fact blob the current analyzer exported for the
	// dependency package at the given import path, nil when the package
	// exported none. Nil when the driver provides no fact store.
	ReadFacts func(path string) []byte
	// WriteFacts records the current analyzer's fact blob for this package,
	// to be served to dependent packages' passes. Nil when the driver
	// provides no fact store.
	WriteFacts func(data []byte)
	// DepFacts returns every dependency's fact blob for the current
	// analyzer, keyed by import path. Nil when the driver provides no fact
	// store.
	DepFacts func() map[string][]byte
}

// readFacts is ReadFacts with nil-safety.
func (p *Pass) readFacts(path string) []byte {
	if p.ReadFacts == nil {
		return nil
	}
	return p.ReadFacts(path)
}

// writeFacts is WriteFacts with nil-safety.
func (p *Pass) writeFacts(data []byte) {
	if p.WriteFacts != nil {
		p.WriteFacts(data)
	}
}

// depFacts is DepFacts with nil-safety.
func (p *Pass) depFacts() map[string][]byte {
	if p.DepFacts == nil {
		return nil
	}
	return p.DepFacts()
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{LockCheck, AtomicCheck, ProtoCheck, CtxCheck, MetricCheck}
}

// markerLines collects the source lines bearing the given standalone marker
// comment (e.g. "//dytis:blocking-ok reason"), per file, so checks can be
// suppressed by an annotation on the flagged line or the line above it.
func markerLines(pass *Pass, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			if commentIs(cm.Text, marker) {
				lines[pass.Fset.Position(cm.Pos()).Line] = true
			}
		}
	}
	return lines
}

// commentIs reports whether the raw comment text is the given //dytis:
// marker, optionally followed by free-form text after a space.
func commentIs(text, marker string) bool {
	rest, ok := cutComment(text, marker)
	return ok && (rest == "" || rest[0] == ' ')
}

// stripInlineComment cuts an embedded "//" and what follows from a marker's
// payload, so a trailing comment after the arguments (e.g. the test
// harness's `// want` expectations) is not parsed as arguments.
func stripInlineComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// cutComment strips "//" and leading spaces, then the marker prefix,
// returning what follows it.
func cutComment(text, marker string) (string, bool) {
	t := text
	if len(t) >= 2 && t[0] == '/' && t[1] == '/' {
		t = t[2:]
	}
	for len(t) > 0 && (t[0] == ' ' || t[0] == '\t') {
		t = t[1:]
	}
	if len(t) < len(marker) || t[:len(marker)] != marker {
		return "", false
	}
	return t[len(marker):], true
}
