package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"dytis/internal/core"
	"dytis/internal/lathist"
)

// quantiles exported per operation histogram, matching the paper's latency
// tables (avg is derived from sum/count).
var quantiles = []float64{0.5, 0.9, 0.99, 0.9999}

// OpSnapshot is the JSON form of one operation's merged histogram.
type OpSnapshot struct {
	Count  uint64           `json:"count"`
	MeanNS int64            `json:"mean_ns"`
	MaxNS  int64            `json:"max_ns"`
	Q      map[string]int64 `json:"quantiles_ns"`
}

// EventSnapshot is the JSON form of one structure-event counter.
type EventSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// Vars returns the observer's full state as a flat expvar-style map: merged
// per-op histograms, structure-event counters, and — when an index is
// attached — its Stats, MemoryFootprint, and key count.
func (o *Observer) Vars() map[string]any {
	ops := make(map[string]OpSnapshot, int(core.NumOps))
	for op := core.Op(0); op < core.NumOps; op++ {
		h := o.OpHist(op)
		q := make(map[string]int64, len(quantiles))
		for _, p := range quantiles {
			q[fmt.Sprintf("p%g", p*100)] = int64(h.Quantile(p))
		}
		ops[op.String()] = OpSnapshot{
			Count:  h.Count(),
			MeanNS: int64(h.Mean()),
			MaxNS:  int64(h.Max()),
			Q:      q,
		}
	}
	events := make(map[string]EventSnapshot, int(core.NumEventKinds))
	for k := core.EventKind(0); k < core.NumEventKinds; k++ {
		events[k.String()] = EventSnapshot{
			Count:   o.EventCount(k),
			TotalNS: o.eventNS[k].Load(),
		}
	}
	vars := map[string]any{
		"dytis.ops":            ops,
		"dytis.events":         events,
		"dytis.uptime_seconds": time.Since(o.start).Seconds(),
	}
	if src := o.source(); src != nil {
		vars["dytis.stats"] = src.Stats()
		vars["dytis.memory_bytes"] = src.MemoryFootprint()
		vars["dytis.keys"] = src.Len()
	}
	return vars
}

// Every series this exporter registers must appear in the metric tables of
// the listed docs; metriccheck enforces it.
//
//dytis:metric-docs ../../README.md ../../DESIGN.md

// WritePrometheus writes the observer's state in the Prometheus text
// exposition format: one summary per operation, counters per structure-event
// kind, and gauges for the attached index's shape and memory. Every series
// is declared here rather than on fields: the summaries aggregate sharded
// histograms and the gauges are computed from the index's own Stats
// snapshot, so there is no single backing counter field to watch.
//
//dytis:series dytis_op_latency_nanoseconds dytis_structure_events_total
//dytis:series dytis_structure_event_nanoseconds_total dytis_maintenance_total
//dytis:series dytis_keys dytis_memory_bytes dytis_segments dytis_buckets
//dytis:series dytis_directory_entries dytis_adaptive_ehs
func (o *Observer) WritePrometheus(w io.Writer) {
	fmt.Fprintln(w, "# HELP dytis_op_latency_nanoseconds Per-operation latency (merged across shards).")
	fmt.Fprintln(w, "# TYPE dytis_op_latency_nanoseconds summary")
	for op := core.Op(0); op < core.NumOps; op++ {
		h := o.OpHist(op)
		writeOpSummary(w, op.String(), h)
	}
	fmt.Fprintln(w, "# HELP dytis_structure_events_total Structure-maintenance events by kind (Algorithm 1 cases).")
	fmt.Fprintln(w, "# TYPE dytis_structure_events_total counter")
	for k := core.EventKind(0); k < core.NumEventKinds; k++ {
		fmt.Fprintf(w, "dytis_structure_events_total{kind=%q} %d\n", k.String(), o.EventCount(k))
	}
	fmt.Fprintln(w, "# HELP dytis_structure_event_nanoseconds_total Cumulative wall time per event kind.")
	fmt.Fprintln(w, "# TYPE dytis_structure_event_nanoseconds_total counter")
	for k := core.EventKind(0); k < core.NumEventKinds; k++ {
		fmt.Fprintf(w, "dytis_structure_event_nanoseconds_total{kind=%q} %d\n", k.String(), o.eventNS[k].Load())
	}
	src := o.source()
	if src == nil {
		return
	}
	st := src.Stats()
	gauges := []struct {
		name, help string
		v          int64
	}{
		{"dytis_keys", "Live keys in the index.", int64(src.Len())},
		{"dytis_memory_bytes", "Estimated heap usage of the index.", src.MemoryFootprint()},
		{"dytis_segments", "Distinct segments across all EH tables.", int64(st.Segments)},
		{"dytis_buckets", "Buckets across all segments.", int64(st.Buckets)},
		{"dytis_directory_entries", "Directory entries across all EH tables.", int64(st.DirEntries)},
		{"dytis_adaptive_ehs", "EH tables running with the raised Limit_seg.", int64(st.AdaptiveEHs)},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
	counters := []struct {
		kind string
		v    int64
	}{
		{"split", st.Splits}, {"remap", st.Remaps}, {"expand", st.Expansions},
		{"double", st.Doublings}, {"remap-failure", st.RemapFailures},
		{"shrink", st.Shrinks},
	}
	fmt.Fprintln(w, "# HELP dytis_maintenance_total Maintenance operations from the index's own Stats counters.")
	fmt.Fprintln(w, "# TYPE dytis_maintenance_total counter")
	for _, c := range counters {
		fmt.Fprintf(w, "dytis_maintenance_total{kind=%q} %d\n", c.kind, c.v)
	}
}

func writeOpSummary(w io.Writer, op string, h *lathist.Hist) {
	for _, p := range quantiles {
		fmt.Fprintf(w, "dytis_op_latency_nanoseconds{op=%q,quantile=\"%g\"} %d\n", op, p, int64(h.Quantile(p)))
	}
	fmt.Fprintf(w, "dytis_op_latency_nanoseconds_sum{op=%q} %d\n", op, h.Sum())
	fmt.Fprintf(w, "dytis_op_latency_nanoseconds_count{op=%q} %d\n", op, h.Count())
}

// Handler returns an http.Handler exposing the observer:
//
//	/metrics     Prometheus text format
//	/debug/vars  expvar-style JSON (also at /vars)
//	/            a plain-text directory of the above
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WritePrometheus(w)
	})
	vars := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// Sort keys for stable output, mirroring expvar's behavior.
		m := o.Vars()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "{")
		for i, k := range keys {
			b, err := json.Marshal(m[k])
			if err != nil {
				b = []byte(fmt.Sprintf("%q", err.Error()))
			}
			comma := ","
			if i == len(keys)-1 {
				comma = ""
			}
			fmt.Fprintf(w, "%q: %s%s\n", k, b, comma)
		}
		fmt.Fprintln(w, "}")
	}
	mux.HandleFunc("/debug/vars", vars)
	mux.HandleFunc("/vars", vars)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "dytis observability endpoints:\n  /metrics     Prometheus text format\n  /debug/vars  expvar JSON")
	})
	return mux
}
