package server_test

// Backward-compatibility matrix for protocol v2. The handshake is opt-in, so
// two directions must keep working unchanged:
//
//   - a v1 client (no HELLO) against a v2-capable server — the wire must be
//     byte-identical to the pre-v2 protocol, trailer-free;
//   - a v2 client against a v1 server (emulated with Config.DisableV2) — the
//     rejected HELLO must downgrade the client to plain v1 transparently.
//
// Both directions also run through the fault-injection proxy with
// byte-stream-preserving faults (delays, fragmentation), since negotiation
// must survive an adversarial transport schedule, not just loopback luck.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dytis/client"
	"dytis/internal/core"
	"dytis/internal/fault"
	"dytis/internal/proto"
	"dytis/internal/server"
)

// rawRoundTrip writes req as a plain v1 frame and requires the response off
// the wire to be byte-for-byte the v1 encoding of want. Responses are read
// back-to-back with ReadFrame, so a stray CRC trailer (4 bytes the v1 framing
// does not expect) would desynchronize the stream and fail loudly here.
func rawRoundTrip(t *testing.T, nc net.Conn, buf []byte, req *proto.Request, want *proto.Response) []byte {
	t.Helper()
	out, err := proto.AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, buf, err := proto.ReadFrame(nc, buf)
	if err != nil {
		t.Fatalf("reading %s response: %v", req.Op, err)
	}
	wantFrame, err := proto.AppendResponse(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantFrame[4:]) {
		t.Fatalf("%s response differs from the v1 wire encoding:\n got %x\nwant %x", req.Op, body, wantFrame[4:])
	}
	return buf
}

// driveV1 runs a representative op mix over a raw v1 socket to addr, holding
// every response to the exact pre-v2 byte encoding.
func driveV1(t *testing.T, addr string) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	var buf []byte
	buf = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 1, Op: proto.OpPing},
		&proto.Response{ID: 1, Op: proto.OpPing, Status: proto.StatusOK})
	for i := uint64(0); i < 16; i++ {
		buf = rawRoundTrip(t, nc, buf,
			&proto.Request{ID: 10 + i, Op: proto.OpInsert, Key: i, Val: i * 3},
			&proto.Response{ID: 10 + i, Op: proto.OpInsert, Status: proto.StatusOK})
	}
	buf = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 40, Op: proto.OpGet, Key: 5},
		&proto.Response{ID: 40, Op: proto.OpGet, Status: proto.StatusOK, Val: 15, Found: true})
	buf = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 41, Op: proto.OpGet, Key: 999},
		&proto.Response{ID: 41, Op: proto.OpGet, Status: proto.StatusOK})
	scanWant := &proto.Response{ID: 42, Op: proto.OpScan, Status: proto.StatusOK}
	for i := uint64(2); i < 6; i++ {
		scanWant.Keys = append(scanWant.Keys, i)
		scanWant.Vals = append(scanWant.Vals, i*3)
	}
	buf = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 42, Op: proto.OpScan, Key: 2, Max: 4}, scanWant)
	buf = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 43, Op: proto.OpGetBatch, Keys: []uint64{1, 99, 3}},
		&proto.Response{ID: 43, Op: proto.OpGetBatch, Status: proto.StatusOK,
			Vals: []uint64{3, 0, 9}, Founds: []bool{true, false, true}})
	buf = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 44, Op: proto.OpDelete, Key: 7},
		&proto.Response{ID: 44, Op: proto.OpDelete, Status: proto.StatusOK, Found: true})
	_ = rawRoundTrip(t, nc, buf,
		&proto.Request{ID: 45, Op: proto.OpLen},
		&proto.Response{ID: 45, Op: proto.OpLen, Status: proto.StatusOK, Val: 15})
}

// TestV1ClientByteIdentical: a client that never sends HELLO gets the exact
// pre-v2 wire protocol from a v2-capable server — directly, and through a
// proxy injecting delays and fragmentation.
func TestV1ClientByteIdentical(t *testing.T) {
	t.Run("direct", func(t *testing.T) {
		idx := core.New(smallOpts())
		addr, _ := start(t, idx, server.Config{})
		driveV1(t, addr)
	})
	t.Run("fault-proxy", func(t *testing.T) {
		idx := core.New(smallOpts())
		addr, _ := start(t, idx, server.Config{})
		inj := fault.New(7, fault.Plan{
			SplitProb: 0.4,
			DelayProb: 0.1, DelayMin: 50 * time.Microsecond, DelayMax: 500 * time.Microsecond,
		})
		px, err := fault.NewProxy(addr, inj)
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		driveV1(t, px.Addr())
		if inj.Stats().Total() == 0 {
			t.Fatal("no fault fired; the proxied run tested nothing")
		}
	})
}

// TestV2ClientAgainstV1Server: the server rejects HELLO the way a pre-v2
// binary did (unknown opcode, connection dropped); the client must downgrade
// to plain v1 and serve the full API, again including through the fault
// proxy.
func TestV2ClientAgainstV1Server(t *testing.T) {
	run := func(t *testing.T, proxied bool) {
		idx := core.New(smallOpts())
		addr, _ := start(t, idx, server.Config{DisableV2: true})
		if proxied {
			inj := fault.New(11, fault.Plan{
				SplitProb: 0.3,
				DelayProb: 0.1, DelayMin: 50 * time.Microsecond, DelayMax: 500 * time.Microsecond,
			})
			px, err := fault.NewProxy(addr, inj)
			if err != nil {
				t.Fatal(err)
			}
			defer px.Close()
			addr = px.Addr()
		}
		c, err := client.Dial(addr,
			client.WithReconnect(4, time.Millisecond, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()

		ver, feats, err := c.Protocol(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ver != proto.Version1 || feats != 0 {
			t.Fatalf("Protocol = v%d feats %#x, want v1 with no features", ver, feats)
		}
		for k := uint64(0); k < 200; k++ {
			if err := c.Insert(ctx, k, k+7); err != nil {
				t.Fatalf("Insert(%d): %v", k, err)
			}
		}
		if v, ok, err := c.Get(ctx, 100); err != nil || !ok || v != 107 {
			t.Fatalf("Get = %d,%v,%v want 107,true,nil", v, ok, err)
		}
		// The redesigned scan API transparently paginates over v1.
		s := c.ScanStream(ctx, 0, 0)
		defer s.Close()
		var n uint64
		for s.Next() {
			if s.Key() != n || s.Value() != n+7 {
				t.Fatalf("scan pair %d: %d/%d", n, s.Key(), s.Value())
			}
			n++
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if n != 200 {
			t.Fatalf("scan delivered %d pairs, want 200", n)
		}
	}
	t.Run("direct", func(t *testing.T) { run(t, false) })
	t.Run("fault-proxy", func(t *testing.T) { run(t, true) })
}

// TestHelloNegotiation: a default client against a default server lands on
// v2 with both features, and the sealed session works end to end with zero
// checksum errors.
func TestHelloNegotiation(t *testing.T) {
	idx := core.New(smallOpts())
	m := &server.Metrics{}
	addr, _ := start(t, idx, server.Config{Metrics: m})
	c, err := client.Dial(addr, client.WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	ver, feats, err := c.Protocol(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ver != proto.Version2 || feats != proto.FeatCRC|proto.FeatScanStream {
		t.Fatalf("Protocol = v%d feats %#x, want v2 with CRC+scan-stream", ver, feats)
	}
	for k := uint64(0); k < 100; k++ {
		if err := c.Insert(ctx, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok, err := c.Get(ctx, 42); err != nil || !ok || v != 42 {
		t.Fatalf("Get = %d,%v,%v", v, ok, err)
	}
	if n := m.FrameChecksumErrors(); n != 0 {
		t.Fatalf("FrameChecksumErrors = %d on a clean link, want 0", n)
	}
}

// TestHelloMidStreamRejected: HELLO is only valid as a connection's first
// request; later it is a protocol error that drops the connection (otherwise
// a peer could flip framing mid-flight under pipelined traffic).
func TestHelloMidStreamRejected(t *testing.T) {
	idx := core.New(smallOpts())
	addr, _ := start(t, idx, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	buf := rawRoundTrip(t, nc, nil,
		&proto.Request{ID: 1, Op: proto.OpPing},
		&proto.Response{ID: 1, Op: proto.OpPing, Status: proto.StatusOK})
	out, err := proto.AppendRequest(nil, &proto.Request{
		ID: 2, Op: proto.OpHello, Ver: proto.MaxVersion, Feats: proto.AllFeatures})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, _, err := proto.ReadFrame(nc, buf)
	if err != nil {
		t.Fatal(err)
	}
	var resp proto.Response
	if err := proto.DecodeResponse(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 || resp.Status != proto.StatusBadRequest {
		t.Fatalf("mid-stream HELLO answered %+v, want id 2 bad-request", resp)
	}
	if _, _, err := proto.ReadFrame(nc, nil); err == nil {
		t.Fatal("connection stayed open after mid-stream HELLO")
	}
}

// rawHello performs the handshake on a raw socket and returns the grant.
func rawHello(t *testing.T, nc net.Conn) (uint8, uint32) {
	t.Helper()
	out, err := proto.AppendRequest(nil, &proto.Request{
		ID: 1, Op: proto.OpHello, Ver: proto.MaxVersion, Feats: proto.AllFeatures})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, _, err := proto.ReadFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp proto.Response
	if err := proto.DecodeResponse(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 || resp.Op != proto.OpHello || resp.Status != proto.StatusOK {
		t.Fatalf("HELLO answered %+v", resp)
	}
	return resp.Ver, resp.Feats
}

// TestOverloadRetryAfterWire pins the two retry-after encodings: the typed
// v2 field on the sealed wire, and the legacy v1 message that older clients
// parse. Both must carry the configured window.
func TestOverloadRetryAfterWire(t *testing.T) {
	const magic = ^uint64(0)
	d := core.New(smallOpts())
	gi := &gateIndex{Index: d, gate: make(chan struct{}), magic: magic}
	addr, _ := startIndex(t, gi, d, server.Config{
		MaxInflight: 1,
		RetryAfter:  50 * time.Millisecond,
	})

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	blocked := make(chan error, 1)
	go func() {
		_, _, err := c1.Get(context.Background(), magic)
		blocked <- err
	}()
	gi.waitEntered(t, 1)

	// v2, raw: the sealed overload response carries the typed field.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	ver, feats := rawHello(t, nc)
	if ver != proto.Version2 || feats&proto.FeatCRC == 0 {
		t.Fatalf("handshake granted v%d feats %#x", ver, feats)
	}
	frame, err := proto.AppendRequest(nil, &proto.Request{ID: 2, Op: proto.OpGet, Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(proto.SealFrame(frame, 0)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, _, err := proto.ReadFrameCRC(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp proto.Response
	if err := proto.DecodeResponseV(body, &resp, proto.Version2); err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusOverload || resp.RetryAfterMS != 50 {
		t.Fatalf("overload response = %+v, want typed retry-after of 50ms", resp)
	}
	if d, ok := resp.RetryAfter(); !ok || d != 50*time.Millisecond {
		t.Fatalf("RetryAfter() = %v,%v, want 50ms", d, ok)
	}

	// v1 client: same hint, recovered from the legacy message encoding.
	cv1, err := client.Dial(addr, client.WithV1Protocol(), client.WithCircuitBreaker(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer cv1.Close()
	_, _, err = cv1.Get(context.Background(), 1)
	var oe *client.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("v1 Get under overload = %v, want *OverloadError", err)
	}
	if oe.RetryAfter != 50*time.Millisecond {
		t.Fatalf("v1 RetryAfter = %v, want 50ms", oe.RetryAfter)
	}

	close(gi.gate)
	if err := <-blocked; err != nil {
		t.Fatalf("gated Get after release: %v", err)
	}
}
