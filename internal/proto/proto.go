// Package proto defines the length-prefixed binary wire protocol spoken
// between dytis-server and the client package. It is the repository's first
// process boundary, so the decoders in this package are written to survive
// arbitrary adversarial bytes: every length is validated before allocation,
// nothing panics, and the fuzz targets in fuzz_test.go hammer exactly the
// two functions a peer can reach with attacker-controlled input
// (DecodeRequest, DecodeResponse).
//
// Framing (both directions):
//
//	uint32  body length (big endian), at most MaxFrame-4
//	uint64  request id  — echoed verbatim in the response so a pipelining
//	                      client can match out-of-order completions
//	uint8   opcode      — requests may OR in FlagDeadline (0x80), followed
//	                      by uint32 timeout-millis before the payload: the
//	                      caller's remaining deadline budget, which the
//	                      server uses to shed requests that have already
//	                      expired in its queue
//	...     opcode-specific payload (requests) / status + payload (responses)
//
// Integers are big endian. Request payloads:
//
//	Ping         —
//	Get          key(8)
//	Insert       key(8) val(8)
//	Delete       key(8)
//	Scan         start(8) max(4)                      max <= MaxScan
//	GetBatch     n(4) key(8)*n                        n <= MaxBatch
//	InsertBatch  n(4) [key(8) val(8)]*n               n <= MaxBatch
//	DeleteBatch  n(4) key(8)*n                        n <= MaxBatch
//	Len          —
//
// Response payloads, after a 1-byte status (0 = OK; otherwise the remaining
// body is a UTF-8 error message):
//
//	Ping         —
//	Get          found(1) val(8)
//	Insert       —
//	Delete       found(1)
//	Scan         n(4) [key(8) val(8)]*n
//	GetBatch     n(4) [found(1) val(8)]*n
//	InsertBatch  —
//	DeleteBatch  n(4) found(1)*n
//	Len          count(8)
//
// The per-op byte cost makes the batching amortization concrete: a pipelined
// single-key GET costs 25 bytes of request framing for 8 bytes of key; a
// 128-key GetBatch costs 17+4 bytes of framing for 1024 bytes of keys.
//
// # Protocol v2 (negotiated)
//
// Everything above is protocol v1 and stays byte-identical forever. A peer
// may upgrade by sending OpHello as the very first request on a connection:
//
//	Hello (request)   maxVersion(1) features(4)
//	Hello (response)  version(1) features(4)       — the negotiated subset
//
// A v1 server answers the unknown opcode with StatusBadRequest and drops
// the connection; the client then redials and speaks plain v1, so old
// servers keep working unmodified (and a v1 client never sends HELLO, so
// it is unaffected either way). The HELLO exchange itself is always
// unsealed v1 framing. Version2 negotiates two independent features:
//
//   - FeatCRC: every frame after the HELLO exchange, in both directions,
//     carries a 4-byte CRC32C (Castagnoli) trailer covering the length
//     prefix and the body (see crc.go). The trailer is not counted in the
//     length prefix.
//
//   - FeatScanStream: the streaming scan opcode family. A scan becomes a
//     server-push stream with client credit-based flow control:
//
//     ScanStart  (request)   start(8) max(8) chunk(4) credits(4)
//     max is the total pair budget (0 = unbounded),
//     chunk the per-frame pair bound (<= MaxScan),
//     credits the initial window (<= MaxScanCredits)
//     ScanCredit (request)   credits(4) — id = the scan's id; never answered
//     ScanCancel (request)   — id = the scan's id; never answered
//     ScanChunk  (response)  n(4) [key(8) val(8)]*n — one chunk, costs one credit
//     ScanEnd    (response)  total(8) — stream end (status != OK on abort)
//
// Every frame of a stream (the chunks and the end) echoes the ScanStart's
// request id. The server sends at most `credits` chunks ahead of the
// client's consumption; the client grants one credit back per chunk it has
// consumed, so a million-key scan flows in bounded chunks interleaved with
// the connection's other pipelined traffic instead of marshaling one huge
// response.
//
// Responses also fork on one point at v2: a StatusOverload response carries
// a typed retryAfterMillis(4) before the message, so clients no longer
// parse the human-readable hint out of Msg (v1 keeps the Msg-only form).
//
// # Cluster opcodes (FeatCluster)
//
// FeatCluster enables the sharded-serving opcode family (internal/cluster,
// client.Cluster). A cluster-routed request may OR FlagEpoch (0x40) into
// its opcode byte, announcing a uint64 shard-map epoch after the optional
// deadline field; a server owning a different epoch (or not owning a
// request's key) answers StatusWrongShard, whose v2 payload carries the
// server's current encoded shard map before the message, so a routing
// client refreshes and retries instead of guessing. Request payloads:
//
//	ShardInfo       —
//	MapGet          —
//	MapSet          selfLo(8) selfHi(8) map-blob(rest)
//	HandoverStart   lo(8) hi(8) targetAddr(rest)        1 <= len <= MaxAddr
//	HandoverStatus  —
//	HandoverResume  —
//	HandoverAbort   —
//	ImportStart     lo(8) hi(8)
//	ImportResume    lo(8) hi(8)
//	ImportBatch     n(4) [key(8) val(8)]*n              n <= MaxBatch
//	ImportEnd       commit(1)                           0 or 1
//	Mirror          del(1) key(8) val(8)                del 0 or 1
//
// OK response payloads:
//
//	ShardInfo       lo(8) hi(8) epoch(8) state(1)
//	MapGet          map-blob(rest)
//	HandoverStatus  state(1) copied(8) mirrored(8) retries(8) resumes(8)
//	                watermark(8) lo(8) hi(8) targetAddr(rest)
//	                len <= MaxAddr; empty when no handover exists
//	ImportResume    fresh(1) applied(8)                 fresh 0 or 1
//	ImportBatch     applied(8)
//	MapSet/HandoverStart/HandoverResume/HandoverAbort/ImportStart/ImportEnd/Mirror   —
//
// The map blob itself is opaque at this layer (internal/cluster defines
// and validates its encoding); proto only bounds and transports it.
// Handover resume semantics live in internal/cluster: HandoverResume
// restarts a suspended handover from its watermark, HandoverAbort
// abandons it, and ImportResume reattaches (fresh=0) or recreates
// (fresh=1) the target-side import session.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Opcode identifies a request kind. Zero is deliberately invalid so an
// all-zero frame (a classic truncation artifact) cannot decode.
type Opcode uint8

const (
	OpInvalid Opcode = iota
	OpPing
	OpGet
	OpInsert
	OpDelete
	OpScan
	OpGetBatch
	OpInsertBatch
	OpDeleteBatch
	OpLen

	// Protocol v2 opcodes (negotiated via OpHello; see the package comment).
	OpHello      // feature negotiation; only valid as a connection's first request
	OpScanStart  // open a streaming scan
	OpScanCredit // grant chunk credits to a running scan (never answered)
	OpScanCancel // abandon a running scan (never answered)
	OpScanChunk  //dytis:response-only one chunk of scan pairs
	OpScanEnd    //dytis:response-only end of a scan stream

	// Cluster opcodes (negotiated via FeatCluster; see the package comment).
	OpShardInfo      // this server's owned range, map epoch, and handover state
	OpMapGet         // fetch the server's current encoded shard map
	OpMapSet         // install a shard map (admin/ctl; bumps the epoch)
	OpHandoverStart  // begin migrating an owned subrange to a peer
	OpHandoverStatus // poll the running handover's progress
	OpImportStart    // peer-side: open an import session for a range
	OpImportBatch    // peer-side: one bulk page of the session's pairs
	OpImportEnd      // peer-side: close the session (commit or abort+scrub)
	OpMirror         // peer-side: one double-written op during cutover

	// Handover robustness opcodes (still FeatCluster; see internal/cluster).
	OpHandoverResume // restart a suspended handover from its watermark
	OpHandoverAbort  // abandon the handover and scrub the target session
	OpImportResume   // peer-side: reattach to (or recreate) an import session

	// NumOpcodes bounds the opcode space; valid opcodes are 1..NumOpcodes-1,
	// so it can size per-opcode metric arrays.
	NumOpcodes
)

func (o Opcode) String() string {
	//dytis:opswitch opcodes
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpGetBatch:
		return "get-batch"
	case OpInsertBatch:
		return "insert-batch"
	case OpDeleteBatch:
		return "delete-batch"
	case OpLen:
		return "len"
	case OpHello:
		return "hello"
	case OpScanStart:
		return "scan-start"
	case OpScanCredit:
		return "scan-credit"
	case OpScanCancel:
		return "scan-cancel"
	case OpScanChunk:
		return "scan-chunk"
	case OpScanEnd:
		return "scan-end"
	case OpShardInfo:
		return "shard-info"
	case OpMapGet:
		return "map-get"
	case OpMapSet:
		return "map-set"
	case OpHandoverStart:
		return "handover-start"
	case OpHandoverStatus:
		return "handover-status"
	case OpImportStart:
		return "import-start"
	case OpImportBatch:
		return "import-batch"
	case OpImportEnd:
		return "import-end"
	case OpMirror:
		return "mirror"
	case OpHandoverResume:
		return "handover-resume"
	case OpHandoverAbort:
		return "handover-abort"
	case OpImportResume:
		return "import-resume"
	}
	return fmt.Sprintf("opcode(%d)", uint8(o))
}

// Valid reports whether o is a defined request opcode. The response-only
// stream opcodes are excluded: a request decoder must reject them.
func (o Opcode) Valid() bool {
	return o > OpInvalid && o < NumOpcodes && o != OpScanChunk && o != OpScanEnd
}

// ValidResponse reports whether o may appear in a response.
func (o Opcode) ValidResponse() bool { return o > OpInvalid && o < NumOpcodes }

// FlagDeadline, OR-ed into a request's opcode byte, announces a uint32
// timeout-millis field between the opcode and the payload. The encoding is
// canonical: the flag appears iff the budget is nonzero, and a decoder
// rejects a zero budget carried under the flag.
const FlagDeadline = 0x80

// FlagEpoch, OR-ed into a request's opcode byte, announces a uint64
// shard-map epoch after the optional deadline field (FeatCluster). Same
// canonicality rule: the flag appears iff the epoch is nonzero (epochs
// start at 1), and a decoder rejects a zero epoch under the flag.
const FlagEpoch = 0x40

// Protocol versions, negotiated via OpHello (see the package comment).
const (
	// Version1 is the original protocol: no handshake, no checksums,
	// slurped scans. A connection that never negotiates is Version1.
	Version1 uint8 = 1
	// Version2 adds per-frame CRC32C trailers, the streaming scan opcode
	// family, and a typed retry-after field on overload responses.
	Version2 uint8 = 2
	// MaxVersion is the highest version this package implements.
	MaxVersion = Version2
)

// Feature bits carried in the OpHello exchange. The server grants the
// intersection of what the client requested and what it supports.
const (
	// FeatCRC seals every post-handshake frame with a CRC32C trailer.
	FeatCRC uint32 = 1 << 0
	// FeatScanStream enables OpScanStart/OpScanCredit/OpScanCancel and the
	// OpScanChunk/OpScanEnd response stream.
	FeatScanStream uint32 = 1 << 1
	// FeatCluster enables the sharded-serving opcode family (OpShardInfo
	// through OpMirror), FlagEpoch on requests, and StatusWrongShard
	// redirects. A server only grants it when it is running with a cluster
	// node (dytis-server -shard / -cluster).
	FeatCluster uint32 = 1 << 2
	// AllFeatures is every feature bit this package implements.
	AllFeatures = FeatCRC | FeatScanStream | FeatCluster
)

// Status is the first payload byte of every response.
type Status uint8

const (
	StatusOK Status = iota
	// StatusBadRequest: the server could not decode or validate the request;
	// the connection stays usable.
	StatusBadRequest
	// StatusShuttingDown: the server is draining and rejected new work.
	StatusShuttingDown
	// StatusErr: any other server-side failure.
	StatusErr
	// StatusOverload: the server shed the request under admission control.
	// The message is a retry-after hint in time.Duration syntax; the client
	// surfaces it as a typed overload error.
	StatusOverload
	// StatusDeadlineExceeded: the request's propagated deadline budget had
	// already expired when the server was about to execute it, so the work
	// was skipped. The caller has necessarily timed out already; this
	// status exists so a late-reading pipelined client sees "shed", never a
	// stale answer.
	StatusDeadlineExceeded
	// StatusChecksum: a frame failed CRC32C verification (FeatCRC). The
	// answer is best-effort — the id is salvaged from the corrupt body's
	// prefix — and the connection closes right after: a stream that has
	// carried one corrupt frame cannot be trusted to stay aligned.
	StatusChecksum
	// StatusWrongShard: the request named a key this server does not own,
	// or carried a shard-map epoch that is not the server's current one
	// (FeatCluster). At v2 the response body carries the server's current
	// encoded shard map (u32 length + blob) before the message, so a
	// routing client can refresh its map and retry without a side channel.
	StatusWrongShard
)

// Wire limits. A decoder rejects anything beyond them before allocating, so
// a hostile peer cannot make either side reserve unbounded memory.
const (
	// MaxFrame bounds a whole frame (4-byte length prefix included). It is
	// sized so a MaxBatch insert batch and a MaxScan scan result both fit.
	MaxFrame = 1 << 21
	// MaxBatch bounds the entry count of one batched request.
	MaxBatch = 1 << 16
	// MaxScan bounds the pair count one Scan may request; it also bounds a
	// streaming scan's per-chunk budget.
	MaxScan = 1 << 16
	// MaxScanCredits bounds the outstanding chunk credits of one streaming
	// scan, so a hostile peer cannot bank an unbounded window.
	MaxScanCredits = 1 << 10
	// MaxAddr bounds an endpoint address carried in a cluster frame
	// (OpHandoverStart's target, the per-shard addresses of a map blob).
	MaxAddr = 255
	// MaxMapBlob bounds an encoded shard map carried in a cluster frame
	// (OpMapSet, OpMapGet, StatusWrongShard): the decoder's allocation
	// bound, far under maxBody. internal/cluster validates that the maps
	// it encodes fit.
	MaxMapBlob = 1 << 16

	headerLen = 4     // length prefix
	prefixLen = 8 + 1 // request id + opcode, present in every body
	maxBody   = MaxFrame - headerLen
)

// Decode errors. Wrapped with detail; match with errors.Is.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("proto: truncated frame")
	ErrTrailingBytes = errors.New("proto: trailing bytes after payload")
	ErrBadOpcode     = errors.New("proto: unknown opcode")
	ErrLimit         = errors.New("proto: count exceeds protocol limit")
)

// Request is one decoded client request.
type Request struct {
	ID uint64
	Op Opcode

	// TimeoutMS, when nonzero, is the caller's remaining deadline budget in
	// milliseconds (FlagDeadline on the wire). A server may skip executing
	// the request once the budget has elapsed since arrival and answer
	// StatusDeadlineExceeded instead.
	TimeoutMS uint32

	Key uint64 // Get/Insert/Delete key, Scan/ScanStart start
	Val uint64 // Insert value
	Max uint32 // Scan pair budget, ScanStart per-chunk pair budget

	Keys []uint64 // GetBatch/DeleteBatch keys, InsertBatch keys
	Vals []uint64 // InsertBatch values (len == len(Keys))

	// Protocol v2 fields.
	Ver     uint8  // Hello: highest version the client speaks
	Feats   uint32 // Hello: requested feature bits
	ScanMax uint64 // ScanStart: total pair budget (0 = unbounded)
	Credits uint32 // ScanStart: initial credit window; ScanCredit: credits granted

	// Cluster fields (FeatCluster).

	// Epoch, when nonzero, is the shard-map epoch the sender routed this
	// request under (FlagEpoch on the wire). A server owning a different
	// epoch answers StatusWrongShard instead of executing.
	Epoch   uint64
	Lo, Hi  uint64 // MapSet: self range; HandoverStart/ImportStart/ImportResume: moved range
	Addr    string // HandoverStart: target endpoint
	MapBlob []byte // MapSet: the encoded shard map to install
	Commit  bool   // ImportEnd: commit (true) or abort+scrub (false)
	Del     bool   // Mirror: the mirrored op is a delete
}

// Response is one decoded server response.
type Response struct {
	ID     uint64
	Op     Opcode
	Status Status
	Msg    string // error message when Status != StatusOK

	Found bool   // Get/Delete
	Val   uint64 // Get value, Len count, ScanEnd total pairs delivered

	Keys   []uint64 // Scan/ScanChunk result keys
	Vals   []uint64 // Scan/ScanChunk result values, GetBatch values
	Founds []bool   // GetBatch/DeleteBatch per-entry found flags

	// Protocol v2 fields.
	Ver   uint8  // Hello: negotiated version
	Feats uint32 // Hello: granted feature bits
	// RetryAfterMS is the typed retry-after hint of a StatusOverload
	// response. Protocol v2 carries it on the wire; on v1 it stays zero
	// and RetryAfter falls back to parsing Msg.
	RetryAfterMS uint32

	// Cluster fields (FeatCluster).
	Lo, Hi    uint64 // ShardInfo: owned range; HandoverStatus: moving range
	Epoch     uint64 // ShardInfo: current shard-map epoch
	State     uint8  // ShardInfo: serving state; HandoverStatus: handover state
	Copied    uint64 // HandoverStatus: pairs bulk-copied so far
	Mirrored  uint64 // HandoverStatus: ops mirrored so far
	Retries   uint64 // HandoverStatus: peer-call retries across all runs
	Resumes   uint64 // HandoverStatus: successful resumes so far
	Watermark uint64 // HandoverStatus: next bulk-copy key (resume restarts here)
	Addr      string // HandoverStatus: handover target endpoint ("" = none)
	Applied   uint64 // ImportBatch/ImportResume: pairs actually applied (duplicates skipped)
	Fresh     bool   // ImportResume: the session was recreated, not reattached
	// MapBlob is the server's current encoded shard map: the MapGet answer,
	// and on v2 the redirect payload of a StatusWrongShard response.
	MapBlob []byte
}

// Err returns the response's error, nil for StatusOK.
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	return fmt.Errorf("proto: server status %d: %s", r.Status, r.Msg)
}

// RetryAfter returns the retry-after hint of a StatusOverload response: the
// typed v2 field when present, otherwise parsed out of Msg (the v1 form).
// It reports false for other statuses or an absent/unparseable hint.
func (r *Response) RetryAfter() (time.Duration, bool) {
	if r.Status != StatusOverload {
		return 0, false
	}
	if r.RetryAfterMS > 0 {
		return time.Duration(r.RetryAfterMS) * time.Millisecond, true
	}
	d, err := time.ParseDuration(r.Msg)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}

// --- encoding ---------------------------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendRequest appends r as one framed request to dst and returns the
// extended slice. It returns an error (leaving dst unusable only in length)
// if r violates a protocol limit, so a misconfigured caller fails loudly
// instead of emitting a frame the peer must reject.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	lenAt := len(dst)
	dst = appendU32(dst, 0) // frame length, patched below
	dst = appendU64(dst, r.ID)
	opb := byte(r.Op)
	if r.TimeoutMS != 0 {
		opb |= FlagDeadline
	}
	if r.Epoch != 0 {
		opb |= FlagEpoch
	}
	dst = append(dst, opb)
	if r.TimeoutMS != 0 {
		dst = appendU32(dst, r.TimeoutMS)
	}
	if r.Epoch != 0 {
		dst = appendU64(dst, r.Epoch)
	}
	//dytis:opswitch requests
	switch r.Op {
	case OpPing, OpLen:
	case OpGet, OpDelete:
		dst = appendU64(dst, r.Key)
	case OpInsert:
		dst = appendU64(dst, r.Key)
		dst = appendU64(dst, r.Val)
	case OpScan:
		if r.Max > MaxScan {
			return dst, fmt.Errorf("%w: scan max %d", ErrLimit, r.Max)
		}
		dst = appendU64(dst, r.Key)
		dst = appendU32(dst, r.Max)
	case OpGetBatch, OpDeleteBatch:
		if len(r.Keys) > MaxBatch {
			return dst, fmt.Errorf("%w: batch of %d", ErrLimit, len(r.Keys))
		}
		dst = appendU32(dst, uint32(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendU64(dst, k)
		}
	case OpInsertBatch:
		if len(r.Keys) > MaxBatch {
			return dst, fmt.Errorf("%w: batch of %d", ErrLimit, len(r.Keys))
		}
		if len(r.Keys) != len(r.Vals) {
			return dst, fmt.Errorf("proto: insert batch keys/vals length mismatch (%d vs %d)", len(r.Keys), len(r.Vals))
		}
		dst = appendU32(dst, uint32(len(r.Keys)))
		for i, k := range r.Keys {
			dst = appendU64(dst, k)
			dst = appendU64(dst, r.Vals[i])
		}
	case OpHello:
		dst = append(dst, r.Ver)
		dst = appendU32(dst, r.Feats)
	case OpScanStart:
		if r.Max == 0 || r.Max > MaxScan {
			return dst, fmt.Errorf("%w: scan chunk %d", ErrLimit, r.Max)
		}
		if r.Credits == 0 || r.Credits > MaxScanCredits {
			return dst, fmt.Errorf("%w: scan credits %d", ErrLimit, r.Credits)
		}
		dst = appendU64(dst, r.Key)
		dst = appendU64(dst, r.ScanMax)
		dst = appendU32(dst, r.Max)
		dst = appendU32(dst, r.Credits)
	case OpScanCredit:
		if r.Credits == 0 || r.Credits > MaxScanCredits {
			return dst, fmt.Errorf("%w: scan credits %d", ErrLimit, r.Credits)
		}
		dst = appendU32(dst, r.Credits)
	case OpScanCancel:
	case OpShardInfo, OpMapGet, OpHandoverStatus, OpHandoverResume, OpHandoverAbort:
	case OpMapSet:
		if len(r.MapBlob) == 0 || len(r.MapBlob) > MaxMapBlob {
			return dst, fmt.Errorf("%w: map blob of %d bytes", ErrLimit, len(r.MapBlob))
		}
		dst = appendU64(dst, r.Lo)
		dst = appendU64(dst, r.Hi)
		dst = append(dst, r.MapBlob...)
	case OpHandoverStart:
		if len(r.Addr) == 0 || len(r.Addr) > MaxAddr {
			return dst, fmt.Errorf("%w: address of %d bytes", ErrLimit, len(r.Addr))
		}
		dst = appendU64(dst, r.Lo)
		dst = appendU64(dst, r.Hi)
		dst = append(dst, r.Addr...)
	case OpImportStart, OpImportResume:
		dst = appendU64(dst, r.Lo)
		dst = appendU64(dst, r.Hi)
	case OpImportBatch:
		if len(r.Keys) > MaxBatch {
			return dst, fmt.Errorf("%w: batch of %d", ErrLimit, len(r.Keys))
		}
		if len(r.Keys) != len(r.Vals) {
			return dst, fmt.Errorf("proto: import batch keys/vals length mismatch (%d vs %d)", len(r.Keys), len(r.Vals))
		}
		dst = appendU32(dst, uint32(len(r.Keys)))
		for i, k := range r.Keys {
			dst = appendU64(dst, k)
			dst = appendU64(dst, r.Vals[i])
		}
	case OpImportEnd:
		dst = append(dst, boolByte(r.Commit))
	case OpMirror:
		dst = append(dst, boolByte(r.Del))
		dst = appendU64(dst, r.Key)
		dst = appendU64(dst, r.Val)
	default:
		return dst, fmt.Errorf("%w: %d", ErrBadOpcode, uint8(r.Op))
	}
	return patchLen(dst, lenAt)
}

// AppendResponse appends r as one framed protocol-v1 response to dst.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	return AppendResponseV(dst, r, Version1)
}

// AppendResponseV appends r as one framed response to dst, encoded for the
// connection's negotiated protocol version. The versions differ on exactly
// one point: at Version2 a StatusOverload response carries a typed
// retryAfterMillis field before the message.
func AppendResponseV(dst []byte, r *Response, ver uint8) ([]byte, error) {
	lenAt := len(dst)
	dst = appendU32(dst, 0)
	dst = appendU64(dst, r.ID)
	dst = append(dst, byte(r.Op))
	dst = append(dst, byte(r.Status))
	if r.Status != StatusOK {
		if r.Status == StatusOverload && ver >= Version2 {
			dst = appendU32(dst, r.RetryAfterMS)
		}
		if r.Status == StatusWrongShard && ver >= Version2 {
			if len(r.MapBlob) > MaxMapBlob {
				return dst, fmt.Errorf("%w: map blob of %d bytes", ErrLimit, len(r.MapBlob))
			}
			dst = appendU32(dst, uint32(len(r.MapBlob)))
			dst = append(dst, r.MapBlob...)
		}
		dst = append(dst, r.Msg...)
		return patchLen(dst, lenAt)
	}
	//dytis:opswitch responses
	switch r.Op {
	case OpPing, OpInsert, OpInsertBatch:
	case OpGet:
		dst = append(dst, boolByte(r.Found))
		dst = appendU64(dst, r.Val)
	case OpDelete:
		dst = append(dst, boolByte(r.Found))
	case OpScan:
		if len(r.Keys) > MaxScan || len(r.Keys) != len(r.Vals) {
			return dst, fmt.Errorf("%w: scan result of %d/%d", ErrLimit, len(r.Keys), len(r.Vals))
		}
		dst = appendU32(dst, uint32(len(r.Keys)))
		for i, k := range r.Keys {
			dst = appendU64(dst, k)
			dst = appendU64(dst, r.Vals[i])
		}
	case OpGetBatch:
		if len(r.Vals) > MaxBatch || len(r.Vals) != len(r.Founds) {
			return dst, fmt.Errorf("%w: get-batch result of %d/%d", ErrLimit, len(r.Vals), len(r.Founds))
		}
		dst = appendU32(dst, uint32(len(r.Vals)))
		for i, v := range r.Vals {
			dst = append(dst, boolByte(r.Founds[i]))
			dst = appendU64(dst, v)
		}
	case OpDeleteBatch:
		if len(r.Founds) > MaxBatch {
			return dst, fmt.Errorf("%w: delete-batch result of %d", ErrLimit, len(r.Founds))
		}
		dst = appendU32(dst, uint32(len(r.Founds)))
		for _, f := range r.Founds {
			dst = append(dst, boolByte(f))
		}
	case OpLen:
		dst = appendU64(dst, r.Val)
	case OpHello:
		dst = append(dst, r.Ver)
		dst = appendU32(dst, r.Feats)
	case OpScanStart, OpScanCredit, OpScanCancel:
		// No OK payload: a successful ScanStart answers with chunk/end
		// frames, and credit/cancel are never answered at all.
	case OpScanChunk:
		if len(r.Keys) > MaxScan || len(r.Keys) != len(r.Vals) {
			return dst, fmt.Errorf("%w: scan chunk of %d/%d", ErrLimit, len(r.Keys), len(r.Vals))
		}
		dst = appendU32(dst, uint32(len(r.Keys)))
		for i, k := range r.Keys {
			dst = appendU64(dst, k)
			dst = appendU64(dst, r.Vals[i])
		}
	case OpScanEnd:
		dst = appendU64(dst, r.Val)
	case OpShardInfo:
		dst = appendU64(dst, r.Lo)
		dst = appendU64(dst, r.Hi)
		dst = appendU64(dst, r.Epoch)
		dst = append(dst, r.State)
	case OpMapGet:
		if len(r.MapBlob) == 0 || len(r.MapBlob) > MaxMapBlob {
			return dst, fmt.Errorf("%w: map blob of %d bytes", ErrLimit, len(r.MapBlob))
		}
		dst = append(dst, r.MapBlob...)
	case OpHandoverStatus:
		if len(r.Addr) > MaxAddr {
			return dst, fmt.Errorf("%w: address of %d bytes", ErrLimit, len(r.Addr))
		}
		dst = append(dst, r.State)
		dst = appendU64(dst, r.Copied)
		dst = appendU64(dst, r.Mirrored)
		dst = appendU64(dst, r.Retries)
		dst = appendU64(dst, r.Resumes)
		dst = appendU64(dst, r.Watermark)
		dst = appendU64(dst, r.Lo)
		dst = appendU64(dst, r.Hi)
		dst = append(dst, r.Addr...)
	case OpImportResume:
		dst = append(dst, boolByte(r.Fresh))
		dst = appendU64(dst, r.Applied)
	case OpImportBatch:
		dst = appendU64(dst, r.Applied)
	case OpMapSet, OpHandoverStart, OpHandoverResume, OpHandoverAbort, OpImportStart, OpImportEnd, OpMirror:
	default:
		return dst, fmt.Errorf("%w: %d", ErrBadOpcode, uint8(r.Op))
	}
	return patchLen(dst, lenAt)
}

// patchLen writes the frame's body length into the 4 bytes at lenAt and
// rejects frames that outgrew MaxFrame.
func patchLen(dst []byte, lenAt int) ([]byte, error) {
	body := len(dst) - lenAt - headerLen
	if body > maxBody {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body+headerLen)
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(body))
	return dst, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// --- decoding ---------------------------------------------------------------

// reader is a bounds-checked cursor over one frame body.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// count reads a 4-byte entry count and validates it against both the given
// protocol limit and the bytes actually remaining in the frame (at perEntry
// bytes each), so a lying count can neither over-allocate nor over-read.
func (r *reader) count(limit int, perEntry int) (int, error) {
	n32, err := r.u32()
	if err != nil {
		return 0, err
	}
	n := int(n32)
	if n > limit {
		return 0, fmt.Errorf("%w: %d > %d", ErrLimit, n, limit)
	}
	if need := n * perEntry; need > r.remaining() {
		return 0, fmt.Errorf("%w: count %d needs %d bytes, %d remain", ErrTruncated, n, need, r.remaining())
	}
	return n, nil
}

func (r *reader) done() error {
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, r.remaining())
	}
	return nil
}

// DecodeRequest decodes one request from a frame body (the bytes after the
// 4-byte length prefix) into req, which is overwritten; its Keys/Vals slices
// are reused when their capacity suffices. It never panics and never
// allocates more than the validated entry counts require.
func DecodeRequest(body []byte, req *Request) error {
	rd := reader{b: body}
	id, err := rd.u64()
	if err != nil {
		return err
	}
	opb, err := rd.u8()
	if err != nil {
		return err
	}
	op := Opcode(opb &^ (FlagDeadline | FlagEpoch))
	if !op.Valid() {
		return fmt.Errorf("%w: %d", ErrBadOpcode, opb)
	}
	var timeoutMS uint32
	if opb&FlagDeadline != 0 {
		if timeoutMS, err = rd.u32(); err != nil {
			return err
		}
		if timeoutMS == 0 {
			// Zero budget under the flag is non-canonical (the encoder omits
			// the flag instead); rejecting it keeps one-encoding-per-request.
			return fmt.Errorf("proto: deadline flag with zero budget")
		}
	}
	var epoch uint64
	if opb&FlagEpoch != 0 {
		if epoch, err = rd.u64(); err != nil {
			return err
		}
		if epoch == 0 {
			// Same canonicality rule as the deadline flag: epochs start at 1,
			// so a zero epoch is only ever the flag misapplied.
			return fmt.Errorf("proto: epoch flag with zero epoch")
		}
	}
	*req = Request{
		ID: id, Op: op, TimeoutMS: timeoutMS, Epoch: epoch,
		Keys: req.Keys[:0], Vals: req.Vals[:0], MapBlob: req.MapBlob[:0],
	}
	//dytis:opswitch requests
	switch op {
	case OpPing, OpLen:
	case OpGet, OpDelete:
		if req.Key, err = rd.u64(); err != nil {
			return err
		}
	case OpInsert:
		if req.Key, err = rd.u64(); err != nil {
			return err
		}
		if req.Val, err = rd.u64(); err != nil {
			return err
		}
	case OpScan:
		if req.Key, err = rd.u64(); err != nil {
			return err
		}
		if req.Max, err = rd.u32(); err != nil {
			return err
		}
		if req.Max > MaxScan {
			return fmt.Errorf("%w: scan max %d", ErrLimit, req.Max)
		}
	case OpGetBatch, OpDeleteBatch:
		n, err := rd.count(MaxBatch, 8)
		if err != nil {
			return err
		}
		req.Keys = growTo(req.Keys, n)
		for i := 0; i < n; i++ {
			req.Keys[i], _ = rd.u64() // length pre-validated by count
		}
	case OpInsertBatch:
		n, err := rd.count(MaxBatch, 16)
		if err != nil {
			return err
		}
		req.Keys = growTo(req.Keys, n)
		req.Vals = growTo(req.Vals, n)
		for i := 0; i < n; i++ {
			req.Keys[i], _ = rd.u64()
			req.Vals[i], _ = rd.u64()
		}
	case OpHello:
		if req.Ver, err = rd.u8(); err != nil {
			return err
		}
		if req.Feats, err = rd.u32(); err != nil {
			return err
		}
	case OpScanStart:
		if req.Key, err = rd.u64(); err != nil {
			return err
		}
		if req.ScanMax, err = rd.u64(); err != nil {
			return err
		}
		if req.Max, err = rd.u32(); err != nil {
			return err
		}
		if req.Max == 0 || req.Max > MaxScan {
			return fmt.Errorf("%w: scan chunk %d", ErrLimit, req.Max)
		}
		if req.Credits, err = rd.u32(); err != nil {
			return err
		}
		if req.Credits == 0 || req.Credits > MaxScanCredits {
			return fmt.Errorf("%w: scan credits %d", ErrLimit, req.Credits)
		}
	case OpScanCredit:
		if req.Credits, err = rd.u32(); err != nil {
			return err
		}
		if req.Credits == 0 || req.Credits > MaxScanCredits {
			return fmt.Errorf("%w: scan credits %d", ErrLimit, req.Credits)
		}
	case OpScanCancel:
	case OpShardInfo, OpMapGet, OpHandoverStatus, OpHandoverResume, OpHandoverAbort:
	case OpMapSet:
		if req.Lo, err = rd.u64(); err != nil {
			return err
		}
		if req.Hi, err = rd.u64(); err != nil {
			return err
		}
		n := rd.remaining()
		if n == 0 || n > MaxMapBlob {
			return fmt.Errorf("%w: map blob of %d bytes", ErrLimit, n)
		}
		req.MapBlob = append(req.MapBlob, rd.b[rd.off:]...)
		rd.off = len(rd.b)
	case OpHandoverStart:
		if req.Lo, err = rd.u64(); err != nil {
			return err
		}
		if req.Hi, err = rd.u64(); err != nil {
			return err
		}
		n := rd.remaining()
		if n == 0 || n > MaxAddr {
			return fmt.Errorf("%w: address of %d bytes", ErrLimit, n)
		}
		req.Addr = string(rd.b[rd.off:])
		rd.off = len(rd.b)
	case OpImportStart, OpImportResume:
		if req.Lo, err = rd.u64(); err != nil {
			return err
		}
		if req.Hi, err = rd.u64(); err != nil {
			return err
		}
	case OpImportBatch:
		n, err := rd.count(MaxBatch, 16)
		if err != nil {
			return err
		}
		req.Keys = growTo(req.Keys, n)
		req.Vals = growTo(req.Vals, n)
		for i := 0; i < n; i++ {
			req.Keys[i], _ = rd.u64()
			req.Vals[i], _ = rd.u64()
		}
	case OpImportEnd:
		b, err := rd.u8()
		if err != nil {
			return err
		}
		if b > 1 {
			// Two spellings of one request would break canonicality.
			return fmt.Errorf("proto: import-end commit byte %d", b)
		}
		req.Commit = b != 0
	case OpMirror:
		b, err := rd.u8()
		if err != nil {
			return err
		}
		if b > 1 {
			return fmt.Errorf("proto: mirror del byte %d", b)
		}
		req.Del = b != 0
		if req.Key, err = rd.u64(); err != nil {
			return err
		}
		if req.Val, err = rd.u64(); err != nil {
			return err
		}
	}
	return rd.done()
}

// DecodeResponse decodes one protocol-v1 response from a frame body into
// resp, which is overwritten; slices are reused when capacity suffices.
func DecodeResponse(body []byte, resp *Response) error {
	return DecodeResponseV(body, resp, Version1)
}

// DecodeResponseV decodes one response encoded at the given negotiated
// protocol version (see AppendResponseV for the difference).
func DecodeResponseV(body []byte, resp *Response, ver uint8) error {
	rd := reader{b: body}
	id, err := rd.u64()
	if err != nil {
		return err
	}
	opb, err := rd.u8()
	if err != nil {
		return err
	}
	op := Opcode(opb)
	if !op.ValidResponse() {
		return fmt.Errorf("%w: %d", ErrBadOpcode, opb)
	}
	st, err := rd.u8()
	if err != nil {
		return err
	}
	*resp = Response{
		ID: id, Op: op, Status: Status(st),
		Keys: resp.Keys[:0], Vals: resp.Vals[:0], Founds: resp.Founds[:0],
		MapBlob: resp.MapBlob[:0],
	}
	if resp.Status != StatusOK {
		if resp.Status == StatusOverload && ver >= Version2 {
			if resp.RetryAfterMS, err = rd.u32(); err != nil {
				return err
			}
		}
		if resp.Status == StatusWrongShard && ver >= Version2 {
			blobLen, err := rd.u32()
			if err != nil {
				return err
			}
			if int(blobLen) > MaxMapBlob || int(blobLen) > rd.remaining() {
				return fmt.Errorf("%w: wrong-shard map blob of %d bytes, %d remain", ErrLimit, blobLen, rd.remaining())
			}
			resp.MapBlob = append(resp.MapBlob, rd.b[rd.off:rd.off+int(blobLen)]...)
			rd.off += int(blobLen)
		}
		resp.Msg = string(rd.b[rd.off:])
		return nil
	}
	//dytis:opswitch responses
	switch op {
	case OpPing, OpInsert, OpInsertBatch:
	case OpGet:
		f, err := rd.u8()
		if err != nil {
			return err
		}
		resp.Found = f != 0
		if resp.Val, err = rd.u64(); err != nil {
			return err
		}
	case OpDelete:
		f, err := rd.u8()
		if err != nil {
			return err
		}
		resp.Found = f != 0
	case OpScan:
		n, err := rd.count(MaxScan, 16)
		if err != nil {
			return err
		}
		resp.Keys = growTo(resp.Keys, n)
		resp.Vals = growTo(resp.Vals, n)
		for i := 0; i < n; i++ {
			resp.Keys[i], _ = rd.u64()
			resp.Vals[i], _ = rd.u64()
		}
	case OpGetBatch:
		n, err := rd.count(MaxBatch, 9)
		if err != nil {
			return err
		}
		resp.Vals = growTo(resp.Vals, n)
		resp.Founds = growBools(resp.Founds, n)
		for i := 0; i < n; i++ {
			f, _ := rd.u8()
			resp.Founds[i] = f != 0
			resp.Vals[i], _ = rd.u64()
		}
	case OpDeleteBatch:
		n, err := rd.count(MaxBatch, 1)
		if err != nil {
			return err
		}
		resp.Founds = growBools(resp.Founds, n)
		for i := 0; i < n; i++ {
			f, _ := rd.u8()
			resp.Founds[i] = f != 0
		}
	case OpLen:
		if resp.Val, err = rd.u64(); err != nil {
			return err
		}
	case OpHello:
		if resp.Ver, err = rd.u8(); err != nil {
			return err
		}
		if resp.Feats, err = rd.u32(); err != nil {
			return err
		}
	case OpScanStart, OpScanCredit, OpScanCancel:
	case OpScanChunk:
		n, err := rd.count(MaxScan, 16)
		if err != nil {
			return err
		}
		resp.Keys = growTo(resp.Keys, n)
		resp.Vals = growTo(resp.Vals, n)
		for i := 0; i < n; i++ {
			resp.Keys[i], _ = rd.u64()
			resp.Vals[i], _ = rd.u64()
		}
	case OpScanEnd:
		if resp.Val, err = rd.u64(); err != nil {
			return err
		}
	case OpShardInfo:
		if resp.Lo, err = rd.u64(); err != nil {
			return err
		}
		if resp.Hi, err = rd.u64(); err != nil {
			return err
		}
		if resp.Epoch, err = rd.u64(); err != nil {
			return err
		}
		if resp.State, err = rd.u8(); err != nil {
			return err
		}
	case OpMapGet:
		n := rd.remaining()
		if n == 0 || n > MaxMapBlob {
			return fmt.Errorf("%w: map blob of %d bytes", ErrLimit, n)
		}
		resp.MapBlob = append(resp.MapBlob, rd.b[rd.off:]...)
		rd.off = len(rd.b)
	case OpHandoverStatus:
		if resp.State, err = rd.u8(); err != nil {
			return err
		}
		if resp.Copied, err = rd.u64(); err != nil {
			return err
		}
		if resp.Mirrored, err = rd.u64(); err != nil {
			return err
		}
		if resp.Retries, err = rd.u64(); err != nil {
			return err
		}
		if resp.Resumes, err = rd.u64(); err != nil {
			return err
		}
		if resp.Watermark, err = rd.u64(); err != nil {
			return err
		}
		if resp.Lo, err = rd.u64(); err != nil {
			return err
		}
		if resp.Hi, err = rd.u64(); err != nil {
			return err
		}
		if n := rd.remaining(); n > MaxAddr {
			return fmt.Errorf("%w: address of %d bytes", ErrLimit, n)
		}
		resp.Addr = string(rd.b[rd.off:])
		rd.off = len(rd.b)
	case OpImportResume:
		f, err := rd.u8()
		if err != nil {
			return err
		}
		if f > 1 {
			return fmt.Errorf("proto: import-resume fresh byte %d", f)
		}
		resp.Fresh = f != 0
		if resp.Applied, err = rd.u64(); err != nil {
			return err
		}
	case OpImportBatch:
		if resp.Applied, err = rd.u64(); err != nil {
			return err
		}
	case OpMapSet, OpHandoverStart, OpHandoverResume, OpHandoverAbort, OpImportStart, OpImportEnd, OpMirror:
	}
	return rd.done()
}

func growTo(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// --- framing ----------------------------------------------------------------

// ReadHeader reads and validates one frame's 4-byte length prefix from r,
// returning the body length. It rejects lengths beyond MaxFrame before any
// allocation — a hostile peer cannot make the caller reserve more — and
// lengths too small to hold the id+opcode prefix every body carries.
//
// Splitting header from body lets a server apply two different read
// deadlines: a long idle deadline while waiting for a request to start, and
// a short per-frame deadline once the header has arrived, which is what
// reaps a slow-loris peer trickling a frame byte by byte.
//
//dytis:blocks
func ReadHeader(r io.Reader) (int, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxBody {
		return 0, fmt.Errorf("%w: body of %d", ErrFrameTooLarge, n)
	}
	if n < prefixLen {
		return 0, fmt.Errorf("%w: body of %d bytes", ErrTruncated, n)
	}
	return n, nil
}

// ReadBody reads an n-byte frame body (n from ReadHeader) into buf, grown
// as needed, and returns the body slice, which aliases buf.
//
//dytis:blocks
func ReadBody(r io.Reader, n int, buf []byte) ([]byte, []byte, error) {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	hookFrame(body)
	return body, buf, nil
}

// ReadFrame reads one length-prefixed frame body from r into buf (grown as
// needed) and returns the body slice, which aliases buf. It is
// ReadHeader followed by ReadBody.
//
//dytis:blocks
func ReadFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	n, err := ReadHeader(r)
	if err != nil {
		return nil, buf, err
	}
	return ReadBody(r, n, buf)
}
