// Command dytis-metrics computes the dynamic-dataset characteristics of
// §2.1 of the DyTIS paper and regenerates Figures 1–3: the skewness-variance
// vs KDD scatter over Groups 1/2/3, the per-dataset PLR model counts, and
// the consecutive sub-dataset histograms.
//
// With -serve it instead becomes a live observability demo: it runs a DyTIS
// index under a continuous mixed workload (inserts, point lookups, scans,
// deletes over the chosen dataset) and serves the index's merged latency
// histograms, structure-event counters, Stats, and MemoryFootprint over
// HTTP:
//
//	dytis-metrics -serve :8080 -dataset TX -threads 4
//	curl localhost:8080/metrics      # Prometheus text format
//	curl localhost:8080/debug/vars   # expvar JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dytis/internal/datasets"
	"dytis/internal/metrics"
)

var (
	expFlag     = flag.String("exp", "fig1", "experiment: fig1|fig2|fig3|all")
	scaleFlag   = flag.Float64("scale", 0.001, "dataset scale relative to the paper")
	seedFlag    = flag.Int64("seed", 1, "generator seed")
	serveFlag   = flag.String("serve", "", "serve live index metrics on this address (e.g. :8080) instead of running an experiment")
	datasetFlag = flag.String("dataset", "TX", "dataset driving the live workload in -serve mode")
	threadsFlag = flag.Int("threads", 2, "workload goroutines in -serve mode")
)

func main() {
	flag.Parse()
	if *serveFlag != "" {
		if err := serve(*serveFlag, *datasetFlag, *threadsFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	switch *expFlag {
	case "fig1":
		fig1()
	case "fig2":
		fig2()
	case "fig3":
		fig3()
	case "all":
		fig1()
		fmt.Println()
		fig2()
		fmt.Println()
		fig3()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

func chunk() int {
	c := int(100000 * *scaleFlag * 100)
	if c < 2000 {
		c = 2000
	}
	return c
}

// fig1 prints the scatter data of Figure 1: (variance of skewness, KDD) for
// Group 1 (dynamic), Group 2 (shuffled), and Group 3 (simple) datasets.
func fig1() {
	fmt.Println("Figure 1: dynamic characteristics (x = skewness variance, y = KDD)")
	fmt.Printf("%-14s %8s %16s %12s\n", "dataset", "group", "skewVar(x)", "KDD(y)")
	row := func(name string, group int, keys []uint64) {
		fmt.Printf("%-14s %8d %16.2f %12.4f\n", name, group,
			metrics.SkewnessVariance(keys, chunk()), metrics.KDD(keys, chunk()))
	}
	for _, s := range datasets.Group1 {
		row(s.Name, 1, s.Gen(s.Count(*scaleFlag), *seedFlag))
	}
	for _, s := range datasets.Group1 {
		sh := datasets.Shuffled(s)
		row(sh.Name, 2, sh.Gen(s.Count(*scaleFlag), *seedFlag))
	}
	for _, s := range datasets.Group3 {
		row(s.Name, 3, s.Gen(s.Count(*scaleFlag), *seedFlag))
	}
}

// fig2 prints the PLR model counts behind Figure 2 (the paper shows MM=2,
// TX=8, RL=24 models at its error bound; the ordering is the claim).
func fig2() {
	fmt.Println("Figure 2: PLR linear models needed to approximate each CDF")
	fmt.Printf("%-10s %10s\n", "dataset", "models")
	for _, s := range []datasets.Spec{datasets.MapM, datasets.Taxi, datasets.ReviewL, datasets.Uniform} {
		keys := s.Gen(s.Count(*scaleFlag), *seedFlag)
		fmt.Printf("%-10s %10d\n", s.Name, metrics.ModelCount(keys))
	}
}

// fig3 prints ASCII histograms of three consecutive sub-datasets for RL
// (stationary) and TX (drifting), the visual behind Figure 3.
func fig3() {
	fmt.Println("Figure 3: consecutive sub-dataset key distributions")
	const bins = 40
	for _, s := range []datasets.Spec{datasets.ReviewL, datasets.Taxi} {
		keys := s.Gen(s.Count(*scaleFlag), *seedFlag)
		c := chunk()
		mid := len(keys)/2 - c
		fmt.Printf("\n--- %s (chunks of %d keys around the middle) ---\n", s.Name, c)
		for w := 0; w < 3; w++ {
			sub := keys[mid+w*c : mid+(w+1)*c]
			h := metrics.Histogram(sub, bins)
			max := 1
			for _, v := range h {
				if v > max {
					max = v
				}
			}
			var b strings.Builder
			for _, v := range h {
				b.WriteString(spark(v, max))
			}
			kl := 0.0
			if w > 0 {
				prev := keys[mid+(w-1)*c : mid+w*c]
				kl = metrics.KLDivergence(prev, sub)
			}
			fmt.Printf("chunk %d |%s|  KL vs prev: %.4f\n", w+1, b.String(), kl)
		}
	}
}

// spark maps a count to an eight-level block character.
func spark(v, max int) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	i := v * (len(levels) - 1) / max
	return string(levels[i])
}
